package xatu

import (
	"github.com/xatu-go/xatu/internal/telemetry"
)

// The observability layer (internal/telemetry): a dependency-free metric
// registry with Prometheus text exposition, latency histograms, and an
// HTTP server for /metrics, /healthz, /debug/alerts and pprof. Pass a
// registry as EngineConfig.Telemetry and to Collector/Exporter
// RegisterMetrics, then serve it with NewTelemetryServer.

type (
	// TelemetryRegistry collects counters, gauges and histograms and
	// renders them in Prometheus text exposition format.
	TelemetryRegistry = telemetry.Registry
	// TelemetryServer exposes a registry over HTTP: /metrics, /healthz,
	// /debug/alerts (recent decision traces) and /debug/pprof.
	TelemetryServer = telemetry.Server
	// TelemetryLabel is one metric label pair.
	TelemetryLabel = telemetry.Label
	// TelemetryHealth is the /healthz payload: OK plus free-form detail.
	TelemetryHealth = telemetry.Health
	// LatencyHistogram is a log-bucketed latency histogram with an
	// allocation-free Observe and p50/p90/p99/max summaries.
	LatencyHistogram = telemetry.Histogram
	// LatencySummary is a histogram quantile snapshot.
	LatencySummary = telemetry.LatencySummary
)

// NewTelemetryRegistry returns an empty metric registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// NewTelemetryServer binds addr and serves the registry's metrics plus
// health and debug endpoints. health may be nil (always OK).
func NewTelemetryServer(addr string, reg *TelemetryRegistry, health func() TelemetryHealth) (*TelemetryServer, error) {
	return telemetry.NewServer(addr, reg, health)
}
