// Package xatu is a from-scratch Go implementation of "Xatu: Boosting
// Existing DDoS Detection Systems Using Auxiliary Signals" (CoNEXT 2022):
// a multi-timescale LSTM trained with a survival-analysis loss over 273
// volumetric and auxiliary NetFlow features, which raises DDoS alerts
// earlier than the threshold-based commercial detector it boosts while
// keeping scrubbing overhead bounded.
//
// The package re-exports the substrates a deployment needs — the NetFlow
// codec and UDP transport, the feature extractor and its registries
// (blocklists, attack history, spoof checks), the model and its streaming
// form — plus the synthetic ISP world and the full evaluation harness used
// to reproduce every table and figure of the paper. See README.md for a
// tour and DESIGN.md for the architecture.
package xatu

import (
	"io"
	"net"

	"github.com/xatu-go/xatu/internal/attackhist"
	"github.com/xatu-go/xatu/internal/blocklist"
	"github.com/xatu-go/xatu/internal/cdet"
	"github.com/xatu-go/xatu/internal/core"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/eval"
	"github.com/xatu-go/xatu/internal/features"
	"github.com/xatu-go/xatu/internal/ingest"
	"github.com/xatu-go/xatu/internal/metrics"
	"github.com/xatu-go/xatu/internal/netflow"
	"github.com/xatu-go/xatu/internal/routing"
	"github.com/xatu-go/xatu/internal/simnet"
	"github.com/xatu-go/xatu/internal/spoof"
)

// Flow records and the NetFlow v5 transport.
type (
	// Record is one unidirectional flow record.
	Record = netflow.Record
	// Proto is an IP protocol number.
	Proto = netflow.Proto
	// Collector receives NetFlow v5 datagrams over UDP.
	Collector = netflow.Collector
	// CollectorStats separates shed load, upstream loss, duplication and
	// reordering in the collector's accounting.
	CollectorStats = netflow.CollectorStats
	// Exporter batches records into NetFlow v5 datagrams over UDP.
	Exporter = netflow.Exporter
	// ExporterConfig tunes the exporter's queue bound and reconnect backoff.
	ExporterConfig = netflow.ExporterConfig
	// ExporterStats counts exporter-side shedding and reconnects.
	ExporterStats = netflow.ExporterStats
	// Sampler applies 1:N packet sampling with inversion rescaling.
	Sampler = netflow.Sampler
	// ChaosConfig sets seeded fault-injection rates for a ChaosConn.
	ChaosConfig = netflow.ChaosConfig
	// ChaosConn wraps a net.Conn with deterministic fault injection.
	ChaosConn = netflow.ChaosConn
	// ChaosStats counts injected transport faults.
	ChaosStats = netflow.ChaosStats
)

// Protocol numbers.
const (
	ProtoICMP = netflow.ProtoICMP
	ProtoTCP  = netflow.ProtoTCP
	ProtoUDP  = netflow.ProtoUDP
)

// Domain types.
type (
	// AttackType enumerates the six prevalent DDoS attack types.
	AttackType = ddos.AttackType
	// Severity is the coarse attack severity (low/medium/high).
	Severity = ddos.Severity
	// Signature is a CDet-style anomalous-traffic signature.
	Signature = ddos.Signature
	// Alert is one detection event.
	Alert = ddos.Alert
)

// Attack types (Table 2).
const (
	UDPFlood  = ddos.UDPFlood
	TCPACK    = ddos.TCPACK
	TCPSYN    = ddos.TCPSYN
	TCPRST    = ddos.TCPRST
	DNSAmp    = ddos.DNSAmp
	ICMPFlood = ddos.ICMPFlood
)

// Auxiliary-signal registries and the feature extractor.
type (
	// BlocklistRegistry tracks /24-aggregated public blocklists (A1).
	BlocklistRegistry = blocklist.Registry
	// BlocklistCategory labels one of the 11 blocklist categories.
	BlocklistCategory = blocklist.Category
	// HistoryRegistry tracks previous attackers and attack history (A2/A4/A5).
	HistoryRegistry = attackhist.Registry
	// RoutingTable is a longest-prefix-match table for spoof checks.
	RoutingTable = routing.Table
	// SpoofChecker classifies obviously spoofed sources (A3).
	SpoofChecker = spoof.Checker
	// FeatureExtractor computes the 273 features of Table 1.
	FeatureExtractor = features.Extractor
)

// NumFeatures is the model input width (Table 1).
const NumFeatures = features.NumFeatures

// NewBlocklistRegistry returns an empty blocklist registry.
func NewBlocklistRegistry() *BlocklistRegistry { return blocklist.NewRegistry() }

// NewHistoryRegistry returns an empty attack-history registry.
func NewHistoryRegistry() *HistoryRegistry { return attackhist.NewRegistry() }

// NewSpoofChecker returns a spoof classifier over the routing table.
func NewSpoofChecker(t *RoutingTable) *SpoofChecker { return spoof.NewChecker(t) }

// The model.
type (
	// Model is the multi-timescale LSTM with survival-analysis head.
	Model = core.Model
	// ModelConfig parameterizes a Model.
	ModelConfig = core.Config
	// Example is one training series.
	Example = core.Example
	// TrainOptions tunes Model.Fit.
	TrainOptions = core.TrainOptions
	// Stream is the incremental online form of a Model.
	Stream = core.Stream
)

// DefaultModelConfig returns a laptop-scale model configuration for the
// standard 273-feature input.
func DefaultModelConfig() ModelConfig { return core.DefaultConfig(features.NumFeatures) }

// NewModel builds a model with fresh weights.
func NewModel(cfg ModelConfig) (*Model, error) { return core.New(cfg) }

// LoadModel reads a model saved with Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return core.Load(r) }

// NewStream returns an online detector state for the model.
func NewStream(m *Model) *Stream { return core.NewStream(m) }

// MissingPolicy selects what detector streams consume for steps with no
// telemetry (zero-fill or carry-forward).
type MissingPolicy = core.MissingPolicy

// Missing-telemetry policies.
const (
	// MissingZero feeds an all-zero feature vector for a missing step.
	MissingZero = core.MissingZero
	// MissingCarry repeats the last real feature vector.
	MissingCarry = core.MissingCarry
)

// RestoreStream reads a stream checkpoint (written by Stream.Checkpoint)
// into a fresh online state over m.
func RestoreStream(r io.Reader, m *Model) (*Stream, error) { return core.RestoreStream(r, m) }

// Precision selects the serving kernel arithmetic of a monitor's detector
// streams: float64 (training precision, the zero value) or float32 (the
// quantized panel kernels — several-fold faster, alert behavior held
// within the calibrated tolerance; DESIGN.md §14).
type Precision = core.Precision

// Serving precisions.
const (
	// PrecisionFloat64 serves with the training-precision kernels.
	PrecisionFloat64 = core.PrecisionFloat64
	// PrecisionFloat32 serves with quantized float32 panel kernels.
	PrecisionFloat32 = core.PrecisionFloat32
)

// ParsePrecision parses a -precision flag value ("float32"/"f32"/"32" or
// "float64"/"f64"/"64").
func ParsePrecision(s string) (Precision, error) { return core.ParsePrecision(s) }

// Commercial-detector baselines.
type (
	// CDetDetector is a threshold-based volumetric detector.
	CDetDetector = cdet.Detector
	// CDetParams tunes a threshold detector.
	CDetParams = cdet.Params
)

// Simulation world (the ISP substrate).
type (
	// World is a synthetic ISP with customers, botnets and attack campaigns.
	World = simnet.World
	// WorldConfig parameterizes a World.
	WorldConfig = simnet.Config
	// AttackEvent is one scheduled ground-truth attack.
	AttackEvent = simnet.AttackEvent
)

// DefaultWorldConfig returns a laptop-scale world.
func DefaultWorldConfig() WorldConfig { return simnet.DefaultConfig() }

// NewWorld builds a deterministic synthetic ISP.
func NewWorld(cfg WorldConfig) (*World, error) { return simnet.NewWorld(cfg) }

// Evaluation harness (the paper's experiments).
type (
	// Pipeline wires world, labels, features, and training together.
	Pipeline = eval.Pipeline
	// PipelineConfig parameterizes a Pipeline.
	PipelineConfig = eval.Config
	// MLContext caches trained systems for the ML experiments.
	MLContext = eval.MLContext
	// ExperimentResult is a rendered experiment table.
	ExperimentResult = eval.Result
	// Episode is one labeled attack window matched between ground truth
	// and CDet labels (used by the chaos/soak harnesses for per-episode
	// detection-delay accounting).
	Episode = eval.Episode
	// AttackOutcome is the per-attack metric accounting.
	AttackOutcome = metrics.AttackOutcome
)

// DefaultPipelineConfig returns the laptop-scale experiment configuration.
func DefaultPipelineConfig() PipelineConfig { return eval.DefaultConfig() }

// NewPipeline builds a world, labels it with the configured CDet and
// prepares the registries.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) { return eval.New(cfg) }

// NewMLContext trains Xatu and the RF baseline over the pipeline.
func NewMLContext(p *Pipeline) (*MLContext, error) { return eval.NewMLContext(p) }

// Parallel ingest (packet → records → step batches → features → engine).
type (
	// IngestPipeline is the parallel allocation-lean ingest worker mesh:
	// NetFlow v5 datagrams in, per-customer sealed steps out, with
	// per-exporter and per-customer ordering preserved across workers.
	IngestPipeline = ingest.Pipeline
	// IngestConfig assembles an IngestPipeline.
	IngestConfig = ingest.Config
	// IngestStats is a snapshot of the pipeline's counters.
	IngestStats = ingest.Stats
	// IngestStepFunc consumes one sealed (customer, step) bucket.
	IngestStepFunc = ingest.StepFunc
)

// NewIngestPipeline validates cfg and starts the ingest workers.
func NewIngestPipeline(cfg IngestConfig) (*IngestPipeline, error) { return ingest.New(cfg) }

// NewCollector binds a NetFlow v5 UDP listener; bufSize is the record
// channel capacity.
func NewCollector(addr string, bufSize int) (*Collector, error) {
	return netflow.NewCollector(addr, bufSize)
}

// NewExporter dials a NetFlow v5 collector; sampling is the advertised 1:N
// sampling interval.
func NewExporter(addr string, sampling uint16) (*Exporter, error) {
	return netflow.NewExporter(addr, sampling)
}

// NewExporterWithConfig dials a NetFlow v5 collector with explicit
// queue-bound, backoff and dialer settings.
func NewExporterWithConfig(cfg ExporterConfig) (*Exporter, error) {
	return netflow.NewExporterWithConfig(cfg)
}

// NewChaosConn wraps a net.Conn with seeded fault injection (loss,
// duplication, reordering, corruption, delay, write failures).
func NewChaosConn(conn net.Conn, cfg ChaosConfig) *ChaosConn {
	return netflow.NewChaosConn(conn, cfg)
}

// NewChaosPipe builds a deterministic in-memory chaos transport delivering
// datagrams synchronously into col (which implements netflow.PacketSink).
func NewChaosPipe(col *Collector, src string, cfg ChaosConfig) *ChaosConn {
	return netflow.NewChaosPipe(col, src, cfg)
}
