package xatu

import (
	"testing"
)

// TestPrecisionAlertParityTrained is the float32 serving acceptance test:
// a trained system watches the same held-out test attack once with the
// float64 (training-precision) kernels and once with the quantized float32
// panel kernels, and the two must alert within 5 steps of each other —
// the same behavioral tolerance the chaos-transport test holds detection
// to. Float32 rounding perturbs survival values by parts in 1e-3 near the
// threshold (DESIGN.md §14), which can only move an alert by the handful
// of steps where S_t grazes the threshold, never create or suppress a
// detection of a real attack.
func TestPrecisionAlertParityTrained(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	cfg := BenchPipelineConfig(10, 7)
	cfg.Train.Epochs = 8
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := NewMLContext(p)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ml.XatuAt(0.4)
	if err != nil {
		t.Fatal(err)
	}
	thr := 1 - sys.Threshold
	eps := p.MatchedEpisodes(p.StabEnd, cfg.World.Steps())
	if len(eps) == 0 {
		t.Fatal("no test attacks in this world; change the seed")
	}
	ep := eps[0]
	customer := p.World.Customers[ep.CustomerIdx].Addr

	// runEpisode streams the episode's flows (fault-free transport; the
	// only variable is kernel precision) and reports the first alert step.
	runEpisode := func(t *testing.T, prec Precision) int {
		t.Helper()
		mon, err := NewMonitor(MonitorConfig{
			Models:        ml.Models.ByType,
			Default:       ml.Models.Shared,
			Extractor:     p.Extractor(nil, nil),
			Threshold:     thr,
			Types:         []AttackType{ep.Type},
			MissingPolicy: MissingCarry,
			Precision:     prec,
		})
		if err != nil {
			t.Fatal(err)
		}
		alertStep := -1
		for s := ep.StreamStart; s < ep.StreamEnd; s++ {
			if s < 0 {
				continue
			}
			flows := p.World.FlowsAt(ep.CustomerIdx, s)
			at := cfg.World.TimeOf(s)
			if len(flows) == 0 {
				mon.ObserveMissing(customer, at)
				continue
			}
			if alerts := mon.ObserveStep(customer, at, flows); len(alerts) > 0 && alertStep < 0 {
				alertStep = s
			}
		}
		return alertStep
	}

	step64 := runEpisode(t, PrecisionFloat64)
	if step64 < 0 {
		t.Fatal("float64 run never alerted; detection is broken before precision enters")
	}
	step32 := runEpisode(t, PrecisionFloat32)
	if step32 < 0 {
		t.Fatalf("float32 run never alerted (float64 alerted at step %d)", step64)
	}
	if d := step32 - step64; d > 5 || d < -5 {
		t.Fatalf("float32 detection at step %d, float64 at %d: drift %d steps exceeds 5",
			step32, step64, d)
	}

	// Float32 serving is deterministic: a rerun reproduces the alert step.
	if again := runEpisode(t, PrecisionFloat32); again != step32 {
		t.Fatalf("float32 rerun alerted at step %d, first run at %d", again, step32)
	}
}
