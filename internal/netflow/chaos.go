package netflow

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Chaos transport: deterministic, seeded fault injection on the datagram
// path between an Exporter and a Collector. Real routers export NetFlow
// over unacknowledged UDP through congested links, so the §2.6 deployment
// loop must detect through dropped, duplicated, reordered, corrupted and
// delayed datagrams. ChaosConn wraps any net.Conn (the exporter's UDP
// socket); NewChaosPipe builds a fully in-memory, synchronous path into a
// Collector so integration tests are bit-for-bit reproducible.

// ChaosConfig sets per-write fault probabilities. Each fault type draws
// from its own seeded RNG (derived from Seed), so e.g. the drop pattern at
// a given seed is identical whether or not duplication is also enabled.
type ChaosConfig struct {
	// Seed makes the fault sequence reproducible.
	Seed int64
	// DropRate is the probability a datagram is silently discarded.
	DropRate float64
	// DupRate is the probability a delivered datagram is delivered twice.
	DupRate float64
	// CorruptRate is the probability 1–4 random bytes are flipped.
	CorruptRate float64
	// ReorderRate is the probability a datagram is held back and delivered
	// after the next write instead of in order.
	ReorderRate float64
	// DelayRate is the probability a datagram is delivered asynchronously
	// after a random delay in (0, MaxDelay]. Ignored when MaxDelay is zero
	// (keep it zero for deterministic tests: delayed delivery races the
	// writes that follow it, exactly like the real network).
	DelayRate float64
	// MaxDelay bounds injected delivery delay.
	MaxDelay time.Duration
	// FailRate is the probability Write returns ErrChaosWrite instead of
	// sending, simulating a transient socket error (exercises the
	// exporter's reconnect path).
	FailRate float64
}

// ChaosStats counts injected faults.
type ChaosStats struct {
	Written    uint64 // Write calls observed
	Delivered  uint64 // datagrams actually passed to the underlying conn
	Dropped    uint64
	Duplicated uint64
	Corrupted  uint64
	Reordered  uint64
	Delayed    uint64
	Failed     uint64 // injected write errors
}

// ErrChaosWrite is the injected transient write failure.
var ErrChaosWrite = errors.New("netflow: chaos-injected write failure")

// chaos RNG stream indices, one independent stream per fault type.
const (
	chaosFail = iota
	chaosDrop
	chaosCorrupt
	chaosReorder
	chaosDup
	chaosDelay
	numChaosStreams
)

// ChaosConn wraps a net.Conn, injecting faults on Write. Reads pass
// through untouched. It is safe for concurrent use.
type ChaosConn struct {
	net.Conn
	cfg ChaosConfig

	mu    sync.Mutex
	rngs  [numChaosStreams]*rand.Rand
	held  [][]byte // reordered datagrams awaiting the next write
	stats ChaosStats
}

// NewChaosConn wraps conn with the configured fault injection.
func NewChaosConn(conn net.Conn, cfg ChaosConfig) *ChaosConn {
	c := &ChaosConn{Conn: conn, cfg: cfg}
	for i := range c.rngs {
		c.rngs[i] = rand.New(rand.NewSource(cfg.Seed + int64(i)*0x9E3779B9))
	}
	return c
}

// SetRates replaces the fault probabilities mid-run, leaving the seeded
// RNG streams untouched: a soak harness can ramp loss up and back down
// without perturbing the other fault types' schedules. The Seed field of
// cfg is ignored — the streams keep their construction-time seed.
func (c *ChaosConn) SetRates(cfg ChaosConfig) {
	c.mu.Lock()
	cfg.Seed = c.cfg.Seed
	c.cfg = cfg
	c.mu.Unlock()
}

// roll draws from the fault type's dedicated RNG stream. The draw happens
// even at rate zero so enabling one fault never shifts another's pattern.
func (c *ChaosConn) roll(stream int, rate float64) bool {
	return c.rngs[stream].Float64() < rate
}

// Write applies the fault schedule to one datagram. Faults are decided in
// a fixed order (fail, drop, corrupt, reorder, dup, delay), so a given
// seed yields the same schedule on every run.
func (c *ChaosConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Written++
	if c.roll(chaosFail, c.cfg.FailRate) {
		c.stats.Failed++
		return 0, ErrChaosWrite
	}
	if c.roll(chaosDrop, c.cfg.DropRate) {
		c.stats.Dropped++
		return len(p), c.flushHeldLocked() // the network ate it; held packets still move
	}
	pkt := append([]byte(nil), p...)
	if c.roll(chaosCorrupt, c.cfg.CorruptRate) {
		c.corruptLocked(pkt)
		c.stats.Corrupted++
	}
	if c.roll(chaosReorder, c.cfg.ReorderRate) {
		c.stats.Reordered++
		c.held = append(c.held, pkt)
		return len(p), nil
	}
	dup := c.roll(chaosDup, c.cfg.DupRate)
	delay := c.roll(chaosDelay, c.cfg.DelayRate) && c.cfg.MaxDelay > 0
	if delay {
		d := time.Duration(1 + c.rngs[chaosDelay].Int63n(int64(c.cfg.MaxDelay)))
		c.stats.Delayed++
		if dup {
			c.stats.Duplicated++
		}
		time.AfterFunc(d, func() {
			c.mu.Lock()
			defer c.mu.Unlock()
			c.sendLocked(pkt)
			if dup {
				c.sendLocked(pkt)
			}
		})
		return len(p), nil
	}
	if err := c.sendLocked(pkt); err != nil {
		return 0, err
	}
	if dup {
		c.stats.Duplicated++
		c.sendLocked(pkt) // best effort, like the network duplicating
	}
	return len(p), c.flushHeldLocked()
}

func (c *ChaosConn) sendLocked(pkt []byte) error {
	_, err := c.Conn.Write(pkt)
	if err == nil {
		c.stats.Delivered++
	}
	return err
}

// flushHeldLocked delivers datagrams that were held for reordering.
func (c *ChaosConn) flushHeldLocked() error {
	for len(c.held) > 0 {
		pkt := c.held[0]
		c.held = c.held[1:]
		if err := c.sendLocked(pkt); err != nil {
			return err
		}
	}
	return nil
}

// corruptLocked flips 1–4 random bytes in place.
func (c *ChaosConn) corruptLocked(pkt []byte) {
	if len(pkt) == 0 {
		return
	}
	n := 1 + c.rngs[chaosCorrupt].Intn(4)
	for i := 0; i < n; i++ {
		pos := c.rngs[chaosCorrupt].Intn(len(pkt))
		pkt[pos] ^= byte(1 + c.rngs[chaosCorrupt].Intn(255))
	}
}

// Stats returns a snapshot of injected-fault counters.
func (c *ChaosConn) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close delivers any held datagrams, then closes the underlying conn.
func (c *ChaosConn) Close() error {
	c.mu.Lock()
	flushErr := c.flushHeldLocked()
	c.mu.Unlock()
	closeErr := c.Conn.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// PacketSink consumes raw datagrams. *Collector implements it, so a sink
// conn can bypass the kernel UDP stack entirely while exercising the same
// codec and sequence-tracking paths.
type PacketSink interface {
	HandlePacket(src string, pkt []byte)
}

// NewChaosPipe returns a ChaosConn whose underlying "socket" delivers
// datagrams synchronously to sink, labeled as coming from src. With
// MaxDelay zero the whole transport is deterministic: same seed, same
// faults, same delivery order.
func NewChaosPipe(sink PacketSink, src string, cfg ChaosConfig) *ChaosConn {
	return NewChaosConn(&sinkConn{sink: sink, src: src}, cfg)
}

// sinkConn adapts a PacketSink to net.Conn for in-process transports.
type sinkConn struct {
	mu     sync.Mutex
	sink   PacketSink
	src    string
	closed bool
}

func (s *sinkConn) Write(p []byte) (int, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return 0, net.ErrClosed
	}
	s.sink.HandlePacket(s.src, p)
	return len(p), nil
}

func (s *sinkConn) Read([]byte) (int, error) { return 0, io.EOF }

func (s *sinkConn) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *sinkConn) LocalAddr() net.Addr              { return sinkAddr{name: s.src} }
func (s *sinkConn) RemoteAddr() net.Addr             { return sinkAddr{name: "sink"} }
func (s *sinkConn) SetDeadline(time.Time) error      { return nil }
func (s *sinkConn) SetReadDeadline(time.Time) error  { return nil }
func (s *sinkConn) SetWriteDeadline(time.Time) error { return nil }

type sinkAddr struct{ name string }

func (a sinkAddr) Network() string { return "mem" }
func (a sinkAddr) String() string  { return a.name }
