package netflow

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"
)

// The flow journal is the repo's on-disk trace format: a magic header
// followed by fixed 40-byte little-endian records. It lets a generated
// world (or a live capture) be persisted once and replayed many times —
// the stand-in for the paper's 18.5 TB NetFlow archive.

var journalMagic = [4]byte{'X', 'F', 'J', '1'}

const journalRecordLen = 40

// JournalWriter appends flow records to a stream.
type JournalWriter struct {
	w   *bufio.Writer
	n   uint64
	err error
}

// NewJournalWriter writes the header and returns a writer.
func NewJournalWriter(w io.Writer) (*JournalWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(journalMagic[:]); err != nil {
		return nil, err
	}
	return &JournalWriter{w: bw}, nil
}

// Write appends one record.
func (j *JournalWriter) Write(r Record) error {
	if j.err != nil {
		return j.err
	}
	if err := r.Validate(); err != nil {
		return err
	}
	var buf [journalRecordLen]byte
	le := binary.LittleEndian
	src := r.Src.Unmap().As4()
	dst := r.Dst.Unmap().As4()
	copy(buf[0:], src[:])
	copy(buf[4:], dst[:])
	le.PutUint16(buf[8:], r.SrcPort)
	le.PutUint16(buf[10:], r.DstPort)
	buf[12] = uint8(r.Proto)
	buf[13] = r.TCPFlags
	le.PutUint16(buf[14:], r.SrcAS)
	le.PutUint32(buf[16:], r.Packets)
	le.PutUint32(buf[20:], r.Bytes)
	le.PutUint64(buf[24:], uint64(r.Start.UnixMilli()))
	le.PutUint64(buf[32:], uint64(r.End.UnixMilli()))
	if _, err := j.w.Write(buf[:]); err != nil {
		j.err = err
		return err
	}
	j.n++
	return nil
}

// Count reports records written so far.
func (j *JournalWriter) Count() uint64 { return j.n }

// Flush drains the buffer to the underlying writer.
func (j *JournalWriter) Flush() error {
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// JournalReader iterates a journal stream.
type JournalReader struct {
	r *bufio.Reader
	n uint64
}

// NewJournalReader validates the header and returns a reader.
func NewJournalReader(r io.Reader) (*JournalReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("netflow: reading journal header: %w", err)
	}
	if magic != journalMagic {
		return nil, fmt.Errorf("netflow: not a flow journal (magic %q)", magic)
	}
	return &JournalReader{r: br}, nil
}

// Next returns the next record, or io.EOF at a clean end of stream. A
// truncated trailing record returns ErrJournalTruncated.
func (j *JournalReader) Next() (Record, error) {
	var buf [journalRecordLen]byte
	if _, err := io.ReadFull(j.r, buf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, ErrJournalTruncated
	}
	le := binary.LittleEndian
	var src, dst [4]byte
	copy(src[:], buf[0:4])
	copy(dst[:], buf[4:8])
	r := Record{
		Src:      netip.AddrFrom4(src),
		Dst:      netip.AddrFrom4(dst),
		SrcPort:  le.Uint16(buf[8:]),
		DstPort:  le.Uint16(buf[10:]),
		Proto:    Proto(buf[12]),
		TCPFlags: buf[13],
		SrcAS:    le.Uint16(buf[14:]),
		Packets:  le.Uint32(buf[16:]),
		Bytes:    le.Uint32(buf[20:]),
		Start:    time.UnixMilli(int64(le.Uint64(buf[24:]))).UTC(),
		End:      time.UnixMilli(int64(le.Uint64(buf[32:]))).UTC(),
	}
	if err := r.Validate(); err != nil {
		return Record{}, fmt.Errorf("netflow: journal record %d: %w", j.n, err)
	}
	j.n++
	return r, nil
}

// Count reports records read so far.
func (j *JournalReader) Count() uint64 { return j.n }

// ErrJournalTruncated reports a journal ending mid-record.
var ErrJournalTruncated = errors.New("netflow: journal truncated mid-record")
