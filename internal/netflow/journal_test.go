package netflow

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

func journalRecords(rng *rand.Rand, n int) []Record {
	base := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	out := make([]Record, n)
	for i := range out {
		start := base.Add(time.Duration(rng.Intn(100000)) * time.Second)
		out[i] = Record{
			Src:      netip.AddrFrom4([4]byte{11, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(254) + 1)}),
			Dst:      netip.AddrFrom4([4]byte{23, 1, 0, byte(rng.Intn(254) + 1)}),
			SrcPort:  uint16(rng.Intn(65536)),
			DstPort:  uint16(rng.Intn(65536)),
			Proto:    []Proto{ProtoTCP, ProtoUDP, ProtoICMP}[rng.Intn(3)],
			TCPFlags: uint8(rng.Intn(64)),
			SrcAS:    uint16(rng.Intn(65536)),
			Packets:  uint32(rng.Intn(100000) + 1),
			Bytes:    uint32(rng.Intn(1 << 30)),
			Start:    start,
			End:      start.Add(time.Duration(rng.Intn(120)) * time.Second),
		}
	}
	return out
}

func TestJournalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recs := journalRecords(rng, 500)
	var buf bytes.Buffer
	w, err := NewJournalWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 500 {
		t.Fatalf("Count = %d", w.Count())
	}

	rd, err := NewJournalReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		got, err := rd.Next()
		if errors.Is(err, io.EOF) {
			if i != 500 {
				t.Fatalf("read %d records, want 500", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if got != recs[i] {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, got, recs[i])
		}
	}
	if rd.Count() != 500 {
		t.Fatalf("reader Count = %d", rd.Count())
	}
}

func TestJournalRejectsInvalidRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewJournalWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bad := Record{} // invalid addresses
	if err := w.Write(bad); err == nil {
		t.Fatal("invalid record must be rejected")
	}
}

func TestJournalBadMagic(t *testing.T) {
	if _, err := NewJournalReader(bytes.NewReader([]byte("NOPE..."))); err == nil {
		t.Fatal("bad magic must error")
	}
	if _, err := NewJournalReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream must error")
	}
}

func TestJournalTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	recs := journalRecords(rng, 3)
	var buf bytes.Buffer
	w, _ := NewJournalWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Cut the last record in half.
	rd, err := NewJournalReader(bytes.NewReader(raw[:len(raw)-20]))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for {
		_, err := rd.Next()
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrJournalTruncated) {
		t.Fatalf("got %v, want ErrJournalTruncated", lastErr)
	}
	if rd.Count() != 2 {
		t.Fatalf("should have read 2 complete records, got %d", rd.Count())
	}
}
