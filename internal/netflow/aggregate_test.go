package netflow

import (
	"net/netip"
	"testing"
	"time"
)

var aggBase = time.Date(2019, 7, 3, 12, 0, 0, 0, time.UTC)

func aggRec(dst netip.Addr, at time.Time, bytes uint32) Record {
	return Record{
		Src: netip.MustParseAddr("11.1.1.1"), Dst: dst,
		Proto: ProtoUDP, Packets: 1, Bytes: bytes,
		Start: at, End: at.Add(10 * time.Second),
	}
}

func TestAggregatorInOrder(t *testing.T) {
	d1 := netip.MustParseAddr("23.1.1.1")
	d2 := netip.MustParseAddr("23.1.1.2")
	a := NewAggregator(time.Minute, 0)
	// Two records in minute 0; nothing seals while the watermark is inside
	// minute 0.
	if got := a.Add(aggRec(d1, aggBase.Add(5*time.Second), 100)); len(got) != 0 {
		t.Fatalf("sealed too early: %v", got)
	}
	if got := a.Add(aggRec(d2, aggBase.Add(30*time.Second), 200)); len(got) != 0 {
		t.Fatalf("sealed too early: %v", got)
	}
	// A record at 70 s moves the watermark past minute 0's end (lateness 0),
	// sealing it.
	sealed := a.Add(aggRec(d1, aggBase.Add(70*time.Second), 300))
	if len(sealed) != 1 || !sealed[0].Start.Equal(aggBase) {
		t.Fatalf("minute 0 should seal: %v", sealed)
	}
	if len(sealed[0].ByDst[d1]) != 1 || len(sealed[0].ByDst[d2]) != 1 {
		t.Fatalf("bucket 0 contents wrong: %v", sealed[0].ByDst)
	}
	// Jumping to minute 3 seals minute 1.
	sealed = a.Add(aggRec(d1, aggBase.Add(3*time.Minute), 400))
	if len(sealed) != 1 || !sealed[0].Start.Equal(aggBase.Add(time.Minute)) {
		t.Fatalf("minute 1 should seal: %v", sealed)
	}
	rest := a.Flush()
	if len(rest) != 1 || !rest[0].Start.Equal(aggBase.Add(3*time.Minute)) {
		t.Fatalf("flush = %v", rest)
	}
}

func TestAggregatorOutOfOrderWithinLateness(t *testing.T) {
	d := netip.MustParseAddr("23.1.1.1")
	a := NewAggregator(time.Minute, 2*time.Minute)
	a.Add(aggRec(d, aggBase.Add(2*time.Minute), 1))
	// A record from minute 0 arrives late but within the 2-minute allowance.
	sealed := a.Add(aggRec(d, aggBase.Add(30*time.Second), 2))
	if len(sealed) != 0 {
		t.Fatal("lateness allowance must keep the bucket open")
	}
	if a.Dropped() != 0 {
		t.Fatal("in-allowance record must not be dropped")
	}
	all := a.Flush()
	if len(all) != 2 || len(all[0].ByDst[d]) != 1 {
		t.Fatalf("flush = %+v", all)
	}
}

func TestAggregatorDropsTooLate(t *testing.T) {
	d := netip.MustParseAddr("23.1.1.1")
	a := NewAggregator(time.Minute, 0)
	a.Add(aggRec(d, aggBase.Add(10*time.Minute), 1))
	a.Add(aggRec(d, aggBase, 2)) // ten minutes late, zero allowance
	if a.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", a.Dropped())
	}
	all := a.Flush()
	if len(all) != 1 {
		t.Fatalf("late record leaked into %d buckets", len(all))
	}
}

func TestAggregatorDefaults(t *testing.T) {
	a := NewAggregator(0, -time.Minute)
	if a.Step != time.Minute || a.Lateness != 0 {
		t.Fatalf("defaults wrong: %v %v", a.Step, a.Lateness)
	}
}

func TestAggregatorFlushEmpty(t *testing.T) {
	a := NewAggregator(time.Minute, 0)
	if got := a.Flush(); len(got) != 0 {
		t.Fatalf("empty flush = %v", got)
	}
}

// TestAggregatorFlushDeterministicOrder pins that sealed batches come out
// oldest-first from both Flush and watermark-driven sealing, regardless of
// map iteration order: many buckets are opened in shuffled order, and every
// seal must yield a Start-sorted sequence.
func TestAggregatorFlushDeterministicOrder(t *testing.T) {
	d := netip.MustParseAddr("23.1.1.1")
	perm := []int{7, 2, 9, 0, 5, 3, 8, 1, 6, 4}
	a := NewAggregator(time.Minute, time.Hour) // generous lateness: nothing seals early
	for _, m := range perm {
		a.Add(aggRec(d, aggBase.Add(time.Duration(m)*time.Minute), 1))
	}
	out := a.Flush()
	if len(out) != len(perm) {
		t.Fatalf("flushed %d buckets, want %d", len(out), len(perm))
	}
	for i, b := range out {
		if want := aggBase.Add(time.Duration(i) * time.Minute); !b.Start.Equal(want) {
			t.Fatalf("flush order broken at %d: got %v, want %v", i, b.Start, want)
		}
	}

	// Watermark-driven sealing (advance) must come out sorted too: open
	// several buckets within the lateness allowance, then jump the
	// watermark far ahead so they all seal in one Add.
	a2 := NewAggregator(time.Minute, 10*time.Minute)
	for _, m := range perm {
		a2.Add(aggRec(d, aggBase.Add(time.Duration(m)*time.Minute), 1))
	}
	sealed := a2.Add(aggRec(d, aggBase.Add(2*time.Hour), 1))
	if len(sealed) != len(perm) {
		t.Fatalf("sealed %d buckets, want %d", len(sealed), len(perm))
	}
	for i := 1; i < len(sealed); i++ {
		if sealed[i].Start.Before(sealed[i-1].Start) {
			t.Fatalf("advance order broken at %d: %v after %v", i, sealed[i].Start, sealed[i-1].Start)
		}
	}
}

// TestAggregatorRecycle verifies the free-lists: recycled storage is
// reused (pool hits), handed-back slices are emptied, and RecycleShell
// leaves record slices with the caller.
func TestAggregatorRecycle(t *testing.T) {
	d := netip.MustParseAddr("23.1.1.1")
	a := NewAggregator(time.Minute, 0)
	a.Add(aggRec(d, aggBase, 1))
	a.Add(aggRec(d, aggBase.Add(10*time.Second), 2))
	sealed := a.Add(aggRec(d, aggBase.Add(2*time.Minute), 3))
	if len(sealed) != 1 || len(sealed[0].ByDst[d]) != 2 {
		t.Fatalf("sealed = %+v", sealed)
	}
	recs := sealed[0].ByDst[d]
	a.Recycle(sealed[0])
	_, misses0 := a.PoolStats()

	// The next bucket and destination list must come from the free-lists:
	// no new misses, and the record slice storage is reused.
	a.Add(aggRec(d, aggBase.Add(5*time.Minute), 4))
	hits, misses := a.PoolStats()
	if misses != misses0 {
		t.Fatalf("recycled add missed the pool: misses %d -> %d", misses0, misses)
	}
	if hits == 0 {
		t.Fatal("expected pool hits after Recycle")
	}
	sealed = a.Flush()
	got := sealed[0].ByDst[d]
	if len(got) != 1 || got[0].Bytes != 4 {
		t.Fatalf("recycled bucket contents wrong: %+v", got)
	}
	if &recs[:1][0] != &got[0] {
		t.Fatal("recycled record slice was not reused")
	}

	// RecycleShell: map returns, records stay valid for the caller.
	kept := sealed[0].ByDst[d]
	a.RecycleShell(sealed[0])
	if kept[0].Bytes != 4 {
		t.Fatal("RecycleShell must leave handed-off records untouched")
	}
}

// TestAggregatorAddAllocFree pins the steady-state allocation contract:
// once the free-lists are warm, Add (including sealing) allocates nothing.
func TestAggregatorAddAllocFree(t *testing.T) {
	dsts := make([]netip.Addr, 8)
	for i := range dsts {
		dsts[i] = netip.AddrFrom4([4]byte{23, 1, 1, byte(i + 1)})
	}
	a := NewAggregator(time.Minute, 0)
	step := 0
	feed := func() {
		at := aggBase.Add(time.Duration(step) * time.Minute)
		step++
		for _, d := range dsts {
			for k := 0; k < 4; k++ {
				for _, b := range a.Add(aggRec(d, at.Add(time.Duration(k)*time.Second), 100)) {
					a.Recycle(b)
				}
			}
		}
	}
	for i := 0; i < 16; i++ { // warm the free-lists
		feed()
	}
	if allocs := testing.AllocsPerRun(100, feed); allocs != 0 {
		t.Fatalf("steady-state Add allocs/op = %v, want 0", allocs)
	}
}
