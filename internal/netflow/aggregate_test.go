package netflow

import (
	"net/netip"
	"testing"
	"time"
)

var aggBase = time.Date(2019, 7, 3, 12, 0, 0, 0, time.UTC)

func aggRec(dst netip.Addr, at time.Time, bytes uint32) Record {
	return Record{
		Src: netip.MustParseAddr("11.1.1.1"), Dst: dst,
		Proto: ProtoUDP, Packets: 1, Bytes: bytes,
		Start: at, End: at.Add(10 * time.Second),
	}
}

func TestAggregatorInOrder(t *testing.T) {
	d1 := netip.MustParseAddr("23.1.1.1")
	d2 := netip.MustParseAddr("23.1.1.2")
	a := NewAggregator(time.Minute, 0)
	// Two records in minute 0; nothing seals while the watermark is inside
	// minute 0.
	if got := a.Add(aggRec(d1, aggBase.Add(5*time.Second), 100)); len(got) != 0 {
		t.Fatalf("sealed too early: %v", got)
	}
	if got := a.Add(aggRec(d2, aggBase.Add(30*time.Second), 200)); len(got) != 0 {
		t.Fatalf("sealed too early: %v", got)
	}
	// A record at 70 s moves the watermark past minute 0's end (lateness 0),
	// sealing it.
	sealed := a.Add(aggRec(d1, aggBase.Add(70*time.Second), 300))
	if len(sealed) != 1 || !sealed[0].Start.Equal(aggBase) {
		t.Fatalf("minute 0 should seal: %v", sealed)
	}
	if len(sealed[0].ByDst[d1]) != 1 || len(sealed[0].ByDst[d2]) != 1 {
		t.Fatalf("bucket 0 contents wrong: %v", sealed[0].ByDst)
	}
	// Jumping to minute 3 seals minute 1.
	sealed = a.Add(aggRec(d1, aggBase.Add(3*time.Minute), 400))
	if len(sealed) != 1 || !sealed[0].Start.Equal(aggBase.Add(time.Minute)) {
		t.Fatalf("minute 1 should seal: %v", sealed)
	}
	rest := a.Flush()
	if len(rest) != 1 || !rest[0].Start.Equal(aggBase.Add(3*time.Minute)) {
		t.Fatalf("flush = %v", rest)
	}
}

func TestAggregatorOutOfOrderWithinLateness(t *testing.T) {
	d := netip.MustParseAddr("23.1.1.1")
	a := NewAggregator(time.Minute, 2*time.Minute)
	a.Add(aggRec(d, aggBase.Add(2*time.Minute), 1))
	// A record from minute 0 arrives late but within the 2-minute allowance.
	sealed := a.Add(aggRec(d, aggBase.Add(30*time.Second), 2))
	if len(sealed) != 0 {
		t.Fatal("lateness allowance must keep the bucket open")
	}
	if a.Dropped() != 0 {
		t.Fatal("in-allowance record must not be dropped")
	}
	all := a.Flush()
	if len(all) != 2 || len(all[0].ByDst[d]) != 1 {
		t.Fatalf("flush = %+v", all)
	}
}

func TestAggregatorDropsTooLate(t *testing.T) {
	d := netip.MustParseAddr("23.1.1.1")
	a := NewAggregator(time.Minute, 0)
	a.Add(aggRec(d, aggBase.Add(10*time.Minute), 1))
	a.Add(aggRec(d, aggBase, 2)) // ten minutes late, zero allowance
	if a.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", a.Dropped())
	}
	all := a.Flush()
	if len(all) != 1 {
		t.Fatalf("late record leaked into %d buckets", len(all))
	}
}

func TestAggregatorDefaults(t *testing.T) {
	a := NewAggregator(0, -time.Minute)
	if a.Step != time.Minute || a.Lateness != 0 {
		t.Fatalf("defaults wrong: %v %v", a.Step, a.Lateness)
	}
}

func TestAggregatorFlushEmpty(t *testing.T) {
	a := NewAggregator(time.Minute, 0)
	if got := a.Flush(); len(got) != 0 {
		t.Fatalf("empty flush = %v", got)
	}
}
