package netflow

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/netip"
	"time"
)

// NetFlow v5 wire format. One datagram carries a 24-byte header and up to
// 30 fixed 48-byte records. Flow start/end are expressed as router uptime
// in milliseconds; the header carries the router's wall clock, which lets
// the decoder recover absolute times.

const (
	v5Version    = 5
	v5HeaderLen  = 24
	v5RecordLen  = 48
	v5MaxRecords = 30
)

// MaxRecordsPerPacket is the v5 per-datagram record limit.
const MaxRecordsPerPacket = v5MaxRecords

// Header is the decoded v5 packet header.
type Header struct {
	Count            uint16
	SysUptime        uint32 // ms since router boot
	UnixTime         time.Time
	FlowSequence     uint32
	EngineType       uint8
	EngineID         uint8
	SamplingInterval uint16 // lower 14 bits
}

// EncodeV5 serializes up to MaxRecordsPerPacket records into one v5
// datagram. bootTime anchors the uptime clock; flowSeq is the sequence
// number of the first record; sampling is the 1:N sampling interval
// advertised in the header.
func EncodeV5(records []Record, bootTime, now time.Time, flowSeq uint32, sampling uint16) ([]byte, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("netflow: encode of empty record set")
	}
	if len(records) > v5MaxRecords {
		return nil, fmt.Errorf("netflow: %d records exceed v5 limit %d", len(records), v5MaxRecords)
	}
	uptime := now.Sub(bootTime)
	if uptime < 0 {
		return nil, fmt.Errorf("netflow: now precedes bootTime")
	}
	if uptime.Milliseconds() > math.MaxUint32 {
		return nil, fmt.Errorf("netflow: uptime %v overflows the v5 millisecond clock (~49.7 days)", uptime)
	}
	buf := make([]byte, v5HeaderLen+v5RecordLen*len(records))
	be := binary.BigEndian
	be.PutUint16(buf[0:], v5Version)
	be.PutUint16(buf[2:], uint16(len(records)))
	be.PutUint32(buf[4:], uint32(uptime.Milliseconds()))
	be.PutUint32(buf[8:], uint32(now.Unix()))
	be.PutUint32(buf[12:], uint32(now.Nanosecond()))
	be.PutUint32(buf[16:], flowSeq)
	buf[20] = 0 // engine type
	buf[21] = 1 // engine id
	be.PutUint16(buf[22:], sampling&0x3FFF)

	for i, r := range records {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("netflow: record %d: %w", i, err)
		}
		off := v5HeaderLen + i*v5RecordLen
		src := r.Src.Unmap().As4()
		dst := r.Dst.Unmap().As4()
		copy(buf[off:], src[:])
		copy(buf[off+4:], dst[:])
		// next hop (off+8), input/output ifindex (off+12) left zero
		be.PutUint32(buf[off+16:], r.Packets)
		be.PutUint32(buf[off+20:], r.Bytes)
		first := r.Start.Sub(bootTime).Milliseconds()
		last := r.End.Sub(bootTime).Milliseconds()
		if first < 0 || last < 0 {
			return nil, fmt.Errorf("netflow: record %d starts before bootTime", i)
		}
		if first > math.MaxUint32 || last > math.MaxUint32 {
			return nil, fmt.Errorf("netflow: record %d overflows the v5 millisecond clock (~49.7 days past bootTime)", i)
		}
		be.PutUint32(buf[off+24:], uint32(first))
		be.PutUint32(buf[off+28:], uint32(last))
		be.PutUint16(buf[off+32:], r.SrcPort)
		be.PutUint16(buf[off+34:], r.DstPort)
		// pad1 at off+36
		buf[off+37] = r.TCPFlags
		buf[off+38] = uint8(r.Proto)
		// tos at off+39
		be.PutUint16(buf[off+40:], r.SrcAS)
		be.PutUint16(buf[off+42:], r.DstAS)
		// masks + pad2 at off+44..47
	}
	return buf, nil
}

// DecodeV5 parses a v5 datagram, recovering absolute flow times from the
// header clock. Malformed input returns an error; it never panics. It
// allocates a fresh record slice per call; hot paths that reuse storage
// should call DecodeV5Into.
func DecodeV5(pkt []byte) (Header, []Record, error) {
	return DecodeV5Into(pkt, nil)
}

// DecodeV5Into parses a v5 datagram like DecodeV5, but appends the decoded
// records to recs[:0] and returns the result, so a caller-owned slice with
// capacity MaxRecordsPerPacket makes steady-state decoding allocation-free.
// The returned slice aliases recs when its capacity suffices (growth goes
// through append, so the provided backing array is never overrun). On error
// the returned slice is recs[:0] with unspecified contents past its length;
// the caller's records are never partially delivered.
func DecodeV5Into(pkt []byte, recs []Record) (Header, []Record, error) {
	recs = recs[:0]
	if len(pkt) < v5HeaderLen {
		return Header{}, recs, fmt.Errorf("netflow: packet too short for header: %d bytes", len(pkt))
	}
	be := binary.BigEndian
	if v := be.Uint16(pkt[0:]); v != v5Version {
		return Header{}, recs, fmt.Errorf("netflow: unsupported version %d", v)
	}
	h := Header{
		Count:            be.Uint16(pkt[2:]),
		SysUptime:        be.Uint32(pkt[4:]),
		UnixTime:         time.Unix(int64(be.Uint32(pkt[8:])), int64(be.Uint32(pkt[12:]))).UTC(),
		FlowSequence:     be.Uint32(pkt[16:]),
		EngineType:       pkt[20],
		EngineID:         pkt[21],
		SamplingInterval: be.Uint16(pkt[22:]) & 0x3FFF,
	}
	if h.Count == 0 || h.Count > v5MaxRecords {
		return Header{}, recs, fmt.Errorf("netflow: implausible record count %d", h.Count)
	}
	want := v5HeaderLen + int(h.Count)*v5RecordLen
	if len(pkt) < want {
		return Header{}, recs, fmt.Errorf("netflow: truncated packet: have %d bytes, header claims %d", len(pkt), want)
	}
	// bootTime = headerWallClock − sysUptime
	boot := h.UnixTime.Add(-time.Duration(h.SysUptime) * time.Millisecond)
	for i := 0; i < int(h.Count); i++ {
		off := v5HeaderLen + i*v5RecordLen
		var src, dst [4]byte
		copy(src[:], pkt[off:off+4])
		copy(dst[:], pkt[off+4:off+8])
		r := Record{
			Src:      netip.AddrFrom4(src),
			Dst:      netip.AddrFrom4(dst),
			Packets:  be.Uint32(pkt[off+16:]),
			Bytes:    be.Uint32(pkt[off+20:]),
			Start:    boot.Add(time.Duration(be.Uint32(pkt[off+24:])) * time.Millisecond),
			End:      boot.Add(time.Duration(be.Uint32(pkt[off+28:])) * time.Millisecond),
			SrcPort:  be.Uint16(pkt[off+32:]),
			DstPort:  be.Uint16(pkt[off+34:]),
			TCPFlags: pkt[off+37],
			Proto:    Proto(pkt[off+38]),
			SrcAS:    be.Uint16(pkt[off+40:]),
			DstAS:    be.Uint16(pkt[off+42:]),
		}
		if err := r.Validate(); err != nil {
			return Header{}, recs[:0], fmt.Errorf("netflow: record %d: %w", i, err)
		}
		recs = append(recs, r)
	}
	return h, recs, nil
}
