// Package netflow implements the traffic-feed substrate Xatu consumes: a
// flow-record model, a NetFlow v5 wire codec, a UDP exporter/collector pair
// (so the §2.6 deployment loop can run over a real socket), and 1:N packet
// sampling mirroring the ISP's sampled NetFlow (§2.2, sampling rates 1:1 to
// 1:10000).
package netflow

import (
	"fmt"
	"net/netip"
	"slices"
	"time"
)

// Proto is an IP protocol number. Only the three protocols the paper's
// volumetric features disaggregate are named; others pass through.
type Proto uint8

// Protocol numbers used throughout the repo.
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
)

// String returns the protocol name.
func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto-%d", uint8(p))
	}
}

// TCP flag bits as they appear in the NetFlow tcp_flags field.
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Record is one unidirectional flow record, the unit every other package
// consumes. Timestamps use wall-clock time; the v5 codec converts to/from
// router uptime internally.
type Record struct {
	Src      netip.Addr
	Dst      netip.Addr
	SrcPort  uint16
	DstPort  uint16
	Proto    Proto
	TCPFlags uint8
	Packets  uint32
	Bytes    uint32
	Start    time.Time
	End      time.Time
	SrcAS    uint16 // ingress AS, feeds the spoof origin check
	DstAS    uint16
}

// Validate performs sanity checks used by decoders and generators.
func (r *Record) Validate() error {
	if !r.Src.IsValid() || !r.Dst.IsValid() {
		return fmt.Errorf("netflow: invalid address in record")
	}
	if !r.Src.Unmap().Is4() || !r.Dst.Unmap().Is4() {
		return fmt.Errorf("netflow: only IPv4 flows supported")
	}
	if r.Packets == 0 {
		return fmt.Errorf("netflow: record with zero packets")
	}
	if r.End.Before(r.Start) {
		return fmt.Errorf("netflow: flow ends before it starts")
	}
	return nil
}

// CompareRecords is a total order over all record fields (timestamps
// first, then the flow 5-tuple, then counters): the canonical in-bucket
// order the ingest pipeline sorts by before feature extraction, so float
// accumulation order — and therefore the extracted vectors, bit for bit —
// does not depend on how records interleaved across workers.
func CompareRecords(a, b Record) int {
	if c := a.Start.Compare(b.Start); c != 0 {
		return c
	}
	if c := a.End.Compare(b.End); c != 0 {
		return c
	}
	if c := a.Src.Compare(b.Src); c != 0 {
		return c
	}
	if c := a.Dst.Compare(b.Dst); c != 0 {
		return c
	}
	if c := cmpU64(uint64(a.SrcPort), uint64(b.SrcPort)); c != 0 {
		return c
	}
	if c := cmpU64(uint64(a.DstPort), uint64(b.DstPort)); c != 0 {
		return c
	}
	if c := cmpU64(uint64(a.Proto), uint64(b.Proto)); c != 0 {
		return c
	}
	if c := cmpU64(uint64(a.TCPFlags), uint64(b.TCPFlags)); c != 0 {
		return c
	}
	if c := cmpU64(uint64(a.Packets), uint64(b.Packets)); c != 0 {
		return c
	}
	if c := cmpU64(uint64(a.Bytes), uint64(b.Bytes)); c != 0 {
		return c
	}
	if c := cmpU64(uint64(a.SrcAS), uint64(b.SrcAS)); c != 0 {
		return c
	}
	return cmpU64(uint64(a.DstAS), uint64(b.DstAS))
}

func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// SortRecordsCanonical sorts recs by CompareRecords in place without
// allocating.
func SortRecordsCanonical(recs []Record) {
	slices.SortFunc(recs, CompareRecords)
}
