// Package netflow implements the traffic-feed substrate Xatu consumes: a
// flow-record model, a NetFlow v5 wire codec, a UDP exporter/collector pair
// (so the §2.6 deployment loop can run over a real socket), and 1:N packet
// sampling mirroring the ISP's sampled NetFlow (§2.2, sampling rates 1:1 to
// 1:10000).
package netflow

import (
	"fmt"
	"net/netip"
	"time"
)

// Proto is an IP protocol number. Only the three protocols the paper's
// volumetric features disaggregate are named; others pass through.
type Proto uint8

// Protocol numbers used throughout the repo.
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
)

// String returns the protocol name.
func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto-%d", uint8(p))
	}
}

// TCP flag bits as they appear in the NetFlow tcp_flags field.
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Record is one unidirectional flow record, the unit every other package
// consumes. Timestamps use wall-clock time; the v5 codec converts to/from
// router uptime internally.
type Record struct {
	Src      netip.Addr
	Dst      netip.Addr
	SrcPort  uint16
	DstPort  uint16
	Proto    Proto
	TCPFlags uint8
	Packets  uint32
	Bytes    uint32
	Start    time.Time
	End      time.Time
	SrcAS    uint16 // ingress AS, feeds the spoof origin check
	DstAS    uint16
}

// Validate performs sanity checks used by decoders and generators.
func (r *Record) Validate() error {
	if !r.Src.IsValid() || !r.Dst.IsValid() {
		return fmt.Errorf("netflow: invalid address in record")
	}
	if !r.Src.Unmap().Is4() || !r.Dst.Unmap().Is4() {
		return fmt.Errorf("netflow: only IPv4 flows supported")
	}
	if r.Packets == 0 {
		return fmt.Errorf("netflow: record with zero packets")
	}
	if r.End.Before(r.Start) {
		return fmt.Errorf("netflow: flow ends before it starts")
	}
	return nil
}
