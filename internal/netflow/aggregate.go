package netflow

import (
	"net/netip"
	"sort"
	"time"
)

// Aggregator rolls a stream of flow records (whose timestamps may arrive
// slightly out of order, as NetFlow exports do) into fixed-duration step
// batches grouped by destination — the per-customer per-minute view the
// feature extractor consumes. A watermark seals a bucket once records
// Lateness past its end have been seen; later stragglers are counted and
// dropped rather than reopening history.
type Aggregator struct {
	Step     time.Duration
	Lateness time.Duration

	buckets   map[int64]*StepBatch
	watermark time.Time
	dropped   uint64
}

// StepBatch is one sealed aggregation step.
type StepBatch struct {
	Start time.Time
	ByDst map[netip.Addr][]Record
}

// NewAggregator returns an aggregator with the given step and lateness
// allowance (how far out of order records may arrive).
func NewAggregator(step, lateness time.Duration) *Aggregator {
	if step <= 0 {
		step = time.Minute
	}
	if lateness < 0 {
		lateness = 0
	}
	return &Aggregator{Step: step, Lateness: lateness, buckets: make(map[int64]*StepBatch)}
}

// Add consumes one record and returns any batches its arrival sealed,
// oldest first.
func (a *Aggregator) Add(r Record) []StepBatch {
	bucketStart := r.Start.Truncate(a.Step)
	if !a.watermark.IsZero() && bucketStart.Add(a.Step+a.Lateness).Before(a.watermark) {
		a.dropped++
		return a.advance(r.Start)
	}
	key := bucketStart.UnixNano()
	b := a.buckets[key]
	if b == nil {
		b = &StepBatch{Start: bucketStart, ByDst: make(map[netip.Addr][]Record)}
		a.buckets[key] = b
	}
	b.ByDst[r.Dst] = append(b.ByDst[r.Dst], r)
	return a.advance(r.Start)
}

// advance moves the watermark and seals ripe buckets.
func (a *Aggregator) advance(eventTime time.Time) []StepBatch {
	if eventTime.After(a.watermark) {
		a.watermark = eventTime
	}
	var sealed []StepBatch
	for key, b := range a.buckets {
		if b.Start.Add(a.Step + a.Lateness).Before(a.watermark) {
			sealed = append(sealed, *b)
			delete(a.buckets, key)
		}
	}
	sort.Slice(sealed, func(i, j int) bool { return sealed[i].Start.Before(sealed[j].Start) })
	return sealed
}

// Flush seals and returns every pending bucket, oldest first.
func (a *Aggregator) Flush() []StepBatch {
	out := make([]StepBatch, 0, len(a.buckets))
	for key, b := range a.buckets {
		out = append(out, *b)
		delete(a.buckets, key)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Dropped reports records discarded for arriving later than the allowance.
func (a *Aggregator) Dropped() uint64 { return a.dropped }
