package netflow

import (
	"net/netip"
	"time"
)

// Aggregator rolls a stream of flow records (whose timestamps may arrive
// slightly out of order, as NetFlow exports do) into fixed-duration step
// batches grouped by destination — the per-customer per-minute view the
// feature extractor consumes. A watermark seals a bucket once records
// Lateness past its end have been seen; later stragglers are counted and
// dropped rather than reopening history.
//
// Sealed storage is recycled: Recycle returns a consumed batch's map and
// record slices to internal free-lists, so a warmed-up aggregator adds
// records and seals steps without allocating. An Aggregator is not safe
// for concurrent use.
type Aggregator struct {
	Step     time.Duration
	Lateness time.Duration

	buckets   map[int64]*StepBatch
	watermark time.Time
	dropped   uint64
	// oldestDL is the seal deadline (Start + Step + Lateness) of the
	// earliest open bucket, zero when none are open: the per-record
	// advance fast path compares the watermark against it and skips the
	// bucket scan entirely while nothing can seal. Precomputed so the
	// per-record check is one comparison, not a time.Add.
	oldestDL time.Time
	// curBatch/curEnd memoize the bucket the previous record landed in:
	// consecutive records usually share a bucket, and hitting the memo
	// skips the Truncate and both map lookups. Invalidated whenever any
	// bucket seals (the memoized one may be among them).
	curBatch *StepBatch
	curEnd   time.Time

	// sealed is the reused result buffer for Add and Flush; its contents
	// are valid until the next Add or Flush call.
	sealed []StepBatch
	// Free-lists for sealed-batch storage, refilled by Recycle.
	freeBatches []*StepBatch
	freeMaps    []map[netip.Addr][]Record
	freeRecs    [][]Record
	poolHits    uint64
	poolMisses  uint64
}

// StepBatch is one sealed aggregation step.
type StepBatch struct {
	Start time.Time
	ByDst map[netip.Addr][]Record
}

// NewAggregator returns an aggregator with the given step and lateness
// allowance (how far out of order records may arrive).
func NewAggregator(step, lateness time.Duration) *Aggregator {
	if step <= 0 {
		step = time.Minute
	}
	if lateness < 0 {
		lateness = 0
	}
	return &Aggregator{Step: step, Lateness: lateness, buckets: make(map[int64]*StepBatch)}
}

// Add consumes one record and returns any batches its arrival sealed,
// oldest first. The returned slice and the batches it holds are owned by
// the aggregator and remain valid only until the next Add or Flush call;
// consume them (and Recycle their storage) before adding more records.
func (a *Aggregator) Add(r Record) []StepBatch {
	return a.add(&r)
}

// AddBatch adds recs in order, invoking emit for every non-empty sealed
// set as it appears. Unlike a loop over Add, records are consumed through
// pointers — no per-call copy of the (large) Record struct — which is
// measurable at ingest-pipeline rates. The emitted batches follow Add's
// ownership rules: consume (and Recycle) inside emit.
func (a *Aggregator) AddBatch(recs []Record, emit func([]StepBatch)) {
	for i := range recs {
		if sealed := a.add(&recs[i]); len(sealed) > 0 {
			emit(sealed)
		}
	}
}

func (a *Aggregator) add(r *Record) []StepBatch {
	b := a.curBatch
	if b == nil || r.Start.Before(b.Start) || !r.Start.Before(a.curEnd) {
		var sealed []StepBatch
		b, sealed = a.lookupBucket(r)
		if b == nil {
			return sealed
		}
	}
	lst, ok := b.ByDst[r.Dst]
	if !ok {
		lst = a.newRecSlice()
	}
	b.ByDst[r.Dst] = append(lst, *r)
	return a.advance(r.Start)
}

// lookupBucket resolves (creating if needed) the bucket for r on a memo
// miss, or drops r as late (nil bucket, returning the sealed batches its
// watermark advance produced).
func (a *Aggregator) lookupBucket(r *Record) (*StepBatch, []StepBatch) {
	bucketStart := r.Start.Truncate(a.Step)
	if !a.watermark.IsZero() && bucketStart.Add(a.Step+a.Lateness).Before(a.watermark) {
		a.dropped++
		return nil, a.advance(r.Start)
	}
	key := bucketStart.UnixNano()
	b := a.buckets[key]
	if b == nil {
		b = a.newBatch(bucketStart)
		a.buckets[key] = b
		dl := bucketStart.Add(a.Step + a.Lateness)
		if a.oldestDL.IsZero() || dl.Before(a.oldestDL) {
			a.oldestDL = dl
		}
	}
	a.curBatch, a.curEnd = b, bucketStart.Add(a.Step)
	return b, nil
}

// newBatch takes a batch box and map from the free-lists, or allocates.
func (a *Aggregator) newBatch(start time.Time) *StepBatch {
	var b *StepBatch
	if n := len(a.freeBatches); n > 0 {
		b = a.freeBatches[n-1]
		a.freeBatches = a.freeBatches[:n-1]
	} else {
		b = new(StepBatch)
	}
	b.Start = start
	if n := len(a.freeMaps); n > 0 {
		b.ByDst = a.freeMaps[n-1]
		a.freeMaps = a.freeMaps[:n-1]
		a.poolHits++
	} else {
		b.ByDst = make(map[netip.Addr][]Record)
		a.poolMisses++
	}
	return b
}

// newRecSlice takes an empty record slice with warmed capacity from the
// free-list, or returns nil (append will allocate).
func (a *Aggregator) newRecSlice() []Record {
	if n := len(a.freeRecs); n > 0 {
		s := a.freeRecs[n-1]
		a.freeRecs = a.freeRecs[:n-1]
		a.poolHits++
		return s
	}
	a.poolMisses++
	return nil
}

// advance moves the watermark and seals ripe buckets into the reused
// sealed buffer, oldest first.
func (a *Aggregator) advance(eventTime time.Time) []StepBatch {
	if eventTime.After(a.watermark) {
		a.watermark = eventTime
	}
	a.sealed = a.sealed[:0]
	// Fast path: nothing can seal until the watermark passes the oldest
	// open bucket's deadline, so the per-record common case is one time
	// comparison, not a map scan.
	if a.oldestDL.IsZero() || !a.oldestDL.Before(a.watermark) {
		return a.sealed
	}
	a.oldestDL = time.Time{}
	a.curBatch = nil // the memoized bucket may be among the sealed
	for key, b := range a.buckets {
		dl := b.Start.Add(a.Step + a.Lateness)
		if dl.Before(a.watermark) {
			a.seal(b)
			delete(a.buckets, key)
		} else if a.oldestDL.IsZero() || dl.Before(a.oldestDL) {
			a.oldestDL = dl
		}
	}
	sortBatchesByStart(a.sealed)
	return a.sealed
}

// seal moves a bucket's contents into the sealed buffer and returns the
// empty box to the free-list (its map now belongs to the sealed value).
func (a *Aggregator) seal(b *StepBatch) {
	a.sealed = append(a.sealed, *b)
	b.ByDst = nil
	a.freeBatches = append(a.freeBatches, b)
}

// Flush seals and returns every pending bucket, oldest first. Like Add,
// the returned slice is valid only until the next Add or Flush call.
func (a *Aggregator) Flush() []StepBatch {
	a.sealed = a.sealed[:0]
	a.oldestDL = time.Time{}
	a.curBatch = nil
	for key, b := range a.buckets {
		a.seal(b)
		delete(a.buckets, key)
	}
	sortBatchesByStart(a.sealed)
	return a.sealed
}

// sortBatchesByStart orders sealed batches oldest first. Map iteration
// hands them over in random order, so without this sort flushed steps
// would replay out of sequence. Insertion sort: the sealed set per call is
// tiny (usually 0 or 1) and this keeps the hot path allocation-free where
// sort.Slice would allocate its closure.
func sortBatchesByStart(bs []StepBatch) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j].Start.Before(bs[j-1].Start); j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}

// Recycle returns a consumed batch's storage — the ByDst map and every
// per-destination record slice — to the aggregator's free-lists. Call it
// once per sealed batch after the batch's records are fully consumed; the
// caller must not retain the map or any record slice afterwards.
func (a *Aggregator) Recycle(b StepBatch) {
	if b.ByDst == nil {
		return
	}
	for dst, recs := range b.ByDst {
		a.freeRecs = append(a.freeRecs, recs[:0])
		delete(b.ByDst, dst)
	}
	a.freeMaps = append(a.freeMaps, b.ByDst)
}

// RecycleShell is Recycle for hand-off consumers: the ByDst map returns to
// the free-list but the per-destination record slices stay with whoever
// the batch's records were handed to (e.g. an engine mailbox).
func (a *Aggregator) RecycleShell(b StepBatch) {
	if b.ByDst == nil {
		return
	}
	clear(b.ByDst)
	a.freeMaps = append(a.freeMaps, b.ByDst)
}

// Dropped reports records discarded for arriving later than the allowance.
func (a *Aggregator) Dropped() uint64 { return a.dropped }

// PoolStats reports free-list hits and misses for sealed-batch storage
// (maps and record slices). A warmed-up steady state shows hits only.
func (a *Aggregator) PoolStats() (hits, misses uint64) { return a.poolHits, a.poolMisses }
