package netflow

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
	"time"
)

// FuzzDecodeV5 asserts the v5 decoder never panics and that anything it
// accepts re-encodes to an equivalent record set.
func FuzzDecodeV5(f *testing.F) {
	// Seed with a valid packet and some mutations.
	boot := time.Date(2019, 4, 24, 0, 0, 0, 0, time.UTC)
	now := boot.Add(time.Hour)
	rec := Record{
		Src: mustAddr4(11, 1, 2, 3), Dst: mustAddr4(23, 4, 5, 6),
		SrcPort: 53, DstPort: 4444, Proto: ProtoUDP,
		Packets: 10, Bytes: 640,
		Start: boot.Add(30 * time.Minute), End: boot.Add(31 * time.Minute),
	}
	good, err := EncodeV5([]Record{rec}, boot, now, 1, 100)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:10])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 100))

	f.Fuzz(func(t *testing.T, pkt []byte) {
		h, recs, err := DecodeV5(pkt)

		// The Into variant must agree with DecodeV5 bit for bit — same
		// header, same records, same accept/reject decision — whether the
		// caller's slice is nil, generously sized, or too small to hold
		// even one record (forcing append growth). It must never touch the
		// caller's backing array past the capacity it was handed.
		backing := make([]Record, 4, 36)
		sentinel := Record{SrcPort: 0xDEAD, DstPort: 0xBEEF}
		for i := range backing {
			backing[i] = sentinel
		}
		for _, into := range [][]Record{nil, make([]Record, 0, MaxRecordsPerPacket), backing[:0:2]} {
			h2, recs2, err2 := DecodeV5Into(pkt, into)
			if (err == nil) != (err2 == nil) {
				t.Fatalf("DecodeV5 err=%v, DecodeV5Into err=%v", err, err2)
			}
			if err != nil {
				continue
			}
			if h2 != h {
				t.Fatalf("header mismatch: %+v vs %+v", h, h2)
			}
			if len(recs2) != len(recs) {
				t.Fatalf("record count mismatch: %d vs %d", len(recs), len(recs2))
			}
			for i := range recs {
				if recs[i] != recs2[i] {
					t.Fatalf("record %d mismatch:\n  %+v\n  %+v", i, recs[i], recs2[i])
				}
			}
		}
		// Capacity-2 slice: positions 2 and 3 of the original backing array
		// lie beyond the handed-over capacity and must be untouched.
		for i := 2; i < 4; i++ {
			if backing[i] != sentinel {
				t.Fatalf("DecodeV5Into wrote past the provided slice at %d", i)
			}
		}

		if err != nil {
			return
		}
		if int(h.Count) != len(recs) {
			t.Fatalf("header count %d != records %d", h.Count, len(recs))
		}
		for _, r := range recs {
			if err := r.Validate(); err != nil {
				t.Fatalf("decoder accepted invalid record: %v", err)
			}
		}
	})
}

// FuzzJournalReader asserts the journal reader never panics on corrupt
// streams and either errors or yields valid records.
func FuzzJournalReader(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewJournalWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	base := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	_ = w.Write(Record{
		Src: mustAddr4(11, 1, 1, 1), Dst: mustAddr4(23, 1, 1, 1),
		Proto: ProtoTCP, TCPFlags: FlagACK, Packets: 5, Bytes: 500,
		Start: base, End: base.Add(time.Minute),
	})
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:5])
	f.Add([]byte("XFJ1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		jr, err := NewJournalReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			r, err := jr.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return // truncation/corruption errors are fine
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("reader yielded invalid record: %v", err)
			}
		}
	})
}

// FuzzJournalRoundTrip fuzzes record fields through a write→read cycle:
// whatever the writer accepts must read back identically, and truncating
// the encoded stream mid-record must yield ErrJournalTruncated (never a
// panic, never a bogus record).
func FuzzJournalRoundTrip(f *testing.F) {
	f.Add(uint32(0x0B010101), uint32(0x17010101), uint16(53), uint16(4444),
		uint8(17), uint8(0), uint16(64512), uint32(10), uint32(640), int64(1556064000000), int64(1556064060000))
	f.Add(uint32(0), uint32(0), uint16(0), uint16(0), uint8(0), uint8(0), uint16(0), uint32(0), uint32(0), int64(0), int64(0))
	f.Add(^uint32(0), ^uint32(0), ^uint16(0), ^uint16(0), ^uint8(0), ^uint8(0), ^uint16(0),
		^uint32(0), ^uint32(0), int64(1<<40), int64(1<<41))

	f.Fuzz(func(t *testing.T, src, dst uint32, sport, dport uint16, proto, flags uint8,
		srcAS uint16, packets, bytesN uint32, startMilli, endMilli int64) {
		rec := Record{
			Src:     netip.AddrFrom4([4]byte{byte(src >> 24), byte(src >> 16), byte(src >> 8), byte(src)}),
			Dst:     netip.AddrFrom4([4]byte{byte(dst >> 24), byte(dst >> 16), byte(dst >> 8), byte(dst)}),
			SrcPort: sport, DstPort: dport,
			Proto: Proto(proto), TCPFlags: flags, SrcAS: srcAS,
			Packets: packets, Bytes: bytesN,
			Start: time.UnixMilli(startMilli).UTC(),
			End:   time.UnixMilli(endMilli).UTC(),
		}
		var buf bytes.Buffer
		w, err := NewJournalWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(rec); err != nil {
			return // writer rejected an invalid record: fine
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()

		jr, err := NewJournalReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("reader rejected writer output: %v", err)
		}
		got, err := jr.Next()
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if got != rec {
			t.Fatalf("round trip mismatch:\n  wrote %+v\n  read  %+v", rec, got)
		}
		if _, err := jr.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("expected clean EOF after one record, got %v", err)
		}

		// Any truncation inside the record body must surface as
		// ErrJournalTruncated.
		for _, cut := range []int{1, journalRecordLen / 2, journalRecordLen - 1} {
			trunc := data[:len(data)-cut]
			jr, err := NewJournalReader(bytes.NewReader(trunc))
			if err != nil {
				t.Fatalf("header should survive a body truncation: %v", err)
			}
			if _, err := jr.Next(); !errors.Is(err, ErrJournalTruncated) {
				t.Fatalf("truncated by %d bytes: got %v, want ErrJournalTruncated", cut, err)
			}
		}
	})
}

func mustAddr4(a, b, c, d byte) netip.Addr { return netip.AddrFrom4([4]byte{a, b, c, d}) }
