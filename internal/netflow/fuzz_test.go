package netflow

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
	"time"
)

// FuzzDecodeV5 asserts the v5 decoder never panics and that anything it
// accepts re-encodes to an equivalent record set.
func FuzzDecodeV5(f *testing.F) {
	// Seed with a valid packet and some mutations.
	boot := time.Date(2019, 4, 24, 0, 0, 0, 0, time.UTC)
	now := boot.Add(time.Hour)
	rec := Record{
		Src: mustAddr4(11, 1, 2, 3), Dst: mustAddr4(23, 4, 5, 6),
		SrcPort: 53, DstPort: 4444, Proto: ProtoUDP,
		Packets: 10, Bytes: 640,
		Start: boot.Add(30 * time.Minute), End: boot.Add(31 * time.Minute),
	}
	good, err := EncodeV5([]Record{rec}, boot, now, 1, 100)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:10])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 100))

	f.Fuzz(func(t *testing.T, pkt []byte) {
		h, recs, err := DecodeV5(pkt)
		if err != nil {
			return
		}
		if int(h.Count) != len(recs) {
			t.Fatalf("header count %d != records %d", h.Count, len(recs))
		}
		for _, r := range recs {
			if err := r.Validate(); err != nil {
				t.Fatalf("decoder accepted invalid record: %v", err)
			}
		}
	})
}

// FuzzJournalReader asserts the journal reader never panics on corrupt
// streams and either errors or yields valid records.
func FuzzJournalReader(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewJournalWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	base := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	_ = w.Write(Record{
		Src: mustAddr4(11, 1, 1, 1), Dst: mustAddr4(23, 1, 1, 1),
		Proto: ProtoTCP, TCPFlags: FlagACK, Packets: 5, Bytes: 500,
		Start: base, End: base.Add(time.Minute),
	})
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:5])
	f.Add([]byte("XFJ1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		jr, err := NewJournalReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			r, err := jr.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return // truncation/corruption errors are fine
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("reader yielded invalid record: %v", err)
			}
		}
	})
}

func mustAddr4(a, b, c, d byte) netip.Addr { return netip.AddrFrom4([4]byte{a, b, c, d}) }
