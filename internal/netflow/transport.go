package netflow

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Exporter batches flow records into NetFlow v5 datagrams and sends them to
// a collector over UDP, mirroring a router's NetFlow export engine.
type Exporter struct {
	conn     net.Conn
	bootTime time.Time
	sampling uint16

	mu      sync.Mutex
	pending []Record
	seq     uint32
	sent    uint64
}

// NewExporter dials the collector at addr ("host:port").
func NewExporter(addr string, sampling uint16) (*Exporter, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: dialing collector: %w", err)
	}
	return &Exporter{
		conn:     conn,
		bootTime: time.Now().Add(-time.Minute), // pretend the router booted a minute ago
		sampling: sampling,
	}, nil
}

// Export queues a record, flushing a full datagram when 30 records are
// pending.
func (e *Exporter) Export(r Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pending = append(e.pending, r)
	if len(e.pending) >= MaxRecordsPerPacket {
		return e.flushLocked()
	}
	return nil
}

// Flush sends any pending records immediately.
func (e *Exporter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flushLocked()
}

func (e *Exporter) flushLocked() error {
	if len(e.pending) == 0 {
		return nil
	}
	// Clamp flow timestamps into the exporter's uptime epoch; simulated
	// flows may carry synthetic wall-clock times predating bootTime.
	now := time.Now()
	batch := make([]Record, len(e.pending))
	copy(batch, e.pending)
	for i := range batch {
		if batch[i].Start.Before(e.bootTime) {
			d := batch[i].End.Sub(batch[i].Start)
			batch[i].Start = e.bootTime
			batch[i].End = e.bootTime.Add(d)
		}
		if batch[i].End.After(now) {
			batch[i].End = now
			if batch[i].Start.After(now) {
				batch[i].Start = now
			}
		}
	}
	pkt, err := EncodeV5(batch, e.bootTime, now, e.seq, e.sampling)
	if err != nil {
		return err
	}
	if _, err := e.conn.Write(pkt); err != nil {
		return fmt.Errorf("netflow: sending datagram: %w", err)
	}
	e.seq += uint32(len(batch))
	e.sent += uint64(len(batch))
	e.pending = e.pending[:0]
	return nil
}

// Sent reports the number of records exported so far.
func (e *Exporter) Sent() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sent
}

// Close flushes and closes the underlying socket.
func (e *Exporter) Close() error {
	flushErr := e.Flush()
	closeErr := e.conn.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Collector listens for NetFlow v5 datagrams and delivers decoded records
// on a channel, the shape Xatu's online detector consumes.
type Collector struct {
	pc      net.PacketConn
	out     chan Record
	dropped uint64
	badPkts uint64
	mu      sync.Mutex
}

// NewCollector binds a UDP listener on addr (use "127.0.0.1:0" for an
// ephemeral test port). bufSize is the channel capacity; records are
// dropped (and counted) when the consumer falls behind, matching how real
// collectors shed load rather than block the socket reader.
func NewCollector(addr string, bufSize int) (*Collector, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: binding collector: %w", err)
	}
	return &Collector{pc: pc, out: make(chan Record, bufSize)}, nil
}

// Addr returns the bound listen address.
func (c *Collector) Addr() string { return c.pc.LocalAddr().String() }

// Records is the stream of decoded flow records. It is closed when Run
// returns.
func (c *Collector) Records() <-chan Record { return c.out }

// Run reads datagrams until ctx is canceled or the socket is closed.
// Malformed packets are counted and skipped.
func (c *Collector) Run(ctx context.Context) error {
	defer close(c.out)
	go func() {
		<-ctx.Done()
		c.pc.Close()
	}()
	buf := make([]byte, 65535)
	for {
		n, _, err := c.pc.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("netflow: reading datagram: %w", err)
		}
		_, recs, err := DecodeV5(buf[:n])
		if err != nil {
			c.mu.Lock()
			c.badPkts++
			c.mu.Unlock()
			continue
		}
		for _, r := range recs {
			select {
			case c.out <- r:
			default:
				c.mu.Lock()
				c.dropped++
				c.mu.Unlock()
			}
		}
	}
}

// Stats reports dropped records and malformed packets seen so far.
func (c *Collector) Stats() (dropped, badPackets uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped, c.badPkts
}

// Sampler applies 1:N random packet sampling to a flow stream, the way the
// ISP's routers sample NetFlow (§2.2). For a flow of P packets it draws the
// number of sampled packets from Binomial(P, 1/N) and, when positive, emits
// the flow with packet and byte counts scaled back up by N — the standard
// inversion estimator, unbiased in expectation (verified by tests).
type Sampler struct {
	N   int
	rng *rand.Rand
}

// NewSampler returns a 1:n sampler; n <= 1 passes everything through.
func NewSampler(n int, rng *rand.Rand) *Sampler {
	if n < 1 {
		n = 1
	}
	return &Sampler{N: n, rng: rng}
}

// Sample returns the sampled-and-rescaled record and whether it survived.
func (s *Sampler) Sample(r Record) (Record, bool) {
	if s.N == 1 {
		return r, true
	}
	p := 1 / float64(s.N)
	var kept uint32
	// Binomial draw; flows are small enough (minutes of traffic) that a
	// direct Bernoulli loop is fine and exact.
	if r.Packets > 10000 {
		// Gaussian approximation for big flows to bound CPU.
		mean := float64(r.Packets) * p
		sd := mean * (1 - p)
		k := s.rng.NormFloat64()*math.Sqrt(sd) + mean
		if k < 0 {
			k = 0
		}
		kept = uint32(k + 0.5)
		if kept > r.Packets {
			kept = r.Packets
		}
	} else {
		for i := uint32(0); i < r.Packets; i++ {
			if s.rng.Float64() < p {
				kept++
			}
		}
	}
	if kept == 0 {
		return Record{}, false
	}
	bytesPerPkt := float64(r.Bytes) / float64(r.Packets)
	out := r
	out.Packets = kept * uint32(s.N)
	out.Bytes = uint32(bytesPerPkt*float64(kept)*float64(s.N) + 0.5)
	return out, true
}
