package netflow

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/xatu-go/xatu/internal/telemetry"
	"github.com/xatu-go/xatu/internal/trace"
)

// ErrExporterClosed is returned by Export/Flush after Close.
var ErrExporterClosed = errors.New("netflow: exporter is closed")

// ExporterConfig tunes the fault-tolerant exporter. The zero value of every
// optional field picks a sensible default.
type ExporterConfig struct {
	// Addr is the collector address ("host:port"); used by the default
	// dialer and ignored when Dial is set.
	Addr string
	// Sampling is the advertised 1:N sampling interval.
	Sampling uint16
	// MaxPending caps the pending-record queue while the collector is
	// unreachable; overflow sheds the oldest records (counted in Stats).
	// Default 4096.
	MaxPending int
	// BaseBackoff is the initial reconnect delay after a write or dial
	// failure; it doubles per consecutive failure up to MaxBackoff.
	// Defaults 50ms and 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Dial opens the collector socket; nil dials UDP to Addr. Tests inject
	// chaos conns here.
	Dial func() (net.Conn, error)
	// BootTime, when set, anchors the v5 uptime clock at a fixed instant
	// and runs the exporter entirely on the record clock: the datagram
	// header's wall clock tracks the latest flow End exported instead of
	// time.Now(), so decoded records recover their original timestamps.
	// Use this when exporting simulated or replayed flows to an event-time
	// consumer (e.g. the ingest pipeline); BootTime must precede every
	// record's Start by less than the uptime clock's ~49-day range. Zero
	// keeps the default live behavior (boot ≈ one minute before
	// construction, flow times clamped into the wall-clock epoch).
	BootTime time.Time
	// TraceSample, when positive, enables deterministic 1-in-N flow
	// tracing: datagrams carrying at least one sampled customer (by
	// trace.Sampler's stable hash of the destination) get a versioned
	// trailer stamping the export wall clock, which downstream decoders
	// use to anchor the export→decode latency leg. Decoders without
	// tracing ignore the trailer. Zero (the default) leaves the wire
	// format untouched.
	TraceSample int
}

// ExporterStats counts the exporter's fault-handling activity.
type ExporterStats struct {
	Sent        uint64 // records successfully written to the socket
	Shed        uint64 // records dropped because the pending queue overflowed
	WriteErrors uint64 // datagram write failures
	DialErrors  uint64 // reconnect attempts that failed
	Reconnects  uint64 // successful re-dials after a failure
	Pending     int    // records currently queued
}

// Exporter batches flow records into NetFlow v5 datagrams and sends them to
// a collector over UDP, mirroring a router's NetFlow export engine. A write
// failure no longer kills the exporter: records queue (bounded) while it
// reconnects with exponential backoff, and overflow is shed oldest-first,
// exactly like a router's export buffer.
type Exporter struct {
	dial     func() (net.Conn, error)
	bootTime time.Time
	simClock bool // record-clock mode: header clock follows flow times, not time.Now
	sampling uint16
	tracer   *trace.Sampler // nil = tracing off (no wire change, no per-record hash)

	mu          sync.Mutex
	conn        net.Conn // nil while disconnected
	pending     []Record
	seq         uint32
	closed      bool
	maxPending  int
	baseBackoff time.Duration
	maxBackoff  time.Duration
	backoff     time.Duration // next reconnect delay (pre-jitter)
	// jitter draws the actual wait from the current backoff ceiling; the
	// default is full jitter (uniform in [0, d]). Injectable for tests.
	jitter    func(d time.Duration) time.Duration
	downUntil time.Time // no send attempts before this instant
	hdrClock  time.Time // record-clock mode: latest flow End exported (monotone)
	stats     ExporterStats
}

// NewExporter dials the collector at addr ("host:port") with default
// fault-tolerance settings.
func NewExporter(addr string, sampling uint16) (*Exporter, error) {
	return NewExporterWithConfig(ExporterConfig{Addr: addr, Sampling: sampling})
}

// NewExporterWithConfig dials the collector with explicit queue and
// backoff settings. The initial dial must succeed; later failures are
// absorbed by the reconnect loop.
func NewExporterWithConfig(cfg ExporterConfig) (*Exporter, error) {
	dial := cfg.Dial
	if dial == nil {
		addr := cfg.Addr
		dial = func() (net.Conn, error) { return net.Dial("udp", addr) }
	}
	conn, err := dial()
	if err != nil {
		return nil, fmt.Errorf("netflow: dialing collector: %w", err)
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 4096
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	bootTime := cfg.BootTime
	simClock := !bootTime.IsZero()
	if !simClock {
		bootTime = time.Now().Add(-time.Minute) // pretend the router booted a minute ago
	}
	return &Exporter{
		dial:        dial,
		conn:        conn,
		bootTime:    bootTime,
		simClock:    simClock,
		hdrClock:    bootTime,
		sampling:    cfg.Sampling,
		tracer:      trace.NewSampler(cfg.TraceSample),
		maxPending:  cfg.MaxPending,
		baseBackoff: cfg.BaseBackoff,
		maxBackoff:  cfg.MaxBackoff,
		backoff:     cfg.BaseBackoff,
		jitter:      fullJitter,
	}, nil
}

// fullJitter draws a delay uniformly from [0, d]. A fleet of exporters cut
// off by the same collector outage spreads its reconnect attempts across
// the whole backoff window instead of thundering back in lockstep.
func fullJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(d) + 1))
}

// nextBackoffLocked returns the jittered delay before the next reconnect
// attempt and doubles the schedule up to the MaxBackoff ceiling.
func (e *Exporter) nextBackoffLocked() time.Duration {
	d := e.jitter(e.backoff)
	e.backoff = minDuration(e.backoff*2, e.maxBackoff)
	return d
}

// Export queues a record, flushing a full datagram when 30 records are
// pending. Invalid records are rejected immediately so they can never
// poison the retry queue. Transport failures are absorbed (see Stats),
// not returned.
func (e *Exporter) Export(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrExporterClosed
	}
	e.pending = append(e.pending, r)
	if over := len(e.pending) - e.maxPending; over > 0 {
		e.stats.Shed += uint64(over)
		e.pending = e.pending[over:] // shed oldest: fresher telemetry wins
	}
	if len(e.pending) >= MaxRecordsPerPacket {
		return e.flushLocked()
	}
	return nil
}

// Flush sends any pending records immediately (as many full datagrams as
// needed). While the collector is unreachable records stay queued and
// Flush returns nil; failures are visible via Stats.
func (e *Exporter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrExporterClosed
	}
	return e.flushLocked()
}

func (e *Exporter) flushLocked() error {
	for len(e.pending) > 0 {
		if e.conn == nil && !e.redialLocked() {
			return nil // still backing off; records stay pending
		}
		n := len(e.pending)
		if n > MaxRecordsPerPacket {
			n = MaxRecordsPerPacket
		}
		// Clamp flow timestamps into the exporter's uptime epoch; simulated
		// flows may carry synthetic wall-clock times predating bootTime. In
		// record-clock mode there is no wall clamp — the header clock instead
		// follows the latest flow End (kept monotone across datagrams), so
		// decoded records recover their original timestamps.
		now := time.Now()
		batch := make([]Record, n)
		copy(batch, e.pending[:n])
		for i := range batch {
			if batch[i].Start.Before(e.bootTime) {
				d := batch[i].End.Sub(batch[i].Start)
				batch[i].Start = e.bootTime
				batch[i].End = e.bootTime.Add(d)
			}
			if e.simClock {
				if batch[i].End.After(e.hdrClock) {
					e.hdrClock = batch[i].End
				}
				continue
			}
			if batch[i].End.After(now) {
				batch[i].End = now
				if batch[i].Start.After(now) {
					batch[i].Start = now
				}
			}
		}
		if e.simClock {
			now = e.hdrClock
		}
		pkt, err := EncodeV5(batch, e.bootTime, now, e.seq, e.sampling)
		if err != nil {
			// Records are validated on Export, so this is unreachable in
			// practice; shed the batch rather than wedge the queue on it.
			e.stats.Shed += uint64(n)
			e.pending = e.pending[n:]
			continue
		}
		if e.tracer != nil && batchSampled(e.tracer, batch) {
			// Stamp the export wall clock (real time even in record-clock
			// mode: trace latencies measure the serving path, not the
			// simulated world) so the first ingest hop can anchor the
			// export→decode leg. Old decoders ignore the extra bytes.
			pkt = AppendTrailerV1(pkt, e.tracer.Rate(), time.Now())
		}
		if _, err := e.conn.Write(pkt); err != nil {
			e.stats.WriteErrors++
			e.conn.Close()
			e.conn = nil
			e.downUntil = time.Now().Add(e.nextBackoffLocked())
			return nil // retried on a later Flush/Export
		}
		e.backoff = e.baseBackoff
		e.seq += uint32(n)
		e.stats.Sent += uint64(n)
		e.pending = e.pending[n:]
	}
	return nil
}

// batchSampled reports whether any record in the batch belongs to a
// traced customer (keyed by destination — the protected address).
func batchSampled(s *trace.Sampler, batch []Record) bool {
	// Records for one customer arrive in runs; skip the hash for a
	// repeated destination.
	var last netip.Addr
	for i := range batch {
		if d := batch[i].Dst; d != last {
			if s.Sampled(d) {
				return true
			}
			last = d
		}
	}
	return false
}

// redialLocked attempts to re-establish the socket, respecting backoff.
// It reports whether a usable conn is now available.
func (e *Exporter) redialLocked() bool {
	if time.Now().Before(e.downUntil) {
		return false
	}
	conn, err := e.dial()
	if err != nil {
		e.stats.DialErrors++
		e.downUntil = time.Now().Add(e.nextBackoffLocked())
		return false
	}
	e.conn = conn
	e.stats.Reconnects++
	e.backoff = e.baseBackoff
	return true
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// RegisterMetrics exposes the exporter's fault-handling counters on reg
// as the xatu_exporter_* families. The readers lock the exporter mutex at
// scrape time; the export hot path is untouched.
func (e *Exporter) RegisterMetrics(reg *telemetry.Registry) {
	counter := func(get func(ExporterStats) uint64) func() float64 {
		return func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(get(e.stats))
		}
	}
	reg.CounterFunc("xatu_exporter_sent_records_total",
		"Records successfully written to the collector socket.",
		counter(func(s ExporterStats) uint64 { return s.Sent }))
	reg.CounterFunc("xatu_exporter_shed_records_total",
		"Records dropped because the pending queue overflowed.",
		counter(func(s ExporterStats) uint64 { return s.Shed }))
	reg.CounterFunc("xatu_exporter_write_errors_total",
		"Datagram write failures.",
		counter(func(s ExporterStats) uint64 { return s.WriteErrors }))
	reg.CounterFunc("xatu_exporter_dial_errors_total",
		"Reconnect attempts that failed.",
		counter(func(s ExporterStats) uint64 { return s.DialErrors }))
	reg.CounterFunc("xatu_exporter_reconnects_total",
		"Successful re-dials after a failure.",
		counter(func(s ExporterStats) uint64 { return s.Reconnects }))
	reg.GaugeFunc("xatu_exporter_pending_records",
		"Records queued while the collector is unreachable.",
		func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(len(e.pending))
		})
	reg.GaugeFunc("xatu_exporter_connected",
		"1 while the collector socket is up, 0 while reconnecting.",
		func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			if e.conn != nil {
				return 1
			}
			return 0
		})
}

// Sent reports the number of records exported so far.
func (e *Exporter) Sent() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats.Sent
}

// Stats returns a snapshot of the exporter's counters.
func (e *Exporter) Stats() ExporterStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.Pending = len(e.pending)
	return s
}

// Close flushes, then closes the underlying socket. It is idempotent:
// closing twice returns nil rather than a socket error.
func (e *Exporter) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	flushErr := e.flushLocked()
	e.closed = true
	conn := e.conn
	e.conn = nil
	e.mu.Unlock()
	var closeErr error
	if conn != nil {
		closeErr = conn.Close()
	}
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// CollectorStats separates the ways telemetry can degrade on the way into
// the detector, so operators can tell shed load (our fault) from upstream
// loss (the network's fault) from duplication (usually a misbehaving
// exporter or chaotic path).
type CollectorStats struct {
	Packets          uint64 // well-formed v5 datagrams processed
	Records          uint64 // records delivered to the consumer channel
	Shed             uint64 // records dropped because the consumer fell behind
	BadPackets       uint64 // datagrams that failed to decode
	DupPackets       uint64 // duplicate datagrams discarded (recently-seen sequence)
	ReorderedPackets uint64 // late datagrams delivered out of order
	LostRecords      uint64 // records missing per v5 sequence-gap accounting
	Exporters        int    // distinct (source, engine) export streams observed
}

// seenRing remembers the last packet sequence numbers from one exporter so
// duplicates can be told apart from late (reordered) datagrams.
const seenRingSize = 64

// exporterState tracks one (source address, engine) NetFlow v5 stream.
type exporterState struct {
	inited bool
	next   uint32 // expected FlowSequence of the next datagram
	seen   [seenRingSize]uint32
	seenN  int
	seenAt int
}

// seqCounters is the loss-accounting slice of CollectorStats that sequence
// tracking mutates; both the Collector (under its mutex) and the ingest
// pipeline's per-worker trackers (lock-free, single-writer) feed one.
type seqCounters struct {
	DupPackets       uint64
	ReorderedPackets uint64
	LostRecords      uint64
}

// track runs v5 sequence-gap accounting for one datagram carrying nrecs
// records and reports whether it is a duplicate to drop. Signed distance
// handles sequence wraparound at 2^32.
func (st *exporterState) track(flowSeq uint32, nrecs int, c *seqCounters) (drop bool) {
	if !st.inited {
		st.inited = true
		st.next = flowSeq + uint32(nrecs)
		st.remember(flowSeq)
		return false
	}
	switch diff := int32(flowSeq - st.next); {
	case diff == 0: // in order
		st.next += uint32(nrecs)
		st.remember(flowSeq)
	case diff > 0: // gap: diff records never arrived (so far)
		c.LostRecords += uint64(diff)
		st.next = flowSeq + uint32(nrecs)
		st.remember(flowSeq)
	default: // datagram from the past
		if st.recentlySeen(flowSeq) {
			c.DupPackets++
			return true
		}
		// Late arrival of a datagram we charged as lost: deliver it and
		// refund the gap accounting.
		c.ReorderedPackets++
		if n := uint64(nrecs); n <= c.LostRecords {
			c.LostRecords -= n
		} else {
			c.LostRecords = 0
		}
		st.remember(flowSeq)
	}
	return false
}

// SeqTracker runs the Collector's per-exporter v5 sequence accounting for
// a single-threaded consumer that holds its own state — one ingest decode
// worker owns all packets of its hashed sources, so tracking needs no
// lock. Not safe for concurrent use.
type SeqTracker struct {
	src map[sourceKey]*exporterState
	c   seqCounters
}

// NewSeqTracker returns an empty tracker.
func NewSeqTracker() *SeqTracker {
	return &SeqTracker{src: make(map[sourceKey]*exporterState)}
}

// Track accounts one datagram from src carrying nrecs records under header
// h and reports whether it is a duplicate to drop. Loss, duplication, and
// reorder totals accumulate internally (see Counters).
func (t *SeqTracker) Track(src string, h Header, nrecs int) (drop bool) {
	key := sourceKey{src: src, engineType: h.EngineType, engineID: h.EngineID}
	st := t.src[key]
	if st == nil {
		st = &exporterState{}
		t.src[key] = st
	}
	return st.track(h.FlowSequence, nrecs, &t.c)
}

// Counters reports the tracker's running loss-accounting totals.
func (t *SeqTracker) Counters() (dupPackets, reorderedPackets, lostRecords uint64) {
	return t.c.DupPackets, t.c.ReorderedPackets, t.c.LostRecords
}

// Exporters reports the distinct (source, engine) streams observed.
func (t *SeqTracker) Exporters() int { return len(t.src) }

// sourceKey identifies one (source, engine) export stream without the
// fmt.Sprintf of old: an equality-comparable struct key allocates nothing
// on the per-datagram lookup path.
type sourceKey struct {
	src        string
	engineType uint8
	engineID   uint8
}

func (s *exporterState) remember(seq uint32) {
	s.seen[s.seenAt] = seq
	s.seenAt = (s.seenAt + 1) % seenRingSize
	if s.seenN < seenRingSize {
		s.seenN++
	}
}

func (s *exporterState) recentlySeen(seq uint32) bool {
	for i := 0; i < s.seenN; i++ {
		if s.seen[i] == seq {
			return true
		}
	}
	return false
}

// Collector listens for NetFlow v5 datagrams and delivers decoded records
// on a channel, the shape Xatu's online detector consumes. It tracks v5
// sequence numbers per exporter stream, so upstream loss, duplication and
// reordering are separately counted and queryable via FullStats.
//
// A collector built with NewCollectorBatched delivers []Record chunks on
// Batches() instead — one channel operation per datagram rather than one
// per record — with chunk storage pooled via RecycleBatch. The per-record
// Records() channel remains the compatibility path.
type Collector struct {
	pc   net.PacketConn
	out  chan Record   // per-record mode (nil in batched mode)
	outB chan []Record // batched mode (nil in per-record mode)

	// chunkFree is the pool of record chunks for decode scratch and the
	// batched handoff: a locked free-list rather than sync.Pool because
	// returning a raw []Record to a sync.Pool would box a fresh slice
	// header on every Put, defeating the allocation-free steady state.
	chunkMu   sync.Mutex
	chunkFree [][]Record

	delivered atomic.Uint64 // records delivered to the consumer
	shed      atomic.Uint64 // records dropped: consumer fell behind

	mu    sync.Mutex
	stats CollectorStats
	src   map[sourceKey]*exporterState
}

// NewCollector binds a UDP listener on addr (use "127.0.0.1:0" for an
// ephemeral test port). bufSize is the channel capacity; records are
// shed (and counted) when the consumer falls behind, matching how real
// collectors shed load rather than block the socket reader.
func NewCollector(addr string, bufSize int) (*Collector, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: binding collector: %w", err)
	}
	return &Collector{
		pc:  pc,
		out: make(chan Record, bufSize),
		src: make(map[sourceKey]*exporterState),
	}, nil
}

// NewCollectorBatched binds a UDP listener whose output is whole decoded
// datagrams: Batches() delivers []Record chunks (up to MaxRecordsPerPacket
// each), and the consumer returns chunk storage with RecycleBatch. bufSize
// is the batch-channel capacity; whole chunks are shed (counted per
// record) when the consumer falls behind.
func NewCollectorBatched(addr string, bufSize int) (*Collector, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: binding collector: %w", err)
	}
	return &Collector{
		pc:   pc,
		outB: make(chan []Record, bufSize),
		src:  make(map[sourceKey]*exporterState),
	}, nil
}

// Addr returns the bound listen address.
func (c *Collector) Addr() string { return c.pc.LocalAddr().String() }

// Records is the stream of decoded flow records. It is closed when Run
// returns. Nil for a batched collector.
func (c *Collector) Records() <-chan Record { return c.out }

// Batches is the stream of decoded datagram record chunks of a collector
// built with NewCollectorBatched; it is closed when Run returns. Pass each
// consumed chunk to RecycleBatch to keep the steady state allocation-free.
func (c *Collector) Batches() <-chan []Record { return c.outB }

// RecycleBatch returns a chunk received from Batches to the collector's
// pool. The caller must not retain the slice afterwards.
func (c *Collector) RecycleBatch(b []Record) {
	if cap(b) == 0 {
		return
	}
	c.chunkMu.Lock()
	c.chunkFree = append(c.chunkFree, b[:0])
	c.chunkMu.Unlock()
}

// getChunk takes a pooled record chunk, or allocates one.
func (c *Collector) getChunk() []Record {
	c.chunkMu.Lock()
	if n := len(c.chunkFree); n > 0 {
		b := c.chunkFree[n-1]
		c.chunkFree = c.chunkFree[:n-1]
		c.chunkMu.Unlock()
		return b
	}
	c.chunkMu.Unlock()
	return make([]Record, 0, MaxRecordsPerPacket)
}

// Run reads datagrams until ctx is canceled or the socket is closed.
// Malformed packets are counted and skipped. Source names are cached per
// remote address, so the steady-state read loop performs no per-packet
// string conversion.
func (c *Collector) Run(ctx context.Context) error {
	if c.out != nil {
		defer close(c.out)
	} else {
		defer close(c.outB)
	}
	go func() {
		<-ctx.Done()
		c.pc.Close()
	}()
	buf := make([]byte, 65535)
	names := make(map[netip.AddrPort]string) // remote addr -> cached src string
	udp, _ := c.pc.(*net.UDPConn)
	for {
		var (
			n   int
			src string
			err error
		)
		if udp != nil {
			// Allocation-free receive: netip.AddrPort is a value, and the
			// name cache amortizes String() to once per distinct source.
			var ap netip.AddrPort
			n, ap, err = udp.ReadFromUDPAddrPort(buf)
			if err == nil {
				var ok bool
				if src, ok = names[ap]; !ok {
					src = ap.String()
					names[ap] = src
				}
			}
		} else {
			var addr net.Addr
			n, addr, err = c.pc.ReadFrom(buf)
			if err == nil {
				src = addr.String()
			}
		}
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("netflow: reading datagram: %w", err)
		}
		c.HandlePacket(src, buf[:n])
	}
}

// HandlePacket processes one raw datagram attributed to the exporter at
// src. Run calls it for every UDP read; in-process transports (chaos
// pipes, replays) may call it directly. It must not be called after the
// record channel has been closed by a returning Run. The hot path is
// allocation-free at steady state: decode scratch is pooled and the
// (source, engine) key is an equality-comparable struct, not a formatted
// string.
func (c *Collector) HandlePacket(src string, pkt []byte) {
	chunk := c.getChunk()
	h, recs, err := DecodeV5Into(pkt, chunk)
	if err != nil {
		c.RecycleBatch(recs)
		c.mu.Lock()
		c.stats.BadPackets++
		c.mu.Unlock()
		return
	}
	key := sourceKey{src: src, engineType: h.EngineType, engineID: h.EngineID}

	c.mu.Lock()
	c.stats.Packets++
	st := c.src[key]
	if st == nil {
		st = &exporterState{}
		c.src[key] = st
		c.stats.Exporters = len(c.src)
	}
	// track mutates the counters in place (a reorder refunds LostRecords),
	// so seed it with the running totals and write them back.
	sc := seqCounters{
		DupPackets:       c.stats.DupPackets,
		ReorderedPackets: c.stats.ReorderedPackets,
		LostRecords:      c.stats.LostRecords,
	}
	drop := st.track(h.FlowSequence, len(recs), &sc)
	c.stats.DupPackets = sc.DupPackets
	c.stats.ReorderedPackets = sc.ReorderedPackets
	c.stats.LostRecords = sc.LostRecords
	c.mu.Unlock()
	if drop {
		c.RecycleBatch(recs)
		return
	}

	if c.outB != nil {
		// Batched handoff: one channel op per datagram; ownership of the
		// chunk moves to the consumer (returned via RecycleBatch).
		select {
		case c.outB <- recs:
			c.delivered.Add(uint64(len(recs)))
		default:
			c.shed.Add(uint64(len(recs)))
			c.RecycleBatch(recs)
		}
		return
	}
	var delivered, shed uint64
	for _, r := range recs {
		select {
		case c.out <- r:
			delivered++
		default:
			shed++
		}
	}
	c.delivered.Add(delivered)
	c.shed.Add(shed)
	c.RecycleBatch(recs)
}

// Stats reports shed records and malformed packets seen so far. Kept for
// backward compatibility; FullStats has the complete breakdown.
func (c *Collector) Stats() (dropped, badPackets uint64) {
	s := c.FullStats()
	return s.Shed, s.BadPackets
}

// FullStats returns the complete loss-accounting breakdown.
func (c *Collector) FullStats() CollectorStats {
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	s.Records = c.delivered.Load()
	s.Shed = c.shed.Load()
	return s
}

// RegisterMetrics exposes the collector's loss-accounting breakdown on
// reg as the xatu_collector_* families, so shed load (our fault),
// upstream loss (the network's), and duplication (a misbehaving exporter)
// stay separable on a dashboard. Readers lock the stats mutex at scrape
// time; the packet path is untouched.
func (c *Collector) RegisterMetrics(reg *telemetry.Registry) {
	counter := func(get func(CollectorStats) uint64) func() float64 {
		return func() float64 {
			return float64(get(c.FullStats()))
		}
	}
	reg.CounterFunc("xatu_collector_packets_total",
		"Well-formed NetFlow v5 datagrams processed.",
		counter(func(s CollectorStats) uint64 { return s.Packets }))
	reg.CounterFunc("xatu_collector_records_total",
		"Flow records delivered to the consumer channel.",
		counter(func(s CollectorStats) uint64 { return s.Records }))
	reg.CounterFunc("xatu_collector_shed_records_total",
		"Records dropped because the consumer fell behind.",
		counter(func(s CollectorStats) uint64 { return s.Shed }))
	reg.CounterFunc("xatu_collector_bad_packets_total",
		"Datagrams that failed to decode.",
		counter(func(s CollectorStats) uint64 { return s.BadPackets }))
	reg.CounterFunc("xatu_collector_dup_packets_total",
		"Duplicate datagrams discarded (recently-seen sequence).",
		counter(func(s CollectorStats) uint64 { return s.DupPackets }))
	reg.CounterFunc("xatu_collector_reordered_packets_total",
		"Late datagrams delivered out of order.",
		counter(func(s CollectorStats) uint64 { return s.ReorderedPackets }))
	reg.GaugeFunc("xatu_collector_lost_records",
		"Records missing per v5 sequence-gap accounting (refunded when a late datagram arrives).",
		counter(func(s CollectorStats) uint64 { return s.LostRecords }))
	reg.GaugeFunc("xatu_collector_exporters",
		"Distinct (source, engine) export streams observed.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.src))
		})
	reg.GaugeFunc("xatu_collector_queue_depth",
		"Decoded records buffered for the consumer.",
		func() float64 { return float64(len(c.out)) })
	reg.GaugeFunc("xatu_collector_queue_capacity",
		"Record channel capacity.",
		func() float64 { return float64(cap(c.out)) })
}

// Sampler applies 1:N random packet sampling to a flow stream, the way the
// ISP's routers sample NetFlow (§2.2). For a flow of P packets it draws the
// number of sampled packets from Binomial(P, 1/N) and, when positive, emits
// the flow with packet and byte counts scaled back up by N — the standard
// inversion estimator, unbiased in expectation (verified by tests).
type Sampler struct {
	N   int
	rng *rand.Rand
}

// NewSampler returns a 1:n sampler; n <= 1 passes everything through.
func NewSampler(n int, rng *rand.Rand) *Sampler {
	if n < 1 {
		n = 1
	}
	return &Sampler{N: n, rng: rng}
}

// Sample returns the sampled-and-rescaled record and whether it survived.
func (s *Sampler) Sample(r Record) (Record, bool) {
	if s.N == 1 {
		return r, true
	}
	p := 1 / float64(s.N)
	var kept uint32
	// Binomial draw; flows are small enough (minutes of traffic) that a
	// direct Bernoulli loop is fine and exact.
	if r.Packets > 10000 {
		// Gaussian approximation for big flows to bound CPU.
		mean := float64(r.Packets) * p
		sd := mean * (1 - p)
		k := s.rng.NormFloat64()*math.Sqrt(sd) + mean
		if k < 0 {
			k = 0
		}
		kept = uint32(k + 0.5)
		if kept > r.Packets {
			kept = r.Packets
		}
	} else {
		for i := uint32(0); i < r.Packets; i++ {
			if s.rng.Float64() < p {
				kept++
			}
		}
	}
	if kept == 0 {
		return Record{}, false
	}
	bytesPerPkt := float64(r.Bytes) / float64(r.Packets)
	out := r
	out.Packets = kept * uint32(s.N)
	out.Bytes = uint32(bytesPerPkt*float64(kept)*float64(s.N) + 0.5)
	return out, true
}
