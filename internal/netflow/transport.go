package netflow

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/xatu-go/xatu/internal/telemetry"
)

// ErrExporterClosed is returned by Export/Flush after Close.
var ErrExporterClosed = errors.New("netflow: exporter is closed")

// ExporterConfig tunes the fault-tolerant exporter. The zero value of every
// optional field picks a sensible default.
type ExporterConfig struct {
	// Addr is the collector address ("host:port"); used by the default
	// dialer and ignored when Dial is set.
	Addr string
	// Sampling is the advertised 1:N sampling interval.
	Sampling uint16
	// MaxPending caps the pending-record queue while the collector is
	// unreachable; overflow sheds the oldest records (counted in Stats).
	// Default 4096.
	MaxPending int
	// BaseBackoff is the initial reconnect delay after a write or dial
	// failure; it doubles per consecutive failure up to MaxBackoff.
	// Defaults 50ms and 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Dial opens the collector socket; nil dials UDP to Addr. Tests inject
	// chaos conns here.
	Dial func() (net.Conn, error)
}

// ExporterStats counts the exporter's fault-handling activity.
type ExporterStats struct {
	Sent        uint64 // records successfully written to the socket
	Shed        uint64 // records dropped because the pending queue overflowed
	WriteErrors uint64 // datagram write failures
	DialErrors  uint64 // reconnect attempts that failed
	Reconnects  uint64 // successful re-dials after a failure
	Pending     int    // records currently queued
}

// Exporter batches flow records into NetFlow v5 datagrams and sends them to
// a collector over UDP, mirroring a router's NetFlow export engine. A write
// failure no longer kills the exporter: records queue (bounded) while it
// reconnects with exponential backoff, and overflow is shed oldest-first,
// exactly like a router's export buffer.
type Exporter struct {
	dial     func() (net.Conn, error)
	bootTime time.Time
	sampling uint16

	mu          sync.Mutex
	conn        net.Conn // nil while disconnected
	pending     []Record
	seq         uint32
	closed      bool
	maxPending  int
	baseBackoff time.Duration
	maxBackoff  time.Duration
	backoff     time.Duration // next reconnect delay
	downUntil   time.Time     // no send attempts before this instant
	stats       ExporterStats
}

// NewExporter dials the collector at addr ("host:port") with default
// fault-tolerance settings.
func NewExporter(addr string, sampling uint16) (*Exporter, error) {
	return NewExporterWithConfig(ExporterConfig{Addr: addr, Sampling: sampling})
}

// NewExporterWithConfig dials the collector with explicit queue and
// backoff settings. The initial dial must succeed; later failures are
// absorbed by the reconnect loop.
func NewExporterWithConfig(cfg ExporterConfig) (*Exporter, error) {
	dial := cfg.Dial
	if dial == nil {
		addr := cfg.Addr
		dial = func() (net.Conn, error) { return net.Dial("udp", addr) }
	}
	conn, err := dial()
	if err != nil {
		return nil, fmt.Errorf("netflow: dialing collector: %w", err)
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 4096
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	return &Exporter{
		dial:        dial,
		conn:        conn,
		bootTime:    time.Now().Add(-time.Minute), // pretend the router booted a minute ago
		sampling:    cfg.Sampling,
		maxPending:  cfg.MaxPending,
		baseBackoff: cfg.BaseBackoff,
		maxBackoff:  cfg.MaxBackoff,
		backoff:     cfg.BaseBackoff,
	}, nil
}

// Export queues a record, flushing a full datagram when 30 records are
// pending. Invalid records are rejected immediately so they can never
// poison the retry queue. Transport failures are absorbed (see Stats),
// not returned.
func (e *Exporter) Export(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrExporterClosed
	}
	e.pending = append(e.pending, r)
	if over := len(e.pending) - e.maxPending; over > 0 {
		e.stats.Shed += uint64(over)
		e.pending = e.pending[over:] // shed oldest: fresher telemetry wins
	}
	if len(e.pending) >= MaxRecordsPerPacket {
		return e.flushLocked()
	}
	return nil
}

// Flush sends any pending records immediately (as many full datagrams as
// needed). While the collector is unreachable records stay queued and
// Flush returns nil; failures are visible via Stats.
func (e *Exporter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrExporterClosed
	}
	return e.flushLocked()
}

func (e *Exporter) flushLocked() error {
	for len(e.pending) > 0 {
		if e.conn == nil && !e.redialLocked() {
			return nil // still backing off; records stay pending
		}
		n := len(e.pending)
		if n > MaxRecordsPerPacket {
			n = MaxRecordsPerPacket
		}
		// Clamp flow timestamps into the exporter's uptime epoch; simulated
		// flows may carry synthetic wall-clock times predating bootTime.
		now := time.Now()
		batch := make([]Record, n)
		copy(batch, e.pending[:n])
		for i := range batch {
			if batch[i].Start.Before(e.bootTime) {
				d := batch[i].End.Sub(batch[i].Start)
				batch[i].Start = e.bootTime
				batch[i].End = e.bootTime.Add(d)
			}
			if batch[i].End.After(now) {
				batch[i].End = now
				if batch[i].Start.After(now) {
					batch[i].Start = now
				}
			}
		}
		pkt, err := EncodeV5(batch, e.bootTime, now, e.seq, e.sampling)
		if err != nil {
			// Records are validated on Export, so this is unreachable in
			// practice; shed the batch rather than wedge the queue on it.
			e.stats.Shed += uint64(n)
			e.pending = e.pending[n:]
			continue
		}
		if _, err := e.conn.Write(pkt); err != nil {
			e.stats.WriteErrors++
			e.conn.Close()
			e.conn = nil
			e.downUntil = time.Now().Add(e.backoff)
			e.backoff = minDuration(e.backoff*2, e.maxBackoff)
			return nil // retried on a later Flush/Export
		}
		e.backoff = e.baseBackoff
		e.seq += uint32(n)
		e.stats.Sent += uint64(n)
		e.pending = e.pending[n:]
	}
	return nil
}

// redialLocked attempts to re-establish the socket, respecting backoff.
// It reports whether a usable conn is now available.
func (e *Exporter) redialLocked() bool {
	if time.Now().Before(e.downUntil) {
		return false
	}
	conn, err := e.dial()
	if err != nil {
		e.stats.DialErrors++
		e.downUntil = time.Now().Add(e.backoff)
		e.backoff = minDuration(e.backoff*2, e.maxBackoff)
		return false
	}
	e.conn = conn
	e.stats.Reconnects++
	e.backoff = e.baseBackoff
	return true
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// RegisterMetrics exposes the exporter's fault-handling counters on reg
// as the xatu_exporter_* families. The readers lock the exporter mutex at
// scrape time; the export hot path is untouched.
func (e *Exporter) RegisterMetrics(reg *telemetry.Registry) {
	counter := func(get func(ExporterStats) uint64) func() float64 {
		return func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(get(e.stats))
		}
	}
	reg.CounterFunc("xatu_exporter_sent_records_total",
		"Records successfully written to the collector socket.",
		counter(func(s ExporterStats) uint64 { return s.Sent }))
	reg.CounterFunc("xatu_exporter_shed_records_total",
		"Records dropped because the pending queue overflowed.",
		counter(func(s ExporterStats) uint64 { return s.Shed }))
	reg.CounterFunc("xatu_exporter_write_errors_total",
		"Datagram write failures.",
		counter(func(s ExporterStats) uint64 { return s.WriteErrors }))
	reg.CounterFunc("xatu_exporter_dial_errors_total",
		"Reconnect attempts that failed.",
		counter(func(s ExporterStats) uint64 { return s.DialErrors }))
	reg.CounterFunc("xatu_exporter_reconnects_total",
		"Successful re-dials after a failure.",
		counter(func(s ExporterStats) uint64 { return s.Reconnects }))
	reg.GaugeFunc("xatu_exporter_pending_records",
		"Records queued while the collector is unreachable.",
		func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(len(e.pending))
		})
	reg.GaugeFunc("xatu_exporter_connected",
		"1 while the collector socket is up, 0 while reconnecting.",
		func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			if e.conn != nil {
				return 1
			}
			return 0
		})
}

// Sent reports the number of records exported so far.
func (e *Exporter) Sent() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats.Sent
}

// Stats returns a snapshot of the exporter's counters.
func (e *Exporter) Stats() ExporterStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.Pending = len(e.pending)
	return s
}

// Close flushes, then closes the underlying socket. It is idempotent:
// closing twice returns nil rather than a socket error.
func (e *Exporter) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	flushErr := e.flushLocked()
	e.closed = true
	conn := e.conn
	e.conn = nil
	e.mu.Unlock()
	var closeErr error
	if conn != nil {
		closeErr = conn.Close()
	}
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// CollectorStats separates the ways telemetry can degrade on the way into
// the detector, so operators can tell shed load (our fault) from upstream
// loss (the network's fault) from duplication (usually a misbehaving
// exporter or chaotic path).
type CollectorStats struct {
	Packets          uint64 // well-formed v5 datagrams processed
	Records          uint64 // records delivered to the consumer channel
	Shed             uint64 // records dropped because the consumer fell behind
	BadPackets       uint64 // datagrams that failed to decode
	DupPackets       uint64 // duplicate datagrams discarded (recently-seen sequence)
	ReorderedPackets uint64 // late datagrams delivered out of order
	LostRecords      uint64 // records missing per v5 sequence-gap accounting
	Exporters        int    // distinct (source, engine) export streams observed
}

// seenRing remembers the last packet sequence numbers from one exporter so
// duplicates can be told apart from late (reordered) datagrams.
const seenRingSize = 64

// exporterState tracks one (source address, engine) NetFlow v5 stream.
type exporterState struct {
	inited bool
	next   uint32 // expected FlowSequence of the next datagram
	seen   [seenRingSize]uint32
	seenN  int
	seenAt int
}

func (s *exporterState) remember(seq uint32) {
	s.seen[s.seenAt] = seq
	s.seenAt = (s.seenAt + 1) % seenRingSize
	if s.seenN < seenRingSize {
		s.seenN++
	}
}

func (s *exporterState) recentlySeen(seq uint32) bool {
	for i := 0; i < s.seenN; i++ {
		if s.seen[i] == seq {
			return true
		}
	}
	return false
}

// Collector listens for NetFlow v5 datagrams and delivers decoded records
// on a channel, the shape Xatu's online detector consumes. It tracks v5
// sequence numbers per exporter stream, so upstream loss, duplication and
// reordering are separately counted and queryable via FullStats.
type Collector struct {
	pc  net.PacketConn
	out chan Record

	mu    sync.Mutex
	stats CollectorStats
	src   map[string]*exporterState
}

// NewCollector binds a UDP listener on addr (use "127.0.0.1:0" for an
// ephemeral test port). bufSize is the channel capacity; records are
// shed (and counted) when the consumer falls behind, matching how real
// collectors shed load rather than block the socket reader.
func NewCollector(addr string, bufSize int) (*Collector, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: binding collector: %w", err)
	}
	return &Collector{
		pc:  pc,
		out: make(chan Record, bufSize),
		src: make(map[string]*exporterState),
	}, nil
}

// Addr returns the bound listen address.
func (c *Collector) Addr() string { return c.pc.LocalAddr().String() }

// Records is the stream of decoded flow records. It is closed when Run
// returns.
func (c *Collector) Records() <-chan Record { return c.out }

// Run reads datagrams until ctx is canceled or the socket is closed.
// Malformed packets are counted and skipped.
func (c *Collector) Run(ctx context.Context) error {
	defer close(c.out)
	go func() {
		<-ctx.Done()
		c.pc.Close()
	}()
	buf := make([]byte, 65535)
	for {
		n, addr, err := c.pc.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("netflow: reading datagram: %w", err)
		}
		c.HandlePacket(addr.String(), buf[:n])
	}
}

// HandlePacket processes one raw datagram attributed to the exporter at
// src. Run calls it for every UDP read; in-process transports (chaos
// pipes, replays) may call it directly. It must not be called after the
// record channel has been closed by a returning Run.
func (c *Collector) HandlePacket(src string, pkt []byte) {
	h, recs, err := DecodeV5(pkt)
	if err != nil {
		c.mu.Lock()
		c.stats.BadPackets++
		c.mu.Unlock()
		return
	}
	key := fmt.Sprintf("%s/%d.%d", src, h.EngineType, h.EngineID)

	c.mu.Lock()
	c.stats.Packets++
	st := c.src[key]
	if st == nil {
		st = &exporterState{}
		c.src[key] = st
		c.stats.Exporters = len(c.src)
	}
	drop := false
	switch {
	case !st.inited:
		st.inited = true
		st.next = h.FlowSequence + uint32(len(recs))
		st.remember(h.FlowSequence)
	default:
		// Signed distance handles sequence wraparound at 2^32.
		switch diff := int32(h.FlowSequence - st.next); {
		case diff == 0: // in order
			st.next += uint32(len(recs))
			st.remember(h.FlowSequence)
		case diff > 0: // gap: diff records never arrived (so far)
			c.stats.LostRecords += uint64(diff)
			st.next = h.FlowSequence + uint32(len(recs))
			st.remember(h.FlowSequence)
		default: // datagram from the past
			if st.recentlySeen(h.FlowSequence) {
				c.stats.DupPackets++
				drop = true
			} else {
				// Late arrival of a datagram we charged as lost: deliver it
				// and refund the gap accounting.
				c.stats.ReorderedPackets++
				if n := uint64(len(recs)); n <= c.stats.LostRecords {
					c.stats.LostRecords -= n
				} else {
					c.stats.LostRecords = 0
				}
				st.remember(h.FlowSequence)
			}
		}
	}
	c.mu.Unlock()
	if drop {
		return
	}

	var delivered, shed uint64
	for _, r := range recs {
		select {
		case c.out <- r:
			delivered++
		default:
			shed++
		}
	}
	c.mu.Lock()
	c.stats.Records += delivered
	c.stats.Shed += shed
	c.mu.Unlock()
}

// Stats reports shed records and malformed packets seen so far. Kept for
// backward compatibility; FullStats has the complete breakdown.
func (c *Collector) Stats() (dropped, badPackets uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats.Shed, c.stats.BadPackets
}

// FullStats returns the complete loss-accounting breakdown.
func (c *Collector) FullStats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// RegisterMetrics exposes the collector's loss-accounting breakdown on
// reg as the xatu_collector_* families, so shed load (our fault),
// upstream loss (the network's), and duplication (a misbehaving exporter)
// stay separable on a dashboard. Readers lock the stats mutex at scrape
// time; the packet path is untouched.
func (c *Collector) RegisterMetrics(reg *telemetry.Registry) {
	counter := func(get func(CollectorStats) uint64) func() float64 {
		return func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(get(c.stats))
		}
	}
	reg.CounterFunc("xatu_collector_packets_total",
		"Well-formed NetFlow v5 datagrams processed.",
		counter(func(s CollectorStats) uint64 { return s.Packets }))
	reg.CounterFunc("xatu_collector_records_total",
		"Flow records delivered to the consumer channel.",
		counter(func(s CollectorStats) uint64 { return s.Records }))
	reg.CounterFunc("xatu_collector_shed_records_total",
		"Records dropped because the consumer fell behind.",
		counter(func(s CollectorStats) uint64 { return s.Shed }))
	reg.CounterFunc("xatu_collector_bad_packets_total",
		"Datagrams that failed to decode.",
		counter(func(s CollectorStats) uint64 { return s.BadPackets }))
	reg.CounterFunc("xatu_collector_dup_packets_total",
		"Duplicate datagrams discarded (recently-seen sequence).",
		counter(func(s CollectorStats) uint64 { return s.DupPackets }))
	reg.CounterFunc("xatu_collector_reordered_packets_total",
		"Late datagrams delivered out of order.",
		counter(func(s CollectorStats) uint64 { return s.ReorderedPackets }))
	reg.GaugeFunc("xatu_collector_lost_records",
		"Records missing per v5 sequence-gap accounting (refunded when a late datagram arrives).",
		counter(func(s CollectorStats) uint64 { return s.LostRecords }))
	reg.GaugeFunc("xatu_collector_exporters",
		"Distinct (source, engine) export streams observed.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.src))
		})
	reg.GaugeFunc("xatu_collector_queue_depth",
		"Decoded records buffered for the consumer.",
		func() float64 { return float64(len(c.out)) })
	reg.GaugeFunc("xatu_collector_queue_capacity",
		"Record channel capacity.",
		func() float64 { return float64(cap(c.out)) })
}

// Sampler applies 1:N random packet sampling to a flow stream, the way the
// ISP's routers sample NetFlow (§2.2). For a flow of P packets it draws the
// number of sampled packets from Binomial(P, 1/N) and, when positive, emits
// the flow with packet and byte counts scaled back up by N — the standard
// inversion estimator, unbiased in expectation (verified by tests).
type Sampler struct {
	N   int
	rng *rand.Rand
}

// NewSampler returns a 1:n sampler; n <= 1 passes everything through.
func NewSampler(n int, rng *rand.Rand) *Sampler {
	if n < 1 {
		n = 1
	}
	return &Sampler{N: n, rng: rng}
}

// Sample returns the sampled-and-rescaled record and whether it survived.
func (s *Sampler) Sample(r Record) (Record, bool) {
	if s.N == 1 {
		return r, true
	}
	p := 1 / float64(s.N)
	var kept uint32
	// Binomial draw; flows are small enough (minutes of traffic) that a
	// direct Bernoulli loop is fine and exact.
	if r.Packets > 10000 {
		// Gaussian approximation for big flows to bound CPU.
		mean := float64(r.Packets) * p
		sd := mean * (1 - p)
		k := s.rng.NormFloat64()*math.Sqrt(sd) + mean
		if k < 0 {
			k = 0
		}
		kept = uint32(k + 0.5)
		if kept > r.Packets {
			kept = r.Packets
		}
	} else {
		for i := uint32(0); i < r.Packets; i++ {
			if s.rng.Float64() < p {
				kept++
			}
		}
	}
	if kept == 0 {
		return Record{}, false
	}
	bytesPerPkt := float64(r.Bytes) / float64(r.Packets)
	out := r
	out.Packets = kept * uint32(s.N)
	out.Bytes = uint32(bytesPerPkt*float64(kept)*float64(s.N) + 0.5)
	return out, true
}
