package netflow

import (
	"bytes"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/trace"
)

func TestTrailerV1RoundTrip(t *testing.T) {
	recs := []Record{sampleRecord(), sampleRecord()}
	pkt, err := EncodeV5(recs, boot, now, 9, 100)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1700000000, 123456789)
	trailered := AppendTrailerV1(append([]byte(nil), pkt...), 64, t0)
	if len(trailered) != len(pkt)+16 {
		t.Fatalf("trailer added %d bytes, want 16", len(trailered)-len(pkt))
	}
	tr, ok := ParseTrailerV1(trailered, len(recs))
	if !ok {
		t.Fatal("trailer not found")
	}
	if tr.Rate != 64 {
		t.Fatalf("rate %d, want 64", tr.Rate)
	}
	if !tr.T0.Equal(t0) {
		t.Fatalf("t0 %v, want %v (nanosecond precision)", tr.T0, t0)
	}
}

func TestTrailerV1RateClamp(t *testing.T) {
	pkt, err := EncodeV5([]Record{sampleRecord()}, boot, now, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := ParseTrailerV1(AppendTrailerV1(append([]byte(nil), pkt...), 1<<20, now), 1)
	if !ok || tr.Rate != 0xffff {
		t.Fatalf("rate %d ok=%v, want clamp to 65535", tr.Rate, ok)
	}
}

func TestTrailerV1ProbeRejectsJunk(t *testing.T) {
	recs := []Record{sampleRecord()}
	pkt, err := EncodeV5(recs, boot, now, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ParseTrailerV1(pkt, len(recs)); ok {
		t.Fatal("found a trailer on an untrailered packet")
	}
	// Arbitrary trailing bytes that are not a trailer.
	junk := append(append([]byte(nil), pkt...), bytes.Repeat([]byte{0xAB}, 16)...)
	if _, ok := ParseTrailerV1(junk, len(recs)); ok {
		t.Fatal("accepted junk trailing bytes")
	}
	// Right magic, wrong version.
	bad := AppendTrailerV1(append([]byte(nil), pkt...), 8, now)
	bad[len(pkt)+4] = 99
	if _, ok := ParseTrailerV1(bad, len(recs)); ok {
		t.Fatal("accepted an unknown trailer version")
	}
	// Truncated trailer.
	short := AppendTrailerV1(append([]byte(nil), pkt...), 8, now)[:len(pkt)+8]
	if _, ok := ParseTrailerV1(short, len(recs)); ok {
		t.Fatal("accepted a truncated trailer")
	}
	if _, ok := ParseTrailerV1(pkt, -1); ok {
		t.Fatal("accepted a negative record count")
	}
}

// TestTrailerV1BackwardCompatible pins the compatibility contract: a
// decoder that knows nothing about trailers parses a trailered packet
// into exactly the same header and records as the bare one.
func TestTrailerV1BackwardCompatible(t *testing.T) {
	recs := []Record{sampleRecord(), sampleRecord(), sampleRecord()}
	pkt, err := EncodeV5(recs, boot, now, 21, 500)
	if err != nil {
		t.Fatal(err)
	}
	trailered := AppendTrailerV1(append([]byte(nil), pkt...), 64, now)

	var bufA, bufB [MaxRecordsPerPacket]Record
	hdrA, recsA, errA := DecodeV5Into(pkt, bufA[:0])
	hdrB, recsB, errB := DecodeV5Into(trailered, bufB[:0])
	if errA != nil || errB != nil {
		t.Fatalf("decode errors: %v / %v", errA, errB)
	}
	if hdrA != hdrB {
		t.Fatalf("headers differ: %+v vs %+v", hdrA, hdrB)
	}
	if len(recsA) != len(recsB) {
		t.Fatalf("record counts differ: %d vs %d", len(recsA), len(recsB))
	}
	for i := range recsA {
		if recsA[i] != recsB[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, recsA[i], recsB[i])
		}
	}
}

// captureConn retains every datagram the exporter writes.
type captureConn struct {
	mu   sync.Mutex
	pkts [][]byte
}

func (c *captureConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.pkts = append(c.pkts, append([]byte(nil), p...))
	c.mu.Unlock()
	return len(p), nil
}

func (c *captureConn) packets() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][]byte(nil), c.pkts...)
}

func (c *captureConn) Read([]byte) (int, error)         { return 0, net.ErrClosed }
func (c *captureConn) Close() error                     { return nil }
func (c *captureConn) LocalAddr() net.Addr              { return sinkAddr{name: "capture"} }
func (c *captureConn) RemoteAddr() net.Addr             { return sinkAddr{name: "capture"} }
func (c *captureConn) SetDeadline(time.Time) error      { return nil }
func (c *captureConn) SetReadDeadline(time.Time) error  { return nil }
func (c *captureConn) SetWriteDeadline(time.Time) error { return nil }

// TestExporterAppendsTrailerForSampledBatches pins the exporter-side
// behavior: with tracing on, only batches containing a sampled
// customer's record carry the trailer; with tracing off the bytes on
// the wire are unchanged.
func TestExporterAppendsTrailerForSampledBatches(t *testing.T) {
	// Pick one sampled and one unsampled destination at rate 2.
	s := trace.NewSampler(2)
	var sampled, unsampled netip.Addr
	for i := 0; i < 1024 && (!sampled.IsValid() || !unsampled.IsValid()); i++ {
		a := netip.AddrFrom4([4]byte{23, 1, byte(i >> 8), byte(i)})
		if s.Sampled(a) {
			sampled = a
		} else {
			unsampled = a
		}
	}
	if !sampled.IsValid() || !unsampled.IsValid() {
		t.Fatal("could not find both a sampled and an unsampled address at rate 2")
	}

	export := func(traceRate int, dst netip.Addr) []byte {
		conn := &captureConn{}
		exp, err := NewExporterWithConfig(ExporterConfig{
			Dial:        func() (net.Conn, error) { return conn, nil },
			TraceSample: traceRate,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := sampleRecord()
		r.Dst = dst
		if err := exp.Export(r); err != nil {
			t.Fatal(err)
		}
		if err := exp.Close(); err != nil {
			t.Fatal(err)
		}
		pkts := conn.packets()
		if len(pkts) != 1 {
			t.Fatalf("wrote %d packets, want 1", len(pkts))
		}
		return pkts[0]
	}

	bare := export(0, sampled)
	if _, ok := ParseTrailerV1(bare, 1); ok {
		t.Fatal("tracing off but the packet grew a trailer")
	}

	traced := export(2, sampled)
	tr, ok := ParseTrailerV1(traced, 1)
	if !ok {
		t.Fatal("sampled batch missing its trailer")
	}
	if tr.Rate != 2 {
		t.Fatalf("trailer rate %d, want 2", tr.Rate)
	}
	if len(traced) != len(bare)+16 {
		t.Fatalf("traced packet %d bytes, want bare %d + 16", len(traced), len(bare))
	}

	skipped := export(2, unsampled)
	if _, ok := ParseTrailerV1(skipped, 1); ok {
		t.Fatal("unsampled batch should not carry a trailer")
	}
	if len(skipped) != len(bare) {
		t.Fatalf("unsampled traced packet %d bytes, want the bare %d (no wire change)", len(skipped), len(bare))
	}
}
