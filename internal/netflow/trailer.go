package netflow

import (
	"encoding/binary"
	"time"
)

// Trace trailer: a versioned optional extension appended *after* the
// NetFlow v5 records. DecodeV5Into sizes the packet from the header's
// record count and ignores trailing bytes, so decoders that predate the
// trailer (or have tracing disabled) parse a trailered datagram
// byte-for-byte identically to an untrailered one — the extension is
// backward- and forward-compatible by construction.
//
// Layout (16 bytes, network order):
//
//	offset  size  field
//	0       4     magic "XTR1"
//	4       1     version (1)
//	5       1     flags (0, reserved)
//	6       2     trace sampling rate (1-in-N)
//	8       8     export wall clock, unix nanoseconds
const (
	trailerV1Len     = 16
	trailerV1Version = 1
)

var trailerV1Magic = [4]byte{'X', 'T', 'R', '1'}

// TrailerV1 is the decoded trace trailer: the exporter's sampling rate
// and the real-time instant the datagram was flushed, which anchors the
// export→decode leg of a sampled customer's latency timeline.
type TrailerV1 struct {
	Rate uint16
	T0   time.Time
}

// AppendTrailerV1 appends a v1 trace trailer to an encoded v5 packet
// and returns the extended slice. Rates above 65535 are clamped.
func AppendTrailerV1(pkt []byte, rate int, t0 time.Time) []byte {
	if rate < 0 {
		rate = 0
	}
	if rate > 0xffff {
		rate = 0xffff
	}
	var tr [trailerV1Len]byte
	copy(tr[:4], trailerV1Magic[:])
	tr[4] = trailerV1Version
	tr[5] = 0
	binary.BigEndian.PutUint16(tr[6:8], uint16(rate))
	binary.BigEndian.PutUint64(tr[8:16], uint64(t0.UnixNano()))
	return append(pkt, tr[:]...)
}

// ParseTrailerV1 looks for a v1 trace trailer after the nrec records of
// an already-validated v5 packet. It returns (trailer, true) only when
// the bytes immediately past the records carry the magic and version;
// any other trailing content — including none — reports false, so the
// probe is safe on every packet.
func ParseTrailerV1(pkt []byte, nrec int) (TrailerV1, bool) {
	want := v5HeaderLen + nrec*v5RecordLen
	if nrec < 0 || len(pkt) < want+trailerV1Len {
		return TrailerV1{}, false
	}
	tr := pkt[want:]
	if [4]byte(tr[:4]) != trailerV1Magic || tr[4] != trailerV1Version {
		return TrailerV1{}, false
	}
	return TrailerV1{
		Rate: binary.BigEndian.Uint16(tr[6:8]),
		T0:   time.Unix(0, int64(binary.BigEndian.Uint64(tr[8:16]))),
	}, true
}
