package netflow

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"
)

// captureSink records every delivered datagram.
type captureSink struct {
	mu   sync.Mutex
	pkts [][]byte
}

func (s *captureSink) HandlePacket(src string, pkt []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pkts = append(s.pkts, append([]byte(nil), pkt...))
}

func (s *captureSink) snapshot() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]byte(nil), s.pkts...)
}

func testRecord(i int) Record {
	start := time.Date(2019, 4, 24, 0, 0, 0, 0, time.UTC)
	return Record{
		Src:     netip.AddrFrom4([4]byte{11, 0, byte(i >> 8), byte(i&0xFF | 1)}),
		Dst:     netip.MustParseAddr("23.1.1.1"),
		SrcPort: uint16(1000 + i), DstPort: 53, Proto: ProtoUDP,
		Packets: uint32(i + 1), Bytes: uint32((i + 1) * 64),
		Start: start, End: start.Add(time.Second),
	}
}

func TestChaosConnDeterministicSchedule(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, DropRate: 0.2, DupRate: 0.1, ReorderRate: 0.1, CorruptRate: 0.05}
	run := func() ([][]byte, ChaosStats) {
		sink := &captureSink{}
		conn := NewChaosPipe(sink, "exp", cfg)
		pkt := make([]byte, 64)
		for i := 0; i < 500; i++ {
			pkt[0] = byte(i)
			pkt[1] = byte(i >> 8)
			if _, err := conn.Write(pkt); err != nil {
				t.Fatal(err)
			}
		}
		conn.Close()
		return sink.snapshot(), conn.Stats()
	}
	pktsA, statsA := run()
	pktsB, statsB := run()
	if statsA != statsB {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", statsA, statsB)
	}
	if len(pktsA) != len(pktsB) {
		t.Fatalf("delivery count differs: %d vs %d", len(pktsA), len(pktsB))
	}
	for i := range pktsA {
		if !bytes.Equal(pktsA[i], pktsB[i]) {
			t.Fatalf("packet %d differs across identical runs", i)
		}
	}
	if statsA.Dropped == 0 || statsA.Duplicated == 0 || statsA.Reordered == 0 || statsA.Corrupted == 0 {
		t.Fatalf("expected every fault type to fire over 500 writes: %+v", statsA)
	}
	want := statsA.Written - statsA.Dropped + statsA.Duplicated
	if uint64(len(pktsA)) != want {
		t.Fatalf("delivered %d packets, accounting says %d", len(pktsA), want)
	}
}

func TestChaosConnIndependentFaultStreams(t *testing.T) {
	// The drop schedule at a seed must not shift when duplication is
	// enabled alongside it.
	dropsAt := func(cfg ChaosConfig) []int {
		sink := &captureSink{}
		conn := NewChaosPipe(sink, "exp", cfg)
		var drops []int
		for i := 0; i < 200; i++ {
			before := conn.Stats().Dropped
			if _, err := conn.Write([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			if conn.Stats().Dropped > before {
				drops = append(drops, i)
			}
		}
		return drops
	}
	a := dropsAt(ChaosConfig{Seed: 3, DropRate: 0.15})
	b := dropsAt(ChaosConfig{Seed: 3, DropRate: 0.15, DupRate: 0.3, CorruptRate: 0.2})
	if len(a) == 0 {
		t.Fatal("no drops at 15% over 200 writes")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("drop schedule shifted when other faults enabled:\n%v\n%v", a, b)
	}
}

func TestChaosPipeCollectorSeparatesLossClasses(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0", 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	defer col.pc.Close()
	chaos := NewChaosPipe(col, "exporter-1", ChaosConfig{
		Seed: 42, DropRate: 0.10, DupRate: 0.05, ReorderRate: 0.05,
	})
	exp, err := NewExporterWithConfig(ExporterConfig{
		Sampling: 1,
		Dial:     func() (net.Conn, error) { return chaos, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	const total = 3000
	for i := 0; i < total; i++ {
		if err := exp.Export(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := exp.Sent(); got != total {
		t.Fatalf("Sent = %d, want %d", got, total)
	}

	cs := chaos.Stats()
	st := col.FullStats()
	if cs.Dropped == 0 || cs.Duplicated == 0 || cs.Reordered == 0 {
		t.Fatalf("chaos did not exercise all faults: %+v", cs)
	}
	// Duplicate datagrams are delivered immediately after their original,
	// so every one must be caught by the recently-seen ring.
	if st.DupPackets != cs.Duplicated {
		t.Fatalf("DupPackets = %d, chaos duplicated %d", st.DupPackets, cs.Duplicated)
	}
	// Reordered datagrams are delivered one write late and show up as
	// out-of-order arrivals — unless the intervening write was itself
	// dropped, in which case they arrive effectively in order. So the
	// collector sees at most (and usually about) as many as were injected.
	if st.ReorderedPackets == 0 || st.ReorderedPackets > cs.Reordered {
		t.Fatalf("ReorderedPackets = %d, chaos reordered %d", st.ReorderedPackets, cs.Reordered)
	}
	if st.Shed != 0 {
		t.Fatalf("nothing should be shed with a %d-record buffer: %+v", 1<<14, st)
	}
	if st.LostRecords == 0 {
		t.Fatal("10% datagram loss must surface as sequence-gap records")
	}
	// Conservation: every exported record is either delivered or charged
	// as lost, modulo a trailing dropped datagram no later packet reveals.
	delivered := uint64(len(col.out))
	if delivered != st.Records {
		t.Fatalf("channel holds %d, stats say %d delivered", delivered, st.Records)
	}
	if got := delivered + st.LostRecords; got > total || got < total-MaxRecordsPerPacket {
		t.Fatalf("delivered(%d) + lost(%d) = %d, want within one datagram of %d",
			delivered, st.LostRecords, got, total)
	}
	if st.Exporters != 1 {
		t.Fatalf("Exporters = %d, want 1", st.Exporters)
	}
}

func TestCollectorShedSeparateFromLoss(t *testing.T) {
	// Tiny channel, nobody draining: records shed at the collector must
	// not be charged as upstream loss.
	col, err := NewCollector("127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer col.pc.Close()
	pipe := NewChaosPipe(col, "exporter-1", ChaosConfig{}) // no faults
	exp, err := NewExporterWithConfig(ExporterConfig{
		Sampling: 1,
		Dial:     func() (net.Conn, error) { return pipe, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := exp.Export(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	st := col.FullStats()
	if st.LostRecords != 0 || st.DupPackets != 0 {
		t.Fatalf("clean transport charged loss: %+v", st)
	}
	if st.Shed == 0 {
		t.Fatal("overflowing an 8-record channel must shed")
	}
	if st.Records != 8 {
		t.Fatalf("Records = %d, want 8 (channel capacity)", st.Records)
	}
	if st.Records+st.Shed != 300 {
		t.Fatalf("delivered %d + shed %d != 300", st.Records, st.Shed)
	}
}

func TestExporterReconnectsAfterWriteFailure(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0", 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	defer col.pc.Close()
	// Fail roughly half the writes: the exporter must keep records
	// pending across failures, redial, and eventually deliver everything
	// (chaos write failures are pre-send, so no datagrams are lost).
	var dials int
	exp, err := NewExporterWithConfig(ExporterConfig{
		Sampling:    1,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  10 * time.Microsecond,
		Dial: func() (net.Conn, error) {
			dials++
			return NewChaosPipe(col, "exporter-1", ChaosConfig{Seed: int64(dials), FailRate: 0.5}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const total = 2000
	for i := 0; i < total; i++ {
		if err := exp.Export(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for exp.Sent() < total {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d sent: %+v", exp.Sent(), total, exp.Stats())
		}
		if err := exp.Flush(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Microsecond)
	}
	es := exp.Stats()
	if es.WriteErrors == 0 || es.Reconnects == 0 {
		t.Fatalf("expected write errors and reconnects: %+v", es)
	}
	st := col.FullStats()
	// Each reconnect restarts the chaos conn but the v5 sequence keeps
	// counting, so the collector must see a contiguous stream: no loss.
	if st.LostRecords != 0 {
		t.Fatalf("pre-send failures must not lose records: %+v", st)
	}
	if st.Records != total {
		t.Fatalf("Records = %d, want %d", st.Records, total)
	}
}

func TestExporterShedsWhenCollectorDead(t *testing.T) {
	dead := &deadConn{}
	exp, err := NewExporterWithConfig(ExporterConfig{
		Sampling:    1,
		MaxPending:  100,
		BaseBackoff: time.Hour, // stay down for the whole test
		MaxBackoff:  time.Hour,
		Dial:        func() (net.Conn, error) { return dead, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := exp.Export(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := exp.Stats()
	if st.Pending > 100 {
		t.Fatalf("pending %d exceeds MaxPending 100", st.Pending)
	}
	if st.Shed == 0 {
		t.Fatalf("a dead collector must shed, not grow without bound: %+v", st)
	}
	if st.Sent != 0 {
		t.Fatalf("nothing can have been sent: %+v", st)
	}
	if st.Shed+uint64(st.Pending) != 1000 {
		t.Fatalf("shed %d + pending %d != 1000", st.Shed, st.Pending)
	}
}

// deadConn fails every write, simulating an unreachable collector.
type deadConn struct{}

func (deadConn) Write([]byte) (int, error)        { return 0, errors.New("host unreachable") }
func (deadConn) Read([]byte) (int, error)         { return 0, errors.New("host unreachable") }
func (deadConn) Close() error                     { return nil }
func (deadConn) LocalAddr() net.Addr              { return sinkAddr{name: "dead"} }
func (deadConn) RemoteAddr() net.Addr             { return sinkAddr{name: "dead"} }
func (deadConn) SetDeadline(time.Time) error      { return nil }
func (deadConn) SetReadDeadline(time.Time) error  { return nil }
func (deadConn) SetWriteDeadline(time.Time) error { return nil }

func TestExporterCloseIdempotent(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer col.pc.Close()
	exp, err := NewExporter(col.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Export(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := exp.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := exp.Close(); err != nil {
		t.Fatalf("second close must be a no-op, got %v", err)
	}
	if err := exp.Export(testRecord(2)); !errors.Is(err, ErrExporterClosed) {
		t.Fatalf("Export after close = %v, want ErrExporterClosed", err)
	}
	if err := exp.Flush(); !errors.Is(err, ErrExporterClosed) {
		t.Fatalf("Flush after close = %v, want ErrExporterClosed", err)
	}
}

func TestChaosConnOverRealUDP(t *testing.T) {
	// The same chaos schedule over a real kernel socket: content is
	// deterministic, timing is not, so assertions are structural.
	col, err := NewCollector("127.0.0.1:0", 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- col.Run(ctx) }()

	exp, err := NewExporterWithConfig(ExporterConfig{
		Sampling: 1,
		Dial: func() (net.Conn, error) {
			conn, err := net.Dial("udp", col.Addr())
			if err != nil {
				return nil, err
			}
			return NewChaosConn(conn, ChaosConfig{Seed: 99, DropRate: 0.1, DupRate: 0.05}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const total = 1500
	for i := 0; i < total; i++ {
		if err := exp.Export(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	// Drain until the delivered count stabilizes.
	received := 0
	idle := 0
	for idle < 20 {
		select {
		case <-col.Records():
			received++
			idle = 0
		case <-time.After(10 * time.Millisecond):
			idle++
		}
	}
	exp.Close()
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := col.FullStats()
	if received == 0 || st.LostRecords == 0 {
		t.Fatalf("received=%d stats=%+v: expected both delivery and loss", received, st)
	}
	if st.DupPackets == 0 {
		t.Fatalf("5%% duplication over %d datagrams must surface: %+v", total/MaxRecordsPerPacket, st)
	}
	if got := uint64(received) + st.LostRecords; got > total || got+MaxRecordsPerPacket < total {
		t.Fatalf("received(%d) + lost(%d) not within one datagram of %d", received, st.LostRecords, total)
	}
}
