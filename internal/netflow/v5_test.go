package netflow

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

var (
	boot = time.Date(2019, 4, 24, 0, 0, 0, 0, time.UTC)
	now  = boot.Add(10 * time.Minute)
)

func sampleRecord() Record {
	return Record{
		Src:     netip.MustParseAddr("11.1.2.3"),
		Dst:     netip.MustParseAddr("23.4.5.6"),
		SrcPort: 53,
		DstPort: 4444,
		Proto:   ProtoUDP,
		Packets: 100,
		Bytes:   64000,
		Start:   boot.Add(5 * time.Minute),
		End:     boot.Add(6 * time.Minute),
		SrcAS:   64500,
		DstAS:   64999,
	}
}

func TestV5RoundTrip(t *testing.T) {
	recs := []Record{sampleRecord()}
	r2 := sampleRecord()
	r2.Proto = ProtoTCP
	r2.TCPFlags = FlagSYN | FlagACK
	r2.SrcPort = 80
	recs = append(recs, r2)

	pkt, err := EncodeV5(recs, boot, now, 42, 1000)
	if err != nil {
		t.Fatal(err)
	}
	h, got, err := DecodeV5(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.Count != 2 || h.FlowSequence != 42 || h.SamplingInterval != 1000 {
		t.Fatalf("header = %+v", h)
	}
	for i := range recs {
		w, g := recs[i], got[i]
		if g.Src != w.Src || g.Dst != w.Dst || g.SrcPort != w.SrcPort ||
			g.DstPort != w.DstPort || g.Proto != w.Proto || g.TCPFlags != w.TCPFlags ||
			g.Packets != w.Packets || g.Bytes != w.Bytes || g.SrcAS != w.SrcAS || g.DstAS != w.DstAS {
			t.Fatalf("record %d: got %+v want %+v", i, g, w)
		}
		if d := g.Start.Sub(w.Start); d > time.Millisecond || d < -time.Millisecond {
			t.Fatalf("record %d start drift %v", i, d)
		}
		if d := g.End.Sub(w.End); d > time.Millisecond || d < -time.Millisecond {
			t.Fatalf("record %d end drift %v", i, d)
		}
	}
}

func TestV5RoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%MaxRecordsPerPacket + 1
		recs := make([]Record, n)
		for i := range recs {
			start := boot.Add(time.Duration(rng.Intn(500)) * time.Second)
			recs[i] = Record{
				Src:      netip.AddrFrom4([4]byte{11, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(255) + 1)}),
				Dst:      netip.AddrFrom4([4]byte{23, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(255) + 1)}),
				SrcPort:  uint16(rng.Intn(65536)),
				DstPort:  uint16(rng.Intn(65536)),
				Proto:    Proto([]Proto{ProtoTCP, ProtoUDP, ProtoICMP}[rng.Intn(3)]),
				TCPFlags: uint8(rng.Intn(64)),
				Packets:  uint32(rng.Intn(100000) + 1),
				Bytes:    uint32(rng.Intn(1 << 30)),
				Start:    start,
				End:      start.Add(time.Duration(rng.Intn(60)) * time.Second),
				SrcAS:    uint16(rng.Intn(65536)),
				DstAS:    uint16(rng.Intn(65536)),
			}
		}
		pkt, err := EncodeV5(recs, boot, now, rng.Uint32(), uint16(rng.Intn(1<<14)))
		if err != nil {
			return false
		}
		_, got, err := DecodeV5(pkt)
		if err != nil || len(got) != n {
			return false
		}
		for i := range recs {
			if got[i].Src != recs[i].Src || got[i].Packets != recs[i].Packets ||
				got[i].Bytes != recs[i].Bytes || got[i].TCPFlags != recs[i].TCPFlags {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeV5Limits(t *testing.T) {
	if _, err := EncodeV5(nil, boot, now, 0, 0); err == nil {
		t.Fatal("empty record set must error")
	}
	recs := make([]Record, MaxRecordsPerPacket+1)
	for i := range recs {
		recs[i] = sampleRecord()
	}
	if _, err := EncodeV5(recs, boot, now, 0, 0); err == nil {
		t.Fatal("over-limit record set must error")
	}
	if _, err := EncodeV5(recs[:1], now, boot, 0, 0); err == nil {
		t.Fatal("now before bootTime must error")
	}
	bad := sampleRecord()
	bad.Packets = 0
	if _, err := EncodeV5([]Record{bad}, boot, now, 0, 0); err == nil {
		t.Fatal("invalid record must error")
	}
	early := sampleRecord()
	early.Start = boot.Add(-time.Second)
	if _, err := EncodeV5([]Record{early}, boot, now, 0, 0); err == nil {
		t.Fatal("flow starting before bootTime must error")
	}
}

func TestDecodeV5Malformed(t *testing.T) {
	good, err := EncodeV5([]Record{sampleRecord()}, boot, now, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:10],
		"truncated": good[:len(good)-1],
	}
	for name, pkt := range cases {
		if _, _, err := DecodeV5(pkt); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// wrong version
	badVer := append([]byte(nil), good...)
	badVer[1] = 9
	if _, _, err := DecodeV5(badVer); err == nil {
		t.Error("wrong version: expected error")
	}
	// zero count
	zeroCount := append([]byte(nil), good...)
	zeroCount[2], zeroCount[3] = 0, 0
	if _, _, err := DecodeV5(zeroCount); err == nil {
		t.Error("zero count: expected error")
	}
	// implausible count
	bigCount := append([]byte(nil), good...)
	bigCount[2], bigCount[3] = 0xFF, 0xFF
	if _, _, err := DecodeV5(bigCount); err == nil {
		t.Error("huge count: expected error")
	}
}

func TestDecodeV5NeverPanicsOnFuzzInput(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(200)
		pkt := make([]byte, n)
		rng.Read(pkt)
		// Must not panic; errors are fine.
		DecodeV5(pkt)
	}
}

func TestRecordValidate(t *testing.T) {
	r := sampleRecord()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := r
	bad.Src = netip.Addr{}
	if bad.Validate() == nil {
		t.Fatal("invalid src must fail")
	}
	bad = r
	bad.End = r.Start.Add(-time.Second)
	if bad.Validate() == nil {
		t.Fatal("end before start must fail")
	}
	bad = r
	bad.Src = netip.MustParseAddr("2001:db8::1")
	if bad.Validate() == nil {
		t.Fatal("IPv6 must fail")
	}
}

func TestProtoString(t *testing.T) {
	if ProtoUDP.String() != "udp" || ProtoTCP.String() != "tcp" || ProtoICMP.String() != "icmp" {
		t.Fatal("named protocols")
	}
	if Proto(47).String() != "proto-47" {
		t.Fatal("unnamed protocol formatting")
	}
}

// TestDecodeV5IntoDifferential drives DecodeV5 and DecodeV5Into over valid
// packets of every record count, byte-mutated variants of them, and pure
// random noise, asserting the two decoders agree exactly (accept/reject,
// header, records) and that a reused caller slice makes the Into variant
// allocation-free.
func TestDecodeV5IntoDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	randRec := func() Record {
		start := boot.Add(time.Duration(rng.Intn(500)) * time.Second)
		return Record{
			Src:     netip.AddrFrom4([4]byte{11, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}),
			Dst:     netip.AddrFrom4([4]byte{23, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}),
			SrcPort: uint16(rng.Intn(1 << 16)), DstPort: uint16(rng.Intn(1 << 16)),
			Proto: Proto(rng.Intn(256)), TCPFlags: uint8(rng.Intn(64)),
			Packets: uint32(1 + rng.Intn(1e6)), Bytes: uint32(rng.Intn(1e9)),
			Start: start, End: start.Add(time.Duration(rng.Intn(300)) * time.Second),
			SrcAS: uint16(rng.Intn(1 << 16)), DstAS: uint16(rng.Intn(1 << 16)),
		}
	}
	check := func(pkt []byte, scratch []Record) []Record {
		t.Helper()
		h1, r1, err1 := DecodeV5(pkt)
		h2, r2, err2 := DecodeV5Into(pkt, scratch)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("decoders disagree: DecodeV5=%v DecodeV5Into=%v", err1, err2)
		}
		if err1 != nil {
			return r2
		}
		if h1 != h2 || len(r1) != len(r2) {
			t.Fatalf("decoded shape mismatch: %+v/%d vs %+v/%d", h1, len(r1), h2, len(r2))
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("record %d mismatch:\n  %+v\n  %+v", i, r1[i], r2[i])
			}
		}
		return r2
	}

	scratch := make([]Record, 0, MaxRecordsPerPacket)
	for n := 1; n <= MaxRecordsPerPacket; n++ {
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = randRec()
		}
		pkt, err := EncodeV5(recs, boot, now, uint32(rng.Uint64()), uint16(rng.Intn(1<<14)))
		if err != nil {
			t.Fatal(err)
		}
		scratch = check(pkt, scratch)

		// Mutations: truncations and random byte flips.
		scratch = check(pkt[:rng.Intn(len(pkt))], scratch)
		mut := append([]byte(nil), pkt...)
		for k := 0; k < 4; k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		scratch = check(mut, scratch)
	}
	for i := 0; i < 500; i++ {
		noise := make([]byte, rng.Intn(400))
		rng.Read(noise)
		scratch = check(noise, scratch)
	}

	// Steady state: decoding into a warm caller-owned slice allocates nothing.
	pkt, err := EncodeV5([]Record{sampleRecord()}, boot, now, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, out, err := DecodeV5Into(pkt, scratch); err != nil {
			t.Fatal(err)
		} else {
			scratch = out
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeV5Into allocs/op = %v, want 0", allocs)
	}
}
