package netflow

import (
	"net"
	"testing"
	"time"
)

// TestExporterBackoffSchedule pins the reconnect schedule: with jitter
// stubbed to identity the delays double from BaseBackoff up to the
// MaxBackoff ceiling and stay there, and a successful write resets the
// schedule to base.
func TestExporterBackoffSchedule(t *testing.T) {
	exp, err := NewExporterWithConfig(ExporterConfig{
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  400 * time.Millisecond,
		Dial:        func() (net.Conn, error) { return &deadConn{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	exp.jitter = func(d time.Duration) time.Duration { return d }
	want := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond, // ceiling
		400 * time.Millisecond, // pinned at the ceiling
		400 * time.Millisecond,
	}
	exp.mu.Lock()
	for i, w := range want {
		if got := exp.nextBackoffLocked(); got != w {
			exp.mu.Unlock()
			t.Fatalf("attempt %d: delay %v, want %v", i, got, w)
		}
	}
	// A successful write resets to base (mirrors flushLocked's reset).
	exp.backoff = exp.baseBackoff
	if got := exp.nextBackoffLocked(); got != 50*time.Millisecond {
		exp.mu.Unlock()
		t.Fatalf("post-reset delay %v, want base 50ms", got)
	}
	exp.mu.Unlock()
}

// TestExporterBackoffFullJitter pins the jitter envelope: every delay is
// drawn from [0, ceiling] while the pre-jitter schedule still doubles
// underneath, so the cap bounds the worst case and the spread breaks
// reconnect synchronization across a fleet.
func TestExporterBackoffFullJitter(t *testing.T) {
	exp, err := NewExporterWithConfig(ExporterConfig{
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		Dial:        func() (net.Conn, error) { return &deadConn{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	ceilings := []time.Duration{1, 2, 4, 8, 8, 8, 8, 8}
	exp.mu.Lock()
	for i, c := range ceilings {
		ceiling := c * time.Millisecond
		if got := exp.nextBackoffLocked(); got < 0 || got > ceiling {
			exp.mu.Unlock()
			t.Fatalf("attempt %d: jittered delay %v outside [0, %v]", i, got, ceiling)
		}
	}
	exp.mu.Unlock()
	if fullJitter(0) != 0 {
		t.Fatal("fullJitter(0) must be 0")
	}
	// The draw must actually spread: 64 draws from an 8ms window landing
	// on a single value would mean the jitter is not wired in.
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		d := fullJitter(8 * time.Millisecond)
		if d < 0 || d > 8*time.Millisecond {
			t.Fatalf("draw %v outside [0, 8ms]", d)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatal("fullJitter produced a constant schedule")
	}
}

// TestExporterWriteFailureUsesJitteredBackoff pins the integration: a
// write failure parks the exporter for at most the current ceiling, and
// the ceiling doubles per consecutive failure.
func TestExporterWriteFailureUsesJitteredBackoff(t *testing.T) {
	exp, err := NewExporterWithConfig(ExporterConfig{
		BaseBackoff: 40 * time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
		Dial:        func() (net.Conn, error) { return &deadConn{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	var jitterIn []time.Duration
	exp.jitter = func(d time.Duration) time.Duration {
		jitterIn = append(jitterIn, d)
		return d / 2 // deterministic, mid-window
	}
	for i := 0; i < 30; i++ {
		if err := exp.Export(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Flush(); err != nil { // deadConn fails the write
		t.Fatal(err)
	}
	if len(jitterIn) != 1 || jitterIn[0] != 40*time.Millisecond {
		t.Fatalf("first failure drew from %v, want [40ms]", jitterIn)
	}
	exp.mu.Lock()
	wait := time.Until(exp.downUntil)
	exp.mu.Unlock()
	if wait <= 0 || wait > 20*time.Millisecond {
		t.Fatalf("downUntil %v from now, want ~20ms (half the 40ms window)", wait)
	}
	if st := exp.Stats(); st.WriteErrors != 1 {
		t.Fatalf("write errors %d, want 1", st.WriteErrors)
	}
}
