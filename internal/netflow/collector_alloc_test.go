package netflow

import (
	"net/netip"
	"testing"
	"time"
)

// mkTestPacket encodes nrecs records destined to distinct customers into
// one v5 datagram with the given flow sequence.
func mkTestPacket(t testing.TB, nrecs int, seq uint32) []byte {
	t.Helper()
	boot := time.Date(2019, 4, 24, 0, 0, 0, 0, time.UTC)
	now := boot.Add(time.Hour)
	recs := make([]Record, nrecs)
	for i := range recs {
		recs[i] = Record{
			Src:     netip.AddrFrom4([4]byte{11, 0, byte(i >> 8), byte(i)}),
			Dst:     netip.AddrFrom4([4]byte{23, 0, 0, byte(i%8 + 1)}),
			SrcPort: 53, DstPort: 4444, Proto: ProtoUDP,
			Packets: 10, Bytes: 640,
			Start: boot.Add(30 * time.Minute), End: boot.Add(31 * time.Minute),
		}
	}
	pkt, err := EncodeV5(recs, boot, now, seq, 100)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// TestHandlePacketAllocFree is the regression pin for the per-datagram
// source-key and decode allocations: after warm-up, HandlePacket on the
// per-record compatibility path allocates nothing — no fmt.Sprintf key, no
// fresh record slice.
func TestHandlePacketAllocFree(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0", 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer col.pc.Close()
	pkt := mkTestPacket(t, 10, 0)
	seq := uint32(0)
	drain := func() {
		for {
			select {
			case <-col.Records():
			default:
				return
			}
		}
	}
	feed := func() {
		// Rewrite the flow sequence in place so tracking stays in order.
		pkt[16], pkt[17], pkt[18], pkt[19] = byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq)
		col.HandlePacket("198.51.100.9:2055", pkt)
		seq += 10
		drain()
	}
	for i := 0; i < 8; i++ {
		feed()
	}
	if allocs := testing.AllocsPerRun(100, feed); allocs != 0 {
		t.Fatalf("HandlePacket allocs/op = %v, want 0", allocs)
	}
}

// TestCollectorBatched exercises the batched handoff mode: chunks arrive
// one per datagram, recycled chunks are reused, and the steady state is
// allocation-free end to end (HandlePacket + consume + RecycleBatch).
func TestCollectorBatched(t *testing.T) {
	col, err := NewCollectorBatched("127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer col.pc.Close()
	if col.Records() != nil {
		t.Fatal("batched collector must not expose a per-record channel")
	}
	pkt := mkTestPacket(t, 10, 0)
	col.HandlePacket("198.51.100.9:2055", pkt)
	var batch []Record
	select {
	case batch = <-col.Batches():
	default:
		t.Fatal("no batch delivered")
	}
	if len(batch) != 10 {
		t.Fatalf("batch size = %d, want 10", len(batch))
	}
	st := col.FullStats()
	if st.Records != 10 || st.Packets != 1 || st.Shed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	col.RecycleBatch(batch)

	seq := uint32(10)
	feed := func() {
		pkt[16], pkt[17], pkt[18], pkt[19] = byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq)
		col.HandlePacket("198.51.100.9:2055", pkt)
		seq += 10
		col.RecycleBatch(<-col.Batches())
	}
	for i := 0; i < 8; i++ {
		feed()
	}
	if allocs := testing.AllocsPerRun(100, feed); allocs != 0 {
		t.Fatalf("batched HandlePacket allocs/op = %v, want 0", allocs)
	}
}

// TestCollectorBatchedShedsWholeChunks pins the overflow behavior of the
// batched channel: a full consumer sheds whole datagrams, counted per
// record, without blocking the reader.
func TestCollectorBatchedShedsWholeChunks(t *testing.T) {
	col, err := NewCollectorBatched("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer col.pc.Close()
	col.HandlePacket("s:1", mkTestPacket(t, 5, 0))
	col.HandlePacket("s:1", mkTestPacket(t, 7, 5)) // channel full: shed
	st := col.FullStats()
	if st.Records != 5 || st.Shed != 7 {
		t.Fatalf("delivered/shed = %d/%d, want 5/7", st.Records, st.Shed)
	}
}
