package netflow

import (
	"context"
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

func TestExporterCollectorEndToEnd(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0", 1024)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- col.Run(ctx) }()

	exp, err := NewExporter(col.Addr(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	const total = 95 // forces 3 full packets + 1 partial flush
	start := time.Now().Add(-30 * time.Second)
	for i := 0; i < total; i++ {
		r := Record{
			Src:     netip.AddrFrom4([4]byte{11, 0, byte(i / 250), byte(i%250 + 1)}),
			Dst:     netip.MustParseAddr("23.1.1.1"),
			SrcPort: uint16(1000 + i),
			DstPort: 53,
			Proto:   ProtoUDP,
			Packets: uint32(i + 1),
			Bytes:   uint32((i + 1) * 64),
			Start:   start,
			End:     start.Add(time.Second),
		}
		if err := exp.Export(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if exp.Sent() != total {
		t.Fatalf("Sent = %d, want %d", exp.Sent(), total)
	}

	received := 0
	timeout := time.After(5 * time.Second)
	for received < total {
		select {
		case r, ok := <-col.Records():
			if !ok {
				t.Fatalf("collector closed early after %d records", received)
			}
			if r.Proto != ProtoUDP || r.DstPort != 53 {
				t.Fatalf("corrupted record: %+v", r)
			}
			received++
		case <-timeout:
			t.Fatalf("timed out after %d/%d records", received, total)
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	dropped, bad := col.Stats()
	if dropped != 0 || bad != 0 {
		t.Fatalf("dropped=%d bad=%d", dropped, bad)
	}
}

// TestExporterRecordClockRoundTrip pins the BootTime (record-clock) mode:
// simulated flow timestamps far in the past must survive the encode/decode
// round trip to millisecond precision instead of being clamped into the
// exporter's wall-clock epoch. Event-time consumers (the ingest pipeline's
// aggregation workers) seal steps by these timestamps, so clamping would
// collapse a replayed window into a single bucket.
func TestExporterRecordClockRoundTrip(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0", 1024)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go col.Run(ctx)

	base := time.Date(2019, 7, 3, 12, 0, 0, 0, time.UTC) // nowhere near time.Now()
	exp, err := NewExporterWithConfig(ExporterConfig{
		Addr:     col.Addr(),
		Sampling: 1,
		BootTime: base.Add(-time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	const total = 40 // spans two datagrams
	want := make(map[netip.Addr]Record, total)
	for i := 0; i < total; i++ {
		start := base.Add(time.Duration(i) * time.Minute)
		r := Record{
			Src:     netip.AddrFrom4([4]byte{11, 0, 0, byte(i + 1)}),
			Dst:     netip.MustParseAddr("23.1.1.1"),
			SrcPort: uint16(1000 + i), DstPort: 53, Proto: ProtoUDP,
			Packets: uint32(i + 1), Bytes: uint32((i + 1) * 64),
			Start: start, End: start.Add(30 * time.Second),
		}
		want[r.Src] = r
		if err := exp.Export(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}

	timeout := time.After(5 * time.Second)
	for received := 0; received < total; received++ {
		select {
		case got, ok := <-col.Records():
			if !ok {
				t.Fatalf("collector closed early after %d records", received)
			}
			w := want[got.Src]
			if !got.Start.Equal(w.Start) || !got.End.Equal(w.End) {
				t.Fatalf("record %v timestamps clamped: got [%v, %v], want [%v, %v]",
					got.Src, got.Start, got.End, w.Start, w.End)
			}
		case <-timeout:
			t.Fatalf("timed out after %d/%d records", received, total)
		}
	}
}

func TestCollectorIgnoresGarbageDatagrams(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0", 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go col.Run(ctx)

	exp, err := NewExporter(col.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	// Send garbage straight through the exporter's socket.
	if _, err := exp.conn.Write([]byte("this is not netflow")); err != nil {
		t.Fatal(err)
	}
	// Then a valid record; it must still arrive.
	r := Record{
		Src: netip.MustParseAddr("11.1.1.1"), Dst: netip.MustParseAddr("23.1.1.1"),
		Proto: ProtoICMP, Packets: 1, Bytes: 64,
		Start: time.Now().Add(-time.Second), End: time.Now(),
	}
	if err := exp.Export(r); err != nil {
		t.Fatal(err)
	}
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-col.Records():
		if got.Proto != ProtoICMP {
			t.Fatalf("got %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("valid record never arrived")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, bad := col.Stats()
		if bad == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bad packet counter = %d, want 1", bad)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSamplerPassThrough(t *testing.T) {
	s := NewSampler(1, rand.New(rand.NewSource(1)))
	r := Record{Packets: 10, Bytes: 1000}
	got, ok := s.Sample(r)
	if !ok || got.Packets != 10 || got.Bytes != 1000 {
		t.Fatalf("1:1 sampling must pass through, got %+v ok=%v", got, ok)
	}
	if NewSampler(0, nil).N != 1 {
		t.Fatal("n<1 must clamp to 1")
	}
}

func TestSamplerUnbiasedInExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	s := NewSampler(100, rng)
	const trials = 3000
	r := Record{Packets: 500, Bytes: 500 * 64}
	var sumPkts, sumBytes float64
	for i := 0; i < trials; i++ {
		got, ok := s.Sample(r)
		if ok {
			sumPkts += float64(got.Packets)
			sumBytes += float64(got.Bytes)
		}
	}
	meanPkts := sumPkts / trials
	meanBytes := sumBytes / trials
	// Expectation equals the original value; allow 10% statistical slack.
	if meanPkts < 450 || meanPkts > 550 {
		t.Fatalf("mean packets %v, want ≈500", meanPkts)
	}
	if meanBytes < 0.9*500*64 || meanBytes > 1.1*500*64 {
		t.Fatalf("mean bytes %v, want ≈%v", meanBytes, 500*64)
	}
}

func TestSamplerLargeFlowApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	s := NewSampler(1000, rng)
	r := Record{Packets: 1_000_000, Bytes: 64_000_000}
	var sum float64
	const trials = 200
	for i := 0; i < trials; i++ {
		got, ok := s.Sample(r)
		if !ok {
			t.Fatal("million-packet flow should essentially always survive 1:1000 sampling")
		}
		sum += float64(got.Packets)
	}
	mean := sum / trials
	if mean < 0.95e6 || mean > 1.05e6 {
		t.Fatalf("mean %v, want ≈1e6", mean)
	}
}

func TestSamplerDropsSmallFlowsSometimes(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	s := NewSampler(1000, rng)
	r := Record{Packets: 2, Bytes: 128}
	dropped := 0
	for i := 0; i < 500; i++ {
		if _, ok := s.Sample(r); !ok {
			dropped++
		}
	}
	if dropped < 400 {
		t.Fatalf("2-packet flow under 1:1000 sampling should almost always vanish, dropped %d/500", dropped)
	}
}
