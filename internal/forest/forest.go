// Package forest implements the random-forest baseline the paper compares
// Xatu against (§6, "RF"): CART trees with Gini impurity, bootstrap
// aggregation, per-split feature subsampling, and an exhaustive grid search
// over hyper-parameters. The classifier is pointwise — it sees the same
// features as Xatu (at the same three timescales, flattened) but has no
// temporal credit assignment, which is exactly the handicap the paper's
// comparison highlights.
package forest

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Config holds forest hyper-parameters.
type Config struct {
	NumTrees    int
	MaxDepth    int
	MinLeaf     int // minimum samples per leaf
	MaxFeatures int // features tried per split; 0 = sqrt(d)
	Seed        int64
}

// DefaultConfig returns reasonable defaults for a few hundred samples.
func DefaultConfig() Config {
	return Config{NumTrees: 60, MaxDepth: 10, MinLeaf: 2, Seed: 1}
}

// Forest is a trained random forest returning attack probabilities.
type Forest struct {
	trees []*node
	dim   int
}

type node struct {
	feature     int
	threshold   float64
	left, right *node
	prob        float64 // leaf: fraction of positive samples
	leaf        bool
}

// ErrBadInput reports malformed training input.
var ErrBadInput = errors.New("forest: empty or inconsistent training data")

// Train fits a forest on X (n×d) with boolean labels y.
func Train(X [][]float64, y []bool, cfg Config) (*Forest, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, ErrBadInput
	}
	d := len(X[0])
	for _, row := range X {
		if len(row) != d {
			return nil, ErrBadInput
		}
	}
	if cfg.NumTrees <= 0 {
		cfg.NumTrees = 1
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 8
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	mf := cfg.MaxFeatures
	if mf <= 0 || mf > d {
		mf = int(math.Sqrt(float64(d)))
		if mf < 1 {
			mf = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{dim: d, trees: make([]*node, cfg.NumTrees)}
	idx := make([]int, len(X))
	for t := 0; t < cfg.NumTrees; t++ {
		// Bootstrap sample.
		for i := range idx {
			idx[i] = rng.Intn(len(X))
		}
		f.trees[t] = grow(X, y, append([]int(nil), idx...), cfg.MaxDepth, cfg.MinLeaf, mf, rng)
	}
	return f, nil
}

// grow recursively builds one CART tree over the sample indices.
func grow(X [][]float64, y []bool, idx []int, depth, minLeaf, maxFeatures int, rng *rand.Rand) *node {
	pos := 0
	for _, i := range idx {
		if y[i] {
			pos++
		}
	}
	prob := float64(pos) / float64(len(idx))
	if depth == 0 || len(idx) < 2*minLeaf || pos == 0 || pos == len(idx) {
		return &node{leaf: true, prob: prob}
	}
	bestFeat, bestThr, bestGain := -1, 0.0, 0.0
	parentImp := gini(prob)
	d := len(X[0])
	// Sample candidate features without replacement.
	feats := rng.Perm(d)[:maxFeatures]
	vals := make([]float64, 0, len(idx))
	for _, fi := range feats {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, X[i][fi])
		}
		sort.Float64s(vals)
		// Candidate thresholds: midpoints between distinct quantile probes.
		for _, q := range []float64{0.25, 0.5, 0.75} {
			thr := vals[int(q*float64(len(vals)-1))]
			gain := splitGain(X, y, idx, fi, thr, parentImp, minLeaf)
			if gain > bestGain {
				bestFeat, bestThr, bestGain = fi, thr, gain
			}
		}
	}
	if bestFeat < 0 {
		return &node{leaf: true, prob: prob}
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < minLeaf || len(ri) < minLeaf {
		return &node{leaf: true, prob: prob}
	}
	return &node{
		feature:   bestFeat,
		threshold: bestThr,
		left:      grow(X, y, li, depth-1, minLeaf, maxFeatures, rng),
		right:     grow(X, y, ri, depth-1, minLeaf, maxFeatures, rng),
	}
}

func gini(p float64) float64 { return 2 * p * (1 - p) }

func splitGain(X [][]float64, y []bool, idx []int, feat int, thr, parentImp float64, minLeaf int) float64 {
	var nl, nr, pl, pr int
	for _, i := range idx {
		if X[i][feat] <= thr {
			nl++
			if y[i] {
				pl++
			}
		} else {
			nr++
			if y[i] {
				pr++
			}
		}
	}
	if nl < minLeaf || nr < minLeaf {
		return 0
	}
	n := float64(nl + nr)
	impL := gini(float64(pl) / float64(nl))
	impR := gini(float64(pr) / float64(nr))
	return parentImp - (float64(nl)/n)*impL - (float64(nr)/n)*impR
}

// PredictProb returns the forest's attack probability for x.
func (f *Forest) PredictProb(x []float64) float64 {
	if len(x) != f.dim {
		return 0
	}
	var sum float64
	for _, t := range f.trees {
		n := t
		for !n.leaf {
			if x[n.feature] <= n.threshold {
				n = n.left
			} else {
				n = n.right
			}
		}
		sum += n.prob
	}
	return sum / float64(len(f.trees))
}

// Dim returns the expected feature-vector width.
func (f *Forest) Dim() int { return f.dim }

// GridSearch trains a forest per candidate config and returns the one with
// the highest validation accuracy at threshold 0.5 (the paper: "an
// exhaustive grid search to identify the best hyper-parameters").
func GridSearch(trainX [][]float64, trainY []bool, valX [][]float64, valY []bool, grid []Config) (Config, *Forest, error) {
	if len(grid) == 0 {
		return Config{}, nil, errors.New("forest: empty grid")
	}
	bestAcc := -1.0
	var bestCfg Config
	var bestForest *Forest
	for _, cfg := range grid {
		f, err := Train(trainX, trainY, cfg)
		if err != nil {
			return Config{}, nil, err
		}
		correct := 0
		for i, x := range valX {
			if (f.PredictProb(x) >= 0.5) == valY[i] {
				correct++
			}
		}
		acc := float64(correct) / float64(max(1, len(valX)))
		if acc > bestAcc {
			bestAcc, bestCfg, bestForest = acc, cfg, f
		}
	}
	return bestCfg, bestForest, nil
}
