package forest

import (
	"math/rand"
	"testing"
)

// xorish makes a dataset separable by axis-aligned splits but not by a
// single threshold.
func blob(rng *rand.Rand, n int) ([][]float64, []bool) {
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := range X {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		label := rng.Float64() < 0.5
		if label {
			a += 3
			b -= 3
		}
		X[i] = []float64{a, b, rng.NormFloat64()} // third feature is noise
		y[i] = label
	}
	return X, y
}

func TestTrainAndPredictSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := blob(rng, 400)
	f, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := blob(rng, 200)
	correct := 0
	for i := range testX {
		if (f.PredictProb(testX[i]) >= 0.5) == testY[i] {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.95 {
		t.Fatalf("accuracy = %v, want ≥0.95 on a separable problem", acc)
	}
}

func TestPredictProbRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := blob(rng, 100)
	f, err := Train(X, y, Config{NumTrees: 10, MaxDepth: 4, MinLeaf: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p := f.PredictProb([]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(nil, nil, DefaultConfig()); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := Train([][]float64{{1}}, []bool{true, false}, DefaultConfig()); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []bool{true, false}, DefaultConfig()); err == nil {
		t.Fatal("ragged rows must error")
	}
}

func TestPredictWrongDimIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := blob(rng, 60)
	f, err := Train(X, y, Config{NumTrees: 5, MaxDepth: 3, MinLeaf: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.PredictProb([]float64{1}) != 0 {
		t.Fatal("wrong-width input must score 0")
	}
	if f.Dim() != 3 {
		t.Fatalf("Dim = %d", f.Dim())
	}
}

func TestDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := blob(rng, 120)
	cfg := Config{NumTrees: 8, MaxDepth: 5, MinLeaf: 2, Seed: 42}
	f1, _ := Train(X, y, cfg)
	f2, _ := Train(X, y, cfg)
	for i := 0; i < 30; i++ {
		x := []float64{float64(i) - 15, float64(i%5) - 2, 0}
		if f1.PredictProb(x) != f2.PredictProb(x) {
			t.Fatal("same seed must give identical forests")
		}
	}
}

func TestPureLabelTraining(t *testing.T) {
	// All-positive labels: every prediction must be 1.
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []bool{true, true, true, true}
	f, err := Train(X, y, Config{NumTrees: 4, MaxDepth: 3, MinLeaf: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p := f.PredictProb([]float64{2.5}); p != 1 {
		t.Fatalf("prob = %v, want 1", p)
	}
}

func TestGridSearchPicksBetterConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := blob(rng, 300)
	valX, valY := blob(rng, 150)
	grid := []Config{
		{NumTrees: 1, MaxDepth: 1, MinLeaf: 50, Seed: 1}, // crippled
		{NumTrees: 40, MaxDepth: 8, MinLeaf: 2, Seed: 1}, // reasonable
	}
	cfg, f, err := GridSearch(X, y, valX, valY, grid)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumTrees != 40 {
		t.Fatalf("grid search picked the crippled config: %+v", cfg)
	}
	if f == nil {
		t.Fatal("no forest returned")
	}
}

func TestGridSearchEmptyGrid(t *testing.T) {
	if _, _, err := GridSearch(nil, nil, nil, nil, nil); err == nil {
		t.Fatal("empty grid must error")
	}
}

func TestNoiseFeatureRobustness(t *testing.T) {
	// With many pure-noise features the forest should still learn the two
	// informative dimensions (feature subsampling at work).
	rng := rand.New(rand.NewSource(7))
	n, d := 400, 30
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		y[i] = rng.Float64() < 0.5
		if y[i] {
			row[0] += 4
		}
		X[i] = row
	}
	f, err := Train(X, y, Config{NumTrees: 60, MaxDepth: 8, MinLeaf: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 200; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		label := rng.Float64() < 0.5
		if label {
			row[0] += 4
		}
		if (f.PredictProb(row) >= 0.5) == label {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.9 {
		t.Fatalf("accuracy = %v with noise features", acc)
	}
}
