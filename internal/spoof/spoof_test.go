package spoof

import (
	"net/netip"
	"testing"

	"github.com/xatu-go/xatu/internal/routing"
)

func table(t *testing.T) *routing.Table {
	t.Helper()
	var tbl routing.Table
	for _, r := range []struct {
		p string
		a routing.ASN
	}{
		{"11.0.0.0/8", 64500},
		{"23.0.0.0/8", 64501},
	} {
		if err := tbl.Insert(netip.MustParsePrefix(r.p), r.a); err != nil {
			t.Fatal(err)
		}
	}
	return &tbl
}

func TestBogonDetection(t *testing.T) {
	bogons := []string{
		"10.1.2.3", "192.168.1.1", "172.16.5.5", "172.31.255.255",
		"100.64.0.1", "192.0.2.9", "198.51.100.7", "203.0.113.200",
		"127.0.0.1", "169.254.1.1", "224.0.0.5", "240.1.1.1", "0.1.2.3",
	}
	for _, s := range bogons {
		if !IsBogon(netip.MustParseAddr(s)) {
			t.Errorf("IsBogon(%s) = false, want true", s)
		}
	}
	legit := []string{"11.2.3.4", "8.8.8.8", "172.32.0.1", "100.128.0.1", "223.255.255.255"}
	for _, s := range legit {
		if IsBogon(netip.MustParseAddr(s)) {
			t.Errorf("IsBogon(%s) = true, want false", s)
		}
	}
}

func TestClassify(t *testing.T) {
	c := NewChecker(table(t))
	cases := []struct {
		addr    string
		ingress routing.ASN
		want    Class
	}{
		{"10.0.0.1", 0, Bogon},
		{"99.1.2.3", 0, Unrouted},          // not in table
		{"11.1.2.3", 0, Legit},             // routed, no ingress check
		{"11.1.2.3", 64500, Legit},         // matching origin
		{"11.1.2.3", 64501, InvalidOrigin}, // wrong origin
		{"23.200.1.1", 64501, Legit},       // matching origin
	}
	for _, cse := range cases {
		got := c.Classify(netip.MustParseAddr(cse.addr), cse.ingress)
		if got != cse.want {
			t.Errorf("Classify(%s, %d) = %v, want %v", cse.addr, cse.ingress, got, cse.want)
		}
	}
}

func TestSpoofedPredicate(t *testing.T) {
	if Legit.Spoofed() {
		t.Fatal("Legit must not be spoofed")
	}
	for _, c := range []Class{Bogon, Unrouted, InvalidOrigin} {
		if !c.Spoofed() {
			t.Fatalf("%v must be spoofed", c)
		}
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{
		Legit: "legit", Bogon: "bogon", Unrouted: "unrouted",
		InvalidOrigin: "invalid-origin", Class(99): "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

// TestImperfection documents the designed incompleteness of the A3 signal:
// a spoofed address chosen inside routed space with a plausible ingress AS
// passes every check (the paper: "We likely miss much-spoofed traffic").
func TestImperfection(t *testing.T) {
	c := NewChecker(table(t))
	// Attacker spoofs 11.9.9.9 while entering from AS 64500 (its legit origin).
	if c.IsSpoofed(netip.MustParseAddr("11.9.9.9"), 64500) {
		t.Fatal("cleverly spoofed routed address should evade the obvious-spoof check")
	}
}
