// Package spoof classifies traffic sources as (obviously) spoofed, the A3
// auxiliary signal of the paper (§5.1). Following the paper's three
// categories, an address is flagged when it is:
//
//  1. a bogon (RFC 1918 private, RFC 5737 documentation, RFC 6598 shared
//     address space, plus loopback/link-local/multicast/reserved), or
//  2. unrouted — not covered by any prefix in the BGP table, or
//  3. invalid — routed, but arriving from an ingress whose expected origin
//     AS does not announce the source prefix (a simplified full-cone check).
//
// Like the paper's measure, this deliberately catches only *obvious*
// spoofing; tests assert both directions of that imperfection.
package spoof

import (
	"net/netip"

	"github.com/xatu-go/xatu/internal/routing"
)

// Class is the spoof classification of a source address.
type Class int

const (
	// Legit means the address passed every check.
	Legit Class = iota
	// Bogon means the address sits in reserved/private space.
	Bogon
	// Unrouted means no BGP prefix covers the address.
	Unrouted
	// InvalidOrigin means the source prefix is announced by a different AS
	// than the one the packet entered from.
	InvalidOrigin
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Legit:
		return "legit"
	case Bogon:
		return "bogon"
	case Unrouted:
		return "unrouted"
	case InvalidOrigin:
		return "invalid-origin"
	default:
		return "unknown"
	}
}

// Spoofed reports whether the class indicates a spoofed source.
func (c Class) Spoofed() bool { return c != Legit }

// bogonPrefixes are the reserved ranges from RFC 1918, RFC 5737, RFC 6598
// and friends.
var bogonPrefixes = func() []netip.Prefix {
	strs := []string{
		"0.0.0.0/8",       // "this network"
		"10.0.0.0/8",      // RFC 1918
		"100.64.0.0/10",   // RFC 6598 shared address space
		"127.0.0.0/8",     // loopback
		"169.254.0.0/16",  // link local
		"172.16.0.0/12",   // RFC 1918
		"192.0.2.0/24",    // RFC 5737 TEST-NET-1
		"192.168.0.0/16",  // RFC 1918
		"198.18.0.0/15",   // benchmarking
		"198.51.100.0/24", // RFC 5737 TEST-NET-2
		"203.0.113.0/24",  // RFC 5737 TEST-NET-3
		"224.0.0.0/4",     // multicast
		"240.0.0.0/4",     // reserved
	}
	out := make([]netip.Prefix, len(strs))
	for i, s := range strs {
		out[i] = netip.MustParsePrefix(s)
	}
	return out
}()

// IsBogon reports whether addr falls in reserved/private space.
func IsBogon(addr netip.Addr) bool {
	addr = addr.Unmap()
	for _, p := range bogonPrefixes {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}

// Checker classifies source addresses against a routing table.
type Checker struct {
	table *routing.Table
}

// NewChecker returns a Checker over the given routing table.
func NewChecker(table *routing.Table) *Checker {
	return &Checker{table: table}
}

// Classify classifies src. ingressAS is the AS the traffic entered the
// provider from; pass 0 to skip the origin-validity check (the paper notes
// per-ingress attribution is often unavailable in sampled NetFlow).
func (c *Checker) Classify(src netip.Addr, ingressAS routing.ASN) Class {
	if IsBogon(src) {
		return Bogon
	}
	route, ok := c.table.Lookup(src)
	if !ok {
		return Unrouted
	}
	if ingressAS != 0 && route.Origin != ingressAS {
		return InvalidOrigin
	}
	return Legit
}

// IsSpoofed is the boolean convenience wrapper used by the feature
// extractor.
func (c *Checker) IsSpoofed(src netip.Addr, ingressAS routing.ASN) bool {
	return c.Classify(src, ingressAS).Spoofed()
}
