// Package features implements Xatu's 273-feature extractor (Table 1). For
// one customer and one time step it turns the step's flow records into:
//
//   - V: 63 volumetric features over all flows;
//   - A1/A2/A3: the same 63 features over the sub-flows whose sources are
//     blocklisted, previous attackers of this customer, or spoofed;
//   - A4: 18 attack-history features (severity histogram per attack type);
//   - A5: 3 bipartite clustering coefficients (dot/min/max).
//
// The 63-feature volumetric block is: unique source nodes (1); mean and max
// of per-flow traffic in bytes and packets (4); UDP/TCP/ICMP traffic (6);
// traffic from 5 popular source ports (10); traffic to 5 popular
// destination ports (10); traffic with each of 6 TCP flags (12); traffic
// from 10 popular countries (20). Counted features are measured in both
// bytes and packets, following the table's († ) note.
package features

import (
	"net/netip"
	"time"

	"github.com/xatu-go/xatu/internal/attackhist"
	"github.com/xatu-go/xatu/internal/blocklist"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/netflow"
	"github.com/xatu-go/xatu/internal/spoof"
)

// PopularPorts are the five ports from Appendix D ("prevalent in our
// NetFlow and take up over 95% of traffic").
var PopularPorts = [5]uint16{0, 53, 80, 123, 443}

// PopularCountries are the ten countries from Appendix D.
var PopularCountries = [10]string{"US", "IN", "SA", "CN", "GB", "NL", "FR", "DE", "BR", "CA"}

// tcpFlags lists the six flag bits the flag features disaggregate.
var tcpFlags = [6]uint8{netflow.FlagFIN, netflow.FlagSYN, netflow.FlagRST, netflow.FlagPSH, netflow.FlagACK, netflow.FlagURG}

// Sizes of the feature blocks.
const (
	VolumetricSize = 63
	A4Size         = int(ddos.NumAttackTypes) * int(ddos.NumSeverities) // 18
	A5Size         = 3
	// NumFeatures is the full input width: V + A1 + A2 + A3 + A4 + A5.
	NumFeatures = 4*VolumetricSize + A4Size + A5Size // 273
)

// Offsets of each block within the feature vector.
const (
	OffV  = 0
	OffA1 = VolumetricSize
	OffA2 = 2 * VolumetricSize
	OffA3 = 3 * VolumetricSize
	OffA4 = 4 * VolumetricSize
	OffA5 = 4*VolumetricSize + A4Size
)

// Extractor computes feature vectors. It is safe for concurrent use as long
// as the underlying registries are (they are).
type Extractor struct {
	Blocklists *blocklist.Registry
	History    *attackhist.Registry
	Spoof      *spoof.Checker
	// Geo maps a source address to a country code.
	Geo func(netip.Addr) string
	// A4Window bounds how far back the severity histogram looks.
	A4Window time.Duration
	// A5Window bounds the clustering-coefficient attacker graph.
	A5Window time.Duration

	// Disable masks signal groups for the §6.3 ablations: entries are
	// "A1".."A5". A disabled group's features are extracted as zero.
	Disable map[string]bool
	// BlocklistCategories restricts the A1 signal to specific blocklist
	// categories (Appendix E's per-category breakdown); nil means all.
	BlocklistCategories []blocklist.Category
}

// listed applies the optional category filter to an A1 membership test.
func (e *Extractor) listed(src netip.Addr, at time.Time) bool {
	if e.BlocklistCategories == nil {
		return e.Blocklists.AnyListedAt(src, at)
	}
	for _, c := range e.BlocklistCategories {
		if e.Blocklists.ListedAt(c, src, at) {
			return true
		}
	}
	return false
}

// Scratch holds the reusable accumulator state of ExtractInto: the four
// volumetric accumulators and their unique-source sets survive across
// calls, so a warmed-up extraction loop allocates nothing. A Scratch
// belongs to one extraction loop at a time — it is not safe for
// concurrent use (the Extractor itself remains shareable).
type Scratch struct {
	vAll, vA1, vA2, vA3 volAcc
}

// Extract computes the 273-vector for one customer at one step. flows are
// the step's records destined to the customer. It allocates the output
// vector and accumulator state per call; hot loops should hold a Scratch
// and call ExtractInto.
func (e *Extractor) Extract(customer netip.Addr, at time.Time, flows []netflow.Record) []float64 {
	return e.ExtractInto(make([]float64, NumFeatures), new(Scratch), customer, at, flows)
}

// ExtractInto computes the same 273-vector as Extract into dst, reusing
// s's accumulator state. dst is grown (or allocated) to NumFeatures and
// returned; passing the previous call's return value back in makes the
// steady state allocation-free. The result is bit-identical to Extract:
// both paths accumulate in flow order with the same arithmetic.
func (e *Extractor) ExtractInto(dst []float64, s *Scratch, customer netip.Addr, at time.Time, flows []netflow.Record) []float64 {
	if cap(dst) < NumFeatures {
		dst = make([]float64, NumFeatures)
	} else {
		dst = dst[:NumFeatures]
		for i := range dst {
			dst[i] = 0
		}
	}
	out := dst
	s.vAll.reset()
	s.vA1.reset()
	s.vA2.reset()
	s.vA3.reset()
	vAll, vA1, vA2, vA3 := &s.vAll, &s.vA1, &s.vA2, &s.vA3
	// Per-signal gates hoisted out of the flow loop; the A2 gate also
	// checks once whether the customer has any recorded attacker, so the
	// common no-history case skips the per-flow lookup entirely.
	checkA1 := e.Blocklists != nil && !e.Disable["A1"]
	checkA2 := e.History != nil && !e.Disable["A2"] && e.History.HasAttackers(customer)
	checkA3 := e.Spoof != nil && !e.Disable["A3"]
	for i := range flows {
		r := &flows[i]
		vAll.add(r, e.Geo)
		if checkA1 && e.listed(r.Src, at) {
			vA1.add(r, e.Geo)
		}
		if checkA2 && e.History.WasAttacker(customer, r.Src, at) {
			vA2.add(r, e.Geo)
		}
		if checkA3 && e.Spoof.IsSpoofed(r.Src, 0) {
			vA3.add(r, e.Geo)
		}
	}
	vAll.fill(out[OffV : OffV+VolumetricSize])
	vA1.fill(out[OffA1 : OffA1+VolumetricSize])
	vA2.fill(out[OffA2 : OffA2+VolumetricSize])
	vA3.fill(out[OffA3 : OffA3+VolumetricSize])
	if e.History != nil && !e.Disable["A4"] {
		hist := e.History.SeverityHistogram(customer, at, e.A4Window)
		copy(out[OffA4:OffA4+A4Size], hist[:])
	}
	if e.History != nil && !e.Disable["A5"] {
		out[OffA5+0] = e.History.Clustering(customer, at, e.A5Window, attackhist.ClusteringDot)
		out[OffA5+1] = e.History.Clustering(customer, at, e.A5Window, attackhist.ClusteringMin)
		out[OffA5+2] = e.History.Clustering(customer, at, e.A5Window, attackhist.ClusteringMax)
	}
	return out
}

// volAcc accumulates the 63 volumetric features.
type volAcc struct {
	srcs               map[netip.Addr]struct{}
	sumB, sumP         float64
	maxB, maxP         float64
	nFlows             float64
	protoB, protoP     [3]float64 // UDP, TCP, ICMP
	srcPortB, srcPortP [5]float64
	dstPortB, dstPortP [5]float64
	flagB, flagP       [6]float64
	countryB, countryP [10]float64
}

// reset zeroes the accumulator for reuse, keeping the unique-source map's
// storage (cleared, not dropped) so repeated extraction does not allocate.
func (v *volAcc) reset() {
	srcs := v.srcs
	*v = volAcc{}
	if srcs != nil {
		clear(srcs)
		v.srcs = srcs
	}
}

func (v *volAcc) add(r *netflow.Record, geo func(netip.Addr) string) {
	if v.srcs == nil {
		v.srcs = make(map[netip.Addr]struct{}, 16)
	}
	v.srcs[r.Src] = struct{}{}
	b, p := float64(r.Bytes), float64(r.Packets)
	v.nFlows++
	v.sumB += b
	v.sumP += p
	if b > v.maxB {
		v.maxB = b
	}
	if p > v.maxP {
		v.maxP = p
	}
	switch r.Proto {
	case netflow.ProtoUDP:
		v.protoB[0] += b
		v.protoP[0] += p
	case netflow.ProtoTCP:
		v.protoB[1] += b
		v.protoP[1] += p
	case netflow.ProtoICMP:
		v.protoB[2] += b
		v.protoP[2] += p
	}
	for i, port := range PopularPorts {
		if r.SrcPort == port {
			v.srcPortB[i] += b
			v.srcPortP[i] += p
		}
		if r.DstPort == port {
			v.dstPortB[i] += b
			v.dstPortP[i] += p
		}
	}
	if r.Proto == netflow.ProtoTCP {
		for i, f := range tcpFlags {
			if r.TCPFlags&f != 0 {
				v.flagB[i] += b
				v.flagP[i] += p
			}
		}
	}
	if geo != nil {
		c := geo(r.Src)
		for i, pc := range PopularCountries {
			if c == pc {
				v.countryB[i] += b
				v.countryP[i] += p
				break
			}
		}
	}
}

func (v *volAcc) fill(dst []float64) {
	_ = dst[VolumetricSize-1]
	if v.nFlows == 0 && len(v.srcs) == 0 {
		return // every feature is zero and dst arrives pre-zeroed
	}
	i := 0
	dst[i] = float64(len(v.srcs))
	i++
	if v.nFlows > 0 {
		dst[i] = v.sumB / v.nFlows
	}
	i++
	dst[i] = v.maxB
	i++
	if v.nFlows > 0 {
		dst[i] = v.sumP / v.nFlows
	}
	i++
	dst[i] = v.maxP
	i++
	for k := 0; k < 3; k++ {
		dst[i] = v.protoB[k]
		dst[i+1] = v.protoP[k]
		i += 2
	}
	for k := 0; k < 5; k++ {
		dst[i] = v.srcPortB[k]
		dst[i+1] = v.srcPortP[k]
		i += 2
	}
	for k := 0; k < 5; k++ {
		dst[i] = v.dstPortB[k]
		dst[i+1] = v.dstPortP[k]
		i += 2
	}
	for k := 0; k < 6; k++ {
		dst[i] = v.flagB[k]
		dst[i+1] = v.flagP[k]
		i += 2
	}
	for k := 0; k < 10; k++ {
		dst[i] = v.countryB[k]
		dst[i+1] = v.countryP[k]
		i += 2
	}
	if i != VolumetricSize {
		panic("features: volumetric block size drifted")
	}
}
