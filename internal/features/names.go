package features

import (
	"fmt"
	"math"

	"github.com/xatu-go/xatu/internal/ddos"
)

// Names returns the 273 feature names in vector order, for documentation,
// saliency reporting (Fig 11) and tests.
func Names() []string {
	out := make([]string, 0, NumFeatures)
	for _, group := range []string{"V", "A1", "A2", "A3"} {
		out = append(out, volumetricNames(group)...)
	}
	for at := ddos.AttackType(0); at < ddos.NumAttackTypes; at++ {
		for s := ddos.Severity(0); s < ddos.NumSeverities; s++ {
			out = append(out, fmt.Sprintf("A4.%s.%s", at, s))
		}
	}
	out = append(out, "A5.clustering.dot", "A5.clustering.min", "A5.clustering.max")
	return out
}

func volumetricNames(group string) []string {
	names := []string{"unique_sources", "mean_bytes", "max_bytes", "mean_pkts", "max_pkts"}
	for _, proto := range []string{"udp", "tcp", "icmp"} {
		names = append(names, proto+"_bytes", proto+"_pkts")
	}
	for _, p := range PopularPorts {
		names = append(names, fmt.Sprintf("srcport%d_bytes", p), fmt.Sprintf("srcport%d_pkts", p))
	}
	for _, p := range PopularPorts {
		names = append(names, fmt.Sprintf("dstport%d_bytes", p), fmt.Sprintf("dstport%d_pkts", p))
	}
	for _, f := range []string{"fin", "syn", "rst", "psh", "ack", "urg"} {
		names = append(names, "flag_"+f+"_bytes", "flag_"+f+"_pkts")
	}
	for _, c := range PopularCountries {
		names = append(names, "country_"+c+"_bytes", "country_"+c+"_pkts")
	}
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = group + "." + n
	}
	return out
}

// GroupOf returns the signal group ("V", "A1".."A5") a feature index
// belongs to, used by the Fig 11 saliency aggregation.
func GroupOf(idx int) string {
	switch {
	case idx < OffA1:
		return "V"
	case idx < OffA2:
		return "A1"
	case idx < OffA3:
		return "A2"
	case idx < OffA4:
		return "A3"
	case idx < OffA5:
		return "A4"
	default:
		return "A5"
	}
}

// Normalize rescales a raw feature vector in place for neural-network
// input: every count-like value goes through log1p (traffic spans many
// orders of magnitude), which leaves the already-small clustering
// coefficients essentially untouched.
func Normalize(v []float64) {
	for i := range v {
		if v[i] > 0 {
			v[i] = math.Log1p(v[i])
		} else if v[i] < 0 {
			v[i] = -math.Log1p(-v[i])
		}
	}
}
