package features

import (
	"net/netip"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/attackhist"
	"github.com/xatu-go/xatu/internal/blocklist"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/netflow"
	"github.com/xatu-go/xatu/internal/routing"
	"github.com/xatu-go/xatu/internal/spoof"
)

var (
	t0       = time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	customer = netip.MustParseAddr("23.1.1.1")
	srcGood  = netip.MustParseAddr("11.1.1.1")
	srcBad   = netip.MustParseAddr("11.2.2.2") // will be blocklisted
	srcPrev  = netip.MustParseAddr("11.3.3.3") // previous attacker
	srcSpoof = netip.MustParseAddr("10.9.9.9") // bogon
)

func testExtractor(t *testing.T) *Extractor {
	t.Helper()
	var tbl routing.Table
	if err := tbl.Insert(netip.MustParsePrefix("11.0.0.0/8"), 64500); err != nil {
		t.Fatal(err)
	}
	bl := blocklist.NewRegistry()
	bl.Add(blocklist.Bot, srcBad, t0.Add(-24*time.Hour), 0)
	hist := attackhist.NewRegistry()
	hist.RecordAttacker(customer, srcPrev, t0.Add(-48*time.Hour))
	return &Extractor{
		Blocklists: bl,
		History:    hist,
		Spoof:      spoof.NewChecker(&tbl),
		Geo:        func(a netip.Addr) string { return "US" },
		A4Window:   10 * 24 * time.Hour,
		A5Window:   10 * 24 * time.Hour,
	}
}

func rec(src netip.Addr, proto netflow.Proto, srcPort, dstPort uint16, flags uint8, bytes, pkts uint32) netflow.Record {
	return netflow.Record{
		Src: src, Dst: customer, Proto: proto,
		SrcPort: srcPort, DstPort: dstPort, TCPFlags: flags,
		Bytes: bytes, Packets: pkts, Start: t0, End: t0.Add(time.Minute),
	}
}

func TestVectorWidthIs273(t *testing.T) {
	if NumFeatures != 273 {
		t.Fatalf("NumFeatures = %d, want 273 (Table 1)", NumFeatures)
	}
	e := testExtractor(t)
	v := e.Extract(customer, t0, nil)
	if len(v) != 273 {
		t.Fatalf("len = %d", len(v))
	}
	if len(Names()) != 273 {
		t.Fatalf("Names() has %d entries", len(Names()))
	}
}

func TestNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestVolumetricBlock(t *testing.T) {
	e := testExtractor(t)
	flows := []netflow.Record{
		rec(srcGood, netflow.ProtoUDP, 53, 4444, 0, 1000, 10),
		rec(srcGood, netflow.ProtoTCP, 5555, 443, netflow.FlagACK|netflow.FlagPSH, 3000, 30),
		rec(netip.MustParseAddr("11.1.1.2"), netflow.ProtoICMP, 0, 0, 0, 500, 5),
	}
	v := e.Extract(customer, t0, flows)
	names := Names()
	get := func(name string) float64 {
		t.Helper()
		for i, n := range names {
			if n == name {
				return v[i]
			}
		}
		t.Fatalf("feature %q not found", name)
		return 0
	}
	if get("V.unique_sources") != 2 {
		t.Fatalf("unique sources = %v", get("V.unique_sources"))
	}
	if get("V.mean_bytes") != 1500 {
		t.Fatalf("mean bytes = %v", get("V.mean_bytes"))
	}
	if get("V.max_bytes") != 3000 || get("V.max_pkts") != 30 {
		t.Fatal("max features wrong")
	}
	if get("V.udp_bytes") != 1000 || get("V.tcp_bytes") != 3000 || get("V.icmp_bytes") != 500 {
		t.Fatal("per-protocol bytes wrong")
	}
	if get("V.srcport53_bytes") != 1000 || get("V.dstport443_bytes") != 3000 {
		t.Fatal("port features wrong")
	}
	if get("V.flag_ack_bytes") != 3000 || get("V.flag_psh_bytes") != 3000 || get("V.flag_syn_bytes") != 0 {
		t.Fatal("flag features wrong")
	}
	if get("V.country_US_bytes") != 4500 {
		t.Fatalf("country bytes = %v", get("V.country_US_bytes"))
	}
	// Src port 0 on the ICMP flow counts toward the port-0 bucket.
	if get("V.srcport0_bytes") != 500 {
		t.Fatalf("srcport0 = %v", get("V.srcport0_bytes"))
	}
}

func TestAuxiliarySubsetBlocks(t *testing.T) {
	e := testExtractor(t)
	flows := []netflow.Record{
		rec(srcGood, netflow.ProtoUDP, 1, 2, 0, 1000, 10),
		rec(srcBad, netflow.ProtoUDP, 1, 2, 0, 400, 4),
		rec(srcPrev, netflow.ProtoUDP, 1, 2, 0, 300, 3),
		rec(srcSpoof, netflow.ProtoUDP, 1, 2, 0, 200, 2),
	}
	v := e.Extract(customer, t0, flows)
	// V block sees everything.
	if v[OffV+0] != 4 { // unique sources
		t.Fatalf("V unique = %v", v[OffV])
	}
	// A1 sees only the blocklisted source.
	if v[OffA1+0] != 1 {
		t.Fatalf("A1 unique = %v", v[OffA1])
	}
	udpBytesOff := 5 // index of udp_bytes inside a volumetric block
	if v[OffA1+udpBytesOff] != 400 {
		t.Fatalf("A1 udp bytes = %v", v[OffA1+udpBytesOff])
	}
	if v[OffA2+udpBytesOff] != 300 {
		t.Fatalf("A2 udp bytes = %v", v[OffA2+udpBytesOff])
	}
	if v[OffA3+udpBytesOff] != 200 {
		t.Fatalf("A3 udp bytes = %v", v[OffA3+udpBytesOff])
	}
}

// TestSubsetDominance is the DESIGN.md invariant: volume counters of any
// A-subset never exceed the corresponding V counters.
func TestSubsetDominance(t *testing.T) {
	e := testExtractor(t)
	flows := []netflow.Record{
		rec(srcBad, netflow.ProtoTCP, 80, 443, netflow.FlagACK, 5000, 50),
		rec(srcPrev, netflow.ProtoUDP, 53, 1, 0, 700, 7),
		rec(srcSpoof, netflow.ProtoICMP, 0, 0, 0, 100, 1),
		rec(srcGood, netflow.ProtoTCP, 1, 80, netflow.FlagSYN, 60, 1),
	}
	v := e.Extract(customer, t0, flows)
	for i := 0; i < VolumetricSize; i++ {
		if i == 1 || i == 3 {
			continue // mean_bytes / mean_pkts: a subset mean may exceed the overall mean
		}
		for _, off := range []int{OffA1, OffA2, OffA3} {
			if v[off+i] > v[OffV+i]+1e-9 {
				t.Fatalf("feature %d: subset %v exceeds V %v", i, v[off+i], v[OffV+i])
			}
		}
	}
}

func TestA4Block(t *testing.T) {
	e := testExtractor(t)
	e.History.RecordAlert(ddos.Alert{
		Sig:         ddos.SignatureFor(ddos.UDPFlood, customer),
		DetectedAt:  t0.Add(-time.Hour),
		MitigatedAt: t0.Add(-30 * time.Minute),
		Severity:    ddos.SeverityHigh,
	})
	v := e.Extract(customer, t0, nil)
	idx := OffA4 + int(ddos.UDPFlood)*int(ddos.NumSeverities) + int(ddos.SeverityHigh)
	if v[idx] != 1 {
		t.Fatalf("A4 feature = %v", v[idx])
	}
}

func TestA5Block(t *testing.T) {
	e := testExtractor(t)
	other := netip.MustParseAddr("23.1.1.2")
	shared := netip.MustParseAddr("11.7.7.7")
	e.History.RecordAttacker(customer, shared, t0.Add(-time.Hour))
	e.History.RecordAttacker(other, shared, t0.Add(-time.Hour))
	v := e.Extract(customer, t0, nil)
	if v[OffA5] <= 0 || v[OffA5+1] <= 0 || v[OffA5+2] <= 0 {
		t.Fatalf("A5 = %v", v[OffA5:OffA5+3])
	}
	// dot ≤ min and dot ≤ ... sanity: min variant is the largest denominator-wise.
	if v[OffA5+1] < v[OffA5+2] {
		t.Fatalf("min variant %v must be ≥ max variant %v", v[OffA5+1], v[OffA5+2])
	}
}

func TestDisableMasksGroups(t *testing.T) {
	e := testExtractor(t)
	e.Disable = map[string]bool{"A1": true, "A4": true}
	e.History.RecordAlert(ddos.Alert{
		Sig:        ddos.SignatureFor(ddos.UDPFlood, customer),
		DetectedAt: t0.Add(-time.Hour), Severity: ddos.SeverityLow,
	})
	flows := []netflow.Record{rec(srcBad, netflow.ProtoUDP, 1, 2, 0, 400, 4)}
	v := e.Extract(customer, t0, flows)
	for i := OffA1; i < OffA1+VolumetricSize; i++ {
		if v[i] != 0 {
			t.Fatalf("disabled A1 leaked at %d: %v", i, v[i])
		}
	}
	for i := OffA4; i < OffA4+A4Size; i++ {
		if v[i] != 0 {
			t.Fatalf("disabled A4 leaked at %d: %v", i, v[i])
		}
	}
	// V still present.
	if v[OffV] != 1 {
		t.Fatal("V must remain with groups disabled")
	}
}

func TestGroupOf(t *testing.T) {
	cases := map[int]string{
		0: "V", 62: "V", 63: "A1", 125: "A1", 126: "A2", 189: "A3",
		252: "A4", 269: "A4", 270: "A5", 272: "A5",
	}
	for idx, want := range cases {
		if got := GroupOf(idx); got != want {
			t.Errorf("GroupOf(%d) = %q, want %q", idx, got, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{0, 1, 1e6, -3}
	Normalize(v)
	if v[0] != 0 {
		t.Fatal("zero stays zero")
	}
	if v[1] <= 0.69 || v[1] >= 0.70 {
		t.Fatalf("log1p(1) = %v", v[1])
	}
	if v[2] < 13 || v[2] > 14 {
		t.Fatalf("log1p(1e6) = %v", v[2])
	}
	if v[3] >= 0 {
		t.Fatal("negative values keep their sign")
	}
}

func TestExtractEmptyFlows(t *testing.T) {
	e := testExtractor(t)
	v := e.Extract(customer, t0, nil)
	for i := 0; i < OffA4; i++ {
		if v[i] != 0 {
			t.Fatalf("volumetric feature %d nonzero on empty input", i)
		}
	}
}

func TestTimeAwareness(t *testing.T) {
	// A source blocklisted tomorrow must not appear in A1 today.
	e := testExtractor(t)
	future := netip.MustParseAddr("11.8.8.8")
	e.Blocklists.Add(blocklist.Scanner, future, t0.Add(24*time.Hour), 0)
	flows := []netflow.Record{rec(future, netflow.ProtoUDP, 1, 2, 0, 900, 9)}
	v := e.Extract(customer, t0, flows)
	if v[OffA1] != 0 {
		t.Fatal("future blocklisting leaked into the past")
	}
	v2 := e.Extract(customer, t0.Add(48*time.Hour), flows)
	if v2[OffA1] == 0 {
		t.Fatal("blocklisting must be visible once live")
	}
}

func TestBlocklistCategoryFilter(t *testing.T) {
	e := testExtractor(t)
	// srcBad is listed under Bot only.
	flows := []netflow.Record{rec(srcBad, netflow.ProtoUDP, 1, 2, 0, 400, 4)}
	e.BlocklistCategories = []blocklist.Category{blocklist.Scanner}
	v := e.Extract(customer, t0, flows)
	if v[OffA1] != 0 {
		t.Fatal("Scanner-only filter must exclude a Bot-listed source")
	}
	e.BlocklistCategories = []blocklist.Category{blocklist.Bot}
	v = e.Extract(customer, t0, flows)
	if v[OffA1] != 1 {
		t.Fatal("Bot filter must include the Bot-listed source")
	}
}

// TestExtractIntoMatchesExtract pins the tentpole parity contract: the
// allocation-lean ExtractInto produces bit-identical vectors to Extract,
// across repeated reuse of the same destination buffer and Scratch (stale
// accumulator state from a previous, different customer step must never
// leak through).
func TestExtractIntoMatchesExtract(t *testing.T) {
	e := testExtractor(t)
	steps := [][]netflow.Record{
		{rec(srcGood, netflow.ProtoUDP, 53, 4444, 0, 640, 10), rec(srcBad, netflow.ProtoTCP, 80, 80, netflow.FlagSYN|netflow.FlagACK, 1200, 20)},
		{rec(srcPrev, netflow.ProtoICMP, 0, 0, 0, 99, 1)},
		nil,
		{rec(srcSpoof, netflow.ProtoUDP, 123, 123, 0, 4096, 64), rec(srcGood, netflow.ProtoTCP, 443, 443, netflow.FlagRST, 52, 1)},
	}
	var (
		dst     []float64
		scratch Scratch
	)
	for i, flows := range steps {
		at := t0.Add(time.Duration(i) * time.Minute)
		want := e.Extract(customer, at, flows)
		dst = e.ExtractInto(dst, &scratch, customer, at, flows)
		if len(dst) != len(want) {
			t.Fatalf("step %d: len %d != %d", i, len(dst), len(want))
		}
		for j := range want {
			if dst[j] != want[j] {
				t.Fatalf("step %d: feature %d: ExtractInto %v != Extract %v", i, j, dst[j], want[j])
			}
		}
	}
}

// TestExtractIntoAllocFree pins that a warmed-up ExtractInto loop does not
// allocate: the destination vector and all accumulator maps are reused. A5
// is disabled because Clustering builds neighborhood maps inside the
// history registry under a read lock (shared scratch there would serialize
// concurrent monitors); that is once-per-step graph work, not per-flow
// accumulation, and is outside this pin.
func TestExtractIntoAllocFree(t *testing.T) {
	e := testExtractor(t)
	e.Disable = map[string]bool{"A5": true}
	flows := []netflow.Record{
		rec(srcGood, netflow.ProtoUDP, 53, 4444, 0, 640, 10),
		rec(srcBad, netflow.ProtoTCP, 80, 80, netflow.FlagSYN, 1200, 20),
		rec(srcPrev, netflow.ProtoICMP, 0, 0, 0, 99, 1),
	}
	var (
		dst     []float64
		scratch Scratch
	)
	for i := 0; i < 4; i++ { // warm the buffer and maps
		dst = e.ExtractInto(dst, &scratch, customer, t0, flows)
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst = e.ExtractInto(dst, &scratch, customer, t0, flows)
	})
	if allocs != 0 {
		t.Fatalf("ExtractInto allocs/op = %v, want 0", allocs)
	}
}
