package routing

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLookupLongestPrefixWins(t *testing.T) {
	var tbl Table
	if err := tbl.Insert(mustPrefix(t, "10.0.0.0/8"), 100); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(mustPrefix(t, "10.1.0.0/16"), 200); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(mustPrefix(t, "10.1.2.0/24"), 300); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr string
		want ASN
	}{
		{"10.2.3.4", 100},
		{"10.1.9.9", 200},
		{"10.1.2.3", 300},
	}
	for _, c := range cases {
		r, ok := tbl.Lookup(netip.MustParseAddr(c.addr))
		if !ok || r.Origin != c.want {
			t.Fatalf("Lookup(%s) = %v,%v want origin %d", c.addr, r, ok, c.want)
		}
	}
}

func TestLookupUnrouted(t *testing.T) {
	var tbl Table
	if err := tbl.Insert(mustPrefix(t, "10.0.0.0/8"), 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Lookup(netip.MustParseAddr("11.0.0.1")); ok {
		t.Fatal("11.0.0.1 must be unrouted")
	}
}

func TestLookupEmptyTable(t *testing.T) {
	var tbl Table
	if _, ok := tbl.Lookup(netip.MustParseAddr("1.2.3.4")); ok {
		t.Fatal("empty table must not match")
	}
}

func TestInsertReplacesOrigin(t *testing.T) {
	var tbl Table
	p := mustPrefix(t, "192.0.2.0/24")
	if err := tbl.Insert(p, 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(p, 2); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
	r, _ := tbl.Lookup(netip.MustParseAddr("192.0.2.55"))
	if r.Origin != 2 {
		t.Fatalf("origin = %d, want 2", r.Origin)
	}
}

func TestInsertRejectsIPv6(t *testing.T) {
	var tbl Table
	if err := tbl.Insert(mustPrefix(t, "2001:db8::/32"), 1); err == nil {
		t.Fatal("expected error for IPv6 prefix")
	}
}

func TestInsertDefaultRoute(t *testing.T) {
	var tbl Table
	if err := tbl.Insert(mustPrefix(t, "0.0.0.0/0"), 7); err != nil {
		t.Fatal(err)
	}
	r, ok := tbl.Lookup(netip.MustParseAddr("203.0.113.9"))
	if !ok || r.Origin != 7 {
		t.Fatal("default route must match everything")
	}
}

// TestLookupMatchesBruteForce is the DESIGN.md invariant: trie LPM agrees
// with a linear scan over all inserted prefixes.
func TestLookupMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tbl Table
		var routes []Route
		for i := 0; i < 50; i++ {
			a := [4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
			bits := rng.Intn(33)
			p := netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked()
			origin := ASN(i + 1)
			if err := tbl.Insert(p, origin); err != nil {
				return false
			}
			// Mirror replacement semantics in the reference list.
			replaced := false
			for j := range routes {
				if routes[j].Prefix == p {
					routes[j].Origin = origin
					replaced = true
					break
				}
			}
			if !replaced {
				routes = append(routes, Route{Prefix: p, Origin: origin})
			}
		}
		for i := 0; i < 200; i++ {
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
			var want *Route
			for j := range routes {
				if routes[j].Prefix.Contains(addr) {
					if want == nil || routes[j].Prefix.Bits() > want.Prefix.Bits() {
						want = &routes[j]
					}
				}
			}
			got, ok := tbl.Lookup(addr)
			if want == nil {
				if ok {
					return false
				}
				continue
			}
			if !ok || got.Origin != want.Origin || got.Prefix != want.Prefix {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticTableProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tbl := SyntheticTable(50, rng)
	if tbl.Len() < 100 {
		t.Fatalf("synthetic table too small: %d prefixes", tbl.Len())
	}
	// Must contain both routed and unrouted addresses.
	routed, unrouted := 0, 0
	for i := 0; i < 2000; i++ {
		addr := netip.AddrFrom4([4]byte{11, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
		if _, ok := tbl.Lookup(addr); ok {
			routed++
		} else {
			unrouted++
		}
	}
	if routed == 0 || unrouted == 0 {
		t.Fatalf("want both routed and unrouted space, got routed=%d unrouted=%d", routed, unrouted)
	}
	// Deterministic for a fixed seed.
	tbl2 := SyntheticTable(50, rand.New(rand.NewSource(42)))
	if tbl2.Len() != tbl.Len() {
		t.Fatal("SyntheticTable must be deterministic for a fixed seed")
	}
}
