package routing

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
)

// LoadText reads a routing table from r, one route per line:
//
//	prefix origin-asn
//
// e.g.
//
//	11.0.0.0/14 64500
//	23.4.0.0/16 64501
//
// Blank lines and '#' comments are ignored. This stands in for loading a
// RouteViews/RIS dump for the A3 spoof checks (§5.1).
func LoadText(r io.Reader) (*Table, error) {
	t := &Table{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("routing: line %d: want 'prefix asn', got %q", lineNo, line)
		}
		p, err := netip.ParsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("routing: line %d: %v", lineNo, err)
		}
		asn, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("routing: line %d: bad asn: %v", lineNo, err)
		}
		if err := t.Insert(p, ASN(asn)); err != nil {
			return nil, fmt.Errorf("routing: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteText serializes the table in LoadText's format, walking the trie in
// prefix order.
func (t *Table) WriteText(w io.Writer) error {
	return writeNode(w, t.root, netip.AddrFrom4([4]byte{}), 0)
}

func writeNode(w io.Writer, n *node, addr netip.Addr, depth int) error {
	if n == nil {
		return nil
	}
	if n.route != nil {
		if _, err := fmt.Fprintf(w, "%s %d\n", n.route.Prefix, n.route.Origin); err != nil {
			return err
		}
	}
	a4 := addr.As4()
	if err := writeNode(w, n.child[0], addr, depth+1); err != nil {
		return err
	}
	b := a4
	b[depth/8] |= 1 << (7 - uint(depth%8))
	return writeNode(w, n.child[1], netip.AddrFrom4(b), depth+1)
}
