// Package routing provides the small BGP-table substrate Xatu's spoofed
// source classification needs (§5.1, A3): a binary prefix trie over IPv4
// space with longest-prefix match, and a synthetic AS-level routing table
// generator standing in for RouteViews/RIPE RIS dumps.
package routing

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// ASN identifies an autonomous system.
type ASN uint32

// Route is one table entry: a prefix originated by an AS.
type Route struct {
	Prefix netip.Prefix
	Origin ASN
}

// Table is a longest-prefix-match routing table over IPv4 prefixes,
// implemented as a binary trie. The zero value is an empty table.
type Table struct {
	root *node
	n    int
}

type node struct {
	child [2]*node
	route *Route // non-nil when a prefix terminates here
}

// Insert adds a route. Inserting the same prefix twice replaces the origin.
// Only IPv4 (or 4-in-6) prefixes are accepted.
func (t *Table) Insert(p netip.Prefix, origin ASN) error {
	p = p.Masked()
	addr := p.Addr().Unmap()
	if !addr.Is4() {
		return fmt.Errorf("routing: only IPv4 prefixes supported, got %v", p)
	}
	if t.root == nil {
		t.root = &node{}
	}
	bits := addr.As4()
	cur := t.root
	for i := 0; i < p.Bits(); i++ {
		b := bit(bits, i)
		if cur.child[b] == nil {
			cur.child[b] = &node{}
		}
		cur = cur.child[b]
	}
	if cur.route == nil {
		t.n++
	}
	r := Route{Prefix: p, Origin: origin}
	cur.route = &r
	return nil
}

// Len reports the number of distinct prefixes in the table.
func (t *Table) Len() int { return t.n }

// Lookup returns the longest-prefix-match route for addr, or ok=false if no
// prefix covers it (the address is "unrouted").
func (t *Table) Lookup(addr netip.Addr) (Route, bool) {
	addr = addr.Unmap()
	if !addr.Is4() || t.root == nil {
		return Route{}, false
	}
	bits := addr.As4()
	var best *Route
	cur := t.root
	if cur.route != nil {
		best = cur.route
	}
	for i := 0; i < 32; i++ {
		cur = cur.child[bit(bits, i)]
		if cur == nil {
			break
		}
		if cur.route != nil {
			best = cur.route
		}
	}
	if best == nil {
		return Route{}, false
	}
	return *best, true
}

// bit returns bit i (0 = most significant) of a 4-byte address.
func bit(a [4]byte, i int) int {
	return int(a[i/8]>>(7-uint(i%8))) & 1
}

// SyntheticTable builds a deterministic toy Internet routing table: nASes
// autonomous systems each originating a handful of disjoint prefixes carved
// out of globally routable space. It intentionally leaves gaps so that some
// addresses are unrouted, which the spoof classifier relies on.
func SyntheticTable(nASes int, rng *rand.Rand) *Table {
	t := &Table{}
	// Carve /16s out of a few large routable blocks, assigning ~70% of them
	// so unrouted gaps remain.
	blocks := [][2]byte{{11, 0}, {23, 0}, {45, 0}, {66, 0}, {101, 0}, {133, 0}, {155, 0}, {181, 0}, {200, 0}}
	asn := ASN(64500)
	assigned := 0
	for _, blk := range blocks {
		for second := 0; second < 256; second += 4 {
			if rng.Float64() > 0.7 {
				continue // leave unrouted gap
			}
			origin := asn + ASN(rng.Intn(nASes))
			p := netip.PrefixFrom(netip.AddrFrom4([4]byte{blk[0], byte(second), 0, 0}), 14)
			if err := t.Insert(p, origin); err != nil {
				panic(err) // prefixes above are always valid IPv4
			}
			assigned++
		}
	}
	return t
}
