package routing

import (
	"bytes"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
)

func TestLoadTextBasic(t *testing.T) {
	input := `
# synthetic table
11.0.0.0/14 64500
23.4.0.0/16 64501
`
	tbl, err := LoadText(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	r, ok := tbl.Lookup(netip.MustParseAddr("11.1.2.3"))
	if !ok || r.Origin != 64500 {
		t.Fatalf("lookup: %v %v", r, ok)
	}
}

func TestLoadTextErrors(t *testing.T) {
	for name, input := range map[string]string{
		"fields": "11.0.0.0/14",
		"prefix": "nope 64500",
		"asn":    "11.0.0.0/14 notanumber",
		"ipv6":   "2001:db8::/32 64500",
	} {
		if _, err := LoadText(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tbl := SyntheticTable(16, rng)
	var buf bytes.Buffer
	if err := tbl.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	tbl2, err := LoadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != tbl.Len() {
		t.Fatalf("round trip lost prefixes: %d vs %d", tbl2.Len(), tbl.Len())
	}
	// Probe lookups must agree.
	for i := 0; i < 500; i++ {
		addr := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
		r1, ok1 := tbl.Lookup(addr)
		r2, ok2 := tbl2.Lookup(addr)
		if ok1 != ok2 || (ok1 && (r1.Prefix != r2.Prefix || r1.Origin != r2.Origin)) {
			t.Fatalf("lookup disagreement for %v: %v/%v vs %v/%v", addr, r1, ok1, r2, ok2)
		}
	}
}
