package core

import (
	"fmt"

	"github.com/xatu-go/xatu/internal/nn"
)

// Precision selects the arithmetic a Stream's kernels run in. Training is
// always float64; serving may run the quantized float32 panel kernels,
// which hold alert behavior within the calibrated tolerance (DESIGN.md
// §14) at a large throughput gain. The survival accounting above the
// kernels (hazard ring, window sums) is float64 in both modes, so
// checkpoints are format-identical.
type Precision uint8

const (
	// PrecisionFloat64 serves with the training-precision kernels. The
	// zero value, so existing constructors keep their exact behavior.
	PrecisionFloat64 Precision = iota
	// PrecisionFloat32 serves with quantized panel-packed weights and
	// float32 recurrent state.
	PrecisionFloat32
)

func (p Precision) String() string {
	switch p {
	case PrecisionFloat64:
		return "float64"
	case PrecisionFloat32:
		return "float32"
	default:
		return fmt.Sprintf("precision(%d)", uint8(p))
	}
}

// ParsePrecision parses a -precision flag value.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "float64", "f64", "64":
		return PrecisionFloat64, nil
	case "float32", "f32", "32":
		return PrecisionFloat32, nil
	default:
		return 0, fmt.Errorf("core: unknown precision %q (want float32 or float64)", s)
	}
}

// Quantized32 is a model's float32 serving form: panel-packed LSTM cells
// and head, built once per model and shared read-only by every stream and
// runner on the lane.
type Quantized32 struct {
	lstms [numBranches]*nn.LSTM32
	head  *nn.Dense32
}

// Quantized32 returns the model's cached float32 serving form, building
// it on first use. Quantization fails on non-finite or float32-overflowing
// weights — the signature of a corrupt weight file — so callers that
// pre-quantize at load time surface bad models before serving starts.
// Fit invalidates the cache after updating weights.
func (m *Model) Quantized32() (*Quantized32, error) {
	m.q32mu.Lock()
	defer m.q32mu.Unlock()
	if m.q32 != nil {
		return m.q32, nil
	}
	q := &Quantized32{}
	for b, l := range m.lstms {
		if l == nil {
			continue
		}
		ql, err := l.Quantize32()
		if err != nil {
			return nil, fmt.Errorf("core: quantizing branch %d: %w", b, err)
		}
		q.lstms[b] = ql
	}
	qh, err := m.head.Quantize32()
	if err != nil {
		return nil, fmt.Errorf("core: quantizing head: %w", err)
	}
	q.head = qh
	m.q32 = q
	return q, nil
}

func (m *Model) invalidateQuantized() {
	m.q32mu.Lock()
	m.q32 = nil
	m.q32mu.Unlock()
}

// Arena hands out float32 slices carved from large chunks, so the stream
// state of one model lane sits in a few contiguous slabs instead of
// thousands of separate heap objects — gather/scatter in the batch runner
// then walks nearly-linear memory. Allocation is grow-only: slots are
// never freed or moved (the engine retires channels by rebuilding whole
// Monitors, never by deleting streams in place), so handed-out slices stay
// valid for the arena's lifetime. Not safe for concurrent use.
type Arena struct {
	cur []float32
	off int
}

// arenaChunkFloats is the chunk granularity (256 KiB). Big enough that a
// lane's streams span few chunks, small enough not to strand memory on
// tiny lanes.
const arenaChunkFloats = 1 << 16

// Alloc returns a zeroed float32 slice of length n with capacity clamped
// to n (appends cannot bleed into neighboring slots).
func (a *Arena) Alloc(n int) nn.Vec32 {
	if n > len(a.cur)-a.off {
		size := arenaChunkFloats
		if n > size {
			size = n
		}
		a.cur = make([]float32, size)
		a.off = 0
	}
	v := a.cur[a.off : a.off+n : a.off+n]
	a.off += n
	return v
}
