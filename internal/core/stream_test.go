package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/xatu-go/xatu/internal/nn"
)

func TestStreamMatchesOfflineHazards(t *testing.T) {
	// With a window-sized stream the sliding survival at the last step must
	// equal the offline survival at the last detection step, because the
	// branch alignment rules are identical.
	cfg := tinyConfig()
	m, _ := New(cfg)
	rng := rand.New(rand.NewSource(5))
	T := 48
	xs := make([]nn.Vec, T)
	for i := range xs {
		xs[i] = nn.Vec{rng.NormFloat64(), rng.NormFloat64(), 0, 0}
	}
	s := NewStream(m)
	var last float64
	for _, x := range xs {
		last = s.Push(x)
	}
	off, err := m.Survival(xs)
	if err != nil {
		t.Fatal(err)
	}
	want := off[len(off)-1]
	if math.Abs(last-want) > 1e-9 {
		t.Fatalf("stream survival %v != offline %v", last, want)
	}
}

func TestStreamSurvivalRange(t *testing.T) {
	m, _ := New(tinyConfig())
	s := NewStream(m)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		v := s.Push([]float64{rng.NormFloat64(), 0, 0, 0})
		if v <= 0 || v > 1 {
			t.Fatalf("survival %v out of range at step %d", v, i)
		}
	}
	if s.Steps() != 100 {
		t.Fatalf("Steps = %d", s.Steps())
	}
}

func TestStreamWarm(t *testing.T) {
	cfg := tinyConfig() // PoolLong = 12, Window = 8
	m, _ := New(cfg)
	s := NewStream(m)
	for i := 0; i < 11; i++ {
		s.Push([]float64{1, 0, 0, 0})
	}
	if s.Warm() {
		t.Fatal("must not be warm before the long branch has stepped")
	}
	for i := 0; i < 10; i++ {
		s.Push([]float64{1, 0, 0, 0})
	}
	if !s.Warm() {
		t.Fatal("must be warm after PoolLong and Window steps")
	}
}

func TestStreamReset(t *testing.T) {
	m, _ := New(tinyConfig())
	s := NewStream(m)
	seq := [][]float64{{1, 2, 0, 0}, {3, 4, 0, 0}, {5, 6, 0, 0}}
	var first []float64
	for _, x := range seq {
		first = append(first, s.Push(x))
	}
	s.Reset()
	if s.Steps() != 0 || s.Warm() {
		t.Fatal("Reset must clear state")
	}
	for i, x := range seq {
		if got := s.Push(x); got != first[i] {
			t.Fatalf("replay after Reset differs at %d: %v vs %v", i, got, first[i])
		}
	}
}

func TestStreamDipsOnAttackAfterTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := tinyConfig()
	m, _ := New(cfg)
	train := synthSet(rng, 40, 48, cfg.Window)
	if _, err := m.Fit(train, TrainOptions{Epochs: 25, BatchSize: 8, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	// Stream a long benign prefix then an attack ramp; survival must drop
	// markedly during the attack relative to the benign phase.
	s := NewStream(m)
	var benignMin float64 = 2
	for i := 0; i < 80; i++ {
		v := s.Push([]float64{0, 0, rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1})
		if i > 40 && v < benignMin {
			benignMin = v
		}
	}
	var attackMin float64 = 2
	for i := 0; i < 20; i++ {
		x := []float64{0, 0.5, 0, 0}
		if i > 12 {
			x[0] = 1
		}
		v := s.Push(x)
		if v < attackMin {
			attackMin = v
		}
	}
	if !(attackMin < benignMin*0.9) {
		t.Fatalf("attack survival %v not clearly below benign floor %v", attackMin, benignMin)
	}
}
