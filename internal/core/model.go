// Package core implements Xatu's machine learning (§4): the multi-timescale
// LSTM over the 273 traffic features, the survival-analysis training
// objective, gradient attribution, and the streaming online detector. Every
// design knob the paper ablates (§6.3, Appendix H) is a Config field:
// individual timescales, the survival loss vs a classification loss, hidden
// width, pooling granularities, and lookback length (via the input series).
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"github.com/xatu-go/xatu/internal/nn"
	"github.com/xatu-go/xatu/internal/survival"
)

// Config parameterizes a Model. The paper's prototype uses Hidden=200,
// pooling at (1, 10, 60) minutes, a detection window of N=30 and the SAFE
// survival loss; scaled-down experiments shrink Hidden and the input
// window, not the structure.
type Config struct {
	NumFeatures int `json:"num_features"`
	Hidden      int `json:"hidden"`
	// PoolShort/Med/Long are the aggregation factors (in base steps) for
	// TSShort, TSMedium and TSLong.
	PoolShort int `json:"pool_short"`
	PoolMed   int `json:"pool_med"`
	PoolLong  int `json:"pool_long"`
	// Window is the detection window N: hazards are emitted for the last N
	// pooled-short steps of the input sequence.
	Window int `json:"window"`
	// UseShort/Med/Long toggle the three LSTMs (Fig 18(b) ablation).
	UseShort bool `json:"use_short"`
	UseMed   bool `json:"use_med"`
	UseLong  bool `json:"use_long"`
	// UseSurvival selects the SAFE loss; false trains with per-step binary
	// cross-entropy (the classification baseline of Fig 18(d)).
	UseSurvival bool  `json:"use_survival"`
	Seed        int64 `json:"seed"`
	// LearningRate for Adam (paper: 1e-4; scaled runs use larger).
	LearningRate float64 `json:"learning_rate"`
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig(numFeatures int) Config {
	return Config{
		NumFeatures: numFeatures,
		Hidden:      16,
		PoolShort:   1, PoolMed: 10, PoolLong: 60,
		Window:   30,
		UseShort: true, UseMed: true, UseLong: true,
		UseSurvival:  true,
		Seed:         1,
		LearningRate: 3e-3,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumFeatures <= 0:
		return errors.New("core: NumFeatures must be positive")
	case c.Hidden <= 0:
		return errors.New("core: Hidden must be positive")
	case c.PoolShort <= 0 || c.PoolMed <= 0 || c.PoolLong <= 0:
		return errors.New("core: pooling factors must be positive")
	case c.Window <= 0:
		return errors.New("core: Window must be positive")
	case !c.UseShort && !c.UseMed && !c.UseLong:
		return errors.New("core: at least one timescale must be enabled")
	case c.LearningRate <= 0:
		return errors.New("core: LearningRate must be positive")
	}
	return nil
}

// branch indices.
const (
	brShort = iota
	brMed
	brLong
	numBranches
)

// Model is the multi-timescale LSTM with a dense combining head emitting
// instantaneous attack probabilities λ_t through a softplus link.
type Model struct {
	Cfg   Config
	lstms [numBranches]*nn.LSTM // nil when the branch is disabled
	head  *nn.Dense
	// q32 caches the quantized float32 serving form (precision.go); Fit
	// invalidates it when the weights change.
	q32mu sync.Mutex
	q32   *Quantized32
}

// New builds a model with freshly initialized weights.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg}
	mk := func(use bool) *nn.LSTM {
		if !use {
			return nil
		}
		return nn.NewLSTM(cfg.NumFeatures, cfg.Hidden, rng)
	}
	m.lstms[brShort] = mk(cfg.UseShort)
	m.lstms[brMed] = mk(cfg.UseMed)
	m.lstms[brLong] = mk(cfg.UseLong)
	m.head = nn.NewDense(cfg.Hidden*m.activeBranches(), 1, rng)
	return m, nil
}

func (m *Model) activeBranches() int {
	n := 0
	for _, l := range m.lstms {
		if l != nil {
			n++
		}
	}
	return n
}

// Params returns all trainable parameters.
func (m *Model) Params() []nn.Param {
	var out []nn.Param
	names := [numBranches]string{"short", "med", "long"}
	for b, l := range m.lstms {
		if l == nil {
			continue
		}
		for _, p := range l.Params() {
			p.Name = names[b] + "." + p.Name
			out = append(out, p)
		}
	}
	out = append(out, m.head.Params()...)
	return out
}

// ZeroGrad clears all gradient accumulators.
func (m *Model) ZeroGrad() {
	for _, l := range m.lstms {
		if l != nil {
			l.ZeroGrad()
		}
	}
	m.head.ZeroGrad()
}

// Replica returns a model sharing m's weights with independent gradient
// buffers, for parallel gradient computation.
func (m *Model) Replica() *Model {
	r := &Model{Cfg: m.Cfg, head: m.head.ShareWeights()}
	for b, l := range m.lstms {
		if l != nil {
			r.lstms[b] = l.ShareWeights()
		}
	}
	return r
}

// MergeGradsInto adds the replica's gradients into dst and zeroes them.
func (m *Model) MergeGradsInto(dst *Model) {
	for b, l := range m.lstms {
		if l != nil {
			l.MergeGradsInto(dst.lstms[b])
		}
	}
	m.head.MergeGradsInto(dst.head)
}

// poolFactor returns the pooling factor for a branch.
func (m *Model) poolFactor(b int) int {
	switch b {
	case brShort:
		return m.Cfg.PoolShort
	case brMed:
		return m.Cfg.PoolMed
	default:
		return m.Cfg.PoolLong
	}
}

// branchIdx maps a pooled-short detection step t to the index of the last
// branch-b LSTM state that contains no input from after t — i.e. the last
// *completed* pooling block. Returns -1 when no block has completed yet
// (the branch contributes zeros, exactly like the warming-up Stream).
func (m *Model) branchIdx(b, t, tapeLen int) int {
	// Last base-resolution step covered by pooled-short step t.
	bt := t*m.Cfg.PoolShort + m.Cfg.PoolShort - 1
	idx := (bt+1)/m.poolFactor(b) - 1
	if idx >= tapeLen {
		idx = tapeLen - 1
	}
	return idx
}

// fwd caches one forward pass.
type fwd struct {
	T       int // base sequence length
	pooled  [numBranches][]nn.Vec
	tapes   [numBranches]*nn.LSTMTape
	detIdx  []int    // pooled-short indices of the detection steps
	concats []nn.Vec // head inputs per detection step
	zs      []float64
	Hazards []float64
}

// Forward runs the model over a base-resolution feature sequence xs
// (length T ≥ Window·PoolShort recommended) and returns per-detection-step
// hazards λ.
func (m *Model) Forward(xs []nn.Vec) (*fwd, error) {
	if len(xs) == 0 {
		return nil, errors.New("core: empty input sequence")
	}
	if len(xs[0]) != m.Cfg.NumFeatures {
		return nil, fmt.Errorf("core: input width %d, model expects %d", len(xs[0]), m.Cfg.NumFeatures)
	}
	f := &fwd{T: len(xs)}
	for b, l := range m.lstms {
		if l == nil {
			continue
		}
		f.pooled[b] = nn.MeanPool(xs, m.poolFactor(b))
		f.tapes[b] = l.Forward(f.pooled[b])
	}
	// Detection steps: the last Window pooled-short steps.
	nShort := (len(xs) + m.Cfg.PoolShort - 1) / m.Cfg.PoolShort
	w := m.Cfg.Window
	if w > nShort {
		w = nShort
	}
	f.detIdx = make([]int, w)
	f.concats = make([]nn.Vec, w)
	f.zs = make([]float64, w)
	f.Hazards = make([]float64, w)
	for i := 0; i < w; i++ {
		t := nShort - w + i
		f.detIdx[i] = t
		concat := nn.NewVec(m.Cfg.Hidden * m.activeBranches())
		off := 0
		for b, l := range m.lstms {
			if l == nil {
				continue
			}
			idx := m.branchIdx(b, t, len(f.tapes[b].H))
			if idx >= 0 {
				copy(concat[off:off+m.Cfg.Hidden], f.tapes[b].H[idx])
			}
			off += m.Cfg.Hidden
		}
		f.concats[i] = concat
		z := m.head.Forward(concat)[0]
		f.zs[i] = z
		f.Hazards[i] = nn.Softplus(z)
	}
	return f, nil
}

// Survival returns the cumulative no-attack probabilities S_t over the
// detection window for the given input sequence.
func (m *Model) Survival(xs []nn.Vec) ([]float64, error) {
	f, err := m.Forward(xs)
	if err != nil {
		return nil, err
	}
	return survival.Survival(f.Hazards), nil
}

// Example is one training series: base-resolution (already normalized)
// features plus its label. AttackStep indexes the ground-truth detection
// within the detection window [0, Window); it is ignored for non-attack
// examples.
type Example struct {
	X          [][]float64
	Attack     bool
	AttackStep int
}

// lossGrad computes the loss for the example and the per-detection-step
// hazard gradients dL/dλ_t (zero past the label time for the SAFE loss).
func (m *Model) lossGrad(f *fwd, ex *Example) (float64, []float64) {
	dHaz := make([]float64, len(f.Hazards))
	loss := m.lossGradInto(f.Hazards, ex, dHaz)
	return loss, dHaz
}

// lossGradInto is lossGrad over a caller-owned gradient buffer (len ==
// len(hazards), fully overwritten), allocating nothing on the SAFE path —
// the form the batched trainer's steady-state loop uses.
func (m *Model) lossGradInto(hazards []float64, ex *Example, dHaz []float64) float64 {
	n := len(hazards)
	dHaz = dHaz[:n]
	for t := range dHaz {
		dHaz[t] = 0
	}
	tEnd := n - 1
	if ex.Attack {
		tEnd = ex.AttackStep
		if tEnd >= n {
			tEnd = n - 1
		}
		if tEnd < 0 {
			tEnd = 0
		}
	}
	if m.Cfg.UseSurvival {
		loss, g := survival.Loss(hazards[:tEnd+1], ex.Attack)
		for t := 0; t <= tEnd; t++ {
			dHaz[t] = g
		}
		return loss
	}
	attackStep := -1
	if ex.Attack {
		attackStep = tEnd
	}
	return survival.BCELossInto(hazards, attackStep, dHaz)
}

// backward propagates hazard gradients through the head and the LSTMs,
// accumulating weight gradients. It returns the per-branch pooled input
// gradients (used by saliency; training callers ignore them).
func (m *Model) backward(f *fwd, dHaz []float64, needInputGrads bool) [numBranches][]nn.Vec {
	dH := [numBranches][]nn.Vec{}
	for b, l := range m.lstms {
		if l == nil {
			continue
		}
		dH[b] = make([]nn.Vec, len(f.tapes[b].H))
	}
	for i, g := range dHaz {
		if g == 0 {
			continue
		}
		dz := g * nn.SoftplusPrime(f.zs[i])
		dConcat := m.head.Backward(f.concats[i], nn.Vec{dz})
		off := 0
		for b, l := range m.lstms {
			if l == nil {
				continue
			}
			idx := m.branchIdx(b, f.detIdx[i], len(dH[b]))
			if idx >= 0 {
				if dH[b][idx] == nil {
					dH[b][idx] = nn.NewVec(m.Cfg.Hidden)
				}
				dH[b][idx].Add(dConcat[off : off+m.Cfg.Hidden])
			}
			off += m.Cfg.Hidden
		}
	}
	var dPooled [numBranches][]nn.Vec
	for b, l := range m.lstms {
		if l == nil {
			continue
		}
		dxs := l.Backward(f.tapes[b], dH[b])
		if needInputGrads {
			dPooled[b] = dxs
		}
	}
	return dPooled
}

// TrainExample accumulates gradients for one example and returns its loss.
func (m *Model) TrainExample(ex *Example) (float64, error) {
	xs := toVecs(ex.X)
	f, err := m.Forward(xs)
	if err != nil {
		return 0, err
	}
	loss, dHaz := m.lossGrad(f, ex)
	m.backward(f, dHaz, false)
	return loss, nil
}

// TrainOptions and Fit live in train.go.

// Save writes the model (config + weights) to w.
func (m *Model) Save(w io.Writer) error {
	hdr, err := json.Marshal(m.Cfg)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%d\n", len(hdr)); err != nil {
		return err
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	return nn.WriteParams(w, m.Params())
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var n int
	if _, err := fmt.Fscanf(r, "%d\n", &n); err != nil {
		return nil, fmt.Errorf("core: reading header length: %w", err)
	}
	if n <= 0 || n > 1<<16 {
		return nil, fmt.Errorf("core: implausible header length %d", n)
	}
	hdr := make([]byte, n)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(hdr, &cfg); err != nil {
		return nil, fmt.Errorf("core: decoding config: %w", err)
	}
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := nn.ReadParams(r, m.Params()); err != nil {
		return nil, err
	}
	return m, nil
}

// toVecs views a [][]float64 as []nn.Vec without copying.
func toVecs(x [][]float64) []nn.Vec {
	out := make([]nn.Vec, len(x))
	for i := range x {
		out[i] = nn.Vec(x[i])
	}
	return out
}
