package core

// Batched training. Fit buckets each shuffled mini-batch into lanes of
// equal sequence length, splits every lane into near-even chunks, and runs
// each chunk as one batched BPTT pass (forward and backward over B
// sequences at once through the register-blocked nn kernels). All per-chunk
// storage lives in grow-only scratch owned by a reusable fitter, so a
// steady-state epoch — the same lane shapes recurring — allocates nothing.
//
// Determinism contract: chunks are assigned to workers round-robin
// (chunk j → worker j%workers), replica gradients are merged and losses
// summed in worker index order, and every batched kernel preserves the
// scalar per-element summation order. Two Fit runs with the same
// (examples, Seed, Workers, BatchSize) therefore produce byte-identical
// weights, and a batch-1 chunk is bit-identical to TrainExample.

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"github.com/xatu-go/xatu/internal/nn"
)

// TrainOptions tunes Fit.
type TrainOptions struct {
	Epochs    int
	BatchSize int
	// Workers is the number of parallel gradient replicas; 0 means
	// GOMAXPROCS. It is clamped to both BatchSize and len(examples), so no
	// replica is ever built that could only sit idle. Gradient reduction
	// runs in a fixed worker order, so training is bit-reproducible for a
	// given (Seed, Workers, BatchSize); changing Workers changes how lanes
	// are chunked and hence the floating-point summation order (not the
	// learning outcome).
	Workers int
	// Seed drives example shuffling and is used as-is: 0 is a valid fixed
	// seed, never replaced by a time-based one, so Fit is reproducible by
	// default — two runs with identical options and examples produce
	// byte-identical models.
	Seed int64
	// Progress, when non-nil, receives the mean loss after each epoch.
	Progress func(epoch int, meanLoss float64)
}

// trainScratch is one replica's reusable workspace for batched training.
// Every buffer is grow-only: reused when large enough, reallocated only
// when a bigger shape appears, so steady-state epochs run allocation-free.
type trainScratch struct {
	tapes   [numBranches]nn.BatchTape
	dH      [numBranches]batchSeq // per-step dL/dH injections per branch
	touched [numBranches][]bool   // which steps received an injection
	bwd     nn.BatchGradScratch
	concats batchSeq  // head inputs, one B×(hidden·branches) batch per step
	zB      nn.Batch  // head outputs, B×1
	dzB     nn.Batch  // head output gradients, B×1
	dcc     nn.Batch  // head input gradients, B×(hidden·branches)
	zs      []float64 // pre-link head outputs, example-major [e*w+i]
	haz     []float64 // hazards, example-major
	dHaz    []float64 // dL/dλ, example-major
}

// batchSeq is a grow-only sequence of Batches. get never shrinks the
// underlying slice, so Batch backing arrays beyond the requested length
// keep their storage for later, larger requests.
type batchSeq struct{ bs []nn.Batch }

func (s *batchSeq) get(n, rows, cols int) []nn.Batch {
	for len(s.bs) < n {
		s.bs = append(s.bs, nn.Batch{})
	}
	out := s.bs[:n]
	for i := range out {
		out[i].Resize(rows, cols)
	}
	return out
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// packPooled fills tp.Xs with the k-pooled inputs of the selected
// examples: row e of step p is the mean of example idxs[e]'s base steps in
// pooling block p, computed with exactly the arithmetic of nn.MeanPool
// (sequential adds, one scale by the reciprocal; a plain copy when k ≤ 1),
// so batched pooling is bit-identical to the scalar path.
func packPooled(tp *nn.BatchTape, examples []Example, idxs []int, k, T int) {
	for p := 0; p < tp.T; p++ {
		xb := &tp.Xs[p]
		lo := p * k
		hi := lo + k
		if hi > T {
			hi = T
		}
		for e, ei := range idxs {
			row := xb.Row(e)
			x := examples[ei].X
			if k <= 1 {
				copy(row, x[p])
			} else {
				row.Zero()
				for t := lo; t < hi; t++ {
					row.Add(nn.Vec(x[t]))
				}
				row.Scale(1 / float64(hi-lo))
			}
		}
	}
}

// trainChunk runs one batched forward/backward pass over the same-length
// examples selected by idxs, accumulating gradients into m (normally a
// replica) and returning their summed loss. It is the batched analogue of
// calling TrainExample once per example: at len(idxs)==1 the accumulated
// gradients are bit-identical to TrainExample's.
func (m *Model) trainChunk(examples []Example, idxs []int, sc *trainScratch) (float64, error) {
	B := len(idxs)
	T := len(examples[idxs[0]].X)
	for _, ei := range idxs {
		x := examples[ei].X
		if len(x) == 0 {
			return 0, errors.New("core: empty input sequence")
		}
		for t := range x {
			if len(x[t]) != m.Cfg.NumFeatures {
				return 0, fmt.Errorf("core: input width %d, model expects %d", len(x[t]), m.Cfg.NumFeatures)
			}
		}
	}
	hd := m.Cfg.Hidden
	act := m.activeBranches()

	// Forward every branch over the packed pooled inputs.
	for b, l := range m.lstms {
		if l == nil {
			continue
		}
		k := m.poolFactor(b)
		tp := &sc.tapes[b]
		tp.Reset(l, B, (T+k-1)/k)
		packPooled(tp, examples, idxs, k, T)
		tp.BuildSparse() // sparse input projection when the packed rows are sparse enough
		l.ForwardBatch(tp)
	}

	// Head forward over the detection window: the last w pooled-short steps.
	nShort := (T + m.Cfg.PoolShort - 1) / m.Cfg.PoolShort
	w := m.Cfg.Window
	if w > nShort {
		w = nShort
	}
	concats := sc.concats.get(w, B, hd*act)
	sc.zs = growFloats(sc.zs, B*w)
	sc.haz = growFloats(sc.haz, B*w)
	sc.dHaz = growFloats(sc.dHaz, B*w)
	for i := 0; i < w; i++ {
		t := nShort - w + i
		cb := &concats[i]
		off := 0
		for b, l := range m.lstms {
			if l == nil {
				continue
			}
			idx := m.branchIdx(b, t, sc.tapes[b].T)
			for e := 0; e < B; e++ {
				dst := cb.Row(e)[off : off+hd]
				if idx >= 0 {
					copy(dst, sc.tapes[b].H[idx].Row(e))
				} else {
					dst.Zero() // branch still warming up: zero contribution
				}
			}
			off += hd
		}
		m.head.ForwardBatch(cb, &sc.zB)
		for e := 0; e < B; e++ {
			z := sc.zB.Data[e]
			sc.zs[e*w+i] = z
			sc.haz[e*w+i] = nn.Softplus(z)
		}
	}

	var loss float64
	for e, ei := range idxs {
		loss += m.lossGradInto(sc.haz[e*w:(e+1)*w], &examples[ei], sc.dHaz[e*w:(e+1)*w])
	}

	// Head backward per detection step, scattering dL/dH into the branch
	// injection buffers. dH batches are zeroed lazily on first touch;
	// untouched steps are never read by BackwardBatch.
	for b, l := range m.lstms {
		if l == nil {
			continue
		}
		Tb := sc.tapes[b].T
		sc.dH[b].get(Tb, B, hd)
		sc.touched[b] = growBools(sc.touched[b], Tb)
	}
	for i := 0; i < w; i++ {
		t := nShort - w + i
		any := false
		sc.dzB.Resize(B, 1)
		for e := 0; e < B; e++ {
			g := sc.dHaz[e*w+i]
			if g == 0 {
				sc.dzB.Data[e] = 0
				continue
			}
			any = true
			sc.dzB.Data[e] = g * nn.SoftplusPrime(sc.zs[e*w+i])
		}
		if !any {
			continue // mirrors the scalar backward skipping g == 0 steps
		}
		m.head.BackwardBatch(&concats[i], &sc.dzB, &sc.dcc)
		off := 0
		for b, l := range m.lstms {
			if l == nil {
				continue
			}
			idx := m.branchIdx(b, t, sc.tapes[b].T)
			if idx >= 0 {
				dhB := &sc.dH[b].bs[idx]
				if !sc.touched[b][idx] {
					sc.touched[b][idx] = true
					for j := range dhB.Data {
						dhB.Data[j] = 0
					}
				}
				for e := 0; e < B; e++ {
					dhB.Row(e).Add(sc.dcc.Row(e)[off : off+hd])
				}
			}
			off += hd
		}
	}

	for b, l := range m.lstms {
		if l == nil {
			continue
		}
		l.BackwardBatch(&sc.tapes[b], sc.dH[b].bs, sc.touched[b], &sc.bwd)
	}
	return loss, nil
}

// lane is the set of batch positions sharing one sequence length.
type lane struct {
	T    int
	idxs []int
}

// laneSet buckets a mini-batch of example indices by sequence length,
// reusing both the lane slice and each lane's index storage across batches.
// Lanes appear in first-appearance order within the shuffled batch, which
// is itself seed-deterministic.
type laneSet struct {
	lanes []lane
	n     int
}

func (ls *laneSet) reset() {
	for i := 0; i < ls.n; i++ {
		ls.lanes[i].idxs = ls.lanes[i].idxs[:0]
	}
	ls.n = 0
}

func (ls *laneSet) add(T, idx int) {
	for i := 0; i < ls.n; i++ {
		if ls.lanes[i].T == T {
			ls.lanes[i].idxs = append(ls.lanes[i].idxs, idx)
			return
		}
	}
	if ls.n == len(ls.lanes) {
		ls.lanes = append(ls.lanes, lane{})
	}
	l := &ls.lanes[ls.n]
	ls.n++
	l.T = T
	l.idxs = append(l.idxs[:0], idx)
}

// fitter owns every reusable piece of one Fit call: the optimizer, the
// shuffle state, the gradient replicas and their scratch. Constructing it
// once and calling runEpoch repeatedly is what lets steady-state epochs run
// without allocation (the alloc-pin test drives it directly).
type fitter struct {
	m        *Model
	opt      *nn.Adam
	rng      *rand.Rand
	epochs   int
	batch    int
	workers  int
	progress func(epoch int, meanLoss float64)

	order    []int
	replicas []*Model
	scratch  []*trainScratch
	lanes    laneSet
	chunks   [][]int
	losses   []float64
	errs     []error
}

func (m *Model) newFitter(examples []Example, opts TrainOptions) *fitter {
	if opts.Epochs <= 0 {
		opts.Epochs = 5
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 16
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.BatchSize {
		workers = opts.BatchSize
	}
	if workers > len(examples) {
		workers = len(examples)
	}
	f := &fitter{
		m:        m,
		opt:      nn.NewAdam(m.Cfg.LearningRate, m.Params()),
		rng:      rand.New(rand.NewSource(opts.Seed)),
		epochs:   opts.Epochs,
		batch:    opts.BatchSize,
		workers:  workers,
		progress: opts.Progress,
		order:    make([]int, len(examples)),
		replicas: make([]*Model, workers),
		scratch:  make([]*trainScratch, workers),
		losses:   make([]float64, workers),
		errs:     make([]error, workers),
	}
	for i := range f.order {
		f.order[i] = i
	}
	for i := range f.replicas {
		f.replicas[i] = m.Replica()
		f.scratch[i] = &trainScratch{}
	}
	return f
}

// runWorker processes every chunk assigned to worker wkr (round-robin by
// chunk index) on its replica, recording the summed loss or first error.
func (f *fitter) runWorker(examples []Example, wkr int) {
	r, sc := f.replicas[wkr], f.scratch[wkr]
	var sum float64
	for j := wkr; j < len(f.chunks); j += f.workers {
		l, err := r.trainChunk(examples, f.chunks[j], sc)
		if err != nil {
			f.errs[wkr] = err
			return
		}
		sum += l
	}
	f.losses[wkr] = sum
}

// runEpoch shuffles the example order and makes one full pass, stepping the
// optimizer once per mini-batch. It returns the epoch's mean loss. On a
// worker error it zeroes every replica's gradients and returns without
// merging, so the model's weights are exactly as the last completed
// optimizer step left them.
func (f *fitter) runEpoch(examples []Example) (float64, error) {
	f.rng.Shuffle(len(f.order), func(i, j int) { f.order[i], f.order[j] = f.order[j], f.order[i] })
	var epochLoss float64
	for lo := 0; lo < len(f.order); lo += f.batch {
		hi := lo + f.batch
		if hi > len(f.order) {
			hi = len(f.order)
		}
		batch := f.order[lo:hi]

		// Bucket by sequence length, then split each lane into chunks of at
		// most ceil(len(batch)/workers) so a uniform-length batch yields
		// exactly `workers` near-even chunks.
		f.lanes.reset()
		for _, idx := range batch {
			f.lanes.add(len(examples[idx].X), idx)
		}
		target := (len(batch) + f.workers - 1) / f.workers
		f.chunks = f.chunks[:0]
		for i := 0; i < f.lanes.n; i++ {
			idxs := f.lanes.lanes[i].idxs
			for clo := 0; clo < len(idxs); clo += target {
				chi := clo + target
				if chi > len(idxs) {
					chi = len(idxs)
				}
				f.chunks = append(f.chunks, idxs[clo:chi])
			}
		}

		if f.workers == 1 {
			// Inline: identical chunk order to the goroutine path at
			// workers==1, without the spawn cost (keeps the step 0-alloc).
			f.runWorker(examples, 0)
		} else {
			var wg sync.WaitGroup
			for wkr := 0; wkr < f.workers; wkr++ {
				wg.Add(1)
				go func(wkr int) {
					defer wg.Done()
					f.runWorker(examples, wkr)
				}(wkr)
			}
			wg.Wait()
		}

		var trainErr error
		for wkr := 0; wkr < f.workers; wkr++ {
			if f.errs[wkr] != nil && trainErr == nil {
				trainErr = f.errs[wkr]
			}
		}
		if trainErr != nil {
			// Do NOT merge: a failed batch must leave the model untouched.
			// Partial gradients may sit in any replica; drop them all.
			for wkr := range f.errs {
				f.errs[wkr] = nil
				f.losses[wkr] = 0
			}
			for _, r := range f.replicas {
				r.ZeroGrad()
			}
			return 0, trainErr
		}
		// Fixed reduction order — losses sum and replicas merge in worker
		// index order, so the floating-point results are identical run to
		// run for a given (Seed, Workers, BatchSize).
		for wkr := 0; wkr < f.workers; wkr++ {
			epochLoss += f.losses[wkr]
			f.losses[wkr] = 0
			f.replicas[wkr].MergeGradsInto(f.m)
		}
		f.opt.Step(1 / float64(len(batch)))
	}
	return epochLoss / float64(len(examples)), nil
}

// Fit trains the model with Adam over the examples using the batched BPTT
// path. It returns the mean loss of the final epoch. On error the model's
// weights are exactly as the last completed optimizer step left them — no
// partial gradients from the failing batch are applied.
func (m *Model) Fit(examples []Example, opts TrainOptions) (float64, error) {
	if len(examples) == 0 {
		return 0, errors.New("core: no training examples")
	}
	f := m.newFitter(examples, opts)
	var finalLoss float64
	for epoch := 0; epoch < f.epochs; epoch++ {
		l, err := f.runEpoch(examples)
		if err != nil {
			if f.opt.StepCount() > 0 {
				// Earlier batches already moved the weights this Fit; any
				// cached float32 quantization is stale.
				m.invalidateQuantized()
			}
			return 0, err
		}
		finalLoss = l
		if f.progress != nil {
			f.progress(epoch, finalLoss)
		}
	}
	// Weights changed: any cached float32 quantization is stale.
	m.invalidateQuantized()
	return finalLoss, nil
}
