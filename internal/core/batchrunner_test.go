package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// newParityStreams builds n streams over m plus n independent reference
// streams over the same model, so batched and sequential paths can be
// compared stream-for-stream.
func newParityStreams(m *Model, n int) (batch, ref []*Stream) {
	batch = make([]*Stream, n)
	ref = make([]*Stream, n)
	for i := range batch {
		batch[i] = NewStream(m)
		ref[i] = NewStream(m)
	}
	return batch, ref
}

func parityInputs(rng *rand.Rand, n, feats int) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = randInput(rng, feats)
	}
	return xs
}

// TestBatchRunnerMatchesSequentialBitwise drives identical random streams
// through sequential Stream.Push and through the BatchRunner at batch
// sizes 1, 3 and 64, requiring every survival output to be bit-identical
// — not merely close. The run length crosses every pooling boundary and
// wraps the hazard ring several times.
func TestBatchRunnerMatchesSequentialBitwise(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, B := range []int{1, 3, 64} {
		rng := rand.New(rand.NewSource(int64(100 + B)))
		batch, ref := newParityStreams(m, B)
		r := NewBatchRunner(m)
		out := make([]float64, B)
		for step := 0; step < 60; step++ {
			xs := parityInputs(rng, B, m.Cfg.NumFeatures)
			r.Push(batch, xs, out)
			for i := range ref {
				want := ref[i].Push(xs[i])
				if out[i] != want {
					t.Fatalf("B=%d step %d stream %d: batched survival %v != sequential %v",
						B, step, i, out[i], want)
				}
			}
		}
		// Final states must be indistinguishable, not just the outputs:
		// checkpoints serialize every bit of online state.
		for i := range ref {
			var a, b bytes.Buffer
			if err := batch[i].Checkpoint(&a); err != nil {
				t.Fatal(err)
			}
			if err := ref[i].Checkpoint(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("B=%d stream %d: batched and sequential checkpoints differ", B, i)
			}
		}
	}
}

// TestBatchRunnerJoinLeaveMidRun exercises the serving reality the engine
// creates: streams join the batch mid-run (new channels appear), leave it
// (channels reset or end mitigation), and take sequential steps (missing
// telemetry) between batch calls. Every stream must still track its
// sequential reference bit-for-bit.
func TestBatchRunnerJoinLeaveMidRun(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	const N = 7
	rng := rand.New(rand.NewSource(42))
	batch, ref := newParityStreams(m, N)
	r := NewBatchRunner(m)
	// active[i] reports whether stream i participates in this phase's
	// batch; the phases grow, shrink and shuffle membership.
	phases := [][]int{
		{0, 1},             // start small
		{0, 1, 2, 3, 4},    // three streams join mid-run
		{2, 4},             // most leave
		{0, 1, 2, 3, 4, 5}, // rejoin at unaligned pooling offsets, 5 joins cold
		{6},                // a fresh stream alone (batch of one)
		{0, 1, 2, 3, 4, 5, 6},
	}
	members := make([]*Stream, 0, N)
	xs := make([][]float64, 0, N)
	for p, phase := range phases {
		for step := 0; step < 11; step++ {
			members = members[:0]
			xs = xs[:0]
			for _, i := range phase {
				members = append(members, batch[i])
				xs = append(xs, randInput(rng, m.Cfg.NumFeatures))
			}
			out := r.Push(members, xs, nil)
			for n, i := range phase {
				if want := ref[i].Push(xs[n]); out[n] != want {
					t.Fatalf("phase %d step %d stream %d: %v != %v", p, step, i, out[n], want)
				}
			}
			// Streams outside the batch advance sequentially with missing
			// steps, as the engine does for customers with no telemetry.
			if step%3 == 1 {
				for i := 0; i < N; i++ {
					in := false
					for _, j := range phase {
						if i == j {
							in = true
							break
						}
					}
					if !in {
						a := batch[i].PushMissing(MissingCarry)
						b := ref[i].PushMissing(MissingCarry)
						if a != b {
							t.Fatalf("phase %d stream %d: missing-step survival diverged", p, i)
						}
					}
				}
			}
		}
	}
}

// TestBatchRunnerCheckpointRoundTrip checkpoints a stream mid-batch-run —
// at an unaligned pooling offset, with the ring mid-epoch — restores it,
// and continues BOTH through the batched path. The restored stream must
// produce bit-identical survival values and a byte-identical final
// checkpoint, proving the rolling hazard sums rebuilt from the XSC1 ring
// match the live incrementally-maintained ones.
func TestBatchRunnerCheckpointRoundTrip(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	streams, _ := newParityStreams(m, 5)
	r := NewBatchRunner(m)
	out := make([]float64, 5)
	for step := 0; step < 21; step++ { // 21: bufN=1 in both pooled branches, ring at 21%8=5
		r.Push(streams, parityInputs(rng, 5, m.Cfg.NumFeatures), out)
	}
	var ck bytes.Buffer
	if err := streams[2].Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStream(bytes.NewReader(ck.Bytes()), m)
	if err != nil {
		t.Fatal(err)
	}
	// Continue the original inside the batch and the restored stream in a
	// second runner, feeding stream 2's inputs to both.
	r2 := NewBatchRunner(m)
	rest := []*Stream{restored}
	restOut := make([]float64, 1)
	for step := 0; step < 40; step++ {
		xs := parityInputs(rng, 5, m.Cfg.NumFeatures)
		r.Push(streams, xs, out)
		r2.Push(rest, xs[2:3], restOut)
		if out[2] != restOut[0] {
			t.Fatalf("step %d: original %v != restored %v", step, out[2], restOut[0])
		}
	}
	var a, b bytes.Buffer
	if err := streams[2].Checkpoint(&a); err != nil {
		t.Fatal(err)
	}
	if err := restored.Checkpoint(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("post-continuation checkpoints differ")
	}
}

// TestBatchRunnerRejectsForeignStream pins the model-identity guard.
func TestBatchRunnerRejectsForeignStream(t *testing.T) {
	m1, _ := New(tinyConfig())
	m2, _ := New(tinyConfig())
	r := NewBatchRunner(m1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on stream over a different model")
		}
	}()
	r.Push([]*Stream{NewStream(m2)}, [][]float64{make([]float64, 4)}, nil)
}

// TestStreamPushAllocsZero pins the sequential hot path at zero
// allocations per step: state, pooling buffers, kernel scratch and the
// head output are all stream-owned.
func TestStreamPushAllocsZero(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(m)
	x := make([]float64, m.Cfg.NumFeatures)
	x[0] = 0.5
	for i := 0; i < 30; i++ { // warm scratch across all pooling boundaries
		s.Push(x)
	}
	if allocs := testing.AllocsPerRun(100, func() { s.Push(x) }); allocs != 0 {
		t.Fatalf("Stream.Push allocates %v/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { s.PushMissing(MissingCarry) }); allocs != 0 {
		t.Fatalf("Stream.PushMissing allocates %v/op, want 0", allocs)
	}
}

// TestBatchRunnerPushAllocsZero pins the batched path: with a caller-owned
// output slice, a steady-state batch step allocates nothing.
func TestBatchRunnerPushAllocsZero(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	streams, _ := newParityStreams(m, 8)
	r := NewBatchRunner(m)
	xs := make([][]float64, 8)
	for i := range xs {
		xs[i] = make([]float64, m.Cfg.NumFeatures)
		xs[i][0] = float64(i) * 0.1
	}
	out := make([]float64, 8)
	for i := 0; i < 30; i++ {
		r.Push(streams, xs, out)
	}
	if allocs := testing.AllocsPerRun(100, func() { r.Push(streams, xs, out) }); allocs != 0 {
		t.Fatalf("BatchRunner.Push allocates %v/op, want 0", allocs)
	}
}
