package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/xatu-go/xatu/internal/nn"
)

// Stream checkpointing. A restarted detector that rebuilds its Streams
// from scratch is blind for a full Window of steps (no alerts can fire
// while warming up); checkpointing the complete online state — LSTM hidden
// and cell vectors, pooling buffers, the hazard ring, and the last real
// input — lets a restart resume bitwise-identically to an uninterrupted
// run.
//
// Format (all little-endian; see DESIGN.md §"Fault model" for versioning):
//
//	magic "XSC1" | uint16 version
//	int32 numFeatures, hidden, window, poolShort, poolMed, poolLong
//	uint8 branch mask (bit b set when branch b is enabled)
//	per enabled branch: vec h | vec c | vec bufSum | int32 bufN | uint8 seen
//	float64[window] hazards | int32 hazPos | int32 hazCount | int32 steps
//	vec lastX
//
// where "vec" is uint8 present flag + int32 length + float64 payload.
// Floats round-trip through math.Float64bits, so restore is bit-exact.

var streamCkptMagic = [4]byte{'X', 'S', 'C', '1'}

const streamCkptVersion = 1

// Checkpoint serializes the stream's full online state to w.
func (s *Stream) Checkpoint(w io.Writer) error {
	if _, err := w.Write(streamCkptMagic[:]); err != nil {
		return err
	}
	cw := &ckptWriter{w: w}
	cw.u16(streamCkptVersion)
	cfg := s.m.Cfg
	for _, v := range []int{cfg.NumFeatures, cfg.Hidden, cfg.Window, cfg.PoolShort, cfg.PoolMed, cfg.PoolLong} {
		cw.i32(v)
	}
	var mask uint8
	for b, l := range s.m.lstms {
		if l != nil {
			mask |= 1 << b
		}
	}
	cw.u8(mask)
	for b, l := range s.m.lstms {
		if l == nil {
			continue
		}
		h, c, buf := s.h[b], s.c[b], s.bufSum[b]
		if s.prec == PrecisionFloat32 {
			// Widening float32 state to the checkpoint's float64 vectors is
			// exact, so the XSC1 format (and every consumer of it) is
			// precision-agnostic; restore narrows back losslessly.
			h = s.h32[b].Widen(nil)
			c = s.c32[b].Widen(nil)
			buf = s.bufSum32[b].Widen(nil)
		}
		cw.vec(h)
		cw.vec(c)
		cw.vec(buf)
		cw.i32(s.bufN[b])
		cw.bool(s.seen[b])
	}
	for _, h := range s.hazards {
		cw.f64(h)
	}
	cw.i32(s.hazPos)
	cw.i32(s.hazCount)
	cw.i32(s.steps)
	cw.vec(s.lastX)
	return cw.err
}

// RestoreStream reads a checkpoint written by Checkpoint and returns a
// float64 stream over m, which must have the same architecture (feature
// width, hidden size, window, pooling, enabled branches) as the
// checkpointing model. The restored stream continues bitwise-identically.
func RestoreStream(r io.Reader, m *Model) (*Stream, error) {
	return RestoreStreamPrec(r, m, PrecisionFloat64, nil)
}

// RestoreStreamPrec is RestoreStream with an explicit serving precision
// and, for float32, the lane arena the stream's state is carved from. A
// float32→float32 round-trip is exact (the checkpoint stores widened
// float32 values); restoring a float64 checkpoint into a float32 stream
// narrows the state, which stays within the precision parity tolerance.
func RestoreStreamPrec(r io.Reader, m *Model, prec Precision, a *Arena) (*Stream, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading checkpoint magic: %w", err)
	}
	if magic != streamCkptMagic {
		return nil, fmt.Errorf("core: not a stream checkpoint (magic %q)", magic)
	}
	cr := &ckptReader{r: r}
	if v := cr.u16(); cr.err == nil && v != streamCkptVersion {
		return nil, fmt.Errorf("core: unsupported stream checkpoint version %d", v)
	}
	cfg := m.Cfg
	want := []struct {
		name string
		val  int
	}{
		{"NumFeatures", cfg.NumFeatures}, {"Hidden", cfg.Hidden}, {"Window", cfg.Window},
		{"PoolShort", cfg.PoolShort}, {"PoolMed", cfg.PoolMed}, {"PoolLong", cfg.PoolLong},
	}
	for _, f := range want {
		got := cr.i32()
		if cr.err != nil {
			return nil, cr.err
		}
		if got != f.val {
			return nil, fmt.Errorf("core: checkpoint %s=%d, model has %d", f.name, got, f.val)
		}
	}
	var mask uint8
	for b, l := range m.lstms {
		if l != nil {
			mask |= 1 << b
		}
	}
	if got := cr.u8(); cr.err == nil && got != mask {
		return nil, fmt.Errorf("core: checkpoint branch mask %03b, model has %03b", got, mask)
	}
	s, err := NewStreamPrec(m, prec, a)
	if err != nil {
		return nil, err
	}
	// Vectors are always present in checkpoints taken since streams began
	// preallocating their state; absent vectors (older checkpoints, or a
	// never-pushed lastX) mean the zero state NewStream already installed.
	for b, l := range m.lstms {
		if l == nil {
			continue
		}
		if h := cr.vec(cfg.Hidden); h != nil {
			if prec == PrecisionFloat32 {
				nn.Narrow32(h, s.h32[b])
			} else {
				s.h[b] = h
			}
		}
		if c := cr.vec(cfg.Hidden); c != nil {
			if prec == PrecisionFloat32 {
				nn.Narrow32(c, s.c32[b])
			} else {
				s.c[b] = c
			}
		}
		if buf := cr.vec(cfg.NumFeatures); buf != nil {
			if prec == PrecisionFloat32 {
				nn.Narrow32(buf, s.bufSum32[b])
			} else {
				s.bufSum[b] = buf
			}
		}
		s.bufN[b] = cr.i32()
		s.seen[b] = cr.bool()
	}
	for i := range s.hazards {
		s.hazards[i] = cr.f64()
	}
	s.hazPos = cr.i32()
	s.hazCount = cr.i32()
	s.steps = cr.i32()
	if lx := cr.vec(cfg.NumFeatures); lx != nil {
		s.lastX = lx
	}
	if cr.err != nil {
		return nil, fmt.Errorf("core: reading stream checkpoint: %w", cr.err)
	}
	if s.hazPos < 0 || s.hazPos >= len(s.hazards) || s.hazCount < 0 || s.hazCount > len(s.hazards) || s.steps < 0 {
		return nil, fmt.Errorf("core: corrupt stream checkpoint (hazPos=%d hazCount=%d steps=%d)", s.hazPos, s.hazCount, s.steps)
	}
	for b := range s.bufN {
		if s.bufN[b] < 0 || s.bufN[b] >= maxI(1, m.poolFactor(b)) {
			return nil, fmt.Errorf("core: corrupt stream checkpoint (bufN[%d]=%d)", b, s.bufN[b])
		}
	}
	// The rolling-sum state is derived, not serialized: rebuild it from the
	// ring so the restored stream's survival outputs continue bit-exactly.
	s.rebuildHazardSums()
	return s, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ckptWriter accumulates the first write error, keeping the encoders flat.
type ckptWriter struct {
	w   io.Writer
	err error
}

func (c *ckptWriter) write(buf []byte) {
	if c.err == nil {
		_, c.err = c.w.Write(buf)
	}
}

func (c *ckptWriter) u8(v uint8) { c.write([]byte{v}) }
func (c *ckptWriter) bool(v bool) {
	b := uint8(0)
	if v {
		b = 1
	}
	c.u8(b)
}
func (c *ckptWriter) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	c.write(b[:])
}
func (c *ckptWriter) i32(v int) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(int32(v)))
	c.write(b[:])
}
func (c *ckptWriter) f64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	c.write(b[:])
}

func (c *ckptWriter) vec(v nn.Vec) {
	if v == nil {
		c.u8(0)
		return
	}
	c.u8(1)
	c.i32(len(v))
	for _, x := range v {
		c.f64(x)
	}
}

// ckptReader mirrors ckptWriter; after the first error every read returns
// zero values and the error sticks.
type ckptReader struct {
	r   io.Reader
	err error
}

func (c *ckptReader) read(buf []byte) bool {
	if c.err != nil {
		return false
	}
	if _, err := io.ReadFull(c.r, buf); err != nil {
		c.err = err
		return false
	}
	return true
}

func (c *ckptReader) u8() uint8 {
	var b [1]byte
	if !c.read(b[:]) {
		return 0
	}
	return b[0]
}

func (c *ckptReader) bool() bool { return c.u8() != 0 }

func (c *ckptReader) u16() uint16 {
	var b [2]byte
	if !c.read(b[:]) {
		return 0
	}
	return binary.LittleEndian.Uint16(b[:])
}

func (c *ckptReader) i32() int {
	var b [4]byte
	if !c.read(b[:]) {
		return 0
	}
	return int(int32(binary.LittleEndian.Uint32(b[:])))
}

func (c *ckptReader) f64() float64 {
	var b [8]byte
	if !c.read(b[:]) {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// vec reads a vector written by ckptWriter.vec, enforcing wantLen.
func (c *ckptReader) vec(wantLen int) nn.Vec {
	if c.u8() == 0 || c.err != nil {
		return nil
	}
	n := c.i32()
	if c.err != nil {
		return nil
	}
	if n != wantLen {
		c.err = fmt.Errorf("core: checkpoint vector length %d, want %d", n, wantLen)
		return nil
	}
	v := nn.NewVec(n)
	for i := range v {
		v[i] = c.f64()
	}
	return v
}
