package core

import (
	"bytes"
	"math/rand"
	"testing"
)

func randInput(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// TestStreamCheckpointRoundTrip checkpoints mid-stream — deliberately at a
// step where the pooled branches hold partial aggregation buffers — and
// verifies the restored stream continues bitwise-identically.
func TestStreamCheckpointRoundTrip(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	orig := NewStream(m)
	// 13 steps: PoolMed=4 and PoolLong=12 leave bufN = 1 in both pooled
	// branches, so the checkpoint must carry partial pooling state.
	inputs := make([][]float64, 0, 64)
	for i := 0; i < 13; i++ {
		x := randInput(rng, m.Cfg.NumFeatures)
		inputs = append(inputs, x)
		orig.Push(x)
	}

	var buf bytes.Buffer
	if err := orig.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStream(bytes.NewReader(buf.Bytes()), m)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Steps() != orig.Steps() {
		t.Fatalf("restored Steps=%d, want %d", restored.Steps(), orig.Steps())
	}
	if restored.Warm() != orig.Warm() {
		t.Fatalf("restored Warm=%v, want %v", restored.Warm(), orig.Warm())
	}

	// Continue both for another 40 steps (crossing several pooling
	// boundaries and wrapping the hazard ring): every survival output must
	// be bit-identical, not merely close.
	for i := 0; i < 40; i++ {
		x := randInput(rng, m.Cfg.NumFeatures)
		a, b := orig.Push(x), restored.Push(x)
		if a != b {
			t.Fatalf("step %d: survival diverged: %v vs %v", i, a, b)
		}
	}
	// And the final states must serialize identically.
	var ba, bb bytes.Buffer
	if err := orig.Checkpoint(&ba); err != nil {
		t.Fatal(err)
	}
	if err := restored.Checkpoint(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("post-continuation checkpoints differ")
	}
}

// TestStreamCheckpointFreshStream round-trips a stream that has consumed
// nothing (all vectors nil, nothing warm).
func TestStreamCheckpointFreshStream(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := NewStream(m).Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStream(bytes.NewReader(buf.Bytes()), m)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Steps() != 0 || restored.Warm() {
		t.Fatalf("fresh restore: Steps=%d Warm=%v", restored.Steps(), restored.Warm())
	}
}

// TestRestoreStreamRejectsCorruption covers the failure paths: bad magic,
// bad version, architecture mismatch, truncation at every prefix length,
// and implausible state values.
func TestRestoreStreamRejectsCorruption(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(m)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 13; i++ {
		s.Push(randInput(rng, m.Cfg.NumFeatures))
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[0] = 'Y'
		if _, err := RestoreStream(bytes.NewReader(bad), m); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[4] = 99
		if _, err := RestoreStream(bytes.NewReader(bad), m); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("architecture mismatch", func(t *testing.T) {
		cfg := tinyConfig()
		cfg.Hidden = 8 // checkpoint carries Hidden=6
		other, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RestoreStream(bytes.NewReader(good), other); err == nil {
			t.Fatal("expected config-digest rejection")
		}
	})
	t.Run("branch mask mismatch", func(t *testing.T) {
		cfg := tinyConfig()
		cfg.UseLong = false
		other, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Same scalar config digest fields but a different branch set.
		cfg2 := tinyConfig()
		s2 := func() *Stream {
			mm, err := New(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			return NewStream(mm)
		}()
		var b2 bytes.Buffer
		if err := s2.Checkpoint(&b2); err != nil {
			t.Fatal(err)
		}
		if _, err := RestoreStream(bytes.NewReader(b2.Bytes()), other); err == nil {
			t.Fatal("expected branch-mask rejection")
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for cut := 1; cut < len(good); cut += 7 {
			if _, err := RestoreStream(bytes.NewReader(good[:cut]), m); err == nil {
				t.Fatalf("prefix of %d bytes restored without error", cut)
			}
		}
	})
	t.Run("corrupt trailer", func(t *testing.T) {
		// hazPos/hazCount/steps live right before lastX at the tail; smash
		// them with a huge value and require rejection.
		lastXLen := 1 + 4 + 8*m.Cfg.NumFeatures
		bad := append([]byte{}, good...)
		for i := len(bad) - lastXLen - 12; i < len(bad)-lastXLen; i++ {
			bad[i] = 0xFF
		}
		if _, err := RestoreStream(bytes.NewReader(bad), m); err == nil {
			t.Fatal("expected corrupt-state rejection")
		}
	})
}

// TestPushMissingPolicies pins the two gap policies against their explicit
// equivalents: MissingZero behaves exactly like pushing a zero vector, and
// MissingCarry exactly like re-pushing the last real input — except that
// lastX itself only tracks real inputs.
func TestPushMissingPolicies(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	warm := func() (*Stream, []float64) {
		s := NewStream(m)
		var x []float64
		r2 := rand.New(rand.NewSource(11))
		// 24 steps: enough for the PoolLong=12 branch to fire and the
		// Window=8 hazard ring to fill, i.e. the stream is fully warm.
		for i := 0; i < 24; i++ {
			x = randInput(r2, m.Cfg.NumFeatures)
			s.Push(x)
		}
		return s, x
	}

	t.Run("zero", func(t *testing.T) {
		a, _ := warm()
		b, _ := warm()
		got := a.PushMissing(MissingZero)
		want := b.Push(make([]float64, m.Cfg.NumFeatures))
		if got != want {
			t.Fatalf("MissingZero=%v, explicit zero push=%v", got, want)
		}
	})
	t.Run("carry", func(t *testing.T) {
		a, last := warm()
		b, _ := warm()
		got := a.PushMissing(MissingCarry)
		want := b.Push(last)
		if got != want {
			t.Fatalf("MissingCarry=%v, explicit re-push=%v", got, want)
		}
		// A second missing step must carry the same real input again, not
		// the synthesized one.
		got2 := a.PushMissing(MissingCarry)
		want2 := b.Push(last)
		if got2 != want2 {
			t.Fatalf("second MissingCarry=%v, want %v", got2, want2)
		}
	})
	t.Run("carry on cold stream zero-fills", func(t *testing.T) {
		a := NewStream(m)
		b := NewStream(m)
		got := a.PushMissing(MissingCarry)
		want := b.Push(make([]float64, m.Cfg.NumFeatures))
		if got != want {
			t.Fatalf("cold MissingCarry=%v, want zero-fill %v", got, want)
		}
	})
	t.Run("keeps stream warm and in lockstep", func(t *testing.T) {
		a, _ := warm()
		if !a.Warm() {
			t.Fatal("stream should be warm after 10 steps")
		}
		steps := a.Steps()
		for i := 0; i < 5; i++ {
			a.PushMissing(MissingZero)
		}
		if !a.Warm() {
			t.Fatal("gap steps must not cool the stream")
		}
		if a.Steps() != steps+5 {
			t.Fatalf("Steps=%d, want %d", a.Steps(), steps+5)
		}
	})
}
