package core

import (
	"errors"

	"github.com/xatu-go/xatu/internal/nn"
)

// InputGradients computes dλ_detStep/dx for every base-resolution input
// element — the gradient attribution of §6.2 (Fig 11): "the gradient of the
// input features represents the contribution of the features towards the
// final early detection". detStep indexes the detection window [0, Window).
//
// The model's gradient accumulators are used as scratch and zeroed before
// returning, so it is safe to interleave with training (not concurrently).
func (m *Model) InputGradients(x [][]float64, detStep int) ([][]float64, error) {
	xs := toVecs(x)
	f, err := m.Forward(xs)
	if err != nil {
		return nil, err
	}
	if detStep < 0 || detStep >= len(f.Hazards) {
		return nil, errors.New("core: detStep outside detection window")
	}
	dHaz := make([]float64, len(f.Hazards))
	dHaz[detStep] = 1
	dPooled := m.backward(f, dHaz, true)
	m.ZeroGrad() // discard the weight gradients this produced

	out := make([][]float64, len(x))
	dim := m.Cfg.NumFeatures
	for i := range out {
		out[i] = make([]float64, dim)
	}
	for b := range dPooled {
		if dPooled[b] == nil {
			continue
		}
		dBase := nn.MeanPoolBackward(dPooled[b], m.poolFactor(b), len(x), dim)
		for t := range dBase {
			for j, v := range dBase[t] {
				out[t][j] += v
			}
		}
	}
	return out, nil
}

// GroupSaliency aggregates |input gradient| per feature group per step,
// using the supplied groupOf function (features.GroupOf in practice).
// The result maps group name → per-step summed magnitude.
func GroupSaliency(grads [][]float64, groupOf func(int) string) map[string][]float64 {
	out := map[string][]float64{}
	for t := range grads {
		for j, g := range grads[t] {
			name := groupOf(j)
			s := out[name]
			if s == nil {
				s = make([]float64, len(grads))
				out[name] = s
			}
			if g < 0 {
				g = -g
			}
			s[t] += g
		}
	}
	return out
}
