package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/xatu-go/xatu/internal/nn"
	"github.com/xatu-go/xatu/internal/survival"
)

// tinyConfig returns a model small enough for fast tests.
func tinyConfig() Config {
	cfg := DefaultConfig(4)
	cfg.Hidden = 6
	cfg.PoolShort, cfg.PoolMed, cfg.PoolLong = 1, 4, 12
	cfg.Window = 8
	cfg.LearningRate = 0.02
	return cfg
}

// synthExample builds a T×4 sequence. Attack examples carry a rising signal
// in feature 0 starting a few steps before the labeled attack step; feature
// 1 is weak "auxiliary" lead; 2–3 are noise.
func synthExample(rng *rand.Rand, T int, attack bool, window int) Example {
	x := make([][]float64, T)
	attackStep := window / 2
	onsetBase := T - window + attackStep
	for t := range x {
		row := []float64{0, 0, rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1}
		if attack {
			if t >= onsetBase-3 {
				row[0] = 1 + 0.2*rng.NormFloat64() // volumetric ramp
			}
			if t >= onsetBase-16 {
				row[1] = 0.5 + 0.2*rng.NormFloat64() // early auxiliary lead
			}
		}
		x[t] = row
	}
	return Example{X: x, Attack: attack, AttackStep: attackStep}
}

func synthSet(rng *rand.Rand, n, T, window int) []Example {
	out := make([]Example, n)
	for i := range out {
		out[i] = synthExample(rng, T, i%2 == 0, window)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := tinyConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NumFeatures = 0 },
		func(c *Config) { c.Hidden = 0 },
		func(c *Config) { c.PoolMed = 0 },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.UseShort, c.UseMed, c.UseLong = false, false, false },
		func(c *Config) { c.LearningRate = 0 },
	}
	for i, mutate := range bad {
		c := tinyConfig()
		mutate(&c)
		if _, err := New(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestForwardShapes(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ex := synthExample(rand.New(rand.NewSource(1)), 48, true, 8)
	f, err := m.Forward(toVecs(ex.X))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Hazards) != 8 {
		t.Fatalf("hazards = %d, want Window=8", len(f.Hazards))
	}
	for _, h := range f.Hazards {
		if h < 0 || math.IsNaN(h) {
			t.Fatalf("hazard %v invalid", h)
		}
	}
	s, err := m.Survival(toVecs(ex.X))
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for _, v := range s {
		if v <= 0 || v > 1 || v > prev+1e-12 {
			t.Fatalf("survival not monotone in (0,1]: %v", s)
		}
		prev = v
	}
}

func TestForwardErrors(t *testing.T) {
	m, _ := New(tinyConfig())
	if _, err := m.Forward(nil); err == nil {
		t.Fatal("empty sequence must error")
	}
	if _, err := m.Forward([]nn.Vec{{1, 2}}); err == nil {
		t.Fatal("wrong width must error")
	}
}

func TestForwardShortSequenceClampsWindow(t *testing.T) {
	m, _ := New(tinyConfig())
	xs := make([]nn.Vec, 3)
	for i := range xs {
		xs[i] = nn.NewVec(4)
	}
	f, err := m.Forward(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Hazards) != 3 {
		t.Fatalf("window must clamp to sequence length, got %d", len(f.Hazards))
	}
}

func TestBranchAlignmentNoFutureLeakage(t *testing.T) {
	// The state a detection step reads from a pooled branch must not
	// contain inputs from after that step: inject a huge spike *after*
	// detection step 0 and check its hazard is unchanged.
	cfg := tinyConfig()
	m, _ := New(cfg)
	T := 48
	mk := func(spike bool) []nn.Vec {
		xs := make([]nn.Vec, T)
		for i := range xs {
			xs[i] = nn.NewVec(4)
			xs[i][0] = 0.1
		}
		if spike {
			// Detection step 0 is base step T-8; poison everything after it.
			for i := T - 7; i < T; i++ {
				xs[i][0] = 100
			}
		}
		return xs
	}
	f1, err := m.Forward(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := m.Forward(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if f1.Hazards[0] != f2.Hazards[0] {
		t.Fatalf("future inputs leaked into detection step 0: %v vs %v", f1.Hazards[0], f2.Hazards[0])
	}
}

func TestFitLearnsSyntheticTask(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := tinyConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train := synthSet(rng, 40, 48, cfg.Window)
	first := math.NaN()
	last, err := m.Fit(train, TrainOptions{
		Epochs: 30, BatchSize: 8, Seed: 3,
		Progress: func(epoch int, l float64) {
			if epoch == 0 {
				first = l
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(last < first*0.7) {
		t.Fatalf("loss did not drop: first %v last %v", first, last)
	}
	// Survival on a fresh attack example must dip below survival on a fresh
	// benign example.
	atk := synthExample(rng, 48, true, cfg.Window)
	ben := synthExample(rng, 48, false, cfg.Window)
	sa, _ := m.Survival(toVecs(atk.X))
	sb, _ := m.Survival(toVecs(ben.X))
	if !(sa[len(sa)-1] < sb[len(sb)-1]) {
		t.Fatalf("attack survival %v not below benign %v", sa[len(sa)-1], sb[len(sb)-1])
	}
	// The model should detect at or before the labeled step once thresholded
	// between the two series' finals.
	th := (sa[len(sa)-1] + sb[len(sb)-1]) / 2
	det := survival.DetectStep(sa, th)
	if det == -1 || det > atk.AttackStep+2 {
		t.Fatalf("detect step %d vs label %d", det, atk.AttackStep)
	}
}

func TestFitParallelMatchesSerialDirection(t *testing.T) {
	// Parallel training is not bit-identical (FP summation order), but both
	// must learn. Run 4 workers and verify loss drops.
	rng := rand.New(rand.NewSource(9))
	cfg := tinyConfig()
	m, _ := New(cfg)
	train := synthSet(rng, 24, 48, cfg.Window)
	first := math.NaN()
	last, err := m.Fit(train, TrainOptions{Epochs: 15, BatchSize: 8, Workers: 4, Seed: 1,
		Progress: func(e int, l float64) {
			if e == 0 {
				first = l
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if !(last < first) {
		t.Fatalf("parallel fit did not reduce loss: %v -> %v", first, last)
	}
}

func TestFitEmptyExamples(t *testing.T) {
	m, _ := New(tinyConfig())
	if _, err := m.Fit(nil, TrainOptions{}); err == nil {
		t.Fatal("empty training set must error")
	}
}

func TestBCEVariantTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := tinyConfig()
	cfg.UseSurvival = false
	m, _ := New(cfg)
	train := synthSet(rng, 20, 48, cfg.Window)
	first := math.NaN()
	last, err := m.Fit(train, TrainOptions{Epochs: 10, BatchSize: 5, Seed: 2,
		Progress: func(e int, l float64) {
			if e == 0 {
				first = l
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if !(last < first) {
		t.Fatalf("BCE fit did not reduce loss: %v -> %v", first, last)
	}
}

func TestSingleTimescaleVariants(t *testing.T) {
	for _, variant := range []struct {
		name    string
		s, m, l bool
	}{
		{"short-only", true, false, false},
		{"med-only", false, true, false},
		{"long-only", false, false, true},
		{"short+med", true, true, false},
	} {
		cfg := tinyConfig()
		cfg.UseShort, cfg.UseMed, cfg.UseLong = variant.s, variant.m, variant.l
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", variant.name, err)
		}
		ex := synthExample(rand.New(rand.NewSource(1)), 48, true, cfg.Window)
		if _, err := m.TrainExample(&ex); err != nil {
			t.Fatalf("%s: %v", variant.name, err)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfg := tinyConfig()
	m, _ := New(cfg)
	train := synthSet(rng, 8, 48, cfg.Window)
	if _, err := m.Fit(train, TrainOptions{Epochs: 2, BatchSize: 4, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ex := synthExample(rng, 48, true, cfg.Window)
	s1, _ := m.Survival(toVecs(ex.X))
	s2, _ := m2.Survival(toVecs(ex.X))
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("loaded model differs at step %d: %v vs %v", i, s1[i], s2[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage must fail to load")
	}
	if _, err := Load(bytes.NewReader([]byte("999999999\n"))); err == nil {
		t.Fatal("absurd header must fail")
	}
}

func TestTrainGradientMatchesNumeric(t *testing.T) {
	// End-to-end gradient check through pooling, LSTMs, head and the SAFE
	// loss: analytic dL/dw vs central differences for sampled weights.
	cfg := tinyConfig()
	cfg.Window = 4
	m, _ := New(cfg)
	ex := synthExample(rand.New(rand.NewSource(3)), 24, true, cfg.Window)

	lossOf := func() float64 {
		f, err := m.Forward(toVecs(ex.X))
		if err != nil {
			t.Fatal(err)
		}
		l, _ := m.lossGrad(f, &ex)
		return l
	}
	m.ZeroGrad()
	if _, err := m.TrainExample(&ex); err != nil {
		t.Fatal(err)
	}
	params := m.Params()
	const h = 1e-6
	for _, p := range params {
		stride := len(p.W.Data)/4 + 1
		for i := 0; i < len(p.W.Data); i += stride {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			lp := lossOf()
			p.W.Data[i] = orig - h
			lm := lossOf()
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * h)
			got := p.G.Data[i]
			if math.Abs(num-got) > 1e-4*(1+math.Abs(num)+math.Abs(got)) {
				t.Fatalf("%s[%d]: analytic %v numeric %v", p.Name, i, got, num)
			}
		}
	}
}

func TestForwardFiniteHazardsProperty(t *testing.T) {
	// Random small configurations over random inputs must always yield
	// finite non-negative hazards and monotone survival.
	f := func(seed int64, hRaw, wRaw, tRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig(5)
		cfg.Hidden = int(hRaw)%8 + 2
		cfg.Window = int(wRaw)%6 + 2
		cfg.PoolShort = 1
		cfg.PoolMed = rng.Intn(4) + 2
		cfg.PoolLong = cfg.PoolMed * (rng.Intn(3) + 2)
		cfg.Seed = seed
		m, err := New(cfg)
		if err != nil {
			return false
		}
		T := int(tRaw)%40 + cfg.Window
		xs := make([]nn.Vec, T)
		for i := range xs {
			xs[i] = nn.NewVec(5)
			for j := range xs[i] {
				xs[i][j] = rng.NormFloat64() * 3
			}
		}
		s, err := m.Survival(xs)
		if err != nil {
			return false
		}
		prev := 1.0
		for _, v := range s {
			if math.IsNaN(v) || v <= 0 || v > prev+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
