package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// gradSnapshot copies every gradient accumulator of m into one flat slice.
func gradSnapshot(m *Model) []float64 {
	var out []float64
	for _, p := range m.Params() {
		out = append(out, p.G.Data...)
	}
	return out
}

// weightSnapshot copies every weight of m into one flat slice.
func weightSnapshot(m *Model) []float64 {
	var out []float64
	for _, p := range m.Params() {
		out = append(out, p.W.Data...)
	}
	return out
}

func TestTrainChunkBatchOneBitIdenticalToTrainExample(t *testing.T) {
	// A batch-1 trainChunk must accumulate byte-for-byte the gradients
	// TrainExample does: the batched trainer is a pure performance change.
	cfg := tinyConfig()
	rng := rand.New(rand.NewSource(7))
	for _, attack := range []bool{true, false} {
		m1, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m2 := m1.Replica()
		ex := synthExample(rng, 48, attack, cfg.Window)

		if _, err := m1.TrainExample(&ex); err != nil {
			t.Fatal(err)
		}
		sc := &trainScratch{}
		if _, err := m2.trainChunk([]Example{ex}, []int{0}, sc); err != nil {
			t.Fatal(err)
		}

		g1, g2 := gradSnapshot(m1), gradSnapshot(m2)
		for i := range g1 {
			if g1[i] != g2[i] {
				t.Fatalf("attack=%v grad %d: scalar %v batched %v", attack, i, g1[i], g2[i])
			}
		}
	}
}

func TestTrainChunkSparseBitIdenticalToTrainExample(t *testing.T) {
	// With realistically sparse feature rows the chunk switches to the CSR
	// input-projection kernels; gradients must still match the scalar path
	// byte-for-byte.
	cfg := tinyConfig()
	cfg.NumFeatures = 32
	rng := rand.New(rand.NewSource(41))
	m1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2 := m1.Replica()
	ex := Example{Attack: true, AttackStep: cfg.Window / 2}
	for t2 := 0; t2 < 48; t2++ {
		row := make([]float64, cfg.NumFeatures)
		for k := 0; k < 3; k++ { // 3/32 non-zero, like live traffic counters
			row[(k*11+t2)%cfg.NumFeatures] = rng.NormFloat64()
		}
		ex.X = append(ex.X, row)
	}

	if _, err := m1.TrainExample(&ex); err != nil {
		t.Fatal(err)
	}
	sc := &trainScratch{}
	if _, err := m2.trainChunk([]Example{ex}, []int{0}, sc); err != nil {
		t.Fatal(err)
	}
	if !sc.tapes[0].Sparse() {
		t.Fatal("3/32 non-zero rows should take the sparse input projection")
	}
	g1, g2 := gradSnapshot(m1), gradSnapshot(m2)
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("grad %d: scalar %v sparse-batched %v", i, g1[i], g2[i])
		}
	}
}

func TestTrainChunkMatchesSumOfTrainExamples(t *testing.T) {
	// A multi-example chunk sums per-example gradients; the summation order
	// per weight element interleaves examples per timestep rather than
	// concatenating whole examples, so compare within float tolerance.
	cfg := tinyConfig()
	rng := rand.New(rand.NewSource(11))
	m1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2 := m1.Replica()
	examples := synthSet(rng, 5, 48, cfg.Window)

	var want float64
	for i := range examples {
		l, err := m1.TrainExample(&examples[i])
		if err != nil {
			t.Fatal(err)
		}
		want += l
	}
	sc := &trainScratch{}
	got, err := m2.trainChunk(examples, []int{0, 1, 2, 3, 4}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("chunk loss %v, scalar sum %v", got, want)
	}
	g1, g2 := gradSnapshot(m1), gradSnapshot(m2)
	for i := range g1 {
		if math.Abs(g1[i]-g2[i]) > 1e-9*(1+math.Abs(g1[i])) {
			t.Fatalf("grad %d: scalar %v batched %v", i, g1[i], g2[i])
		}
	}
}

func TestFitSameSeedByteIdenticalModels(t *testing.T) {
	// Two Fit runs with identical (examples, Seed, Workers, BatchSize) must
	// produce byte-identical saved models — the deterministic-reduction
	// contract, including with more workers than GOMAXPROCS.
	cfg := tinyConfig()
	examples := synthSet(rand.New(rand.NewSource(3)), 10, 48, cfg.Window)
	opts := TrainOptions{Epochs: 2, BatchSize: 4, Workers: 4, Seed: 42}

	var bufs [2]bytes.Buffer
	for r := 0; r < 2; r++ {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Fit(examples, opts); err != nil {
			t.Fatal(err)
		}
		if err := m.Save(&bufs[r]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("same-seed Fit runs produced different model bytes")
	}
}

func TestFitMixedSequenceLengths(t *testing.T) {
	// Examples of different lengths land in different lanes within one
	// batch; Fit must handle them and stay deterministic.
	cfg := tinyConfig()
	rng := rand.New(rand.NewSource(5))
	var examples []Example
	for i, T := range []int{48, 36, 48, 60, 36, 48, 60, 48} {
		examples = append(examples, synthExample(rng, T, i%2 == 0, cfg.Window))
	}
	opts := TrainOptions{Epochs: 2, BatchSize: 4, Workers: 2, Seed: 9}

	var bufs [2]bytes.Buffer
	for r := 0; r < 2; r++ {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Fit(examples, opts); err != nil {
			t.Fatal(err)
		}
		if err := m.Save(&bufs[r]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("mixed-length same-seed Fit runs produced different model bytes")
	}
}

func TestFitWorkersClampedToExamples(t *testing.T) {
	// Workers beyond the example count would only build replicas that can
	// never receive a chunk; the fitter must clamp instead.
	cfg := tinyConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	examples := synthSet(rand.New(rand.NewSource(13)), 3, 36, cfg.Window)
	f := m.newFitter(examples, TrainOptions{Epochs: 1, BatchSize: 16, Workers: 8, Seed: 1})
	if f.workers != len(examples) {
		t.Fatalf("workers = %d, want clamp to %d examples", f.workers, len(examples))
	}
	if len(f.replicas) != f.workers {
		t.Fatalf("built %d replicas for %d workers", len(f.replicas), f.workers)
	}
	// And the clamped fitter still trains.
	if _, err := f.runEpoch(examples); err != nil {
		t.Fatal(err)
	}
}

func TestFitErrorLeavesWeightsUntouched(t *testing.T) {
	// A failing batch must not move the weights: no partial replica merge,
	// no optimizer step, and no stale gradients left in any replica.
	cfg := tinyConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	examples := synthSet(rand.New(rand.NewSource(17)), 4, 36, cfg.Window)
	examples[2].X[10] = []float64{1, 2} // wrong feature width → trainChunk error

	before := weightSnapshot(m)
	_, fitErr := m.Fit(examples, TrainOptions{Epochs: 1, BatchSize: 8, Workers: 2, Seed: 1})
	if fitErr == nil {
		t.Fatal("expected Fit to fail on the malformed example")
	}
	after := weightSnapshot(m)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("weight %d moved across failed Fit: %v -> %v", i, before[i], after[i])
		}
	}
	g := gradSnapshot(m)
	for i, v := range g {
		if v != 0 {
			t.Fatalf("gradient %d left non-zero (%v) after failed Fit", i, v)
		}
	}
}

func TestFitterErrorZeroesReplicaGradients(t *testing.T) {
	// After a failed batch the replicas must be clean so a retry (or the
	// next Fit) does not inherit partial gradients.
	cfg := tinyConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	examples := synthSet(rand.New(rand.NewSource(19)), 4, 36, cfg.Window)
	examples[3].X[0] = nil // empty row → width error in trainChunk

	f := m.newFitter(examples, TrainOptions{Epochs: 1, BatchSize: 8, Workers: 2, Seed: 1})
	if _, err := f.runEpoch(examples); err == nil {
		t.Fatal("expected runEpoch error")
	}
	for wi, r := range f.replicas {
		for i, v := range gradSnapshot(r) {
			if v != 0 {
				t.Fatalf("replica %d gradient %d left non-zero (%v)", wi, i, v)
			}
		}
	}
	if f.opt.StepCount() != 0 {
		t.Fatalf("optimizer stepped %d times on an all-failing epoch", f.opt.StepCount())
	}
}

func TestTrainChunkRejectsBadWidthMidSequence(t *testing.T) {
	cfg := tinyConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := synthExample(rand.New(rand.NewSource(23)), 36, true, cfg.Window)
	ex.X[20] = []float64{1} // ragged interior row
	sc := &trainScratch{}
	if _, err := m.trainChunk([]Example{ex}, []int{0}, sc); err == nil {
		t.Fatal("expected width error for ragged row")
	}
	var empty Example
	if _, err := m.trainChunk([]Example{empty}, []int{0}, sc); err == nil {
		t.Fatal("expected error for empty sequence")
	}
}

func TestFitSteadyStateEpochZeroAlloc(t *testing.T) {
	// After the first epoch grows every buffer, subsequent epochs of the
	// single-worker batched trainer must not allocate at all.
	cfg := tinyConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	examples := synthSet(rand.New(rand.NewSource(29)), 8, 48, cfg.Window)
	f := m.newFitter(examples, TrainOptions{Epochs: 1, BatchSize: 4, Workers: 1, Seed: 1})
	if _, err := f.runEpoch(examples); err != nil { // warm the grow-only scratch
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(3, func() {
		if _, err := f.runEpoch(examples); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("steady-state epoch allocated %v times, want 0", n)
	}
}

func TestFitBatchedStillLearns(t *testing.T) {
	// End-to-end sanity: the batched trainer separates attack from benign
	// survival curves just like the scalar trainer did.
	cfg := tinyConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	examples := synthSet(rng, 24, 48, cfg.Window)
	if _, err := m.Fit(examples, TrainOptions{Epochs: 12, BatchSize: 8, Workers: 2, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	atk := synthExample(rng, 48, true, cfg.Window)
	ben := synthExample(rng, 48, false, cfg.Window)
	sa, err := m.Survival(toVecs(atk.X))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := m.Survival(toVecs(ben.X))
	if err != nil {
		t.Fatal(err)
	}
	if sa[len(sa)-1] >= sb[len(sb)-1] {
		t.Fatalf("attack survival %v not below benign %v", sa[len(sa)-1], sb[len(sb)-1])
	}
}
