package core

import (
	"fmt"

	"github.com/xatu-go/xatu/internal/nn"
)

// BatchRunner advances many Streams that share one *Model through the
// batched nn kernels: per branch it gathers the inputs and recurrent
// states of every stream due to step, runs a single LSTM.StepBatch over
// the shared weights, scatters the states back, and evaluates the head
// for all streams in one Dense.ForwardBatch. The Streams remain the state
// containers — they checkpoint, reset and interleave with sequential
// Push/PushMissing calls exactly as before — the runner only owns reused
// packing buffers, so a steady-state batch step allocates nothing.
//
// Bit-exactness contract: Push(streams, xs, out) leaves every stream in
// the state — and returns the survival value — that streams[i].Push(xs[i])
// would have produced, bit for bit. The batched kernels preserve each
// row's arithmetic order (see nn.Batch.MulT), pooled means are scaled with
// the same expression, and the hazard ring is advanced by the same
// recordHazard the sequential path uses. Mixed-batch serving (streams
// joining, leaving, or stepping alone between batch calls) therefore
// cannot perturb detection.
//
// A BatchRunner is not safe for concurrent use, and every stream passed to
// Push must have been created over the runner's model.
type BatchRunner struct {
	m *Model
	// per-branch gather buffers: input rows, hidden/cell rows, and the
	// indices (into the caller's streams slice) of the rows' owners.
	xb, hb, cb [numBranches]nn.Batch
	idx        [numBranches][]int
	sc         nn.BatchScratch
	concat, zs nn.Batch
}

// NewBatchRunner returns a runner over m. Buffers grow to the largest
// batch seen and are reused thereafter.
func NewBatchRunner(m *Model) *BatchRunner { return &BatchRunner{m: m} }

// Model returns the shared model the runner steps streams through.
func (r *BatchRunner) Model() *Model { return r.m }

// Push advances stream i with input xs[i] for every i, writing the
// survival probability into out[i] and returning out. A nil or
// wrong-length out is reallocated; callers wanting an allocation-free
// step pass a slice of len(streams).
func (r *BatchRunner) Push(streams []*Stream, xs [][]float64, out []float64) []float64 {
	B := len(streams)
	if len(xs) != B {
		panic(fmt.Sprintf("core: BatchRunner.Push with %d streams, %d inputs", B, len(xs)))
	}
	if len(out) != B {
		out = make([]float64, B)
	}
	if B == 0 {
		return out
	}
	cfg := r.m.Cfg
	for i, s := range streams {
		if s.m != r.m {
			panic("core: BatchRunner.Push with a stream over a different model")
		}
		if s.prec != PrecisionFloat64 {
			panic("core: BatchRunner.Push with a non-float64 stream (use BatchRunner32)")
		}
		copy(s.lastX, xs[i])
		s.steps++
	}
	for b, l := range r.m.lstms {
		if l == nil {
			continue
		}
		k := r.m.poolFactor(b)
		idx := r.idx[b][:0]
		if k <= 1 {
			for i := range streams {
				idx = append(idx, i)
			}
		} else {
			for i, s := range streams {
				s.bufSum[b].Add(nn.Vec(xs[i]))
				s.bufN[b]++
				if s.bufN[b] >= k {
					idx = append(idx, i)
				}
			}
		}
		r.idx[b] = idx
		if len(idx) == 0 {
			continue
		}
		r.xb[b].Resize(len(idx), cfg.NumFeatures)
		r.hb[b].Resize(len(idx), cfg.Hidden)
		r.cb[b].Resize(len(idx), cfg.Hidden)
		inv := 1 / float64(k)
		for n, i := range idx {
			s := streams[i]
			row := r.xb[b].Row(n)
			if k <= 1 {
				copy(row, xs[i])
			} else {
				// The same mean expression the sequential path computes:
				// bufSum[j] * (1/k), then the buffer restarts.
				for j, sum := range s.bufSum[b] {
					row[j] = sum * inv
				}
				s.bufSum[b].Zero()
				s.bufN[b] = 0
			}
			copy(r.hb[b].Row(n), s.h[b])
			copy(r.cb[b].Row(n), s.c[b])
		}
		l.StepBatch(&r.hb[b], &r.cb[b], &r.xb[b], &r.sc)
		for n, i := range idx {
			s := streams[i]
			copy(s.h[b], r.hb[b].Row(n))
			copy(s.c[b], r.cb[b].Row(n))
			s.seen[b] = true
		}
	}
	// Head over every stream's latest states, one batched pass.
	hd := cfg.Hidden
	r.concat.Resize(B, hd*r.m.activeBranches())
	for i, s := range streams {
		row := r.concat.Row(i)
		off := 0
		for b, l := range r.m.lstms {
			if l == nil {
				continue
			}
			copy(row[off:off+hd], s.h[b])
			off += hd
		}
	}
	r.m.head.ForwardBatch(&r.concat, &r.zs)
	for i, s := range streams {
		out[i] = s.recordHazard(nn.Softplus(r.zs.Row(i)[0]))
	}
	return out
}
