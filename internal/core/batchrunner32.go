package core

import (
	"fmt"
	"io"

	"github.com/xatu-go/xatu/internal/nn"
)

// BatchRunner32 is the float32 lane runner: it advances many
// PrecisionFloat32 Streams sharing one *Model through the quantized panel
// kernels, and owns the lane's Arena so every stream it creates has its
// hot state carved from the same contiguous slabs — gather/scatter then
// walks nearly-linear memory instead of pointer-chasing per customer.
//
// The bit-exactness contract matches BatchRunner's, within the float32
// path: Push leaves every stream in the state — and returns the survival
// value — that the stream's own sequential float32 push would have
// produced, bit for bit (the panel kernels preserve per-row arithmetic
// order; see nn.PanelMat32). Parity against float64 serving is
// behavioral, not bitwise: alert sets agree within the calibrated
// tolerance (DESIGN.md §14).
//
// A BatchRunner32 is not safe for concurrent use.
type BatchRunner32 struct {
	m     *Model
	q     *Quantized32
	arena Arena
	// per-branch gather buffers: input rows, hidden/cell rows, and the
	// indices (into the caller's streams slice) of the rows' owners.
	xb, hb, cb [numBranches]nn.Batch32
	idx        [numBranches][]int
	sc         nn.BatchScratch32
	concat, zs nn.Batch32
}

// NewBatchRunner32 returns a float32 runner over m, quantizing the model
// (cached on the Model) up front so corrupt weights fail here, at
// load/construction time, not mid-serving.
func NewBatchRunner32(m *Model) (*BatchRunner32, error) {
	q, err := m.Quantized32()
	if err != nil {
		return nil, err
	}
	return &BatchRunner32{m: m, q: q}, nil
}

// Model returns the shared model the runner steps streams through.
func (r *BatchRunner32) Model() *Model { return r.m }

// NewStream returns a fresh float32 stream over the runner's model, with
// state carved from the lane arena. Quantization is already cached, so
// this cannot fail.
func (r *BatchRunner32) NewStream() *Stream {
	s, err := NewStreamPrec(r.m, PrecisionFloat32, &r.arena)
	if err != nil {
		panic(err) // unreachable: NewBatchRunner32 already quantized
	}
	return s
}

// RestoreStream reads an XSC1 checkpoint into a float32 stream on this
// lane (state carved from the lane arena).
func (r *BatchRunner32) RestoreStream(rd io.Reader) (*Stream, error) {
	return RestoreStreamPrec(rd, r.m, PrecisionFloat32, &r.arena)
}

// Push advances stream i with input xs[i] for every i, writing the
// survival probability into out[i] and returning out — the float32
// analogue of BatchRunner.Push, allocation-free at steady state.
func (r *BatchRunner32) Push(streams []*Stream, xs [][]float64, out []float64) []float64 {
	B := len(streams)
	if len(xs) != B {
		panic(fmt.Sprintf("core: BatchRunner32.Push with %d streams, %d inputs", B, len(xs)))
	}
	if len(out) != B {
		out = make([]float64, B)
	}
	if B == 0 {
		return out
	}
	cfg := r.m.Cfg
	for i, s := range streams {
		if s.m != r.m {
			panic("core: BatchRunner32.Push with a stream over a different model")
		}
		if s.prec != PrecisionFloat32 {
			panic("core: BatchRunner32.Push with a non-float32 stream")
		}
		copy(s.lastX, xs[i])
		s.x32 = nn.Narrow32(xs[i], s.x32)
		s.steps++
	}
	for b, l := range r.q.lstms {
		if l == nil {
			continue
		}
		k := r.m.poolFactor(b)
		idx := r.idx[b][:0]
		if k <= 1 {
			for i := range streams {
				idx = append(idx, i)
			}
		} else {
			for i, s := range streams {
				s.bufSum32[b].Add(s.x32)
				s.bufN[b]++
				if s.bufN[b] >= k {
					idx = append(idx, i)
				}
			}
		}
		r.idx[b] = idx
		if len(idx) == 0 {
			continue
		}
		r.xb[b].Resize(len(idx), cfg.NumFeatures)
		r.hb[b].Resize(len(idx), cfg.Hidden)
		r.cb[b].Resize(len(idx), cfg.Hidden)
		inv := 1 / float32(k)
		for n, i := range idx {
			s := streams[i]
			row := r.xb[b].Row(n)
			if k <= 1 {
				copy(row, s.x32)
			} else {
				// The same mean expression the sequential float32 path
				// computes: bufSum32[j] * (1/k), then the buffer restarts.
				for j, sum := range s.bufSum32[b] {
					row[j] = sum * inv
				}
				s.bufSum32[b].Zero()
				s.bufN[b] = 0
			}
			copy(r.hb[b].Row(n), s.h32[b])
			copy(r.cb[b].Row(n), s.c32[b])
		}
		l.StepBatch32(&r.hb[b], &r.cb[b], &r.xb[b], &r.sc)
		for n, i := range idx {
			s := streams[i]
			copy(s.h32[b], r.hb[b].Row(n))
			copy(s.c32[b], r.cb[b].Row(n))
			s.seen[b] = true
		}
	}
	// Head over every stream's latest states, one batched pass.
	hd := cfg.Hidden
	r.concat.Resize(B, hd*r.m.activeBranches())
	for i, s := range streams {
		row := r.concat.Row(i)
		off := 0
		for b, l := range r.q.lstms {
			if l == nil {
				continue
			}
			copy(row[off:off+hd], s.h32[b])
			off += hd
		}
	}
	r.q.head.ForwardBatch32(&r.concat, &r.zs)
	for i, s := range streams {
		out[i] = s.recordHazard(nn.Softplus(float64(r.zs.Row(i)[0])))
	}
	return out
}
