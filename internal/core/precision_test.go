package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func newParityStreams32(t *testing.T, m *Model, n int) (batch, ref []*Stream) {
	t.Helper()
	batch = make([]*Stream, n)
	ref = make([]*Stream, n)
	for i := range batch {
		var err error
		if batch[i], err = NewStreamPrec(m, PrecisionFloat32, nil); err != nil {
			t.Fatal(err)
		}
		if ref[i], err = NewStreamPrec(m, PrecisionFloat32, nil); err != nil {
			t.Fatal(err)
		}
	}
	return batch, ref
}

// TestBatchRunner32MatchesSequentialBitwise is the float32 twin of the
// float64 runner contract: batched float32 serving must be bit-identical
// to the sequential float32 path, stream for stream, across pooling
// boundaries and hazard-ring wraps — including byte-identical checkpoints.
func TestBatchRunner32MatchesSequentialBitwise(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewBatchRunner32(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, B := range []int{1, 3, 64} {
		rng := rand.New(rand.NewSource(int64(200 + B)))
		batch := make([]*Stream, B)
		for i := range batch {
			batch[i] = r.NewStream()
		}
		_, ref := newParityStreams32(t, m, B)
		out := make([]float64, B)
		for step := 0; step < 60; step++ {
			xs := parityInputs(rng, B, m.Cfg.NumFeatures)
			r.Push(batch, xs, out)
			for i := range ref {
				want := ref[i].Push(xs[i])
				if out[i] != want {
					t.Fatalf("B=%d step %d stream %d: batched survival %v != sequential %v",
						B, step, i, out[i], want)
				}
			}
		}
		for i := range ref {
			var a, b bytes.Buffer
			if err := batch[i].Checkpoint(&a); err != nil {
				t.Fatal(err)
			}
			if err := ref[i].Checkpoint(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("B=%d stream %d: batched and sequential checkpoints differ", B, i)
			}
		}
	}
}

// TestStream32CheckpointRoundTrip checkpoints a float32 stream mid-run —
// partial pooling buffers, ring mid-epoch — restores it at float32, and
// requires bit-identical continuation: float32 state widens exactly into
// the XSC1 format and narrows exactly back.
func TestStream32CheckpointRoundTrip(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(301))
	orig, err := NewStreamPrec(m, PrecisionFloat32, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		orig.Push(randInput(rng, m.Cfg.NumFeatures))
	}
	var ck bytes.Buffer
	if err := orig.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStreamPrec(bytes.NewReader(ck.Bytes()), m, PrecisionFloat32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Precision() != PrecisionFloat32 {
		t.Fatalf("restored precision %v", restored.Precision())
	}
	for i := 0; i < 40; i++ {
		x := randInput(rng, m.Cfg.NumFeatures)
		a, b := orig.Push(x), restored.Push(x)
		if a != b {
			t.Fatalf("step %d: original %v != restored %v", i, a, b)
		}
	}
	var a, b bytes.Buffer
	if err := orig.Checkpoint(&a); err != nil {
		t.Fatal(err)
	}
	if err := restored.Checkpoint(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("post-continuation checkpoints differ")
	}
}

// TestRestoreFloat64CheckpointIntoFloat32 crosses precisions: a float64
// stream's checkpoint restores into a float32 lane (narrowed state) and
// keeps serving, with survival outputs tracking the float64 original
// within quantization tolerance — the migration path when a fleet flips a
// lane's precision without a cold restart.
func TestRestoreFloat64CheckpointIntoFloat32(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(302))
	s64 := NewStream(m)
	for i := 0; i < 17; i++ {
		s64.Push(randInput(rng, m.Cfg.NumFeatures))
	}
	var ck bytes.Buffer
	if err := s64.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	s32, err := RestoreStreamPrec(bytes.NewReader(ck.Bytes()), m, PrecisionFloat32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s32.Steps() != s64.Steps() {
		t.Fatalf("restored steps %d, want %d", s32.Steps(), s64.Steps())
	}
	for i := 0; i < 30; i++ {
		x := randInput(rng, m.Cfg.NumFeatures)
		a, b := s64.Push(x), s32.Push(x)
		// Compare in log-survival space: |Δ log S| bounds the hazard-sum
		// perturbation independent of how close S is to 0 or 1.
		if d := math.Abs(math.Log(a) - math.Log(b)); d > 1e-3 {
			t.Fatalf("step %d: f64 survival %v vs f32 %v (|Δlog|=%v)", i, a, b, d)
		}
	}
}

// TestStream32TracksFloat64 runs the two precisions side by side from
// cold: log-survival must agree within quantization-level tolerance over
// a long window (no compounding drift from the fast float32
// nonlinearities).
func TestStream32TracksFloat64(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(303))
	s64 := NewStream(m)
	s32, err := NewStreamPrec(m, PrecisionFloat32, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		x := randInput(rng, m.Cfg.NumFeatures)
		a, b := s64.Push(x), s32.Push(x)
		if d := math.Abs(math.Log(a) - math.Log(b)); d > 1e-3 {
			t.Fatalf("step %d: f64 survival %v vs f32 %v (|Δlog|=%v)", i, a, b, d)
		}
	}
}

// TestStream32ResetAndMissing exercises Reset and PushMissing on the
// float32 path: reset returns to the cold state, and missing-step
// synthesis stays bit-identical between two identically-driven streams.
func TestStream32ResetAndMissing(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(304))
	a, err := NewStreamPrec(m, PrecisionFloat32, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStreamPrec(m, PrecisionFloat32, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		x := randInput(rng, m.Cfg.NumFeatures)
		if i%5 == 4 {
			if a.PushMissing(MissingCarry) != b.PushMissing(MissingCarry) {
				t.Fatalf("step %d: missing-step survival diverged", i)
			}
			continue
		}
		if a.Push(x) != b.Push(x) {
			t.Fatalf("step %d: survival diverged", i)
		}
	}
	a.Reset()
	fresh, err := NewStreamPrec(m, PrecisionFloat32, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ra, rf bytes.Buffer
	if err := a.Checkpoint(&ra); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Checkpoint(&rf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra.Bytes(), rf.Bytes()) {
		t.Fatal("reset float32 stream differs from a fresh one")
	}
}

// TestRunnerPrecisionGuards pins the cross-precision panics: a float32
// stream cannot enter the float64 runner and vice versa.
func TestRunnerPrecisionGuards(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{make([]float64, m.Cfg.NumFeatures)}
	t.Run("f32 stream in f64 runner", func(t *testing.T) {
		r := NewBatchRunner(m)
		s, err := NewStreamPrec(m, PrecisionFloat32, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		r.Push([]*Stream{s}, xs, nil)
	})
	t.Run("f64 stream in f32 runner", func(t *testing.T) {
		r, err := NewBatchRunner32(m)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		r.Push([]*Stream{NewStream(m)}, xs, nil)
	})
}

// TestBatchRunner32PushAllocsZero pins the float32 batched path at zero
// steady-state allocations at batch 8 and 64 (arena'd stream state,
// runner-owned packing buffers).
func TestBatchRunner32PushAllocsZero(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewBatchRunner32(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, B := range []int{8, 64} {
		streams := make([]*Stream, B)
		xs := make([][]float64, B)
		for i := range streams {
			streams[i] = r.NewStream()
			xs[i] = make([]float64, m.Cfg.NumFeatures)
			xs[i][0] = float64(i) * 0.1
		}
		out := make([]float64, B)
		for i := 0; i < 30; i++ {
			r.Push(streams, xs, out)
		}
		if allocs := testing.AllocsPerRun(100, func() { r.Push(streams, xs, out) }); allocs != 0 {
			t.Fatalf("B=%d: BatchRunner32.Push allocates %v/op, want 0", B, allocs)
		}
	}
}

// TestBatchRunnerPushAllocsZeroAtBatch64 extends the float64 runner's
// zero-alloc pin to the 64-wide shape (the benchmark that used to report
// 273 B/op from first-call buffer growth).
func TestBatchRunnerPushAllocsZeroAtBatch64(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	streams, _ := newParityStreams(m, 64)
	r := NewBatchRunner(m)
	xs := make([][]float64, 64)
	for i := range xs {
		xs[i] = make([]float64, m.Cfg.NumFeatures)
		xs[i][0] = float64(i) * 0.1
	}
	out := make([]float64, 64)
	for i := 0; i < 30; i++ {
		r.Push(streams, xs, out)
	}
	if allocs := testing.AllocsPerRun(100, func() { r.Push(streams, xs, out) }); allocs != 0 {
		t.Fatalf("BatchRunner.Push at batch 64 allocates %v/op, want 0", allocs)
	}
}

// TestStream32PushAllocsZero pins the sequential float32 hot path at zero
// allocations (all state and scratch arena-carved at construction).
func TestStream32PushAllocsZero(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamPrec(m, PrecisionFloat32, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.Cfg.NumFeatures)
	x[0] = 0.5
	for i := 0; i < 30; i++ {
		s.Push(x)
	}
	if allocs := testing.AllocsPerRun(100, func() { s.Push(x) }); allocs != 0 {
		t.Fatalf("float32 Stream.Push allocates %v/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { s.PushMissing(MissingCarry) }); allocs != 0 {
		t.Fatalf("float32 Stream.PushMissing allocates %v/op, want 0", allocs)
	}
}

// TestQuantizedModelIODeterministic: saving a model and loading it twice
// must yield byte-identical quantized panels — quantization is a pure
// function of the weight bytes, so every replica serving the same model
// file runs the same float32 network.
func TestQuantizedModelIODeterministic(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	load := func() *Quantized32 {
		lm, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		q, err := lm.Quantized32()
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	qa, qb := load(), load()
	for b := range qa.lstms {
		la, lb := qa.lstms[b], qb.lstms[b]
		if (la == nil) != (lb == nil) {
			t.Fatalf("branch %d presence differs", b)
		}
		if la == nil {
			continue
		}
		for i := range la.Wx.Data {
			if math.Float32bits(la.Wx.Data[i]) != math.Float32bits(lb.Wx.Data[i]) {
				t.Fatalf("branch %d Wx panel byte %d differs across loads", b, i)
			}
		}
		for i := range la.Wh.Data {
			if math.Float32bits(la.Wh.Data[i]) != math.Float32bits(lb.Wh.Data[i]) {
				t.Fatalf("branch %d Wh panel byte %d differs across loads", b, i)
			}
		}
		for i := range la.B {
			if math.Float32bits(la.B[i]) != math.Float32bits(lb.B[i]) {
				t.Fatalf("branch %d bias %d differs across loads", b, i)
			}
		}
	}
	for i := range qa.head.W.Data {
		if math.Float32bits(qa.head.W.Data[i]) != math.Float32bits(qb.head.W.Data[i]) {
			t.Fatalf("head panel byte %d differs across loads", i)
		}
	}
}

// TestLoadRejectsCorruptWeights: a model file carrying a NaN weight (bit
// corruption, diverged training) must fail at Load, before any stream
// serves from it.
func TestLoadRejectsCorruptWeights(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.head.W.Data[0] = math.NaN()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("Load accepted a model file with a NaN weight")
	}
	// The quantization layer is the second line of defense for models
	// corrupted in memory rather than on disk.
	if _, err := m.Quantized32(); err == nil {
		t.Fatal("Quantized32 accepted a NaN weight")
	}
}

// TestQuantizedCacheInvalidatedByFit: training updates weights, so the
// cached float32 form must be rebuilt afterwards.
func TestQuantizedCacheInvalidatedByFit(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	q1, err := m.Quantized32()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(305))
	exs := []Example{synthExample(rng, 24, true, m.Cfg.Window), synthExample(rng, 24, false, m.Cfg.Window)}
	if _, err := m.Fit(exs, TrainOptions{Epochs: 1, BatchSize: 2, Workers: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	q2, err := m.Quantized32()
	if err != nil {
		t.Fatal(err)
	}
	if q1 == q2 {
		t.Fatal("Quantized32 cache not invalidated by Fit")
	}
}
