package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestInputGradientsMatchNumeric(t *testing.T) {
	cfg := tinyConfig()
	cfg.Window = 4
	m, _ := New(cfg)
	rng := rand.New(rand.NewSource(17))
	T := 24
	x := make([][]float64, T)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	detStep := 2
	grads, err := m.InputGradients(x, detStep)
	if err != nil {
		t.Fatal(err)
	}
	hazardAt := func() float64 {
		f, err := m.Forward(toVecs(x))
		if err != nil {
			t.Fatal(err)
		}
		return f.Hazards[detStep]
	}
	const h = 1e-6
	for _, probe := range [][2]int{{0, 0}, {5, 1}, {12, 2}, {19, 0}, {21, 3}, {23, 0}} {
		ti, j := probe[0], probe[1]
		orig := x[ti][j]
		x[ti][j] = orig + h
		lp := hazardAt()
		x[ti][j] = orig - h
		lm := hazardAt()
		x[ti][j] = orig
		num := (lp - lm) / (2 * h)
		got := grads[ti][j]
		if math.Abs(num-got) > 1e-4*(1+math.Abs(num)+math.Abs(got)) {
			t.Fatalf("grad[%d][%d]: analytic %v numeric %v", ti, j, got, num)
		}
	}
	// Inputs after the detection step must have zero gradient (causality).
	base := (len(x)/cfg.PoolShort - cfg.Window + detStep) * cfg.PoolShort
	for ti := base + cfg.PoolShort; ti < T; ti++ {
		for j := range grads[ti] {
			if grads[ti][j] != 0 {
				t.Fatalf("non-causal gradient at step %d (det base %d)", ti, base)
			}
		}
	}
}

func TestInputGradientsZeroGradAfter(t *testing.T) {
	cfg := tinyConfig()
	m, _ := New(cfg)
	x := make([][]float64, 24)
	for i := range x {
		x[i] = []float64{1, 0, 0, 0}
	}
	if _, err := m.InputGradients(x, 0); err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Params() {
		for _, g := range p.G.Data {
			if g != 0 {
				t.Fatal("InputGradients must leave weight gradients zeroed")
			}
		}
	}
}

func TestInputGradientsBadStep(t *testing.T) {
	m, _ := New(tinyConfig())
	x := make([][]float64, 24)
	for i := range x {
		x[i] = []float64{0, 0, 0, 0}
	}
	if _, err := m.InputGradients(x, -1); err == nil {
		t.Fatal("negative step must error")
	}
	if _, err := m.InputGradients(x, 99); err == nil {
		t.Fatal("out-of-window step must error")
	}
}

func TestGroupSaliency(t *testing.T) {
	grads := [][]float64{{1, -2, 3}, {0, 4, -1}}
	groupOf := func(i int) string {
		if i < 2 {
			return "V"
		}
		return "A1"
	}
	s := GroupSaliency(grads, groupOf)
	if s["V"][0] != 3 || s["V"][1] != 4 {
		t.Fatalf("V saliency = %v", s["V"])
	}
	if s["A1"][0] != 3 || s["A1"][1] != 1 {
		t.Fatalf("A1 saliency = %v", s["A1"])
	}
}

func TestInputGradientsAuxiliaryLeadVisible(t *testing.T) {
	// After training on the synthetic task, the early "auxiliary" feature 1
	// must carry gradient mass well before the attack step — the Fig 11
	// effect.
	rng := rand.New(rand.NewSource(23))
	cfg := tinyConfig()
	m, _ := New(cfg)
	train := synthSet(rng, 40, 48, cfg.Window)
	if _, err := m.Fit(train, TrainOptions{Epochs: 20, BatchSize: 8, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	ex := synthExample(rng, 48, true, cfg.Window)
	grads, err := m.InputGradients(ex.X, ex.AttackStep)
	if err != nil {
		t.Fatal(err)
	}
	detBase := (len(ex.X)/cfg.PoolShort-cfg.Window+ex.AttackStep)*cfg.PoolShort - 1
	var auxMass float64
	for tIdx := 0; tIdx < detBase-4; tIdx++ { // strictly before the volumetric ramp
		auxMass += math.Abs(grads[tIdx][1])
	}
	if auxMass == 0 {
		t.Fatal("auxiliary lead feature carries no early gradient")
	}
}
