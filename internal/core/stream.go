package core

import (
	"math"

	"github.com/xatu-go/xatu/internal/nn"
)

// Stream is the online (deployment-time) form of the model: it consumes one
// base-resolution feature vector per step, advances the three LSTMs
// incrementally (pooled branches step when their aggregation buffers fill),
// and maintains the survival probability over a sliding detection window.
// Each Push is O(model) work — the paper's "each detection runs within
// 10 ms" property — independent of how long the stream has been running,
// and allocates nothing: all recurrent state, pooling buffers and kernel
// scratch are owned by the Stream and reused every step.
//
// A Stream is not safe for concurrent use.
type Stream struct {
	m *Model
	// per-branch recurrent state, allocated at construction so the hot
	// path never checks for nil and batch packing can always copy rows.
	h, c [numBranches]nn.Vec
	// pooling buffers for med/long branches
	bufSum   [numBranches]nn.Vec
	bufN     [numBranches]int
	seen     [numBranches]bool // branch has produced at least one state
	hazards  []float64         // ring buffer of the last Window hazards
	hazPos   int
	hazCount int
	// Rolling hazard-window sum, maintained without re-summing the ring
	// each step. The window total at ring position p is sumNew+suffix[p]:
	// sumNew is the left-to-right sum of the hazards written since the
	// ring last wrapped (the current epoch), and suffix[i] = hazards[i] +
	// suffix[i+1] is the suffix-sum table of the previous epoch, rebuilt
	// exactly once per Window steps at the wrap. No value is ever
	// subtracted out, so there is no float drift to bound, and both
	// quantities are pure functions of the checkpointed ring — a restored
	// stream rebuilds them bit-exactly (rebuildHazardSums).
	sumNew float64
	suffix []float64 // len Window+1, suffix[Window] == 0
	steps  int
	// lastX is the most recent real (non-missing) input, feeding the
	// carry-forward policy of PushMissing. Zero until the first real push.
	lastX nn.Vec
	// reusable scratch, never checkpointed: per-step kernel buffers, the
	// pooled-mean vector, the head input/output, and the synthesized
	// missing-step input.
	scratch  nn.StepScratch
	poolMean nn.Vec
	concat   nn.Vec
	headOut  nn.Vec
	missX    nn.Vec

	// Float32 serving mode (precision.go). When prec is PrecisionFloat32
	// the kernel-facing state below replaces h/c/bufSum/scratch — all of it
	// carved contiguously from one arena slab so a lane's gather/scatter
	// walks linear memory — while the survival accounting above (hazards,
	// sums, steps, lastX) stays float64 and the checkpoint format is
	// unchanged: float32 state widens exactly to float64 on write and
	// narrows exactly back on restore.
	prec       Precision
	q          *Quantized32
	h32, c32   [numBranches]nn.Vec32
	bufSum32   [numBranches]nn.Vec32
	x32        nn.Vec32 // current input, narrowed once per step
	poolMean32 nn.Vec32
	concat32   nn.Vec32
	headOut32  nn.Vec32 // panel-padded head output
	scratch32  nn.StepScratch32
}

// MissingPolicy selects what a Stream feeds itself for a step with no
// telemetry, so the pooled branches keep advancing in lockstep instead of
// silently desynchronizing from the short branch.
type MissingPolicy uint8

const (
	// MissingZero feeds an all-zero feature vector (treat the gap as "no
	// traffic observed"). The default.
	MissingZero MissingPolicy = iota
	// MissingCarry repeats the last real feature vector (assume telemetry
	// was lost, not that traffic stopped).
	MissingCarry
)

// NewStream returns a fresh online detector state for the model, serving
// at training precision (float64).
func NewStream(m *Model) *Stream {
	s, err := NewStreamPrec(m, PrecisionFloat64, nil)
	if err != nil {
		panic(err) // unreachable: the float64 path performs no quantization
	}
	return s
}

// NewStreamPrec returns a fresh online detector state serving at the
// given precision. For PrecisionFloat32 the model is quantized (cached on
// the Model; fails on non-finite weights) and all kernel-facing state is
// carved contiguously from the arena — pass the lane's shared arena so
// streams batched together sit in the same slabs; a nil arena allocates a
// private one.
func NewStreamPrec(m *Model, prec Precision, a *Arena) (*Stream, error) {
	s := &Stream{
		m:       m,
		prec:    prec,
		hazards: make([]float64, m.Cfg.Window),
		suffix:  make([]float64, m.Cfg.Window+1),
		missX:   nn.NewVec(m.Cfg.NumFeatures),
		lastX:   nn.NewVec(m.Cfg.NumFeatures),
	}
	if prec == PrecisionFloat32 {
		q, err := m.Quantized32()
		if err != nil {
			return nil, err
		}
		s.q = q
		if a == nil {
			a = &Arena{}
		}
		nf, hd := m.Cfg.NumFeatures, m.Cfg.Hidden
		nb := m.activeBranches()
		pad := 0 // padded pre-activation width, equal across branches (4·Hidden rows)
		for _, l := range q.lstms {
			if l != nil {
				pad = l.Wx.Padded()
				break
			}
		}
		headPad := q.head.Padded()
		// One contiguous slab per stream: recurrent state, pooling sums,
		// input/pool/concat staging, head output, and kernel scratch.
		slab := a.Alloc(nb*(2*hd+nf) + 2*nf + hd*nb + headPad + 2*pad)
		carve := func(n int) nn.Vec32 {
			v := slab[:n:n]
			slab = slab[n:]
			return v
		}
		for b, l := range q.lstms {
			if l == nil {
				continue
			}
			s.h32[b], s.c32[b], s.bufSum32[b] = carve(hd), carve(hd), carve(nf)
		}
		s.x32 = carve(nf)
		s.poolMean32 = carve(nf)
		s.concat32 = carve(hd * nb)
		s.headOut32 = carve(headPad)
		s.scratch32 = nn.NewStepScratch32(carve(pad), carve(pad))
		return s, nil
	}
	s.poolMean = nn.NewVec(m.Cfg.NumFeatures)
	s.concat = nn.NewVec(m.Cfg.Hidden * m.activeBranches())
	s.headOut = nn.NewVec(1)
	for b := range s.bufSum {
		if m.lstms[b] != nil {
			s.h[b] = nn.NewVec(m.Cfg.Hidden)
			s.c[b] = nn.NewVec(m.Cfg.Hidden)
			s.bufSum[b] = nn.NewVec(m.Cfg.NumFeatures)
		}
	}
	return s, nil
}

// Precision returns the precision the stream serves at.
func (s *Stream) Precision() Precision { return s.prec }

// Steps returns how many inputs have been consumed.
func (s *Stream) Steps() int { return s.steps }

// Model returns the model this stream runs over.
func (s *Stream) Model() *Model { return s.m }

// Warm reports whether every enabled branch has produced at least one
// hidden state, i.e. the survival output is fully informed.
func (s *Stream) Warm() bool {
	for b, l := range s.m.lstms {
		if l != nil && !s.seen[b] {
			return false
		}
	}
	return s.hazCount >= s.m.Cfg.Window
}

// Push consumes one normalized feature vector and returns the survival
// probability over the sliding detection window (1.0 while nothing has
// accumulated yet).
func (s *Stream) Push(x []float64) float64 {
	copy(s.lastX, x)
	return s.push(x)
}

// PushMissing advances the stream one step with no telemetry, substituting
// an input per the policy. Mitigates detector blindness across collector
// gaps: every branch still steps, the hazard ring still advances, and the
// stream stays warm.
func (s *Stream) PushMissing(policy MissingPolicy) float64 {
	if policy == MissingCarry {
		copy(s.missX, s.lastX)
	} else {
		s.missX.Zero()
	}
	return s.push(s.missX) // lastX deliberately untouched: it tracks real inputs
}

func (s *Stream) push(x []float64) float64 {
	if s.prec == PrecisionFloat32 {
		return s.push32(x)
	}
	v := nn.Vec(x)
	s.steps++
	for b, l := range s.m.lstms {
		if l == nil {
			continue
		}
		k := s.m.poolFactor(b)
		if k <= 1 {
			l.Step(s.h[b], s.c[b], v, &s.scratch)
			s.seen[b] = true
			continue
		}
		s.bufSum[b].Add(v)
		s.bufN[b]++
		if s.bufN[b] >= k {
			inv := 1 / float64(k)
			for j, sum := range s.bufSum[b] {
				s.poolMean[j] = sum * inv
			}
			l.Step(s.h[b], s.c[b], s.poolMean, &s.scratch)
			s.seen[b] = true
			s.bufSum[b].Zero()
			s.bufN[b] = 0
		}
	}
	// Head over the latest available states (zeros before a branch warms).
	off := 0
	for b, l := range s.m.lstms {
		if l == nil {
			continue
		}
		copy(s.concat[off:off+s.m.Cfg.Hidden], s.h[b])
		off += s.m.Cfg.Hidden
	}
	s.m.head.ForwardInto(s.concat, s.headOut)
	return s.recordHazard(nn.Softplus(s.headOut[0]))
}

// push32 is push through the quantized float32 kernels: the input is
// narrowed once, branch recurrences and the head run in float32, and only
// the final hazard widens back for the float64 survival accounting. The
// structure mirrors push statement for statement — same pooled-mean
// expression, same hazard recording — so the two precisions differ only
// by kernel arithmetic width.
func (s *Stream) push32(x []float64) float64 {
	s.x32 = nn.Narrow32(x, s.x32)
	s.steps++
	for b, l := range s.q.lstms {
		if l == nil {
			continue
		}
		k := s.m.poolFactor(b)
		if k <= 1 {
			l.Step32(s.h32[b], s.c32[b], s.x32, &s.scratch32)
			s.seen[b] = true
			continue
		}
		s.bufSum32[b].Add(s.x32)
		s.bufN[b]++
		if s.bufN[b] >= k {
			inv := 1 / float32(k)
			for j, sum := range s.bufSum32[b] {
				s.poolMean32[j] = sum * inv
			}
			l.Step32(s.h32[b], s.c32[b], s.poolMean32, &s.scratch32)
			s.seen[b] = true
			s.bufSum32[b].Zero()
			s.bufN[b] = 0
		}
	}
	off := 0
	for b, l := range s.q.lstms {
		if l == nil {
			continue
		}
		copy(s.concat32[off:off+s.m.Cfg.Hidden], s.h32[b])
		off += s.m.Cfg.Hidden
	}
	s.q.head.ForwardInto32(s.concat32, s.headOut32)
	return s.recordHazard(nn.Softplus(float64(s.headOut32[0])))
}

// recordHazard appends one hazard to the ring and returns the survival
// probability over the window, maintaining the rolling sum in O(1) with an
// exact O(Window) suffix rebuild once per wrap. Shared by the sequential
// push and the BatchRunner so both paths sum in the same order.
func (s *Stream) recordHazard(lam float64) float64 {
	s.hazards[s.hazPos] = lam
	s.sumNew += lam
	s.hazPos++
	if s.hazCount < len(s.hazards) {
		s.hazCount++
	}
	var total float64
	if s.hazPos == len(s.hazards) {
		// The ring wrapped: every slot now belongs to the current epoch,
		// so the window total is sumNew alone. Rebuild the suffix table
		// from the ring (the exact per-Window refresh) and start a new
		// epoch.
		s.hazPos = 0
		total = s.sumNew
		s.rebuildSuffix(0)
		s.sumNew = 0
	} else {
		total = s.sumNew + s.suffix[s.hazPos]
	}
	return math.Exp(-total)
}

// rebuildSuffix recomputes suffix[i] = hazards[i] + suffix[i+1] for
// i ∈ [from, Window). The recursion is fixed right-to-left so a rebuild
// from checkpointed ring contents reproduces the live table bit-exactly.
func (s *Stream) rebuildSuffix(from int) {
	s.suffix[len(s.hazards)] = 0
	for i := len(s.hazards) - 1; i >= from; i-- {
		s.suffix[i] = s.hazards[i] + s.suffix[i+1]
	}
}

// rebuildHazardSums reconstructs the rolling-sum state (sumNew and the
// suffix table) from the hazard ring and position. Both are pure functions
// of the checkpointed fields: sumNew is the left-to-right sum of the
// current epoch's slots [0, hazPos) — the same additions, in the same
// order, the live stream performed incrementally — and the suffix table
// covers the previous epoch's slots [hazPos, Window), untouched since the
// last wrap. Used on restore.
func (s *Stream) rebuildHazardSums() {
	for i := 0; i < s.hazPos; i++ {
		s.suffix[i] = 0
	}
	s.rebuildSuffix(s.hazPos)
	s.sumNew = 0
	for i := 0; i < s.hazPos; i++ {
		s.sumNew += s.hazards[i]
	}
}

// Reset clears all state, returning the stream to its initial condition
// (used when mitigation ends and detection restarts, §2.6).
func (s *Stream) Reset() {
	for b := range s.h {
		if s.h[b] != nil {
			s.h[b].Zero()
			s.c[b].Zero()
			s.bufSum[b].Zero()
		}
		if s.h32[b] != nil {
			s.h32[b].Zero()
			s.c32[b].Zero()
			s.bufSum32[b].Zero()
		}
		s.bufN[b] = 0
		s.seen[b] = false
	}
	for i := range s.hazards {
		s.hazards[i] = 0
	}
	for i := range s.suffix {
		s.suffix[i] = 0
	}
	s.sumNew = 0
	s.hazPos, s.hazCount, s.steps = 0, 0, 0
	s.lastX.Zero()
}
