package core

import (
	"math"

	"github.com/xatu-go/xatu/internal/nn"
)

// Stream is the online (deployment-time) form of the model: it consumes one
// base-resolution feature vector per step, advances the three LSTMs
// incrementally (pooled branches step when their aggregation buffers fill),
// and maintains the survival probability over a sliding detection window.
// Each Push is O(model) work — the paper's "each detection runs within
// 10 ms" property — independent of how long the stream has been running.
//
// A Stream is not safe for concurrent use.
type Stream struct {
	m *Model
	// per-branch recurrent state
	h, c [numBranches]nn.Vec
	// pooling buffers for med/long branches
	bufSum   [numBranches]nn.Vec
	bufN     [numBranches]int
	seen     [numBranches]bool // branch has produced at least one state
	hazards  []float64         // ring buffer of the last Window hazards
	hazPos   int
	hazCount int
	steps    int
	// lastX is the most recent real (non-missing) input, feeding the
	// carry-forward policy of PushMissing.
	lastX nn.Vec
}

// MissingPolicy selects what a Stream feeds itself for a step with no
// telemetry, so the pooled branches keep advancing in lockstep instead of
// silently desynchronizing from the short branch.
type MissingPolicy uint8

const (
	// MissingZero feeds an all-zero feature vector (treat the gap as "no
	// traffic observed"). The default.
	MissingZero MissingPolicy = iota
	// MissingCarry repeats the last real feature vector (assume telemetry
	// was lost, not that traffic stopped).
	MissingCarry
)

// NewStream returns a fresh online detector state for the model.
func NewStream(m *Model) *Stream {
	s := &Stream{m: m, hazards: make([]float64, m.Cfg.Window)}
	for b := range s.bufSum {
		if m.lstms[b] != nil {
			s.bufSum[b] = nn.NewVec(m.Cfg.NumFeatures)
		}
	}
	return s
}

// Steps returns how many inputs have been consumed.
func (s *Stream) Steps() int { return s.steps }

// Warm reports whether every enabled branch has produced at least one
// hidden state, i.e. the survival output is fully informed.
func (s *Stream) Warm() bool {
	for b, l := range s.m.lstms {
		if l != nil && !s.seen[b] {
			return false
		}
	}
	return s.hazCount >= s.m.Cfg.Window
}

// Push consumes one normalized feature vector and returns the survival
// probability over the sliding detection window (1.0 while nothing has
// accumulated yet).
func (s *Stream) Push(x []float64) float64 {
	if s.lastX == nil {
		s.lastX = nn.NewVec(len(x))
	}
	copy(s.lastX, x)
	return s.push(x)
}

// PushMissing advances the stream one step with no telemetry, substituting
// an input per the policy. Mitigates detector blindness across collector
// gaps: every branch still steps, the hazard ring still advances, and the
// stream stays warm.
func (s *Stream) PushMissing(policy MissingPolicy) float64 {
	x := make([]float64, s.m.Cfg.NumFeatures)
	if policy == MissingCarry && s.lastX != nil {
		copy(x, s.lastX)
	}
	return s.push(x) // lastX deliberately untouched: it tracks real inputs
}

func (s *Stream) push(x []float64) float64 {
	v := nn.Vec(x)
	s.steps++
	for b, l := range s.m.lstms {
		if l == nil {
			continue
		}
		k := s.m.poolFactor(b)
		if k <= 1 {
			s.h[b], s.c[b] = l.Step(s.h[b], s.c[b], v)
			s.seen[b] = true
			continue
		}
		s.bufSum[b].Add(v)
		s.bufN[b]++
		if s.bufN[b] >= k {
			mean := s.bufSum[b].Clone()
			mean.Scale(1 / float64(k))
			s.h[b], s.c[b] = l.Step(s.h[b], s.c[b], mean)
			s.seen[b] = true
			s.bufSum[b].Zero()
			s.bufN[b] = 0
		}
	}
	// Head over the latest available states (zeros before a branch warms).
	concat := nn.NewVec(s.m.Cfg.Hidden * s.m.activeBranches())
	off := 0
	for b, l := range s.m.lstms {
		if l == nil {
			continue
		}
		if s.h[b] != nil {
			copy(concat[off:off+s.m.Cfg.Hidden], s.h[b])
		}
		off += s.m.Cfg.Hidden
	}
	z := s.m.head.Forward(concat)[0]
	lam := nn.Softplus(z)
	s.hazards[s.hazPos] = lam
	s.hazPos = (s.hazPos + 1) % len(s.hazards)
	if s.hazCount < len(s.hazards) {
		s.hazCount++
	}
	var sum float64
	for i := 0; i < s.hazCount; i++ {
		sum += s.hazards[i]
	}
	return math.Exp(-sum)
}

// Reset clears all state, returning the stream to its initial condition
// (used when mitigation ends and detection restarts, §2.6).
func (s *Stream) Reset() {
	for b := range s.h {
		s.h[b], s.c[b] = nil, nil
		if s.bufSum[b] != nil {
			s.bufSum[b].Zero()
		}
		s.bufN[b] = 0
		s.seen[b] = false
	}
	for i := range s.hazards {
		s.hazards[i] = 0
	}
	s.hazPos, s.hazCount, s.steps = 0, 0, 0
	s.lastX = nil
}
