package core

import (
	"testing"

	"github.com/xatu-go/xatu/internal/features"
	"github.com/xatu-go/xatu/internal/nn"
)

// benchModel mirrors the deployed detector shape: 273 features, the
// default hidden width and pooling schedule.
func benchModel(b *testing.B) *Model {
	b.Helper()
	cfg := DefaultConfig(features.NumFeatures)
	cfg.Hidden = 16
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchInput() []float64 {
	x := make([]float64, features.NumFeatures)
	for i := 0; i < 8; i++ {
		x[i*13] = 1.5
	}
	return x
}

// BenchmarkStreamPush is the sequential online hot path: one full detector
// step (three branches + head + hazard window) with zero allocations.
func BenchmarkStreamPush(b *testing.B) {
	s := NewStream(benchModel(b))
	x := benchInput()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(x)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
}

// benchBatchRunnerPush advances B streams sharing one model per op;
// steps/sec counts stream-steps so the batched path compares directly with
// BenchmarkStreamPush.
func benchBatchRunnerPush(b *testing.B, B int) {
	m := benchModel(b)
	r := NewBatchRunner(m)
	streams := make([]*Stream, B)
	xs := make([][]float64, B)
	for i := range streams {
		streams[i] = NewStream(m)
		xs[i] = benchInput()
	}
	out := make([]float64, B)
	// Warm past the longest pooling boundary so every branch's packing
	// buffers exist and b.N ops report true steady state.
	for i := 0; i < m.Cfg.PoolLong; i++ {
		r.Push(streams, xs, out)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(streams, xs, out)
	}
	b.ReportMetric(float64(b.N)*float64(B)/b.Elapsed().Seconds(), "steps/sec")
}

func BenchmarkBatchRunnerPush8(b *testing.B)  { benchBatchRunnerPush(b, 8) }
func BenchmarkBatchRunnerPush64(b *testing.B) { benchBatchRunnerPush(b, 64) }

// BenchmarkStreamPushF32 is the sequential float32 online hot path.
func BenchmarkStreamPushF32(b *testing.B) {
	s, err := NewStreamPrec(benchModel(b), PrecisionFloat32, nil)
	if err != nil {
		b.Fatal(err)
	}
	x := benchInput()
	s.Push(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(x)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
}

// benchBatchRunnerPush32 is benchBatchRunnerPush through the float32 lane
// runner with arena'd stream state; steps/sec compares directly with the
// float64 rows.
func benchBatchRunnerPush32(b *testing.B, B int) {
	m := benchModel(b)
	r, err := NewBatchRunner32(m)
	if err != nil {
		b.Fatal(err)
	}
	streams := make([]*Stream, B)
	xs := make([][]float64, B)
	for i := range streams {
		streams[i] = r.NewStream()
		xs[i] = benchInput()
	}
	out := make([]float64, B)
	for i := 0; i < m.Cfg.PoolLong; i++ {
		r.Push(streams, xs, out) // warm every branch's packing buffers
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(streams, xs, out)
	}
	b.ReportMetric(float64(b.N)*float64(B)/b.Elapsed().Seconds(), "steps/sec")
}

func BenchmarkBatchRunnerPush8F32(b *testing.B)  { benchBatchRunnerPush32(b, 8) }
func BenchmarkBatchRunnerPush64F32(b *testing.B) { benchBatchRunnerPush32(b, 64) }

// benchTrainSet builds n uniform-length training series at the deployed
// feature width: 2 pooled-long steps of lookback (120 base steps) with the
// default detection window. Rows follow the benchInput convention — 8 of
// 273 hierarchical counters active — which drives the sparse
// input-projection path, as live traffic features do. dense=true fills
// every feature instead, pinning the trainer to the dense kernels.
func benchTrainSet(m *Model, n int, dense bool) []Example {
	const T = 120
	out := make([]Example, n)
	for i := range out {
		x := make([][]float64, T)
		for t := range x {
			row := make([]float64, m.Cfg.NumFeatures)
			if dense {
				for j := range row {
					row[j] = 0.1 + float64(j%7)
				}
			} else {
				for j := 0; j < 8; j++ {
					row[j*13] = 1.5
				}
			}
			if i%2 == 0 && t > T-20 {
				row[0] = 3 // volumetric ramp on attack examples
			}
			x[t] = row
		}
		out[i] = Example{X: x, Attack: i%2 == 0, AttackStep: m.Cfg.Window / 2}
	}
	return out
}

// BenchmarkFitScalarBaseline is the pre-batching trainer: one scalar
// TrainExample per example (allocating tapes as it goes), replica merge and
// one Adam step per mini-batch. One op = one epoch; examples/sec compares
// directly with BenchmarkFitBatched.
func BenchmarkFitScalarBaseline(b *testing.B) {
	m := benchModel(b)
	examples := benchTrainSet(m, 32, false)
	const batch = 8
	opt := nn.NewAdam(m.Cfg.LearningRate, m.Params())
	replica := m.Replica()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < len(examples); lo += batch {
			hi := lo + batch
			if hi > len(examples) {
				hi = len(examples)
			}
			for k := lo; k < hi; k++ {
				if _, err := replica.TrainExample(&examples[k]); err != nil {
					b.Fatal(err)
				}
			}
			replica.MergeGradsInto(m)
			opt.Step(1 / float64(hi-lo))
		}
	}
	b.ReportMetric(float64(b.N)*float64(len(examples))/b.Elapsed().Seconds(), "examples/sec")
}

// benchFitBatched drives the batched trainer epoch loop directly (one op =
// one epoch over 32 examples) so the steady state is visible to
// ReportAllocs: after the first epoch grows the scratch, every epoch runs
// allocation-free at workers=1.
func benchFitBatched(b *testing.B, workers int, dense bool) {
	m := benchModel(b)
	examples := benchTrainSet(m, 32, dense)
	f := m.newFitter(examples, TrainOptions{Epochs: 1, BatchSize: 8, Workers: workers, Seed: 1})
	if _, err := f.runEpoch(examples); err != nil { // warm the grow-only scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.runEpoch(examples); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*float64(len(examples))/b.Elapsed().Seconds(), "examples/sec")
}

func BenchmarkFitBatched(b *testing.B)         { benchFitBatched(b, 1, false) }
func BenchmarkFitBatchedWorkers2(b *testing.B) { benchFitBatched(b, 2, false) }

// BenchmarkFitBatchedDense forces fully dense feature rows so the density
// switch keeps the register-blocked dense kernels: the honest lower bound
// of the batched speedup when no input sparsity is available.
func BenchmarkFitBatchedDense(b *testing.B) { benchFitBatched(b, 1, true) }
