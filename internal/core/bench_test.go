package core

import (
	"testing"

	"github.com/xatu-go/xatu/internal/features"
)

// benchModel mirrors the deployed detector shape: 273 features, the
// default hidden width and pooling schedule.
func benchModel(b *testing.B) *Model {
	b.Helper()
	cfg := DefaultConfig(features.NumFeatures)
	cfg.Hidden = 16
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchInput() []float64 {
	x := make([]float64, features.NumFeatures)
	for i := 0; i < 8; i++ {
		x[i*13] = 1.5
	}
	return x
}

// BenchmarkStreamPush is the sequential online hot path: one full detector
// step (three branches + head + hazard window) with zero allocations.
func BenchmarkStreamPush(b *testing.B) {
	s := NewStream(benchModel(b))
	x := benchInput()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(x)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
}

// benchBatchRunnerPush advances B streams sharing one model per op;
// steps/sec counts stream-steps so the batched path compares directly with
// BenchmarkStreamPush.
func benchBatchRunnerPush(b *testing.B, B int) {
	m := benchModel(b)
	r := NewBatchRunner(m)
	streams := make([]*Stream, B)
	xs := make([][]float64, B)
	for i := range streams {
		streams[i] = NewStream(m)
		xs[i] = benchInput()
	}
	out := make([]float64, B)
	// Warm past the longest pooling boundary so every branch's packing
	// buffers exist and b.N ops report true steady state.
	for i := 0; i < m.Cfg.PoolLong; i++ {
		r.Push(streams, xs, out)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(streams, xs, out)
	}
	b.ReportMetric(float64(b.N)*float64(B)/b.Elapsed().Seconds(), "steps/sec")
}

func BenchmarkBatchRunnerPush8(b *testing.B)  { benchBatchRunnerPush(b, 8) }
func BenchmarkBatchRunnerPush64(b *testing.B) { benchBatchRunnerPush(b, 64) }

// BenchmarkStreamPushF32 is the sequential float32 online hot path.
func BenchmarkStreamPushF32(b *testing.B) {
	s, err := NewStreamPrec(benchModel(b), PrecisionFloat32, nil)
	if err != nil {
		b.Fatal(err)
	}
	x := benchInput()
	s.Push(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(x)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
}

// benchBatchRunnerPush32 is benchBatchRunnerPush through the float32 lane
// runner with arena'd stream state; steps/sec compares directly with the
// float64 rows.
func benchBatchRunnerPush32(b *testing.B, B int) {
	m := benchModel(b)
	r, err := NewBatchRunner32(m)
	if err != nil {
		b.Fatal(err)
	}
	streams := make([]*Stream, B)
	xs := make([][]float64, B)
	for i := range streams {
		streams[i] = r.NewStream()
		xs[i] = benchInput()
	}
	out := make([]float64, B)
	for i := 0; i < m.Cfg.PoolLong; i++ {
		r.Push(streams, xs, out) // warm every branch's packing buffers
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(streams, xs, out)
	}
	b.ReportMetric(float64(b.N)*float64(B)/b.Elapsed().Seconds(), "steps/sec")
}

func BenchmarkBatchRunnerPush8F32(b *testing.B)  { benchBatchRunnerPush32(b, 8) }
func BenchmarkBatchRunnerPush64F32(b *testing.B) { benchBatchRunnerPush32(b, 64) }
