// Package survival implements the survival-analysis machinery Xatu uses for
// early detection (§4.2 and Appendix C of the paper): the hazard-rate to
// survival-probability transform, the SAFE loss (Zheng, Yuan & Wu, AAAI'19)
// with its analytic gradient, and threshold calibration under a scrubbing
// overhead bound.
//
// Terminology follows the paper: λ_t is the instantaneous attack probability
// (hazard rate) at step t, and S_t = exp(-Σ_{k≤t} λ_k) is the probability
// that no attack has occurred by time t. Xatu raises an alert once S_t drops
// below a calibrated threshold.
package survival

import (
	"errors"
	"math"
)

// Survival converts a hazard-rate sequence into the cumulative no-attack
// probability sequence S_t = exp(-Σ_{k≤t} λ_k). All hazards must be ≥ 0;
// the output is non-increasing and lies in (0, 1].
func Survival(hazards []float64) []float64 {
	out := make([]float64, len(hazards))
	var cum float64
	for t, l := range hazards {
		if l < 0 {
			l = 0 // defensive: hazards come through Softplus and are ≥0 by construction
		}
		cum += l
		out[t] = math.Exp(-cum)
	}
	return out
}

// Loss computes the SAFE negative log-likelihood for one time series
// (Appendix C). hazards covers steps 1..t_i (the series is truncated at the
// label time); attack says whether the series carries an attack label.
//
//	attack:    L = Λ − ln(e^Λ − 1)  = −ln(1 − S_{t_i})   (detect any time ≤ t_i)
//	no attack: L = Λ                = −ln S_{t_i}         (never detect)
//
// where Λ = Σ λ_t. The function returns the loss and dL/dλ_t, which is
// constant across t (this is what lets the model place detection anywhere
// before the ground-truth time).
func Loss(hazards []float64, attack bool) (loss float64, dHazard float64) {
	var lam float64
	for _, l := range hazards {
		lam += l
	}
	if !attack {
		return lam, 1
	}
	// Attack case. L = Λ − ln(e^Λ − 1). Guard small Λ: e^Λ−1 ≈ Λ, loss ≈ Λ − lnΛ.
	em1 := math.Expm1(lam)
	if em1 <= 0 {
		// Λ == 0 exactly: infinite loss; return a large finite surrogate with
		// a strong downhill gradient so training recovers.
		return 745, -1e6
	}
	loss = lam - math.Log(em1)
	// dL/dΛ = 1 − e^Λ/(e^Λ−1) = −1/(e^Λ−1)
	dHazard = -1 / em1
	return loss, dHazard
}

// BCELoss is the classification baseline used by the "Xatu w/o survival
// model" ablation (§6.3, Fig 18(d)): per-step binary cross-entropy between
// the instantaneous attack probability p_t = 1−exp(−λ_t) and a per-step
// label that is 1 only at the ground-truth detection step.
// It returns the total loss and dL/dλ_t per step.
func BCELoss(hazards []float64, attackStep int) (loss float64, dHazards []float64) {
	dHazards = make([]float64, len(hazards))
	return BCELossInto(hazards, attackStep, dHazards), dHazards
}

// BCELossInto is BCELoss writing the per-step gradients into the
// caller-owned dHazards (len ≥ len(hazards)), allocating nothing — the
// form the batched trainer's steady-state loop uses.
func BCELossInto(hazards []float64, attackStep int, dHazards []float64) (loss float64) {
	const eps = 1e-12
	for t, l := range hazards {
		p := -math.Expm1(-l) // 1 − e^{−λ}
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		y := 0.0
		if t == attackStep {
			y = 1
		}
		loss += -(y*math.Log(p) + (1-y)*math.Log(1-p))
		// dL/dp = (p−y)/(p(1−p)); dp/dλ = e^{−λ} = 1−p, so dL/dλ = (p−y)/p.
		dHazards[t] = (p - y) / p
	}
	return loss
}

// ErrNoThreshold is returned by Calibrate when no threshold satisfies the
// overhead bound.
var ErrNoThreshold = errors.New("survival: no threshold satisfies the overhead bound")

// CalibrationPoint is one candidate threshold with the validation metrics
// it achieves. Effectiveness and Overhead are fractions in [0,1] (overhead
// may exceed 1 when far more extraneous than anomalous traffic is scrubbed).
type CalibrationPoint struct {
	Threshold     float64
	Effectiveness float64 // median mitigation effectiveness across attacks
	Overhead      float64 // 75th-percentile cumulative per-customer overhead
}

// Calibrate picks the alert threshold on S_t from candidates: among points
// whose Overhead ≤ bound it returns the one with maximum Effectiveness
// (ties broken toward the higher threshold, i.e. earlier detection).
// This mirrors §5.3: "identify the threshold in the validation data which
// maximizes mitigation effectiveness, while keeping the scrubbing overhead
// for 75% of customers below a given bound."
func Calibrate(points []CalibrationPoint, bound float64) (CalibrationPoint, error) {
	best := CalibrationPoint{Threshold: math.NaN(), Effectiveness: -1}
	for _, p := range points {
		if p.Overhead > bound {
			continue
		}
		if p.Effectiveness > best.Effectiveness ||
			(p.Effectiveness == best.Effectiveness && p.Threshold > best.Threshold) {
			best = p
		}
	}
	if math.IsNaN(best.Threshold) {
		return CalibrationPoint{}, ErrNoThreshold
	}
	return best, nil
}

// DetectStep returns the first step at which S_t < threshold, or -1 when
// the series never crosses. This is Xatu's alert rule.
func DetectStep(s []float64, threshold float64) int {
	for t, v := range s {
		if v < threshold {
			return t
		}
	}
	return -1
}
