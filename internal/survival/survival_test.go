package survival

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestSurvivalMonotoneAndBounded(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%30 + 1
		rng := rand.New(rand.NewSource(seed))
		hz := make([]float64, n)
		for i := range hz {
			hz[i] = math.Abs(rng.NormFloat64())
		}
		s := Survival(hz)
		prev := 1.0
		for _, v := range s {
			if v <= 0 || v > 1 {
				return false
			}
			if v > prev+1e-15 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSurvivalMatchesExpSum(t *testing.T) {
	hz := []float64{0.1, 0.2, 0.3}
	s := Survival(hz)
	want := []float64{math.Exp(-0.1), math.Exp(-0.3), math.Exp(-0.6)}
	for i := range want {
		if !almostEq(s[i], want[i], 1e-12) {
			t.Fatalf("S[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestSurvivalClampsNegativeHazard(t *testing.T) {
	s := Survival([]float64{-5, 0.5})
	if s[0] != 1 {
		t.Fatalf("negative hazard must be treated as 0, got S=%v", s[0])
	}
}

func TestLossNonAttackIsSumOfHazards(t *testing.T) {
	loss, g := Loss([]float64{0.2, 0.3, 0.5}, false)
	if !almostEq(loss, 1.0, 1e-12) || g != 1 {
		t.Fatalf("got loss=%v grad=%v", loss, g)
	}
}

func TestLossAttackMatchesNegLog1mS(t *testing.T) {
	hz := []float64{0.4, 0.1, 0.25}
	loss, _ := Loss(hz, true)
	s := Survival(hz)
	want := -math.Log(1 - s[len(s)-1])
	if !almostEq(loss, want, 1e-12) {
		t.Fatalf("loss=%v want %v", loss, want)
	}
}

func TestLossGradientNumeric(t *testing.T) {
	// dL/dλ_t must match finite differences for both label values, and be
	// identical across t (the "detect any time before ground truth" design).
	for _, attack := range []bool{true, false} {
		hz := []float64{0.3, 0.7, 0.2}
		_, g := Loss(hz, attack)
		for i := range hz {
			h := 1e-7
			hp := append([]float64(nil), hz...)
			hp[i] += h
			lp, _ := Loss(hp, attack)
			hm := append([]float64(nil), hz...)
			hm[i] -= h
			lm, _ := Loss(hm, attack)
			num := (lp - lm) / (2 * h)
			if !almostEq(num, g, 1e-5) {
				t.Fatalf("attack=%v step %d: analytic %v numeric %v", attack, i, g, num)
			}
		}
	}
}

func TestLossAttackGradientAlwaysNegative(t *testing.T) {
	// For attack series the gradient must push hazards up (negative dL/dλ).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hz := make([]float64, 5)
		for i := range hz {
			hz[i] = math.Abs(rng.NormFloat64()) * 0.5
		}
		_, g := Loss(hz, true)
		return g < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLossZeroHazardAttackFiniteSurrogate(t *testing.T) {
	loss, g := Loss([]float64{0, 0}, true)
	if math.IsInf(loss, 0) || math.IsNaN(loss) {
		t.Fatal("loss must be a finite surrogate")
	}
	if g >= 0 {
		t.Fatal("gradient must push hazards up")
	}
}

func TestBCELossGradientNumeric(t *testing.T) {
	hz := []float64{0.2, 0.9, 0.4}
	_, grads := BCELoss(hz, 1)
	for i := range hz {
		h := 1e-7
		hp := append([]float64(nil), hz...)
		hp[i] += h
		lp, _ := BCELoss(hp, 1)
		hm := append([]float64(nil), hz...)
		hm[i] -= h
		lm, _ := BCELoss(hm, 1)
		num := (lp - lm) / (2 * h)
		if !almostEq(num, grads[i], 1e-4) {
			t.Fatalf("step %d: analytic %v numeric %v", i, grads[i], num)
		}
	}
}

func TestBCELossNoAttack(t *testing.T) {
	// attackStep = -1 means no step is labeled positive.
	loss, grads := BCELoss([]float64{0.1, 0.1}, -1)
	if loss <= 0 {
		t.Fatal("loss must be positive for nonzero hazards")
	}
	for _, g := range grads {
		if g <= 0 {
			t.Fatal("no-attack gradient must push hazards down (positive dL/dλ)")
		}
	}
}

func TestCalibratePicksMaxEffectivenessUnderBound(t *testing.T) {
	pts := []CalibrationPoint{
		{Threshold: 0.9, Effectiveness: 0.95, Overhead: 0.05},
		{Threshold: 0.5, Effectiveness: 0.80, Overhead: 0.001},
		{Threshold: 0.7, Effectiveness: 0.90, Overhead: 0.009},
	}
	got, err := Calibrate(pts, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if got.Threshold != 0.7 {
		t.Fatalf("got threshold %v, want 0.7", got.Threshold)
	}
}

func TestCalibrateTieBreaksTowardEarlierDetection(t *testing.T) {
	pts := []CalibrationPoint{
		{Threshold: 0.3, Effectiveness: 0.9, Overhead: 0},
		{Threshold: 0.6, Effectiveness: 0.9, Overhead: 0},
	}
	got, err := Calibrate(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Threshold != 0.6 {
		t.Fatalf("tie must break to higher threshold, got %v", got.Threshold)
	}
}

func TestCalibrateNoFeasiblePoint(t *testing.T) {
	_, err := Calibrate([]CalibrationPoint{{Threshold: 0.5, Effectiveness: 1, Overhead: 0.5}}, 0.1)
	if err != ErrNoThreshold {
		t.Fatalf("got %v, want ErrNoThreshold", err)
	}
}

func TestDetectStep(t *testing.T) {
	s := []float64{0.99, 0.8, 0.4, 0.1}
	if got := DetectStep(s, 0.5); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
	if got := DetectStep(s, 0.05); got != -1 {
		t.Fatalf("got %d, want -1", got)
	}
	if got := DetectStep(nil, 0.5); got != -1 {
		t.Fatalf("empty series: got %d, want -1", got)
	}
}

func TestDetectStepConsistentWithSurvivalMonotonicity(t *testing.T) {
	// Because S is non-increasing, once detected the detection persists:
	// every step after DetectStep also satisfies S < threshold. This is the
	// "consistent detection" goal from §4.2.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hz := make([]float64, 20)
		for i := range hz {
			hz[i] = math.Abs(rng.NormFloat64()) * 0.2
		}
		s := Survival(hz)
		th := rng.Float64()
		d := DetectStep(s, th)
		if d < 0 {
			return true
		}
		for t2 := d; t2 < len(s); t2++ {
			if s[t2] >= th {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
