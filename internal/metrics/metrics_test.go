package metrics

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

var (
	c1 = netip.MustParseAddr("23.1.1.1")
	c2 = netip.MustParseAddr("23.1.1.2")
)

func TestEffectivenessBounds(t *testing.T) {
	cases := []struct {
		o    AttackOutcome
		want float64
	}{
		{AttackOutcome{Anomalous: 100, ScrubbedAnomalous: 60, Detected: true}, 0.6},
		{AttackOutcome{Anomalous: 100, ScrubbedAnomalous: 60, Detected: false}, 0},
		{AttackOutcome{Anomalous: 100, ScrubbedAnomalous: 150, Detected: true}, 1}, // clamp
		{AttackOutcome{Anomalous: 0, Detected: true}, 1},
		{AttackOutcome{Anomalous: 0, Detected: false}, 0},
		{AttackOutcome{Anomalous: 100, ScrubbedAnomalous: -5, Detected: true}, 0}, // clamp
	}
	for i, c := range cases {
		if got := c.o.Effectiveness(); got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestIdealDetectorInvariant(t *testing.T) {
	// DESIGN.md: an ideal detector (everything scrubbed, nothing extra)
	// yields effectiveness 1 and overhead 0.
	outs := []AttackOutcome{
		{Customer: c1, Anomalous: 500, ScrubbedAnomalous: 500, Extraneous: 0, Detected: true},
		{Customer: c1, Anomalous: 300, ScrubbedAnomalous: 300, Extraneous: 0, Detected: true},
	}
	for _, e := range EffectivenessSeries(outs) {
		if e != 1 {
			t.Fatalf("effectiveness = %v", e)
		}
	}
	ov := CumulativeOverheads(outs)
	if len(ov) != 1 || ov[0] != 0 {
		t.Fatalf("overheads = %v", ov)
	}
}

func TestCumulativeOverheadGroupsByCustomer(t *testing.T) {
	outs := []AttackOutcome{
		{Customer: c1, Anomalous: 100, Extraneous: 10},
		{Customer: c1, Anomalous: 300, Extraneous: 30},
		{Customer: c2, Anomalous: 200, Extraneous: 2},
	}
	ov := CumulativeOverheads(outs)
	if len(ov) != 2 {
		t.Fatalf("len = %d", len(ov))
	}
	// Deterministic order: c1 before c2.
	if math.Abs(ov[0]-0.1) > 1e-12 || math.Abs(ov[1]-0.01) > 1e-12 {
		t.Fatalf("overheads = %v", ov)
	}
}

func TestCumulativeOverheadSkipsZeroAnomalous(t *testing.T) {
	outs := []AttackOutcome{{Customer: c1, Anomalous: 0, Extraneous: 50}}
	if got := CumulativeOverheads(outs); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestDelaySeries(t *testing.T) {
	outs := []AttackOutcome{
		{Detected: true, Delay: 5 * time.Minute},
		{Detected: true, Delay: -2 * time.Minute},
		{Detected: false},
	}
	d := DelaySeries(outs, 15*time.Minute)
	if d[0] != 5 || d[1] != -2 || d[2] != 15 {
		t.Fatalf("got %v", d)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("extremes")
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Fatalf("median = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty input must be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.P10 != 10 || s.P50 != 50 || s.P90 != 90 || s.N != 101 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	pts := ROC(scores, labels)
	if auc := AUC(pts); auc != 1 {
		t.Fatalf("AUC = %v, want 1", auc)
	}
}

func TestROCRandomClassifierNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 4000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Float64() < 0.5
	}
	auc := AUC(ROC(scores, labels))
	if auc < 0.45 || auc > 0.55 {
		t.Fatalf("AUC = %v, want ≈0.5", auc)
	}
}

func TestROCInvertedClassifier(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	if auc := AUC(ROC(scores, labels)); auc != 0 {
		t.Fatalf("AUC = %v, want 0", auc)
	}
}

func TestROCHandlesTies(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	pts := ROC(scores, labels)
	// Ties collapse into one step from (0,0) to (1,1): AUC 0.5.
	if auc := AUC(pts); auc != 0.5 {
		t.Fatalf("AUC = %v, want 0.5", auc)
	}
}

func TestROCDegenerateInputs(t *testing.T) {
	if ROC(nil, nil) != nil {
		t.Fatal("empty input must return nil")
	}
	if ROC([]float64{1}, []bool{true, false}) != nil {
		t.Fatal("mismatched lengths must return nil")
	}
}

func TestConfusion(t *testing.T) {
	scores := []float64{0.9, 0.4, 0.6, 0.1}
	labels := []bool{true, true, false, false}
	c := Confusion(scores, labels, 0.5)
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.FPR() != 0.5 || c.TPR() != 0.5 {
		t.Fatalf("rates: FPR=%v TPR=%v", c.FPR(), c.TPR())
	}
	empty := ConfusionCounts{}
	if empty.FPR() != 0 || empty.TPR() != 0 {
		t.Fatal("zero-division guards")
	}
}

func TestOverheadMonotoneInEarliness(t *testing.T) {
	// DESIGN.md invariant: detecting earlier (more pre-anomaly scrubbing)
	// can only grow the extraneous area, hence the overhead.
	base := AttackOutcome{Customer: c1, Anomalous: 1000, ScrubbedAnomalous: 1000, Detected: true}
	prev := -1.0
	for early := 0; early <= 10; early++ {
		o := base
		o.Extraneous = float64(early) * 37 // extra pre-anomaly traffic grows with earliness
		ov := CumulativeOverheads([]AttackOutcome{o})[0]
		if ov < prev {
			t.Fatalf("overhead decreased: %v -> %v", prev, ov)
		}
		prev = ov
	}
}
