// Package metrics implements the paper's evaluation measures (§2.3, §2.4,
// §6): mitigation effectiveness (B/A), scrubbing overhead (C/A, cumulative
// per customer), detection delay, percentile summaries, and ROC/AUC.
package metrics

import (
	"math"
	"net/netip"
	"sort"
	"time"

	"github.com/xatu-go/xatu/internal/ddos"
)

// AttackOutcome is the accounting for one ground-truth attack under one
// detection system, in bytes.
type AttackOutcome struct {
	Customer netip.Addr
	Type     ddos.AttackType
	// Anomalous is area A: traffic matching the signature from the anomaly
	// start until mitigation end.
	Anomalous float64
	// ScrubbedAnomalous is area B: the part of A diverted to scrubbing.
	ScrubbedAnomalous float64
	// Extraneous is area C: matching traffic scrubbed outside the anomalous
	// window, attributed to this attack's customer.
	Extraneous float64
	// Detected reports whether the system raised any alert for this attack.
	Detected bool
	// Delay is detection time minus anomaly start (negative = early).
	// Only meaningful when Detected.
	Delay time.Duration
}

// Effectiveness returns B/A as a fraction in [0,1]; undetected attacks
// score 0. A zero-A attack (no anomalous traffic observed) scores 1 when
// detected, else 0.
func (o AttackOutcome) Effectiveness() float64 {
	if !o.Detected {
		return 0
	}
	if o.Anomalous <= 0 {
		return 1
	}
	e := o.ScrubbedAnomalous / o.Anomalous
	if e > 1 {
		e = 1
	}
	if e < 0 {
		e = 0
	}
	return e
}

// EffectivenessSeries maps outcomes to their effectiveness values.
func EffectivenessSeries(outcomes []AttackOutcome) []float64 {
	out := make([]float64, len(outcomes))
	for i, o := range outcomes {
		out[i] = o.Effectiveness()
	}
	return out
}

// DelaySeries returns detection delays in minutes. Undetected attacks are
// assigned missPenalty (the paper treats "no detection until the end of the
// time series" as the window tail, e.g. 15 minutes).
func DelaySeries(outcomes []AttackOutcome, missPenalty time.Duration) []float64 {
	out := make([]float64, len(outcomes))
	for i, o := range outcomes {
		if o.Detected {
			out[i] = o.Delay.Minutes()
		} else {
			out[i] = missPenalty.Minutes()
		}
	}
	return out
}

// CumulativeOverheads computes the per-customer cumulative scrubbing
// overhead Σ_at C / Σ_at A (§2.4), returning one value per customer with at
// least one attack. Customers whose anomalous traffic sums to zero are
// skipped.
func CumulativeOverheads(outcomes []AttackOutcome) []float64 {
	type acc struct{ c, a float64 }
	byCustomer := make(map[netip.Addr]*acc)
	for _, o := range outcomes {
		a := byCustomer[o.Customer]
		if a == nil {
			a = &acc{}
			byCustomer[o.Customer] = a
		}
		a.c += o.Extraneous
		a.a += o.Anomalous
	}
	// Deterministic order for reproducible percentile output.
	addrs := make([]netip.Addr, 0, len(byCustomer))
	for addr := range byCustomer {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	out := make([]float64, 0, len(addrs))
	for _, addr := range addrs {
		a := byCustomer[addr]
		if a.a <= 0 {
			continue
		}
		out = append(out, a.c/a.a)
	}
	return out
}

// Quantile returns the q-quantile (0..1) of xs using linear interpolation,
// without modifying xs. NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Summary is the percentile box the paper plots (10/25/50/75/90).
type Summary struct {
	P10, P25, P50, P75, P90 float64
	N                       int
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	return Summary{
		P10: Quantile(xs, 0.10),
		P25: Quantile(xs, 0.25),
		P50: Quantile(xs, 0.50),
		P75: Quantile(xs, 0.75),
		P90: Quantile(xs, 0.90),
		N:   len(xs),
	}
}

// ROCPoint is one point on a ROC curve.
type ROCPoint struct {
	Threshold float64
	FPR, TPR  float64
}

// ROC computes the ROC curve for scores where higher score = more
// attack-like, against boolean labels. Points are ordered from strictest to
// loosest threshold and include the (0,0) and (1,1) endpoints.
func ROC(scores []float64, labels []bool) []ROCPoint {
	if len(scores) != len(labels) || len(scores) == 0 {
		return nil
	}
	type sl struct {
		s float64
		l bool
	}
	items := make([]sl, len(scores))
	var pos, neg int
	for i := range scores {
		items[i] = sl{scores[i], labels[i]}
		if labels[i] {
			pos++
		} else {
			neg++
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].s > items[j].s })
	points := []ROCPoint{{Threshold: math.Inf(1)}}
	var tp, fp int
	for i := 0; i < len(items); {
		j := i
		for j < len(items) && items[j].s == items[i].s {
			if items[j].l {
				tp++
			} else {
				fp++
			}
			j++
		}
		p := ROCPoint{Threshold: items[i].s}
		if pos > 0 {
			p.TPR = float64(tp) / float64(pos)
		}
		if neg > 0 {
			p.FPR = float64(fp) / float64(neg)
		}
		points = append(points, p)
		i = j
	}
	return points
}

// AUC integrates a ROC curve with the trapezoid rule.
func AUC(points []ROCPoint) float64 {
	var area float64
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		area += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return area
}

// ConfusionCounts tallies binary classification outcomes at a threshold.
type ConfusionCounts struct{ TP, FP, TN, FN int }

// Confusion counts outcomes for scores ≥ threshold predicted positive.
func Confusion(scores []float64, labels []bool, threshold float64) ConfusionCounts {
	var c ConfusionCounts
	for i, s := range scores {
		pred := s >= threshold
		switch {
		case pred && labels[i]:
			c.TP++
		case pred && !labels[i]:
			c.FP++
		case !pred && labels[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// FPR returns the false positive rate.
func (c ConfusionCounts) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// TPR returns the true positive rate (recall).
func (c ConfusionCounts) TPR() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}
