package cdet

import (
	"math"
	"net/netip"
	"time"

	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/netflow"
)

// EntropyDetector is the statistical-analysis baseline from the paper's
// related work ([21], Feinstein et al.): it profiles the entropy of packet
// header features (source addresses and destination ports, byte-weighted)
// per customer, and alerts when the current window's entropy deviates from
// the learned profile for a sustained period. Floods from few sources (or
// to one port) collapse entropy; widely spoofed floods inflate source
// entropy; both directions trigger.
//
// Unlike the volumetric detectors it consumes raw flow records, because
// entropy is a distributional property. It is not safe for concurrent use.
type EntropyDetector struct {
	// SigmaK is the deviation threshold in σ units.
	SigmaK float64
	// SustainSteps is the consecutive-deviation requirement.
	SustainSteps int
	// ReleaseSteps ends mitigation after this many calm steps.
	ReleaseSteps int
	// Alpha is the profile learning rate.
	Alpha float64
	// MinMbps gates alerts on a minimal traffic level so entropy noise on
	// near-idle channels cannot alert.
	MinMbps float64

	step   time.Duration
	states map[netip.Addr]*entropyState
	done   []ddos.Alert
}

type entropyState struct {
	meanSrc, varSrc   float64
	meanPort, varPort float64
	warm              int
	over              int
	calm              int
	active            bool
	alert             ddos.Alert
	peakMbps          float64
}

// NewEntropyDetector returns the baseline with the standard configuration.
func NewEntropyDetector(step time.Duration) *EntropyDetector {
	return &EntropyDetector{
		SigmaK:       4,
		SustainSteps: maxInt(1, int(3*time.Minute/step)),
		ReleaseSteps: maxInt(1, int(3*time.Minute/step)),
		Alpha:        0.05,
		MinMbps:      2,
		step:         step,
		states:       make(map[netip.Addr]*entropyState),
	}
}

// entropy computes the byte-weighted Shannon entropy of a count map.
func entropy(weights map[uint64]float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	var h float64
	for _, w := range weights {
		p := w / total
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// Observe feeds one step of flows destined to victim and returns alerts
// raised at this step.
func (d *EntropyDetector) Observe(victim netip.Addr, at time.Time, flows []netflow.Record) []ddos.Alert {
	srcW := make(map[uint64]float64, len(flows))
	portW := make(map[uint64]float64, 16)
	var totalBytes float64
	// Track the dominant protocol/flag shape for the alert signature.
	var byType [ddos.NumAttackTypes]float64
	for i := range flows {
		r := &flows[i]
		b := float64(r.Bytes)
		totalBytes += b
		a4 := r.Src.Unmap().As4()
		srcW[uint64(a4[0])<<24|uint64(a4[1])<<16|uint64(a4[2])<<8|uint64(a4[3])] += b
		portW[uint64(r.DstPort)] += b
		for t := ddos.AttackType(0); t < ddos.NumAttackTypes; t++ {
			if ddos.SignatureFor(t, victim).Matches(*r) {
				byType[t] += b
			}
		}
	}
	hSrc := entropy(srcW, totalBytes)
	hPort := entropy(portW, totalBytes)
	mbps := totalBytes * 8 / 1e6 / d.step.Seconds()

	st := d.states[victim]
	if st == nil {
		st = &entropyState{}
		d.states[victim] = st
	}
	if st.active {
		d.observeActive(st, at, mbps)
		return nil
	}
	devSrc := deviation(hSrc, st.meanSrc, st.varSrc)
	devPort := deviation(hPort, st.meanPort, st.varPort)
	anomalous := (devSrc > d.SigmaK || devPort > d.SigmaK) && mbps > d.MinMbps
	if st.warm < 20 {
		st.warm++
		d.learn(st, hSrc, hPort)
		return nil
	}
	if !anomalous {
		st.over = 0
		d.learn(st, hSrc, hPort)
		return nil
	}
	st.over++
	if st.over < d.SustainSteps {
		return nil
	}
	// Alert: signature from the dominant attack-type bucket.
	best := ddos.UDPFlood
	for t := ddos.AttackType(1); t < ddos.NumAttackTypes; t++ {
		if byType[t] > byType[best] {
			best = t
		}
	}
	st.active = true
	st.over = 0
	st.calm = 0
	st.peakMbps = mbps
	st.alert = ddos.Alert{
		Sig:        ddos.SignatureFor(best, victim),
		DetectedAt: at,
		Source:     "entropy",
	}
	return []ddos.Alert{st.alert}
}

func (d *EntropyDetector) observeActive(st *entropyState, at time.Time, mbps float64) {
	if mbps > st.peakMbps {
		st.peakMbps = mbps
	}
	if mbps < d.MinMbps {
		st.calm++
		if st.calm >= d.ReleaseSteps {
			st.active = false
			st.alert.MitigatedAt = at
			st.alert.Severity = ddos.SeverityFromPeakMbps(st.peakMbps)
			d.done = append(d.done, st.alert)
		}
		return
	}
	st.calm = 0
}

func (d *EntropyDetector) learn(st *entropyState, hSrc, hPort float64) {
	a := d.Alpha
	dS := hSrc - st.meanSrc
	st.meanSrc += a * dS
	st.varSrc = (1 - a) * (st.varSrc + a*dS*dS)
	dP := hPort - st.meanPort
	st.meanPort += a * dP
	st.varPort = (1 - a) * (st.varPort + a*dP*dP)
}

// deviation returns |x−μ|/σ with a floor on σ.
func deviation(x, mean, varEst float64) float64 {
	sd := math.Sqrt(varEst)
	if sd < 0.05 {
		sd = 0.05
	}
	return math.Abs(x-mean) / sd
}

// Finish closes active mitigations and returns all completed alerts.
func (d *EntropyDetector) Finish(at time.Time) []ddos.Alert {
	for _, st := range d.states {
		if st.active {
			st.active = false
			st.alert.MitigatedAt = at
			st.alert.Severity = ddos.SeverityFromPeakMbps(st.peakMbps)
			d.done = append(d.done, st.alert)
		}
	}
	return d.done
}
