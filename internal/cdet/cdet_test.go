package cdet

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/ddos"
)

func TestCusumFindsStepChange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	series := make([]float64, 300)
	for i := range series {
		series[i] = 100 + 5*rng.NormFloat64()
	}
	// Anomaly starts at 200: ramps up.
	for i := 200; i < 300; i++ {
		series[i] = 100 + 5*rng.NormFloat64() + 30*float64(i-199)
	}
	onset, ok := AnomalyStart(series, 250, DefaultCusum(1))
	if !ok {
		t.Fatal("CUSUM found no change")
	}
	if onset < 195 || onset > 206 {
		t.Fatalf("onset = %d, want ≈200", onset)
	}
}

func TestCusumSilentOnStationaryNoise(t *testing.T) {
	// Same parameters, no change anywhere: must report no crossing
	// (DESIGN.md invariant: silent on stationary noise).
	rng := rand.New(rand.NewSource(2))
	series := make([]float64, 300)
	for i := range series {
		series[i] = 100 + 5*rng.NormFloat64()
	}
	if _, ok := AnomalyStart(series, 250, DefaultCusum(1)); ok {
		t.Fatal("false change detected on stationary noise")
	}
}

func TestCusumAggressiveParamCatchesSmallShift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	series := make([]float64, 300)
	for i := range series {
		series[i] = 100 + 5*rng.NormFloat64()
	}
	for i := 220; i < 300; i++ {
		series[i] += 8 // small sustained shift ≈ 1.6σ
	}
	// NumStd=0.5 (the paper's TCP setting) must catch it...
	if _, ok := AnomalyStart(series, 280, DefaultCusum(0.5)); !ok {
		t.Fatal("aggressive CUSUM missed the small shift")
	}
	// ...while NumStd=3 should not.
	if _, ok := AnomalyStart(series, 280, DefaultCusum(3)); ok {
		t.Fatal("conservative CUSUM should ignore a 1.6σ shift")
	}
}

func TestCusumEdgeCases(t *testing.T) {
	if _, ok := AnomalyStart(nil, 0, DefaultCusum(1)); ok {
		t.Fatal("empty series")
	}
	if _, ok := AnomalyStart([]float64{1, 2}, 5, DefaultCusum(1)); ok {
		t.Fatal("detect index out of range")
	}
	// Flat-zero baseline with a jump must still work (σ guard).
	series := make([]float64, 200)
	for i := 150; i < 200; i++ {
		series[i] = 1000
	}
	onset, ok := AnomalyStart(series, 190, DefaultCusum(1))
	if !ok || onset < 148 || onset > 152 {
		t.Fatalf("flat baseline: onset=%d ok=%v", onset, ok)
	}
}

// synth builds a per-step byte series in Mbps translated to bytes.
func bytesOf(mbps float64, step time.Duration) float64 {
	return mbps * 1e6 / 8 * step.Seconds()
}

func runDetector(d *Detector, victim netip.Addr, at ddos.AttackType, mbpsSeries []float64, step time.Duration) []ddos.Alert {
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	for i, m := range mbpsSeries {
		var per [ddos.NumAttackTypes]float64
		per[at] = bytesOf(m, step)
		d.Observe(victim, t0.Add(time.Duration(i)*step), per)
	}
	return d.Finish(t0.Add(time.Duration(len(mbpsSeries)) * step))
}

func attackSeries(rng *rand.Rand, base float64, attackStart, attackLen int, peak float64, total int) []float64 {
	s := make([]float64, total)
	for i := range s {
		s[i] = base * (1 + 0.1*rng.NormFloat64())
		if i >= attackStart && i < attackStart+attackLen {
			ramp := peak * math.Pow(2, float64(i-attackStart)) / math.Pow(2, 5)
			s[i] += math.Min(peak, ramp)
		}
	}
	return s
}

func TestNetScoutDetectsSustainedAttackLate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	victim := netip.MustParseAddr("23.1.1.1")
	series := attackSeries(rng, 2, 100, 40, 20, 200)
	d := NewNetScout(time.Minute)
	alerts := runDetector(d, victim, ddos.UDPFlood, series, time.Minute)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	a := alerts[0]
	if a.Sig.Type != ddos.UDPFlood || a.Sig.Victim != victim || a.Source != "netscout" {
		t.Fatalf("alert = %+v", a)
	}
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	delay := a.DetectedAt.Sub(t0.Add(100 * time.Minute))
	if delay < 3*time.Minute || delay > 15*time.Minute {
		t.Fatalf("NetScout delay = %v, want late-but-bounded", delay)
	}
	if a.MitigatedAt.Before(a.DetectedAt) {
		t.Fatal("mitigation must end after detection")
	}
	if a.Severity != ddos.SeverityMedium {
		t.Fatalf("severity = %v for a 20 Mbps peak", a.Severity)
	}
}

func TestFastNetMonFasterThanNetScout(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	victim := netip.MustParseAddr("23.1.1.1")
	series := attackSeries(rng, 2, 100, 40, 25, 200)
	ns := runDetector(NewNetScout(time.Minute), victim, ddos.TCPACK, series, time.Minute)
	fn := runDetector(NewFastNetMon(time.Minute), victim, ddos.TCPACK, series, time.Minute)
	if len(ns) == 0 || len(fn) == 0 {
		t.Fatalf("detections: netscout=%d fnm=%d", len(ns), len(fn))
	}
	if !fn[0].DetectedAt.Before(ns[0].DetectedAt) {
		t.Fatalf("FastNetMon (%v) must detect before NetScout (%v)", fn[0].DetectedAt, ns[0].DetectedAt)
	}
}

func TestDetectorMissesVeryShortAttack(t *testing.T) {
	// §2.3: short attacks end before the conservative sustain window.
	rng := rand.New(rand.NewSource(9))
	victim := netip.MustParseAddr("23.1.1.1")
	series := attackSeries(rng, 2, 100, 3, 25, 200) // 3-minute attack
	alerts := runDetector(NewNetScout(time.Minute), victim, ddos.ICMPFlood, series, time.Minute)
	if len(alerts) != 0 {
		t.Fatalf("NetScout should miss a 3-minute attack, got %d alerts", len(alerts))
	}
}

func TestDetectorIgnoresBenignNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	victim := netip.MustParseAddr("23.1.1.1")
	series := make([]float64, 500)
	for i := range series {
		series[i] = 3 * (1 + 0.25*rng.NormFloat64())
	}
	alerts := runDetector(NewNetScout(time.Minute), victim, ddos.UDPFlood, series, time.Minute)
	if len(alerts) != 0 {
		t.Fatalf("false positives on noise: %d", len(alerts))
	}
}

func TestDetectorBaselineFrozenDuringAttack(t *testing.T) {
	// A long attack must not teach the detector that attack volume is
	// normal: after mitigation, a second identical attack must be detected
	// again.
	rng := rand.New(rand.NewSource(11))
	victim := netip.MustParseAddr("23.1.1.1")
	series := attackSeries(rng, 2, 100, 60, 30, 400)
	for i := 280; i < 340; i++ {
		series[i] += math.Min(30, 30*math.Pow(2, float64(i-280))/32)
	}
	alerts := runDetector(NewNetScout(time.Minute), victim, ddos.UDPFlood, series, time.Minute)
	if len(alerts) != 2 {
		t.Fatalf("alerts = %d, want 2 (repeat attack must be re-detected)", len(alerts))
	}
}

func TestDetectorSeparateChannels(t *testing.T) {
	// An attack on one customer/type must not alert another.
	rng := rand.New(rand.NewSource(12))
	v1 := netip.MustParseAddr("23.1.1.1")
	v2 := netip.MustParseAddr("23.1.1.2")
	d := NewFastNetMon(time.Minute)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	series := attackSeries(rng, 2, 100, 30, 25, 200)
	for i, m := range series {
		var p1, p2 [ddos.NumAttackTypes]float64
		p1[ddos.UDPFlood] = bytesOf(m, time.Minute)
		p2[ddos.UDPFlood] = bytesOf(2, time.Minute)
		d.Observe(v1, t0.Add(time.Duration(i)*time.Minute), p1)
		d.Observe(v2, t0.Add(time.Duration(i)*time.Minute), p2)
	}
	alerts := d.Finish(t0.Add(300 * time.Minute))
	for _, a := range alerts {
		if a.Sig.Victim != v1 {
			t.Fatalf("spurious alert on %v", a.Sig.Victim)
		}
	}
	if len(alerts) == 0 {
		t.Fatal("attack on v1 not detected")
	}
}

func TestFinishClosesActiveAlerts(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	victim := netip.MustParseAddr("23.1.1.1")
	// Attack continues until the end of the series.
	series := attackSeries(rng, 2, 100, 100, 25, 200)
	d := NewFastNetMon(time.Minute)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	for i, m := range series {
		var per [ddos.NumAttackTypes]float64
		per[ddos.UDPFlood] = bytesOf(m, time.Minute)
		d.Observe(victim, t0.Add(time.Duration(i)*time.Minute), per)
	}
	if len(d.Alerts()) != 0 {
		t.Fatal("alert should still be active before Finish")
	}
	end := t0.Add(200 * time.Minute)
	alerts := d.Finish(end)
	if len(alerts) != 1 || !alerts[0].MitigatedAt.Equal(end) {
		t.Fatalf("Finish must close the active alert at end time: %+v", alerts)
	}
}
