// Package cdet implements the commercial-detection substrate: the CUSUM
// procedure used to label ground-truth anomaly starts (Appendix A), and two
// threshold-based volumetric detectors standing in for Arbor NetScout and
// FastNetMon. Both detectors are deliberately conservative/reactive — that
// is the behaviour Xatu exists to boost.
package cdet

import "math"

// CusumParams configures the change-point labeling of Appendix A.
type CusumParams struct {
	// NumStd is the slack in standard deviations subtracted from each
	// observation before accumulation. The paper uses 1 for UDP/DNS-amp and
	// 0.5 for the TCP/ICMP attack types.
	NumStd float64
	// Threshold is the CUSUM alarm level in σ units.
	Threshold float64
	// BaselineWindow is how many trailing steps estimate μ and σ ("the hour
	// before the attack").
	BaselineWindow int
}

// DefaultCusum returns the parameters used for ground-truth labeling at
// 1-minute steps.
func DefaultCusum(numStd float64) CusumParams {
	return CusumParams{NumStd: numStd, Threshold: 5, BaselineWindow: 60}
}

// AnomalyStart locates the onset of the anomaly that a detector flagged at
// detectIdx: μ and σ are estimated over the BaselineWindow steps ending
// well before detection, the normalized CUSUM statistic is accumulated
// forward, and the onset is the step after the last zero of the statistic
// before it first crosses Threshold. Returns the onset index and true, or
// (detectIdx, false) when no crossing is found (the anomaly start defaults
// to the detection step).
func AnomalyStart(series []float64, detectIdx int, p CusumParams) (int, bool) {
	if detectIdx <= 0 || detectIdx >= len(series) {
		return detectIdx, false
	}
	bw := p.BaselineWindow
	if bw < 5 {
		bw = 5
	}
	// Estimate the baseline from the window ending 2×bw before detection if
	// available (so a slow ramp does not pollute it), else from the start.
	bEnd := detectIdx - bw
	if bEnd < bw {
		bEnd = min(bw, detectIdx)
	}
	bStart := max(0, bEnd-bw)
	if bEnd-bStart < 3 {
		return detectIdx, false
	}
	var mean, m2 float64
	n := 0
	for i := bStart; i < bEnd; i++ {
		n++
		d := series[i] - mean
		mean += d / float64(n)
		m2 += d * (series[i] - mean)
	}
	std := math.Sqrt(m2 / float64(n))
	if std < 1e-9 {
		std = math.Max(1e-9, mean*0.05) // flat baseline: use 5% of mean as scale
	}
	// Accumulate S_n = max(0, S_{n-1} + Z_n) from the baseline end forward.
	s := 0.0
	lastZero := bEnd - 1
	for i := bEnd; i <= detectIdx; i++ {
		z := (series[i] - mean - p.NumStd*std) / std
		s = math.Max(0, s+z)
		if s == 0 {
			lastZero = i
		}
		if s > p.Threshold {
			onset := lastZero + 1
			if onset > detectIdx {
				onset = detectIdx
			}
			return onset, true
		}
	}
	return detectIdx, false
}
