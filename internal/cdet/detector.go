package cdet

import (
	"math"
	"net/netip"
	"time"

	"github.com/xatu-go/xatu/internal/ddos"
)

// Params tunes a threshold detector. Thresholds are expressed in Mbps of
// traffic matching an attack-type signature.
type Params struct {
	Name string
	// AbsFloorMbps is the minimum rate that can ever trigger an alert
	// ("forced alert thresholds" — commercial boxes refuse to alert on
	// traffic too small to matter).
	AbsFloorMbps float64
	// Multiplier scales the learned baseline: alert candidate when
	// rate > max(AbsFloorMbps, Multiplier·μ + SigmaK·σ).
	Multiplier float64
	// SigmaK adds σ-scaled slack on top of the baseline.
	SigmaK float64
	// SustainSteps is how many consecutive over-threshold steps are needed
	// before alerting — the conservatism that causes late detection (§2.3).
	SustainSteps int
	// ReleaseSteps is how many consecutive calm steps end the mitigation.
	ReleaseSteps int
	// EWMAAlpha is the baseline learning rate.
	EWMAAlpha float64
}

// NetScoutParams mimics the conservative commercial appliance: high
// absolute floor, long sustain requirement. Median detection delay on the
// paper's traffic was 11.5 minutes.
func NetScoutParams(step time.Duration) Params {
	return Params{
		Name:         "netscout",
		AbsFloorMbps: 4,
		Multiplier:   3.5,
		SigmaK:       6,
		SustainSteps: maxInt(1, int(5*time.Minute/step)),
		ReleaseSteps: maxInt(1, int(3*time.Minute/step)),
		EWMAAlpha:    0.02,
	}
}

// FastNetMonParams mimics the open-source detector with "the best dynamic
// thresholds in production" [84]: lower floor and shorter sustain, hence
// faster but less conservative (median delay ~5 min in the paper).
func FastNetMonParams(step time.Duration) Params {
	return Params{
		Name:         "fastnetmon",
		AbsFloorMbps: 2.5,
		Multiplier:   3,
		SigmaK:       5,
		SustainSteps: maxInt(1, int(2*time.Minute/step)),
		ReleaseSteps: maxInt(1, int(2*time.Minute/step)),
		EWMAAlpha:    0.05,
	}
}

// chanState is the detector state for one (customer, attack type) channel.
type chanState struct {
	mean, varEst float64
	warm         int
	over         int // consecutive over-threshold steps
	calm         int // consecutive calm steps while mitigating
	active       bool
	activeAlert  ddos.Alert
	peakMbps     float64
}

// Detector is a streaming threshold detector over per-signature traffic
// rates. It is not safe for concurrent use; run one per stream.
type Detector struct {
	P      Params
	step   time.Duration
	states map[chanKey]*chanState
	done   []ddos.Alert
}

type chanKey struct {
	victim netip.Addr
	at     ddos.AttackType
}

// New returns a Detector with the given parameters operating at the given
// step resolution.
func New(p Params, step time.Duration) *Detector {
	return &Detector{P: p, step: step, states: make(map[chanKey]*chanState)}
}

// NewNetScout is a convenience constructor.
func NewNetScout(step time.Duration) *Detector { return New(NetScoutParams(step), step) }

// NewFastNetMon is a convenience constructor.
func NewFastNetMon(step time.Duration) *Detector { return New(FastNetMonParams(step), step) }

// Observe feeds one step of per-attack-type matching byte counts for one
// customer and returns any alerts raised at this step (detection time set,
// mitigation end pending).
func (d *Detector) Observe(victim netip.Addr, at time.Time, perTypeBytes [ddos.NumAttackTypes]float64) []ddos.Alert {
	var raised []ddos.Alert
	stepSec := d.step.Seconds()
	for t := ddos.AttackType(0); t < ddos.NumAttackTypes; t++ {
		mbps := perTypeBytes[t] * 8 / 1e6 / stepSec
		key := chanKey{victim, t}
		st := d.states[key]
		if st == nil {
			st = &chanState{}
			d.states[key] = st
		}
		if st.active {
			d.observeActive(st, key, at, mbps)
			continue
		}
		threshold := math.Max(d.P.AbsFloorMbps, d.P.Multiplier*st.mean+d.P.SigmaK*math.Sqrt(st.varEst))
		if st.warm < 10 {
			// Warm-up: learn only, never alert.
			st.warm++
			d.learn(st, mbps)
			continue
		}
		if mbps > threshold {
			st.over++
			if st.over >= d.P.SustainSteps {
				st.active = true
				st.over = 0
				st.calm = 0
				st.peakMbps = mbps
				st.activeAlert = ddos.Alert{
					Sig:        ddos.SignatureFor(t, victim),
					DetectedAt: at,
					Source:     d.P.Name,
				}
				raised = append(raised, st.activeAlert)
			}
			// While over threshold the baseline is frozen so the attack does
			// not poison it.
			continue
		}
		st.over = 0
		d.learn(st, mbps)
	}
	return raised
}

func (d *Detector) observeActive(st *chanState, key chanKey, at time.Time, mbps float64) {
	if mbps > st.peakMbps {
		st.peakMbps = mbps
	}
	release := math.Max(d.P.AbsFloorMbps*0.5, d.P.Multiplier*st.mean*0.8)
	if mbps < release {
		st.calm++
		if st.calm >= d.P.ReleaseSteps {
			d.finishAlert(st, at)
		}
		return
	}
	st.calm = 0
}

func (d *Detector) finishAlert(st *chanState, at time.Time) {
	st.active = false
	st.activeAlert.MitigatedAt = at
	st.activeAlert.Severity = ddos.SeverityFromPeakMbps(st.peakMbps)
	d.done = append(d.done, st.activeAlert)
	st.peakMbps = 0
	st.calm = 0
}

func (d *Detector) learn(st *chanState, mbps float64) {
	a := d.P.EWMAAlpha
	diff := mbps - st.mean
	st.mean += a * diff
	st.varEst = (1 - a) * (st.varEst + a*diff*diff)
}

// Finish closes any still-active mitigations at the given end time and
// returns all completed alerts, ordered by completion.
func (d *Detector) Finish(at time.Time) []ddos.Alert {
	for _, st := range d.states {
		if st.active {
			d.finishAlert(st, at)
		}
	}
	return d.done
}

// Alerts returns the completed alerts so far without closing active ones.
func (d *Detector) Alerts() []ddos.Alert { return d.done }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
