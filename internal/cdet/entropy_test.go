package cdet

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/netflow"
)

func benignStep(rng *rand.Rand, victim netip.Addr, n int) []netflow.Record {
	out := make([]netflow.Record, n)
	for i := range out {
		out[i] = netflow.Record{
			Src:      netip.AddrFrom4([4]byte{11, byte(rng.Intn(8)), byte(rng.Intn(256)), byte(rng.Intn(254) + 1)}),
			Dst:      victim,
			Proto:    netflow.ProtoTCP,
			TCPFlags: netflow.FlagACK,
			SrcPort:  uint16(30000 + rng.Intn(10000)),
			DstPort:  []uint16{80, 443, 53, 8080}[rng.Intn(4)],
			Bytes:    uint32(20000 + rng.Intn(60000)),
			Packets:  50,
		}
	}
	return out
}

func floodStep(victim netip.Addr, srcs int, bytesEach uint32) []netflow.Record {
	out := make([]netflow.Record, srcs)
	for i := range out {
		out[i] = netflow.Record{
			Src:     netip.AddrFrom4([4]byte{45, 0, 0, byte(i + 1)}),
			Dst:     victim,
			Proto:   netflow.ProtoUDP,
			SrcPort: 40000,
			DstPort: 80,
			Bytes:   bytesEach,
			Packets: bytesEach / 500,
		}
	}
	return out
}

func TestEntropyHelper(t *testing.T) {
	// Uniform over 4 symbols: H = 2 bits. Single symbol: H = 0.
	w := map[uint64]float64{1: 1, 2: 1, 3: 1, 4: 1}
	if h := entropy(w, 4); math.Abs(h-2) > 1e-12 {
		t.Fatalf("H = %v, want 2", h)
	}
	if h := entropy(map[uint64]float64{1: 5}, 5); h != 0 {
		t.Fatalf("H = %v, want 0", h)
	}
	if h := entropy(nil, 0); h != 0 {
		t.Fatalf("empty H = %v", h)
	}
}

func TestEntropyDetectorFlagsConcentratedFlood(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	victim := netip.MustParseAddr("23.1.1.1")
	d := NewEntropyDetector(time.Minute)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	var alerts []ddos.Alert
	for i := 0; i < 240; i++ {
		at := t0.Add(time.Duration(i) * time.Minute)
		var flows []netflow.Record
		if i >= 200 && i < 230 {
			// Concentrated UDP flood from 3 sources to one port, dwarfing
			// the benign mix.
			flows = append(benignStep(rng, victim, 8), floodStep(victim, 3, 40_000_000)...)
		} else {
			flows = benignStep(rng, victim, 8)
		}
		alerts = append(alerts, d.Observe(victim, at, flows)...)
	}
	alerts = d.Finish(t0.Add(240 * time.Minute))
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	a := alerts[0]
	if a.Source != "entropy" || a.Sig.Type != ddos.UDPFlood {
		t.Fatalf("alert = %+v", a)
	}
	delay := a.DetectedAt.Sub(t0.Add(200 * time.Minute))
	if delay < 0 || delay > 10*time.Minute {
		t.Fatalf("detection delay %v", delay)
	}
	if a.MitigatedAt.Before(a.DetectedAt) {
		t.Fatal("mitigation must end after detection")
	}
}

func TestEntropyDetectorQuietOnBenign(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	victim := netip.MustParseAddr("23.1.1.1")
	d := NewEntropyDetector(time.Minute)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 400; i++ {
		if got := d.Observe(victim, t0.Add(time.Duration(i)*time.Minute), benignStep(rng, victim, 8)); len(got) != 0 {
			t.Fatalf("false positive at step %d", i)
		}
	}
	if got := d.Finish(t0.Add(400 * time.Minute)); len(got) != 0 {
		t.Fatalf("false alerts: %d", len(got))
	}
}

func TestEntropyDetectorIgnoresLowVolumeAnomaly(t *testing.T) {
	// An entropy collapse on negligible traffic must not alert (MinMbps gate).
	rng := rand.New(rand.NewSource(3))
	victim := netip.MustParseAddr("23.1.1.1")
	d := NewEntropyDetector(time.Minute)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 120; i++ {
		var flows []netflow.Record
		if i >= 100 {
			flows = floodStep(victim, 1, 1000) // one tiny flow
		} else {
			flows = benignStep(rng, victim, 8)
		}
		if got := d.Observe(victim, t0.Add(time.Duration(i)*time.Minute), flows); len(got) != 0 {
			t.Fatalf("alerted on negligible traffic at step %d", i)
		}
	}
}

func TestEntropyDetectorPerVictimIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v1 := netip.MustParseAddr("23.1.1.1")
	v2 := netip.MustParseAddr("23.1.1.2")
	d := NewEntropyDetector(time.Minute)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 240; i++ {
		at := t0.Add(time.Duration(i) * time.Minute)
		f1 := benignStep(rng, v1, 8)
		if i >= 200 {
			f1 = append(f1, floodStep(v1, 2, 40_000_000)...)
		}
		d.Observe(v1, at, f1)
		d.Observe(v2, at, benignStep(rng, v2, 8))
	}
	for _, a := range d.Finish(t0.Add(240 * time.Minute)) {
		if a.Sig.Victim != v1 {
			t.Fatalf("spurious alert for %v", a.Sig.Victim)
		}
	}
}
