package engine

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

// TestNodeOfSingleNodeMatchesShardOf pins the compatibility contract of
// the two-level hash: a fleet of one node places every customer exactly
// where a single-process Engine does.
func TestNodeOfSingleNodeMatchesShardOf(t *testing.T) {
	for _, c := range testCustomers(64) {
		for _, shards := range []int{1, 2, 4, 7, 16} {
			node, shard := NodeOf(c, 1, shards)
			if node != 0 {
				t.Fatalf("NodeOf(%v, 1, %d) node = %d, want 0", c, shards, node)
			}
			if want := ShardOf(c, shards); shard != want {
				t.Fatalf("NodeOf(%v, 1, %d) shard = %d, want ShardOf = %d", c, shards, shard, want)
			}
		}
	}
}

// TestNodeOfV4MappedInvariant pins that an IPv4 customer and its
// v4-mapped IPv6 form land on the same (node, shard) — both levels hash
// the 16-byte As16 form.
func TestNodeOfV4MappedInvariant(t *testing.T) {
	for _, c := range testCustomers(32) {
		mapped := netip.AddrFrom16(c.As16())
		for _, nodes := range []int{1, 3, 4, 8} {
			n4, s4 := NodeOf(c, nodes, 4)
			n6, s6 := NodeOf(mapped, nodes, 4)
			if n4 != n6 || s4 != s6 {
				t.Fatalf("NodeOf(%v) = (%d,%d) but v4-mapped form = (%d,%d)", c, n4, s4, n6, s6)
			}
			if ShardOf(c, 4) != ShardOf(mapped, 4) {
				t.Fatalf("ShardOf v4-mapped invariant broken for %v", c)
			}
		}
	}
}

// TestNodeOfGolden pins concrete hash outputs so an accidental change to
// either level of the partition function — which would strand every
// deployed checkpoint and routing table — fails loudly.
func TestNodeOfGolden(t *testing.T) {
	cases := []struct {
		addr        string
		nodes       int
		shards      int
		node, shard int
	}{
		{"203.0.113.1", 4, 4, 1, 2},
		{"203.0.113.2", 4, 4, 1, 3},
		{"203.0.113.3", 4, 4, 1, 0},
		{"203.0.113.4", 4, 4, 2, 1},
		{"203.0.113.1", 3, 16, 2, 6},
		{"198.51.100.7", 4, 8, 0, 5},
	}
	for _, tc := range cases {
		node, shard := NodeOf(netip.MustParseAddr(tc.addr), tc.nodes, tc.shards)
		if node != tc.node || shard != tc.shard {
			t.Errorf("NodeOf(%s, %d, %d) = (%d, %d), want (%d, %d)",
				tc.addr, tc.nodes, tc.shards, node, shard, tc.node, tc.shard)
		}
	}
	// ShardOf's mapping predates NodeOf and must stay byte-for-byte what
	// existing XMC1 rehash-on-restore and ingest partitioning rely on.
	shardGolden := []struct {
		addr  string
		n     int
		shard int
	}{
		{"203.0.113.1", 4, 2},
		{"203.0.113.2", 4, 3},
		{"203.0.113.3", 4, 0},
		{"203.0.113.4", 4, 1},
	}
	for _, tc := range shardGolden {
		if got := ShardOf(netip.MustParseAddr(tc.addr), tc.n); got != tc.shard {
			t.Errorf("ShardOf(%s, %d) = %d, want %d", tc.addr, tc.n, got, tc.shard)
		}
	}
}

// TestNodeOfLevelsDecorrelated verifies the reason NodeOf remixes the
// hash: with nodes == shards, the customers owned by one node must still
// spread across that node's shards instead of all landing on shard i.
func TestNodeOfLevelsDecorrelated(t *testing.T) {
	const n = 4
	shardsSeen := make(map[int]map[int]bool)
	for i := 0; i < 256; i++ {
		c := netip.AddrFrom4([4]byte{10, 0, byte(i / 250), byte(i%250 + 1)})
		node, shard := NodeOf(c, n, n)
		if shardsSeen[node] == nil {
			shardsSeen[node] = make(map[int]bool)
		}
		shardsSeen[node][shard] = true
	}
	for node, shards := range shardsSeen {
		if len(shards) < 2 {
			t.Errorf("node %d's customers all landed on %d shard(s); levels are correlated", node, len(shards))
		}
	}
}

// subsetTestEngine builds an engine, feeds steps steps of UDP-flood
// traffic for every customer, and drains it. Alerts are discarded by a
// background reader.
func subsetTestEngine(t *testing.T, shards int, customers []netip.Addr, steps int, t0 time.Time) (*Engine, func()) {
	t.Helper()
	eng, err := New(Config{Monitor: tinyMonitorConfig(t), Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range eng.Alerts() {
		}
	}()
	for s := 0; s < steps; s++ {
		for _, c := range customers {
			if err := eng.Submit(c, t0.Add(time.Duration(s)*time.Minute), udpFlows(c, s, t0)); err != nil {
				t.Errorf("submit: %v", err)
			}
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	return eng, func() { eng.Close(); <-done }
}

// TestCheckpointCustomersSubsetRestore pins the migration segment
// round-trip: a per-customer-subset checkpoint restored onto a fresh
// engine reproduces exactly the subset's channels, bit-exactly — the
// fresh engine's own checkpoint is byte-identical to the subset file.
func TestCheckpointCustomersSubsetRestore(t *testing.T) {
	t0 := time.Unix(1700000000, 0).UTC()
	customers := testCustomers(8)
	eng, stop := subsetTestEngine(t, 4, customers, 12, t0)
	defer stop()

	subset := map[netip.Addr]bool{customers[1]: true, customers[4]: true, customers[6]: true}
	var seg bytes.Buffer
	n, err := eng.CheckpointCustomers(&seg, func(c netip.Addr) bool { return subset[c] })
	if err != nil {
		t.Fatal(err)
	}
	if n != len(subset) {
		t.Fatalf("CheckpointCustomers wrote %d channels, want %d", n, len(subset))
	}

	fresh, err := New(Config{Monitor: tinyMonitorConfig(t), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	go func() {
		for range fresh.Alerts() {
		}
	}()
	if err := fresh.Restore(bytes.NewReader(seg.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Stats().Channels; got != len(subset) {
		t.Fatalf("restored engine has %d channels, want %d", got, len(subset))
	}
	var back bytes.Buffer
	if err := fresh.Checkpoint(&back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seg.Bytes(), back.Bytes()) {
		t.Fatalf("subset restore is not bit-exact: segment %d bytes, re-checkpoint %d bytes", seg.Len(), back.Len())
	}
}

// TestRestoreCustomersMergeRemove walks the full live-migration state
// change: a subset segment merges into a running engine that already has
// its own customers (replacing any stale state for the moving customers),
// and the source drops the moved channels — with the moved streams
// bit-exact on the destination.
func TestRestoreCustomersMergeRemove(t *testing.T) {
	t0 := time.Unix(1700000000, 0).UTC()
	customers := testCustomers(6)
	src, stopSrc := subsetTestEngine(t, 4, customers[:4], 12, t0)
	defer stopSrc()
	dst, stopDst := subsetTestEngine(t, 2, customers[4:], 12, t0)
	defer stopDst()

	moving := map[netip.Addr]bool{customers[0]: true, customers[2]: true}
	movingPred := func(c netip.Addr) bool { return moving[c] }

	var seg bytes.Buffer
	if _, err := src.CheckpointCustomers(&seg, movingPred); err != nil {
		t.Fatal(err)
	}
	added, err := dst.RestoreCustomers(bytes.NewReader(seg.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("RestoreCustomers absorbed %d channels, want 2", added)
	}
	if got := dst.Stats().Channels; got != 4 {
		t.Fatalf("destination has %d channels after merge, want 4 (2 resident + 2 moved)", got)
	}
	removed, err := src.RemoveCustomers(movingPred)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("RemoveCustomers dropped %d channels, want 2", removed)
	}
	if got := src.Stats().Channels; got != 2 {
		t.Fatalf("source has %d channels after removal, want 2", got)
	}

	// The moved streams must be byte-identical on the destination.
	var dstSeg bytes.Buffer
	if _, err := dst.CheckpointCustomers(&dstSeg, movingPred); err != nil {
		t.Fatal(err)
	}
	srcChans := segChans(t, seg.Bytes())
	dstChans := segChans(t, dstSeg.Bytes())
	if len(srcChans) != len(dstChans) {
		t.Fatalf("moved channel count: src %d, dst %d", len(srcChans), len(dstChans))
	}
	for addr, raw := range srcChans {
		if !bytes.Equal(raw, dstChans[addr]) {
			t.Errorf("stream for %v changed bytes across the migration", addr)
		}
	}

	// A second merge of the same customers replaces, not duplicates.
	if _, err := dst.RestoreCustomers(bytes.NewReader(seg.Bytes()), nil); err != nil {
		t.Fatal(err)
	}
	if got := dst.Stats().Channels; got != 4 {
		t.Fatalf("re-merge duplicated channels: have %d, want 4", got)
	}

	// The pred filter absorbs only matching customers.
	third, err := New(Config{Monitor: tinyMonitorConfig(t), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	only := customers[0]
	absorbed, err := third.RestoreCustomers(bytes.NewReader(seg.Bytes()), func(c netip.Addr) bool { return c == only })
	if err != nil {
		t.Fatal(err)
	}
	if absorbed != 1 || third.Stats().Channels != 1 {
		t.Fatalf("pred-filtered merge absorbed %d channels (engine has %d), want 1", absorbed, third.Stats().Channels)
	}
}

// segChans flattens a version-2 checkpoint into customer → raw channel
// record bytes (framing level, shard layout ignored).
func segChans(t *testing.T, data []byte) map[netip.Addr][]byte {
	t.Helper()
	segs, err := checkpointSegments(data)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[netip.Addr][]byte)
	for _, seg := range segs {
		chans, err := scanMonitorBody(seg)
		if err != nil {
			t.Fatal(err)
		}
		for _, rc := range chans {
			out[rc.customer] = rc.raw
		}
	}
	return out
}
