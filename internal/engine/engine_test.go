package engine

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/attackhist"
	"github.com/xatu-go/xatu/internal/blocklist"
	"github.com/xatu-go/xatu/internal/core"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/features"
	"github.com/xatu-go/xatu/internal/netflow"
)

func tinyModel(t testing.TB) *core.Model {
	t.Helper()
	cfg := core.DefaultConfig(features.NumFeatures)
	cfg.Hidden = 4
	cfg.PoolShort, cfg.PoolMed, cfg.PoolLong = 1, 2, 4
	cfg.Window = 4
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tinyExtractor() *features.Extractor {
	return &features.Extractor{
		Blocklists: blocklist.NewRegistry(),
		History:    attackhist.NewRegistry(),
		Geo:        func(netip.Addr) string { return "US" },
		A4Window:   240 * time.Hour,
		A5Window:   24 * time.Hour,
	}
}

// tinyMonitorConfig alerts as soon as a stream warms (threshold above 1)
// on UDP-flood traffic; Extract is pure with RecordHistory off, so one
// extractor is safely shared across shards and reference monitors.
func tinyMonitorConfig(t testing.TB) MonitorConfig {
	return MonitorConfig{
		Default:           tinyModel(t),
		Extractor:         tinyExtractor(),
		Threshold:         1.5,
		Types:             []ddos.AttackType{ddos.UDPFlood},
		MitigationTimeout: 10 * time.Minute,
	}
}

func testCustomers(n int) []netip.Addr {
	cs := make([]netip.Addr, n)
	for i := range cs {
		cs[i] = netip.MustParseAddr(fmt.Sprintf("203.0.113.%d", i+1))
	}
	return cs
}

// udpFlows builds a deterministic per-(customer, step) batch of UDP flows
// that match the UDP-flood signature.
func udpFlows(customer netip.Addr, step int, t0 time.Time) []netflow.Record {
	at := t0.Add(time.Duration(step) * time.Minute)
	n := 1 + step%3
	flows := make([]netflow.Record, 0, n)
	for j := 0; j < n; j++ {
		flows = append(flows, netflow.Record{
			Src:     netip.MustParseAddr(fmt.Sprintf("11.1.%d.%d", step%250+1, j+1)),
			Dst:     customer,
			Proto:   netflow.ProtoUDP,
			SrcPort: uint16(1024 + step + j),
			DstPort: 80,
			Packets: uint32(10 + j),
			Bytes:   uint32(6000 + 100*j),
			Start:   at,
			End:     at.Add(30 * time.Second),
		})
	}
	return flows
}

type alertKey struct {
	customer netip.Addr
	atype    ddos.AttackType
	at       time.Time
}

// stepBatch is one recorded step of telemetry: per-customer flows, with
// absent customers receiving a missing-step observation.
type stepBatch struct {
	at    time.Time
	flows map[netip.Addr][]netflow.Record
}

// replayIntoMonitor feeds recorded batches to a bare Monitor and returns
// the alert set.
func replayIntoMonitor(t *testing.T, cfg MonitorConfig, customers []netip.Addr, batches []stepBatch) map[alertKey]bool {
	t.Helper()
	mon, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := map[alertKey]bool{}
	for _, b := range batches {
		for _, c := range customers {
			flows, ok := b.flows[c]
			if !ok {
				mon.ObserveMissing(c, b.at)
				continue
			}
			for _, a := range mon.ObserveStep(c, b.at, flows) {
				got[alertKey{c, a.Sig.Type, b.at}] = true
			}
		}
	}
	return got
}

// replayIntoEngine feeds the same batches through an Engine and returns
// the fanned-in alert set.
func replayIntoEngine(t *testing.T, cfg Config, customers []netip.Addr, batches []stepBatch) (map[alertKey]bool, Stats) {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		for _, c := range customers {
			flows, ok := b.flows[c]
			var err error
			if !ok {
				err = eng.ObserveMissing(c, b.at)
			} else {
				err = eng.Submit(c, b.at, flows)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	eng.Close()
	got := map[alertKey]bool{}
	for ev := range eng.Alerts() {
		if ev.Shard != eng.ShardOf(ev.Customer) {
			t.Fatalf("alert for %v reported from shard %d, owner is %d", ev.Customer, ev.Shard, eng.ShardOf(ev.Customer))
		}
		got[alertKey{ev.Customer, ev.Alert.Sig.Type, ev.At}] = true
	}
	return got, st
}

// recordChaosStream pushes a deterministic multi-customer trace through
// the exporter → seeded chaos pipe → collector chain and records the
// surviving per-step batches.
func recordChaosStream(t *testing.T, customers []netip.Addr, steps int, chaos netflow.ChaosConfig) []stepBatch {
	t.Helper()
	col, err := netflow.NewCollector("127.0.0.1:0", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	pipe := netflow.NewChaosPipe(col, "192.0.2.1:2055", chaos)
	exp, err := netflow.NewExporterWithConfig(netflow.ExporterConfig{
		Dial: func() (net.Conn, error) { return pipe, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	batches := make([]stepBatch, 0, steps)
	for s := 0; s < steps; s++ {
		for _, c := range customers {
			for _, r := range udpFlows(c, s, t0) {
				if err := exp.Export(r); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := exp.Flush(); err != nil {
			t.Fatal(err)
		}
		// The pipe delivers synchronously: this step's surviving records
		// are already buffered in the collector.
		b := stepBatch{at: t0.Add(time.Duration(s) * time.Minute), flows: map[netip.Addr][]netflow.Record{}}
	drain:
		for {
			select {
			case r := <-col.Records():
				b.flows[r.Dst] = append(b.flows[r.Dst], r)
			default:
				break drain
			}
		}
		batches = append(batches, b)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	return batches
}

// TestEngineMonitorParityChaosStream is the tentpole acceptance test: a
// seeded chaos stream (drops, duplicates, reorders) over 32 customers is
// fed once to a single Monitor and once to a 4-shard Engine, and the two
// must produce the identical alert set (customer, type, step time).
func TestEngineMonitorParityChaosStream(t *testing.T) {
	customers := testCustomers(32)
	chaos := netflow.ChaosConfig{Seed: 42, DropRate: 0.10, DupRate: 0.05, ReorderRate: 0.05}
	batches := recordChaosStream(t, customers, 40, chaos)

	model := tinyModel(t)
	ext := tinyExtractor()
	mkCfg := func() MonitorConfig {
		return MonitorConfig{
			Default:           model,
			Extractor:         ext,
			Threshold:         1.5,
			Types:             []ddos.AttackType{ddos.UDPFlood},
			MitigationTimeout: 10 * time.Minute,
		}
	}

	want := replayIntoMonitor(t, mkCfg(), customers, batches)
	if len(want) == 0 {
		t.Fatal("reference monitor never alerted; the fixture is broken")
	}
	for _, shards := range []int{1, 4} {
		got, st := replayIntoEngine(t, Config{Monitor: mkCfg(), Shards: shards, Policy: Block}, customers, batches)
		if len(got) != len(want) {
			t.Fatalf("%d shards: %d alerts, monitor raised %d", shards, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("%d shards: missing alert %+v", shards, k)
			}
		}
		if st.Shed != 0 {
			t.Fatalf("%d shards: Block policy shed %d messages", shards, st.Shed)
		}
		if st.Steps+st.Missing != st.Submitted {
			t.Fatalf("%d shards: processed %d+%d of %d submitted after drain", shards, st.Steps, st.Missing, st.Submitted)
		}
	}
}

// TestEngineParityWithEndMitigation interleaves EndMitigation signals and
// checks engine/monitor parity is preserved (control messages are routed
// to the owning shard in FIFO order with the telemetry).
func TestEngineParityWithEndMitigation(t *testing.T) {
	customers := testCustomers(8)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	model := tinyModel(t)
	ext := tinyExtractor()
	mkCfg := func() MonitorConfig {
		return MonitorConfig{
			Default: model, Extractor: ext, Threshold: 1.5,
			Types:             []ddos.AttackType{ddos.UDPFlood},
			MitigationTimeout: time.Hour, // only EndMitigation re-arms
		}
	}

	mon, err := NewMonitor(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Monitor: mkCfg(), Shards: 3, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	want := map[alertKey]bool{}
	for s := 0; s < 30; s++ {
		at := t0.Add(time.Duration(s) * time.Minute)
		for _, c := range customers {
			flows := udpFlows(c, s, t0)
			for _, a := range mon.ObserveStep(c, at, flows) {
				want[alertKey{c, a.Sig.Type, at}] = true
			}
			if err := eng.Submit(c, at, flows); err != nil {
				t.Fatal(err)
			}
		}
		if s%9 == 8 {
			for _, c := range customers[:4] {
				mon.EndMitigation(c, ddos.UDPFlood)
				if err := eng.EndMitigation(c, ddos.UDPFlood); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	got := map[alertKey]bool{}
	for ev := range eng.Alerts() {
		got[alertKey{ev.Customer, ev.Alert.Sig.Type, ev.At}] = true
	}
	if len(want) < 2*len(customers) {
		t.Fatalf("fixture too quiet: only %d reference alerts", len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("engine raised %d alerts, monitor %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing alert %+v", k)
		}
	}
}

// TestEngineConcurrentProducers drives one engine from many goroutines —
// the -race enforcement of the Monitor single-thread contract: every
// ObserveStep still happens on its owning shard only.
func TestEngineConcurrentProducers(t *testing.T) {
	eng, err := New(Config{Monitor: tinyMonitorConfig(t), Shards: 4, Queue: 64, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	customers := testCustomers(64)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)

	var consumed sync.WaitGroup
	consumed.Add(1)
	var alertCount int
	go func() {
		defer consumed.Done()
		for range eng.Alerts() {
			alertCount++
		}
	}()

	const producers, stepsPer = 8, 50
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for s := 0; s < stepsPer; s++ {
				c := customers[(p*stepsPer+s)%len(customers)]
				if err := eng.Submit(c, t0.Add(time.Duration(s)*time.Minute), udpFlows(c, s, t0)); err != nil {
					t.Error(err)
					return
				}
				if s%7 == 3 {
					if err := eng.ObserveMissing(c, t0.Add(time.Duration(s)*time.Minute)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	eng.Close()
	consumed.Wait()

	missingPer := 0
	for s := 0; s < stepsPer; s++ {
		if s%7 == 3 {
			missingPer++
		}
	}
	wantSubmitted := uint64(producers * (stepsPer + missingPer))
	if st.Submitted != wantSubmitted {
		t.Fatalf("submitted %d, want %d", st.Submitted, wantSubmitted)
	}
	if st.Steps+st.Missing != st.Submitted || st.Shed != 0 {
		t.Fatalf("after drain: steps=%d missing=%d shed=%d submitted=%d", st.Steps, st.Missing, st.Shed, st.Submitted)
	}
	if uint64(alertCount) != st.Alerts || alertCount == 0 {
		t.Fatalf("consumed %d alerts, shards counted %d", alertCount, st.Alerts)
	}
	// Dual shutdown must be safe.
	eng.Close()
	if err := eng.Submit(customers[0], t0, nil); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestEngineShedOldest stalls the single shard behind an undrained
// 1-slot alert channel and verifies ShedOldest keeps Submit non-blocking,
// counts the drops, and preserves the accounting identity.
func TestEngineShedOldest(t *testing.T) {
	cfg := tinyMonitorConfig(t)
	cfg.MitigationTimeout = time.Nanosecond // re-alert every warm step
	eng, err := New(Config{Monitor: cfg, Shards: 1, Queue: 2, Policy: ShedOldest, AlertBuffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	customer := testCustomers(1)[0]
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	const total = 50
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s := 0; s < total; s++ {
			if err := eng.Submit(customer, t0.Add(time.Duration(s)*time.Minute), udpFlows(customer, s, t0)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
		// Submission never blocked even though the shard stalled on alert
		// delivery: that is the whole point of ShedOldest.
	case <-time.After(30 * time.Second):
		t.Fatal("ShedOldest Submit blocked")
	}
	// Unblock the shard and let the queue flush.
	var alerts int
	go func() {
		if err := eng.Drain(); err != nil {
			t.Error(err)
		}
		eng.Close()
	}()
	for range eng.Alerts() {
		alerts++
	}
	st := eng.Stats()
	if st.Submitted != total {
		t.Fatalf("submitted %d, want %d", st.Submitted, total)
	}
	if st.Shed == 0 {
		t.Fatal("stalled shard with queue 2 shed nothing across 50 submits")
	}
	if st.Steps+st.Shed != st.Submitted {
		t.Fatalf("accounting broken: steps=%d shed=%d submitted=%d", st.Steps, st.Shed, st.Submitted)
	}
	if st.QueueHighWater == 0 {
		t.Fatal("queue high-water never moved")
	}
	// How many of the surviving steps alert depends on scheduling (the
	// shard may warm or not before the flush); the channel was drained
	// above so the engine could shut down cleanly either way.
	_ = alerts
}

// TestEngineShardRouting pins the stable-hash invariants: in-range,
// deterministic across engines, spread across shards, and consistent with
// ShardOf for every alert (checked in the parity tests).
func TestEngineShardRouting(t *testing.T) {
	a, err := New(Config{Monitor: tinyMonitorConfig(t), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Monitor: tinyMonitorConfig(t), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	used := map[int]int{}
	for i := 0; i < 256; i++ {
		c := netip.AddrFrom4([4]byte{10, 0, byte(i / 256), byte(i)})
		sa, sb := a.ShardOf(c), b.ShardOf(c)
		if sa != sb {
			t.Fatalf("routing not stable: %v → %d vs %d", c, sa, sb)
		}
		if sa < 0 || sa >= 4 {
			t.Fatalf("shard %d out of range", sa)
		}
		used[sa]++
	}
	for s := 0; s < 4; s++ {
		if used[s] == 0 {
			t.Fatalf("shard %d received no customers out of 256", s)
		}
	}
	// v4 and its v4-in-v6 form are the same wire customer: same shard.
	v4 := netip.MustParseAddr("203.0.113.9")
	v6 := netip.AddrFrom16(v4.As16())
	if a.ShardOf(v4) != a.ShardOf(v6) {
		t.Fatal("v4 and v4-in-v6 forms routed differently")
	}
}
