package engine

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/netflow"
	"github.com/xatu-go/xatu/internal/telemetry"
)

// benchMonitorConfig never alerts (threshold below any reachable survival
// probability), so the benchmark measures pure observation throughput:
// feature extraction + model forward per customer-step, fanned across
// shards.
func benchMonitorConfig(b *testing.B) MonitorConfig {
	cfg := tinyMonitorConfig(b)
	cfg.Threshold = 1e-12
	return cfg
}

// benchFlows builds one reusable per-customer step batch. The batch is
// deliberately larger than the test fixtures so per-step extractor work
// dominates engine overhead, as it does in deployment.
func benchFlows(customer netip.Addr, n int, t0 time.Time) []netflow.Record {
	flows := make([]netflow.Record, 0, n)
	for j := 0; j < n; j++ {
		flows = append(flows, netflow.Record{
			Src:     netip.MustParseAddr(fmt.Sprintf("11.2.%d.%d", j%250+1, j+1)),
			Dst:     customer,
			Proto:   netflow.ProtoUDP,
			SrcPort: uint16(1024 + j),
			DstPort: 80,
			Packets: uint32(10 + j),
			Bytes:   uint32(6000 + 100*j),
			Start:   t0,
			End:     t0.Add(30 * time.Second),
		})
	}
	return flows
}

// benchEngineShards measures engine throughput at a given shard count.
// One benchmark op is a full round: every customer submits one step. The
// producers are parallel, one per shard, each feeding exactly the
// customers its shard owns — a single producer goroutine saturates before
// the shards do and pins every shard count at the same steps/sec, hiding
// all scaling. ReportMetric exposes customer-steps/sec so shard counts
// compare directly. With a non-nil registry the run doubles as the
// telemetry overhead proof: same workload, instrumented engine,
// step-latency quantiles reported alongside ns/op.
func benchEngineShards(b *testing.B, shards int, reg *telemetry.Registry) {
	const (
		customers = 64
		flowsPer  = 24
	)
	cs := testCustomers(customers)
	t0 := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	batches := make([][]netflow.Record, customers)
	for i, c := range cs {
		batches[i] = benchFlows(c, flowsPer, t0)
	}

	eng, err := New(Config{
		Monitor:   benchMonitorConfig(b),
		Shards:    shards,
		Queue:     1024,
		Policy:    Block,
		Telemetry: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	go func() {
		for range eng.Alerts() {
		}
	}()

	// Partition customers by owning shard so each producer drives one
	// shard's mailbox with no cross-producer contention.
	byShard := make([][]int, shards)
	for i, c := range cs {
		s := eng.ShardOf(c)
		byShard[s] = append(byShard[s], i)
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	for _, own := range byShard {
		if len(own) == 0 {
			continue
		}
		wg.Add(1)
		go func(own []int) {
			defer wg.Done()
			for n := 0; n < b.N; n++ {
				at := t0.Add(time.Duration(n) * time.Minute)
				for _, i := range own {
					if err := eng.Submit(cs[i], at, batches[i]); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}(own)
	}
	wg.Wait()
	if err := eng.Drain(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()

	st := eng.Stats()
	want := uint64(b.N) * customers
	if st.Steps != want || st.Shed != 0 {
		b.Fatalf("engine processed %d steps (shed %d), want %d", st.Steps, st.Shed, want)
	}
	b.ReportMetric(float64(st.Steps)/b.Elapsed().Seconds(), "steps/sec")
	b.ReportMetric(float64(shards), "shards")
	if h := eng.StepLatency(); h != nil {
		sum := h.Summary()
		b.ReportMetric(float64(sum.P50), "p50-step-ns")
		b.ReportMetric(float64(sum.P90), "p90-step-ns")
		b.ReportMetric(float64(sum.P99), "p99-step-ns")
		b.ReportMetric(float64(sum.Max), "max-step-ns")
	}
}

func BenchmarkEngineShards1(b *testing.B)  { benchEngineShards(b, 1, nil) }
func BenchmarkEngineShards4(b *testing.B)  { benchEngineShards(b, 4, nil) }
func BenchmarkEngineShards16(b *testing.B) { benchEngineShards(b, 16, nil) }

// BenchmarkEngineShards4Telemetry is BenchmarkEngineShards4 with a live
// metric registry attached: the delta between the two ns/op numbers is
// the full cost of instrumentation (enqueue timestamps, two histogram
// Observes per step, channel-count mirroring). The acceptance budget is
// <5% over the uninstrumented baseline.
func BenchmarkEngineShards4Telemetry(b *testing.B) {
	benchEngineShards(b, 4, telemetry.NewRegistry())
}
