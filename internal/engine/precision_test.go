package engine

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/core"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/netflow"
)

// TestMonitorFloat32ParityChaosStream replays the seeded chaos stream of
// the engine/monitor parity test through a float64 monitor, a float32
// monitor, and a 4-shard float32 engine. Warm-up counting, signature
// matching and mitigation bookkeeping are precision-independent, so with
// the warm-equals-alert threshold the three alert sets must be identical —
// this pins the precision plumbing (lane construction, stream creation,
// batched dispatch) end to end; the survival-value tolerance argument
// lives in the trained-model test at the repo root.
func TestMonitorFloat32ParityChaosStream(t *testing.T) {
	customers := testCustomers(16)
	chaos := netflow.ChaosConfig{Seed: 42, DropRate: 0.10, DupRate: 0.05, ReorderRate: 0.05}
	batches := recordChaosStream(t, customers, 40, chaos)

	model := tinyModel(t)
	ext := tinyExtractor()
	mkCfg := func(p core.Precision) MonitorConfig {
		return MonitorConfig{
			Default:           model,
			Extractor:         ext,
			Threshold:         1.5,
			Types:             []ddos.AttackType{ddos.UDPFlood},
			MitigationTimeout: 10 * time.Minute,
			Precision:         p,
		}
	}

	want := replayIntoMonitor(t, mkCfg(core.PrecisionFloat64), customers, batches)
	if len(want) == 0 {
		t.Fatal("float64 monitor never alerted; the fixture is broken")
	}
	got32 := replayIntoMonitor(t, mkCfg(core.PrecisionFloat32), customers, batches)
	if len(got32) != len(want) {
		t.Fatalf("float32 monitor raised %d alerts, float64 raised %d", len(got32), len(want))
	}
	for k := range want {
		if !got32[k] {
			t.Fatalf("float32 monitor missing alert %+v", k)
		}
	}
	eng32, st := replayIntoEngine(t, Config{Monitor: mkCfg(core.PrecisionFloat32), Shards: 4, Policy: Block}, customers, batches)
	if len(eng32) != len(want) {
		t.Fatalf("float32 engine raised %d alerts, float64 monitor raised %d", len(eng32), len(want))
	}
	for k := range want {
		if !eng32[k] {
			t.Fatalf("float32 engine missing alert %+v", k)
		}
	}
	if st.Shed != 0 {
		t.Fatalf("Block policy shed %d messages", st.Shed)
	}
}

// TestMonitorFloat32CheckpointRoundTrip checkpoints a float32 monitor at a
// pooling-unaligned step, restores into a fresh float32 monitor, continues
// both, and requires byte-identical final checkpoints — the engine-level
// proof that the float32 restore path (runner lane arena included) is
// bitwise lossless.
func TestMonitorFloat32CheckpointRoundTrip(t *testing.T) {
	model := tinyModel(t)
	ext := tinyExtractor()
	mkCfg := func() MonitorConfig {
		return MonitorConfig{
			Default:           model,
			Extractor:         ext,
			Threshold:         1.5,
			Types:             []ddos.AttackType{ddos.UDPFlood, ddos.TCPSYN},
			MitigationTimeout: 10 * time.Minute,
			Precision:         core.PrecisionFloat32,
		}
	}
	orig, err := NewMonitor(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	customer := netip.MustParseAddr("203.0.113.7")
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 9; i++ {
		orig.ObserveStep(customer, t0.Add(time.Duration(i)*time.Minute), udpFlows(customer, i, t0))
	}
	var ck bytes.Buffer
	if err := orig.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	restored, err := NewMonitor(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(bytes.NewReader(ck.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 30; i++ {
		at := t0.Add(time.Duration(i) * time.Minute)
		if i == 17 {
			orig.EndMitigation(customer, ddos.UDPFlood)
			restored.EndMitigation(customer, ddos.UDPFlood)
		}
		if i%7 == 3 {
			orig.ObserveMissing(customer, at)
			restored.ObserveMissing(customer, at)
			continue
		}
		flows := udpFlows(customer, i, t0)
		a := orig.ObserveStep(customer, at, flows)
		b := restored.ObserveStep(customer, at, flows)
		if len(a) != len(b) {
			t.Fatalf("step %d: alert count diverged: %d vs %d", i, len(a), len(b))
		}
	}
	var ca, cb bytes.Buffer
	if err := orig.Checkpoint(&ca); err != nil {
		t.Fatal(err)
	}
	if err := restored.Checkpoint(&cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Fatal("post-continuation float32 monitor checkpoints differ")
	}
}

// TestMonitorFloat64CheckpointIntoFloat32 restores a checkpoint written by
// a float64 monitor into a float32 monitor: the narrowing restore must
// succeed, preserve step counts and mitigation flags, and keep serving.
func TestMonitorFloat64CheckpointIntoFloat32(t *testing.T) {
	model := tinyModel(t)
	ext := tinyExtractor()
	mkCfg := func(p core.Precision) MonitorConfig {
		return MonitorConfig{
			Default:           model,
			Extractor:         ext,
			Threshold:         1.5,
			Types:             []ddos.AttackType{ddos.UDPFlood},
			MitigationTimeout: 10 * time.Minute,
			Precision:         p,
		}
	}
	m64, err := NewMonitor(mkCfg(core.PrecisionFloat64))
	if err != nil {
		t.Fatal(err)
	}
	customer := netip.MustParseAddr("203.0.113.9")
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 12; i++ {
		m64.ObserveStep(customer, t0.Add(time.Duration(i)*time.Minute), udpFlows(customer, i, t0))
	}
	var ck bytes.Buffer
	if err := m64.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	m32, err := NewMonitor(mkCfg(core.PrecisionFloat32))
	if err != nil {
		t.Fatal(err)
	}
	if err := m32.Restore(bytes.NewReader(ck.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := m32.StreamSteps(customer, ddos.UDPFlood), m64.StreamSteps(customer, ddos.UDPFlood); got != want {
		t.Fatalf("restored stream steps %d, want %d", got, want)
	}
	if m32.Mitigating(customer, ddos.UDPFlood) != m64.Mitigating(customer, ddos.UDPFlood) {
		t.Fatal("mitigation flag diverged across precision restore")
	}
	for i := 12; i < 20; i++ {
		m32.ObserveStep(customer, t0.Add(time.Duration(i)*time.Minute), udpFlows(customer, i, t0))
	}
	if got := m32.StreamSteps(customer, ddos.UDPFlood); got != 20 {
		t.Fatalf("stream steps after continuation = %d, want 20", got)
	}
}
