package engine

import (
	"strconv"

	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/telemetry"
)

// engineMetrics is the engine's registered metric surface. Counters that
// the shards already keep as atomics are exported via CounterFunc — the
// hot path pays nothing it was not already paying — while latency
// histograms are the only new per-step work: two Observe calls (a few
// atomic adds each) per processed message, bounded by the <5% overhead
// budget proven in BenchmarkEngineShards4Telemetry.
type engineMetrics struct {
	// stepLatency is the in-shard ObserveStep duration (detection compute).
	stepLatency *telemetry.Histogram
	// submitLatency is Submit-to-processed: queue wait plus detection plus
	// alert fan-out, the operator-visible freshness of the pipeline.
	submitLatency *telemetry.Histogram
	// checkpointLatency times whole-fleet Checkpoint calls.
	checkpointLatency *telemetry.Histogram
	// alertsByType counts alerts per attack-type slug.
	alertsByType [ddos.NumAttackTypes]*telemetry.Counter
	// mitigationEnds counts processed EndMitigation signals.
	mitigationEnds *telemetry.Counter
	// recoveryLatency times supervised shard recoveries (monitor rebuild
	// from snapshot + WAL replay).
	recoveryLatency *telemetry.Histogram
	// fallbackAlerts counts alerts emitted by the CDetOnly fallback.
	fallbackAlerts *telemetry.Counter
}

// registerMetrics builds the engine's metric families on reg. Per-shard
// counters and queue gauges are labeled shard="<i>" and read straight
// from the shard atomics at scrape time.
func (e *Engine) registerMetrics(reg *telemetry.Registry) *engineMetrics {
	m := &engineMetrics{
		stepLatency: reg.Histogram("xatu_engine_step_seconds",
			"In-shard detection step latency (feature extraction + model forward)."),
		submitLatency: reg.Histogram("xatu_engine_submit_to_alert_seconds",
			"Latency from Submit/ObserveMissing to the step fully processed and its alerts emitted (queue wait + detection)."),
		checkpointLatency: reg.Histogram("xatu_engine_checkpoint_seconds",
			"Whole-fleet drain + checkpoint serialization duration."),
		mitigationEnds: reg.Counter("xatu_engine_mitigation_ends_total",
			"EndMitigation signals processed."),
		recoveryLatency: reg.Histogram("xatu_engine_recovery_seconds",
			"Supervised shard recovery duration (monitor rebuild + WAL replay)."),
		fallbackAlerts: reg.Counter("xatu_engine_fallback_alerts_total",
			"Alerts emitted by the pass-through CDet fallback in CDetOnly mode."),
	}
	reg.GaugeFunc("xatu_engine_health_state",
		"Engine degradation level: 0=healthy, 1=degraded, 2=cdet-only.",
		func() float64 { return float64(e.health.Load()) })
	for at := ddos.AttackType(0); at < ddos.NumAttackTypes; at++ {
		m.alertsByType[at] = reg.Counter("xatu_monitor_alerts_total",
			"Alerts raised by the detection core, by attack type.",
			telemetry.Label{Name: "type", Value: at.String()})
	}
	for _, s := range e.shards {
		s := s
		lbl := telemetry.Label{Name: "shard", Value: strconv.Itoa(s.id)}
		reg.CounterFunc("xatu_engine_submitted_total",
			"Telemetry messages enqueued (steps + missing).",
			func() float64 { return float64(s.submitted.Load()) }, lbl)
		reg.CounterFunc("xatu_engine_shed_total",
			"Telemetry messages dropped by the ShedOldest policy.",
			func() float64 { return float64(s.shed.Load()) }, lbl)
		reg.CounterFunc("xatu_engine_requeued_total",
			"Control messages requeued behind the tail instead of shed.",
			func() float64 { return float64(s.requeued.Load()) }, lbl)
		reg.CounterFunc("xatu_engine_steps_total",
			"ObserveStep calls processed.",
			func() float64 { return float64(s.steps.Load()) }, lbl)
		reg.CounterFunc("xatu_engine_missing_total",
			"ObserveMissing calls processed.",
			func() float64 { return float64(s.missing.Load()) }, lbl)
		reg.CounterFunc("xatu_engine_alerts_total",
			"Alerts fanned in from this shard.",
			func() float64 { return float64(s.alerts.Load()) }, lbl)
		reg.GaugeFunc("xatu_engine_queue_depth",
			"Current shard mailbox depth.",
			func() float64 { return float64(len(s.mail)) }, lbl)
		reg.GaugeFunc("xatu_engine_queue_capacity",
			"Shard mailbox capacity.",
			func() float64 { return float64(cap(s.mail)) }, lbl)
		reg.GaugeFunc("xatu_engine_queue_high_water",
			"Maximum observed shard mailbox depth.",
			func() float64 { return float64(s.highWater.Load()) }, lbl)
		reg.GaugeFunc("xatu_monitor_channels",
			"Live (customer, attack-type) detector channels on this shard.",
			func() float64 { return float64(s.channels.Load()) }, lbl)
		reg.CounterFunc("xatu_shard_restarts_total",
			"Supervised shard restarts after a recovered panic.",
			func() float64 { return float64(s.restarts.Load()) }, lbl)
		reg.CounterFunc("xatu_wal_replayed_total",
			"WAL telemetry messages replayed during shard recovery.",
			func() float64 { return float64(s.walReplayed.Load()) }, lbl)
		reg.CounterFunc("xatu_wal_dropped_total",
			"WAL entries evicted beyond the bounded replay window.",
			func() float64 { return float64(s.walDropped.Load()) }, lbl)
		reg.CounterFunc("xatu_engine_quarantined_total",
			"Poison messages quarantined by the shard supervisor.",
			func() float64 { return float64(s.quarantined.Load()) }, lbl)
		reg.CounterFunc("xatu_engine_lost_total",
			"Telemetry messages unrecoverable across restarts (poison + evicted WAL).",
			func() float64 { return float64(s.lost.Load()) }, lbl)
		reg.CounterFunc("xatu_engine_bypassed_total",
			"Telemetry handled by the CDet fallback instead of the model (CDetOnly).",
			func() float64 { return float64(s.bypassed.Load()) }, lbl)
		reg.CounterFunc("xatu_engine_snapshots_total",
			"Background incremental monitor snapshots published.",
			func() float64 { return float64(s.snapshots.Load()) }, lbl)
	}
	return m
}

// StepLatency returns the engine's detection-step latency histogram, or
// nil when the engine was built without Config.Telemetry. The histogram's
// Summary gives p50/p90/p99/max for shutdown reports and benchmarks.
func (e *Engine) StepLatency() *telemetry.Histogram {
	if e.mx == nil {
		return nil
	}
	return e.mx.stepLatency
}

// ShardHealth is one shard's liveness snapshot for /healthz.
type ShardHealth struct {
	Shard          int    `json:"shard"`
	QueueLen       int    `json:"queue_len"`
	QueueCap       int    `json:"queue_cap"`
	QueueHighWater int    `json:"queue_high_water"`
	Steps          uint64 `json:"steps"`
	Channels       int    `json:"channels"`
	Restarts       uint64 `json:"restarts,omitempty"`
	Stalled        bool   `json:"stalled,omitempty"`
	Dead           bool   `json:"dead,omitempty"`
	LastPanic      string `json:"last_panic,omitempty"`
}

// EngineHealth is the engine's health report: OK while the shard fleet is
// running (not closed, no dead shard), with the degradation state and its
// cause, and per-shard queue depth so saturation is visible before it
// becomes shed load. Degraded/CDetOnly keep OK true — the engine is still
// serving, just shedding work — so liveness probes don't kill a process
// that is deliberately riding out overload.
type EngineHealth struct {
	OK     bool          `json:"ok"`
	Closed bool          `json:"closed"`
	State  string        `json:"state"`
	Cause  string        `json:"cause,omitempty"`
	Shards []ShardHealth `json:"shards"`
}

// Health snapshots shard liveness, degradation state and queue depth.
// Safe to call from any goroutine at any time, including after Close.
func (e *Engine) Health() EngineHealth {
	h := EngineHealth{
		Closed: e.closed(),
		State:  e.healthNow().String(),
		Cause:  e.HealthCause(),
		Shards: make([]ShardHealth, len(e.shards)),
	}
	dead := 0
	for i, s := range e.shards {
		sh := ShardHealth{
			Shard:          i,
			QueueLen:       len(s.mail),
			QueueCap:       cap(s.mail),
			QueueHighWater: int(s.highWater.Load()),
			Steps:          s.steps.Load(),
			Channels:       int(s.channels.Load()),
			Restarts:       s.restarts.Load(),
			Stalled:        s.stalled.Load(),
			Dead:           s.dead.Load(),
		}
		if sh.Restarts > 0 || sh.Dead {
			sh.LastPanic = s.panicDetail()
		}
		if sh.Dead {
			dead++
		}
		h.Shards[i] = sh
	}
	h.OK = !h.Closed && dead == 0
	return h
}
