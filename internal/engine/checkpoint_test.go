package engine

import (
	"bytes"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/core"
	"github.com/xatu-go/xatu/internal/ddos"
)

// warmEngine builds an engine, feeds it a deterministic multi-customer
// trace (an unaligned number of steps, so pooled branches hold partial
// buffers and some channels are mid-mitigation) and drains it.
func warmEngine(t *testing.T, cfg Config, steps int) *Engine {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range eng.Alerts() {
		}
	}()
	feedTrace(t, eng, steps)
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func feedTrace(t *testing.T, eng *Engine, steps int) {
	t.Helper()
	customers := testCustomers(24)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	for s := 0; s < steps; s++ {
		at := t0.Add(time.Duration(s) * time.Minute)
		for i, c := range customers {
			if (s+i)%5 == 4 {
				if err := eng.ObserveMissing(c, at); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := eng.Submit(c, at, udpFlows(c, s, t0)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// feedMonitorTrace drives a bare Monitor through the identical trace.
func feedMonitorTrace(t *testing.T, mon *Monitor, steps int) {
	t.Helper()
	customers := testCustomers(24)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	for s := 0; s < steps; s++ {
		at := t0.Add(time.Duration(s) * time.Minute)
		for i, c := range customers {
			if (s+i)%5 == 4 {
				mon.ObserveMissing(c, at)
				continue
			}
			mon.ObserveStep(c, at, udpFlows(c, s, t0))
		}
	}
}

// TestEngineCheckpointRehashBitExact is the shard-count-portability
// invariant: state checkpointed at 4 shards, restored at 3, re-saved,
// restored at 1, must byte-equal both (a) the same trace run on a bare
// Monitor and checkpointed through the version-1 path, and (b) that
// version-1 file restored directly into a 1-shard engine — every stream
// survives any number of rehash cycles bit-exactly.
func TestEngineCheckpointRehashBitExact(t *testing.T) {
	model := tinyModel(t)
	ext := tinyExtractor()
	mkMon := func() MonitorConfig {
		return MonitorConfig{
			Default: model, Extractor: ext, Threshold: 1.5,
			Types:             []ddos.AttackType{ddos.UDPFlood, ddos.TCPSYN},
			MitigationTimeout: 10 * time.Minute,
		}
	}
	const steps = 9

	eng4 := warmEngine(t, Config{Monitor: mkMon(), Shards: 4, Policy: Block}, steps)
	var ck4 bytes.Buffer
	if err := eng4.Checkpoint(&ck4); err != nil {
		t.Fatal(err)
	}
	eng4.Close()

	// The same trace on a bare Monitor → a version-1 file.
	mon, err := NewMonitor(mkMon())
	if err != nil {
		t.Fatal(err)
	}
	feedMonitorTrace(t, mon, steps)
	var ckMon bytes.Buffer
	if err := mon.Checkpoint(&ckMon); err != nil {
		t.Fatal(err)
	}

	// 4 shards → 3 shards → 1 shard, rehashing each time.
	eng3, err := New(Config{Monitor: mkMon(), Shards: 3, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng3.Restore(bytes.NewReader(ck4.Bytes())); err != nil {
		t.Fatal(err)
	}
	var ck3 bytes.Buffer
	if err := eng3.Checkpoint(&ck3); err != nil {
		t.Fatal(err)
	}
	eng3.Close()

	eng1, err := New(Config{Monitor: mkMon(), Shards: 1, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng1.Restore(bytes.NewReader(ck3.Bytes())); err != nil {
		t.Fatal(err)
	}
	var ck1 bytes.Buffer
	if err := eng1.Checkpoint(&ck1); err != nil {
		t.Fatal(err)
	}
	eng1.Close()

	// The version-1 monitor file restores directly into a 1-shard engine
	// (the backward-compat path) and must reproduce the same bytes.
	engCompat, err := New(Config{Monitor: mkMon(), Shards: 1, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	if err := engCompat.Restore(bytes.NewReader(ckMon.Bytes())); err != nil {
		t.Fatal(err)
	}
	var ckCompat bytes.Buffer
	if err := engCompat.Checkpoint(&ckCompat); err != nil {
		t.Fatal(err)
	}
	engCompat.Close()

	if !bytes.Equal(ck1.Bytes(), ckCompat.Bytes()) {
		t.Fatal("rehash 4→3→1 diverged from the direct monitor restore")
	}
	// The single segment inside the 1-shard engine file is exactly the
	// bare Monitor's sorted channel body.
	segs, err := checkpointSegments(ck1.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("1-shard checkpoint has %d segments", len(segs))
	}
	monSegs, err := checkpointSegments(ckMon.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(segs[0], monSegs[0]) {
		t.Fatal("1-shard engine segment differs from bare monitor checkpoint body")
	}
}

// TestEngineRestoreContinuationParity restores a 4-shard checkpoint into
// a 2-shard engine and requires the continuation to raise the identical
// alert set as an uninterrupted bare Monitor over the whole trace.
func TestEngineRestoreContinuationParity(t *testing.T) {
	model := tinyModel(t)
	ext := tinyExtractor()
	mkMon := func() MonitorConfig {
		return MonitorConfig{
			Default: model, Extractor: ext, Threshold: 1.5,
			Types:             []ddos.AttackType{ddos.UDPFlood},
			MitigationTimeout: 10 * time.Minute,
		}
	}
	customers := testCustomers(24)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	const prefix, total = 9, 40

	// Uninterrupted reference run.
	mon, err := NewMonitor(mkMon())
	if err != nil {
		t.Fatal(err)
	}
	want := map[alertKey]bool{}
	for s := 0; s < total; s++ {
		at := t0.Add(time.Duration(s) * time.Minute)
		for _, c := range customers {
			for _, a := range mon.ObserveStep(c, at, udpFlows(c, s, t0)) {
				want[alertKey{c, a.Sig.Type, at}] = true
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("reference run never alerted")
	}

	// Interrupted run: prefix on 4 shards, checkpoint, rest on 2 shards.
	eng4, err := New(Config{Monitor: mkMon(), Shards: 4, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	got := map[alertKey]bool{}
	collect := func(eng *Engine) {
		for ev := range eng.Alerts() {
			got[alertKey{ev.Customer, ev.Alert.Sig.Type, ev.At}] = true
		}
	}
	done4 := make(chan struct{})
	go func() { defer close(done4); collect(eng4) }()
	for s := 0; s < prefix; s++ {
		at := t0.Add(time.Duration(s) * time.Minute)
		for _, c := range customers {
			if err := eng4.Submit(c, at, udpFlows(c, s, t0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var ck bytes.Buffer
	if err := eng4.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	eng4.Close()
	<-done4

	eng2, err := New(Config{Monitor: mkMon(), Shards: 2, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Restore(bytes.NewReader(ck.Bytes())); err != nil {
		t.Fatal(err)
	}
	done2 := make(chan struct{})
	go func() { defer close(done2); collect(eng2) }()
	for s := prefix; s < total; s++ {
		at := t0.Add(time.Duration(s) * time.Minute)
		for _, c := range customers {
			if err := eng2.Submit(c, at, udpFlows(c, s, t0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng2.Drain(); err != nil {
		t.Fatal(err)
	}
	eng2.Close()
	<-done2

	if len(got) != len(want) {
		t.Fatalf("restored run raised %d alerts, uninterrupted %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing alert %+v", k)
		}
	}
}

// TestEngineCheckpointSegmentsRouteByHash verifies every channel record
// in a multi-shard checkpoint lives in the segment of its customer's
// owning shard — the on-disk form of "same customer, same shard".
func TestEngineCheckpointSegmentsRouteByHash(t *testing.T) {
	eng := warmEngine(t, Config{Monitor: tinyMonitorConfig(t), Shards: 4, Policy: Block}, 7)
	var ck bytes.Buffer
	if err := eng.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	segs, err := checkpointSegments(ck.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 4 {
		t.Fatalf("%d segments, want 4", len(segs))
	}
	total := 0
	for i, seg := range segs {
		chans, err := scanMonitorBody(seg)
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		total += len(chans)
		for _, rc := range chans {
			if own := shardOf(rc.customer, 4); own != i {
				t.Fatalf("customer %v stored in segment %d, owned by shard %d", rc.customer, i, own)
			}
		}
	}
	if total != 24 {
		t.Fatalf("%d channels across segments, want 24 (24 customers × 1 type)", total)
	}
}

// TestEngineRestoreRejectsCorruption exercises the failure paths: on any
// error the engine's previous state must be untouched.
func TestEngineRestoreRejectsCorruption(t *testing.T) {
	eng := warmEngine(t, Config{Monitor: tinyMonitorConfig(t), Shards: 2, Policy: Block}, 6)
	defer eng.Close()
	var before bytes.Buffer
	if err := eng.Checkpoint(&before); err != nil {
		t.Fatal(err)
	}
	good := before.Bytes()

	cases := map[string][]byte{
		"bad magic":     append([]byte("YMC1"), good[4:]...),
		"bad version":   append(append([]byte{}, good[:4]...), append([]byte{9, 0}, good[6:]...)...),
		"truncated":     good[:len(good)-10],
		"empty":         nil,
		"trailing junk": append(append([]byte{}, good...), 0xFF),
	}
	for name, data := range cases {
		if err := eng.Restore(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: restore succeeded", name)
		}
		var after bytes.Buffer
		if err := eng.Checkpoint(&after); err != nil {
			t.Fatalf("%s: checkpoint after failed restore: %v", name, err)
		}
		if !bytes.Equal(after.Bytes(), good) {
			t.Errorf("%s: failed restore mutated engine state", name)
		}
	}

	// An engine with a different model architecture must reject the
	// streams via the per-stream config digest.
	cfg := core.DefaultConfig(273)
	cfg.Hidden = 6
	cfg.PoolShort, cfg.PoolMed, cfg.PoolLong = 1, 2, 4
	cfg.Window = 4
	mm, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	other, err := New(Config{Monitor: MonitorConfig{
		Default: mm, Extractor: tinyExtractor(), Threshold: 1.5,
		Types: []ddos.AttackType{ddos.UDPFlood},
	}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.Restore(bytes.NewReader(good)); err == nil {
		t.Error("architecture mismatch: restore succeeded")
	}
}

// TestMonitorRestoreRejectsEngineCheckpoint pins the version gate: a bare
// Monitor must refuse a multi-shard file with a pointer to Engine.
func TestMonitorRestoreRejectsEngineCheckpoint(t *testing.T) {
	eng := warmEngine(t, Config{Monitor: tinyMonitorConfig(t), Shards: 2, Policy: Block}, 5)
	var ck bytes.Buffer
	if err := eng.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	mon, err := NewMonitor(tinyMonitorConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Restore(bytes.NewReader(ck.Bytes())); err == nil {
		t.Fatal("monitor restored an engine checkpoint")
	}
}
