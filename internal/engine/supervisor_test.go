package engine

import (
	"bytes"
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/cdet"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/netflow"
)

// scanCheckpoint parses any checkpoint layout into customer → raw channel
// record bytes, the bit-exact comparison unit of the stream state.
func scanCheckpoint(t *testing.T, data []byte) map[netip.Addr][][]byte {
	t.Helper()
	segs, err := checkpointSegments(data)
	if err != nil {
		t.Fatalf("parsing checkpoint: %v", err)
	}
	out := make(map[netip.Addr][][]byte)
	for _, seg := range segs {
		chans, err := scanMonitorBody(seg)
		if err != nil {
			t.Fatalf("scanning segment: %v", err)
		}
		for _, rc := range chans {
			out[rc.customer] = append(out[rc.customer], rc.raw)
		}
	}
	return out
}

// TestSupervisorRecoversInjectedPanic pins the heart of the self-healing
// contract: a poison message restarts the shard from its last snapshot
// plus a full WAL replay, and because the poison carried no telemetry the
// recovered stream state is bit-identical to a monitor that never saw a
// fault at all.
func TestSupervisorRecoversInjectedPanic(t *testing.T) {
	cfg := tinyMonitorConfig(t)
	eng, err := New(Config{
		Monitor:            cfg,
		Shards:             1,
		Policy:             Block,
		Watchdog:           -1,
		CheckpointInterval: -1, // recovery must come from the WAL alone
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	go func() {
		for range eng.Alerts() {
		}
	}()
	customer := testCustomers(1)[0]
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	submit := func(lo, hi int) {
		for s := lo; s < hi; s++ {
			if err := eng.Submit(customer, t0.Add(time.Duration(s)*time.Minute), udpFlows(customer, s, t0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	submit(0, 6)
	if err := eng.InjectFault(0); err != nil {
		t.Fatal(err)
	}
	submit(6, 12)
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}

	st := eng.Stats()
	if st.Restarts != 1 || st.Quarantined != 1 {
		t.Fatalf("restarts=%d quarantined=%d, want 1/1", st.Restarts, st.Quarantined)
	}
	if st.WALReplayed != 6 {
		t.Fatalf("replayed %d WAL messages, want the 6 pre-fault steps", st.WALReplayed)
	}
	if st.Lost != 0 || st.WALDropped != 0 {
		t.Fatalf("lost=%d walDropped=%d, want 0/0 (poison carried no telemetry)", st.Lost, st.WALDropped)
	}
	if st.Steps != 12 {
		t.Fatalf("steps=%d, want 12", st.Steps)
	}
	if st.DeadShards != 0 {
		t.Fatal("shard reported dead after a supervised recovery")
	}

	var got bytes.Buffer
	if err := eng.Checkpoint(&got); err != nil {
		t.Fatal(err)
	}
	// Reference: the same 12 steps with no fault anywhere near them.
	ref, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 12; s++ {
		ref.ObserveStep(customer, t0.Add(time.Duration(s)*time.Minute), udpFlows(customer, s, t0))
	}
	var want bytes.Buffer
	if err := ref.Checkpoint(&want); err != nil {
		t.Fatal(err)
	}
	gm, wm := scanCheckpoint(t, got.Bytes()), scanCheckpoint(t, want.Bytes())
	if len(gm[customer]) == 0 || len(gm[customer]) != len(wm[customer]) {
		t.Fatalf("channel count mismatch: got %d want %d", len(gm[customer]), len(wm[customer]))
	}
	for i := range gm[customer] {
		if !bytes.Equal(gm[customer][i], wm[customer][i]) {
			t.Fatalf("recovered stream state diverges from fault-free reference at channel %d", i)
		}
	}
}

// TestSupervisorBoundedLoss pins the loss bound: with a WAL of 4 and no
// snapshots, a panic after 10 steps replays exactly the last 4 and
// accounts the 6 evicted ones as lost.
func TestSupervisorBoundedLoss(t *testing.T) {
	eng, err := New(Config{
		Monitor:            tinyMonitorConfig(t),
		Shards:             1,
		Policy:             Block,
		Watchdog:           -1,
		WAL:                4,
		CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	go func() {
		for range eng.Alerts() {
		}
	}()
	customer := testCustomers(1)[0]
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	for s := 0; s < 10; s++ {
		if err := eng.Submit(customer, t0.Add(time.Duration(s)*time.Minute), udpFlows(customer, s, t0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.InjectFault(0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.WALReplayed != 4 {
		t.Fatalf("replayed %d, want 4 (WAL capacity)", st.WALReplayed)
	}
	if st.Lost != 6 || st.WALDropped != 6 {
		t.Fatalf("lost=%d walDropped=%d, want 6/6 (evicted beyond the window)", st.Lost, st.WALDropped)
	}
	if got := eng.shards[0].mon.StreamSteps(customer, ddos.UDPFlood); got != 4 {
		t.Fatalf("recovered stream has %d steps, want the 4 replayed", got)
	}
}

// TestDeadShardSurfacesEverywhere pins the Drain-deadlock fix: with
// supervision disabled a panicking shard dies, and every path that used
// to hang — Drain, Checkpoint, Submit, EndMitigation — now fails fast
// with ErrShardDead, while Stats and Health report the corpse.
func TestDeadShardSurfacesEverywhere(t *testing.T) {
	eng, err := New(Config{
		Monitor:            tinyMonitorConfig(t),
		Shards:             1,
		Policy:             Block,
		Watchdog:           -1,
		DrainTimeout:       2 * time.Second,
		DisableSupervision: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.InjectFault(0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().DeadShards == 0 {
		if time.Now().After(deadline) {
			t.Fatal("shard death never surfaced in Stats")
		}
		time.Sleep(time.Millisecond)
	}
	if err := eng.Drain(); !errors.Is(err, ErrShardDead) {
		t.Fatalf("Drain on dead shard: %v, want ErrShardDead", err)
	}
	if err := eng.Checkpoint(&bytes.Buffer{}); !errors.Is(err, ErrShardDead) {
		t.Fatalf("Checkpoint on dead shard: %v, want ErrShardDead", err)
	}
	customer := testCustomers(1)[0]
	if err := eng.Submit(customer, time.Now(), nil); !errors.Is(err, ErrShardDead) {
		t.Fatalf("Submit to dead shard: %v, want ErrShardDead", err)
	}
	if err := eng.EndMitigation(customer, ddos.UDPFlood); !errors.Is(err, ErrShardDead) {
		t.Fatalf("EndMitigation to dead shard: %v, want ErrShardDead", err)
	}
	h := eng.Health()
	if h.OK {
		t.Fatal("health OK with a dead shard")
	}
	if !h.Shards[0].Dead || h.Shards[0].LastPanic == "" {
		t.Fatalf("shard health missing death detail: %+v", h.Shards[0])
	}
}

// TestBarrierTimeout pins that a wedged (not dead) shard cannot hang a
// barrier past DrainTimeout. The shard is wedged by stuffing the alert
// buffer: with nobody draining Alerts, the shard blocks mid-delivery.
func TestBarrierTimeout(t *testing.T) {
	cfg := tinyMonitorConfig(t)
	cfg.OverheadBound = 0.25
	eng, err := New(Config{
		Monitor:      cfg,
		Shards:       1,
		Policy:       Block,
		Watchdog:     -1,
		AlertBuffer:  1,
		DrainTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	customers := testCustomers(3)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	// No alert drainer: each customer alerts once its stream warms, three
	// alerts overflow the one-slot buffer, the shard wedges on delivery and
	// the barrier must time out.
	for s := 0; s < 12; s++ {
		for _, c := range customers {
			if err := eng.Submit(c, t0.Add(time.Duration(s)*time.Minute), udpFlows(c, s, t0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng.Drain(); !errors.Is(err, ErrBarrierTimeout) {
		t.Fatalf("Drain on wedged shard: %v, want ErrBarrierTimeout", err)
	}
	go func() {
		for range eng.Alerts() {
		}
	}()
	eng.Close()
}

// TestDegradedModesShedInOrder pins what each health state sheds:
// Degraded drops only traces, CDetOnly bypasses the model but keeps
// alerts flowing through the warm CDet fallback.
func TestDegradedModesShedInOrder(t *testing.T) {
	cfg := tinyMonitorConfig(t)
	// Short mitigation hold so the model re-alerts inside the 4-step
	// Degraded window regardless of where warm-up landed.
	cfg.MitigationTimeout = 2 * time.Minute
	fallback := cdet.Params{
		Name:         "fallback",
		AbsFloorMbps: 0.05,
		Multiplier:   2,
		SigmaK:       3,
		SustainSteps: 1,
		ReleaseSteps: 1,
		EWMAAlpha:    0.1,
	}
	eng, err := New(Config{
		Monitor:  cfg,
		Shards:   1,
		Policy:   Block,
		Watchdog: -1,
		Step:     time.Minute,
		Fallback: &fallback,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []AlertEvent
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range eng.Alerts() {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}
	}()
	customer := testCustomers(1)[0]
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	calm := func(s int) []netflow.Record {
		return []netflow.Record{{
			Src: netip.MustParseAddr("11.2.3.4"), Dst: customer,
			Proto: netflow.ProtoUDP, SrcPort: 4000, DstPort: 80,
			Packets: 10, Bytes: 2000,
			Start: t0.Add(time.Duration(s) * time.Minute), End: t0.Add(time.Duration(s)*time.Minute + 30*time.Second),
		}}
	}
	// Warm the fallback baselines while Healthy (12 calm steps clears the
	// cdet 10-step warm-up).
	step := 0
	for ; step < 12; step++ {
		if err := eng.Submit(customer, t0.Add(time.Duration(step)*time.Minute), calm(step)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}

	// Degraded: the model still runs (alerts possible) but traces are shed.
	eng.ForceHealth(Degraded, "drill")
	for lim := step + 4; step < lim; step++ {
		if err := eng.Submit(customer, t0.Add(time.Duration(step)*time.Minute), udpFlows(customer, step, t0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	stDegraded := eng.Stats()
	if stDegraded.Steps != uint64(step) {
		t.Fatalf("degraded mode bypassed the model: steps=%d want %d", stDegraded.Steps, step)
	}

	// CDetOnly: inference shed, fallback confirms the volumetric flood.
	eng.ForceHealth(CDetOnly, "drill")
	attack := func(s int) []netflow.Record {
		return []netflow.Record{{
			Src: netip.MustParseAddr("12.9.9.9"), Dst: customer,
			Proto: netflow.ProtoUDP, SrcPort: 53, DstPort: 80,
			Packets: 100000, Bytes: 100e6,
			Start: t0.Add(time.Duration(s) * time.Minute), End: t0.Add(time.Duration(s)*time.Minute + 30*time.Second),
		}}
	}
	for lim := step + 3; step < lim; step++ {
		if err := eng.Submit(customer, t0.Add(time.Duration(step)*time.Minute), attack(step)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Steps != stDegraded.Steps {
		t.Fatalf("CDetOnly still ran the model: steps went %d -> %d", stDegraded.Steps, st.Steps)
	}
	if st.Bypassed != 3 {
		t.Fatalf("bypassed=%d, want the 3 CDetOnly steps", st.Bypassed)
	}
	if st.FallbackAlerts == 0 {
		t.Fatal("fallback raised no alert for a 13 Mbps flood")
	}
	if st.Steps+st.Missing+st.Bypassed != st.Submitted {
		t.Fatalf("accounting identity broken: steps %d + missing %d + bypassed %d != submitted %d",
			st.Steps, st.Missing, st.Bypassed, st.Submitted)
	}
	if st.Health != CDetOnly || st.HealthCause != "drill" {
		t.Fatalf("health state %v cause %q, want forced CDetOnly/drill", st.Health, st.HealthCause)
	}
	h := eng.Health()
	if !h.OK || h.State != "cdet-only" || h.Cause != "drill" {
		t.Fatalf("degraded health report wrong (must stay OK): %+v", h)
	}

	eng.Close()
	<-drained
	mu.Lock()
	defer mu.Unlock()
	var sawDegradedAlert, sawFallbackAlert bool
	for _, ev := range events {
		if ev.Alert.Source == fallback.Name {
			sawFallbackAlert = true
			if ev.Trace != nil {
				t.Fatal("fallback alert carries a model trace")
			}
			continue
		}
		if ev.Trace == nil {
			sawDegradedAlert = true
		}
	}
	if !sawDegradedAlert {
		t.Fatal("degraded-mode model alerts missing (or still carrying traces)")
	}
	if !sawFallbackAlert {
		t.Fatal("no fallback alert reached the alert channel")
	}
}

// TestHealthLadder unit-tests the state machine: escalation after the
// confirmation debounce, one rung at a time, and hysteretic recovery.
func TestHealthLadder(t *testing.T) {
	eng, err := New(Config{Monitor: tinyMonitorConfig(t), Shards: 1, Watchdog: -1, RecoverTicks: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	go func() {
		for range eng.Alerts() {
		}
	}()
	lad := &healthLadder{}
	tick := func(sig healthSignals) HealthState {
		desired, cause := decideHealth(&eng.cfg, sig)
		eng.stepHealth(desired, cause, lad)
		return eng.HealthState()
	}
	full := healthSignals{shedding: true, worstQueueFrac: 1.0}
	if st := tick(full); st != Healthy {
		t.Fatalf("escalated on a single tick: %v", st)
	}
	if st := tick(full); st != Degraded {
		t.Fatalf("after %d hot ticks: %v, want Degraded", pressureTicks, st)
	}
	if st := tick(full); st != Degraded {
		t.Fatalf("jumped a rung: %v", st)
	}
	if st := tick(full); st != CDetOnly {
		t.Fatalf("never reached CDetOnly: %v", st)
	}
	if len(eng.Transitions()) != 2 {
		t.Fatalf("transition history has %d entries, want 2", len(eng.Transitions()))
	}
	clean := healthSignals{shedding: true}
	for i := 0; i < 2; i++ {
		if st := tick(clean); st != CDetOnly {
			t.Fatalf("recovered before hysteresis (%d clean ticks): %v", i+1, st)
		}
	}
	if st := tick(clean); st != Degraded {
		t.Fatal("did not step down after RecoverTicks clean ticks")
	}
	// A pressure blip resets the recovery count.
	tick(clean)
	tick(healthSignals{shedding: true, worstQueueFrac: degradedQueueFrac})
	for i := 0; i < 2; i++ {
		if st := tick(clean); st != Degraded {
			t.Fatalf("blip did not reset hysteresis: %v", st)
		}
	}
	if st := tick(clean); st != Healthy {
		t.Fatal("never returned to Healthy")
	}
	// Dead shards pin the state at Degraded.
	if st, cause := decideHealth(&eng.cfg, healthSignals{deadShards: 1}); st != Degraded || cause == "" {
		t.Fatalf("dead shard decided %v/%q", st, cause)
	}
}

// TestWatchdogAutoDegradesAndRecovers runs the real watchdog loop: a
// wedged shard under ShedOldest saturates its mailbox, the engine rides
// the ladder to CDetOnly, and once the wedge clears it recovers to
// Healthy through hysteresis — no operator action anywhere.
func TestWatchdogAutoDegradesAndRecovers(t *testing.T) {
	cfg := tinyMonitorConfig(t)
	cfg.OverheadBound = 0.25
	eng, err := New(Config{
		Monitor:      cfg,
		Shards:       1,
		Queue:        4,
		Policy:       ShedOldest,
		AlertBuffer:  1,
		Watchdog:     5 * time.Millisecond,
		StallAfter:   20 * time.Millisecond,
		RecoverTicks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	customers := testCustomers(3)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (state=%v cause=%q)", what, eng.HealthState(), eng.HealthCause())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	// Wedge the shard first: no alert drainer, so the three alerts raised
	// at warm-up (step 3) overflow the one-slot buffer — the first is
	// buffered, the second blocks the shard mid-delivery. The warm-up rows
	// are drained one at a time so ShedOldest cannot drop them (nothing
	// alerts before step 3, so these barriers cannot wedge).
	for s := 0; s < 4; s++ {
		for _, c := range customers {
			if err := eng.Submit(c, t0.Add(time.Duration(s)*time.Minute), udpFlows(c, s, t0)); err != nil {
				t.Fatal(err)
			}
		}
		if s < 3 {
			if err := eng.Drain(); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor("shard wedged on alert delivery", func() bool { return eng.Stats().Alerts >= 2 })
	// Now flood the wedged shard: the mailbox pins at capacity and
	// ShedOldest converts the backlog into shed load.
	for s := 4; s < 12; s++ {
		for _, c := range customers {
			if err := eng.Submit(c, t0.Add(time.Duration(s)*time.Minute), udpFlows(c, s, t0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor("auto-escalation to CDetOnly", func() bool { return eng.HealthState() == CDetOnly })
	// Clear the wedge: drain alerts so the shard works the queue off.
	go func() {
		for range eng.Alerts() {
		}
	}()
	waitFor("hysteretic recovery to Healthy", func() bool { return eng.HealthState() == Healthy })
	trans := eng.Transitions()
	if len(trans) < 4 {
		t.Fatalf("expected ≥4 transitions (up and down the ladder), got %v", trans)
	}
	eng.Close()
}

// TestIncrementalCheckpointConcurrent is the -race proof for satellite 3:
// incremental checkpoints captured while producers are live restore to
// stream state bit-identical to a fresh monitor fed exactly the same
// step prefix.
func TestIncrementalCheckpointConcurrent(t *testing.T) {
	cfg := tinyMonitorConfig(t)
	cfg.Threshold = 1e-12 // never alert: the test needs no drainer-side effects
	eng, err := New(Config{
		Monitor:            cfg,
		Shards:             2,
		Policy:             Block,
		Watchdog:           -1,
		CheckpointInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	go func() {
		for range eng.Alerts() {
		}
	}()
	customers := testCustomers(4)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	const steps = 40
	var wg sync.WaitGroup
	for _, c := range customers {
		wg.Add(1)
		go func(c netip.Addr) {
			defer wg.Done()
			for s := 0; s < steps; s++ {
				if err := eng.Submit(c, t0.Add(time.Duration(s)*time.Minute), udpFlows(c, s, t0)); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	// Capture incremental checkpoints mid-flight, keeping the last one
	// taken while producers were demonstrably still running.
	var capture bytes.Buffer
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := eng.Stats()
		if st.Snapshots >= 2 && st.Steps > 0 {
			capture.Reset()
			if err := eng.CheckpointIncremental(&capture); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no background snapshot appeared")
		}
	}
	wg.Wait()
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}

	// Restore the mid-run capture into a fresh single-shard engine.
	restored, err := New(Config{Monitor: cfg, Shards: 1, Policy: Block, Watchdog: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	go func() {
		for range restored.Alerts() {
		}
	}()
	if err := restored.Restore(bytes.NewReader(capture.Bytes())); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := restored.Checkpoint(&got); err != nil {
		t.Fatal(err)
	}
	gm := scanCheckpoint(t, got.Bytes())

	// Reference: each customer's restored stream must equal a fresh
	// monitor fed exactly the first k submitted batches, bit for bit.
	total := 0
	for _, c := range customers {
		k := restored.shards[0].mon.StreamSteps(c, ddos.UDPFlood)
		if k < 0 || k > steps {
			t.Fatalf("customer %v restored with %d steps", c, k)
		}
		total += k
		ref, err := NewMonitor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < k; s++ {
			ref.ObserveStep(c, t0.Add(time.Duration(s)*time.Minute), udpFlows(c, s, t0))
		}
		var want bytes.Buffer
		if err := ref.Checkpoint(&want); err != nil {
			t.Fatal(err)
		}
		wm := scanCheckpoint(t, want.Bytes())
		if len(gm[c]) != len(wm[c]) {
			t.Fatalf("customer %v: %d channels restored, reference has %d", c, len(gm[c]), len(wm[c]))
		}
		for i := range gm[c] {
			if !bytes.Equal(gm[c][i], wm[c][i]) {
				t.Fatalf("customer %v channel %d: restored stream diverges from the %d-step prefix", c, i, k)
			}
		}
	}
	if total == 0 {
		t.Fatal("capture held no steps; snapshot cadence broken")
	}
}

// TestCheckpointIncrementalEmptyBoot pins that an engine that has never
// snapshotted still writes a restorable (empty) checkpoint.
func TestCheckpointIncrementalEmptyBoot(t *testing.T) {
	eng, err := New(Config{Monitor: tinyMonitorConfig(t), Shards: 3, Watchdog: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var buf bytes.Buffer
	if err := eng.CheckpointIncremental(&buf); err != nil {
		t.Fatal(err)
	}
	if err := eng.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("empty incremental checkpoint does not restore: %v", err)
	}
}

// TestInjectFaultBounds pins the InjectFault argument contract.
func TestInjectFaultBounds(t *testing.T) {
	eng, err := New(Config{Monitor: tinyMonitorConfig(t), Shards: 2, Watchdog: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, bad := range []int{-1, 2, 99} {
		if err := eng.InjectFault(bad); err == nil {
			t.Fatalf("InjectFault(%d) accepted", bad)
		}
	}
}
