// Package engine is Xatu's serving layer: the single-threaded Monitor —
// the deployable detection unit of §2.6 — and the sharded concurrent
// Engine that scales it across customers. A deployment the size of the
// paper's (1000+ protected customers behind one ISP) cannot run on one
// goroutine; the Engine partitions customers across N shards by a stable
// hash of their address, each shard owning one Monitor behind a bounded
// mailbox, and coordinates lifecycle (drain, checkpoint, restore) across
// the fleet.
package engine

import (
	"errors"
	"io"
	"math"
	"net/netip"
	"time"

	"github.com/xatu-go/xatu/internal/core"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/features"
	"github.com/xatu-go/xatu/internal/netflow"
)

// MonitorConfig configures an online Monitor, the deployable unit of §2.6:
// it consumes one step of flow records per protected customer, maintains
// per-(customer, attack-type) detector streams, and emits alerts when the
// survival probability crosses the calibrated threshold.
type MonitorConfig struct {
	// Models maps attack types to their trained models. Types not present
	// fall back to Default.
	Models map[ddos.AttackType]*core.Model
	// Default is the fallback model (required if Models is incomplete).
	Default *core.Model
	// Extractor computes the 273 features per step.
	Extractor *features.Extractor
	// Threshold is the survival threshold: alert when S < Threshold.
	Threshold float64
	// Types are the attack types to watch; nil = all six.
	Types []ddos.AttackType
	// MitigationTimeout releases a diversion with no EndMitigation call
	// after this duration (CScrub gives up). Zero = 30 minutes.
	MitigationTimeout time.Duration
	// RecordHistory, when set, feeds the monitor's own alerts back into the
	// extractor's history registry (the autoregressive mode of §5.3).
	RecordHistory bool
	// MissingPolicy selects what detector streams consume for steps with no
	// telemetry (see ObserveMissing): zero-fill (default) or carry-forward.
	MissingPolicy core.MissingPolicy
	// Precision selects the kernel arithmetic of every detector stream.
	// The zero value is float64 (training precision); deployments default
	// to float32 via the command-line flag, which serves the quantized
	// panel kernels at a several-fold throughput gain with alert behavior
	// held within the calibrated tolerance (DESIGN.md §14). Models are
	// quantized at NewMonitor, so corrupt weights fail construction, not
	// serving.
	Precision core.Precision
	// OverheadBound, when set, records the calibration overhead budget the
	// Threshold was tuned at (the scrubbing-overhead bound C/A of §2.4) in
	// every alert's decision trace, so operators can see what guarantee the
	// firing threshold encodes. Informational only.
	OverheadBound float64
}

// traceTrajectory is how many recent survival values each channel retains
// for decision traces.
const traceTrajectory = 16

// Trace is the structured explanation attached to every alert: the
// evidence an operator needs to act on a detection built from weak
// auxiliary signals (§5). It records the survival trajectory that crossed
// the threshold, the per-signal-group share of the feature mass at the
// firing step, the calibration the threshold encodes, and how much of the
// step's traffic matched the diverted signature. Traces marshal to JSON
// for AlertEvent consumers and the /debug/alerts ring.
type Trace struct {
	// Customer is the protected address the alert fired for.
	Customer netip.Addr `json:"customer"`
	// Type is the attack-type slug ("udp-flood", ...).
	Type string `json:"type"`
	// At is the step time of the firing observation.
	At time.Time `json:"at"`
	// Survival is S_t at the firing step; the alert fired because
	// Survival < Threshold.
	Survival float64 `json:"survival"`
	// Threshold is the calibrated survival threshold.
	Threshold float64 `json:"threshold"`
	// OverheadBound is the scrubbing-overhead budget (C/A, §2.4) the
	// threshold was calibrated at, when the deployment recorded it.
	OverheadBound float64 `json:"overhead_bound,omitempty"`
	// Trajectory is the recent survival history (oldest first, ending at
	// the firing step), showing how S_t descended through the threshold.
	Trajectory []float64 `json:"trajectory"`
	// Contributions is each signal group's share of the absolute
	// normalized feature mass at the firing step (keys "V", "A1".."A5";
	// values sum to 1) — which signals the decision leaned on.
	Contributions map[string]float64 `json:"contributions"`
	// StreamSteps is how many inputs this channel's detector stream had
	// consumed when it fired.
	StreamSteps int `json:"stream_steps"`
	// Window is the model's sliding detection window length.
	Window int `json:"window"`
	// MatchedFlows of TotalFlows records in the step matched the diverted
	// signature.
	MatchedFlows int `json:"matched_flows"`
	TotalFlows   int `json:"total_flows"`
}

// Monitor is a streaming multi-customer DDoS detection booster.
//
// A Monitor is strictly single-threaded: no method may be called
// concurrently with any other, and there is no internal locking — each
// ObserveStep mutates per-customer LSTM state, pooling buffers and the
// mitigation ledger in place. To serve many customers with many cores,
// do not add locks here; wrap Monitors in an Engine, which partitions
// customers across single-threaded shards and preserves this contract.
type Monitor struct {
	cfg   MonitorConfig
	types []ddos.AttackType
	chans map[monKey]*monChan
	// groups are the per-model batching lanes of ObserveStep: every
	// channel whose attack type resolves to the same *core.Model is
	// advanced through that model's BatchRunner in one kernel pass
	// instead of stream-at-a-time (with the default single shared model,
	// all six attack-type channels of a customer step as one batch). The
	// slices inside are reused across steps, so the hot path allocates
	// only when a new model first appears.
	groups  []*modelGroup
	groupOf map[*core.Model]*modelGroup
	// featBuf and scratch are the reused feature-extraction state of
	// ObserveStep. Safe without locking: a Monitor is single-threaded.
	featBuf []float64
	scratch features.Scratch
}

// modelGroup batches the channels of one shared model for a single
// ObserveStep call. Exactly one of runner/runner32 is set, per the
// monitor's Precision; the float32 runner also owns the lane arena its
// streams' state is carved from.
type modelGroup struct {
	runner   *core.BatchRunner
	runner32 *core.BatchRunner32
	chans    []*monChan
	streams  []*core.Stream
	xs       [][]float64
	survs    []float64
}

// newStream creates a stream on this lane at the lane's precision.
func (g *modelGroup) newStream() *core.Stream {
	if g.runner32 != nil {
		return g.runner32.NewStream()
	}
	return core.NewStream(g.runner.Model())
}

// restoreStream reads an XSC1 checkpoint into a stream on this lane at
// the lane's precision (float64 checkpoints narrow into float32 lanes).
func (g *modelGroup) restoreStream(r io.Reader) (*core.Stream, error) {
	if g.runner32 != nil {
		return g.runner32.RestoreStream(r)
	}
	return core.RestoreStream(r, g.runner.Model())
}

// push advances the enrolled streams one step through the lane's kernels.
func (g *modelGroup) push() {
	if g.runner32 != nil {
		g.runner32.Push(g.streams, g.xs, g.survs)
		return
	}
	g.runner.Push(g.streams, g.xs, g.survs)
}

// reset clears the group's per-step membership, keeping capacity.
func (g *modelGroup) reset() {
	g.chans = g.chans[:0]
	g.streams = g.streams[:0]
	g.xs = g.xs[:0]
}

// add enrolls one channel for this step with input feat.
func (g *modelGroup) add(ch *monChan, feat []float64) {
	g.chans = append(g.chans, ch)
	g.streams = append(g.streams, ch.stream)
	g.xs = append(g.xs, feat)
}

type monKey struct {
	customer netip.Addr
	at       ddos.AttackType
}

type monChan struct {
	stream     *core.Stream
	mitigating bool
	since      time.Time
	// surv is the survival value of the current ObserveStep, written by
	// the batched push and read by the alert loop. Transient per step;
	// never checkpointed.
	surv float64
	// recent is a ring of the last survival values (real and missing
	// steps), feeding alert trace trajectories. Not checkpointed: a
	// restored channel rebuilds its trajectory as it streams.
	recent   [traceTrajectory]float64
	recentN  int // values stored, ≤ traceTrajectory
	recentAt int // next write position
}

// noteSurvival records one survival output in the trajectory ring.
func (ch *monChan) noteSurvival(s float64) {
	ch.recent[ch.recentAt] = s
	ch.recentAt = (ch.recentAt + 1) % traceTrajectory
	if ch.recentN < traceTrajectory {
		ch.recentN++
	}
}

// trajectory returns the retained survival values, oldest first.
func (ch *monChan) trajectory() []float64 {
	out := make([]float64, 0, ch.recentN)
	start := ch.recentAt - ch.recentN
	for i := 0; i < ch.recentN; i++ {
		out = append(out, ch.recent[(start+i+traceTrajectory)%traceTrajectory])
	}
	return out
}

// NewMonitor validates the configuration and returns a Monitor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if cfg.Extractor == nil {
		return nil, errors.New("xatu: MonitorConfig.Extractor is required")
	}
	if cfg.Threshold <= 0 {
		return nil, errors.New("xatu: MonitorConfig.Threshold must be positive")
	}
	types := cfg.Types
	if types == nil {
		for at := ddos.AttackType(0); at < 6; at++ {
			types = append(types, at)
		}
	}
	for _, at := range types {
		if cfg.Models[at] == nil && cfg.Default == nil {
			return nil, errors.New("xatu: no model for type " + at.String() + " and no Default")
		}
	}
	if cfg.MitigationTimeout <= 0 {
		cfg.MitigationTimeout = 30 * time.Minute
	}
	m := &Monitor{
		cfg:     cfg,
		types:   types,
		chans:   make(map[monKey]*monChan),
		groupOf: make(map[*core.Model]*modelGroup),
	}
	// Build every reachable model's batching lane up front. Under float32
	// this quantizes the weights now, so a corrupt or diverged weight file
	// fails NewMonitor with a diagnosis instead of serving garbage.
	for _, at := range types {
		if _, err := m.lane(m.modelFor(at)); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// lane returns the batching lane for a model, creating it on first sight.
func (m *Monitor) lane(mm *core.Model) (*modelGroup, error) {
	g := m.groupOf[mm]
	if g == nil {
		g = &modelGroup{}
		if m.cfg.Precision == core.PrecisionFloat32 {
			r32, err := core.NewBatchRunner32(mm)
			if err != nil {
				return nil, err
			}
			g.runner32 = r32
		} else {
			g.runner = core.NewBatchRunner(mm)
		}
		m.groupOf[mm] = g
		m.groups = append(m.groups, g)
	}
	return g, nil
}

// groupFor is lane for callers past construction: every reachable model's
// lane already exists (NewMonitor built them), so this cannot fail.
func (m *Monitor) groupFor(mm *core.Model) *modelGroup {
	g, err := m.lane(mm)
	if err != nil {
		panic(err) // unreachable: NewMonitor pre-built all lanes
	}
	return g
}

func (m *Monitor) modelFor(at ddos.AttackType) *core.Model {
	if mm := m.cfg.Models[at]; mm != nil {
		return mm
	}
	return m.cfg.Default
}

// ObserveStep consumes one step of flows destined to customer and returns
// any alerts raised at this step. Flows must already be aggregated to the
// deployment's step resolution (e.g. one minute).
func (m *Monitor) ObserveStep(customer netip.Addr, at time.Time, flows []netflow.Record) []ddos.Alert {
	alerts, _ := m.ObserveStepTraced(customer, at, flows)
	return alerts
}

// ObserveStepTraced is ObserveStep plus one decision Trace per alert,
// aligned by index. Traces are built only on the (rare) alert path; the
// no-alert hot path does no extra work beyond the trajectory ring.
func (m *Monitor) ObserveStepTraced(customer netip.Addr, at time.Time, flows []netflow.Record) ([]ddos.Alert, []*Trace) {
	m.featBuf = m.cfg.Extractor.ExtractInto(m.featBuf, &m.scratch, customer, at, flows)
	feat := m.featBuf
	features.Normalize(feat)
	var alerts []ddos.Alert
	var traces []*Trace
	var contrib map[string]float64 // shared by every alert this step
	// Phase 1 — batched inference: enroll every attack-type channel in its
	// model's batching lane and advance each lane through one BatchRunner
	// pass. Channels sharing a model (all of them, under a single Default)
	// step through the shared weights together; the per-stream survival
	// values are bit-identical to channel-at-a-time Stream.Push calls.
	for _, atype := range m.types {
		key := monKey{customer, atype}
		g := m.groupFor(m.modelFor(atype))
		ch := m.chans[key]
		if ch == nil {
			ch = &monChan{stream: g.newStream()}
			m.chans[key] = ch
		}
		g.add(ch, feat)
	}
	for _, g := range m.groups {
		if len(g.chans) == 0 {
			continue
		}
		if cap(g.survs) < len(g.chans) {
			g.survs = make([]float64, len(g.chans))
		}
		g.survs = g.survs[:len(g.chans)]
		g.push()
		for i, ch := range g.chans {
			ch.surv = g.survs[i]
			ch.noteSurvival(ch.surv)
		}
		g.reset()
	}
	// Phase 2 — alerting: the original per-type decision loop, reading the
	// survival values the batch produced.
	for _, atype := range m.types {
		ch := m.chans[monKey{customer, atype}]
		s := ch.surv
		if ch.mitigating {
			if at.Sub(ch.since) >= m.cfg.MitigationTimeout {
				ch.mitigating = false // CScrub gave up waiting
			} else {
				continue
			}
		}
		if !ch.stream.Warm() || s >= m.cfg.Threshold {
			continue
		}
		// Only raise a type's alert when traffic matching its signature is
		// actually present this step — the alert's purpose is to divert that
		// signature to scrubbing (§2.1), which is pointless on zero match.
		sig := ddos.SignatureFor(atype, customer)
		matched := 0
		for i := range flows {
			if sig.Matches(flows[i]) {
				matched++
			}
		}
		if matched == 0 {
			continue
		}
		ch.mitigating = true
		ch.since = at
		alert := ddos.Alert{
			Sig:        sig,
			DetectedAt: at,
			Source:     "xatu",
		}
		alerts = append(alerts, alert)
		if contrib == nil {
			contrib = signalContributions(feat)
		}
		traces = append(traces, &Trace{
			Customer:      customer,
			Type:          atype.String(),
			At:            at,
			Survival:      s,
			Threshold:     m.cfg.Threshold,
			OverheadBound: m.cfg.OverheadBound,
			Trajectory:    ch.trajectory(),
			Contributions: contrib,
			StreamSteps:   ch.stream.Steps(),
			Window:        m.modelFor(atype).Cfg.Window,
			MatchedFlows:  matched,
			TotalFlows:    len(flows),
		})
		if m.cfg.RecordHistory && m.cfg.Extractor.History != nil {
			m.cfg.Extractor.History.RecordAlert(alert)
			for _, r := range flows {
				if alert.Sig.Matches(r) {
					m.cfg.Extractor.History.RecordAttacker(customer, r.Src, at)
				}
			}
		}
	}
	return alerts, traces
}

// signalContributions aggregates the absolute normalized feature mass per
// signal group (V, A1..A5) and normalizes the shares to sum to 1 — a
// cheap per-alert attribution of which signals the firing step leaned on
// (the full gradient attribution of §6.2 lives in core.InputGradients
// and needs the whole input window, which streams do not retain).
func signalContributions(feat []float64) map[string]float64 {
	per := make(map[string]float64, 6)
	total := 0.0
	for i, v := range feat {
		a := math.Abs(v)
		per[features.GroupOf(i)] += a
		total += a
	}
	if total > 0 {
		for k := range per {
			per[k] /= total
		}
	}
	return per
}

// ObserveMissing advances every existing detector stream for the customer
// by one step with no telemetry, applying the configured MissingPolicy.
// Call it when an aggregation step elapses with no flow records for a
// customer that is being watched — the branches keep stepping in lockstep
// instead of silently freezing, and mitigation timeouts keep counting
// down. No alerts are raised: with no flows there is no signature match to
// divert (§2.1).
func (m *Monitor) ObserveMissing(customer netip.Addr, at time.Time) {
	for _, atype := range m.types {
		ch := m.chans[monKey{customer, atype}]
		if ch == nil {
			continue
		}
		ch.noteSurvival(ch.stream.PushMissing(m.cfg.MissingPolicy))
		if ch.mitigating && at.Sub(ch.since) >= m.cfg.MitigationTimeout {
			ch.mitigating = false // CScrub gave up waiting
		}
	}
}

// EndMitigation signals that CScrub finished mitigating the given customer
// and attack type; detection for that channel resumes from a clean state.
func (m *Monitor) EndMitigation(customer netip.Addr, at ddos.AttackType) {
	key := monKey{customer, at}
	if ch := m.chans[key]; ch != nil {
		ch.mitigating = false
		ch.stream.Reset()
	}
}

// Mitigating reports whether a diversion is currently active for the
// customer and attack type.
func (m *Monitor) Mitigating(customer netip.Addr, at ddos.AttackType) bool {
	ch := m.chans[monKey{customer, at}]
	return ch != nil && ch.mitigating
}

// Channels returns the number of live (customer, attack-type) detector
// channels.
func (m *Monitor) Channels() int { return len(m.chans) }

// StreamSteps returns how many inputs the detector stream for the given
// customer and attack type has consumed, or 0 if no such channel exists.
func (m *Monitor) StreamSteps(customer netip.Addr, at ddos.AttackType) int {
	ch := m.chans[monKey{customer, at}]
	if ch == nil {
		return 0
	}
	return ch.stream.Steps()
}
