// Package engine is Xatu's serving layer: the single-threaded Monitor —
// the deployable detection unit of §2.6 — and the sharded concurrent
// Engine that scales it across customers. A deployment the size of the
// paper's (1000+ protected customers behind one ISP) cannot run on one
// goroutine; the Engine partitions customers across N shards by a stable
// hash of their address, each shard owning one Monitor behind a bounded
// mailbox, and coordinates lifecycle (drain, checkpoint, restore) across
// the fleet.
package engine

import (
	"errors"
	"net/netip"
	"time"

	"github.com/xatu-go/xatu/internal/core"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/features"
	"github.com/xatu-go/xatu/internal/netflow"
)

// MonitorConfig configures an online Monitor, the deployable unit of §2.6:
// it consumes one step of flow records per protected customer, maintains
// per-(customer, attack-type) detector streams, and emits alerts when the
// survival probability crosses the calibrated threshold.
type MonitorConfig struct {
	// Models maps attack types to their trained models. Types not present
	// fall back to Default.
	Models map[ddos.AttackType]*core.Model
	// Default is the fallback model (required if Models is incomplete).
	Default *core.Model
	// Extractor computes the 273 features per step.
	Extractor *features.Extractor
	// Threshold is the survival threshold: alert when S < Threshold.
	Threshold float64
	// Types are the attack types to watch; nil = all six.
	Types []ddos.AttackType
	// MitigationTimeout releases a diversion with no EndMitigation call
	// after this duration (CScrub gives up). Zero = 30 minutes.
	MitigationTimeout time.Duration
	// RecordHistory, when set, feeds the monitor's own alerts back into the
	// extractor's history registry (the autoregressive mode of §5.3).
	RecordHistory bool
	// MissingPolicy selects what detector streams consume for steps with no
	// telemetry (see ObserveMissing): zero-fill (default) or carry-forward.
	MissingPolicy core.MissingPolicy
}

// Monitor is a streaming multi-customer DDoS detection booster.
//
// A Monitor is strictly single-threaded: no method may be called
// concurrently with any other, and there is no internal locking — each
// ObserveStep mutates per-customer LSTM state, pooling buffers and the
// mitigation ledger in place. To serve many customers with many cores,
// do not add locks here; wrap Monitors in an Engine, which partitions
// customers across single-threaded shards and preserves this contract.
type Monitor struct {
	cfg   MonitorConfig
	types []ddos.AttackType
	chans map[monKey]*monChan
}

type monKey struct {
	customer netip.Addr
	at       ddos.AttackType
}

type monChan struct {
	stream     *core.Stream
	mitigating bool
	since      time.Time
}

// NewMonitor validates the configuration and returns a Monitor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if cfg.Extractor == nil {
		return nil, errors.New("xatu: MonitorConfig.Extractor is required")
	}
	if cfg.Threshold <= 0 {
		return nil, errors.New("xatu: MonitorConfig.Threshold must be positive")
	}
	types := cfg.Types
	if types == nil {
		for at := ddos.AttackType(0); at < 6; at++ {
			types = append(types, at)
		}
	}
	for _, at := range types {
		if cfg.Models[at] == nil && cfg.Default == nil {
			return nil, errors.New("xatu: no model for type " + at.String() + " and no Default")
		}
	}
	if cfg.MitigationTimeout <= 0 {
		cfg.MitigationTimeout = 30 * time.Minute
	}
	return &Monitor{cfg: cfg, types: types, chans: make(map[monKey]*monChan)}, nil
}

func (m *Monitor) modelFor(at ddos.AttackType) *core.Model {
	if mm := m.cfg.Models[at]; mm != nil {
		return mm
	}
	return m.cfg.Default
}

// ObserveStep consumes one step of flows destined to customer and returns
// any alerts raised at this step. Flows must already be aggregated to the
// deployment's step resolution (e.g. one minute).
func (m *Monitor) ObserveStep(customer netip.Addr, at time.Time, flows []netflow.Record) []ddos.Alert {
	feat := m.cfg.Extractor.Extract(customer, at, flows)
	features.Normalize(feat)
	var alerts []ddos.Alert
	for _, atype := range m.types {
		key := monKey{customer, atype}
		ch := m.chans[key]
		if ch == nil {
			ch = &monChan{stream: core.NewStream(m.modelFor(atype))}
			m.chans[key] = ch
		}
		s := ch.stream.Push(feat)
		if ch.mitigating {
			if at.Sub(ch.since) >= m.cfg.MitigationTimeout {
				ch.mitigating = false // CScrub gave up waiting
			} else {
				continue
			}
		}
		if !ch.stream.Warm() || s >= m.cfg.Threshold {
			continue
		}
		// Only raise a type's alert when traffic matching its signature is
		// actually present this step — the alert's purpose is to divert that
		// signature to scrubbing (§2.1), which is pointless on zero match.
		sig := ddos.SignatureFor(atype, customer)
		matched := false
		for i := range flows {
			if sig.Matches(flows[i]) {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		ch.mitigating = true
		ch.since = at
		alert := ddos.Alert{
			Sig:        sig,
			DetectedAt: at,
			Source:     "xatu",
		}
		alerts = append(alerts, alert)
		if m.cfg.RecordHistory && m.cfg.Extractor.History != nil {
			m.cfg.Extractor.History.RecordAlert(alert)
			for _, r := range flows {
				if alert.Sig.Matches(r) {
					m.cfg.Extractor.History.RecordAttacker(customer, r.Src, at)
				}
			}
		}
	}
	return alerts
}

// ObserveMissing advances every existing detector stream for the customer
// by one step with no telemetry, applying the configured MissingPolicy.
// Call it when an aggregation step elapses with no flow records for a
// customer that is being watched — the branches keep stepping in lockstep
// instead of silently freezing, and mitigation timeouts keep counting
// down. No alerts are raised: with no flows there is no signature match to
// divert (§2.1).
func (m *Monitor) ObserveMissing(customer netip.Addr, at time.Time) {
	for _, atype := range m.types {
		ch := m.chans[monKey{customer, atype}]
		if ch == nil {
			continue
		}
		ch.stream.PushMissing(m.cfg.MissingPolicy)
		if ch.mitigating && at.Sub(ch.since) >= m.cfg.MitigationTimeout {
			ch.mitigating = false // CScrub gave up waiting
		}
	}
}

// EndMitigation signals that CScrub finished mitigating the given customer
// and attack type; detection for that channel resumes from a clean state.
func (m *Monitor) EndMitigation(customer netip.Addr, at ddos.AttackType) {
	key := monKey{customer, at}
	if ch := m.chans[key]; ch != nil {
		ch.mitigating = false
		ch.stream.Reset()
	}
}

// Mitigating reports whether a diversion is currently active for the
// customer and attack type.
func (m *Monitor) Mitigating(customer netip.Addr, at ddos.AttackType) bool {
	ch := m.chans[monKey{customer, at}]
	return ch != nil && ch.mitigating
}

// Channels returns the number of live (customer, attack-type) detector
// channels.
func (m *Monitor) Channels() int { return len(m.chans) }

// StreamSteps returns how many inputs the detector stream for the given
// customer and attack type has consumed, or 0 if no such channel exists.
func (m *Monitor) StreamSteps(customer netip.Addr, at ddos.AttackType) int {
	ch := m.chans[monKey{customer, at}]
	if ch == nil {
		return 0
	}
	return ch.stream.Steps()
}
