package engine

import (
	"bytes"
	"errors"
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/netflow"
	"github.com/xatu-go/xatu/internal/telemetry"
)

// ErrClosed is returned by Engine methods after Close.
var ErrClosed = errors.New("xatu: engine is closed")

// Policy selects what Submit does when a shard's mailbox is full.
type Policy uint8

const (
	// Block makes Submit wait for mailbox space: lossless, applies
	// backpressure to the producer. The right choice for replay.
	Block Policy = iota
	// ShedOldest drops the oldest queued telemetry message to make room,
	// counting it in ShardStats.Shed: the producer never blocks, mirroring
	// the exporter's bounded-queue policy. The right choice for live
	// ingest, where blocking the collector loop loses newer data anyway.
	ShedOldest
)

// Config parameterizes an Engine.
type Config struct {
	// Monitor configures every shard's Monitor. The Extractor and its
	// registries are shared across shards (they are safe for concurrent
	// use); per-customer detector state is not shared — each customer's
	// streams live entirely on the shard that owns the customer.
	Monitor MonitorConfig
	// Shards is the number of single-threaded detection shards.
	// Zero = runtime.GOMAXPROCS(0).
	Shards int
	// Queue is each shard's mailbox capacity. Zero = 256.
	Queue int
	// Policy is the backpressure policy for Submit and ObserveMissing.
	Policy Policy
	// AlertBuffer is the capacity of the fan-in alert channel. The caller
	// must drain Alerts(); once the buffer fills, shards block on alert
	// delivery. Zero = 1024.
	AlertBuffer int
	// Telemetry, when non-nil, registers the engine's metric families
	// (per-shard counters and queue gauges, step/submit/checkpoint latency
	// histograms, per-type alert counters) on the registry and enables
	// latency recording in the shard loops. Nil disables instrumentation;
	// the existing atomic counters behind Stats are kept either way.
	Telemetry *telemetry.Registry
}

// AlertEvent is one alert annotated with its origin.
type AlertEvent struct {
	// Customer is the protected address the alert fired for.
	Customer netip.Addr
	// At is the step time passed to Submit.
	At time.Time
	// Shard is the index of the shard that raised the alert.
	Shard int
	// Alert is the detection event itself.
	Alert ddos.Alert
	// Trace is the structured decision evidence behind the alert (survival
	// trajectory, per-signal contributions, threshold and calibration);
	// always populated by the engine. It marshals to JSON for operator
	// tooling and the /debug/alerts ring.
	Trace *Trace
}

// ShardStats is a snapshot of one shard's counters.
type ShardStats struct {
	Shard          int
	Submitted      uint64        // telemetry messages enqueued (steps + missing)
	Shed           uint64        // telemetry messages dropped by ShedOldest
	Requeued       uint64        // control messages requeued instead of shed
	Steps          uint64        // ObserveStep calls processed
	Missing        uint64        // ObserveMissing calls processed
	Alerts         uint64        // alerts fanned in from this shard
	Channels       int           // live (customer, attack-type) detector channels
	QueueLen       int           // current mailbox depth
	QueueHighWater int           // max observed mailbox depth
	StepTotal      time.Duration // cumulative ObserveStep latency
	StepMax        time.Duration // worst single ObserveStep latency
}

// AvgStep returns the mean ObserveStep latency, or 0 before any step.
func (s ShardStats) AvgStep() time.Duration {
	if s.Steps == 0 {
		return 0
	}
	return s.StepTotal / time.Duration(s.Steps)
}

// Stats aggregates per-shard snapshots: counters and durations sum over
// shards, water marks take the max.
type Stats struct {
	Shards         []ShardStats
	Submitted      uint64
	Shed           uint64
	Requeued       uint64
	Steps          uint64
	Missing        uint64
	Alerts         uint64
	Channels       int           // sum over shards
	QueueLen       int           // sum over shards
	QueueHighWater int           // max over shards
	StepTotal      time.Duration // sum over shards
	StepMax        time.Duration // max over shards
}

// AvgStep returns the fleet-wide mean ObserveStep latency, or 0 before
// any step.
func (s Stats) AvgStep() time.Duration {
	if s.Steps == 0 {
		return 0
	}
	return s.StepTotal / time.Duration(s.Steps)
}

type opcode uint8

const (
	opStep opcode = iota
	opMissing
	opEnd
	opBarrier    // Drain: ack once everything queued before it is done
	opCheckpoint // serialize the shard's monitor into msg.buf
	opSwap       // replace the shard's monitor with msg.mon (Restore)
)

type message struct {
	op       opcode
	customer netip.Addr
	at       time.Time
	flows    []netflow.Record
	atype    ddos.AttackType
	enq      int64         // UnixNano enqueue stamp (telemetry only; 0 = unstamped)
	done     chan error    // barrier-family acks (buffered, never blocks)
	buf      *bytes.Buffer // opCheckpoint target
	mon      *Monitor      // opSwap replacement
}

type shard struct {
	id   int
	mon  *Monitor
	mail chan message

	submitted atomic.Uint64
	shed      atomic.Uint64
	requeued  atomic.Uint64
	steps     atomic.Uint64
	missing   atomic.Uint64
	alerts    atomic.Uint64
	channels  atomic.Int64
	stepNanos atomic.Uint64
	stepMax   atomic.Uint64
	highWater atomic.Int64
}

// Engine is a sharded concurrent detection engine: N single-threaded
// Monitors, each behind a bounded mailbox, with customers partitioned by
// a stable hash of their address. Submit, ObserveMissing, EndMitigation
// and Alerts are safe for concurrent use from any number of goroutines.
//
// Lifecycle methods — Drain, Checkpoint, Restore, Close — are barriers
// over the whole fleet and must not race with each other or with
// producers still submitting; quiesce producers first (the alert channel
// must keep being drained, or a checkpoint can deadlock behind an
// undelivered alert).
type Engine struct {
	cfg    Config
	shards []*shard
	alerts chan AlertEvent
	mx     *engineMetrics // nil when Config.Telemetry is nil
	done   chan struct{}
	wg     sync.WaitGroup

	closeOnce sync.Once
}

// New validates the configuration, builds one Monitor per shard and
// starts the shard goroutines.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 256
	}
	if cfg.AlertBuffer <= 0 {
		cfg.AlertBuffer = 1024
	}
	e := &Engine{
		cfg:    cfg,
		shards: make([]*shard, cfg.Shards),
		alerts: make(chan AlertEvent, cfg.AlertBuffer),
		done:   make(chan struct{}),
	}
	for i := range e.shards {
		mon, err := NewMonitor(cfg.Monitor)
		if err != nil {
			return nil, err
		}
		e.shards[i] = &shard{id: i, mon: mon, mail: make(chan message, cfg.Queue)}
	}
	if cfg.Telemetry != nil {
		e.mx = e.registerMetrics(cfg.Telemetry)
	}
	e.wg.Add(len(e.shards))
	for _, s := range e.shards {
		go e.runShard(s)
	}
	return e, nil
}

// Shards returns the number of shards.
func (e *Engine) Shards() int { return len(e.shards) }

// ShardOf returns the shard index that owns the customer. The mapping is
// a stable FNV-1a hash over the address's 16-byte form: the same customer
// lands on the same shard on every run, every process, and every restore
// with the same shard count.
func (e *Engine) ShardOf(customer netip.Addr) int {
	return shardOf(customer, len(e.shards))
}

// ShardOf is the package-level form of Engine.ShardOf: the stable FNV-1a
// customer → shard mapping for n shards. Exported so upstream stages (the
// ingest pipeline's aggregation workers) can partition work by the same
// function and preserve per-customer ordering end to end.
func ShardOf(customer netip.Addr, n int) int {
	return shardOf(customer, n)
}

func shardOf(customer netip.Addr, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	b := customer.As16()
	h := uint64(offset64)
	for _, c := range b {
		h = (h ^ uint64(c)) * prime64
	}
	return int(h % uint64(n))
}

// Alerts returns the fan-in alert channel. Alerts from one customer are
// delivered in step order (its shard processes sequentially); ordering
// across shards is best-effort. The channel is closed by Close.
func (e *Engine) Alerts() <-chan AlertEvent { return e.alerts }

// Submit routes one step of flows for the customer to its owning shard.
// It never blocks under ShedOldest (dropping the oldest queued telemetry
// instead, counted per shard); under Block it waits for mailbox space.
// The flows slice is handed off: the caller must not reuse it.
func (e *Engine) Submit(customer netip.Addr, at time.Time, flows []netflow.Record) error {
	return e.submitTelemetry(message{op: opStep, customer: customer, at: at, flows: flows})
}

// ObserveMissing routes a missing-telemetry step for the customer to its
// owning shard, with the same backpressure policy as Submit.
func (e *Engine) ObserveMissing(customer netip.Addr, at time.Time) error {
	return e.submitTelemetry(message{op: opMissing, customer: customer, at: at})
}

func (e *Engine) submitTelemetry(msg message) error {
	if e.closed() {
		return ErrClosed
	}
	if e.mx != nil {
		msg.enq = time.Now().UnixNano()
	}
	s := e.shards[e.ShardOf(msg.customer)]
	if e.cfg.Policy == Block {
		select {
		case s.mail <- msg:
		case <-e.done:
			return ErrClosed
		}
		s.noteEnqueued()
		return nil
	}
	for {
		select {
		case s.mail <- msg:
			s.noteEnqueued()
			return nil
		case <-e.done:
			return ErrClosed
		default:
		}
		// Mailbox full: make room by shedding the oldest queued telemetry.
		select {
		case old := <-s.mail:
			if old.op == opStep || old.op == opMissing {
				s.shed.Add(1)
			} else {
				// A control message (EndMitigation) must never be lost:
				// requeue it. Under overload it is reordered behind the
				// queue tail, which beats dropping the signal.
				s.requeued.Add(1)
				s.mail <- old
			}
		case <-e.done:
			return ErrClosed
		default:
			// The shard drained the mailbox between the two selects; retry.
		}
	}
}

func (s *shard) noteEnqueued() {
	s.submitted.Add(1)
	depth := int64(len(s.mail))
	for {
		hw := s.highWater.Load()
		if depth <= hw || s.highWater.CompareAndSwap(hw, depth) {
			return
		}
	}
}

// EndMitigation routes a CScrub mitigation-end signal to the customer's
// owning shard. It is ordered with the customer's queued telemetry and is
// never shed.
func (e *Engine) EndMitigation(customer netip.Addr, at ddos.AttackType) error {
	if e.closed() {
		return ErrClosed
	}
	s := e.shards[e.ShardOf(customer)]
	select {
	case s.mail <- message{op: opEnd, customer: customer, atype: at}:
		return nil
	case <-e.done:
		return ErrClosed
	}
}

// Drain blocks until every message submitted before the call has been
// fully processed. It must not race with producers still submitting.
func (e *Engine) Drain() error {
	_, err := e.barrier(func(s *shard) message {
		return message{op: opBarrier}
	})
	return err
}

func (e *Engine) closed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// barrier sends one message per shard and waits for every ack.
func (e *Engine) barrier(mk func(*shard) message) ([]error, error) {
	if e.closed() {
		return nil, ErrClosed
	}
	acks := make([]chan error, len(e.shards))
	for i, s := range e.shards {
		msg := mk(s)
		msg.done = make(chan error, 1)
		acks[i] = msg.done
		select {
		case s.mail <- msg:
		case <-e.done:
			return nil, ErrClosed
		}
	}
	errs := make([]error, len(acks))
	for i, d := range acks {
		select {
		case errs[i] = <-d:
		case <-e.done:
			return nil, ErrClosed
		}
	}
	return errs, nil
}

// Stats snapshots per-shard and aggregate counters.
func (e *Engine) Stats() Stats {
	st := Stats{Shards: make([]ShardStats, len(e.shards))}
	for i, s := range e.shards {
		ss := ShardStats{
			Shard:          i,
			Submitted:      s.submitted.Load(),
			Shed:           s.shed.Load(),
			Requeued:       s.requeued.Load(),
			Steps:          s.steps.Load(),
			Missing:        s.missing.Load(),
			Alerts:         s.alerts.Load(),
			Channels:       int(s.channels.Load()),
			QueueLen:       len(s.mail),
			QueueHighWater: int(s.highWater.Load()),
			StepTotal:      time.Duration(s.stepNanos.Load()),
			StepMax:        time.Duration(s.stepMax.Load()),
		}
		st.Shards[i] = ss
		st.Submitted += ss.Submitted
		st.Shed += ss.Shed
		st.Requeued += ss.Requeued
		st.Steps += ss.Steps
		st.Missing += ss.Missing
		st.Alerts += ss.Alerts
		st.Channels += ss.Channels
		st.QueueLen += ss.QueueLen
		st.StepTotal += ss.StepTotal
		if ss.QueueHighWater > st.QueueHighWater {
			st.QueueHighWater = ss.QueueHighWater
		}
		if ss.StepMax > st.StepMax {
			st.StepMax = ss.StepMax
		}
	}
	return st
}

// Close stops all shards and closes the alert channel. Queued messages
// not yet processed are abandoned; Drain first for a graceful stop.
// Close is idempotent.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.wg.Wait()
		close(e.alerts)
	})
	return nil
}

func (e *Engine) runShard(s *shard) {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case msg := <-s.mail:
			if !e.handle(s, msg) {
				return
			}
		}
	}
}

// handle processes one message; it reports false when the engine closed
// mid-message (alert delivery aborted).
func (e *Engine) handle(s *shard, msg message) bool {
	switch msg.op {
	case opStep:
		start := time.Now()
		alerts, traces := s.mon.ObserveStepTraced(msg.customer, msg.at, msg.flows)
		el := uint64(time.Since(start))
		s.stepNanos.Add(el)
		for {
			prev := s.stepMax.Load()
			if el <= prev || s.stepMax.CompareAndSwap(prev, el) {
				break
			}
		}
		s.steps.Add(1)
		s.channels.Store(int64(s.mon.Channels()))
		if e.mx != nil {
			e.mx.stepLatency.Observe(time.Duration(el))
		}
		for i, a := range alerts {
			s.alerts.Add(1)
			if e.mx != nil {
				if at := a.Sig.Type; at >= 0 && at < ddos.NumAttackTypes {
					e.mx.alertsByType[at].Inc()
				}
			}
			select {
			case e.alerts <- AlertEvent{Customer: msg.customer, At: msg.at, Shard: s.id, Alert: a, Trace: traces[i]}:
			case <-e.done:
				return false
			}
		}
		e.observeSubmitLatency(msg.enq)
	case opMissing:
		s.mon.ObserveMissing(msg.customer, msg.at)
		s.missing.Add(1)
		e.observeSubmitLatency(msg.enq)
	case opEnd:
		s.mon.EndMitigation(msg.customer, msg.atype)
		if e.mx != nil {
			e.mx.mitigationEnds.Inc()
		}
	case opBarrier:
		msg.done <- nil
	case opCheckpoint:
		msg.done <- s.mon.Checkpoint(msg.buf)
	case opSwap:
		s.mon = msg.mon
		s.channels.Store(int64(s.mon.Channels()))
		msg.done <- nil
	default:
		panic(fmt.Sprintf("engine: unknown opcode %d", msg.op))
	}
	return true
}

// observeSubmitLatency records enqueue-to-processed latency for a stamped
// telemetry message (alerts, if any, have already been emitted).
func (e *Engine) observeSubmitLatency(enq int64) {
	if e.mx == nil || enq == 0 {
		return
	}
	e.mx.submitLatency.Observe(time.Duration(time.Now().UnixNano() - enq))
}
