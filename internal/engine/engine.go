package engine

import (
	"bytes"
	"errors"
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/xatu-go/xatu/internal/cdet"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/netflow"
	"github.com/xatu-go/xatu/internal/telemetry"
	"github.com/xatu-go/xatu/internal/trace"
)

// ErrClosed is returned by Engine methods after Close.
var ErrClosed = errors.New("xatu: engine is closed")

// ErrShardDead is returned (wrapped) when an operation needs a shard
// whose goroutine has exited — only possible with supervision disabled,
// since the supervisor otherwise restarts the shard in place.
var ErrShardDead = errors.New("xatu: shard goroutine has exited")

// ErrBarrierTimeout is returned (wrapped) when a fleet barrier (Drain,
// Checkpoint, Restore) exceeds Config.DrainTimeout.
var ErrBarrierTimeout = errors.New("xatu: barrier timed out")

// Policy selects what Submit does when a shard's mailbox is full.
type Policy uint8

const (
	// Block makes Submit wait for mailbox space: lossless, applies
	// backpressure to the producer. The right choice for replay.
	Block Policy = iota
	// ShedOldest drops the oldest queued telemetry message to make room,
	// counting it in ShardStats.Shed: the producer never blocks, mirroring
	// the exporter's bounded-queue policy. The right choice for live
	// ingest, where blocking the collector loop loses newer data anyway.
	ShedOldest
)

// Config parameterizes an Engine.
type Config struct {
	// Monitor configures every shard's Monitor. The Extractor and its
	// registries are shared across shards (they are safe for concurrent
	// use); per-customer detector state is not shared — each customer's
	// streams live entirely on the shard that owns the customer.
	Monitor MonitorConfig
	// Shards is the number of single-threaded detection shards.
	// Zero = runtime.GOMAXPROCS(0).
	Shards int
	// Queue is each shard's mailbox capacity. Zero = 256.
	Queue int
	// Policy is the backpressure policy for Submit and ObserveMissing.
	Policy Policy
	// AlertBuffer is the capacity of the fan-in alert channel. The caller
	// must drain Alerts(); once the buffer fills, shards block on alert
	// delivery. Zero = 1024.
	AlertBuffer int
	// Telemetry, when non-nil, registers the engine's metric families
	// (per-shard counters and queue gauges, step/submit/checkpoint latency
	// histograms, per-type alert counters) on the registry and enables
	// latency recording in the shard loops. Nil disables instrumentation;
	// the existing atomic counters behind Stats are kept either way.
	Telemetry *telemetry.Registry

	// Step is the deployment's telemetry aggregation interval; it
	// parameterizes the CDetOnly fallback detector's rate baselines.
	// Zero = one minute.
	Step time.Duration
	// Fallback tunes the pass-through CDet detector that keeps alerts
	// flowing in CDetOnly mode. Nil = FastNetMon parameters at Step.
	Fallback *cdet.Params
	// WAL is the per-shard replay-log capacity: telemetry messages
	// processed since the shard's last background snapshot, replayed after
	// a panic recovery. Zero = 512. Negative disables replay (recovery
	// restarts from the last snapshot alone).
	WAL int
	// CheckpointInterval is how often each shard snapshots its monitor in
	// the background, with no fleet barrier and no pause of the other
	// shards. It bounds restart loss: a recovering shard loses at most the
	// poison message plus whatever its WAL evicted since the last
	// snapshot. Zero = 10s. Negative disables background snapshots.
	CheckpointInterval time.Duration
	// Watchdog is the supervisor tick driving stall detection and the
	// Healthy → Degraded → CDetOnly state machine. Zero = 250ms. Negative
	// disables the watchdog (ForceHealth still works).
	Watchdog time.Duration
	// StallAfter marks a shard stalled when its mailbox has work but no
	// message completes for this long. Zero = 10s.
	StallAfter time.Duration
	// DrainTimeout bounds every fleet-barrier wait (Drain, Checkpoint,
	// Restore) so a dead or wedged shard surfaces as an error instead of a
	// deadlock. Zero = 60s.
	DrainTimeout time.Duration
	// DegradedStepLatency / CDetOnlyStepLatency, when positive, escalate
	// the health state when the mean step latency over a watchdog tick
	// crosses them. Zero disables the latency signal (the queue signal,
	// active under ShedOldest, remains).
	DegradedStepLatency time.Duration
	CDetOnlyStepLatency time.Duration
	// RecoverTicks is the de-escalation hysteresis: consecutive clean
	// watchdog ticks required before the health state steps down one
	// level. Zero = 8.
	RecoverTicks int
	// DisableSupervision lets a shard goroutine die on panic instead of
	// recovering in place. The death is surfaced in Stats/Health and as
	// barrier errors. For tests of the dead-shard paths.
	DisableSupervision bool

	// Trace, when non-nil, records a StageStep span (in-shard inference
	// latency) for every sampled customer's step. Nil (tracing off)
	// costs one pointer check per processed step.
	Trace *trace.Recorder
	// Flight, when non-nil, is the black-box recorder fed with health
	// transitions, shard restarts, quarantines, shed bursts, and
	// checkpoint/restore events; health transitions and panics trigger
	// automatic ring dumps. Nil disables it at one pointer check per
	// event site (all off the hot path).
	Flight *trace.Flight
}

// AlertEvent is one alert annotated with its origin.
type AlertEvent struct {
	// Customer is the protected address the alert fired for.
	Customer netip.Addr
	// At is the step time passed to Submit.
	At time.Time
	// Shard is the index of the shard that raised the alert.
	Shard int
	// Alert is the detection event itself.
	Alert ddos.Alert
	// Trace is the structured decision evidence behind the alert (survival
	// trajectory, per-signal contributions, threshold and calibration);
	// always populated by the engine. It marshals to JSON for operator
	// tooling and the /debug/alerts ring.
	Trace *Trace
}

// ShardStats is a snapshot of one shard's counters.
type ShardStats struct {
	Shard          int
	Submitted      uint64        // telemetry messages enqueued (steps + missing)
	Shed           uint64        // telemetry messages dropped by ShedOldest
	Requeued       uint64        // control messages requeued instead of shed
	Steps          uint64        // ObserveStep calls processed
	Missing        uint64        // ObserveMissing calls processed
	Alerts         uint64        // alerts fanned in from this shard
	Channels       int           // live (customer, attack-type) detector channels
	QueueLen       int           // current mailbox depth
	QueueHighWater int           // max observed mailbox depth
	StepTotal      time.Duration // cumulative ObserveStep latency
	StepMax        time.Duration // worst single ObserveStep latency

	// Self-healing accounting.
	Restarts       uint64        // supervised restarts after a panic
	Quarantined    uint64        // poison messages recovered from (never retried)
	WALReplayed    uint64        // WAL messages replayed across all restarts
	WALDropped     uint64        // WAL entries evicted beyond the replay window
	Lost           uint64        // telemetry unrecoverable after restarts (poison + evicted)
	Bypassed       uint64        // telemetry handled by the CDet fallback in CDetOnly
	FallbackAlerts uint64        // alerts emitted by the CDet fallback
	Snapshots      uint64        // background snapshots published
	RecoveryTotal  time.Duration // cumulative supervised-recovery time
	Stalled        bool          // watchdog: queued work but no recent progress
	Dead           bool          // shard goroutine has exited (supervision disabled)
}

// AvgStep returns the mean ObserveStep latency, or 0 before any step.
func (s ShardStats) AvgStep() time.Duration {
	if s.Steps == 0 {
		return 0
	}
	return s.StepTotal / time.Duration(s.Steps)
}

// Stats aggregates per-shard snapshots: counters and durations sum over
// shards, water marks take the max.
type Stats struct {
	Shards         []ShardStats
	Submitted      uint64
	Shed           uint64
	Requeued       uint64
	Steps          uint64
	Missing        uint64
	Alerts         uint64
	Channels       int           // sum over shards
	QueueLen       int           // sum over shards
	QueueHighWater int           // max over shards
	StepTotal      time.Duration // sum over shards
	StepMax        time.Duration // max over shards

	// Self-healing roll-up.
	Restarts       uint64
	Quarantined    uint64
	WALReplayed    uint64
	WALDropped     uint64
	Lost           uint64
	Bypassed       uint64
	FallbackAlerts uint64
	Snapshots      uint64
	RecoveryTotal  time.Duration
	StalledShards  int
	DeadShards     int
	Health         HealthState
	HealthCause    string
}

// AvgStep returns the fleet-wide mean ObserveStep latency, or 0 before
// any step.
func (s Stats) AvgStep() time.Duration {
	if s.Steps == 0 {
		return 0
	}
	return s.StepTotal / time.Duration(s.Steps)
}

type opcode uint8

const (
	opStep opcode = iota
	opMissing
	opEnd
	opBarrier    // Drain: ack once everything queued before it is done
	opCheckpoint // serialize the shard's monitor into msg.buf
	opSwap       // replace the shard's monitor with msg.mon (Restore)
	opRewrite    // transform the shard's monitor in place (subset restore/remove)
	opInject     // InjectFault: panic inside the shard loop (chaos testing)
)

// opName labels an opcode for flight-recorder events.
func opName(op opcode) string {
	switch op {
	case opStep:
		return "step"
	case opMissing:
		return "missing"
	case opEnd:
		return "end-mitigation"
	case opBarrier:
		return "barrier"
	case opCheckpoint:
		return "checkpoint"
	case opSwap:
		return "swap"
	case opRewrite:
		return "rewrite"
	case opInject:
		return "inject"
	default:
		return "unknown"
	}
}

type message struct {
	op       opcode
	customer netip.Addr
	at       time.Time
	flows    []netflow.Record
	atype    ddos.AttackType
	enq      int64         // UnixNano enqueue stamp (telemetry only; 0 = unstamped)
	done     chan error    // barrier-family acks (buffered, never blocks)
	buf      *bytes.Buffer // opCheckpoint target
	mon      *Monitor      // opSwap replacement
	// rewrite runs inside the shard goroutine for opRewrite: it returns a
	// replacement monitor (nil = keep the current one unchanged). Running
	// on the shard's own goroutine makes checkpoint-filter-rebuild atomic
	// with respect to that shard's step processing — no window exists in
	// which a concurrently submitted step could land on state about to be
	// replaced.
	rewrite func(*Monitor) (*Monitor, error)
}

type shard struct {
	id   int
	mon  *Monitor
	mail chan message

	submitted atomic.Uint64
	shed      atomic.Uint64
	requeued  atomic.Uint64
	steps     atomic.Uint64
	missing   atomic.Uint64
	alerts    atomic.Uint64
	channels  atomic.Int64
	stepNanos atomic.Uint64
	stepMax   atomic.Uint64
	highWater atomic.Int64

	// Supervision counters (read by Stats/Health/watchdog).
	handled       atomic.Uint64 // messages fully processed (watchdog progress signal)
	restarts      atomic.Uint64
	quarantined   atomic.Uint64
	walReplayed   atomic.Uint64
	walDropped    atomic.Uint64
	lost          atomic.Uint64
	bypassed      atomic.Uint64
	fbAlerts      atomic.Uint64
	snapshots     atomic.Uint64
	recoveryNanos atomic.Uint64
	stalled       atomic.Bool
	dead          atomic.Bool
	deadCh        chan struct{} // closed when the shard goroutine exits abnormally

	// snap is the latest background snapshot (recovery basis), published
	// by the shard goroutine, read by CheckpointIncremental and recovery.
	snap atomic.Pointer[shardSnapshot]

	// WAL state below is touched only by the owning shard goroutine.
	wal        []walEntry
	walHead    int
	walN       int
	walEvicted uint64 // entries evicted since the last snapshot
	lastSnap   time.Time

	fb *cdet.Detector // lazily-built CDetOnly fallback

	panicMu   sync.Mutex
	lastPanic string
}

// Engine is a sharded concurrent detection engine: N single-threaded
// Monitors, each behind a bounded mailbox, with customers partitioned by
// a stable hash of their address. Submit, ObserveMissing, EndMitigation
// and Alerts are safe for concurrent use from any number of goroutines.
//
// Lifecycle methods — Drain, Checkpoint, Restore, Close — are barriers
// over the whole fleet and must not race with each other or with
// producers still submitting; quiesce producers first (the alert channel
// must keep being drained, or a checkpoint can deadlock behind an
// undelivered alert).
type Engine struct {
	cfg    Config
	shards []*shard
	alerts chan AlertEvent
	mx     *engineMetrics // nil when Config.Telemetry is nil
	done   chan struct{}
	wg     sync.WaitGroup

	// Health state machine (see supervisor.go).
	health atomic.Int32 // current HealthState
	forced atomic.Int32 // ForceHealth override; -1 = automatic

	transMu     sync.Mutex
	healthCause string
	trans       []HealthTransition

	closeOnce sync.Once
}

// New validates the configuration, builds one Monitor per shard and
// starts the shard goroutines plus the supervising watchdog.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 256
	}
	if cfg.AlertBuffer <= 0 {
		cfg.AlertBuffer = 1024
	}
	if cfg.Step <= 0 {
		cfg.Step = time.Minute
	}
	if cfg.Fallback == nil {
		p := cdet.FastNetMonParams(cfg.Step)
		cfg.Fallback = &p
	}
	if cfg.WAL == 0 {
		cfg.WAL = 512
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = 10 * time.Second
	}
	if cfg.Watchdog == 0 {
		cfg.Watchdog = 250 * time.Millisecond
	}
	if cfg.StallAfter <= 0 {
		cfg.StallAfter = 10 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 60 * time.Second
	}
	if cfg.RecoverTicks <= 0 {
		cfg.RecoverTicks = 8
	}
	e := &Engine{
		cfg:    cfg,
		shards: make([]*shard, cfg.Shards),
		alerts: make(chan AlertEvent, cfg.AlertBuffer),
		done:   make(chan struct{}),
	}
	e.forced.Store(-1)
	now := time.Now()
	for i := range e.shards {
		mon, err := NewMonitor(cfg.Monitor)
		if err != nil {
			return nil, err
		}
		s := &shard{id: i, mon: mon, mail: make(chan message, cfg.Queue),
			deadCh: make(chan struct{}), lastSnap: now}
		if cfg.WAL > 0 {
			s.wal = make([]walEntry, cfg.WAL)
		}
		e.shards[i] = s
	}
	if cfg.Telemetry != nil {
		e.mx = e.registerMetrics(cfg.Telemetry)
	}
	e.wg.Add(len(e.shards))
	for _, s := range e.shards {
		go e.runShard(s)
	}
	if cfg.Watchdog > 0 {
		e.wg.Add(1)
		go e.watchdog(cfg.Watchdog)
	}
	return e, nil
}

// Shards returns the number of shards.
func (e *Engine) Shards() int { return len(e.shards) }

// ShardOf returns the shard index that owns the customer. The mapping is
// a stable FNV-1a hash over the address's 16-byte form: the same customer
// lands on the same shard on every run, every process, and every restore
// with the same shard count.
func (e *Engine) ShardOf(customer netip.Addr) int {
	return shardOf(customer, len(e.shards))
}

// ShardOf is the package-level form of Engine.ShardOf: the stable FNV-1a
// customer → shard mapping for n shards. Exported so upstream stages (the
// ingest pipeline's aggregation workers) can partition work by the same
// function and preserve per-customer ordering end to end.
func ShardOf(customer netip.Addr, n int) int {
	return shardOf(customer, n)
}

func shardOf(customer netip.Addr, n int) int {
	return int(addrHash(customer) % uint64(n))
}

// addrHash is the stable FNV-1a hash over the address's 16-byte form that
// every partitioning level derives from. Using As16 makes an IPv4 address
// and its v4-mapped IPv6 form hash identically, so a customer keeps its
// placement no matter which representation a decoder produced.
func addrHash(customer netip.Addr) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	b := customer.As16()
	h := uint64(offset64)
	for _, c := range b {
		h = (h ^ uint64(c)) * prime64
	}
	return h
}

// NodeOf is the two-level fleet generalization of ShardOf: it partitions a
// customer first across nodes, then across shards within the owning node.
// The node level remixes the shared FNV-1a hash through a 64-bit finalizer
// so the two levels stay independent — without it, nodes == shards would
// pin every customer of node i onto shard i. The shard level IS ShardOf,
// so a fleet of one node places every customer exactly where a
// single-process Engine does: NodeOf(c, 1, n) == (0, ShardOf(c, n)).
func NodeOf(customer netip.Addr, nodes, shards int) (node, shard int) {
	h := addrHash(customer)
	m := h
	m ^= m >> 33
	m *= 0xff51afd7ed558ccd
	m ^= m >> 33
	m *= 0xc4ceb9fe1a85ec53
	m ^= m >> 33
	return int(m % uint64(nodes)), int(h % uint64(shards))
}

// Alerts returns the fan-in alert channel. Alerts from one customer are
// delivered in step order (its shard processes sequentially); ordering
// across shards is best-effort. The channel is closed by Close.
func (e *Engine) Alerts() <-chan AlertEvent { return e.alerts }

// Submit routes one step of flows for the customer to its owning shard.
// It never blocks under ShedOldest (dropping the oldest queued telemetry
// instead, counted per shard); under Block it waits for mailbox space.
// The flows slice is handed off: the caller must not reuse it.
func (e *Engine) Submit(customer netip.Addr, at time.Time, flows []netflow.Record) error {
	return e.submitTelemetry(message{op: opStep, customer: customer, at: at, flows: flows})
}

// ObserveMissing routes a missing-telemetry step for the customer to its
// owning shard, with the same backpressure policy as Submit.
func (e *Engine) ObserveMissing(customer netip.Addr, at time.Time) error {
	return e.submitTelemetry(message{op: opMissing, customer: customer, at: at})
}

func (e *Engine) submitTelemetry(msg message) error {
	if e.closed() {
		return ErrClosed
	}
	if e.mx != nil {
		msg.enq = time.Now().UnixNano()
	}
	s := e.shards[e.ShardOf(msg.customer)]
	if s.dead.Load() {
		return fmt.Errorf("%w (shard %d)", ErrShardDead, s.id)
	}
	if e.cfg.Policy == Block {
		select {
		case s.mail <- msg:
		case <-s.deadCh:
			return fmt.Errorf("%w (shard %d)", ErrShardDead, s.id)
		case <-e.done:
			return ErrClosed
		}
		s.noteEnqueued()
		return nil
	}
	for {
		select {
		case s.mail <- msg:
			s.noteEnqueued()
			return nil
		case <-s.deadCh:
			return fmt.Errorf("%w (shard %d)", ErrShardDead, s.id)
		case <-e.done:
			return ErrClosed
		default:
		}
		// Mailbox full: make room by shedding the oldest queued telemetry.
		select {
		case old := <-s.mail:
			if old.op == opStep || old.op == opMissing {
				s.shed.Add(1)
			} else {
				// A control message (EndMitigation) must never be lost:
				// requeue it. Under overload it is reordered behind the
				// queue tail, which beats dropping the signal.
				s.requeued.Add(1)
				s.mail <- old
			}
		case <-e.done:
			return ErrClosed
		default:
			// The shard drained the mailbox between the two selects; retry.
		}
	}
}

func (s *shard) noteEnqueued() {
	s.submitted.Add(1)
	depth := int64(len(s.mail))
	for {
		hw := s.highWater.Load()
		if depth <= hw || s.highWater.CompareAndSwap(hw, depth) {
			return
		}
	}
}

// EndMitigation routes a CScrub mitigation-end signal to the customer's
// owning shard. It is ordered with the customer's queued telemetry and is
// never shed.
func (e *Engine) EndMitigation(customer netip.Addr, at ddos.AttackType) error {
	if e.closed() {
		return ErrClosed
	}
	s := e.shards[e.ShardOf(customer)]
	if s.dead.Load() {
		return fmt.Errorf("%w (shard %d)", ErrShardDead, s.id)
	}
	select {
	case s.mail <- message{op: opEnd, customer: customer, atype: at}:
		return nil
	case <-s.deadCh:
		return fmt.Errorf("%w (shard %d)", ErrShardDead, s.id)
	case <-e.done:
		return ErrClosed
	}
}

// Drain blocks until every message submitted before the call has been
// fully processed. It must not race with producers still submitting.
// A dead shard or a wait past Config.DrainTimeout returns an error
// (wrapping ErrShardDead / ErrBarrierTimeout) instead of hanging.
func (e *Engine) Drain() error {
	errs, err := e.barrier(func(s *shard) message {
		return message{op: opBarrier}
	})
	if err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("xatu: drain shard %d: %w", i, err)
		}
	}
	return nil
}

func (e *Engine) closed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// barrier sends one message per shard and waits for every ack. The whole
// barrier shares one Config.DrainTimeout budget, and a dead shard aborts
// it immediately with the shard's last panic — a shard that exited can
// never wedge a Drain/Checkpoint/Restore.
func (e *Engine) barrier(mk func(*shard) message) ([]error, error) {
	if e.closed() {
		return nil, ErrClosed
	}
	timer := time.NewTimer(e.cfg.DrainTimeout)
	defer timer.Stop()
	acks := make([]chan error, len(e.shards))
	for i, s := range e.shards {
		msg := mk(s)
		msg.done = make(chan error, 1)
		acks[i] = msg.done
		select {
		case s.mail <- msg:
		case <-s.deadCh:
			return nil, fmt.Errorf("%w (shard %d: %s)", ErrShardDead, i, s.panicDetail())
		case <-timer.C:
			return nil, fmt.Errorf("%w after %v sending to shard %d (queue %d/%d)",
				ErrBarrierTimeout, e.cfg.DrainTimeout, i, len(s.mail), cap(s.mail))
		case <-e.done:
			return nil, ErrClosed
		}
	}
	errs := make([]error, len(acks))
	for i, d := range acks {
		select {
		case errs[i] = <-d:
		case <-e.shards[i].deadCh:
			// The shard died after the send; prefer a late ack if one
			// raced in ahead of the death notice.
			select {
			case errs[i] = <-d:
			default:
				return nil, fmt.Errorf("%w (shard %d: %s)", ErrShardDead, i, e.shards[i].panicDetail())
			}
		case <-timer.C:
			return nil, fmt.Errorf("%w after %v waiting for shard %d",
				ErrBarrierTimeout, e.cfg.DrainTimeout, i)
		case <-e.done:
			return nil, ErrClosed
		}
	}
	return errs, nil
}

// Stats snapshots per-shard and aggregate counters.
func (e *Engine) Stats() Stats {
	st := Stats{Shards: make([]ShardStats, len(e.shards))}
	st.Health = e.healthNow()
	st.HealthCause = e.HealthCause()
	for i, s := range e.shards {
		ss := ShardStats{
			Shard:          i,
			Submitted:      s.submitted.Load(),
			Shed:           s.shed.Load(),
			Requeued:       s.requeued.Load(),
			Steps:          s.steps.Load(),
			Missing:        s.missing.Load(),
			Alerts:         s.alerts.Load(),
			Channels:       int(s.channels.Load()),
			QueueLen:       len(s.mail),
			QueueHighWater: int(s.highWater.Load()),
			StepTotal:      time.Duration(s.stepNanos.Load()),
			StepMax:        time.Duration(s.stepMax.Load()),
			Restarts:       s.restarts.Load(),
			Quarantined:    s.quarantined.Load(),
			WALReplayed:    s.walReplayed.Load(),
			WALDropped:     s.walDropped.Load(),
			Lost:           s.lost.Load(),
			Bypassed:       s.bypassed.Load(),
			FallbackAlerts: s.fbAlerts.Load(),
			Snapshots:      s.snapshots.Load(),
			RecoveryTotal:  time.Duration(s.recoveryNanos.Load()),
			Stalled:        s.stalled.Load(),
			Dead:           s.dead.Load(),
		}
		st.Shards[i] = ss
		st.Submitted += ss.Submitted
		st.Shed += ss.Shed
		st.Requeued += ss.Requeued
		st.Steps += ss.Steps
		st.Missing += ss.Missing
		st.Alerts += ss.Alerts
		st.Channels += ss.Channels
		st.QueueLen += ss.QueueLen
		st.StepTotal += ss.StepTotal
		st.Restarts += ss.Restarts
		st.Quarantined += ss.Quarantined
		st.WALReplayed += ss.WALReplayed
		st.WALDropped += ss.WALDropped
		st.Lost += ss.Lost
		st.Bypassed += ss.Bypassed
		st.FallbackAlerts += ss.FallbackAlerts
		st.Snapshots += ss.Snapshots
		st.RecoveryTotal += ss.RecoveryTotal
		if ss.Stalled {
			st.StalledShards++
		}
		if ss.Dead {
			st.DeadShards++
		}
		if ss.QueueHighWater > st.QueueHighWater {
			st.QueueHighWater = ss.QueueHighWater
		}
		if ss.StepMax > st.StepMax {
			st.StepMax = ss.StepMax
		}
	}
	return st
}

// Close stops all shards and closes the alert channel. Queued messages
// not yet processed are abandoned; Drain first for a graceful stop.
// Close is idempotent.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.wg.Wait()
		close(e.alerts)
	})
	return nil
}

func (e *Engine) runShard(s *shard) {
	defer e.wg.Done()
	defer func() {
		// Abnormal exit: the engine still runs but this shard is gone
		// (supervision disabled, or an unrecoverable monitor rebuild).
		// Publish the death so Submit and barriers fail fast instead of
		// wedging on a mailbox nobody reads.
		if !e.closed() {
			s.dead.Store(true)
			close(s.deadCh)
		}
	}()
	for {
		select {
		case <-e.done:
			return
		case msg := <-s.mail:
			if !e.supervise(s, msg) {
				return
			}
		}
	}
}

// handle processes one message under health state st; it reports false
// when the engine closed mid-message (alert delivery aborted).
func (e *Engine) handle(s *shard, msg message, st HealthState) bool {
	switch msg.op {
	case opStep:
		if st == CDetOnly {
			// Model inference is shed: the pass-through CDet fallback
			// confirms volumetric anomalies so alerts keep flowing.
			if !e.fallbackStep(s, msg, true) {
				return false
			}
			s.bypassed.Add(1)
			e.observeSubmitLatency(msg.enq)
			return true
		}
		start := time.Now()
		var alerts []ddos.Alert
		var traces []*Trace
		if st == Degraded {
			// Traces are the first load shed: detection is unchanged,
			// alerts just carry no decision evidence.
			alerts = s.mon.ObserveStep(msg.customer, msg.at, msg.flows)
		} else {
			alerts, traces = s.mon.ObserveStepTraced(msg.customer, msg.at, msg.flows)
		}
		el := uint64(time.Since(start))
		s.stepNanos.Add(el)
		for {
			prev := s.stepMax.Load()
			if el <= prev || s.stepMax.CompareAndSwap(prev, el) {
				break
			}
		}
		s.steps.Add(1)
		s.channels.Store(int64(s.mon.Channels()))
		if e.mx != nil {
			e.mx.stepLatency.Observe(time.Duration(el))
		}
		if tr := e.cfg.Trace; tr != nil && tr.Sampled(msg.customer) {
			tr.Record(msg.customer, msg.at, trace.StageStep, time.Duration(el), shardDetail(s.id))
		}
		for i, a := range alerts {
			s.alerts.Add(1)
			if e.mx != nil {
				if at := a.Sig.Type; at >= 0 && at < ddos.NumAttackTypes {
					e.mx.alertsByType[at].Inc()
				}
			}
			var tr *Trace
			if traces != nil {
				tr = traces[i]
			}
			select {
			case e.alerts <- AlertEvent{Customer: msg.customer, At: msg.at, Shard: s.id, Alert: a, Trace: tr}:
			case <-e.done:
				return false
			}
		}
		// Keep the fallback's baselines warm so a later CDetOnly entry
		// starts with learned thresholds, not a cold warm-up.
		e.fallbackStep(s, msg, false)
		e.observeSubmitLatency(msg.enq)
	case opMissing:
		if st == CDetOnly {
			s.bypassed.Add(1)
		} else {
			s.mon.ObserveMissing(msg.customer, msg.at)
			s.missing.Add(1)
		}
		e.fallbackMissing(s, msg)
		e.observeSubmitLatency(msg.enq)
	case opEnd:
		// Mitigation lifecycle always reaches the monitor: its state must
		// stay consistent for the return to Healthy.
		s.mon.EndMitigation(msg.customer, msg.atype)
		if e.mx != nil {
			e.mx.mitigationEnds.Inc()
		}
	case opBarrier:
		msg.done <- nil
	case opCheckpoint:
		err := s.mon.Checkpoint(msg.buf)
		if err == nil {
			// A full checkpoint is also a fresh recovery basis.
			s.publishSnapshot(append([]byte(nil), msg.buf.Bytes()...))
		}
		msg.done <- err
	case opSwap:
		s.mon = msg.mon
		s.channels.Store(int64(s.mon.Channels()))
		// Old snapshot and WAL describe the replaced state; re-base on the
		// restored monitor immediately so a crash right after a Restore
		// recovers the restored state, not the pre-restore one.
		s.walHead, s.walN, s.walEvicted = 0, 0, 0
		s.snap.Store(nil)
		e.snapshotShard(s)
		msg.done <- nil
	case opRewrite:
		mon, err := msg.rewrite(s.mon)
		if err == nil && mon != nil {
			s.mon = mon
			s.channels.Store(int64(s.mon.Channels()))
			// Same re-basing rules as opSwap: the snapshot and WAL describe
			// the pre-rewrite state.
			s.walHead, s.walN, s.walEvicted = 0, 0, 0
			s.snap.Store(nil)
			e.snapshotShard(s)
		}
		msg.done <- err
	case opInject:
		panic(fmt.Sprintf("engine: injected fault on shard %d", s.id))
	default:
		panic(fmt.Sprintf("engine: unknown opcode %d", msg.op))
	}
	return true
}

// observeSubmitLatency records enqueue-to-processed latency for a stamped
// telemetry message (alerts, if any, have already been emitted).
func (e *Engine) observeSubmitLatency(enq int64) {
	if e.mx == nil || enq == 0 {
		return
	}
	e.mx.submitLatency.Observe(time.Duration(time.Now().UnixNano() - enq))
}

// shardDetail renders the span-detail label for a shard. Small shard
// indices (the common case) come from a precomputed table so sampled
// steps don't pay a fmt call.
func shardDetail(id int) string {
	if id >= 0 && id < len(shardDetails) {
		return shardDetails[id]
	}
	return fmt.Sprintf("shard %d", id)
}

var shardDetails = func() [64]string {
	var t [64]string
	for i := range t {
		t[i] = fmt.Sprintf("shard %d", i)
	}
	return t
}()
