package engine

import (
	"bytes"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/telemetry"
)

// TestAlertEventCarriesTrace pins the explainability contract: every
// alert leaving the engine has a populated decision trace whose survival
// trajectory ends below the threshold at the firing value, whose signal
// contributions are a distribution, and which marshals to JSON.
func TestAlertEventCarriesTrace(t *testing.T) {
	cfg := tinyMonitorConfig(t)
	cfg.OverheadBound = 0.25
	eng, err := New(Config{Monitor: cfg, Shards: 2, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	customer := testCustomers(1)[0]
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	for s := 0; s < 12; s++ {
		if err := eng.Submit(customer, t0.Add(time.Duration(s)*time.Minute), udpFlows(customer, s, t0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	var events []AlertEvent
	for ev := range eng.Alerts() {
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("fixture raised no alerts")
	}
	for _, ev := range events {
		tr := ev.Trace
		if tr == nil {
			t.Fatalf("alert %+v has no trace", ev.Alert.Sig)
		}
		if tr.Customer != customer || tr.Type != ddos.UDPFlood.String() || !tr.At.Equal(ev.At) {
			t.Fatalf("trace identity wrong: %+v", tr)
		}
		if tr.Threshold != cfg.Threshold || tr.OverheadBound != 0.25 {
			t.Fatalf("trace calibration wrong: threshold=%v bound=%v", tr.Threshold, tr.OverheadBound)
		}
		if tr.Survival >= tr.Threshold {
			t.Fatalf("trace survival %v did not cross threshold %v", tr.Survival, tr.Threshold)
		}
		if len(tr.Trajectory) == 0 || tr.Trajectory[len(tr.Trajectory)-1] != tr.Survival {
			t.Fatalf("trajectory must end at the firing survival: %v vs %v", tr.Trajectory, tr.Survival)
		}
		if len(tr.Trajectory) > traceTrajectory || len(tr.Trajectory) > tr.StreamSteps {
			t.Fatalf("trajectory length %d out of bounds (steps %d)", len(tr.Trajectory), tr.StreamSteps)
		}
		sum := 0.0
		for _, share := range tr.Contributions {
			if share < 0 {
				t.Fatalf("negative contribution share in %v", tr.Contributions)
			}
			sum += share
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("contribution shares sum to %v, want 1: %v", sum, tr.Contributions)
		}
		if tr.Contributions["V"] == 0 {
			t.Fatalf("UDP flood step has zero volumetric mass: %v", tr.Contributions)
		}
		if tr.MatchedFlows == 0 || tr.MatchedFlows > tr.TotalFlows {
			t.Fatalf("matched %d of %d flows", tr.MatchedFlows, tr.TotalFlows)
		}
		if tr.Window == 0 || tr.StreamSteps == 0 {
			t.Fatalf("missing stream context: %+v", tr)
		}
		data, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{`"survival"`, `"trajectory"`, `"contributions"`, `"threshold"`, `"overhead_bound"`} {
			if !bytes.Contains(data, []byte(key)) {
				t.Fatalf("trace JSON missing %s: %s", key, data)
			}
		}
	}
}

// TestEngineTelemetryRegistry runs an instrumented engine and checks the
// registered families render with the right values, the latency
// histograms observe every processed message, and Health reports shard
// liveness.
func TestEngineTelemetryRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	eng, err := New(Config{Monitor: tinyMonitorConfig(t), Shards: 2, Policy: Block, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range eng.Alerts() {
		}
	}()
	customers := testCustomers(8)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	const steps = 10
	for s := 0; s < steps; s++ {
		for _, c := range customers {
			if err := eng.Submit(c, t0.Add(time.Duration(s)*time.Minute), udpFlows(c, s, t0)); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.ObserveMissing(customers[0], t0.Add(time.Duration(s)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.EndMitigation(customers[0], ddos.UDPFlood); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := eng.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	st := eng.Stats()
	if got := eng.StepLatency().Count(); got != st.Steps {
		t.Fatalf("step histogram saw %d observations, engine processed %d steps", got, st.Steps)
	}
	if eng.StepLatency().Summary().Max <= 0 {
		t.Fatal("step latency max not recorded")
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE xatu_engine_steps_total counter",
		`xatu_engine_submitted_total{shard="0"}`,
		`xatu_engine_queue_depth{shard="1"} 0`,
		"# TYPE xatu_engine_step_seconds histogram",
		"xatu_engine_step_seconds_count " + strconv.FormatUint(st.Steps, 10),
		"xatu_engine_submit_to_alert_seconds_count " + strconv.FormatUint(st.Steps+st.Missing, 10),
		"xatu_engine_checkpoint_seconds_count 1",
		"xatu_engine_mitigation_ends_total 1",
		`xatu_monitor_alerts_total{type="udp-flood"}`,
		`xatu_monitor_channels{shard="0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}

	h := eng.Health()
	if !h.OK || h.Closed || len(h.Shards) != 2 {
		t.Fatalf("health before close: %+v", h)
	}
	if h.Shards[0].QueueCap == 0 {
		t.Fatal("health missing queue capacity")
	}
	if h.Shards[0].Channels+h.Shards[1].Channels == 0 {
		t.Fatal("health missing channel counts")
	}
	eng.Close()
	if h := eng.Health(); h.OK || !h.Closed {
		t.Fatalf("health after close: %+v", h)
	}
}

// TestStatsAggregateConsistency audits the Stats roll-up: every counter
// and duration sums over shards, water marks take the shard max, and
// AvgStep guards the zero-step case.
func TestStatsAggregateConsistency(t *testing.T) {
	eng, err := New(Config{Monitor: tinyMonitorConfig(t), Shards: 4, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	if avg := eng.Stats().AvgStep(); avg != 0 {
		t.Fatalf("AvgStep with zero steps = %v, want 0", avg)
	}
	if avg := (ShardStats{}).AvgStep(); avg != 0 {
		t.Fatalf("ShardStats.AvgStep with zero steps = %v, want 0", avg)
	}
	go func() {
		for range eng.Alerts() {
		}
	}()
	customers := testCustomers(16)
	t0 := time.Date(2019, 7, 3, 0, 0, 0, 0, time.UTC)
	for s := 0; s < 8; s++ {
		for _, c := range customers {
			if err := eng.Submit(c, t0.Add(time.Duration(s)*time.Minute), udpFlows(c, s, t0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	defer eng.Close()

	var sub, shed, req, steps, missing, alerts uint64
	var chans, qlen, hw int
	var total, max time.Duration
	for _, ss := range st.Shards {
		sub += ss.Submitted
		shed += ss.Shed
		req += ss.Requeued
		steps += ss.Steps
		missing += ss.Missing
		alerts += ss.Alerts
		chans += ss.Channels
		qlen += ss.QueueLen
		total += ss.StepTotal
		if ss.QueueHighWater > hw {
			hw = ss.QueueHighWater
		}
		if ss.StepMax > max {
			max = ss.StepMax
		}
	}
	if st.Submitted != sub || st.Shed != shed || st.Requeued != req ||
		st.Steps != steps || st.Missing != missing || st.Alerts != alerts ||
		st.Channels != chans || st.QueueLen != qlen ||
		st.StepTotal != total || st.QueueHighWater != hw || st.StepMax != max {
		t.Fatalf("aggregate disagrees with shard roll-up:\n%+v", st)
	}
	if st.Channels != len(customers) {
		t.Fatalf("channels = %d, want one per customer (%d)", st.Channels, len(customers))
	}
	if st.AvgStep() != st.StepTotal/time.Duration(st.Steps) {
		t.Fatalf("AvgStep = %v, want %v", st.AvgStep(), st.StepTotal/time.Duration(st.Steps))
	}
	if st.StepMax < st.AvgStep() {
		t.Fatalf("StepMax %v below AvgStep %v", st.StepMax, st.AvgStep())
	}
}
