package engine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"github.com/xatu-go/xatu/internal/ddos"
)

// Monitor checkpointing. A Monitor restarted cold is blind for Window
// steps per channel; Checkpoint/Restore persist every channel's full
// online state — the per-branch LSTM hidden and cell vectors, pooling
// buffers, the hazard ring, and the mitigation flags — so a restarted
// detector resumes warm, bitwise-identically to an uninterrupted run.
//
// Format (little-endian, versioned; see DESIGN.md §"Fault model"):
//
//	magic "XMC1" | uint16 version | uint32 nchans
//	per channel (sorted by customer, then attack type):
//	  uint8 addrLen + addr bytes (netip marshal)
//	  uint8 attack type | uint8 mitigating
//	  uint8 sinceLen + since bytes (time marshal)
//	  uint32 streamLen + stream checkpoint (core format "XSC1")
//
// Version 1 is a single Monitor. Version 2 is the sharded Engine layout:
// the header is followed by uint32 nshards and one length-prefixed
// version-1 body per shard (see checkpoint.go). Monitor.Restore reads
// only version 1; Engine.Restore reads both.
//
// The model weights are NOT included — they live in Model.Save files; a
// checkpoint restores into a Monitor constructed with equivalent models,
// and the per-stream config digest rejects architecture mismatches.

var monitorCkptMagic = [4]byte{'X', 'M', 'C', '1'}

const (
	monitorCkptVersion = 1
	engineCkptVersion  = 2
)

// Checkpoint serializes the monitor's full detection state to w. Channels
// are written in sorted order, so identical state yields identical bytes.
func (m *Monitor) Checkpoint(w io.Writer) error {
	keys := make([]monKey, 0, len(m.chans))
	for k := range m.chans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if c := keys[i].customer.Compare(keys[j].customer); c != 0 {
			return c < 0
		}
		return keys[i].at < keys[j].at
	})
	if _, err := w.Write(monitorCkptMagic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	var hdr [6]byte
	le.PutUint16(hdr[0:], monitorCkptVersion)
	le.PutUint32(hdr[2:], uint32(len(keys)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, k := range keys {
		ch := m.chans[k]
		addr, err := k.customer.MarshalBinary()
		if err != nil {
			return fmt.Errorf("xatu: checkpoint customer %v: %w", k.customer, err)
		}
		since, err := ch.since.MarshalBinary()
		if err != nil {
			return fmt.Errorf("xatu: checkpoint since time: %w", err)
		}
		var stream bytes.Buffer
		if err := ch.stream.Checkpoint(&stream); err != nil {
			return fmt.Errorf("xatu: checkpoint stream %v/%v: %w", k.customer, k.at, err)
		}
		mit := byte(0)
		if ch.mitigating {
			mit = 1
		}
		buf := make([]byte, 0, 8+len(addr)+len(since)+stream.Len())
		buf = append(buf, byte(len(addr)))
		buf = append(buf, addr...)
		buf = append(buf, byte(k.at), mit, byte(len(since)))
		buf = append(buf, since...)
		buf = le.AppendUint32(buf, uint32(stream.Len()))
		buf = append(buf, stream.Bytes()...)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Restore loads a checkpoint written by Checkpoint into this monitor,
// replacing any existing channel state. The monitor must be configured
// with models architecturally identical to the checkpointing one (weights
// come from the model files; only online state is restored). On error the
// monitor's previous state is left untouched.
func (m *Monitor) Restore(r io.Reader) error {
	version, n, err := readMonitorCkptHeader(r)
	if err != nil {
		return err
	}
	if version != monitorCkptVersion {
		if version == engineCkptVersion {
			return fmt.Errorf("xatu: version-%d checkpoint holds multiple shards; restore it through an Engine", version)
		}
		return fmt.Errorf("xatu: unsupported monitor checkpoint version %d", version)
	}
	chans, err := m.readChannels(r, n)
	if err != nil {
		return err
	}
	m.chans = chans
	return nil
}

// readMonitorCkptHeader consumes the shared magic + version + count
// header of the XMC1 family.
func readMonitorCkptHeader(r io.Reader) (version uint16, n uint32, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return 0, 0, fmt.Errorf("xatu: reading checkpoint magic: %w", err)
	}
	if magic != monitorCkptMagic {
		return 0, 0, fmt.Errorf("xatu: not a monitor checkpoint (magic %q)", magic)
	}
	le := binary.LittleEndian
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("xatu: reading checkpoint header: %w", err)
	}
	return le.Uint16(hdr[0:]), le.Uint32(hdr[2:]), nil
}

// readChannels parses n channel records into a fresh channel map.
func (m *Monitor) readChannels(r io.Reader, n uint32) (map[monKey]*monChan, error) {
	if n > 1<<22 {
		return nil, fmt.Errorf("xatu: implausible channel count %d", n)
	}
	le := binary.LittleEndian
	chans := make(map[monKey]*monChan, n)
	for i := uint32(0); i < n; i++ {
		var addrLen [1]byte
		if _, err := io.ReadFull(r, addrLen[:]); err != nil {
			return nil, fmt.Errorf("xatu: channel %d: %w", i, err)
		}
		addrBuf := make([]byte, addrLen[0])
		if _, err := io.ReadFull(r, addrBuf); err != nil {
			return nil, fmt.Errorf("xatu: channel %d address: %w", i, err)
		}
		var customer netip.Addr
		if err := customer.UnmarshalBinary(addrBuf); err != nil {
			return nil, fmt.Errorf("xatu: channel %d address: %w", i, err)
		}
		var meta [3]byte // attack type, mitigating, sinceLen
		if _, err := io.ReadFull(r, meta[:]); err != nil {
			return nil, fmt.Errorf("xatu: channel %d meta: %w", i, err)
		}
		at := ddos.AttackType(meta[0])
		if int(meta[0]) >= 6 {
			return nil, fmt.Errorf("xatu: channel %d: unknown attack type %d", i, meta[0])
		}
		sinceBuf := make([]byte, meta[2])
		if _, err := io.ReadFull(r, sinceBuf); err != nil {
			return nil, fmt.Errorf("xatu: channel %d since: %w", i, err)
		}
		var since time.Time
		if err := since.UnmarshalBinary(sinceBuf); err != nil {
			return nil, fmt.Errorf("xatu: channel %d since: %w", i, err)
		}
		var slen [4]byte
		if _, err := io.ReadFull(r, slen[:]); err != nil {
			return nil, fmt.Errorf("xatu: channel %d stream length: %w", i, err)
		}
		streamLen := le.Uint32(slen[:])
		if streamLen > 1<<26 {
			return nil, fmt.Errorf("xatu: channel %d: implausible stream length %d", i, streamLen)
		}
		streamBuf := make([]byte, streamLen)
		if _, err := io.ReadFull(r, streamBuf); err != nil {
			return nil, fmt.Errorf("xatu: channel %d stream: %w", i, err)
		}
		stream, err := m.groupFor(m.modelFor(at)).restoreStream(bytes.NewReader(streamBuf))
		if err != nil {
			return nil, fmt.Errorf("xatu: channel %d (%v/%v): %w", i, customer, at, err)
		}
		chans[monKey{customer, at}] = &monChan{
			stream:     stream,
			mitigating: meta[1] != 0,
			since:      since,
		}
	}
	return chans, nil
}
