package engine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"sync/atomic"
	"time"
)

// Engine checkpointing: the drain-then-snapshot protocol.
//
// Engine.Checkpoint first runs a Drain barrier (every message submitted
// before the call is fully processed), then has each shard goroutine
// serialize its own Monitor — state is only ever touched by its owning
// shard, so the snapshot needs no locks — and frames the per-shard blobs
// into one file:
//
//	magic "XMC1" | uint16 version=2 | uint32 nshards
//	per shard: uint32 seglen | version-1 Monitor checkpoint bytes
//
// Engine.Restore reads both layouts. The shard count in the file is
// advisory only: every channel record carries its customer address, so
// restore re-partitions all channels by the current engine's stable hash
// (see ShardOf). A checkpoint taken at 16 shards restores onto 4, or onto
// a single-monitor-per-shard layout, with every stream bit-exact — the
// split is done at the record-framing level, the stream payloads are
// never re-encoded. Version-1 files (one bare Monitor, written by older
// xatu-detect builds or Monitor.Checkpoint) restore the same way.

// Checkpoint drains the engine and writes a version-2 multi-shard
// snapshot to w. Producers must be quiesced for the duration; the alert
// channel must keep being drained.
func (e *Engine) Checkpoint(w io.Writer) error {
	if e.mx != nil {
		start := time.Now()
		defer func() { e.mx.checkpointLatency.Observe(time.Since(start)) }()
	}
	if err := e.Drain(); err != nil {
		return err
	}
	bufs := make([]bytes.Buffer, len(e.shards))
	errs, err := e.barrier(func(s *shard) message {
		return message{op: opCheckpoint, buf: &bufs[s.id]}
	})
	if err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("xatu: checkpoint shard %d: %w", i, err)
		}
	}
	segs := make([][]byte, len(bufs))
	for i := range bufs {
		segs[i] = bufs[i].Bytes()
	}
	return writeEngineCheckpoint(w, segs)
}

// CheckpointIncremental writes the most recent per-shard background
// snapshots as a standard version-2 checkpoint — no fleet barrier, no
// drain, producers keep running. Each shard's segment is at most
// Config.CheckpointInterval stale (a shard that has not snapshotted yet
// contributes its empty boot state), so the staleness of the file — and
// restart loss through it — is bounded by the snapshot interval, not the
// run length. Per-customer state is consistent: a customer lives wholly
// inside one shard's segment, and every segment is a complete monitor
// snapshot taken at a message boundary. Restore reads the output exactly
// like a barrier Checkpoint's.
func (e *Engine) CheckpointIncremental(w io.Writer) error {
	segs := make([][]byte, len(e.shards))
	size := 0
	for i, s := range e.shards {
		if sn := s.snap.Load(); sn != nil {
			segs[i] = sn.data
		} else {
			segs[i] = buildMonitorBlob(nil)
		}
		size += len(segs[i])
	}
	e.cfg.Flight.Record("checkpoint", "incremental checkpoint: %d shards, %d bytes", len(segs), size)
	return writeEngineCheckpoint(w, segs)
}

// CheckpointCustomers drains the engine and writes a version-2 checkpoint
// holding only the channels of customers matching pred — the migration
// segment a cluster node streams to a customer's successor. The byte
// framing is exactly Checkpoint's (XMC1-v2, length-prefixed version-1
// segments), so Restore and RestoreCustomers read the output unchanged;
// the channel records pass through at the framing level, never
// re-encoded, so the moved streams stay bit-exact. Returns the number of
// channels written. Producers for the matching customers should be
// quiesced or buffered by the caller for the duration (the engine-level
// contract is the same as Checkpoint's).
func (e *Engine) CheckpointCustomers(w io.Writer, pred func(netip.Addr) bool) (int, error) {
	if err := e.Drain(); err != nil {
		return 0, err
	}
	bufs := make([]bytes.Buffer, len(e.shards))
	errs, err := e.barrier(func(s *shard) message {
		return message{op: opCheckpoint, buf: &bufs[s.id]}
	})
	if err != nil {
		return 0, err
	}
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("xatu: checkpoint shard %d: %w", i, err)
		}
	}
	total := 0
	segs := make([][]byte, len(bufs))
	for i := range bufs {
		chans, err := blobRawChans(bufs[i].Bytes())
		if err != nil {
			return 0, fmt.Errorf("xatu: checkpoint shard %d: %w", i, err)
		}
		var kept []rawChan
		for _, rc := range chans {
			if pred(rc.customer) {
				kept = append(kept, rc)
			}
		}
		total += len(kept)
		segs[i] = buildMonitorBlob(kept)
	}
	return total, writeEngineCheckpoint(w, segs)
}

// RestoreCustomers merges the channels of a checkpoint (any layout
// Restore accepts, typically a CheckpointCustomers segment) into the
// running engine: existing channels of the incoming customers are
// replaced wholesale, every other customer's state is untouched, and the
// incoming records are re-partitioned onto this engine's shards by the
// stable hash. pred, when non-nil, filters which incoming customers are
// absorbed (a migration target passes "owned by me under the current
// routing table" so a source can broadcast one segment to many
// successors). Each shard's merge runs atomically on the shard's own
// goroutine, so steps concurrently submitted for non-moving customers are
// never lost or applied to stale state. Returns the number of channels
// absorbed.
func (e *Engine) RestoreCustomers(r io.Reader, pred func(netip.Addr) bool) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("xatu: reading checkpoint: %w", err)
	}
	segs, err := checkpointSegments(data)
	if err != nil {
		return 0, err
	}
	parts := make([][]rawChan, len(e.shards))
	owners := make(map[netip.Addr]bool)
	total := 0
	for i, seg := range segs {
		chans, err := scanMonitorBody(seg)
		if err != nil {
			return 0, fmt.Errorf("xatu: checkpoint segment %d: %w", i, err)
		}
		for _, rc := range chans {
			if pred != nil && !pred(rc.customer) {
				continue
			}
			sh := shardOf(rc.customer, len(e.shards))
			parts[sh] = append(parts[sh], rc)
			owners[rc.customer] = true
			total++
		}
	}
	if total == 0 {
		return 0, nil
	}
	mcfg := e.cfg.Monitor
	errs, err := e.barrier(func(s *shard) message {
		add := parts[s.id]
		return message{op: opRewrite, rewrite: func(m *Monitor) (*Monitor, error) {
			cur, err := monitorRawChans(m)
			if err != nil {
				return nil, err
			}
			kept := make([]rawChan, 0, len(cur)+len(add))
			for _, rc := range cur {
				if !owners[rc.customer] {
					kept = append(kept, rc)
				}
			}
			if len(add) == 0 && len(kept) == len(cur) {
				return nil, nil // nothing to replace on this shard
			}
			kept = append(kept, add...)
			mon, err := NewMonitor(mcfg)
			if err != nil {
				return nil, err
			}
			if err := mon.Restore(bytes.NewReader(buildMonitorBlob(kept))); err != nil {
				return nil, err
			}
			return mon, nil
		}}
	})
	if err != nil {
		return 0, err
	}
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("xatu: merging shard %d: %w", i, err)
		}
	}
	return total, nil
}

// RemoveCustomers drops every channel whose customer matches pred — the
// source side of a completed migration. Each shard's filter runs
// atomically on the shard goroutine. Returns the number of channels
// removed.
func (e *Engine) RemoveCustomers(pred func(netip.Addr) bool) (int, error) {
	var removed atomic.Int64
	mcfg := e.cfg.Monitor
	errs, err := e.barrier(func(s *shard) message {
		return message{op: opRewrite, rewrite: func(m *Monitor) (*Monitor, error) {
			cur, err := monitorRawChans(m)
			if err != nil {
				return nil, err
			}
			kept := make([]rawChan, 0, len(cur))
			n := 0
			for _, rc := range cur {
				if pred(rc.customer) {
					n++
				} else {
					kept = append(kept, rc)
				}
			}
			if n == 0 {
				return nil, nil
			}
			mon, err := NewMonitor(mcfg)
			if err != nil {
				return nil, err
			}
			if err := mon.Restore(bytes.NewReader(buildMonitorBlob(kept))); err != nil {
				return nil, err
			}
			removed.Add(int64(n))
			return mon, nil
		}}
	})
	if err != nil {
		return 0, err
	}
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("xatu: filtering shard %d: %w", i, err)
		}
	}
	return int(removed.Load()), nil
}

// monitorRawChans serializes a monitor and lifts its channel records at
// the framing level, for shard-goroutine rewrites.
func monitorRawChans(m *Monitor) ([]rawChan, error) {
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		return nil, err
	}
	return blobRawChans(buf.Bytes())
}

// blobRawChans splits a full version-1 monitor blob (magic + header +
// channels) into its channel records.
func blobRawChans(blob []byte) ([]rawChan, error) {
	r := bytes.NewReader(blob)
	version, n, err := readMonitorCkptHeader(r)
	if err != nil {
		return nil, err
	}
	if version != monitorCkptVersion {
		return nil, fmt.Errorf("xatu: unexpected monitor blob version %d", version)
	}
	seg := make([]byte, 0, 4+r.Len())
	seg = binary.LittleEndian.AppendUint32(seg, n)
	seg = append(seg, blob[len(blob)-r.Len():]...)
	return scanMonitorBody(seg)
}

// writeEngineCheckpoint frames per-shard version-1 monitor blobs into the
// version-2 engine checkpoint layout.
func writeEngineCheckpoint(w io.Writer, segs [][]byte) error {
	le := binary.LittleEndian
	hdr := make([]byte, 0, 10)
	hdr = append(hdr, monitorCkptMagic[:]...)
	hdr = le.AppendUint16(hdr, engineCkptVersion)
	hdr = le.AppendUint32(hdr, uint32(len(segs)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	for i := range segs {
		var seglen [4]byte
		le.PutUint32(seglen[:], uint32(len(segs[i])))
		if _, err := w.Write(seglen[:]); err != nil {
			return err
		}
		if _, err := w.Write(segs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Restore loads a version-1 (single monitor) or version-2 (multi-shard)
// checkpoint, re-partitioning every channel onto this engine's shards by
// the stable customer hash. The restore is transactional: fresh monitors
// are built and populated off to the side, and the shards only swap to
// them after every segment parsed cleanly — on error the engine's
// previous state is untouched. Producers must be quiesced.
func (e *Engine) Restore(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("xatu: reading checkpoint: %w", err)
	}
	segs, err := checkpointSegments(data)
	if err != nil {
		return err
	}
	// Re-partition all channel records across the current shard count.
	parts := make([][]rawChan, len(e.shards))
	for i, seg := range segs {
		chans, err := scanMonitorBody(seg)
		if err != nil {
			return fmt.Errorf("xatu: checkpoint segment %d: %w", i, err)
		}
		for _, rc := range chans {
			sh := shardOf(rc.customer, len(e.shards))
			parts[sh] = append(parts[sh], rc)
		}
	}
	// Build and validate replacement monitors before touching any shard.
	mons := make([]*Monitor, len(e.shards))
	for i := range e.shards {
		mon, err := NewMonitor(e.cfg.Monitor)
		if err != nil {
			return err
		}
		if err := mon.Restore(bytes.NewReader(buildMonitorBlob(parts[i]))); err != nil {
			return fmt.Errorf("xatu: restoring shard %d: %w", i, err)
		}
		mons[i] = mon
	}
	errs, err := e.barrier(func(s *shard) message {
		return message{op: opSwap, mon: mons[s.id]}
	})
	if err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("xatu: swapping shard %d: %w", i, err)
		}
	}
	e.cfg.Flight.Record("restore", "restored %d bytes onto %d shards", len(data), len(e.shards))
	return nil
}

// checkpointSegments splits a checkpoint file into version-1 monitor
// bodies (magic + header stripped): one per shard for version 2, a single
// segment for a bare version-1 file.
func checkpointSegments(data []byte) ([][]byte, error) {
	r := bytes.NewReader(data)
	version, n, err := readMonitorCkptHeader(r)
	if err != nil {
		return nil, err
	}
	body := data[len(data)-r.Len():]
	switch version {
	case monitorCkptVersion:
		// A bare Monitor checkpoint: the body is one segment holding n
		// channels. Reconstruct the channel count prefix the scanner wants.
		seg := make([]byte, 0, 4+len(body))
		seg = binary.LittleEndian.AppendUint32(seg, n)
		seg = append(seg, body...)
		return [][]byte{seg}, nil
	case engineCkptVersion:
		if n > 1<<16 {
			return nil, fmt.Errorf("xatu: implausible shard count %d", n)
		}
		segs := make([][]byte, 0, n)
		for i := uint32(0); i < n; i++ {
			var seglen [4]byte
			if _, err := io.ReadFull(r, seglen[:]); err != nil {
				return nil, fmt.Errorf("xatu: segment %d length: %w", i, err)
			}
			sl := binary.LittleEndian.Uint32(seglen[:])
			if uint64(sl) > uint64(r.Len()) {
				return nil, fmt.Errorf("xatu: segment %d length %d exceeds remaining %d", i, sl, r.Len())
			}
			seg := make([]byte, sl)
			if _, err := io.ReadFull(r, seg); err != nil {
				return nil, fmt.Errorf("xatu: segment %d: %w", i, err)
			}
			// Each segment is a full version-1 checkpoint; strip its header.
			sr := bytes.NewReader(seg)
			sv, sn, err := readMonitorCkptHeader(sr)
			if err != nil {
				return nil, fmt.Errorf("xatu: segment %d: %w", i, err)
			}
			if sv != monitorCkptVersion {
				return nil, fmt.Errorf("xatu: segment %d: unexpected inner version %d", i, sv)
			}
			inner := make([]byte, 0, 4+sr.Len())
			inner = binary.LittleEndian.AppendUint32(inner, sn)
			inner = append(inner, seg[len(seg)-sr.Len():]...)
			segs = append(segs, inner)
		}
		if r.Len() != 0 {
			return nil, fmt.Errorf("xatu: %d trailing bytes after last segment", r.Len())
		}
		return segs, nil
	default:
		return nil, fmt.Errorf("xatu: unsupported checkpoint version %d", version)
	}
}

// rawChan is one channel record lifted out of a checkpoint without
// decoding its stream payload: just enough framing to route it.
type rawChan struct {
	customer netip.Addr
	// raw is the complete channel record (addr through stream bytes),
	// byte-identical to what Checkpoint wrote.
	raw []byte
}

// scanMonitorBody walks a segment (uint32 nchans + channel records) at
// the framing level, returning each record with its routing address.
func scanMonitorBody(seg []byte) ([]rawChan, error) {
	le := binary.LittleEndian
	if len(seg) < 4 {
		return nil, fmt.Errorf("truncated segment (%d bytes)", len(seg))
	}
	n := le.Uint32(seg)
	if n > 1<<22 {
		return nil, fmt.Errorf("implausible channel count %d", n)
	}
	body := seg[4:]
	chans := make([]rawChan, 0, n)
	off := 0
	need := func(want int, what string) error {
		if off+want > len(body) {
			return fmt.Errorf("channel %d: truncated %s at offset %d", len(chans), what, off)
		}
		return nil
	}
	for i := uint32(0); i < n; i++ {
		start := off
		if err := need(1, "address length"); err != nil {
			return nil, err
		}
		addrLen := int(body[off])
		if err := need(1+addrLen+3, "address + meta"); err != nil {
			return nil, err
		}
		var customer netip.Addr
		if err := customer.UnmarshalBinary(body[off+1 : off+1+addrLen]); err != nil {
			return nil, fmt.Errorf("channel %d address: %w", i, err)
		}
		off += 1 + addrLen
		sinceLen := int(body[off+2])
		off += 3
		if err := need(sinceLen+4, "since + stream length"); err != nil {
			return nil, err
		}
		off += sinceLen
		streamLen := int(le.Uint32(body[off:]))
		off += 4
		if streamLen > 1<<26 {
			return nil, fmt.Errorf("channel %d: implausible stream length %d", i, streamLen)
		}
		if err := need(streamLen, "stream"); err != nil {
			return nil, err
		}
		off += streamLen
		chans = append(chans, rawChan{customer: customer, raw: body[start:off]})
	}
	if off != len(body) {
		return nil, fmt.Errorf("%d trailing bytes after channel %d", len(body)-off, n)
	}
	return chans, nil
}

// buildMonitorBlob reassembles channel records into a version-1 Monitor
// checkpoint Monitor.Restore accepts. Record bytes pass through verbatim,
// so streams survive any number of split/merge cycles bit-exactly.
func buildMonitorBlob(chans []rawChan) []byte {
	le := binary.LittleEndian
	size := 10
	for _, rc := range chans {
		size += len(rc.raw)
	}
	blob := make([]byte, 0, size)
	blob = append(blob, monitorCkptMagic[:]...)
	blob = le.AppendUint16(blob, monitorCkptVersion)
	blob = le.AppendUint32(blob, uint32(len(chans)))
	for _, rc := range chans {
		blob = append(blob, rc.raw...)
	}
	return blob
}
