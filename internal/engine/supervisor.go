package engine

import (
	"bytes"
	"fmt"
	"net/netip"
	"time"

	"github.com/xatu-go/xatu/internal/cdet"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/netflow"
)

// Shard supervision: the self-healing layer of the engine.
//
// Every message a shard processes runs under a supervisor (supervise)
// that recovers panics instead of letting the shard goroutine die. The
// poison message is quarantined — counted, never retried — and the
// shard's Monitor is rebuilt from its last background snapshot plus a
// bounded in-memory WAL of the telemetry processed since that snapshot
// (walEntry ring). Restart loss is therefore bounded: at most the poison
// message plus whatever the WAL evicted since the last snapshot, both
// accounted in ShardStats.Lost.
//
// A watchdog goroutine drives stall detection and a three-state health
// machine, Healthy → Degraded → CDetOnly, that sheds work in order:
// Degraded drops decision traces (alert quality untouched), CDetOnly
// drops model inference entirely and falls back to a pass-through CDet
// confirmation so alerts keep flowing at commercial-detector quality.
// Escalation is immediate after a short confirmation window; recovery is
// hysteretic (RecoverTicks consecutive clean ticks per level) so the
// state cannot flap at a threshold boundary.

// HealthState is the engine's degradation level.
type HealthState int32

// Health states, in escalation order. The numeric values are exported on
// the xatu_engine_health_state gauge.
const (
	// Healthy: full service — model inference with decision traces.
	Healthy HealthState = iota
	// Degraded: traces are shed; inference and alert quality untouched.
	Degraded
	// CDetOnly: model inference is shed; a pass-through CDet fallback
	// confirms volumetric anomalies so alerts keep flowing.
	CDetOnly
)

// String returns the state slug used in health reports and metrics.
func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case CDetOnly:
		return "cdet-only"
	default:
		return "unknown"
	}
}

// HealthTransition records one health-state change.
type HealthTransition struct {
	From  HealthState `json:"from"`
	To    HealthState `json:"to"`
	Cause string      `json:"cause,omitempty"`
	At    time.Time   `json:"at"`
}

const (
	// degradedQueueFrac / cdetOnlyQueueFrac are the mailbox-fullness
	// escalation thresholds. They only apply under ShedOldest: with Block
	// a full mailbox is intended backpressure, not data loss.
	degradedQueueFrac = 0.75
	cdetOnlyQueueFrac = 0.95
	// pressureTicks is how many consecutive watchdog ticks must confirm
	// pressure before escalating one level — a debounce, not hysteresis.
	pressureTicks = 2
	// maxHealthTransitions bounds the retained transition history.
	maxHealthTransitions = 64
)

// walEntry is one replayable telemetry message. Flow slices are retained
// by reference: Submit hands ownership of the slice to the engine, so the
// WAL may alias it without copying.
type walEntry struct {
	op       opcode
	customer netip.Addr
	at       time.Time
	flows    []netflow.Record
	atype    ddos.AttackType
}

// shardSnapshot is one background Monitor snapshot: a complete version-1
// checkpoint blob, immutable once published.
type shardSnapshot struct {
	data []byte
	at   time.Time
}

// supervise runs one message under panic protection. On panic the
// message is quarantined and the shard restarts from its last snapshot +
// WAL; with Config.DisableSupervision the shard dies instead (surfaced
// via Stats/Health and barrier errors, never a hung Drain).
func (e *Engine) supervise(s *shard, msg message) (alive bool) {
	st := e.healthNow()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		s.quarantined.Add(1)
		if msg.op == opStep || msg.op == opMissing || msg.op == opEnd {
			s.lost.Add(1) // the poison message's telemetry is gone for good
		}
		s.setLastPanic(r)
		// Panic = incident: freeze the flight ring with the event that
		// triggered it included, so the dump shows what led up to it.
		e.cfg.Flight.Record("panic", "shard %d panicked on %s: %v", s.id, opName(msg.op), r)
		e.cfg.Flight.Dump("panic")
		if msg.done != nil {
			msg.done <- fmt.Errorf("xatu: shard %d panicked: %v", s.id, r)
		}
		if e.cfg.DisableSupervision {
			alive = false
			return
		}
		alive = e.recoverShard(s)
	}()
	if !e.handle(s, msg, st) {
		return false
	}
	e.postHandle(s, msg, st)
	s.handled.Add(1)
	return true
}

// postHandle appends a successfully processed telemetry message to the
// WAL (so it can be replayed after a later panic) and takes a background
// snapshot when the checkpoint interval has elapsed. Messages bypassed in
// CDetOnly never touched the monitor and are not logged — the WAL
// mirrors monitor state exactly.
func (e *Engine) postHandle(s *shard, msg message, st HealthState) {
	switch msg.op {
	case opStep, opMissing:
		if st != CDetOnly {
			s.walAppend(msg)
		}
	case opEnd:
		s.walAppend(msg)
	default:
		return // barrier-family messages do not mutate customer state
	}
	if iv := e.cfg.CheckpointInterval; iv > 0 && time.Since(s.lastSnap) >= iv {
		e.snapshotShard(s)
	}
}

// walAppend records one processed message, evicting the oldest entry when
// the ring is full. Evicted entries leave the replay window: their effect
// survives only in the live monitor, so they become part of the loss
// bound if the shard crashes before the next snapshot re-bases the log.
func (s *shard) walAppend(msg message) {
	if len(s.wal) == 0 {
		return
	}
	if s.walN == len(s.wal) {
		s.walHead = (s.walHead + 1) % len(s.wal)
		s.walN--
		s.walEvicted++
		s.walDropped.Add(1)
	}
	idx := (s.walHead + s.walN) % len(s.wal)
	s.wal[idx] = walEntry{op: msg.op, customer: msg.customer, at: msg.at, flows: msg.flows, atype: msg.atype}
	s.walN++
}

// snapshotShard serializes the shard's monitor and publishes it as the
// new recovery basis, re-basing the WAL. Runs on the shard goroutine.
func (e *Engine) snapshotShard(s *shard) {
	var buf bytes.Buffer
	if err := s.mon.Checkpoint(&buf); err != nil {
		// Keep the previous snapshot; the WAL keeps extending the old basis.
		return
	}
	s.publishSnapshot(buf.Bytes())
}

// publishSnapshot installs data (a complete version-1 Monitor blob the
// caller will not mutate) as the shard's recovery basis and clears the
// WAL: everything in the snapshot no longer needs replaying.
func (s *shard) publishSnapshot(data []byte) {
	s.snap.Store(&shardSnapshot{data: data, at: time.Now()})
	s.lastSnap = time.Now()
	s.walHead, s.walN, s.walEvicted = 0, 0, 0
	s.snapshots.Add(1)
}

// recoverShard rebuilds the shard's monitor after a panic: last snapshot
// restored, then the WAL replayed in arrival order (per-customer order is
// preserved — the ring is the shard's processing order). Alerts raised by
// replayed steps were delivered before the crash and are discarded. If
// the rebuild itself fails the shard cold-restarts with a fresh monitor
// rather than dying; only an invalid MonitorConfig (impossible after New
// succeeded) is terminal.
func (e *Engine) recoverShard(s *shard) bool {
	start := time.Now()
	mon, replayed, ok := e.rebuildMonitor(s)
	lost := s.walEvicted
	if !ok {
		fresh, err := NewMonitor(e.cfg.Monitor)
		if err != nil {
			e.cfg.Flight.Record("restart", "shard %d dead: monitor rebuild failed", s.id)
			return false
		}
		mon, replayed = fresh, 0
		lost += uint64(s.walN) // the un-replayed log is lost with the state
	}
	s.mon = mon
	s.walReplayed.Add(uint64(replayed))
	s.lost.Add(lost)
	s.restarts.Add(1)
	s.channels.Store(int64(s.mon.Channels()))
	e.snapshotShard(s) // new basis: a second panic must not double-replay
	el := time.Since(start)
	s.recoveryNanos.Add(uint64(el))
	if e.mx != nil {
		e.mx.recoveryLatency.Observe(el)
	}
	e.cfg.Flight.Record("restart", "shard %d recovered in %v: replayed %d, lost %d", s.id, el, replayed, lost)
	return true
}

// rebuildMonitor reconstructs snapshot+WAL state, guarding against the
// recovery path itself panicking (e.g. a torn snapshot).
func (e *Engine) rebuildMonitor(s *shard) (mon *Monitor, replayed int, ok bool) {
	defer func() {
		if recover() != nil {
			mon, replayed, ok = nil, 0, false
		}
	}()
	mon, err := NewMonitor(e.cfg.Monitor)
	if err != nil {
		return nil, 0, false
	}
	if snap := s.snap.Load(); snap != nil && len(snap.data) > 0 {
		if err := mon.Restore(bytes.NewReader(snap.data)); err != nil {
			return nil, 0, false
		}
	}
	for i := 0; i < s.walN; i++ {
		en := &s.wal[(s.walHead+i)%len(s.wal)]
		switch en.op {
		case opStep:
			mon.ObserveStep(en.customer, en.at, en.flows)
		case opMissing:
			mon.ObserveMissing(en.customer, en.at)
		case opEnd:
			mon.EndMitigation(en.customer, en.atype)
		}
		replayed++
	}
	return mon, replayed, true
}

// InjectFault enqueues a poison message that panics inside the target
// shard's processing loop — deterministic chaos for supervision tests and
// the soak harness. The supervisor treats it like any organic panic.
func (e *Engine) InjectFault(shard int) error {
	if shard < 0 || shard >= len(e.shards) {
		return fmt.Errorf("xatu: no shard %d", shard)
	}
	if e.closed() {
		return ErrClosed
	}
	s := e.shards[shard]
	select {
	case s.mail <- message{op: opInject}:
		return nil
	case <-s.deadCh:
		return fmt.Errorf("%w (shard %d)", ErrShardDead, shard)
	case <-e.done:
		return ErrClosed
	}
}

func (s *shard) setLastPanic(r any) {
	s.panicMu.Lock()
	s.lastPanic = fmt.Sprintf("%v", r)
	s.panicMu.Unlock()
}

func (s *shard) panicDetail() string {
	s.panicMu.Lock()
	defer s.panicMu.Unlock()
	if s.lastPanic == "" {
		return "no panic recorded"
	}
	return s.lastPanic
}

// --- CDetOnly fallback ---

// fallbackDetector lazily builds the shard's pass-through CDet detector.
// It is fed every step even while Healthy (a cheap signature-match pass)
// so its EWMA baselines are warm the moment the engine degrades.
func (s *shard) fallbackDetector(e *Engine) *cdet.Detector {
	if s.fb == nil {
		s.fb = cdet.New(*e.cfg.Fallback, e.cfg.Step)
	}
	return s.fb
}

// fallbackStep feeds one step of flows to the CDet fallback. With emit
// set (CDetOnly mode) its alerts are fanned into the alert channel with a
// nil Trace; otherwise the detector only learns. Reports false when the
// engine closed mid-delivery.
func (e *Engine) fallbackStep(s *shard, msg message, emit bool) bool {
	fb := s.fallbackDetector(e)
	var sigs [ddos.NumAttackTypes]ddos.Signature
	for at := ddos.AttackType(0); at < ddos.NumAttackTypes; at++ {
		sigs[at] = ddos.SignatureFor(at, msg.customer)
	}
	var perType [ddos.NumAttackTypes]float64
	for i := range msg.flows {
		for at := range sigs {
			if sigs[at].Matches(msg.flows[i]) {
				perType[at] += float64(msg.flows[i].Bytes)
			}
		}
	}
	alerts := fb.Observe(msg.customer, msg.at, perType)
	if !emit {
		return true
	}
	for _, a := range alerts {
		s.fbAlerts.Add(1)
		if e.mx != nil {
			e.mx.fallbackAlerts.Inc()
		}
		select {
		case e.alerts <- AlertEvent{Customer: msg.customer, At: msg.at, Shard: s.id, Alert: a}:
		case <-e.done:
			return false
		}
	}
	return true
}

// fallbackMissing feeds a zero-traffic step so the fallback's sustain and
// release counters advance through telemetry gaps.
func (e *Engine) fallbackMissing(s *shard, msg message) {
	var zero [ddos.NumAttackTypes]float64
	s.fallbackDetector(e).Observe(msg.customer, msg.at, zero)
}

// --- watchdog and health state machine ---

// healthSignals is one watchdog tick's view of the fleet.
type healthSignals struct {
	worstQueueFrac float64
	avgStep        time.Duration // mean step latency over the last tick window
	stalledShards  int
	deadShards     int
	shedding       bool // ShedOldest policy: queue pressure implies data loss
}

// decideHealth maps one tick's signals to the state the engine should be
// in, most severe condition first.
func decideHealth(cfg *Config, sig healthSignals) (HealthState, string) {
	if sig.shedding && sig.worstQueueFrac >= cdetOnlyQueueFrac {
		return CDetOnly, fmt.Sprintf("mailbox %.0f%% full, telemetry being shed", sig.worstQueueFrac*100)
	}
	if cfg.CDetOnlyStepLatency > 0 && sig.avgStep >= cfg.CDetOnlyStepLatency {
		return CDetOnly, fmt.Sprintf("step latency %v over cdet-only bound %v", sig.avgStep, cfg.CDetOnlyStepLatency)
	}
	if sig.deadShards > 0 {
		return Degraded, fmt.Sprintf("%d shard(s) dead", sig.deadShards)
	}
	if sig.stalledShards > 0 {
		return Degraded, fmt.Sprintf("%d shard(s) stalled", sig.stalledShards)
	}
	if sig.shedding && sig.worstQueueFrac >= degradedQueueFrac {
		return Degraded, fmt.Sprintf("mailbox %.0f%% full", sig.worstQueueFrac*100)
	}
	if cfg.DegradedStepLatency > 0 && sig.avgStep >= cfg.DegradedStepLatency {
		return Degraded, fmt.Sprintf("step latency %v over degraded bound %v", sig.avgStep, cfg.DegradedStepLatency)
	}
	return Healthy, ""
}

// healthLadder carries the debounce/hysteresis counters between ticks.
type healthLadder struct {
	hot  int // consecutive ticks demanding escalation
	calm int // consecutive ticks allowing de-escalation
}

// stepHealth moves the state one rung at a time: up after pressureTicks
// confirming ticks, down after RecoverTicks clean ticks per level. A
// forced state (ForceHealth) freezes the ladder entirely.
func (e *Engine) stepHealth(desired HealthState, cause string, lad *healthLadder) {
	if e.forced.Load() >= 0 {
		lad.hot, lad.calm = 0, 0
		return
	}
	cur := HealthState(e.health.Load())
	switch {
	case desired > cur:
		lad.calm = 0
		lad.hot++
		if lad.hot >= pressureTicks {
			e.setHealth(cur+1, cause)
			lad.hot = 0
		}
	case desired < cur:
		lad.hot = 0
		lad.calm++
		if lad.calm >= e.cfg.RecoverTicks {
			e.setHealth(cur-1, "recovered: pressure cleared")
			lad.calm = 0
		}
	default:
		lad.hot, lad.calm = 0, 0
	}
}

// setHealth installs a new state and records the transition. Every
// transition is a flight-recorder incident: the event is logged and the
// ring dumped, so the run-up to a health change survives ring wrap.
func (e *Engine) setHealth(st HealthState, cause string) {
	old := HealthState(e.health.Swap(int32(st)))
	e.transMu.Lock()
	e.healthCause = cause
	if old != st {
		if len(e.trans) >= maxHealthTransitions {
			e.trans = append(e.trans[:0], e.trans[1:]...)
		}
		e.trans = append(e.trans, HealthTransition{From: old, To: st, Cause: cause, At: time.Now()})
	}
	e.transMu.Unlock()
	if old != st {
		e.cfg.Flight.Record("health", "%s -> %s: %s", old, st, cause)
		e.cfg.Flight.Dump("health:" + st.String())
	}
}

// healthNow is the hot-path state read (one atomic load).
func (e *Engine) healthNow() HealthState { return HealthState(e.health.Load()) }

// HealthState returns the engine's current degradation level.
func (e *Engine) HealthState() HealthState { return e.healthNow() }

// HealthCause returns the reason for the current state ("" while Healthy).
func (e *Engine) HealthCause() string {
	e.transMu.Lock()
	defer e.transMu.Unlock()
	return e.healthCause
}

// Transitions returns the retained health-transition history, oldest
// first (bounded to the most recent 64).
func (e *Engine) Transitions() []HealthTransition {
	e.transMu.Lock()
	defer e.transMu.Unlock()
	out := make([]HealthTransition, len(e.trans))
	copy(out, e.trans)
	return out
}

// ForceHealth pins the health state — operator drills and the soak
// harness's forced-degradation phase. The watchdog keeps observing but
// cannot move the state until AutoHealth.
func (e *Engine) ForceHealth(st HealthState, cause string) {
	if st < Healthy || st > CDetOnly {
		return
	}
	e.forced.Store(int32(st))
	e.setHealth(st, cause)
}

// AutoHealth returns state control to the watchdog; the current state is
// kept and recovers through the normal hysteresis.
func (e *Engine) AutoHealth() { e.forced.Store(-1) }

// watchdog ticks stall detection and the health state machine until the
// engine closes.
func (e *Engine) watchdog(tick time.Duration) {
	defer e.wg.Done()
	t := time.NewTicker(tick)
	defer t.Stop()
	n := len(e.shards)
	w := &watchdogState{
		lastHandled:  make([]uint64, n),
		lastProgress: make([]time.Time, n),
	}
	now := time.Now()
	for i := range w.lastProgress {
		w.lastProgress[i] = now
	}
	for {
		select {
		case <-e.done:
			return
		case <-t.C:
			sig := e.collectSignals(w)
			desired, cause := decideHealth(&e.cfg, sig)
			e.stepHealth(desired, cause, &w.ladder)
		}
	}
}

// watchdogState is the watchdog goroutine's private bookkeeping.
type watchdogState struct {
	lastHandled  []uint64
	lastProgress []time.Time
	lastSteps    uint64
	lastNanos    uint64
	lastShed     uint64
	ladder       healthLadder
}

// collectSignals snapshots the fleet for one tick: stall detection per
// shard (queued work but no completed message for StallAfter), worst
// mailbox fullness, and the mean step latency over the tick window.
func (e *Engine) collectSignals(w *watchdogState) healthSignals {
	now := time.Now()
	sig := healthSignals{shedding: e.cfg.Policy == ShedOldest}
	var steps, nanos, shed uint64
	for i, s := range e.shards {
		if s.dead.Load() {
			sig.deadShards++
			continue
		}
		h := s.handled.Load()
		if h != w.lastHandled[i] || len(s.mail) == 0 {
			w.lastHandled[i] = h
			w.lastProgress[i] = now
			s.stalled.Store(false)
		} else if now.Sub(w.lastProgress[i]) >= e.cfg.StallAfter {
			s.stalled.Store(true)
			sig.stalledShards++
		}
		if c := cap(s.mail); c > 0 {
			if f := float64(len(s.mail)) / float64(c); f > sig.worstQueueFrac {
				sig.worstQueueFrac = f
			}
		}
		steps += s.steps.Load()
		nanos += s.stepNanos.Load()
		shed += s.shed.Load()
	}
	if ds := steps - w.lastSteps; ds > 0 {
		sig.avgStep = time.Duration((nanos - w.lastNanos) / ds)
	}
	if d := shed - w.lastShed; d > 0 {
		// A shed burst is a flight event, not a health transition: the
		// ladder reacts to queue pressure separately; the recorder keeps
		// the evidence of *when* load was dropped.
		e.cfg.Flight.Record("shed", "%d telemetry messages shed this tick", d)
	}
	w.lastSteps, w.lastNanos, w.lastShed = steps, nanos, shed
	return sig
}
