package blocklist

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"time"
)

func TestLoadTextBasic(t *testing.T) {
	input := `
# comment line
bot,11.22.33.44,2019-04-01T00:00:00Z
ddos-source,45.1.2.0/24,2019-04-20T12:00:00Z,720h

scanner,66.1.0.0/22,2019-04-10T00:00:00Z
`
	reg := NewRegistry()
	n, err := LoadText(strings.NewReader(input), reg)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1+1+4 {
		t.Fatalf("entries = %d, want 6", n)
	}
	at := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	if !reg.ListedAt(Bot, netip.MustParseAddr("11.22.33.200"), at) {
		t.Fatal("single address must aggregate to its /24")
	}
	if !reg.ListedAt(DDoSSource, netip.MustParseAddr("45.1.2.9"), at) {
		t.Fatal("/24 prefix entry missing")
	}
	// /22 expands into 4 /24s.
	for _, s := range []string{"66.1.0.1", "66.1.1.1", "66.1.2.1", "66.1.3.1"} {
		if !reg.ListedAt(Scanner, netip.MustParseAddr(s), at) {
			t.Fatalf("/22 expansion missing %s", s)
		}
	}
	if reg.ListedAt(Scanner, netip.MustParseAddr("66.1.4.1"), at) {
		t.Fatal("/22 expansion leaked beyond its range")
	}
	// TTL respected.
	if reg.ListedAt(DDoSSource, netip.MustParseAddr("45.1.2.9"), at.AddDate(0, 3, 0)) {
		t.Fatal("ttl entry must expire")
	}
}

func TestLoadTextErrors(t *testing.T) {
	cases := map[string]string{
		"bad-fields":   "bot,1.2.3.4",
		"bad-category": "nope,1.2.3.4,2019-04-01T00:00:00Z",
		"bad-time":     "bot,1.2.3.4,yesterday",
		"bad-ttl":      "bot,1.2.3.4,2019-04-01T00:00:00Z,forever",
		"bad-addr":     "bot,notanip,2019-04-01T00:00:00Z",
		"bad-prefix":   "bot,1.2.3.4/99,2019-04-01T00:00:00Z",
		"ipv6-prefix":  "bot,2001:db8::/32,2019-04-01T00:00:00Z",
		"too-broad":    "bot,10.0.0.0/8,2019-04-01T00:00:00Z",
		"five-fields":  "bot,1.2.3.4,2019-04-01T00:00:00Z,1h,extra",
	}
	for name, line := range cases {
		reg := NewRegistry()
		if _, err := LoadText(strings.NewReader(line), reg); err == nil {
			t.Errorf("%s: expected error for %q", name, line)
		}
	}
}

func TestLoadTextSixteenExpansion(t *testing.T) {
	reg := NewRegistry()
	n, err := LoadText(strings.NewReader("spam-source,100.200.0.0/16,2019-04-01T00:00:00Z"), reg)
	if err != nil {
		t.Fatal(err)
	}
	if n != 256 {
		t.Fatalf("entries = %d, want 256", n)
	}
	at := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	if !reg.ListedAt(SpamSource, netip.MustParseAddr("100.200.255.1"), at) {
		t.Fatal("last /24 of the /16 missing")
	}
}

func TestWriteTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	listed := time.Date(2019, 4, 1, 0, 0, 0, 0, time.UTC)
	r.Add(Bot, netip.MustParseAddr("11.22.33.44"), listed, 0)
	r.Add(DDoSSource, netip.MustParseAddr("45.1.2.3"), listed, 720*time.Hour)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	n, err := LoadText(bytes.NewReader(buf.Bytes()), r2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("entries = %d", n)
	}
	at := listed.Add(time.Hour)
	if !r2.ListedAt(Bot, netip.MustParseAddr("11.22.33.99"), at) {
		t.Fatal("Bot entry lost")
	}
	if !r2.ListedAt(DDoSSource, netip.MustParseAddr("45.1.2.200"), at) {
		t.Fatal("DDoSSource entry lost")
	}
	if r2.ListedAt(DDoSSource, netip.MustParseAddr("45.1.2.200"), listed.Add(721*time.Hour)) {
		t.Fatal("ttl lost in round trip")
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := r.WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("WriteText must be deterministic")
	}
}
