// Package blocklist implements the A1 auxiliary-signal substrate (§5.1):
// a registry of public blocklists grouped into the paper's 11 categories,
// aggregated to /24 subnets ("a standard approach to improve the
// effectiveness of blocklists … due to dynamically managed IP address
// space"). Entries carry listing timestamps so the registry can answer
// "was this source listed at time T", and the registry supports churn
// (additions/expiries) to model frequently updated lists.
package blocklist

import (
	"math/bits"
	"net/netip"
	"sync"
	"time"
)

// Category labels one of the 11 blocklist categories used in the paper's
// A1 breakdown (Appendix E names DDoS-source, bot and scanner as the three
// most prevalent).
type Category int

// The 11 categories. Their relative prevalence in the synthetic world is
// configured by the simulator.
const (
	DDoSSource Category = iota
	Bot
	Scanner
	Reflector
	VoIPAbuse
	CandCServer
	MalwareMirai
	MalwareGafgyt
	BruteForce
	SpamSource
	ExploitScan
	NumCategories // sentinel
)

var categoryNames = [...]string{
	"ddos-source", "bot", "scanner", "reflector", "voip-abuse",
	"cc-server", "malware-mirai", "malware-gafgyt", "brute-force",
	"spam-source", "exploit-scan",
}

// String returns the category slug.
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return "unknown"
	}
	return categoryNames[c]
}

// Subnet24 is the /24 aggregation key for an IPv4 address: the address with
// its last octet zeroed.
func Subnet24(addr netip.Addr) netip.Addr {
	a4 := addr.Unmap().As4()
	a4[3] = 0
	return netip.AddrFrom4(a4)
}

type entry struct {
	listedAt  time.Time
	expiresAt time.Time // zero means never
}

// Registry is a thread-safe blocklist registry. Lookups are by /24 subnet
// and point-in-time, so historical feature extraction sees exactly the
// lists that were live at each minute.
type Registry struct {
	mu   sync.RWMutex
	cats [NumCategories]map[netip.Addr]entry
	// anyCats[key] is the bitmask of categories holding an entry for key.
	// The per-flow AnyListedAt/Categories fast path consults this one map
	// and then only the categories whose bits are set, instead of probing
	// all 11 category maps. Entries only expire by timestamp (never by
	// deletion), so the mask is add-only and stays exact.
	anyCats map[netip.Addr]uint16
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{anyCats: make(map[netip.Addr]uint16)}
	for i := range r.cats {
		r.cats[i] = make(map[netip.Addr]entry)
	}
	return r
}

// Add lists the /24 containing addr under cat starting at listedAt. A zero
// ttl keeps the entry forever; otherwise it expires after ttl.
func (r *Registry) Add(cat Category, addr netip.Addr, listedAt time.Time, ttl time.Duration) {
	if cat < 0 || cat >= NumCategories {
		return
	}
	key := Subnet24(addr)
	e := entry{listedAt: listedAt}
	if ttl > 0 {
		e.expiresAt = listedAt.Add(ttl)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.cats[cat][key]; ok && old.listedAt.Before(listedAt) {
		// Keep the earliest listing time; extend expiry.
		e.listedAt = old.listedAt
		if old.expiresAt.IsZero() || (!e.expiresAt.IsZero() && old.expiresAt.After(e.expiresAt)) {
			e.expiresAt = old.expiresAt
		}
	}
	r.cats[cat][key] = e
	r.anyCats[key] |= 1 << cat
}

// ListedAt reports whether addr's /24 was listed under cat at time t.
func (r *Registry) ListedAt(cat Category, addr netip.Addr, t time.Time) bool {
	if cat < 0 || cat >= NumCategories {
		return false
	}
	key := Subnet24(addr)
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.listedLocked(cat, key, t)
}

// listedLocked is the point-in-time membership test. Caller holds at
// least the read lock.
func (r *Registry) listedLocked(cat Category, key netip.Addr, t time.Time) bool {
	e, ok := r.cats[cat][key]
	if !ok {
		return false
	}
	if t.Before(e.listedAt) {
		return false
	}
	if !e.expiresAt.IsZero() && !t.Before(e.expiresAt) {
		return false
	}
	return true
}

// AnyListedAt reports whether addr's /24 appears on any category at time
// t. It runs on the feature extractor's per-flow hot path, so it takes
// the lock once for all 11 categories rather than once per category.
func (r *Registry) AnyListedAt(addr netip.Addr, t time.Time) bool {
	key := Subnet24(addr)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for mask := r.anyCats[key]; mask != 0; mask &= mask - 1 {
		if r.listedLocked(Category(bits.TrailingZeros16(mask)), key, t) {
			return true
		}
	}
	return false
}

// Categories returns the set of categories addr's /24 is listed under at t.
func (r *Registry) Categories(addr netip.Addr, t time.Time) []Category {
	key := Subnet24(addr)
	var out []Category
	r.mu.RLock()
	defer r.mu.RUnlock()
	for mask := r.anyCats[key]; mask != 0; mask &= mask - 1 {
		c := Category(bits.TrailingZeros16(mask))
		if r.listedLocked(c, key, t) {
			out = append(out, c)
		}
	}
	return out
}

// Size returns the number of listed /24s per category.
func (r *Registry) Size() [NumCategories]int {
	var out [NumCategories]int
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i := range r.cats {
		out[i] = len(r.cats[i])
	}
	return out
}
