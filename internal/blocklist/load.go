package blocklist

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"
	"time"
)

// LoadText reads blocklist entries from r into reg. The format is one entry
// per line:
//
//	category,address-or-cidr,listed-at-RFC3339[,ttl]
//
// e.g.
//
//	bot,11.22.33.0/24,2019-04-01T00:00:00Z,720h
//	ddos-source,45.1.2.3,2019-04-20T12:00:00Z
//
// Blank lines and lines starting with '#' are ignored. CIDR prefixes
// broader than /24 are expanded into their /24 subnets (capped at /16 to
// prevent pathological expansion). Returns the number of /24 entries added.
func LoadText(r io.Reader, reg *Registry) (int, error) {
	sc := bufio.NewScanner(r)
	n := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 3 || len(parts) > 4 {
			return n, fmt.Errorf("blocklist: line %d: want 3 or 4 fields, got %d", lineNo, len(parts))
		}
		cat, ok := categoryBySlug(strings.TrimSpace(parts[0]))
		if !ok {
			return n, fmt.Errorf("blocklist: line %d: unknown category %q", lineNo, parts[0])
		}
		listedAt, err := time.Parse(time.RFC3339, strings.TrimSpace(parts[2]))
		if err != nil {
			return n, fmt.Errorf("blocklist: line %d: bad timestamp: %v", lineNo, err)
		}
		var ttl time.Duration
		if len(parts) == 4 {
			ttl, err = time.ParseDuration(strings.TrimSpace(parts[3]))
			if err != nil {
				return n, fmt.Errorf("blocklist: line %d: bad ttl: %v", lineNo, err)
			}
		}
		target := strings.TrimSpace(parts[1])
		if strings.Contains(target, "/") {
			p, err := netip.ParsePrefix(target)
			if err != nil {
				return n, fmt.Errorf("blocklist: line %d: bad prefix: %v", lineNo, err)
			}
			added, err := addPrefix(reg, cat, p, listedAt, ttl)
			if err != nil {
				return n, fmt.Errorf("blocklist: line %d: %v", lineNo, err)
			}
			n += added
			continue
		}
		addr, err := netip.ParseAddr(target)
		if err != nil {
			return n, fmt.Errorf("blocklist: line %d: bad address: %v", lineNo, err)
		}
		reg.Add(cat, addr, listedAt, ttl)
		n++
	}
	return n, sc.Err()
}

// addPrefix expands a prefix into its /24 subnets.
func addPrefix(reg *Registry, cat Category, p netip.Prefix, listedAt time.Time, ttl time.Duration) (int, error) {
	p = p.Masked()
	if !p.Addr().Unmap().Is4() {
		return 0, fmt.Errorf("only IPv4 prefixes supported, got %v", p)
	}
	if p.Bits() >= 24 {
		reg.Add(cat, p.Addr(), listedAt, ttl)
		return 1, nil
	}
	if p.Bits() < 16 {
		return 0, fmt.Errorf("prefix %v broader than /16 refused", p)
	}
	base := p.Addr().Unmap().As4()
	count := 1 << (24 - p.Bits())
	for i := 0; i < count; i++ {
		a := base
		a[1] = base[1] + byte(i>>8)
		a[2] = base[2] + byte(i&0xFF)
		reg.Add(cat, netip.AddrFrom4(a), listedAt, ttl)
	}
	return count, nil
}

// categoryBySlug resolves a category name.
func categoryBySlug(slug string) (Category, bool) {
	for c := Category(0); c < NumCategories; c++ {
		if c.String() == slug {
			return c, true
		}
	}
	return 0, false
}

// WriteText serializes the registry in LoadText's format, deterministically
// ordered (category, then subnet). Permanent entries omit the ttl field.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	bw := bufio.NewWriter(w)
	for c := Category(0); c < NumCategories; c++ {
		keys := make([]netip.Addr, 0, len(r.cats[c]))
		for k := range r.cats[c] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
		for _, k := range keys {
			e := r.cats[c][k]
			if e.expiresAt.IsZero() {
				fmt.Fprintf(bw, "%s,%s/24,%s\n", c, k, e.listedAt.UTC().Format(time.RFC3339))
			} else {
				fmt.Fprintf(bw, "%s,%s/24,%s,%s\n", c, k,
					e.listedAt.UTC().Format(time.RFC3339), e.expiresAt.Sub(e.listedAt))
			}
		}
	}
	return bw.Flush()
}
