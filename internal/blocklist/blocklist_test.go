package blocklist

import (
	"net/netip"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2019, 4, 24, 0, 0, 0, 0, time.UTC)

func TestSubnet24(t *testing.T) {
	got := Subnet24(netip.MustParseAddr("11.22.33.44"))
	if got != netip.MustParseAddr("11.22.33.0") {
		t.Fatalf("got %v", got)
	}
}

func TestAddAndLookupAggregatesTo24(t *testing.T) {
	r := NewRegistry()
	r.Add(Bot, netip.MustParseAddr("11.22.33.44"), t0, 0)
	// Any address in the same /24 must hit.
	if !r.ListedAt(Bot, netip.MustParseAddr("11.22.33.200"), t0.Add(time.Hour)) {
		t.Fatal("same /24 must be listed")
	}
	// Neighboring /24 must not.
	if r.ListedAt(Bot, netip.MustParseAddr("11.22.34.44"), t0.Add(time.Hour)) {
		t.Fatal("different /24 must not be listed")
	}
	// Different category must not.
	if r.ListedAt(Scanner, netip.MustParseAddr("11.22.33.44"), t0.Add(time.Hour)) {
		t.Fatal("different category must not be listed")
	}
}

func TestListedAtRespectsListingTime(t *testing.T) {
	r := NewRegistry()
	r.Add(DDoSSource, netip.MustParseAddr("45.1.1.1"), t0, 0)
	if r.ListedAt(DDoSSource, netip.MustParseAddr("45.1.1.1"), t0.Add(-time.Minute)) {
		t.Fatal("must not be listed before listing time")
	}
	if !r.ListedAt(DDoSSource, netip.MustParseAddr("45.1.1.1"), t0) {
		t.Fatal("must be listed exactly at listing time")
	}
}

func TestExpiry(t *testing.T) {
	r := NewRegistry()
	r.Add(Scanner, netip.MustParseAddr("45.1.1.1"), t0, 24*time.Hour)
	if !r.ListedAt(Scanner, netip.MustParseAddr("45.1.1.1"), t0.Add(23*time.Hour)) {
		t.Fatal("must still be listed inside ttl")
	}
	if r.ListedAt(Scanner, netip.MustParseAddr("45.1.1.1"), t0.Add(24*time.Hour)) {
		t.Fatal("must expire after ttl")
	}
}

func TestReAddKeepsEarliestListingExtendsExpiry(t *testing.T) {
	r := NewRegistry()
	addr := netip.MustParseAddr("45.2.2.2")
	r.Add(Bot, addr, t0, 10*time.Hour)
	r.Add(Bot, addr, t0.Add(5*time.Hour), 10*time.Hour) // extends to t0+15h
	if !r.ListedAt(Bot, addr, t0.Add(time.Hour)) {
		t.Fatal("earliest listing time must be preserved")
	}
	if !r.ListedAt(Bot, addr, t0.Add(14*time.Hour)) {
		t.Fatal("expiry must be extended by re-add")
	}
	if r.ListedAt(Bot, addr, t0.Add(16*time.Hour)) {
		t.Fatal("must expire after extended ttl")
	}
}

func TestReAddPermanentWins(t *testing.T) {
	r := NewRegistry()
	addr := netip.MustParseAddr("45.3.3.3")
	r.Add(Bot, addr, t0, time.Hour)
	r.Add(Bot, addr, t0.Add(30*time.Minute), 0) // permanent
	if !r.ListedAt(Bot, addr, t0.Add(1000*time.Hour)) {
		t.Fatal("permanent re-add must remove expiry")
	}
}

func TestAnyListedAtAndCategories(t *testing.T) {
	r := NewRegistry()
	addr := netip.MustParseAddr("66.1.2.3")
	r.Add(Bot, addr, t0, 0)
	r.Add(Reflector, addr, t0, 0)
	if !r.AnyListedAt(addr, t0) {
		t.Fatal("AnyListedAt must see the entry")
	}
	cats := r.Categories(addr, t0)
	if len(cats) != 2 || cats[0] != Bot || cats[1] != Reflector {
		t.Fatalf("Categories = %v", cats)
	}
	if r.AnyListedAt(netip.MustParseAddr("67.1.2.3"), t0) {
		t.Fatal("unlisted address must not match")
	}
}

func TestInvalidCategoryIgnored(t *testing.T) {
	r := NewRegistry()
	r.Add(Category(-1), netip.MustParseAddr("1.1.1.1"), t0, 0)
	r.Add(NumCategories, netip.MustParseAddr("1.1.1.1"), t0, 0)
	if r.ListedAt(Category(-1), netip.MustParseAddr("1.1.1.1"), t0) {
		t.Fatal("invalid category must never match")
	}
	for _, n := range r.Size() {
		if n != 0 {
			t.Fatal("invalid adds must not be stored")
		}
	}
}

func TestCategoryString(t *testing.T) {
	if DDoSSource.String() != "ddos-source" || Bot.String() != "bot" {
		t.Fatal("category slugs wrong")
	}
	if Category(99).String() != "unknown" {
		t.Fatal("out-of-range must be unknown")
	}
	if int(NumCategories) != 11 {
		t.Fatalf("paper specifies 11 categories, have %d", NumCategories)
	}
	if len(categoryNames) != int(NumCategories) {
		t.Fatal("every category needs a name")
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				addr := netip.AddrFrom4([4]byte{11, byte(g), byte(i), 1})
				r.Add(Category(i%int(NumCategories)), addr, t0, 0)
				r.AnyListedAt(addr, t0)
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range r.Size() {
		total += n
	}
	if total == 0 {
		t.Fatal("concurrent adds lost")
	}
}
