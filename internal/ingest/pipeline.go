// Package ingest is Xatu's parallel, allocation-lean ingest pipeline: raw
// NetFlow v5 datagrams in, per-customer step batches (and optionally
// feature vectors) out.
//
//	packet ──hash(src)──▶ decode worker ──hash(dst)──▶ agg worker ──▶ sink
//	          (× M: DecodeV5Into + seq tracking)   (× N: Aggregator + ExtractInto)
//
// Two partitioning hashes carry the ordering guarantees end to end:
// packets are routed to decode workers by a stable hash of their source,
// so each exporter's datagrams stay in order and sequence accounting
// (duplicate/reorder/loss) runs lock-free on one goroutine; decoded
// records are routed to aggregation workers by engine.ShardOf of their
// destination, so each protected customer's steps are built, sealed, and
// emitted by exactly one goroutine, in step order — the same per-customer
// serialization the engine's shards rely on.
//
// The steady state allocates nothing: packet buffers, record chunks, and
// sealed-batch storage all cycle through free-lists, and feature vectors
// are extracted into per-worker reused buffers. Records within a sealed
// (customer, step) bucket are canonically sorted before extraction, so the
// emitted feature-vector sequence is bit-identical regardless of worker
// count (float accumulation order is fixed even though chunk interleaving
// across workers is not).
package ingest

import (
	"errors"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/xatu-go/xatu/internal/engine"
	"github.com/xatu-go/xatu/internal/features"
	"github.com/xatu-go/xatu/internal/netflow"
	"github.com/xatu-go/xatu/internal/telemetry"
	"github.com/xatu-go/xatu/internal/trace"
)

// StepFunc consumes one sealed (customer, step) bucket. feat is the
// extracted 273-vector when the pipeline has an Extractor, nil otherwise.
// feat and flows are valid only for the duration of the call — their
// storage is recycled afterwards — so a retaining sink must copy.
type StepFunc func(customer netip.Addr, at time.Time, feat []float64, flows []netflow.Record)

// Submitter is the engine-shaped step sink: one sealed (customer, step)
// bucket per call, with ownership of the record slice transferring to the
// callee (the pipeline recycles only the batch shell). *engine.Engine
// satisfies it; cluster nodes implement it to route steps by ownership
// table before they reach a local engine.
type Submitter interface {
	Submit(customer netip.Addr, at time.Time, flows []netflow.Record) error
}

// Config assembles a Pipeline. Exactly one sink must be set: OnStep
// (optionally with an Extractor), Engine, or Sink (both of which extract
// downstream).
type Config struct {
	// DecodeWorkers is the number of decode goroutines (M). Zero =
	// GOMAXPROCS.
	DecodeWorkers int
	// AggWorkers is the number of aggregation goroutines (N). Zero =
	// GOMAXPROCS.
	AggWorkers int
	// Step and Lateness configure each worker's netflow.Aggregator. Step
	// zero = one minute.
	Step     time.Duration
	Lateness time.Duration
	// QueueDepth is each worker channel's capacity. Zero = 64. A full
	// queue blocks the producer (backpressure), never sheds.
	QueueDepth int
	// Extractor, when set with OnStep, extracts the feature vector passed
	// to the sink. Must be nil when Engine is set (its monitors extract).
	Extractor *features.Extractor
	// OnStep receives sealed steps. See StepFunc for ownership rules.
	OnStep StepFunc
	// Engine receives sealed steps via Submit. Record slices are handed
	// off to the engine's mailboxes per its contract.
	Engine *engine.Engine
	// Sink receives sealed steps via Submit under the same ownership
	// handoff as Engine, through the Submitter interface instead of a
	// concrete engine.
	Sink Submitter
	// Telemetry, when non-nil, registers the xatu_ingest_* metric
	// families. Nil disables instrumentation at zero hot-path cost.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, records flow-trace events for sampled
	// customers: decode workers pick up the export wall clock from the
	// optional frame trailer, and aggregation workers emit the
	// export→decode→seal chain when a sampled customer's step seals.
	// Nil (tracing off) costs one pointer check per packet and per
	// sealed bucket.
	Trace *trace.Recorder
}

// chunkSize is the record-chunk capacity of the decode→aggregate handoff:
// large enough to amortize channel operations, small enough that idle
// flushes keep latency bounded.
const chunkSize = 256

// packet is one raw datagram routed to a decode worker. buf is pooled.
type packet struct {
	src string
	buf []byte
}

// Stats is a point-in-time snapshot of the pipeline's counters, summed
// across workers.
type Stats struct {
	Packets          uint64 // well-formed datagrams decoded
	BadPackets       uint64 // datagrams that failed to decode
	Records          uint64 // records decoded and routed
	DupPackets       uint64 // duplicate datagrams discarded
	ReorderedPackets uint64 // late datagrams delivered out of order
	LostRecords      uint64 // records missing per v5 sequence accounting
	Steps            uint64 // (customer, step) buckets emitted
	DroppedLate      uint64 // records dropped past the lateness allowance
	PoolHits         uint64 // packet-buffer and chunk free-list hits
	PoolMisses       uint64 // packet-buffer and chunk free-list misses
	AggPoolHits      uint64 // aggregator sealed-storage free-list hits
	AggPoolMisses    uint64 // aggregator sealed-storage free-list misses
}

// Pipeline is the running worker mesh. It implements netflow.PacketSink,
// so chaos pipes and replay transports can feed it directly; Serve adds a
// UDP read loop for real sockets. HandlePacket may be called from any
// number of goroutines. Close drains everything and flushes pending steps.
type Pipeline struct {
	cfg Config

	decodeIn []chan packet
	aggIn    []chan []netflow.Record
	decode   []*decodeWorker
	agg      []*aggWorker

	// Free-lists (not sync.Pool: returning a slice to a sync.Pool boxes a
	// fresh header per Put, defeating the allocation-free steady state).
	pktMu     sync.Mutex
	pktFree   [][]byte
	chunkMu   sync.Mutex
	chunkFree [][]netflow.Record

	poolHits   atomic.Uint64
	poolMisses atomic.Uint64

	// closeMu serializes HandlePacket against Close: sends hold the read
	// side so Close cannot close a channel mid-send.
	closeMu sync.RWMutex
	closed  bool

	wgDecode sync.WaitGroup
	wgAgg    sync.WaitGroup

	decodeHist *telemetry.Histogram
}

// decodeWorker owns the packets of its hashed sources: decode, sequence
// accounting, and partitioning of records by destination shard.
type decodeWorker struct {
	p       *Pipeline
	in      chan packet
	tracker *netflow.SeqTracker
	pending [][]netflow.Record // per-agg-worker partial chunks
	// 256-way direct-mapped cache of the destination→shard hash, indexed
	// by the destination's low byte: the working set of protected
	// customers is small and the hash is hot enough to show in profiles.
	shardDst [256]netip.Addr
	shardIdx [256]int32

	packets    atomic.Uint64
	badPackets atomic.Uint64
	records    atomic.Uint64
	dup        atomic.Uint64
	reordered  atomic.Uint64
	lost       atomic.Uint64
}

// aggWorker owns the customers of its shard: step aggregation, canonical
// in-bucket ordering, feature extraction, and sink delivery.
type aggWorker struct {
	p       *Pipeline
	in      chan []netflow.Record
	agg     *netflow.Aggregator
	featBuf []float64
	scratch features.Scratch

	steps       atomic.Uint64
	droppedLate atomic.Uint64
	poolHits    atomic.Uint64
	poolMisses  atomic.Uint64
}

// New validates cfg, starts the workers, and returns the running pipeline.
func New(cfg Config) (*Pipeline, error) {
	sinks := 0
	for _, set := range []bool{cfg.OnStep != nil, cfg.Engine != nil, cfg.Sink != nil} {
		if set {
			sinks++
		}
	}
	if sinks != 1 {
		return nil, errors.New("ingest: exactly one of OnStep, Engine, and Sink must be set")
	}
	if cfg.OnStep == nil && cfg.Extractor != nil {
		return nil, errors.New("ingest: Extractor must be nil with Engine or Sink (monitors extract internally)")
	}
	if cfg.Engine != nil {
		// One internal path: an Engine is just the concrete Submitter.
		cfg.Sink = cfg.Engine
	}
	if cfg.DecodeWorkers <= 0 {
		cfg.DecodeWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.AggWorkers <= 0 {
		cfg.AggWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	p := &Pipeline{
		cfg:      cfg,
		decodeIn: make([]chan packet, cfg.DecodeWorkers),
		aggIn:    make([]chan []netflow.Record, cfg.AggWorkers),
	}
	for i := range p.aggIn {
		p.aggIn[i] = make(chan []netflow.Record, cfg.QueueDepth)
		w := &aggWorker{p: p, in: p.aggIn[i], agg: netflow.NewAggregator(cfg.Step, cfg.Lateness)}
		p.agg = append(p.agg, w)
		p.wgAgg.Add(1)
		go w.run()
	}
	for i := range p.decodeIn {
		p.decodeIn[i] = make(chan packet, cfg.QueueDepth)
		w := &decodeWorker{
			p:       p,
			in:      p.decodeIn[i],
			tracker: netflow.NewSeqTracker(),
			pending: make([][]netflow.Record, cfg.AggWorkers),
		}
		p.decode = append(p.decode, w)
		p.wgDecode.Add(1)
		go w.run()
	}
	p.registerMetrics(cfg.Telemetry)
	return p, nil
}

// HandlePacket routes one raw datagram from src into the pipeline. The
// packet bytes are copied (the caller may reuse pkt immediately); a full
// decode queue blocks rather than sheds. Packets arriving after Close are
// dropped.
func (p *Pipeline) HandlePacket(src string, pkt []byte) {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return
	}
	buf := p.getPktBuf(len(pkt))
	buf = buf[:len(pkt)]
	copy(buf, pkt)
	p.decodeIn[hashString(src)%uint64(len(p.decodeIn))] <- packet{src: src, buf: buf}
}

// hashString is FNV-1a over a string, allocation-free.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	return h
}

// run is the decode worker loop. The inner select flushes partial
// partition chunks whenever the inbox goes momentarily idle, bounding the
// latency a low-rate destination shard can accumulate behind the
// chunk-fill threshold.
func (w *decodeWorker) run() {
	defer w.p.wgDecode.Done()
	for {
		select {
		case pb, ok := <-w.in:
			if !ok {
				w.flushPending()
				return
			}
			w.handle(pb)
		default:
			w.flushPending()
			pb, ok := <-w.in
			if !ok {
				w.flushPending()
				return
			}
			w.handle(pb)
		}
	}
}

func (w *decodeWorker) handle(pb packet) {
	p := w.p
	var t0 time.Time
	if p.decodeHist != nil {
		t0 = time.Now()
	}
	chunk := p.getChunk()
	h, recs, err := netflow.DecodeV5Into(pb.buf, chunk)
	if err != nil {
		w.badPackets.Add(1)
		p.putChunk(recs)
		p.putPktBuf(pb.buf)
		return
	}
	drop := w.tracker.Track(pb.src, h, len(recs))
	dup, reo, lost := w.tracker.Counters()
	w.dup.Store(dup)
	w.reordered.Store(reo)
	w.lost.Store(lost)
	if drop {
		p.putChunk(recs)
		p.putPktBuf(pb.buf)
		return
	}
	w.packets.Add(1)
	w.records.Add(uint64(len(recs)))
	if tr := p.cfg.Trace; tr != nil {
		// Exporters attach the trailer only to datagrams carrying a
		// sampled customer, so the per-record hash loop below runs on
		// traced packets alone; everything else pays the length+magic
		// probe inside ParseTrailerV1.
		if t, ok := netflow.ParseTrailerV1(pb.buf, len(recs)); ok {
			now := time.Now()
			// Records for one customer arrive in runs, and RecordOrigin
			// is latest-wins, so a repeated Dst needs neither the hash
			// nor the recorder lock again.
			var last netip.Addr
			for i := range recs {
				if d := recs[i].Dst; d != last {
					last = d
					if tr.Sampled(d) {
						tr.RecordOrigin(d, t.T0, now)
					}
				}
			}
		}
	}
	n := len(p.aggIn)
	for i := range recs {
		r := &recs[i]
		var shard int
		if r.Dst.Is4() {
			lo := r.Dst.As4()[3]
			if w.shardDst[lo] == r.Dst {
				shard = int(w.shardIdx[lo])
			} else {
				shard = engine.ShardOf(r.Dst, n)
				w.shardDst[lo], w.shardIdx[lo] = r.Dst, int32(shard)
			}
		} else {
			shard = engine.ShardOf(r.Dst, n)
		}
		dst := w.pending[shard]
		if dst == nil {
			dst = p.getChunk()
		}
		dst = append(dst, *r)
		if len(dst) >= chunkSize {
			p.aggIn[shard] <- dst
			dst = nil
		}
		w.pending[shard] = dst
	}
	p.putChunk(recs)
	p.putPktBuf(pb.buf)
	if p.decodeHist != nil {
		p.decodeHist.Observe(time.Since(t0))
	}
}

// flushPending sends every non-empty partial chunk downstream.
func (w *decodeWorker) flushPending() {
	for shard, dst := range w.pending {
		if len(dst) > 0 {
			w.p.aggIn[shard] <- dst
			w.pending[shard] = nil
		}
	}
}

// run is the aggregation worker loop: drain chunks until the channel
// closes, then flush the aggregator's remaining buckets.
func (w *aggWorker) run() {
	defer w.p.wgAgg.Done()
	for chunk := range w.in {
		w.agg.AddBatch(chunk, w.emit)
		w.p.putChunk(chunk)
		w.droppedLate.Store(w.agg.Dropped())
		hits, misses := w.agg.PoolStats()
		w.poolHits.Store(hits)
		w.poolMisses.Store(misses)
	}
	w.emit(w.agg.Flush())
	w.droppedLate.Store(w.agg.Dropped())
	hits, misses := w.agg.PoolStats()
	w.poolHits.Store(hits)
	w.poolMisses.Store(misses)
}

// emit delivers sealed batches to the sink and recycles their storage. The
// per-bucket canonical sort pins the float accumulation order, making the
// emitted vectors independent of how chunks interleaved across workers.
func (w *aggWorker) emit(sealed []netflow.StepBatch) {
	p := w.p
	for _, b := range sealed {
		for dst, recs := range b.ByDst {
			netflow.SortRecordsCanonical(recs)
			if tr := p.cfg.Trace; tr != nil && tr.Sampled(dst) {
				tr.RecordSeal(dst, b.Start, time.Now())
			}
			var feat []float64
			if p.cfg.Extractor != nil {
				w.featBuf = p.cfg.Extractor.ExtractInto(w.featBuf, &w.scratch, dst, b.Start, recs)
				feat = w.featBuf
			}
			w.steps.Add(1)
			if p.cfg.Sink != nil {
				// Submit hands the record slice to the sink's mailbox;
				// ErrClosed during shutdown races is the only expected error
				// and means the step is dropped with the sink's consent.
				_ = p.cfg.Sink.Submit(dst, b.Start, recs)
			} else {
				p.cfg.OnStep(dst, b.Start, feat, recs)
			}
		}
		if p.cfg.Sink != nil {
			w.agg.RecycleShell(b)
		} else {
			w.agg.Recycle(b)
		}
	}
}

// Close stops the pipeline: it waits for in-flight packets to drain,
// flushes every worker's pending chunks and open aggregation buckets
// through the sink, and returns once all workers have exited. HandlePacket
// calls during and after Close are dropped. Close is idempotent.
func (p *Pipeline) Close() error {
	p.closeMu.Lock()
	if p.closed {
		p.closeMu.Unlock()
		return nil
	}
	p.closed = true
	p.closeMu.Unlock()
	for _, ch := range p.decodeIn {
		close(ch)
	}
	p.wgDecode.Wait()
	for _, ch := range p.aggIn {
		close(ch)
	}
	p.wgAgg.Wait()
	return nil
}

// Stats sums the workers' counters. Safe to call concurrently with a
// running pipeline; totals are monotone but sampled per worker.
func (p *Pipeline) Stats() Stats {
	var s Stats
	for _, w := range p.decode {
		s.Packets += w.packets.Load()
		s.BadPackets += w.badPackets.Load()
		s.Records += w.records.Load()
		s.DupPackets += w.dup.Load()
		s.ReorderedPackets += w.reordered.Load()
		s.LostRecords += w.lost.Load()
	}
	for _, w := range p.agg {
		s.Steps += w.steps.Load()
		s.DroppedLate += w.droppedLate.Load()
		s.AggPoolHits += w.poolHits.Load()
		s.AggPoolMisses += w.poolMisses.Load()
	}
	s.PoolHits = p.poolHits.Load()
	s.PoolMisses = p.poolMisses.Load()
	return s
}

// getPktBuf takes a pooled packet buffer with capacity ≥ n.
func (p *Pipeline) getPktBuf(n int) []byte {
	p.pktMu.Lock()
	for i := len(p.pktFree) - 1; i >= 0; i-- {
		if cap(p.pktFree[i]) >= n {
			b := p.pktFree[i]
			p.pktFree[i] = p.pktFree[len(p.pktFree)-1]
			p.pktFree = p.pktFree[:len(p.pktFree)-1]
			p.pktMu.Unlock()
			p.poolHits.Add(1)
			return b[:0]
		}
	}
	p.pktMu.Unlock()
	p.poolMisses.Add(1)
	if n < 2048 {
		n = 2048 // datagrams are ≤ 1464 bytes; round up so buffers recirculate
	}
	return make([]byte, 0, n)
}

func (p *Pipeline) putPktBuf(b []byte) {
	p.pktMu.Lock()
	p.pktFree = append(p.pktFree, b[:0])
	p.pktMu.Unlock()
}

// getChunk takes a pooled record chunk (used both as decode scratch and as
// the decode→aggregate handoff unit).
func (p *Pipeline) getChunk() []netflow.Record {
	p.chunkMu.Lock()
	if n := len(p.chunkFree); n > 0 {
		b := p.chunkFree[n-1]
		p.chunkFree = p.chunkFree[:n-1]
		p.chunkMu.Unlock()
		p.poolHits.Add(1)
		return b
	}
	p.chunkMu.Unlock()
	p.poolMisses.Add(1)
	return make([]netflow.Record, 0, chunkSize)
}

func (p *Pipeline) putChunk(b []netflow.Record) {
	if cap(b) == 0 {
		return
	}
	p.chunkMu.Lock()
	p.chunkFree = append(p.chunkFree, b[:0])
	p.chunkMu.Unlock()
}
