package ingest

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/features"
	"github.com/xatu-go/xatu/internal/netflow"
)

// benchStream pre-encodes one pass of traffic plus the patch metadata the
// feeding loop needs to replay it indefinitely: each replayed pass bumps
// every packet's header clock by the pass's time span and its flow
// sequence by the source's per-pass record count, so time stays monotone
// and sequence accounting stays clean across passes.
type benchStream struct {
	packets  []srcPacket
	baseSecs []uint32 // header unix_secs as encoded
	baseSeq  []uint32 // header flow_sequence as encoded
	srcIdx   []int
	perPass  []uint32 // records per source per pass
	spanSecs uint32
	records  int // records per pass
}

func buildBenchStream(b *testing.B, nSources, nCustomers, steps int) *benchStream {
	b.Helper()
	packets, _ := buildStream(b, nSources, nCustomers, steps)
	s := &benchStream{packets: packets, spanSecs: uint32(steps * 60)}
	s.perPass = make([]uint32, nSources)
	for _, sp := range packets {
		s.baseSecs = append(s.baseSecs, binary.BigEndian.Uint32(sp.pkt[8:12]))
		s.baseSeq = append(s.baseSeq, binary.BigEndian.Uint32(sp.pkt[16:20]))
		var idx int
		fmt.Sscanf(sp.src, "192.0.2.%d:2055", &idx)
		idx--
		s.srcIdx = append(s.srcIdx, idx)
		n := int(binary.BigEndian.Uint16(sp.pkt[2:4]))
		s.perPass[idx] += uint32(n)
		s.records += n
	}
	return s
}

// feed replays n packets through sink, patching clocks and sequences per
// pass. Patching mutates the shared templates, which is safe because every
// sink copies the packet synchronously.
func (s *benchStream) feed(n int, sink func(src string, pkt []byte)) {
	var epoch, pass uint32
	for i := 0; i < n; i++ {
		j := i % len(s.packets)
		if j == 0 && i > 0 {
			epoch += s.spanSecs
			pass++
		}
		sp := s.packets[j]
		src := s.srcIdx[j]
		binary.BigEndian.PutUint32(sp.pkt[8:12], s.baseSecs[j]+epoch)
		binary.BigEndian.PutUint32(sp.pkt[16:20], s.baseSeq[j]+pass*s.perPass[src])
		sink(sp.src, sp.pkt)
	}
}

// BenchmarkIngestE2E measures end-to-end ingest throughput — raw NetFlow
// v5 packets in, per-(customer, step) feature vectors out — for the legacy
// serial dataflow and the pipeline at increasing fan-out:
//
//   - legacy: the pre-pipeline idiom — allocating per-packet DecodeV5,
//     per-record aggregator adds with no storage recycling, allocating
//     Extract per sealed step, all on one goroutine.
//   - workers=K: the allocation-lean pipeline with K decode and K
//     aggregation workers.
//
// The records/s metric is the comparable throughput number; speedup on a
// single-core host comes from allocation elimination and batching, with
// worker fan-out adding parallel speedup on multi-core hosts.
func BenchmarkIngestE2E(b *testing.B) {
	const (
		nSources   = 4
		nCustomers = 32
		steps      = 30
	)

	b.Run("legacy", func(b *testing.B) {
		s := buildBenchStream(b, nSources, nCustomers, steps)
		ext := testExtractor()
		tracker := netflow.NewSeqTracker()
		agg := netflow.NewAggregator(time.Minute, 2*time.Minute)
		var steps64, records uint64
		observe := func(sealed []netflow.StepBatch) {
			for _, batch := range sealed {
				for dst, recs := range batch.ByDst {
					_ = ext.Extract(dst, batch.Start, recs)
					steps64++
				}
			}
		}
		// The pre-pipeline dataflow is a collector goroutine piping every
		// decoded record through a channel to the consumer loop (see
		// netflow.Collector / cmd/xatu-detect), so the baseline includes
		// that per-record handoff.
		recCh := make(chan netflow.Record, 65536)
		consumerDone := make(chan struct{})
		go func() {
			defer close(consumerDone)
			for r := range recCh {
				observe(agg.Add(r))
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		s.feed(b.N, func(src string, pkt []byte) {
			h, recs, err := netflow.DecodeV5(pkt)
			if err != nil {
				b.Fatal(err)
			}
			if tracker.Track(src, h, len(recs)) {
				return
			}
			records += uint64(len(recs))
			for _, r := range recs {
				recCh <- r
			}
		})
		close(recCh)
		<-consumerDone
		observe(agg.Flush())
		b.StopTimer()
		b.ReportMetric(float64(records)/b.Elapsed().Seconds(), "records/s")
		b.ReportMetric(float64(steps64)/b.Elapsed().Seconds(), "steps/s")
	})

	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := buildBenchStream(b, nSources, nCustomers, steps)
			var steps64 atomic.Uint64
			p, err := New(Config{
				DecodeWorkers: workers,
				AggWorkers:    workers,
				Step:          time.Minute,
				Lateness:      2 * time.Minute,
				Extractor:     testExtractor(),
				OnStep: func(netip.Addr, time.Time, []float64, []netflow.Record) {
					steps64.Add(1)
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			s.feed(b.N, p.HandlePacket)
			if err := p.Close(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			st := p.Stats()
			b.ReportMetric(float64(st.Records)/b.Elapsed().Seconds(), "records/s")
			b.ReportMetric(float64(steps64.Load())/b.Elapsed().Seconds(), "steps/s")
		})
	}
}

// BenchmarkDecodeV5Into pins the allocation-free decode contract where the
// ISSUE's acceptance measures it: steady-state decode into reused storage.
func BenchmarkDecodeV5Into(b *testing.B) {
	s := buildBenchStream(b, 1, 8, 2)
	pkt := s.packets[0].pkt
	recs := make([]netflow.Record, 0, netflow.MaxRecordsPerPacket)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		_, recs, err = netflow.DecodeV5Into(pkt, recs)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregatorAdd pins the allocation-free aggregator hot path:
// warmed free-lists, records added and sealed batches recycled.
func BenchmarkAggregatorAdd(b *testing.B) {
	agg := netflow.NewAggregator(time.Minute, 0)
	dsts := make([]netip.Addr, 16)
	for i := range dsts {
		dsts[i] = netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)})
	}
	base := time.Date(2019, 7, 3, 12, 0, 0, 0, time.UTC)
	rec := netflow.Record{
		Src: netip.AddrFrom4([4]byte{11, 1, 1, 1}), Proto: netflow.ProtoUDP,
		Packets: 10, Bytes: 640,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := base.Add(time.Duration(i/len(dsts)) * 5 * time.Second)
		rec.Dst = dsts[i%len(dsts)]
		rec.Start = at
		rec.End = at.Add(time.Second)
		for _, sealed := range agg.Add(rec) {
			agg.Recycle(sealed)
		}
	}
}

// BenchmarkExtractInto pins the allocation-free extraction hot path with a
// warmed destination buffer and scratch.
func BenchmarkExtractInto(b *testing.B) {
	ext := testExtractor()
	ext.Disable = map[string]bool{"A5": true} // registry graph work allocates; see features tests
	customer := netip.AddrFrom4([4]byte{203, 0, 113, 1})
	flows := make([]netflow.Record, 0, 32)
	for j := 0; j < 32; j++ {
		flows = append(flows, netflow.Record{
			Src: netip.AddrFrom4([4]byte{11, 1, 1, byte(j + 1)}), Dst: customer,
			Proto: netflow.ProtoUDP, SrcPort: uint16(1024 + j), DstPort: 80,
			Packets: 10, Bytes: 6000, Start: t0, End: t0.Add(30 * time.Second),
		})
	}
	var dst []float64
	var scratch features.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ext.ExtractInto(dst, &scratch, customer, t0, flows)
	}
}
