package ingest

import (
	"github.com/xatu-go/xatu/internal/telemetry"
)

// registerMetrics exposes the pipeline on reg as the xatu_ingest_*
// families. All readers sample the same atomics Stats sums, so scrapes
// never touch a worker's hot path; reg may be nil (no instrumentation,
// and the decode-latency clock reads are skipped entirely).
func (p *Pipeline) registerMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	p.decodeHist = reg.Histogram("xatu_ingest_decode_seconds",
		"Per-datagram decode + routing latency in a decode worker.")
	counter := func(get func(Stats) uint64) func() float64 {
		return func() float64 { return float64(get(p.Stats())) }
	}
	reg.CounterFunc("xatu_ingest_packets_total",
		"Well-formed NetFlow v5 datagrams decoded.",
		counter(func(s Stats) uint64 { return s.Packets }))
	reg.CounterFunc("xatu_ingest_bad_packets_total",
		"Datagrams that failed to decode.",
		counter(func(s Stats) uint64 { return s.BadPackets }))
	reg.CounterFunc("xatu_ingest_records_total",
		"Flow records decoded and routed to aggregation workers.",
		counter(func(s Stats) uint64 { return s.Records }))
	reg.CounterFunc("xatu_ingest_dup_packets_total",
		"Duplicate datagrams discarded by sequence tracking.",
		counter(func(s Stats) uint64 { return s.DupPackets }))
	reg.CounterFunc("xatu_ingest_reordered_packets_total",
		"Late datagrams delivered out of order.",
		counter(func(s Stats) uint64 { return s.ReorderedPackets }))
	reg.GaugeFunc("xatu_ingest_lost_records",
		"Records missing per v5 sequence accounting (refunded on late arrival).",
		counter(func(s Stats) uint64 { return s.LostRecords }))
	reg.CounterFunc("xatu_ingest_steps_total",
		"(customer, step) buckets sealed and delivered to the sink.",
		counter(func(s Stats) uint64 { return s.Steps }))
	reg.CounterFunc("xatu_ingest_dropped_late_records_total",
		"Records dropped for arriving past the lateness allowance.",
		counter(func(s Stats) uint64 { return s.DroppedLate }))
	reg.CounterFunc("xatu_ingest_pool_hits_total",
		"Packet-buffer and record-chunk free-list hits.",
		counter(func(s Stats) uint64 { return s.PoolHits }))
	reg.CounterFunc("xatu_ingest_pool_misses_total",
		"Packet-buffer and record-chunk free-list misses (allocations).",
		counter(func(s Stats) uint64 { return s.PoolMisses }))
	reg.CounterFunc("xatu_ingest_agg_pool_hits_total",
		"Aggregator sealed-storage free-list hits, summed across workers.",
		counter(func(s Stats) uint64 { return s.AggPoolHits }))
	reg.CounterFunc("xatu_ingest_agg_pool_misses_total",
		"Aggregator sealed-storage free-list misses, summed across workers.",
		counter(func(s Stats) uint64 { return s.AggPoolMisses }))
	reg.GaugeFunc("xatu_ingest_decode_queue_depth",
		"Packets buffered across decode-worker inboxes (fan-out depth).",
		func() float64 {
			var n int
			for _, ch := range p.decodeIn {
				n += len(ch)
			}
			return float64(n)
		})
	reg.GaugeFunc("xatu_ingest_agg_queue_depth",
		"Record chunks buffered across aggregation-worker inboxes.",
		func() float64 {
			var n int
			for _, ch := range p.aggIn {
				n += len(ch)
			}
			return float64(n)
		})
	reg.GaugeFunc("xatu_ingest_workers",
		"Workers running, by pipeline stage.",
		func() float64 { return float64(len(p.decode)) },
		telemetry.Label{Name: "stage", Value: "decode"})
	reg.GaugeFunc("xatu_ingest_workers",
		"Workers running, by pipeline stage.",
		func() float64 { return float64(len(p.agg)) },
		telemetry.Label{Name: "stage", Value: "aggregate"})
}
