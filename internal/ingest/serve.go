package ingest

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
)

// Serve reads datagrams from pc into the pipeline until ctx is canceled or
// the socket closes, mirroring netflow.Collector.Run: the UDP fast path
// receives without allocating and source names are cached per remote
// address. Serve does not close the pipeline; call Close after Serve
// returns to flush pending steps.
func (p *Pipeline) Serve(ctx context.Context, pc net.PacketConn) error {
	go func() {
		<-ctx.Done()
		pc.Close()
	}()
	buf := make([]byte, 65535)
	names := make(map[netip.AddrPort]string)
	udp, _ := pc.(*net.UDPConn)
	for {
		var (
			n   int
			src string
			err error
		)
		if udp != nil {
			var ap netip.AddrPort
			n, ap, err = udp.ReadFromUDPAddrPort(buf)
			if err == nil {
				var ok bool
				if src, ok = names[ap]; !ok {
					src = ap.String()
					names[ap] = src
				}
			}
		} else {
			var addr net.Addr
			n, addr, err = pc.ReadFrom(buf)
			if err == nil {
				src = addr.String()
			}
		}
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("ingest: reading datagram: %w", err)
		}
		p.HandlePacket(src, buf[:n])
	}
}
