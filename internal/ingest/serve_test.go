package ingest

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/netflow"
)

// TestPipelineServeUDP drives the pipeline over a real UDP socket: the
// datagrams must arrive, decode, and flush through the sink on Close.
func TestPipelineServeUDP(t *testing.T) {
	packets, _ := buildStream(t, 2, 4, 3)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		DecodeWorkers: 2, AggWorkers: 2, Step: time.Minute, Lateness: time.Hour,
		OnStep: func(netip.Addr, time.Time, []float64, []netflow.Record) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- p.Serve(ctx, pc) }()

	// One socket per exporter source: the pipeline identifies exporters by
	// UDP peer address, so distinct sources sharing one conn would collide
	// in sequence space and dedup each other.
	conns := map[string]net.Conn{}
	for _, sp := range packets {
		if conns[sp.src] == nil {
			c, err := net.Dial("udp", pc.LocalAddr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			conns[sp.src] = c
		}
	}
	// UDP may drop even on loopback: resend the stream until every packet
	// has landed — resends of already-delivered datagrams are discarded by
	// sequence tracking, so Packets converges on the distinct count.
	deadline := time.Now().Add(10 * time.Second)
	for p.Stats().Packets < uint64(len(packets)) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d packets arrived", p.Stats().Packets, len(packets))
		}
		for _, sp := range packets {
			if _, err := conns[sp.src].Write(sp.pkt); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Records == 0 || st.Steps == 0 {
		t.Fatalf("nothing flowed end to end: %+v", st)
	}
}
