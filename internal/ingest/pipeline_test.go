package ingest

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/attackhist"
	"github.com/xatu-go/xatu/internal/blocklist"
	"github.com/xatu-go/xatu/internal/core"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/engine"
	"github.com/xatu-go/xatu/internal/features"
	"github.com/xatu-go/xatu/internal/netflow"
)

var t0 = time.Date(2019, 7, 3, 12, 0, 0, 0, time.UTC)

// srcPacket is one raw datagram attributed to an exporter source.
type srcPacket struct {
	src string
	pkt []byte
}

// buildStream encodes a deterministic multi-source, multi-customer flow
// trace into NetFlow v5 packets: sources × steps, each source carrying
// flows for every customer each step, packets of ≤30 records with per-
// source sequence numbers. Whole-second timestamps round-trip the v5
// millisecond clock exactly.
func buildStream(t testing.TB, nSources, nCustomers, steps int) ([]srcPacket, []netip.Addr) {
	t.Helper()
	boot := t0.Add(-time.Hour)
	customers := make([]netip.Addr, nCustomers)
	for i := range customers {
		customers[i] = netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)})
	}
	var out []srcPacket
	seqs := make([]uint32, nSources)
	for s := 0; s < steps; s++ {
		at := t0.Add(time.Duration(s) * time.Minute)
		for src := 0; src < nSources; src++ {
			var recs []netflow.Record
			for ci, c := range customers {
				n := 1 + (s+ci+src)%3
				for j := 0; j < n; j++ {
					recs = append(recs, netflow.Record{
						Src:     netip.AddrFrom4([4]byte{11, byte(src + 1), byte(s%250 + 1), byte(j + 1)}),
						Dst:     c,
						Proto:   netflow.ProtoUDP,
						SrcPort: uint16(1024 + s + j),
						DstPort: 80,
						Packets: uint32(10 + j),
						Bytes:   uint32(6000 + 100*j + 13*ci),
						Start:   at.Add(time.Duration(j) * time.Second),
						End:     at.Add(30 * time.Second),
					})
				}
			}
			name := fmt.Sprintf("192.0.2.%d:2055", src+1)
			for off := 0; off < len(recs); off += netflow.MaxRecordsPerPacket {
				end := off + netflow.MaxRecordsPerPacket
				if end > len(recs) {
					end = len(recs)
				}
				pkt, err := netflow.EncodeV5(recs[off:end], boot, at.Add(time.Minute), seqs[src], 1)
				if err != nil {
					t.Fatal(err)
				}
				seqs[src] += uint32(end - off)
				out = append(out, srcPacket{src: name, pkt: pkt})
			}
		}
	}
	return out, customers
}

func testExtractor() *features.Extractor {
	bl := blocklist.NewRegistry()
	bl.Add(blocklist.Bot, netip.AddrFrom4([4]byte{11, 1, 1, 1}), t0.Add(-24*time.Hour), 0)
	return &features.Extractor{
		Blocklists: bl,
		History:    attackhist.NewRegistry(),
		Geo:        func(netip.Addr) string { return "US" },
		A4Window:   240 * time.Hour,
		A5Window:   24 * time.Hour,
	}
}

// stepSnap is one emitted (customer, step) observation with copied storage.
type stepSnap struct {
	at   time.Time
	feat []float64
}

// runPipeline replays packets through a pipeline with the given worker
// counts and returns each customer's emitted feature-vector sequence.
func runPipeline(t *testing.T, packets []srcPacket, decodeWorkers, aggWorkers int) (map[netip.Addr][]stepSnap, Stats) {
	t.Helper()
	var mu sync.Mutex
	got := map[netip.Addr][]stepSnap{}
	p, err := New(Config{
		DecodeWorkers: decodeWorkers,
		AggWorkers:    aggWorkers,
		Step:          time.Minute,
		Lateness:      time.Hour,
		Extractor:     testExtractor(),
		OnStep: func(customer netip.Addr, at time.Time, feat []float64, flows []netflow.Record) {
			snap := stepSnap{at: at, feat: append([]float64(nil), feat...)}
			mu.Lock()
			got[customer] = append(got[customer], snap)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range packets {
		p.HandlePacket(sp.src, sp.pkt)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return got, p.Stats()
}

// TestPipelineParityAcrossWorkerCounts is the tentpole parity pin: the
// per-customer feature-vector sequence must be bit-identical whether the
// pipeline runs single-threaded or fanned out, because records are
// canonically ordered within each sealed bucket before extraction.
func TestPipelineParityAcrossWorkerCounts(t *testing.T) {
	packets, customers := buildStream(t, 4, 24, 12)
	ref, refStats := runPipeline(t, packets, 1, 1)
	if refStats.Steps == 0 || refStats.Records == 0 {
		t.Fatalf("reference run produced nothing: %+v", refStats)
	}
	if len(ref) != len(customers) {
		t.Fatalf("reference run covered %d customers, want %d", len(ref), len(customers))
	}
	for _, cfg := range [][2]int{{4, 3}, {2, 5}} {
		got, st := runPipeline(t, packets, cfg[0], cfg[1])
		if st.Records != refStats.Records || st.Steps != refStats.Steps {
			t.Fatalf("workers %v: records/steps %d/%d, reference %d/%d",
				cfg, st.Records, st.Steps, refStats.Records, refStats.Steps)
		}
		if st.DroppedLate != 0 {
			t.Fatalf("workers %v: dropped %d records late", cfg, st.DroppedLate)
		}
		for _, c := range customers {
			w, g := ref[c], got[c]
			if len(w) != len(g) {
				t.Fatalf("workers %v: customer %v got %d steps, want %d", cfg, c, len(g), len(w))
			}
			for i := range w {
				if !w[i].at.Equal(g[i].at) {
					t.Fatalf("workers %v: customer %v step %d at %v, want %v", cfg, c, i, g[i].at, w[i].at)
				}
				for j := range w[i].feat {
					if w[i].feat[j] != g[i].feat[j] {
						t.Fatalf("workers %v: customer %v step %d feature %d: %v != %v",
							cfg, c, i, j, g[i].feat[j], w[i].feat[j])
					}
				}
			}
		}
	}
}

// TestPipelineStepOrderPerCustomer pins that each customer's steps emerge
// in ascending step-time order even with maximal fan-out.
func TestPipelineStepOrderPerCustomer(t *testing.T) {
	packets, _ := buildStream(t, 3, 16, 10)
	got, _ := runPipeline(t, packets, 4, 4)
	for c, snaps := range got {
		for i := 1; i < len(snaps); i++ {
			if !snaps[i-1].at.Before(snaps[i].at) {
				t.Fatalf("customer %v: step %d at %v not after %v", c, i, snaps[i].at, snaps[i-1].at)
			}
		}
	}
}

// chaosify applies a deterministic duplicate/reorder schedule to a packet
// stream, preserving per-source decode-worker routing: every 7th packet is
// duplicated, every 5th is swapped with its successor.
func chaosify(packets []srcPacket) []srcPacket {
	out := make([]srcPacket, 0, len(packets)+len(packets)/7+1)
	out = append(out, packets...)
	for i := 0; i+1 < len(out); i++ {
		if i%5 == 0 {
			out[i], out[i+1] = out[i+1], out[i]
		}
	}
	withDups := make([]srcPacket, 0, cap(out))
	for i, sp := range out {
		withDups = append(withDups, sp)
		if i%7 == 0 {
			withDups = append(withDups, sp)
		}
	}
	return withDups
}

type alertKey struct {
	customer netip.Addr
	typ      ddos.AttackType
	at       time.Time
}

func tinyModel(t testing.TB) *core.Model {
	t.Helper()
	cfg := core.DefaultConfig(features.NumFeatures)
	cfg.Hidden = 4
	cfg.PoolShort, cfg.PoolMed, cfg.PoolLong = 1, 2, 4
	cfg.Window = 4
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPipelineChaosAlertParity is the acceptance pin for the engine path:
// a chaotic packet stream (duplicates and reorders) fed through the
// parallel pipeline into a sharded engine must raise the identical alert
// set as the serial path — sequence tracker, one aggregator, one monitor —
// consuming the same packets one at a time.
func TestPipelineChaosAlertParity(t *testing.T) {
	base, _ := buildStream(t, 4, 16, 24)
	packets := chaosify(base)

	model := tinyModel(t)
	ext := testExtractor()
	mkCfg := func() engine.MonitorConfig {
		return engine.MonitorConfig{
			Default:           model,
			Extractor:         ext,
			Threshold:         1.5,
			Types:             []ddos.AttackType{ddos.UDPFlood},
			MitigationTimeout: 10 * time.Minute,
		}
	}

	// Serial reference: per-packet decode + sequence dedup + one
	// aggregator + one monitor, with the same canonical in-bucket order
	// the pipeline applies.
	mon, err := engine.NewMonitor(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := map[alertKey]bool{}
	tracker := netflow.NewSeqTracker()
	agg := netflow.NewAggregator(time.Minute, time.Hour)
	observe := func(sealed []netflow.StepBatch) {
		for _, b := range sealed {
			for dst, recs := range b.ByDst {
				netflow.SortRecordsCanonical(recs)
				for _, a := range mon.ObserveStep(dst, b.Start, recs) {
					want[alertKey{dst, a.Sig.Type, b.Start}] = true
				}
			}
		}
	}
	for _, sp := range packets {
		h, recs, err := netflow.DecodeV5(sp.pkt)
		if err != nil {
			t.Fatal(err)
		}
		if tracker.Track(sp.src, h, len(recs)) {
			continue
		}
		for _, r := range recs {
			observe(agg.Add(r))
		}
	}
	observe(agg.Flush())
	if len(want) == 0 {
		t.Fatal("serial reference raised no alerts; fixture is broken")
	}

	// Parallel path: same packets, pipeline → 3-shard engine.
	eng, err := engine.New(engine.Config{
		Monitor: mkCfg(), Shards: 3, Policy: engine.Block, AlertBuffer: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		DecodeWorkers: 3,
		AggWorkers:    3,
		Step:          time.Minute,
		Lateness:      time.Hour,
		Engine:        eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range packets {
		p.HandlePacket(sp.src, sp.pkt)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	got := map[alertKey]bool{}
	for ev := range eng.Alerts() {
		got[alertKey{ev.Customer, ev.Alert.Sig.Type, ev.At}] = true
	}

	if len(got) != len(want) {
		t.Fatalf("pipeline raised %d alerts, serial path %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("pipeline missing alert %+v", k)
		}
	}
	st := p.Stats()
	if st.DupPackets == 0 {
		t.Fatal("chaos stream contained duplicates but none were counted")
	}
	if st.ReorderedPackets == 0 {
		t.Fatal("chaos stream contained reorders but none were counted")
	}
}

// TestPipelinePoolingBoundsAllocations pins the free-list behavior: pool
// misses (each one an allocation) are bounded by what can be in flight —
// queue capacities — not by traffic volume. A small queue depth keeps the
// in-flight bound tight while the stream is long.
func TestPipelinePoolingBoundsAllocations(t *testing.T) {
	packets, _ := buildStream(t, 4, 24, 60)
	// Short lateness so buckets seal (and their storage recirculates)
	// while the stream is still flowing; the stream's disorder is well
	// under two minutes, so nothing is dropped.
	p, err := New(Config{
		DecodeWorkers: 2, AggWorkers: 2, QueueDepth: 4,
		Step: time.Minute, Lateness: 2 * time.Minute,
		OnStep: func(netip.Addr, time.Time, []float64, []netflow.Record) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range packets {
		p.HandlePacket(sp.src, sp.pkt)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	gets := st.PoolHits + st.PoolMisses
	if gets == 0 {
		t.Fatal("no pool traffic recorded")
	}
	// In-flight ceiling: a packet buffer or chunk per queue slot, per
	// worker in mid-handle, and per pending partition chunk — ~40 with
	// this geometry. Anything near gets (one per packet per stage) means
	// storage is not recirculating.
	if st.PoolMisses > 64 {
		t.Fatalf("pool misses %d of %d gets: pooling is not recirculating", st.PoolMisses, gets)
	}
	if st.AggPoolMisses*10 > st.AggPoolHits+st.AggPoolMisses {
		t.Fatalf("aggregator pool misses %d vs hits %d: sealed storage is not recirculating",
			st.AggPoolMisses, st.AggPoolHits)
	}
}

// TestPipelineDroppedLate pins the Dropped() plumbing end to end: a record
// older than the lateness allowance is counted in Stats, not silently lost.
func TestPipelineDroppedLate(t *testing.T) {
	boot := t0.Add(-time.Hour)
	mk := func(at time.Time, seq uint32) []byte {
		pkt, err := netflow.EncodeV5([]netflow.Record{{
			Src: netip.AddrFrom4([4]byte{11, 1, 1, 1}), Dst: netip.AddrFrom4([4]byte{203, 0, 113, 1}),
			Proto: netflow.ProtoUDP, Packets: 1, Bytes: 100,
			Start: at, End: at.Add(time.Second),
		}}, boot, at.Add(time.Minute), seq, 1)
		if err != nil {
			t.Fatal(err)
		}
		return pkt
	}
	p, err := New(Config{
		DecodeWorkers: 1, AggWorkers: 1, Step: time.Minute, Lateness: 0,
		OnStep: func(netip.Addr, time.Time, []float64, []netflow.Record) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.HandlePacket("192.0.2.1:2055", mk(t0.Add(10*time.Minute), 0))
	p.HandlePacket("192.0.2.1:2055", mk(t0, 1)) // ten minutes late, zero allowance
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.DroppedLate != 1 {
		t.Fatalf("DroppedLate = %d, want 1 (stats: %+v)", st.DroppedLate, st)
	}
}

// TestPipelineBadPackets pins that undecodable datagrams are counted and
// do not wedge the workers.
func TestPipelineBadPackets(t *testing.T) {
	p, err := New(Config{
		DecodeWorkers: 1, AggWorkers: 1,
		OnStep: func(netip.Addr, time.Time, []float64, []netflow.Record) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.HandlePacket("192.0.2.1:2055", []byte{0, 9, 0, 1})
	p.HandlePacket("192.0.2.1:2055", nil)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.BadPackets != 2 || st.Packets != 0 {
		t.Fatalf("stats = %+v, want 2 bad packets", st)
	}
}

func TestPipelineConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no sink must be rejected")
	}
	sink := func(netip.Addr, time.Time, []float64, []netflow.Record) {}
	eng, err := engine.New(engine.Config{Monitor: engine.MonitorConfig{
		Default: tinyModel(t), Extractor: testExtractor(), Threshold: 1.5,
	}, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := New(Config{OnStep: sink, Engine: eng}); err == nil {
		t.Fatal("two sinks must be rejected")
	}
	if _, err := New(Config{Engine: eng, Extractor: testExtractor()}); err == nil {
		t.Fatal("Engine with Extractor must be rejected")
	}
}

// TestPipelineCloseIdempotent pins that double Close and post-Close
// HandlePacket are safe no-ops.
func TestPipelineCloseIdempotent(t *testing.T) {
	packets, _ := buildStream(t, 1, 2, 2)
	p, err := New(Config{
		DecodeWorkers: 1, AggWorkers: 1, Step: time.Minute,
		OnStep: func(netip.Addr, time.Time, []float64, []netflow.Record) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p.HandlePacket(packets[0].src, packets[0].pkt)
	if st := p.Stats(); st.Packets != 0 {
		t.Fatalf("post-Close packet was processed: %+v", st)
	}
}
