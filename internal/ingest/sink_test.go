package ingest

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/netflow"
)

// captureSink is a Submitter that tallies steps and records per customer.
type captureSink struct {
	mu      sync.Mutex
	steps   int
	records map[netip.Addr]int
}

func (s *captureSink) Submit(customer netip.Addr, at time.Time, flows []netflow.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.steps++
	if s.records == nil {
		s.records = make(map[netip.Addr]int)
	}
	s.records[customer] += len(flows)
	return nil
}

// TestPipelineSink pins the Submitter sink path: steps reach the Sink
// with the same per-customer record totals as the stream carried.
func TestPipelineSink(t *testing.T) {
	pkts, customers := buildStream(t, 2, 3, 6)
	sink := &captureSink{}
	p, err := New(Config{DecodeWorkers: 2, AggWorkers: 2, Step: time.Minute, Lateness: time.Hour, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[netip.Addr]int)
	for _, sp := range pkts {
		p.HandlePacket(sp.src, sp.pkt)
		_, recs, err := netflow.DecodeV5(sp.pkt)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			want[r.Dst]++
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.steps == 0 {
		t.Fatal("sink saw no steps")
	}
	for _, c := range customers {
		if sink.records[c] != want[c] {
			t.Errorf("customer %v: sink saw %d records, want %d", c, sink.records[c], want[c])
		}
	}
}

// TestConfigSinkValidation pins that exactly one sink is required and
// that Extractor only composes with OnStep.
func TestConfigSinkValidation(t *testing.T) {
	sink := &captureSink{}
	if _, err := New(Config{}); err == nil {
		t.Error("no sink accepted")
	}
	if _, err := New(Config{Sink: sink, OnStep: func(netip.Addr, time.Time, []float64, []netflow.Record) {}}); err == nil {
		t.Error("two sinks accepted")
	}
	if _, err := New(Config{Sink: sink, Extractor: testExtractor()}); err == nil {
		t.Error("Extractor with Sink accepted")
	}
	p, err := New(Config{Sink: sink})
	if err != nil {
		t.Fatalf("single Sink rejected: %v", err)
	}
	p.Close()
}
