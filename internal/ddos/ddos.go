// Package ddos holds the domain types shared across the repo: attack
// types, severities, detector alerts and their traffic signatures. The six
// attack types are the prevalent ones the paper evaluates (Table 2),
// covering 97.2% of all alerts in its dataset.
package ddos

import (
	"fmt"
	"net/netip"
	"time"

	"github.com/xatu-go/xatu/internal/netflow"
)

// AttackType enumerates the six prevalent DDoS attack types.
type AttackType int

// The attack types from Table 2, in the paper's order.
const (
	UDPFlood AttackType = iota
	TCPACK
	TCPSYN
	TCPRST
	DNSAmp
	ICMPFlood
	NumAttackTypes // sentinel
)

var attackNames = [...]string{"udp-flood", "tcp-ack", "tcp-syn", "tcp-rst", "dns-amp", "icmp-flood"}

// String returns the attack-type slug.
func (a AttackType) String() string {
	if a < 0 || int(a) >= len(attackNames) {
		return "unknown"
	}
	return attackNames[a]
}

// Severity is the coarse attack-severity label used by the A4 feature set
// (low / medium / high per attack type → 18 features).
type Severity int

// Severity levels.
const (
	SeverityLow Severity = iota
	SeverityMedium
	SeverityHigh
	NumSeverities // sentinel
)

// String returns the severity name.
func (s Severity) String() string {
	switch s {
	case SeverityLow:
		return "low"
	case SeverityMedium:
		return "medium"
	case SeverityHigh:
		return "high"
	default:
		return "unknown"
	}
}

// SeverityFromPeakMbps buckets a peak anomalous rate into a severity.
// Thresholds follow the paper's observation that ~75% of attacks peak below
// 21 Mbps: low < 10 Mbps ≤ medium < 50 Mbps ≤ high.
func SeverityFromPeakMbps(peak float64) Severity {
	switch {
	case peak < 10:
		return SeverityLow
	case peak < 50:
		return SeverityMedium
	default:
		return SeverityHigh
	}
}

// Signature is the coarse-grained anomalous-traffic signature a CDet alert
// carries (§2.1): victim destination, transport protocol, and optionally a
// source and/or destination port (0 = wildcard).
type Signature struct {
	Victim  netip.Addr
	Proto   netflow.Proto
	SrcPort uint16
	DstPort uint16
	Type    AttackType
}

// Matches reports whether a flow record matches the signature.
func (s Signature) Matches(r netflow.Record) bool {
	if r.Dst != s.Victim || r.Proto != s.Proto {
		return false
	}
	if s.SrcPort != 0 && r.SrcPort != s.SrcPort {
		return false
	}
	if s.DstPort != 0 && r.DstPort != s.DstPort {
		return false
	}
	// TCP attack types additionally constrain the dominant flag.
	if r.Proto == netflow.ProtoTCP {
		switch s.Type {
		case TCPACK:
			return r.TCPFlags&netflow.FlagACK != 0 && r.TCPFlags&netflow.FlagSYN == 0 && r.TCPFlags&netflow.FlagRST == 0
		case TCPSYN:
			return r.TCPFlags&netflow.FlagSYN != 0 && r.TCPFlags&netflow.FlagACK == 0
		case TCPRST:
			return r.TCPFlags&netflow.FlagRST != 0
		}
	}
	return true
}

// SignatureFor returns the canonical signature for an attack of type at
// against victim, following §2.1's example (e.g. a UDP flood signature
// pins source port 53 when it is DNS-reflection shaped).
func SignatureFor(at AttackType, victim netip.Addr) Signature {
	sig := Signature{Victim: victim, Type: at}
	switch at {
	case UDPFlood:
		sig.Proto = netflow.ProtoUDP
	case DNSAmp:
		sig.Proto = netflow.ProtoUDP
		sig.SrcPort = 53
	case TCPACK, TCPSYN, TCPRST:
		sig.Proto = netflow.ProtoTCP
	case ICMPFlood:
		sig.Proto = netflow.ProtoICMP
	default:
		panic(fmt.Sprintf("ddos: unknown attack type %d", at))
	}
	return sig
}

// Alert is one detection event, from CDet or from Xatu.
type Alert struct {
	Sig        Signature
	DetectedAt time.Time
	// MitigatedAt is when the scrubbing center declared the attack over and
	// traffic diversion stopped.
	MitigatedAt time.Time
	// Source labels the producing system ("netscout", "fastnetmon", "xatu", …).
	Source string
	// Severity is the coarse severity bucket assigned at detection time.
	Severity Severity
}

// Duration returns the mitigation window length.
func (a Alert) Duration() time.Duration { return a.MitigatedAt.Sub(a.DetectedAt) }
