package ddos

import (
	"net/netip"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/netflow"
)

var victim = netip.MustParseAddr("23.1.1.1")

func flow(proto netflow.Proto, srcPort, dstPort uint16, flags uint8) netflow.Record {
	return netflow.Record{
		Src: netip.MustParseAddr("11.2.3.4"), Dst: victim,
		SrcPort: srcPort, DstPort: dstPort, Proto: proto, TCPFlags: flags,
		Packets: 10, Bytes: 640,
	}
}

func TestSignatureForShapes(t *testing.T) {
	cases := []struct {
		at    AttackType
		proto netflow.Proto
		sport uint16
	}{
		{UDPFlood, netflow.ProtoUDP, 0},
		{DNSAmp, netflow.ProtoUDP, 53},
		{TCPACK, netflow.ProtoTCP, 0},
		{TCPSYN, netflow.ProtoTCP, 0},
		{TCPRST, netflow.ProtoTCP, 0},
		{ICMPFlood, netflow.ProtoICMP, 0},
	}
	for _, c := range cases {
		sig := SignatureFor(c.at, victim)
		if sig.Proto != c.proto || sig.SrcPort != c.sport || sig.Victim != victim || sig.Type != c.at {
			t.Errorf("%v: got %+v", c.at, sig)
		}
	}
}

func TestSignatureForPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SignatureFor(NumAttackTypes, victim)
}

func TestSignatureMatchesUDP(t *testing.T) {
	sig := SignatureFor(UDPFlood, victim)
	if !sig.Matches(flow(netflow.ProtoUDP, 1234, 80, 0)) {
		t.Fatal("UDP flood signature must match any UDP flow to the victim")
	}
	if sig.Matches(flow(netflow.ProtoTCP, 1234, 80, netflow.FlagACK)) {
		t.Fatal("must not match TCP")
	}
	other := flow(netflow.ProtoUDP, 1234, 80, 0)
	other.Dst = netip.MustParseAddr("23.9.9.9")
	if sig.Matches(other) {
		t.Fatal("must not match another victim")
	}
}

func TestSignatureMatchesDNSAmp(t *testing.T) {
	sig := SignatureFor(DNSAmp, victim)
	if !sig.Matches(flow(netflow.ProtoUDP, 53, 4444, 0)) {
		t.Fatal("src port 53 UDP must match")
	}
	if sig.Matches(flow(netflow.ProtoUDP, 123, 4444, 0)) {
		t.Fatal("other source ports must not match")
	}
}

func TestSignatureMatchesTCPFlagDiscrimination(t *testing.T) {
	ack := SignatureFor(TCPACK, victim)
	syn := SignatureFor(TCPSYN, victim)
	rst := SignatureFor(TCPRST, victim)

	pureACK := flow(netflow.ProtoTCP, 1, 80, netflow.FlagACK)
	pureSYN := flow(netflow.ProtoTCP, 1, 80, netflow.FlagSYN)
	synACK := flow(netflow.ProtoTCP, 1, 80, netflow.FlagSYN|netflow.FlagACK)
	pureRST := flow(netflow.ProtoTCP, 1, 80, netflow.FlagRST)

	if !ack.Matches(pureACK) || ack.Matches(pureSYN) || ack.Matches(synACK) || ack.Matches(pureRST) {
		t.Fatal("ACK signature flag discrimination wrong")
	}
	if !syn.Matches(pureSYN) || syn.Matches(pureACK) || syn.Matches(synACK) {
		t.Fatal("SYN signature flag discrimination wrong")
	}
	if !rst.Matches(pureRST) || rst.Matches(pureACK) {
		t.Fatal("RST signature flag discrimination wrong")
	}
}

func TestSeverityFromPeakMbps(t *testing.T) {
	cases := []struct {
		mbps float64
		want Severity
	}{{1, SeverityLow}, {9.99, SeverityLow}, {10, SeverityMedium}, {49, SeverityMedium}, {50, SeverityHigh}, {500, SeverityHigh}}
	for _, c := range cases {
		if got := SeverityFromPeakMbps(c.mbps); got != c.want {
			t.Errorf("SeverityFromPeakMbps(%v) = %v, want %v", c.mbps, got, c.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if UDPFlood.String() != "udp-flood" || DNSAmp.String() != "dns-amp" {
		t.Fatal("attack names")
	}
	if AttackType(-1).String() != "unknown" || NumAttackTypes.String() != "unknown" {
		t.Fatal("out-of-range attack names")
	}
	if SeverityHigh.String() != "high" || Severity(9).String() != "unknown" {
		t.Fatal("severity names")
	}
	if int(NumAttackTypes) != 6 {
		t.Fatalf("paper evaluates 6 attack types, have %d", NumAttackTypes)
	}
	if int(NumSeverities) != 3 {
		t.Fatalf("A4 uses 3 severities, have %d", NumSeverities)
	}
}

func TestAlertDuration(t *testing.T) {
	t0 := time.Date(2019, 7, 3, 12, 0, 0, 0, time.UTC)
	a := Alert{DetectedAt: t0, MitigatedAt: t0.Add(15 * time.Minute)}
	if a.Duration() != 15*time.Minute {
		t.Fatalf("Duration = %v", a.Duration())
	}
}
