package eval

import (
	"fmt"
	"math"
	"time"

	"github.com/xatu-go/xatu/internal/core"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/features"
	"github.com/xatu-go/xatu/internal/metrics"
	"github.com/xatu-go/xatu/internal/nn"
)

// MLContext caches the trained systems and episode traces shared by the
// machine-learning experiments (Figs 8–13, 17, 18).
type MLContext struct {
	P      *Pipeline
	Ex     *features.Extractor
	Set    *ExampleSet
	Models *Models

	ValEps, ValNegs   []Episode
	TestEps, TestNegs []Episode
	// TestUnmatched are test-period attacks the labeling CDet missed;
	// negatives under the paper's CDet-as-truth ROC.
	TestUnmatched []Episode

	xatuVal, xatuTest []Trace
	rfVal, rfTest     []Trace
	// traces of the CDet-missed attacks (ROC negatives under CDet truth)
	xatuUnmatched, rfUnmatched []Trace

	savedEvents []savedEvent // evasion-sweep undo log (Fig 13)
}

// NewMLContext trains Xatu and the RF baseline on the pipeline's training
// split and pre-computes validation/test traces for both.
func NewMLContext(p *Pipeline) (*MLContext, error) {
	c := &MLContext{P: p, Ex: p.Extractor(nil, nil)}
	var err error
	c.Set, err = p.BuildExamples(c.Ex, 0, p.TrainEnd, 1)
	if err != nil {
		return nil, err
	}
	c.Models, err = p.TrainXatu(c.Set, nil)
	if err != nil {
		return nil, err
	}
	c.ValEps = p.MatchedEpisodes(p.TrainEnd, p.ValEnd)
	c.ValNegs = p.NegativeEpisodes(2*maxI(1, len(c.ValEps)), p.TrainEnd, p.ValEnd, 2)
	c.TestEps = p.MatchedEpisodes(p.StabEnd, p.Cfg.World.Steps())
	c.TestNegs = p.NegativeEpisodes(maxI(1, len(c.TestEps)), p.StabEnd, p.Cfg.World.Steps(), 3)

	c.TestUnmatched = p.UnmatchedEpisodes(p.StabEnd, p.Cfg.World.Steps())

	c.xatuVal = p.TraceEpisodes(c.Ex, append(append([]Episode{}, c.ValEps...), c.ValNegs...), c.Models.XatuScorer)
	c.xatuTest = p.TraceEpisodes(c.Ex, append(append([]Episode{}, c.TestEps...), c.TestNegs...), c.Models.XatuScorer)
	c.xatuUnmatched = p.TraceEpisodes(c.Ex, c.TestUnmatched, c.Models.XatuScorer)

	rf, err := p.TrainRF(c.Set, 5)
	if err != nil {
		return nil, err
	}
	rfScorer := func(ddos.AttackType) Scorer {
		return RFScorer(rf, p.Cfg.Model.PoolMed, p.Cfg.Model.PoolLong)
	}
	c.rfVal = p.TraceEpisodes(c.Ex, append(append([]Episode{}, c.ValEps...), c.ValNegs...), rfScorer)
	c.rfTest = p.TraceEpisodes(c.Ex, append(append([]Episode{}, c.TestEps...), c.TestNegs...), rfScorer)
	c.rfUnmatched = p.TraceEpisodes(c.Ex, c.TestUnmatched, rfScorer)
	return c, nil
}

// SystemOutcomes is one system's evaluation at one operating point.
type SystemOutcomes struct {
	Name      string
	Threshold float64
	// Attacks holds per-attack outcomes; FPs holds benign-window outcomes.
	Attacks []metrics.AttackOutcome
	FPs     []metrics.AttackOutcome
}

// AllForOverhead merges attack and FP outcomes for overhead accounting.
func (s SystemOutcomes) AllForOverhead() []metrics.AttackOutcome {
	return append(append([]metrics.AttackOutcome{}, s.Attacks...), s.FPs...)
}

// tracedSystem calibrates a traced system at the bound and splits test
// outcomes into attacks and FPs.
func (c *MLContext) tracedSystem(name string, val, test []Trace, bound float64) (SystemOutcomes, error) {
	th, err := c.P.Calibrate(val, bound)
	if err != nil {
		return SystemOutcomes{}, err
	}
	out := SystemOutcomes{Name: name, Threshold: th}
	for i := range test {
		o := c.P.OutcomeAt(&test[i], th)
		if test[i].Ep.EventIdx >= 0 {
			out.Attacks = append(out.Attacks, o)
		} else {
			out.FPs = append(out.FPs, o)
		}
	}
	return out, nil
}

// XatuAt evaluates calibrated Xatu at the overhead bound.
func (c *MLContext) XatuAt(bound float64) (SystemOutcomes, error) {
	return c.tracedSystem("xatu", c.xatuVal, c.xatuTest, bound)
}

// RFAt evaluates the calibrated RF baseline at the overhead bound.
func (c *MLContext) RFAt(bound float64) (SystemOutcomes, error) {
	return c.tracedSystem("rf", c.rfVal, c.rfTest, bound)
}

// CDet evaluates a threshold CDet ("netscout" / "fastnetmon") on the test
// episodes using its own alerts, charging its unmatched (false-positive)
// alerts as extraneous scrubbing.
func (c *MLContext) CDet(name string) SystemOutcomes {
	alerts := c.P.AlertsFor(name)
	return SystemOutcomes{
		Name:    name,
		Attacks: c.P.EvaluateCDetAlerts(alerts, c.TestEps, 0),
		FPs:     c.P.CDetFalsePositives(alerts, c.P.StabEnd, c.P.Cfg.World.Steps()),
	}
}

// missPenalty is the delay assigned to undetected attacks, the paper's
// "no detection until the end of the time series" tail.
func (c *MLContext) missPenalty() time.Duration {
	return time.Duration(c.P.Cfg.Model.Window*c.P.Cfg.Model.PoolShort) * c.P.Cfg.World.Step
}

// summaryRow renders one system's headline metrics.
func (c *MLContext) summaryRow(s SystemOutcomes, label string) []string {
	eff := metrics.Summarize(metrics.EffectivenessSeries(s.Attacks))
	del := metrics.Summarize(metrics.DelaySeries(s.Attacks, c.missPenalty()))
	ov := metrics.Summarize(metrics.CumulativeOverheads(s.AllForOverhead()))
	return []string{
		label, s.Name,
		pct(eff.P10), pct(eff.P50), pct(eff.P90),
		f1(del.P10), f1(del.P50), f1(del.P90),
		pct(nanZero(ov.P25)), pct(nanZero(ov.P50)), pct(nanZero(ov.P75)),
	}
}

func nanZero(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// Fig8OverheadSweep reproduces Figure 8: effectiveness, detection delay and
// realized overhead for NetScout, FastNetMon, RF and Xatu across scrubbing
// overhead bounds. Bounds are expressed at this world's C/A scale (see
// EXPERIMENTS.md on scale).
func Fig8OverheadSweep(c *MLContext, bounds []float64) (*Result, error) {
	res := &Result{
		ID:    "fig8",
		Title: "Effectiveness / delay / overhead vs overhead bound",
		Header: []string{"bound", "system",
			"eff-p10", "eff-p50", "eff-p90",
			"delay-p10", "delay-p50", "delay-p90",
			"ov-p25", "ov-p50", "ov-p75"},
	}
	ns := c.CDet("netscout")
	fnm := c.CDet("fastnetmon")
	for _, b := range bounds {
		xatu, err := c.XatuAt(b)
		if err != nil {
			return nil, err
		}
		rf, err := c.RFAt(b)
		if err != nil {
			return nil, err
		}
		label := pct(b)
		res.Rows = append(res.Rows,
			c.summaryRow(ns, label),
			c.summaryRow(fnm, label),
			c.summaryRow(rf, label),
			c.summaryRow(xatu, label),
		)
	}
	res.Notes = append(res.Notes, "delays in minutes; negative = before anomaly start; undetected attacks take the window-tail penalty")
	return res, nil
}

// maxScore returns the highest finite score of a trace.
func maxScore(t *Trace) float64 {
	best := math.Inf(-1)
	for _, s := range t.Scores {
		if !math.IsInf(s, 0) && s > best {
			best = s
		}
	}
	return best
}

// Fig9ROC reproduces Figure 9: ROC over test windows with CDet alerts as
// ground truth. Negatives are benign windows *plus* attacks the CDet
// missed entirely — "any Xatu detection that does not align with NetScout
// is counted as a false positive" (§6.1). The last column reproduces the
// paper's observation that most of Xatu's false positives are missed
// attacks.
func Fig9ROC(c *MLContext) *Result {
	res := &Result{
		ID:     "fig9",
		Title:  "ROC (CDet labels as ground truth; CDet-missed attacks count as negatives)",
		Header: []string{"system", "AUC", "TPR@FPR10%", "TPR@FPR25%", "FPs-that-are-missed-attacks"},
	}
	for _, sys := range []struct {
		name      string
		test      []Trace
		unmatched []Trace
	}{{"xatu", c.xatuTest, c.xatuUnmatched}, {"rf", c.rfTest, c.rfUnmatched}} {
		var scores []float64
		var labels []bool
		var isMissedAttack []bool
		for i := range sys.test {
			scores = append(scores, maxScore(&sys.test[i]))
			labels = append(labels, sys.test[i].Ep.EventIdx >= 0)
			isMissedAttack = append(isMissedAttack, false)
		}
		for i := range sys.unmatched {
			scores = append(scores, maxScore(&sys.unmatched[i]))
			labels = append(labels, false) // CDet truth says "no attack"
			isMissedAttack = append(isMissedAttack, true)
		}
		roc := metrics.ROC(scores, labels)
		tprAt := func(fpr float64) float64 {
			best := 0.0
			for _, pt := range roc {
				if pt.FPR <= fpr && pt.TPR > best {
					best = pt.TPR
				}
			}
			return best
		}
		// At the median positive score, count which "false positives" are
		// actually CDet-missed attacks.
		var posScores []float64
		for i, l := range labels {
			if l {
				posScores = append(posScores, scores[i])
			}
		}
		th := metrics.Quantile(posScores, 0.5)
		fp, fpMissed := 0, 0
		for i := range scores {
			if !labels[i] && scores[i] >= th {
				fp++
				if isMissedAttack[i] {
					fpMissed++
				}
			}
		}
		missedFrac := "-"
		if fp > 0 {
			missedFrac = fmt.Sprintf("%d/%d (%s)", fpMissed, fp, pct(float64(fpMissed)/float64(fp)))
		}
		res.Rows = append(res.Rows, []string{
			sys.name, f3(metrics.AUC(roc)), pct(tprAt(0.10)), pct(tprAt(0.25)), missedFrac,
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d matched attacks, %d benign windows, %d CDet-missed attacks in the test period",
			len(c.TestEps), len(c.TestNegs), len(c.TestUnmatched)))
	return res
}

// Fig10PerAttackType reproduces Figure 10: per-type effectiveness and delay
// at a fixed overhead bound.
func Fig10PerAttackType(c *MLContext, bound float64) (*Result, error) {
	res := &Result{
		ID:     "fig10",
		Title:  fmt.Sprintf("Per-attack-type effectiveness and median delay (bound %s)", pct(bound)),
		Header: []string{"type", "n", "ns-eff", "fnm-eff", "rf-eff", "xatu-eff", "ns-delay", "xatu-delay"},
	}
	xatu, err := c.XatuAt(bound)
	if err != nil {
		return nil, err
	}
	rf, err := c.RFAt(bound)
	if err != nil {
		return nil, err
	}
	ns := c.CDet("netscout")
	fnm := c.CDet("fastnetmon")
	byType := func(s SystemOutcomes, at ddos.AttackType) []metrics.AttackOutcome {
		var out []metrics.AttackOutcome
		for _, o := range s.Attacks {
			if o.Type == at {
				out = append(out, o)
			}
		}
		return out
	}
	for at := ddos.AttackType(0); at < ddos.NumAttackTypes; at++ {
		nsT, fnmT, rfT, xT := byType(ns, at), byType(fnm, at), byType(rf, at), byType(xatu, at)
		if len(xT) == 0 {
			continue
		}
		med := func(os []metrics.AttackOutcome) string {
			if len(os) == 0 {
				return "-"
			}
			return pct(metrics.Quantile(metrics.EffectivenessSeries(os), 0.5))
		}
		medDelay := func(os []metrics.AttackOutcome) string {
			if len(os) == 0 {
				return "-"
			}
			return f1(metrics.Quantile(metrics.DelaySeries(os, c.missPenalty()), 0.5))
		}
		res.Rows = append(res.Rows, []string{
			at.String(), fmt.Sprintf("%d", len(xT)),
			med(nsT), med(fnmT), med(rfT), med(xT),
			medDelay(nsT), medDelay(xT),
		})
	}
	return res, nil
}

// Fig11Saliency reproduces Figure 11: input-gradient attribution per signal
// group over the hours before a detected attack.
func Fig11Saliency(c *MLContext) (*Result, error) {
	res := &Result{
		ID:     "fig11",
		Title:  "Input-gradient saliency per signal group before an attack",
		Header: []string{"hours-before", "V", "A1", "A2", "A3", "A4", "A5"},
	}
	// Pick the first UDP test episode (the paper's worked example is a UDP
	// flood); fall back to any episode.
	var pick *Episode
	for i := range c.TestEps {
		if c.TestEps[i].Type == ddos.UDPFlood {
			pick = &c.TestEps[i]
			break
		}
	}
	if pick == nil && len(c.TestEps) > 0 {
		pick = &c.TestEps[0]
	}
	if pick == nil {
		res.Notes = append(res.Notes, "no test episodes")
		return res, nil
	}
	model := c.Models.For(pick.Type)
	// Series ending shortly after the anomaly start; detection step is the
	// last window step.
	look := c.P.Cfg.LookbackSteps
	end := pick.AnomStart + 2
	x := c.P.SeriesFor(c.Ex, pick.CustomerIdx, end-look, end)
	f, err := model.Forward(toVecsLocal(x))
	if err != nil {
		return nil, err
	}
	detStep := len(f.Hazards) - 1
	grads, err := model.InputGradients(x, detStep)
	if err != nil {
		return nil, err
	}
	sal := core.GroupSaliency(grads, features.GroupOf)
	// Aggregate |gradient| into hour buckets before the attack.
	stepsPerHour := int(time.Hour / c.P.Cfg.World.Step)
	nHours := look / stepsPerHour
	if nHours > 12 {
		nHours = 12
	}
	groups := []string{"V", "A1", "A2", "A3", "A4", "A5"}
	for h := nHours - 1; h >= 0; h-- {
		lo := len(x) - (h+1)*stepsPerHour
		hi := len(x) - h*stepsPerHour
		if lo < 0 {
			lo = 0
		}
		row := []string{fmt.Sprintf("-%d", h)}
		for _, g := range groups {
			var sum float64
			for t := lo; t < hi; t++ {
				sum += sal[g][t]
			}
			row = append(row, fmt.Sprintf("%.2e", sum))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes, fmt.Sprintf("episode: %v on customer %d", pick.Type, pick.CustomerIdx))
	return res, nil
}

// toVecsLocal views a [][]float64 as []nn.Vec without copying.
func toVecsLocal(x [][]float64) []nn.Vec {
	out := make([]nn.Vec, len(x))
	for i := range x {
		out[i] = nn.Vec(x[i])
	}
	return out
}
