package eval

import (
	"strings"
	"testing"
)

var sharedML *MLContext

func mlContext(t *testing.T) *MLContext {
	t.Helper()
	p := pipeline(t)
	if sharedML != nil {
		return sharedML
	}
	c, err := NewMLContext(p)
	if err != nil {
		t.Fatal(err)
	}
	sharedML = c
	return c
}

func TestDataExperiments(t *testing.T) {
	p := pipeline(t)
	for _, run := range []func(*Pipeline) *Result{
		Fig2Example, Fig3NaiveEarlyDetection, Fig4aAttackerOverlap,
		Fig4bTypeTransitions, Fig15SourceReappearance, Fig16ClusteringGrowth,
		Table2DataSplit,
	} {
		res := run(p)
		if res.ID == "" || len(res.Header) == 0 {
			t.Fatalf("experiment %q produced no table", res.ID)
		}
		if out := res.Render(); !strings.Contains(out, res.ID) {
			t.Fatalf("render missing id: %s", out)
		}
	}
}

func TestTable1Static(t *testing.T) {
	res := Table1Features()
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[6][1] != "273" {
		t.Fatalf("total = %s, want 273", res.Rows[6][1])
	}
}

func TestFig3OverheadGrowsWithEarliness(t *testing.T) {
	p := pipeline(t)
	res := Fig3NaiveEarlyDetection(p)
	// Overall rows: overhead at 15 min early must exceed overhead at 0.
	var ov0, ov15 string
	for _, row := range res.Rows {
		if row[1] == "overall" {
			if row[0] == "0" {
				ov0 = row[3]
			}
			if row[0] == "15" {
				ov15 = row[3]
			}
		}
	}
	if ov0 == "" || ov15 == "" {
		t.Fatalf("missing overall rows: %v", res.Rows)
	}
	if ov0 >= ov15 && ov0 != "0.0%" {
		// String compare is fine for same-width percents; fall back to a
		// sanity check only.
		t.Logf("ov0=%s ov15=%s", ov0, ov15)
	}
}

func TestFig4bSameTypeDominates(t *testing.T) {
	p := pipeline(t)
	res := Fig4bTypeTransitions(p)
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "same-type") {
		t.Fatal("missing same-type note")
	}
}

func TestMLExperimentsSmoke(t *testing.T) {
	c := mlContext(t)
	if _, err := Fig8OverheadSweep(c, []float64{0.1, 0.4}); err != nil {
		t.Fatal(err)
	}
	roc := Fig9ROC(c)
	if len(roc.Rows) != 2 {
		t.Fatalf("ROC rows = %d", len(roc.Rows))
	}
	if _, err := Fig10PerAttackType(c, 0.4); err != nil {
		t.Fatal(err)
	}
	sal, err := Fig11Saliency(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(sal.Rows) == 0 {
		t.Fatal("saliency produced no rows")
	}
}

func TestFig9XatuAUCReasonable(t *testing.T) {
	c := mlContext(t)
	res := Fig9ROC(c)
	// Parse the AUC cell for xatu.
	var auc string
	for _, row := range res.Rows {
		if row[0] == "xatu" {
			auc = row[1]
		}
	}
	if auc == "" {
		t.Fatal("no xatu row")
	}
	if auc < "0.5" { // lexicographic works for 0.xxx fixed format
		t.Fatalf("xatu AUC %s below chance", auc)
	}
}

func TestRunVariantNoAux(t *testing.T) {
	c := mlContext(t)
	s, err := c.RunVariant(NoAuxVariant(), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Attacks) != len(c.TestEps) {
		t.Fatalf("attack outcomes = %d, want %d", len(s.Attacks), len(c.TestEps))
	}
}

func TestMutateRestoreTestEvents(t *testing.T) {
	c := mlContext(t)
	ep := c.TestEps[0]
	before := c.P.World.Events[ep.EventIdx].DR
	c.mutateTestEvents(func(ev *eventMut) { ev.DR = 99 })
	if c.P.World.Events[ep.EventIdx].DR != 99 {
		t.Fatal("mutation not applied")
	}
	c.restoreTestEvents()
	if c.P.World.Events[ep.EventIdx].DR != before {
		t.Fatal("restore failed")
	}
}

func TestCDetSystemsDiffer(t *testing.T) {
	c := mlContext(t)
	ns := c.CDet("netscout")
	fnm := c.CDet("fastnetmon")
	if len(ns.Attacks) == 0 || len(fnm.Attacks) == 0 {
		t.Fatal("CDet systems produced no outcomes")
	}
}

func TestAutoRegressiveEvaluate(t *testing.T) {
	c := mlContext(t)
	base, err := c.XatuAt(0.4)
	if err != nil {
		t.Fatal(err)
	}
	outs := c.P.AutoRegressiveEvaluate(c.Models, base.Threshold)
	if len(outs) == 0 {
		t.Fatal("autoregressive evaluation produced no outcomes")
	}
	if len(outs) > len(c.P.MatchedEpisodes(c.P.StabEnd, c.P.Cfg.World.Steps())) {
		t.Fatal("stabilization episodes leaked into the outcomes")
	}
	detected := 0
	for _, o := range outs {
		if o.Detected {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("autoregressive mode never detected anything")
	}
	res, err := ExtAutoRegressive(c, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestExtCusumGroundTruth(t *testing.T) {
	c := mlContext(t)
	res, err := ExtCusumGroundTruth(c, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}
