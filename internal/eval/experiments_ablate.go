package eval

import (
	"fmt"

	"github.com/xatu-go/xatu/internal/blocklist"
	"github.com/xatu-go/xatu/internal/core"
	"github.com/xatu-go/xatu/internal/features"
	"github.com/xatu-go/xatu/internal/metrics"
)

// Variant describes one ablation of the full system.
type Variant struct {
	Name string
	// Disable masks auxiliary signal groups at feature-extraction time.
	Disable map[string]bool
	// BlocklistCategories restricts A1 to given categories (Fig 17).
	BlocklistCategories []blocklist.Category
	// ModCfg rewrites the model configuration (timescales, loss, hidden…).
	ModCfg func(core.Config) core.Config
	// Lookback overrides the example/stream lookback (Fig 18(f)); 0 keeps
	// the pipeline default.
	Lookback int
}

// NoAuxVariant disables every auxiliary signal group (volumetric only).
func NoAuxVariant() Variant {
	return Variant{
		Name:    "V only",
		Disable: map[string]bool{"A1": true, "A2": true, "A3": true, "A4": true, "A5": true},
	}
}

// RunVariant retrains and evaluates one system variant at the given
// overhead bound, returning its test outcomes. The pipeline's cached world
// and labels are reused; only feature extraction, training and tracing
// rerun.
func (c *MLContext) RunVariant(v Variant, bound float64) (SystemOutcomes, error) {
	p := c.P
	if v.Lookback > 0 {
		// Shallow-copy the pipeline with an adjusted lookback; the world,
		// labels and history are shared.
		p2 := *p
		p2.Cfg.LookbackSteps = v.Lookback
		p = &p2
	}
	ex := p.Extractor(v.Disable, nil)
	ex.BlocklistCategories = v.BlocklistCategories
	set, err := p.BuildExamples(ex, 0, p.TrainEnd, 1)
	if err != nil {
		return SystemOutcomes{}, err
	}
	models, err := p.TrainXatu(set, v.ModCfg)
	if err != nil {
		return SystemOutcomes{}, err
	}
	winLen := maxI(p.Cfg.Model.Window*p.Cfg.Model.PoolShort, 10)
	valEps := append(append([]Episode{}, adjustLookback(c.ValEps, p.Cfg.LookbackSteps, winLen)...),
		adjustLookback(c.ValNegs, p.Cfg.LookbackSteps, winLen)...)
	valTraces := p.TraceEpisodes(ex, valEps, models.XatuScorer)
	th, err := p.Calibrate(valTraces, bound)
	if err != nil {
		return SystemOutcomes{}, err
	}
	testEps := append(append([]Episode{}, adjustLookback(c.TestEps, p.Cfg.LookbackSteps, winLen)...),
		adjustLookback(c.TestNegs, p.Cfg.LookbackSteps, winLen)...)
	testTraces := p.TraceEpisodes(ex, testEps, models.XatuScorer)
	out := SystemOutcomes{Name: v.Name, Threshold: th}
	for i := range testTraces {
		o := p.OutcomeAt(&testTraces[i], th)
		if testTraces[i].Ep.EventIdx >= 0 {
			out.Attacks = append(out.Attacks, o)
		} else {
			out.FPs = append(out.FPs, o)
		}
	}
	return out, nil
}

// adjustLookback rewrites episode stream starts for a different lookback:
// attacks anchor on the anomaly start, benign windows on their stream end.
func adjustLookback(eps []Episode, look, winLen int) []Episode {
	out := make([]Episode, len(eps))
	for i, ep := range eps {
		if ep.EventIdx >= 0 {
			ep.StreamStart = ep.AnomStart - look
		} else {
			ep.StreamStart = ep.StreamEnd - winLen - look
		}
		out[i] = ep
	}
	return out
}

// variantRow summarizes one variant's outcomes.
func (c *MLContext) variantRow(s SystemOutcomes) []string {
	eff := metrics.Summarize(metrics.EffectivenessSeries(s.Attacks))
	del := metrics.Summarize(metrics.DelaySeries(s.Attacks, c.missPenalty()))
	return []string{s.Name, pct(eff.P10), pct(eff.P50), pct(eff.P90), f1(del.P50)}
}

var variantHeader = []string{"variant", "eff-p10", "eff-p50", "eff-p90", "delay-p50"}

// Fig12AblationBreakdown reproduces Figure 12: the contribution of each
// auxiliary signal group and of the two ML design choices.
func Fig12AblationBreakdown(c *MLContext, bound float64) (*Result, error) {
	res := &Result{
		ID:     "fig12",
		Title:  fmt.Sprintf("Signal & ML-design contribution (bound %s)", pct(bound)),
		Header: variantHeader,
	}
	all := func(except ...string) map[string]bool {
		m := map[string]bool{"A1": true, "A2": true, "A3": true, "A4": true, "A5": true}
		for _, e := range except {
			delete(m, e)
		}
		return m
	}
	variants := []Variant{
		NoAuxVariant(),
		{Name: "V+A1", Disable: all("A1")},
		{Name: "V+A2", Disable: all("A2")},
		{Name: "V+A3", Disable: all("A3")},
		{Name: "V+A4+A5", Disable: all("A4", "A5")},
		{Name: "full"},
		{Name: "full w/o survival", ModCfg: func(cfg core.Config) core.Config {
			cfg.UseSurvival = false
			return cfg
		}},
		{Name: "full short-LSTM only", ModCfg: func(cfg core.Config) core.Config {
			cfg.UseMed, cfg.UseLong = false, false
			return cfg
		}},
	}
	for _, v := range variants {
		s, err := c.RunVariant(v, bound)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, c.variantRow(s))
	}
	return res, nil
}

// Fig13Robustness reproduces Figure 13: evasion by volume-changing and
// rate-changing (dR) attackers, comparing full Xatu with the no-aux
// ablation. Test events are mutated in place and restored afterwards; CDet
// alerts stay frozen (the paper defines the evasion window so CDet is
// unaffected).
func Fig13Robustness(c *MLContext, bound float64) (*Result, error) {
	res := &Result{
		ID:     "fig13",
		Title:  fmt.Sprintf("Evasion robustness (bound %s)", pct(bound)),
		Header: []string{"evasion", "system", "eff-p50", "eff-p90", "delay-p50"},
	}
	// The traces must be recomputed under mutation, so build both systems
	// (full and no-aux) once with thresholds calibrated on unmutated data.
	exFull := c.Ex
	exNoAux := c.P.Extractor(NoAuxVariant().Disable, nil)
	setNoAux, err := c.P.BuildExamples(exNoAux, 0, c.P.TrainEnd, 1)
	if err != nil {
		return nil, err
	}
	modelsNoAux, err := c.P.TrainXatu(setNoAux, nil)
	if err != nil {
		return nil, err
	}
	valAll := append(append([]Episode{}, c.ValEps...), c.ValNegs...)
	thFull, err := c.P.Calibrate(c.xatuVal, bound)
	if err != nil {
		return nil, err
	}
	noAuxVal := c.P.TraceEpisodes(exNoAux, valAll, modelsNoAux.XatuScorer)
	thNoAux, err := c.P.Calibrate(noAuxVal, bound)
	if err != nil {
		return nil, err
	}

	type system struct {
		name   string
		ex     *features.Extractor
		models *Models
		th     float64
	}
	systems := []system{
		{"xatu", exFull, c.Models, thFull},
		{"xatu-noaux", exNoAux, modelsNoAux, thNoAux},
	}
	evalMutated := func(label string) {
		for _, sys := range systems {
			traces := c.P.TraceEpisodes(sys.ex, c.TestEps, sys.models.XatuScorer)
			outs := c.P.OutcomesAt(traces, sys.th)
			eff := metrics.Summarize(metrics.EffectivenessSeries(outs))
			del := metrics.Quantile(metrics.DelaySeries(outs, c.missPenalty()), 0.5)
			res.Rows = append(res.Rows, []string{
				label, sys.name, pct(eff.P50), pct(eff.P90), f1(del),
			})
		}
	}

	// Volume-changing attackers: scale anomalous volume (and, at 0, the
	// auxiliary prep signals) during the pre-CDet-detection window.
	evadeWindow := c.medianCDetDelaySteps()
	for _, scale := range []float64{1.0, 0.5, 0.25, 0.0} {
		c.mutateTestEvents(func(ev *eventMut) {
			ev.VolumeScale = scale
			ev.VolumeScaleSteps = evadeWindow
		})
		evalMutated(fmt.Sprintf("volume×%.2f", scale))
		c.restoreTestEvents()
	}
	// Rate-changing attackers: override dR.
	for _, dr := range []float64{0.5, 1.5, 2.5} {
		c.mutateTestEvents(func(ev *eventMut) { ev.DR = dr })
		evalMutated(fmt.Sprintf("dR=%.1f", dr))
		c.restoreTestEvents()
	}
	return res, nil
}

// eventMut is the mutable view of an attack event used by evasion sweeps.
type eventMut struct {
	VolumeScale      float64
	VolumeScaleSteps int
	DR               float64
}

type savedEvent struct {
	idx int
	mut eventMut
}

// mutateTestEvents applies f to every test-episode event, saving originals.
func (c *MLContext) mutateTestEvents(f func(*eventMut)) {
	c.savedEvents = c.savedEvents[:0]
	for _, ep := range c.TestEps {
		ev := &c.P.World.Events[ep.EventIdx]
		c.savedEvents = append(c.savedEvents, savedEvent{
			idx: ep.EventIdx,
			mut: eventMut{ev.VolumeScale, ev.VolumeScaleSteps, ev.DR},
		})
		m := eventMut{ev.VolumeScale, ev.VolumeScaleSteps, ev.DR}
		f(&m)
		ev.VolumeScale, ev.VolumeScaleSteps, ev.DR = m.VolumeScale, m.VolumeScaleSteps, m.DR
	}
}

// restoreTestEvents undoes mutateTestEvents.
func (c *MLContext) restoreTestEvents() {
	for _, s := range c.savedEvents {
		ev := &c.P.World.Events[s.idx]
		ev.VolumeScale, ev.VolumeScaleSteps, ev.DR = s.mut.VolumeScale, s.mut.VolumeScaleSteps, s.mut.DR
	}
	c.savedEvents = c.savedEvents[:0]
}

// medianCDetDelaySteps estimates the labeler's median detection delay.
func (c *MLContext) medianCDetDelaySteps() int {
	outs := c.CDet(c.P.Cfg.Labeler)
	d := metrics.Quantile(metrics.DelaySeries(outs.Attacks, c.missPenalty()), 0.5)
	steps := int(d / c.P.Cfg.World.Step.Minutes())
	if steps < 1 {
		steps = 1
	}
	return steps
}

// Fig17BlocklistCategories reproduces Appendix E Figure 17: the per-category
// contribution of the A1 signal. Each variant sees V plus A1 restricted to
// one category group.
func Fig17BlocklistCategories(c *MLContext, bound float64) (*Result, error) {
	res := &Result{
		ID:     "fig17",
		Title:  fmt.Sprintf("A1 per-category contribution (bound %s)", pct(bound)),
		Header: variantHeader,
	}
	onlyA1 := map[string]bool{"A2": true, "A3": true, "A4": true, "A5": true}
	light := []blocklist.Category{
		blocklist.Reflector, blocklist.VoIPAbuse, blocklist.CandCServer,
		blocklist.MalwareMirai, blocklist.MalwareGafgyt, blocklist.BruteForce,
		blocklist.SpamSource, blocklist.ExploitScan,
	}
	variants := []Variant{
		NoAuxVariant(),
		{Name: "A1=ddos-source", Disable: onlyA1, BlocklistCategories: []blocklist.Category{blocklist.DDoSSource}},
		{Name: "A1=bot", Disable: onlyA1, BlocklistCategories: []blocklist.Category{blocklist.Bot}},
		{Name: "A1=scanner", Disable: onlyA1, BlocklistCategories: []blocklist.Category{blocklist.Scanner}},
		{Name: "A1=other-8", Disable: onlyA1, BlocklistCategories: light},
		{Name: "A1=all", Disable: onlyA1},
	}
	for _, v := range variants {
		s, err := c.RunVariant(v, bound)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, c.variantRow(s))
	}
	return res, nil
}

// Fig18LSTMContribution reproduces Figure 18(b): dropping one LSTM at a time.
func Fig18LSTMContribution(c *MLContext, bound float64) (*Result, error) {
	res := &Result{ID: "fig18b", Title: "LSTM branch contribution", Header: variantHeader}
	variants := []Variant{
		{Name: "full"},
		{Name: "w/o LSTMShort", ModCfg: func(cfg core.Config) core.Config { cfg.UseShort = false; return cfg }},
		{Name: "w/o LSTMMed", ModCfg: func(cfg core.Config) core.Config { cfg.UseMed = false; return cfg }},
		{Name: "w/o LSTMLong", ModCfg: func(cfg core.Config) core.Config { cfg.UseLong = false; return cfg }},
	}
	for _, v := range variants {
		s, err := c.RunVariant(v, bound)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, c.variantRow(s))
	}
	return res, nil
}

// Fig18Timescales reproduces Figure 18(c): alternative pooling choices.
func Fig18Timescales(c *MLContext, bound float64, sets [][3]int) (*Result, error) {
	res := &Result{ID: "fig18c", Title: "Timescale (pooling) choice", Header: variantHeader}
	for _, s := range sets {
		s := s
		v := Variant{
			Name: fmt.Sprintf("pool(%d,%d,%d)", s[0], s[1], s[2]),
			ModCfg: func(cfg core.Config) core.Config {
				cfg.PoolShort, cfg.PoolMed, cfg.PoolLong = s[0], s[1], s[2]
				return cfg
			},
		}
		so, err := c.RunVariant(v, bound)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, c.variantRow(so))
	}
	return res, nil
}

// Fig18Survival reproduces Figure 18(d): survival loss vs classification.
func Fig18Survival(c *MLContext, bound float64) (*Result, error) {
	res := &Result{ID: "fig18d", Title: "Survival loss vs classification loss", Header: variantHeader}
	variants := []Variant{
		{Name: "survival (SAFE)"},
		{Name: "classification (BCE)", ModCfg: func(cfg core.Config) core.Config {
			cfg.UseSurvival = false
			return cfg
		}},
	}
	for _, v := range variants {
		s, err := c.RunVariant(v, bound)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, c.variantRow(s))
	}
	return res, nil
}

// Fig18HiddenUnits reproduces Figure 18(e): hidden-width sweep.
func Fig18HiddenUnits(c *MLContext, bound float64, widths []int) (*Result, error) {
	res := &Result{ID: "fig18e", Title: "Hidden units per LSTM", Header: variantHeader}
	for _, h := range widths {
		h := h
		v := Variant{
			Name:   fmt.Sprintf("hidden=%d", h),
			ModCfg: func(cfg core.Config) core.Config { cfg.Hidden = h; return cfg },
		}
		s, err := c.RunVariant(v, bound)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, c.variantRow(s))
	}
	return res, nil
}

// Fig18TimeLength reproduces Figure 18(f): lookback-length sweep.
func Fig18TimeLength(c *MLContext, bound float64, lookbacks []int) (*Result, error) {
	res := &Result{ID: "fig18f", Title: "History (lookback) length", Header: variantHeader}
	for _, l := range lookbacks {
		v := Variant{Name: fmt.Sprintf("lookback=%d steps", l), Lookback: l}
		s, err := c.RunVariant(v, bound)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, c.variantRow(s))
	}
	return res, nil
}

// Fig18CDetIndependence reproduces Figure 18(a): training Xatu on labels
// from a different CDet (FastNetMon) over the same world.
func Fig18CDetIndependence(cfg Config, bound float64) (*Result, error) {
	res := &Result{
		ID:     "fig18a",
		Title:  "Label-source independence: NetScout vs FastNetMon labels",
		Header: []string{"labeler", "cdet-eff-p50", "xatu-eff-p50", "xatu-delay-p50"},
	}
	for _, labeler := range []string{"netscout", "fastnetmon"} {
		c2 := cfg
		c2.Labeler = labeler
		p, err := New(c2)
		if err != nil {
			return nil, err
		}
		ml, err := NewMLContext(p)
		if err != nil {
			return nil, err
		}
		xatu, err := ml.XatuAt(bound)
		if err != nil {
			return nil, err
		}
		cdetOuts := ml.CDet(labeler)
		res.Rows = append(res.Rows, []string{
			labeler,
			pct(metrics.Quantile(metrics.EffectivenessSeries(cdetOuts.Attacks), 0.5)),
			pct(metrics.Quantile(metrics.EffectivenessSeries(xatu.Attacks), 0.5)),
			f1(metrics.Quantile(metrics.DelaySeries(xatu.Attacks, ml.missPenalty()), 0.5)),
		})
	}
	return res, nil
}
