package eval

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// mkTrace hand-builds a trace for the pipeline's first test episode with a
// score spike at the given offsets (relative to StreamStart).
func mkTrace(ep Episode, spikes map[int]float64) Trace {
	n := ep.StreamEnd - ep.StreamStart
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = 0.01
	}
	for off, v := range spikes {
		if off >= 0 && off < n {
			scores[off] = v
		}
	}
	return Trace{Ep: ep, Scores: scores, ScoreStart: ep.StreamStart}
}

func firstTestEpisode(t *testing.T) (*Pipeline, Episode) {
	p := pipeline(t)
	eps := p.MatchedEpisodes(p.StabEnd, p.Cfg.World.Steps())
	if len(eps) == 0 {
		t.Skip("no test episodes")
	}
	return p, eps[0]
}

func TestOutcomeUndetected(t *testing.T) {
	p, ep := firstTestEpisode(t)
	tr := mkTrace(ep, nil)
	o := p.OutcomeAt(&tr, 0.5)
	if o.Detected {
		t.Fatal("no spike must mean no detection")
	}
	if o.Anomalous <= 0 {
		t.Fatal("anomalous traffic must still be accounted")
	}
	if o.ScrubbedAnomalous != 0 || o.Extraneous != 0 {
		t.Fatal("undetected attack must scrub nothing")
	}
	if o.Effectiveness() != 0 {
		t.Fatal("undetected effectiveness must be 0")
	}
}

func TestOutcomeDetectionAtOnset(t *testing.T) {
	p, ep := firstTestEpisode(t)
	onsetOff := ep.AnomStart - ep.StreamStart
	tr := mkTrace(ep, map[int]float64{onsetOff: 0.99})
	o := p.OutcomeAt(&tr, 0.5)
	if !o.Detected || o.Delay != 0 {
		t.Fatalf("detection at onset: detected=%v delay=%v", o.Detected, o.Delay)
	}
	if o.Extraneous != 0 {
		t.Fatal("on-time detection must cost nothing extraneous")
	}
	if math.Abs(o.ScrubbedAnomalous-o.Anomalous) > 1e-6 {
		t.Fatalf("on-time detection must scrub everything: %v vs %v", o.ScrubbedAnomalous, o.Anomalous)
	}
	if o.Effectiveness() < 0.999 {
		t.Fatalf("effectiveness = %v", o.Effectiveness())
	}
}

func TestOutcomeEarlyDetectionWithinTimeout(t *testing.T) {
	p, ep := firstTestEpisode(t)
	timeout := p.fpDiversionSteps()
	early := 3
	if early >= timeout {
		early = timeout - 1
	}
	off := ep.AnomStart - ep.StreamStart - early
	tr := mkTrace(ep, map[int]float64{off: 0.99})
	o := p.OutcomeAt(&tr, 0.5)
	if !o.Detected {
		t.Fatal("early detection inside the diversion timeout must stick")
	}
	wantDelay := -time.Duration(early) * p.Cfg.World.Step
	if o.Delay != wantDelay {
		t.Fatalf("delay = %v, want %v", o.Delay, wantDelay)
	}
	if o.Extraneous <= 0 {
		t.Fatal("early detection must pay pre-anomaly extraneous scrubbing")
	}
}

func TestOutcomeTooEarlyDiversionReleasedThenRedetects(t *testing.T) {
	p, ep := firstTestEpisode(t)
	timeout := p.fpDiversionSteps()
	onsetOff := ep.AnomStart - ep.StreamStart
	if onsetOff < timeout+5 {
		t.Skip("episode lookback too short for this scenario")
	}
	// First spike far before the anomaly (diversion wasted), second at onset.
	tr := mkTrace(ep, map[int]float64{
		onsetOff - timeout - 3: 0.99,
		onsetOff:               0.99,
	})
	o := p.OutcomeAt(&tr, 0.5)
	if !o.Detected || o.Delay != 0 {
		t.Fatalf("re-detection at onset expected: detected=%v delay=%v", o.Detected, o.Delay)
	}
	if o.Extraneous <= 0 {
		t.Fatal("the wasted diversion must be charged")
	}
	// The wasted diversion is bounded by the timeout window.
	cap := p.MatchingBytes(ep.CustomerIdx, ep.Type, ep.StreamStart, ep.AnomStart)
	if o.Extraneous > cap {
		t.Fatalf("extraneous %v exceeds all pre-anomaly matching traffic %v", o.Extraneous, cap)
	}
}

func TestOutcomeSpikeDuringWastedDiversionIgnored(t *testing.T) {
	// A crossing *inside* an active wasted diversion must not double-charge:
	// re-alerting only resumes after the diversion releases.
	p, ep := firstTestEpisode(t)
	timeout := p.fpDiversionSteps()
	onsetOff := ep.AnomStart - ep.StreamStart
	if onsetOff < 2*timeout+6 {
		t.Skip("episode lookback too short")
	}
	base := onsetOff - 2*timeout - 4
	tr1 := mkTrace(ep, map[int]float64{base: 0.99, onsetOff: 0.99})
	tr2 := mkTrace(ep, map[int]float64{base: 0.99, base + 2: 0.99, onsetOff: 0.99})
	o1 := p.OutcomeAt(&tr1, 0.5)
	o2 := p.OutcomeAt(&tr2, 0.5)
	if o1.Extraneous != o2.Extraneous {
		t.Fatalf("crossing during active diversion changed the bill: %v vs %v", o1.Extraneous, o2.Extraneous)
	}
}

func TestOutcomeNegativeEpisodeFalsePositive(t *testing.T) {
	p := pipeline(t)
	negs := p.NegativeEpisodes(1, p.StabEnd, p.Cfg.World.Steps(), 9)
	if len(negs) == 0 {
		t.Skip("no negative episode found")
	}
	ep := negs[0]
	tr := mkTrace(ep, map[int]float64{ep.StreamEnd - ep.StreamStart - 5: 0.99})
	o := p.OutcomeAt(&tr, 0.5)
	if !o.Detected || o.Anomalous != 0 {
		t.Fatalf("FP outcome wrong: %+v", o)
	}
	if o.Extraneous <= 0 {
		t.Fatal("false positive must be charged extraneous scrubbing")
	}
	// And silence means a free pass.
	quiet := mkTrace(ep, nil)
	if o2 := p.OutcomeAt(&quiet, 0.5); o2.Detected || o2.Extraneous != 0 {
		t.Fatalf("quiet negative must cost nothing: %+v", o2)
	}
}

func TestCalibrateInfeasibleBoundDegradesGracefully(t *testing.T) {
	p, ep := firstTestEpisode(t)
	// One trace that always fires early: every threshold has overhead.
	off := ep.AnomStart - ep.StreamStart - p.fpDiversionSteps() - 2
	if off < 0 {
		t.Skip("lookback too short")
	}
	traces := []Trace{mkTrace(ep, map[int]float64{off: 0.9, off + 1: 0.8})}
	th, err := p.Calibrate(traces, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(th) || math.IsInf(th, 0) {
		t.Fatalf("threshold must be finite, got %v", th)
	}
}

func TestCDetFalsePositivesCharged(t *testing.T) {
	p := pipeline(t)
	// FastNetMon is less conservative; it should have at least as many
	// unmatched alerts as NetScout over the whole horizon.
	fps := p.CDetFalsePositives(p.AlertsFor("fastnetmon"), 0, p.Cfg.World.Steps())
	for _, o := range fps {
		if o.Anomalous != 0 || !o.Detected {
			t.Fatalf("FP outcome malformed: %+v", o)
		}
	}
	// NetScout FPs within the test period must each be bounded by the
	// diversion timeout worth of traffic.
	nsFps := p.CDetFalsePositives(p.Alerts, p.StabEnd, p.Cfg.World.Steps())
	_ = nsFps // may legitimately be empty for a conservative detector
}

func TestCusumRelabelCloseToSimTruth(t *testing.T) {
	p := pipeline(t)
	eps := p.MatchedEpisodes(0, p.Cfg.World.Steps())
	if len(eps) < 5 {
		t.Skip("too few episodes")
	}
	relabeled := p.RelabelWithCusum(eps)
	found, close := 0, 0
	// CUSUM with the paper's aggressive NumStd occasionally anchors on
	// preparation-phase test traffic, so allow an hour of labeling noise
	// (Appendix A notes the aggressive parameter trades precision for
	// pre-attack coverage).
	tol := int(time.Hour / p.Cfg.World.Step)
	for i := range eps {
		if relabeled[i].AnomStart == eps[i].AnomStart {
			continue // CUSUM fell back or agreed exactly
		}
		found++
		d := relabeled[i].AnomStart - eps[i].AnomStart
		if d < 0 {
			d = -d
		}
		if d <= tol {
			close++
		}
		if relabeled[i].AnomStart >= relabeled[i].AnomEnd {
			t.Fatalf("episode %d: relabeled start after end", i)
		}
	}
	if found == 0 {
		t.Skip("CUSUM never moved a label in this world")
	}
	if frac := float64(close) / float64(found); frac < 0.9 {
		t.Fatalf("only %.0f%% of CUSUM labels within ±1 h of simulated truth", frac*100)
	}
}

func TestOutcomeBoundsProperty(t *testing.T) {
	// For any threshold, every attack outcome satisfies the metric
	// invariants: effectiveness in [0,1], scrubbed ≤ anomalous, extraneous
	// finite and non-negative.
	p := pipeline(t)
	eps := p.MatchedEpisodes(p.StabEnd, p.Cfg.World.Steps())
	if len(eps) == 0 {
		t.Skip("no episodes")
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		ep := eps[rng.Intn(len(eps))]
		spikes := map[int]float64{}
		for k := 0; k < rng.Intn(5); k++ {
			spikes[rng.Intn(ep.StreamEnd-ep.StreamStart)] = rng.Float64()
		}
		tr := mkTrace(ep, spikes)
		th := rng.Float64()
		o := p.OutcomeAt(&tr, th)
		if e := o.Effectiveness(); e < 0 || e > 1 {
			t.Fatalf("effectiveness %v out of bounds", e)
		}
		if o.ScrubbedAnomalous > o.Anomalous+1e-6 {
			t.Fatalf("scrubbed %v > anomalous %v", o.ScrubbedAnomalous, o.Anomalous)
		}
		if o.Extraneous < 0 || math.IsNaN(o.Extraneous) || math.IsInf(o.Extraneous, 0) {
			t.Fatalf("extraneous %v invalid", o.Extraneous)
		}
		// A missed attack scrubs no anomalous traffic — but may still have
		// paid for wasted early diversions (Extraneous > 0 is legitimate).
		if !o.Detected && o.ScrubbedAnomalous != 0 {
			t.Fatal("undetected outcome must scrub no anomalous traffic")
		}
	}
}
