// Package eval wires every substrate into the paper's evaluation pipeline
// (§5–§6): generate the ISP world, label it with a CDet, populate the
// attack-history registries, extract multi-timescale feature series, train
// Xatu (and the RF baseline), calibrate alert thresholds under a scrubbing
// overhead bound on validation data, and replay the test period through the
// streaming detectors to measure effectiveness, overhead and delay. Each
// figure/table of the paper has a driver in experiments*.go.
package eval

import (
	"fmt"
	"sort"
	"time"

	"github.com/xatu-go/xatu/internal/attackhist"
	"github.com/xatu-go/xatu/internal/cdet"
	"github.com/xatu-go/xatu/internal/core"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/features"
	"github.com/xatu-go/xatu/internal/simnet"
)

// Config parameterizes a pipeline run.
type Config struct {
	World simnet.Config
	// Split fractions over the horizon (paper: 50/20/30 days, with the
	// first 10 test days used for stabilization).
	TrainFrac, ValFrac, StabFrac float64
	// Labeler produces the ground-truth alerts ("netscout" or "fastnetmon").
	Labeler string
	// LookbackSteps is the feature-series length T per example.
	LookbackSteps int
	// Model is the Xatu configuration (NumFeatures is forced to 273).
	Model core.Config
	// Train are the model-fitting options.
	Train core.TrainOptions
	// A4WindowDays / A5WindowHours bound the history features.
	A4WindowDays  int
	A5WindowHours int
	// MinTypeExamples is the minimum number of labeled attacks a type needs
	// for its own model; rarer types share a model trained on all types
	// (scaled-data adaptation, documented in DESIGN.md).
	MinTypeExamples int
}

// DefaultConfig returns a laptop-scale pipeline configuration.
func DefaultConfig() Config {
	w := simnet.DefaultConfig()
	w.Step = 2 * time.Minute
	w.Days = 20
	w.NumCustomers = 16
	w.NumBotnets = 5
	w.BotsPerBotnet = 60
	w.MeanAttacksPerBotnetPerWeek = 10

	m := core.DefaultConfig(features.NumFeatures)
	m.Hidden = 12
	m.PoolShort, m.PoolMed, m.PoolLong = 1, 5, 30 // ×2min = 2/10/60 minutes
	m.Window = 15                                 // 30 minutes of detection window

	return Config{
		World:     w,
		TrainFrac: 0.5, ValFrac: 0.2, StabFrac: 0.1,
		Labeler:       "netscout",
		LookbackSteps: 360, // half a simulated day
		Model:         m,
		// Workers is pinned to 1 so the committed experiment numbers are
		// reproducible across machines: the worker count changes how
		// gradients are partitioned and reduced, and while every (seed,
		// workers) pair is individually deterministic, different worker
		// counts give different (equally valid) float summation orders.
		Train:           core.TrainOptions{Epochs: 6, BatchSize: 12, Seed: 1, Workers: 1},
		A4WindowDays:    10,
		A5WindowHours:   24,
		MinTypeExamples: 8,
	}
}

// Pipeline holds everything shared between experiments on one world.
type Pipeline struct {
	Cfg     Config
	World   *simnet.World
	History *attackhist.Registry
	// Alerts are the labeler's alerts over the full horizon, time-ordered.
	Alerts []ddos.Alert
	// Split boundaries in steps.
	TrainEnd, ValEnd, StabEnd int
}

// New builds the world, runs the labeling CDet over the whole horizon, and
// populates the attack-history registry from its alerts.
func New(cfg Config) (*Pipeline, error) {
	cfg.Model.NumFeatures = features.NumFeatures
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	w, err := simnet.NewWorld(cfg.World)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{Cfg: cfg, World: w, History: attackhist.NewRegistry()}
	steps := cfg.World.Steps()
	p.TrainEnd = int(float64(steps) * cfg.TrainFrac)
	p.ValEnd = p.TrainEnd + int(float64(steps)*cfg.ValFrac)
	p.StabEnd = p.ValEnd + int(float64(steps)*cfg.StabFrac)
	if p.StabEnd >= steps {
		return nil, fmt.Errorf("eval: split fractions leave no test data")
	}
	p.Alerts = p.runLabeler(cfg.Labeler)
	p.populateHistory()
	return p, nil
}

// runLabeler streams the whole world through the chosen CDet
// ("netscout", "fastnetmon", or the statistical "entropy" baseline).
func (p *Pipeline) runLabeler(name string) []ddos.Alert {
	if name == "entropy" {
		return p.runEntropyDetector()
	}
	var det *cdet.Detector
	switch name {
	case "fastnetmon":
		det = cdet.NewFastNetMon(p.Cfg.World.Step)
	default:
		det = cdet.NewNetScout(p.Cfg.World.Step)
	}
	steps := p.Cfg.World.Steps()
	for s := 0; s < steps; s++ {
		at := p.Cfg.World.TimeOf(s)
		for ci := range p.World.Customers {
			perType, _ := p.World.SignatureBytes(ci, s)
			det.Observe(p.World.Customers[ci].Addr, at, perType)
		}
	}
	alerts := det.Finish(p.Cfg.World.TimeOf(steps))
	sort.Slice(alerts, func(i, j int) bool { return alerts[i].DetectedAt.Before(alerts[j].DetectedAt) })
	return alerts
}

// runEntropyDetector streams the world through the entropy baseline, which
// needs raw flow records rather than per-signature byte counts.
func (p *Pipeline) runEntropyDetector() []ddos.Alert {
	det := cdet.NewEntropyDetector(p.Cfg.World.Step)
	steps := p.Cfg.World.Steps()
	for s := 0; s < steps; s++ {
		at := p.Cfg.World.TimeOf(s)
		for ci := range p.World.Customers {
			det.Observe(p.World.Customers[ci].Addr, at, p.World.FlowsAt(ci, s))
		}
	}
	alerts := det.Finish(p.Cfg.World.TimeOf(steps))
	sort.Slice(alerts, func(i, j int) bool { return alerts[i].DetectedAt.Before(alerts[j].DetectedAt) })
	return alerts
}

// populateHistory records every labeler alert and its attack sources into
// the (time-aware) history registry.
func (p *Pipeline) populateHistory() {
	for _, a := range p.Alerts {
		p.History.RecordAlert(a)
		p.recordAttackers(p.History, a)
	}
}

// recordAttackers registers the sources of traffic matching the alert
// signature between detection and mitigation end (§5.1, A2).
func (p *Pipeline) recordAttackers(reg *attackhist.Registry, a ddos.Alert) {
	ci := p.World.CustomerIndex(a.Sig.Victim)
	if ci < 0 {
		return
	}
	from := p.Cfg.World.StepOf(a.DetectedAt)
	to := p.Cfg.World.StepOf(a.MitigatedAt)
	if to >= p.Cfg.World.Steps() {
		to = p.Cfg.World.Steps() - 1
	}
	for s := from; s <= to; s++ {
		at := p.Cfg.World.TimeOf(s)
		for _, r := range p.World.FlowsAt(ci, s) {
			if a.Sig.Matches(r) {
				reg.RecordAttacker(a.Sig.Victim, r.Src, at)
			}
		}
	}
}

// Extractor returns a feature extractor over the pipeline's registries,
// optionally with disabled signal groups (§6.3 ablations) and a custom
// history registry (for autoregressive evaluation).
func (p *Pipeline) Extractor(disable map[string]bool, hist *attackhist.Registry) *features.Extractor {
	if hist == nil {
		hist = p.History
	}
	return &features.Extractor{
		Blocklists: p.World.Blocklists,
		History:    hist,
		Spoof:      p.World.Spoof,
		Geo:        simnet.GeoOf,
		A4Window:   time.Duration(p.Cfg.A4WindowDays) * 24 * time.Hour,
		A5Window:   time.Duration(p.Cfg.A5WindowHours) * time.Hour,
		Disable:    disable,
	}
}

// SeriesFor extracts the normalized feature series for customer ci over
// steps [from, to). Steps outside the horizon yield zero vectors.
func (p *Pipeline) SeriesFor(ex *features.Extractor, ci, from, to int) [][]float64 {
	out := make([][]float64, 0, to-from)
	addr := p.World.Customers[ci].Addr
	for s := from; s < to; s++ {
		if s < 0 || s >= p.Cfg.World.Steps() {
			out = append(out, make([]float64, features.NumFeatures))
			continue
		}
		v := ex.Extract(addr, p.Cfg.World.TimeOf(s), p.World.FlowsAt(ci, s))
		features.Normalize(v)
		out = append(out, v)
	}
	return out
}

// alertStep returns the step index of an alert's detection.
func (p *Pipeline) alertStep(a ddos.Alert) int { return p.Cfg.World.StepOf(a.DetectedAt) }

// matchEvent finds the simulated ground-truth event corresponding to an
// alert: same victim and type, detection inside (or just after) the
// anomalous window. Returns -1 when the alert is a false positive.
func (p *Pipeline) matchEvent(a ddos.Alert) int {
	ci := p.World.CustomerIndex(a.Sig.Victim)
	if ci < 0 {
		return -1
	}
	det := p.alertStep(a)
	slack := int(10 * time.Minute / p.Cfg.World.Step)
	for _, ei := range p.World.EventsFor(ci) {
		ev := &p.World.Events[ei]
		if ev.Type != a.Sig.Type {
			continue
		}
		if det >= ev.StartStep && det < ev.EndStep()+slack {
			return ei
		}
	}
	return -1
}
