package eval

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/xatu-go/xatu/internal/core"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/features"
	"github.com/xatu-go/xatu/internal/forest"
)

// ExampleSet groups training examples by attack type. Negatives are shared
// (they carry no type label).
type ExampleSet struct {
	Positives map[ddos.AttackType][]core.Example
	Negatives []core.Example
}

// TotalPositives returns the number of attack examples across types.
func (s *ExampleSet) TotalPositives() int {
	n := 0
	for _, v := range s.Positives {
		n += len(v)
	}
	return n
}

// ForType returns a balanced training set for one attack type: its
// positives plus an equal number of negatives ("we select an equal number
// of attack and non-attack time series", §5.3).
func (s *ExampleSet) ForType(at ddos.AttackType, rng *rand.Rand) []core.Example {
	pos := s.Positives[at]
	return balance(pos, s.Negatives, rng)
}

// Combined returns all positives of every type plus an equal number of
// negatives, for the shared fallback model.
func (s *ExampleSet) Combined(rng *rand.Rand) []core.Example {
	var pos []core.Example
	for at := ddos.AttackType(0); at < ddos.NumAttackTypes; at++ {
		pos = append(pos, s.Positives[at]...)
	}
	return balance(pos, s.Negatives, rng)
}

func balance(pos, neg []core.Example, rng *rand.Rand) []core.Example {
	out := append([]core.Example(nil), pos...)
	idx := rng.Perm(len(neg))
	n := len(pos)
	if n > len(neg) {
		n = len(neg)
	}
	for _, i := range idx[:n] {
		out = append(out, neg[i])
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// BuildExamples constructs training examples from the labeler's alerts
// whose detection falls in [fromStep, toStep): one positive per alert
// (series ending at the detection step, labeled at the final window step)
// and one negative per alert sampled from alert-free periods.
func (p *Pipeline) BuildExamples(ex *features.Extractor, fromStep, toStep int, seed int64) (*ExampleSet, error) {
	if toStep <= fromStep {
		return nil, fmt.Errorf("eval: empty example range [%d,%d)", fromStep, toStep)
	}
	set := &ExampleSet{Positives: map[ddos.AttackType][]core.Example{}}
	look := p.Cfg.LookbackSteps

	type job struct {
		ci      int
		endStep int // exclusive series end
		attack  bool
		at      ddos.AttackType
	}
	var jobs []job
	for _, a := range p.Alerts {
		det := p.alertStep(a)
		if det < fromStep || det >= toStep {
			continue
		}
		ci := p.World.CustomerIndex(a.Sig.Victim)
		if ci < 0 {
			continue
		}
		jobs = append(jobs, job{ci: ci, endStep: det + 1, attack: true, at: a.Sig.Type})
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("eval: no alerts in range [%d,%d)", fromStep, toStep)
	}
	rng := rand.New(rand.NewSource(seed))
	// Hard negatives: windows ending hours *before* an attack's onset. They
	// contain preparation activity but no volumetric onset, teaching the
	// model that auxiliary signals alone do not mean "attack now" — in the
	// paper's data 95.5% of blocklisted-source activity is not followed by
	// an attack (§3.2), so such windows are abundant there.
	nPos := len(jobs)
	for _, a := range p.Alerts {
		det := p.alertStep(a)
		if det < fromStep || det >= toStep {
			continue
		}
		ci := p.World.CustomerIndex(a.Sig.Victim)
		if ci < 0 {
			continue
		}
		onset := det
		if ei := p.matchEvent(a); ei >= 0 {
			onset = p.World.Events[ei].StartStep
		}
		gap := int(time.Duration(1+rng.Intn(4)) * time.Hour / p.Cfg.World.Step)
		end := onset - gap
		if end < fromStep+look/4 {
			continue
		}
		jobs = append(jobs, job{ci: ci, endStep: end + 1, attack: false})
	}
	// Random negatives: alert-free (customer, step) pairs in the same range.
	busy := p.alertBusyIndex()
	nNeg := nPos
	for tries := 0; nNeg > 0 && tries < 50*nNeg; tries++ {
		ci := rng.Intn(len(p.World.Customers))
		end := fromStep + look + rng.Intn(maxI(1, toStep-fromStep-look))
		if end >= toStep {
			continue
		}
		if p.nearAlert(busy, ci, end, 30) {
			continue
		}
		jobs = append(jobs, job{ci: ci, endStep: end + 1, attack: false})
		nNeg--
	}

	// Parallel feature extraction.
	results := make([]core.Example, len(jobs))
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for k := wkr; k < len(jobs); k += workers {
				j := jobs[k]
				x := p.SeriesFor(ex, j.ci, j.endStep-look, j.endStep)
				results[k] = core.Example{X: x, Attack: j.attack, AttackStep: p.Cfg.Model.Window - 1}
			}
		}(wkr)
	}
	wg.Wait()
	for k, j := range jobs {
		if j.attack {
			set.Positives[j.at] = append(set.Positives[j.at], results[k])
		} else {
			set.Negatives = append(set.Negatives, results[k])
		}
	}
	return set, nil
}

// alertBusyIndex maps customer index -> sorted alert detection steps.
func (p *Pipeline) alertBusyIndex() map[int][]int {
	out := map[int][]int{}
	for _, a := range p.Alerts {
		ci := p.World.CustomerIndex(a.Sig.Victim)
		if ci >= 0 {
			out[ci] = append(out[ci], p.alertStep(a))
		}
	}
	return out
}

// nearAlert reports whether step is within pad steps of any alert on ci.
func (p *Pipeline) nearAlert(busy map[int][]int, ci, step, pad int) bool {
	for _, s := range busy[ci] {
		if step >= s-pad && step <= s+pad {
			return true
		}
	}
	// Also avoid ground-truth anomalies CDet missed, so negatives are clean.
	for _, ei := range p.World.EventsFor(ci) {
		ev := &p.World.Events[ei]
		if step >= ev.StartStep-pad && step <= ev.EndStep()+pad {
			return true
		}
	}
	return false
}

// Models bundles per-type Xatu models with a shared fallback.
type Models struct {
	ByType map[ddos.AttackType]*core.Model
	Shared *core.Model
}

// For returns the model evaluating attacks of the given type.
func (m *Models) For(at ddos.AttackType) *core.Model {
	if mm, ok := m.ByType[at]; ok {
		return mm
	}
	return m.Shared
}

// TrainXatu trains one model per attack type with enough examples plus the
// shared fallback ("Xatu trains separate models for each attack type",
// §5.3). modCfg, when non-nil, rewrites the model config (ablations).
func (p *Pipeline) TrainXatu(set *ExampleSet, modCfg func(core.Config) core.Config) (*Models, error) {
	cfg := p.Cfg.Model
	cfg.NumFeatures = features.NumFeatures
	if modCfg != nil {
		cfg = modCfg(cfg)
	}
	rng := rand.New(rand.NewSource(p.Cfg.Train.Seed + 17))
	out := &Models{ByType: map[ddos.AttackType]*core.Model{}}

	shared, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := shared.Fit(set.Combined(rng), p.Cfg.Train); err != nil {
		return nil, err
	}
	out.Shared = shared

	for at := ddos.AttackType(0); at < ddos.NumAttackTypes; at++ {
		if len(set.Positives[at]) < p.Cfg.MinTypeExamples {
			continue
		}
		c := cfg
		c.Seed = cfg.Seed + int64(at) + 1
		m, err := core.New(c)
		if err != nil {
			return nil, err
		}
		if _, err := m.Fit(set.ForType(at, rng), p.Cfg.Train); err != nil {
			return nil, err
		}
		out.ByType[at] = m
	}
	return out, nil
}

// FlattenForRF turns a feature series into the RF baseline's input: the
// last step's features, the mean over the last PoolMed steps, and the mean
// over the last PoolLong steps — "the same feature set from the same three
// timescales" (§6).
func FlattenForRF(x [][]float64, poolMed, poolLong int) []float64 {
	if len(x) == 0 {
		return nil
	}
	dim := len(x[0])
	out := make([]float64, 3*dim)
	copy(out[:dim], x[len(x)-1])
	meanInto := func(dst []float64, k int) {
		lo := len(x) - k
		if lo < 0 {
			lo = 0
		}
		n := float64(len(x) - lo)
		for t := lo; t < len(x); t++ {
			for j, v := range x[t] {
				dst[j] += v / n
			}
		}
	}
	meanInto(out[dim:2*dim], poolMed)
	meanInto(out[2*dim:], poolLong)
	return out
}

// TrainRF fits the random-forest baseline on the flattened examples with a
// small grid search.
func (p *Pipeline) TrainRF(set *ExampleSet, seed int64) (*forest.Forest, error) {
	rng := rand.New(rand.NewSource(seed))
	all := set.Combined(rng)
	if len(all) < 4 {
		return nil, fmt.Errorf("eval: too few examples for RF")
	}
	X := make([][]float64, len(all))
	y := make([]bool, len(all))
	for i, ex := range all {
		X[i] = FlattenForRF(ex.X, p.Cfg.Model.PoolMed, p.Cfg.Model.PoolLong)
		y[i] = ex.Attack
	}
	cut := len(X) * 3 / 4
	grid := []forest.Config{
		{NumTrees: 40, MaxDepth: 8, MinLeaf: 2, Seed: seed},
		{NumTrees: 60, MaxDepth: 12, MinLeaf: 1, Seed: seed},
		{NumTrees: 30, MaxDepth: 6, MinLeaf: 4, Seed: seed},
	}
	_, f, err := forest.GridSearch(X[:cut], y[:cut], X[cut:], y[cut:], grid)
	return f, err
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
