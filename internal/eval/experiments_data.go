package eval

import (
	"fmt"
	"math"
	"net/netip"
	"time"

	"github.com/xatu-go/xatu/internal/attackhist"
	"github.com/xatu-go/xatu/internal/cdet"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/features"
	"github.com/xatu-go/xatu/internal/metrics"
	"github.com/xatu-go/xatu/internal/simnet"
)

// Fig2Example reproduces Figure 2's example timeline for one attack:
// per-minute matching traffic, the CUSUM-labeled anomaly start, the CDet
// detection time, and the resulting A/B areas.
func Fig2Example(p *Pipeline) *Result {
	res := &Result{
		ID:     "fig2",
		Title:  "Example attack: anomaly start (CUSUM), CDet detection, areas A/B",
		Header: []string{"minute", "match-Mbps", "phase"},
	}
	// First matched test attack.
	eps := p.MatchedEpisodes(0, p.Cfg.World.Steps())
	if len(eps) == 0 {
		res.Notes = append(res.Notes, "no matched attacks in this world")
		return res
	}
	ep := eps[len(eps)/2]
	det := -1
	for _, a := range p.Alerts {
		if p.matchEvent(a) == ep.EventIdx {
			det = p.alertStep(a)
			break
		}
	}
	// Rebuild the matching-traffic series and run the Appendix A labeling.
	from := ep.AnomStart - 90
	if from < 0 {
		from = 0
	}
	series := make([]float64, 0, ep.AnomEnd-from+5)
	for s := from; s < ep.AnomEnd+3 && s < p.Cfg.World.Steps(); s++ {
		perType, _ := p.World.SignatureBytes(ep.CustomerIdx, s)
		series = append(series, perType[ep.Type])
	}
	numStd := 1.0
	if ep.Type != ddos.UDPFlood && ep.Type != ddos.DNSAmp {
		numStd = 0.5
	}
	onsetRel, ok := cdet.AnomalyStart(series, det-from, cdet.DefaultCusum(numStd))
	onset := from + onsetRel
	stepMin := p.Cfg.World.Step.Minutes()
	var areaA, areaB float64
	for s := maxI(from, ep.AnomStart-10); s < ep.AnomEnd && s < p.Cfg.World.Steps(); s++ {
		perType, _ := p.World.SignatureBytes(ep.CustomerIdx, s)
		mbps := perType[ep.Type] * 8 / 1e6 / p.Cfg.World.Step.Seconds()
		phase := "normal"
		if s >= onset {
			phase = "anomalous (A)"
		}
		if det >= 0 && s >= det {
			phase = "scrubbed (B)"
			areaB += perType[ep.Type]
		}
		if s >= onset {
			areaA += perType[ep.Type]
		}
		res.Rows = append(res.Rows, []string{
			f1(float64(s-ep.AnomStart) * stepMin), f2(mbps), phase,
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("attack=%v cusumOnset=%+.0fmin (truth 0.0) cdetDetect=%+.0fmin cusumFound=%v",
			ep.Type, float64(onset-ep.AnomStart)*stepMin, float64(det-ep.AnomStart)*stepMin, ok),
		fmt.Sprintf("effectiveness B/A = %s", pct(safeDiv(areaB, areaA))))
	return res
}

// Fig3NaiveEarlyDetection reproduces Figure 3: shift every CDet alert N
// minutes earlier and measure effectiveness and overhead by attack-duration
// class (short <5 min, medium 5–20 min, long >20 min).
func Fig3NaiveEarlyDetection(p *Pipeline) *Result {
	res := &Result{
		ID:     "fig3",
		Title:  "Naive uniformly-early detection: effectiveness & overhead vs minutes early",
		Header: []string{"early-min", "class", "median-eff", "overhead"},
	}
	eps := p.MatchedEpisodes(0, p.Cfg.World.Steps())
	classOf := func(ep Episode) string {
		durMin := float64(ep.AnomEnd-ep.AnomStart) * p.Cfg.World.Step.Minutes()
		switch {
		case durMin < 5:
			return "short"
		case durMin <= 20:
			return "medium"
		default:
			return "long"
		}
	}
	for _, early := range []int{0, 3, 6, 9, 12, 15} {
		outs := p.EvaluateCDetAlerts(p.Alerts, eps, time.Duration(early)*time.Minute)
		byClass := map[string][]metrics.AttackOutcome{"short": nil, "medium": nil, "long": nil, "overall": nil}
		for i, o := range outs {
			c := classOf(eps[i])
			byClass[c] = append(byClass[c], o)
			byClass["overall"] = append(byClass["overall"], o)
		}
		for _, c := range []string{"short", "medium", "long", "overall"} {
			os := byClass[c]
			if len(os) == 0 {
				continue
			}
			eff := metrics.Quantile(metrics.EffectivenessSeries(os), 0.5)
			ov := metrics.Quantile(metrics.CumulativeOverheads(os), 0.5)
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("%d", early), c, pct(eff), pct(ov),
			})
		}
	}
	return res
}

// attackSources returns the distinct sources of flows matching the event's
// signature during its anomalous window.
func attackSources(w *simnet.World, ev *simnet.AttackEvent) map[string]bool {
	sig := ev.Signature()
	out := map[string]bool{}
	for s := ev.StartStep; s < ev.EndStep() && s < w.Cfg.Steps(); s++ {
		for _, r := range w.FlowsAt(ev.VictimIdx, s) {
			if sig.Matches(r) {
				out[r.Src.String()] = true
			}
		}
	}
	return out
}

// Fig4aAttackerOverlap reproduces Figure 4(a): per attack, the fraction of
// actual attackers that previously appeared on blocklists, previously
// attacked the same customer, or are (obviously) spoofed.
func Fig4aAttackerOverlap(p *Pipeline) *Result {
	res := &Result{
		ID:     "fig4a",
		Title:  "% of attackers previously blocklisted / previous attackers / spoofed",
		Header: []string{"signal", "attacks-with-any", "p25", "median", "p75"},
	}
	w := p.World
	var fracBL, fracPrev, fracSpoof []float64
	for i := range w.Events {
		ev := &w.Events[i]
		srcs := attackSources(w, ev)
		if len(srcs) == 0 {
			continue
		}
		at := p.Cfg.World.TimeOf(ev.StartStep)
		var nBL, nPrev, nSpoof int
		for s := range srcs {
			addr := mustAddr(s)
			if w.Blocklists.AnyListedAt(addr, at) {
				nBL++
			}
			if p.History.WasAttacker(ev.Victim, addr, at) {
				nPrev++
			}
			if w.Spoof.IsSpoofed(addr, 0) {
				nSpoof++
			}
		}
		n := float64(len(srcs))
		fracBL = append(fracBL, float64(nBL)/n)
		fracPrev = append(fracPrev, float64(nPrev)/n)
		fracSpoof = append(fracSpoof, float64(nSpoof)/n)
	}
	add := func(name string, fr []float64) {
		withAny := 0
		for _, f := range fr {
			if f > 0 {
				withAny++
			}
		}
		res.Rows = append(res.Rows, []string{
			name,
			pct(safeDiv(float64(withAny), float64(len(fr)))),
			pct(metrics.Quantile(fr, 0.25)),
			pct(metrics.Quantile(fr, 0.5)),
			pct(metrics.Quantile(fr, 0.75)),
		})
	}
	add("A1 blocklisted", fracBL)
	add("A2 previous-attackers", fracPrev)
	add("A3 spoofed", fracSpoof)
	return res
}

// Fig4bTypeTransitions reproduces Figure 4(b): the attack-type transition
// matrix over consecutive attacks on the same customer, from CDet alerts.
func Fig4bTypeTransitions(p *Pipeline) *Result {
	res := &Result{
		ID:     "fig4b",
		Title:  "Attack-type transition matrix (row-normalized %, from CDet alerts)",
		Header: append([]string{"from\\to"}, typeNames()...),
	}
	m := p.History.TransitionMatrix(p.Cfg.World.TimeOf(p.Cfg.World.Steps()))
	var same, total int
	for i := 0; i < int(ddos.NumAttackTypes); i++ {
		rowTotal := 0
		for j := 0; j < int(ddos.NumAttackTypes); j++ {
			rowTotal += m[i][j]
			total += m[i][j]
			if i == j {
				same += m[i][j]
			}
		}
		row := []string{ddos.AttackType(i).String()}
		for j := 0; j < int(ddos.NumAttackTypes); j++ {
			if rowTotal == 0 {
				row = append(row, "-")
			} else {
				row = append(row, pct(float64(m[i][j])/float64(rowTotal)))
			}
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes, fmt.Sprintf("same-type transitions: %s of %d pairs (paper: 97.9%%)",
		pct(safeDiv(float64(same), float64(total))), total))
	return res
}

// Fig15SourceReappearance reproduces Appendix B Figure 15: the percentage
// of eventual attack sources already active d days before the attack.
func Fig15SourceReappearance(p *Pipeline) *Result {
	res := &Result{
		ID:     "fig15",
		Title:  "Attacker reappearance: % of eventual attackers active d days before",
		Header: []string{"days-before", "p25", "median", "p75"},
	}
	w := p.World
	spd := p.Cfg.World.StepsPerDay()
	maxDays := p.Cfg.World.PrepDaysMax
	perDay := make([][]float64, maxDays+1)
	for i := range w.Events {
		ev := &w.Events[i]
		// Only events with a full preparation runway, so every per-day row
		// samples the same event population.
		if ev.StartStep < maxDays*spd {
			continue
		}
		srcs := attackSources(w, ev)
		if len(srcs) == 0 {
			continue
		}
		for d := 1; d <= maxDays; d++ {
			lo, hi := ev.StartStep-d*spd, ev.StartStep-(d-1)*spd
			active := map[string]bool{}
			for s := lo; s < hi; s++ {
				for _, r := range w.FlowsAt(ev.VictimIdx, s) {
					if srcs[r.Src.String()] {
						active[r.Src.String()] = true
					}
				}
			}
			perDay[d] = append(perDay[d], float64(len(active))/float64(len(srcs)))
		}
	}
	for d := maxDays; d >= 1; d-- {
		if len(perDay[d]) == 0 {
			continue
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("-%d", d),
			pct(metrics.Quantile(perDay[d], 0.25)),
			pct(metrics.Quantile(perDay[d], 0.5)),
			pct(metrics.Quantile(perDay[d], 0.75)),
		})
	}
	return res
}

// Fig16ClusteringGrowth reproduces Figure 16: the clustering coefficient of
// attacked customers rising toward the detection time.
func Fig16ClusteringGrowth(p *Pipeline) *Result {
	res := &Result{
		ID:     "fig16",
		Title:  "Bipartite clustering coefficient approaching attack detection",
		Header: []string{"minutes-before", "median-dot", "median-min", "median-max"},
	}
	// A short window makes the approach-to-attack growth visible: recent
	// correlated attacks dominate the coefficient.
	window := 2 * time.Hour
	for _, minBefore := range []int{15, 10, 5, 0} {
		var dots, mins, maxs []float64
		for _, a := range p.Alerts {
			at := a.DetectedAt.Add(-time.Duration(minBefore) * time.Minute)
			d := p.History.Clustering(a.Sig.Victim, at, window, attackhist.ClusteringDot)
			if d == 0 {
				continue // paper: only customers with overlapping attacker groups
			}
			dots = append(dots, d)
			mins = append(mins, p.History.Clustering(a.Sig.Victim, at, window, attackhist.ClusteringMin))
			maxs = append(maxs, p.History.Clustering(a.Sig.Victim, at, window, attackhist.ClusteringMax))
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("-%d", minBefore),
			f3(metrics.Quantile(dots, 0.5)),
			f3(metrics.Quantile(mins, 0.5)),
			f3(metrics.Quantile(maxs, 0.5)),
		})
	}
	return res
}

// Table1Features reproduces Table 1: the feature inventory.
func Table1Features() *Result {
	res := &Result{
		ID:     "tab1",
		Title:  "Feature inventory (Table 1)",
		Header: []string{"group", "count"},
	}
	counts := map[string]int{}
	for i := 0; i < features.NumFeatures; i++ {
		counts[features.GroupOf(i)]++
	}
	for _, g := range []string{"V", "A1", "A2", "A3", "A4", "A5"} {
		res.Rows = append(res.Rows, []string{g, fmt.Sprintf("%d", counts[g])})
	}
	res.Rows = append(res.Rows, []string{"total", fmt.Sprintf("%d", features.NumFeatures)})
	return res
}

// Table2DataSplit reproduces Table 2: alert counts per attack type per
// chronological split.
func Table2DataSplit(p *Pipeline) *Result {
	res := &Result{
		ID:     "tab2",
		Title:  "Alerts per attack type and split (Table 2)",
		Header: []string{"type", "share", "train", "val", "test"},
	}
	var counts [ddos.NumAttackTypes][3]int
	total := 0
	for _, a := range p.Alerts {
		s := p.alertStep(a)
		var split int
		switch {
		case s < p.TrainEnd:
			split = 0
		case s < p.ValEnd:
			split = 1
		default:
			split = 2
		}
		counts[a.Sig.Type][split]++
		total++
	}
	for at := ddos.AttackType(0); at < ddos.NumAttackTypes; at++ {
		sum := counts[at][0] + counts[at][1] + counts[at][2]
		res.Rows = append(res.Rows, []string{
			at.String(),
			pct(safeDiv(float64(sum), float64(total))),
			fmt.Sprintf("%d", counts[at][0]),
			fmt.Sprintf("%d", counts[at][1]),
			fmt.Sprintf("%d", counts[at][2]),
		})
	}
	res.Rows = append(res.Rows, []string{"total", "100%",
		fmt.Sprintf("%d", splitTotal(counts, 0)),
		fmt.Sprintf("%d", splitTotal(counts, 1)),
		fmt.Sprintf("%d", splitTotal(counts, 2))})
	return res
}

func splitTotal(counts [ddos.NumAttackTypes][3]int, split int) int {
	n := 0
	for at := 0; at < int(ddos.NumAttackTypes); at++ {
		n += counts[at][split]
	}
	return n
}

func typeNames() []string {
	out := make([]string, ddos.NumAttackTypes)
	for at := ddos.AttackType(0); at < ddos.NumAttackTypes; at++ {
		out[at] = at.String()
	}
	return out
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

// Fig14RampVisualization reproduces Appendix G Figure 14: the anomalous
// traffic ramp under different dR values (doublings per minute). For each
// dR it prints the modeled rate over the first minutes of an attack with
// the bench world's typical peak.
func Fig14RampVisualization(p *Pipeline) *Result {
	res := &Result{
		ID:     "fig14",
		Title:  "Ramp-up shape for different dR (Appendix G)",
		Header: []string{"minute", "dR=0.5", "dR=1.5", "dR=2.5"},
	}
	// Borrow a real event for peak volume; fall back to the config mean.
	peak := p.Cfg.World.MeanPeakMbps
	if len(p.World.Events) > 0 {
		peak = p.World.Events[0].PeakMbps
	}
	const v0 = 0.5 // Mbps at anomaly start, matching simnet's ramp model
	for minute := 0; minute <= 12; minute++ {
		row := []string{fmt.Sprintf("%d", minute)}
		for _, dr := range []float64{0.5, 1.5, 2.5} {
			v := v0 * math.Pow(2, dr*float64(minute))
			if v > peak {
				v = peak
			}
			row = append(row, f2(v))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes, fmt.Sprintf("peak %.1f Mbps; dR=1 doubles the rate every minute", peak))
	return res
}
