package eval

import (
	"fmt"
	"strings"
)

// Result is one experiment's output: a titled text table plus free-form
// notes, renderable for the CLI and consumed programmatically by tests.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the result as an aligned text table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f2 formats a float with 2 decimals, and f1 with 1.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
