package eval

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/xatu-go/xatu/internal/cdet"
	"github.com/xatu-go/xatu/internal/core"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/features"
	"github.com/xatu-go/xatu/internal/forest"
	"github.com/xatu-go/xatu/internal/metrics"
)

// Episode is one evaluation window: an attack (EventIdx ≥ 0) or a benign
// stretch (EventIdx < 0).
type Episode struct {
	EventIdx    int
	CustomerIdx int
	Type        ddos.AttackType
	// AnomStart/AnomEnd delimit the ground-truth anomalous period (area A).
	AnomStart, AnomEnd int
	// StreamStart is where feature streaming begins (lookback warm-up).
	StreamStart int
	// StreamEnd is the exclusive end of streaming.
	StreamEnd int
}

// Episodes returns the attack episodes whose anomaly starts inside
// [fromStep, toStep).
func (p *Pipeline) Episodes(fromStep, toStep int) []Episode {
	var out []Episode
	look := p.Cfg.LookbackSteps
	for i := range p.World.Events {
		ev := &p.World.Events[i]
		if ev.StartStep < fromStep || ev.StartStep >= toStep {
			continue
		}
		end := ev.EndStep()
		if end > p.Cfg.World.Steps() {
			end = p.Cfg.World.Steps()
		}
		out = append(out, Episode{
			EventIdx:    i,
			CustomerIdx: ev.VictimIdx,
			Type:        ev.Type,
			AnomStart:   ev.StartStep,
			AnomEnd:     end,
			StreamStart: ev.StartStep - look,
			StreamEnd:   end,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AnomStart < out[j].AnomStart })
	return out
}

// MatchedEpisodes returns the attack episodes in [fromStep, toStep) that
// the labeling CDet eventually alerted on. This is the paper's evaluation
// population: its ground truth comes from CDet alerts (§5.1), so attacks
// the CDet misses entirely are invisible to it; Xatu's advantage there
// shows up separately in the false-positive analysis (§6.1).
func (p *Pipeline) MatchedEpisodes(fromStep, toStep int) []Episode {
	matched := map[int]bool{}
	for _, a := range p.Alerts {
		if ei := p.matchEvent(a); ei >= 0 {
			matched[ei] = true
		}
	}
	var out []Episode
	for _, ep := range p.Episodes(fromStep, toStep) {
		if matched[ep.EventIdx] {
			out = append(out, ep)
		}
	}
	return out
}

// UnmatchedEpisodes returns attack episodes in [fromStep, toStep) that the
// labeling CDet never alerted on — "missed attacks". Under the paper's
// CDet-as-ground-truth ROC they count as negatives, which is how the paper
// finds that 71% of Xatu's false positives "are likely to be missed
// attacks by NetScout" (§6.1).
func (p *Pipeline) UnmatchedEpisodes(fromStep, toStep int) []Episode {
	matched := map[int]bool{}
	for _, a := range p.Alerts {
		if ei := p.matchEvent(a); ei >= 0 {
			matched[ei] = true
		}
	}
	var out []Episode
	for _, ep := range p.Episodes(fromStep, toStep) {
		if !matched[ep.EventIdx] {
			out = append(out, ep)
		}
	}
	return out
}

// NegativeEpisodes samples n benign windows (no alert, no ground-truth
// anomaly nearby) in [fromStep, toStep) for false-positive accounting.
func (p *Pipeline) NegativeEpisodes(n, fromStep, toStep int, seed int64) []Episode {
	rng := rand.New(rand.NewSource(seed))
	busy := p.alertBusyIndex()
	look := p.Cfg.LookbackSteps
	winLen := maxI(p.Cfg.Model.Window*p.Cfg.Model.PoolShort, 10)
	var out []Episode
	for tries := 0; len(out) < n && tries < 100*n; tries++ {
		ci := rng.Intn(len(p.World.Customers))
		start := fromStep + look + rng.Intn(maxI(1, toStep-fromStep-look-winLen))
		if p.nearAlert(busy, ci, start, look/2) || p.nearAlert(busy, ci, start+winLen, look/2) {
			continue
		}
		out = append(out, Episode{
			EventIdx:    -1,
			CustomerIdx: ci,
			Type:        ddos.UDPFlood, // benign windows still need a model to stream; UDP is the most common
			AnomStart:   -1,
			AnomEnd:     -1,
			StreamStart: start - look,
			StreamEnd:   start + winLen,
		})
	}
	return out
}

// Scorer is a streaming per-step attack scorer: higher = more attack-like.
type Scorer interface {
	Reset()
	Push(x []float64) float64
}

// xatuScorer adapts a core.Stream: score = 1 − survival.
type xatuScorer struct{ s *core.Stream }

func (x *xatuScorer) Reset()                   { x.s.Reset() }
func (x *xatuScorer) Push(v []float64) float64 { return 1 - x.s.Push(v) }

// XatuScorer returns a Scorer streaming the model for the given type.
func (m *Models) XatuScorer(at ddos.AttackType) Scorer {
	return &xatuScorer{s: core.NewStream(m.For(at))}
}

// rfScorer keeps a trailing buffer and scores each step with the forest.
type rfScorer struct {
	f        *forest.Forest
	poolMed  int
	poolLong int
	buf      [][]float64
}

// RFScorer adapts a trained forest into a streaming Scorer.
func RFScorer(f *forest.Forest, poolMed, poolLong int) Scorer {
	return &rfScorer{f: f, poolMed: poolMed, poolLong: poolLong}
}

func (r *rfScorer) Reset() { r.buf = r.buf[:0] }

func (r *rfScorer) Push(x []float64) float64 {
	r.buf = append(r.buf, x)
	if len(r.buf) > r.poolLong {
		r.buf = r.buf[1:]
	}
	return r.f.PredictProb(FlattenForRF(r.buf, r.poolMed, r.poolLong))
}

// Trace is the threshold-independent record of streaming one episode.
type Trace struct {
	Ep Episode
	// Scores[i] is the score at step ScoreStart+i.
	Scores     []float64
	ScoreStart int
}

// TraceEpisodes streams every episode through a fresh scorer and records
// the per-step scores. Scores during the warm-up prefix are suppressed
// (set to -Inf) so calibration cannot alert before the detector is warm.
// newScorer is called once per worker; scorers are Reset between episodes.
func (p *Pipeline) TraceEpisodes(ex *features.Extractor, episodes []Episode, newScorer func(ddos.AttackType) Scorer) []Trace {
	traces := make([]Trace, len(episodes))
	warm := p.warmSteps()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(episodes) && len(episodes) > 0 {
		workers = len(episodes)
	}
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for k := wkr; k < len(episodes); k += workers {
				epi := episodes[k]
				sc := newScorer(epi.Type)
				sc.Reset()
				x := p.SeriesFor(ex, epi.CustomerIdx, epi.StreamStart, epi.StreamEnd)
				scores := make([]float64, len(x))
				for i := range x {
					s := sc.Push(x[i])
					if i < warm {
						s = math.Inf(-1)
					}
					scores[i] = s
				}
				traces[k] = Trace{Ep: epi, Scores: scores, ScoreStart: epi.StreamStart}
			}
		}(wkr)
	}
	wg.Wait()
	return traces
}

// warmSteps is the prefix during which streaming detectors may not alert:
// the long branch needs PoolLong·2 steps to produce stable states, and the
// sliding hazard window then needs Window·PoolShort further steps to flush
// hazards computed from cold states.
func (p *Pipeline) warmSteps() int {
	m := p.Cfg.Model
	return m.PoolLong*2 + m.Window*m.PoolShort
}

// detectStep returns the first step index (absolute) at which the trace's
// score exceeds the threshold at or after fromStep, or -1.
func (t *Trace) detectStep(threshold float64, fromStep int) int {
	start := fromStep - t.ScoreStart
	if start < 0 {
		start = 0
	}
	for i := start; i < len(t.Scores); i++ {
		if t.Scores[i] > threshold {
			return t.ScoreStart + i
		}
	}
	return -1
}

// MatchingBytes sums the bytes matching the canonical signature of at for
// customer ci over steps [from, to).
func (p *Pipeline) MatchingBytes(ci int, at ddos.AttackType, from, to int) float64 {
	var sum float64
	for s := from; s < to; s++ {
		if s < 0 || s >= p.Cfg.World.Steps() {
			continue
		}
		perType, _ := p.World.SignatureBytes(ci, s)
		sum += perType[at]
	}
	return sum
}

// fpDiversionSteps bounds how long a false-positive diversion scrubs
// before CScrub gives up (30 simulated minutes).
func (p *Pipeline) fpDiversionSteps() int {
	return maxI(1, int(30*time.Minute/p.Cfg.World.Step))
}

// OutcomeAt converts one trace into an AttackOutcome at the threshold.
func (p *Pipeline) OutcomeAt(t *Trace, threshold float64) metrics.AttackOutcome {
	ep := t.Ep
	out := metrics.AttackOutcome{
		Customer: p.World.Customers[ep.CustomerIdx].Addr,
		Type:     ep.Type,
	}
	timeout := p.fpDiversionSteps()
	if ep.EventIdx < 0 {
		// Benign window: any detection scrubs extraneous traffic until the
		// diversion timeout.
		if det := t.detectStep(threshold, 0); det >= 0 {
			out.Detected = true
			out.Extraneous = p.MatchingBytes(ep.CustomerIdx, ep.Type, det, det+timeout)
		}
		return out
	}
	out.Anomalous = p.MatchingBytes(ep.CustomerIdx, ep.Type, ep.AnomStart, ep.AnomEnd)
	// A diversion that sees no anomaly within the timeout is released by
	// CScrub ("CScrub … stops Xatu's detection when an attack is fully
	// mitigated", §2.6) — the detector may re-alert later. This bounds how
	// much extraneous traffic a too-early alert can cost.
	pos := ep.StreamStart
	for {
		det := t.detectStep(threshold, pos)
		if det < 0 || det >= ep.AnomEnd {
			return out
		}
		if det+timeout > ep.AnomStart {
			// The anomaly begins while this diversion is active: it sticks.
			out.Detected = true
			out.Delay = time.Duration(det-ep.AnomStart) * p.Cfg.World.Step
			scrubFrom := det
			if scrubFrom < ep.AnomStart {
				out.Extraneous += p.MatchingBytes(ep.CustomerIdx, ep.Type, scrubFrom, ep.AnomStart)
				scrubFrom = ep.AnomStart
			}
			out.ScrubbedAnomalous = p.MatchingBytes(ep.CustomerIdx, ep.Type, scrubFrom, ep.AnomEnd)
			return out
		}
		// Released without an attack: pay for the wasted diversion and allow
		// re-alerting after it ends.
		out.Extraneous += p.MatchingBytes(ep.CustomerIdx, ep.Type, det, det+timeout)
		pos = det + timeout
	}
}

// OutcomesAt maps every trace through OutcomeAt.
func (p *Pipeline) OutcomesAt(traces []Trace, threshold float64) []metrics.AttackOutcome {
	out := make([]metrics.AttackOutcome, len(traces))
	for i := range traces {
		out[i] = p.OutcomeAt(&traces[i], threshold)
	}
	return out
}

// Calibrate finds the score threshold maximizing median effectiveness
// subject to the 75th-percentile cumulative overhead staying under bound
// (§5.3). valTraces should mix attack and negative episodes.
func (p *Pipeline) Calibrate(valTraces []Trace, bound float64) (float64, error) {
	// Candidate thresholds: quantiles of all finite scores.
	var all []float64
	for i := range valTraces {
		for _, s := range valTraces[i].Scores {
			if !math.IsInf(s, 0) {
				all = append(all, s)
			}
		}
	}
	sort.Float64s(all)
	if len(all) == 0 {
		return 0, errNoScores
	}
	var cands []float64
	for q := 0.30; q < 0.9999; q += 0.02 {
		cands = append(cands, all[int(q*float64(len(all)-1))])
	}
	cands = dedupFloats(cands)

	points := make([]survCalPoint, 0, len(cands))
	for _, th := range cands {
		outs := p.OutcomesAt(valTraces, th)
		var attackOuts []metrics.AttackOutcome
		for _, o := range outs {
			if o.Anomalous > 0 || o.Extraneous > 0 {
				attackOuts = append(attackOuts, o)
			}
		}
		eff := metrics.Quantile(metrics.EffectivenessSeries(filterAttacks(outs)), 0.5)
		ov := metrics.Quantile(metrics.CumulativeOverheads(attackOuts), 0.75)
		if math.IsNaN(ov) {
			ov = 0
		}
		points = append(points, survCalPoint{th: th, eff: eff, ov: ov})
	}
	bestEff := -1.0
	for _, pt := range points {
		if pt.ov <= bound && pt.eff > bestEff {
			bestEff = pt.eff
		}
	}
	if bestEff < 0 {
		// No candidate satisfies the bound: degrade gracefully to the point
		// with the lowest overhead, breaking ties toward effectiveness.
		fallback := survCalPoint{ov: math.Inf(1), eff: -1}
		for _, pt := range points {
			if pt.ov < fallback.ov || (pt.ov == fallback.ov && pt.eff > fallback.eff) {
				fallback = pt
			}
		}
		return fallback.th, nil
	}
	// Among near-best feasible points, take the most conservative (highest)
	// threshold: it sacrifices almost no validation effectiveness and
	// generalizes better when feature distributions drift toward the test
	// period.
	best := survCalPoint{th: math.Inf(-1)}
	for _, pt := range points {
		if pt.ov <= bound && pt.eff >= bestEff-0.005 && pt.th > best.th {
			best = pt
		}
	}
	return best.th, nil
}

type survCalPoint struct{ th, eff, ov float64 }

var errNoScores = errNoScoresT{}

type errNoScoresT struct{}

func (errNoScoresT) Error() string { return "eval: no finite scores to calibrate on" }

func filterAttacks(outs []metrics.AttackOutcome) []metrics.AttackOutcome {
	var out []metrics.AttackOutcome
	for _, o := range outs {
		if o.Anomalous > 0 {
			out = append(out, o)
		}
	}
	return out
}

func dedupFloats(xs []float64) []float64 {
	sort.Float64s(xs)
	out := xs[:0]
	for i, v := range xs {
		if i == 0 || v != xs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// CDetFalsePositives returns pseudo-outcomes charging a CDet for its
// unmatched alerts inside [fromStep, toStep): each false alarm scrubs
// matching traffic from detection to mitigation end (capped at the
// diversion timeout), with no anomalous traffic to show for it.
func (p *Pipeline) CDetFalsePositives(alerts []ddos.Alert, fromStep, toStep int) []metrics.AttackOutcome {
	var out []metrics.AttackOutcome
	for _, a := range alerts {
		det := p.alertStep(a)
		if det < fromStep || det >= toStep {
			continue
		}
		if p.matchEvent(a) >= 0 {
			continue
		}
		ci := p.World.CustomerIndex(a.Sig.Victim)
		if ci < 0 {
			continue
		}
		end := p.Cfg.World.StepOf(a.MitigatedAt)
		if end > det+p.fpDiversionSteps() {
			end = det + p.fpDiversionSteps()
		}
		out = append(out, metrics.AttackOutcome{
			Customer:   a.Sig.Victim,
			Type:       a.Sig.Type,
			Detected:   true,
			Extraneous: p.MatchingBytes(ci, a.Sig.Type, det, end),
		})
	}
	return out
}

// EvaluateCDetAlerts converts a CDet's own alerts into outcomes for the
// given attack episodes (earlyShift > 0 uniformly shifts detections earlier,
// the Fig 3 thought experiment).
func (p *Pipeline) EvaluateCDetAlerts(alerts []ddos.Alert, episodes []Episode, earlyShift time.Duration) []metrics.AttackOutcome {
	shiftSteps := int(earlyShift / p.Cfg.World.Step)
	out := make([]metrics.AttackOutcome, 0, len(episodes))
	for _, ep := range episodes {
		if ep.EventIdx < 0 {
			continue
		}
		o := metrics.AttackOutcome{
			Customer: p.World.Customers[ep.CustomerIdx].Addr,
			Type:     ep.Type,
		}
		o.Anomalous = p.MatchingBytes(ep.CustomerIdx, ep.Type, ep.AnomStart, ep.AnomEnd)
		det := -1
		slack := int(10 * time.Minute / p.Cfg.World.Step)
		for _, a := range alerts {
			if a.Sig.Victim != o.Customer || a.Sig.Type != ep.Type {
				continue
			}
			s := p.alertStep(a)
			if s >= ep.AnomStart && s < ep.AnomEnd+slack {
				det = s - shiftSteps
				break
			}
		}
		if det >= 0 {
			o.Detected = true
			o.Delay = time.Duration(det-ep.AnomStart) * p.Cfg.World.Step
			scrubFrom := det
			if scrubFrom < ep.AnomStart {
				o.Extraneous = p.MatchingBytes(ep.CustomerIdx, ep.Type, scrubFrom, ep.AnomStart)
				scrubFrom = ep.AnomStart
			}
			o.ScrubbedAnomalous = p.MatchingBytes(ep.CustomerIdx, ep.Type, scrubFrom, ep.AnomEnd)
		}
		out = append(out, o)
	}
	return out
}

// AlertsFor runs the named detector over the whole horizon (cached for the
// labeler) and returns its alerts.
func (p *Pipeline) AlertsFor(name string) []ddos.Alert {
	if name == p.Cfg.Labeler {
		return p.Alerts
	}
	return p.runLabeler(name)
}

// CusumAnomalyStart re-derives an episode's anomaly onset the way the
// paper labels ground truth (Appendix A): run CUSUM over the traffic
// matching the alert signature, anchored at the CDet detection step, with
// the per-type NumStd setting (1 for UDP/DNS-amp, 0.5 for TCP/ICMP).
// Returns the onset step and whether CUSUM found a change; when it does
// not, the detection step itself is returned, matching the paper's
// fallback.
func (p *Pipeline) CusumAnomalyStart(ep Episode, detectStep int) (int, bool) {
	from := detectStep - 3*60/int(p.Cfg.World.Step.Minutes()) // three hours of context
	if from < 0 {
		from = 0
	}
	series := make([]float64, 0, detectStep-from+1)
	for s := from; s <= detectStep && s < p.Cfg.World.Steps(); s++ {
		perType, _ := p.World.SignatureBytes(ep.CustomerIdx, s)
		series = append(series, perType[ep.Type])
	}
	numStd := 1.0
	if ep.Type != ddos.UDPFlood && ep.Type != ddos.DNSAmp {
		numStd = 0.5
	}
	onset, ok := cdet.AnomalyStart(series, len(series)-1, cdet.DefaultCusum(numStd))
	return from + onset, ok
}

// RelabelWithCusum rewrites episode anomaly starts using CUSUM labeling,
// keeping the simulated truth only for episodes where CUSUM finds no
// change. This makes the pipeline's ground-truth procedure identical to
// the paper's, at the cost of small labeling noise (which the tests bound).
func (p *Pipeline) RelabelWithCusum(episodes []Episode) []Episode {
	out := make([]Episode, len(episodes))
	for i, ep := range episodes {
		out[i] = ep
		det := -1
		for _, a := range p.Alerts {
			if p.matchEvent(a) == ep.EventIdx {
				det = p.alertStep(a)
				break
			}
		}
		if det < 0 {
			continue
		}
		if onset, ok := p.CusumAnomalyStart(ep, det); ok {
			out[i].AnomStart = onset
			if out[i].AnomStart >= out[i].AnomEnd {
				out[i].AnomStart = ep.AnomStart
			}
		}
	}
	return out
}
