package eval

import (
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/metrics"
)

// fastConfig is a deliberately small pipeline for integration tests.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.World.Days = 14
	cfg.World.Step = 2 * time.Minute
	cfg.World.NumCustomers = 10
	cfg.World.NumBotnets = 5
	cfg.World.BotsPerBotnet = 40
	cfg.World.MeanAttacksPerBotnetPerWeek = 16
	cfg.World.MeanPeakMbps = 30
	cfg.TrainFrac, cfg.ValFrac, cfg.StabFrac = 0.45, 0.30, 0.05
	cfg.LookbackSteps = 120
	cfg.Model.Hidden = 10
	cfg.Model.Window = 10
	cfg.Model.PoolShort, cfg.Model.PoolMed, cfg.Model.PoolLong = 1, 5, 15
	cfg.Train.Epochs = 14
	cfg.MinTypeExamples = 6
	cfg.A4WindowDays = 3
	return cfg
}

// sharedPipeline builds one pipeline reused across tests in this package.
var sharedP *Pipeline

func pipeline(t *testing.T) *Pipeline {
	t.Helper()
	if testing.Short() {
		t.Skip("integration pipeline skipped in -short mode")
	}
	if sharedP != nil {
		return sharedP
	}
	p, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	sharedP = p
	return p
}

func TestPipelineLabelsAndSplits(t *testing.T) {
	p := pipeline(t)
	if len(p.Alerts) < 10 {
		t.Fatalf("labeler produced only %d alerts", len(p.Alerts))
	}
	if !(0 < p.TrainEnd && p.TrainEnd < p.ValEnd && p.ValEnd < p.StabEnd && p.StabEnd < p.Cfg.World.Steps()) {
		t.Fatalf("split boundaries wrong: %d %d %d", p.TrainEnd, p.ValEnd, p.StabEnd)
	}
	// Most alerts should correspond to real simulated events.
	matched := 0
	for _, a := range p.Alerts {
		if p.matchEvent(a) >= 0 {
			matched++
		}
	}
	if frac := float64(matched) / float64(len(p.Alerts)); frac < 0.7 {
		t.Fatalf("only %.0f%% of alerts match ground-truth events", frac*100)
	}
	// History must know attackers for alerted customers.
	some := false
	for _, a := range p.Alerts[:minI(5, len(p.Alerts))] {
		if p.History.AttackerCount(a.Sig.Victim, p.Cfg.World.TimeOf(p.Cfg.World.Steps())) > 0 {
			some = true
		}
	}
	if !some {
		t.Fatal("history registry has no attackers")
	}
}

func TestPipelineExamples(t *testing.T) {
	p := pipeline(t)
	ex := p.Extractor(nil, nil)
	set, err := p.BuildExamples(ex, 0, p.TrainEnd, 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.TotalPositives() < 5 {
		t.Fatalf("too few positives: %d", set.TotalPositives())
	}
	if len(set.Negatives) < set.TotalPositives()/2 {
		t.Fatalf("too few negatives: %d vs %d positives", len(set.Negatives), set.TotalPositives())
	}
	for at, exs := range set.Positives {
		for _, e := range exs {
			if len(e.X) != p.Cfg.LookbackSteps || len(e.X[0]) != 273 {
				t.Fatalf("%v: example shape %dx%d", at, len(e.X), len(e.X[0]))
			}
			if !e.Attack {
				t.Fatal("positive not labeled attack")
			}
		}
	}
}

// TestEndToEndXatuBoostsCDet is the headline integration test: train Xatu
// on CDet labels, calibrate under an overhead bound, and verify it detects
// earlier and scrubs more anomalous traffic than the CDet it boosts.
func TestEndToEndXatuBoostsCDet(t *testing.T) {
	p := pipeline(t)
	ex := p.Extractor(nil, nil)
	set, err := p.BuildExamples(ex, 0, p.TrainEnd, 1)
	if err != nil {
		t.Fatal(err)
	}
	models, err := p.TrainXatu(set, nil)
	if err != nil {
		t.Fatal(err)
	}

	valEps := p.MatchedEpisodes(p.TrainEnd, p.ValEnd)
	valNegs := p.NegativeEpisodes(2*len(valEps), p.TrainEnd, p.ValEnd, 2)
	valTraces := p.TraceEpisodes(ex, append(valEps, valNegs...), models.XatuScorer)
	th, err := p.Calibrate(valTraces, 0.40)
	if err != nil {
		t.Fatal(err)
	}

	testEps := p.MatchedEpisodes(p.StabEnd, p.Cfg.World.Steps())
	if len(testEps) < 5 {
		t.Fatalf("too few test episodes: %d", len(testEps))
	}
	xatuTraces := p.TraceEpisodes(ex, testEps, models.XatuScorer)
	xatuOuts := p.OutcomesAt(xatuTraces, th)
	cdetOuts := p.EvaluateCDetAlerts(p.Alerts, testEps, 0)

	xEff := metrics.Quantile(metrics.EffectivenessSeries(xatuOuts), 0.5)
	cEff := metrics.Quantile(metrics.EffectivenessSeries(cdetOuts), 0.5)
	xDelay := metrics.Quantile(metrics.DelaySeries(xatuOuts, 30*time.Minute), 0.5)
	cDelay := metrics.Quantile(metrics.DelaySeries(cdetOuts, 30*time.Minute), 0.5)
	t.Logf("median effectiveness: xatu=%.2f cdet=%.2f; median delay (min): xatu=%.1f cdet=%.1f; threshold=%.4f",
		xEff, cEff, xDelay, cDelay, th)

	if !(xEff > cEff) {
		t.Errorf("Xatu effectiveness %.3f not above CDet %.3f", xEff, cEff)
	}
	if !(xDelay < cDelay) {
		t.Errorf("Xatu delay %.1f not below CDet %.1f", xDelay, cDelay)
	}
	// Overhead stays bounded-ish on test data (the bound is enforced on
	// validation; test drift is allowed limited slack).
	ov := metrics.Quantile(metrics.CumulativeOverheads(xatuOuts), 0.75)
	if ov > 0.5 {
		t.Errorf("overhead blew up: %.3f", ov)
	}
}

func TestTraceDeterminism(t *testing.T) {
	p := pipeline(t)
	ex := p.Extractor(nil, nil)
	eps := p.Episodes(p.StabEnd, p.Cfg.World.Steps())
	if len(eps) == 0 {
		t.Skip("no test episodes")
	}
	eps = eps[:1]
	set, err := p.BuildExamples(ex, 0, p.TrainEnd, 1)
	if err != nil {
		t.Fatal(err)
	}
	models, err := p.TrainXatu(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	t1 := p.TraceEpisodes(ex, eps, models.XatuScorer)
	t2 := p.TraceEpisodes(ex, eps, models.XatuScorer)
	for i := range t1[0].Scores {
		if t1[0].Scores[i] != t2[0].Scores[i] {
			t.Fatal("traces must be deterministic")
		}
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
