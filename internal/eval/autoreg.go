package eval

import (
	"fmt"
	"sort"
	"time"

	"github.com/xatu-go/xatu/internal/attackhist"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/metrics"
)

// AutoRegressiveEvaluate runs the test period the way §5.3 describes: the
// attack-history features (A2/A4/A5) are computed from a registry that
// contains CDet-derived history only up to the end of validation; from
// there on, Xatu's *own* detections are fed back ("we use Xatu in an
// auto-regressive fashion, where the model takes into account its own
// previous early detection at each time step"). Episodes between ValEnd
// and StabEnd warm the registry but are excluded from the returned
// outcomes (the paper's stabilization period).
//
// threshold is the (already calibrated) score threshold. Episodes are
// processed chronologically; each detection inserts an alert and its
// matching attack sources into the registry before later episodes are
// traced.
func (p *Pipeline) AutoRegressiveEvaluate(models *Models, threshold float64) []metrics.AttackOutcome {
	// Seed registry: labeler alerts detected before the validation end.
	reg := attackhist.NewRegistry()
	for _, a := range p.Alerts {
		if p.alertStep(a) >= p.ValEnd {
			continue
		}
		reg.RecordAlert(a)
		p.recordAttackers(reg, a)
	}
	ex := p.Extractor(nil, reg)

	episodes := p.MatchedEpisodes(p.ValEnd, p.Cfg.World.Steps())
	sort.Slice(episodes, func(i, j int) bool { return episodes[i].AnomStart < episodes[j].AnomStart })

	var outcomes []metrics.AttackOutcome
	for i := range episodes {
		ep := episodes[i]
		// Trace this episode with the registry as it stands now.
		traces := p.TraceEpisodes(ex, []Episode{ep}, models.XatuScorer)
		o := p.OutcomeAt(&traces[0], threshold)
		if ep.AnomStart >= p.StabEnd {
			outcomes = append(outcomes, o)
		}
		if !o.Detected {
			continue
		}
		// Feed the detection back: the alert plus its attack sources become
		// history for every later episode.
		detStep := ep.AnomStart + int(o.Delay/p.Cfg.World.Step)
		alert := ddos.Alert{
			Sig:         ddos.SignatureFor(ep.Type, p.World.Customers[ep.CustomerIdx].Addr),
			DetectedAt:  p.Cfg.World.TimeOf(detStep),
			MitigatedAt: p.Cfg.World.TimeOf(ep.AnomEnd),
			Source:      "xatu",
			Severity:    severityOf(p, ep),
		}
		reg.RecordAlert(alert)
		p.recordAttackersWindow(reg, alert.Sig, ep.CustomerIdx, maxI(detStep, ep.AnomStart), ep.AnomEnd)
	}
	return outcomes
}

// severityOf buckets an episode's peak matching rate.
func severityOf(p *Pipeline, ep Episode) ddos.Severity {
	var peak float64
	for s := ep.AnomStart; s < ep.AnomEnd && s < p.Cfg.World.Steps(); s++ {
		perType, _ := p.World.SignatureBytes(ep.CustomerIdx, s)
		mbps := perType[ep.Type] * 8 / 1e6 / p.Cfg.World.Step.Seconds()
		if mbps > peak {
			peak = mbps
		}
	}
	return ddos.SeverityFromPeakMbps(peak)
}

// recordAttackersWindow registers sources matching sig over [from, to).
func (p *Pipeline) recordAttackersWindow(reg *attackhist.Registry, sig ddos.Signature, ci, from, to int) {
	for s := from; s < to && s < p.Cfg.World.Steps(); s++ {
		at := p.Cfg.World.TimeOf(s)
		for _, r := range p.World.FlowsAt(ci, s) {
			if sig.Matches(r) {
				reg.RecordAttacker(sig.Victim, r.Src, at)
			}
		}
	}
}

// ExtAutoRegressive is an extension experiment beyond the paper's figures:
// it compares the default evaluation (CDet-derived history features
// throughout) against the §5.3 autoregressive mode (Xatu's own detections
// feed the test-time history). The paper's evaluation runs autoregressively;
// this table quantifies how much that choice matters at our scale.
func ExtAutoRegressive(c *MLContext, bound float64) (*Result, error) {
	res := &Result{
		ID:     "ext-autoreg",
		Title:  "History feedback: CDet-derived vs autoregressive (§5.3)",
		Header: []string{"mode", "eff-p10", "eff-p50", "eff-p90", "delay-p50"},
	}
	base, err := c.XatuAt(bound)
	if err != nil {
		return nil, err
	}
	row := func(name string, outs []metrics.AttackOutcome) []string {
		eff := metrics.Summarize(metrics.EffectivenessSeries(outs))
		del := metrics.Quantile(metrics.DelaySeries(outs, c.missPenalty()), 0.5)
		return []string{name, pct(eff.P10), pct(eff.P50), pct(eff.P90), f1(del)}
	}
	res.Rows = append(res.Rows, row("cdet-history", base.Attacks))
	ar := c.P.AutoRegressiveEvaluate(c.Models, base.Threshold)
	res.Rows = append(res.Rows, row("autoregressive", ar))
	res.Notes = append(res.Notes,
		"autoregressive mode excludes the stabilization prefix "+
			time.Duration(float64(c.P.StabEnd-c.P.ValEnd)*float64(c.P.Cfg.World.Step)).String()+
			" after validation")
	return res, nil
}

// ExtEntropyBaseline is an extension experiment: it adds the statistical
// entropy detector (related work [21]) to the headline comparison at one
// overhead bound, alongside the two commercial-style detectors and Xatu.
func ExtEntropyBaseline(c *MLContext, bound float64) (*Result, error) {
	res := &Result{
		ID:    "ext-entropy",
		Title: "Entropy-profile baseline vs threshold CDets vs Xatu",
		Header: []string{"system", "eff-p10", "eff-p50", "eff-p90",
			"delay-p50", "detected"},
	}
	xatu, err := c.XatuAt(bound)
	if err != nil {
		return nil, err
	}
	systems := []SystemOutcomes{
		c.CDet("netscout"),
		c.CDet("fastnetmon"),
		{Name: "entropy", Attacks: c.P.EvaluateCDetAlerts(c.P.AlertsFor("entropy"), c.TestEps, 0)},
		xatu,
	}
	for _, s := range systems {
		eff := metrics.Summarize(metrics.EffectivenessSeries(s.Attacks))
		del := metrics.Quantile(metrics.DelaySeries(s.Attacks, c.missPenalty()), 0.5)
		detected := 0
		for _, o := range s.Attacks {
			if o.Detected {
				detected++
			}
		}
		res.Rows = append(res.Rows, []string{
			s.Name, pct(eff.P10), pct(eff.P50), pct(eff.P90), f1(del),
			fmt.Sprintf("%d/%d", detected, len(s.Attacks)),
		})
	}
	return res, nil
}

// ExtCusumGroundTruth is an extension experiment: it re-derives every test
// episode's anomaly start with the paper's CUSUM procedure (Appendix A)
// instead of using the simulator's exact truth, and reports how much the
// headline metrics move. In the paper CUSUM *is* the ground truth; here it
// validates that our metrics are robust to that labeling choice.
func ExtCusumGroundTruth(c *MLContext, bound float64) (*Result, error) {
	res := &Result{
		ID:     "ext-cusum",
		Title:  "Ground-truth labeling: simulated truth vs CUSUM (Appendix A)",
		Header: []string{"labeling", "xatu-eff-p50", "xatu-delay-p50", "cdet-eff-p50", "moved-labels"},
	}
	th, err := c.P.Calibrate(c.xatuVal, bound)
	if err != nil {
		return nil, err
	}
	relabeled := c.P.RelabelWithCusum(c.TestEps)
	moved := 0
	for i := range relabeled {
		if relabeled[i].AnomStart != c.TestEps[i].AnomStart {
			moved++
		}
		relabeled[i].StreamStart = relabeled[i].AnomStart - c.P.Cfg.LookbackSteps
	}
	for _, variant := range []struct {
		name string
		eps  []Episode
	}{{"simulated", c.TestEps}, {"cusum", relabeled}} {
		traces := c.P.TraceEpisodes(c.Ex, variant.eps, c.Models.XatuScorer)
		outs := c.P.OutcomesAt(traces, th)
		cdet := c.P.EvaluateCDetAlerts(c.P.Alerts, variant.eps, 0)
		res.Rows = append(res.Rows, []string{
			variant.name,
			pct(metrics.Quantile(metrics.EffectivenessSeries(outs), 0.5)),
			f1(metrics.Quantile(metrics.DelaySeries(outs, c.missPenalty()), 0.5)),
			pct(metrics.Quantile(metrics.EffectivenessSeries(cdet), 0.5)),
			fmt.Sprintf("%d/%d", moved, len(relabeled)),
		})
	}
	return res, nil
}
