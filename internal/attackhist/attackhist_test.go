package attackhist

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/ddos"
)

var (
	t0 = time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	c1 = netip.MustParseAddr("23.1.1.1")
	c2 = netip.MustParseAddr("23.1.1.2")
	c3 = netip.MustParseAddr("23.1.1.3")
	a1 = netip.MustParseAddr("11.0.0.1")
	a2 = netip.MustParseAddr("11.0.0.2")
	a3 = netip.MustParseAddr("11.0.0.3")
)

func alert(victim netip.Addr, at ddos.AttackType, sev ddos.Severity, detected time.Time) ddos.Alert {
	return ddos.Alert{
		Sig:         ddos.SignatureFor(at, victim),
		DetectedAt:  detected,
		MitigatedAt: detected.Add(10 * time.Minute),
		Severity:    sev,
		Source:      "test",
	}
}

func TestWasAttackerTimeAware(t *testing.T) {
	r := NewRegistry()
	r.RecordAttacker(c1, a1, t0)
	if r.WasAttacker(c1, a1, t0) {
		t.Fatal("not an attacker strictly before its first observation")
	}
	if !r.WasAttacker(c1, a1, t0.Add(time.Minute)) {
		t.Fatal("must be an attacker after first observation")
	}
	if r.WasAttacker(c2, a1, t0.Add(time.Hour)) {
		t.Fatal("A2 is per-customer; other customers must not match")
	}
}

func TestRecordAttackerKeepsEarliest(t *testing.T) {
	r := NewRegistry()
	r.RecordAttacker(c1, a1, t0.Add(time.Hour))
	r.RecordAttacker(c1, a1, t0) // earlier observation arrives late
	if !r.WasAttacker(c1, a1, t0.Add(time.Minute)) {
		t.Fatal("earliest observation must win")
	}
}

func TestAttackerCount(t *testing.T) {
	r := NewRegistry()
	r.RecordAttacker(c1, a1, t0)
	r.RecordAttacker(c1, a2, t0.Add(2*time.Hour))
	if got := r.AttackerCount(c1, t0.Add(time.Hour)); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if got := r.AttackerCount(c1, t0.Add(3*time.Hour)); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestAlertsBeforeSortedAndFiltered(t *testing.T) {
	r := NewRegistry()
	// Insert out of order.
	r.RecordAlert(alert(c1, ddos.UDPFlood, ddos.SeverityLow, t0.Add(2*time.Hour)))
	r.RecordAlert(alert(c1, ddos.TCPSYN, ddos.SeverityHigh, t0))
	r.RecordAlert(alert(c1, ddos.UDPFlood, ddos.SeverityMedium, t0.Add(time.Hour)))

	got := r.AlertsBefore(c1, t0.Add(90*time.Minute))
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	if got[0].Sig.Type != ddos.TCPSYN || got[1].Sig.Type != ddos.UDPFlood {
		t.Fatalf("order wrong: %v then %v", got[0].Sig.Type, got[1].Sig.Type)
	}
}

func TestSeverityHistogram(t *testing.T) {
	r := NewRegistry()
	r.RecordAlert(alert(c1, ddos.UDPFlood, ddos.SeverityLow, t0))
	r.RecordAlert(alert(c1, ddos.UDPFlood, ddos.SeverityLow, t0.Add(time.Hour)))
	r.RecordAlert(alert(c1, ddos.DNSAmp, ddos.SeverityHigh, t0.Add(2*time.Hour)))
	// Outside the window:
	r.RecordAlert(alert(c1, ddos.ICMPFlood, ddos.SeverityLow, t0.Add(-100*time.Hour)))

	h := r.SeverityHistogram(c1, t0.Add(3*time.Hour), 24*time.Hour)
	if len(h) != 18 {
		t.Fatalf("A4 block must have 18 features, got %d", len(h))
	}
	idxUDPLow := int(ddos.UDPFlood)*3 + int(ddos.SeverityLow)
	idxDNSHigh := int(ddos.DNSAmp)*3 + int(ddos.SeverityHigh)
	idxICMPLow := int(ddos.ICMPFlood)*3 + int(ddos.SeverityLow)
	if h[idxUDPLow] != 2 || h[idxDNSHigh] != 1 || h[idxICMPLow] != 0 {
		t.Fatalf("histogram wrong: %v", h)
	}
	var total float64
	for _, v := range h {
		total += v
	}
	if total != 3 {
		t.Fatalf("total = %v, want 3", total)
	}
}

func TestTransitionMatrix(t *testing.T) {
	r := NewRegistry()
	// c1: UDP → UDP → DNSAmp ; c2: SYN → RST
	r.RecordAlert(alert(c1, ddos.UDPFlood, ddos.SeverityLow, t0))
	r.RecordAlert(alert(c1, ddos.UDPFlood, ddos.SeverityLow, t0.Add(time.Hour)))
	r.RecordAlert(alert(c1, ddos.DNSAmp, ddos.SeverityLow, t0.Add(2*time.Hour)))
	r.RecordAlert(alert(c2, ddos.TCPSYN, ddos.SeverityLow, t0))
	r.RecordAlert(alert(c2, ddos.TCPRST, ddos.SeverityLow, t0.Add(time.Hour)))

	m := r.TransitionMatrix(t0.Add(24 * time.Hour))
	if m[ddos.UDPFlood][ddos.UDPFlood] != 1 || m[ddos.UDPFlood][ddos.DNSAmp] != 1 ||
		m[ddos.TCPSYN][ddos.TCPRST] != 1 {
		t.Fatalf("matrix wrong: %v", m)
	}
	// Transitions after the as-of time must not count.
	m2 := r.TransitionMatrix(t0.Add(90 * time.Minute))
	if m2[ddos.UDPFlood][ddos.DNSAmp] != 0 {
		t.Fatal("as-of filtering failed")
	}
}

func TestClusteringVariants(t *testing.T) {
	r := NewRegistry()
	// c1 attacked by {a1,a2}, c2 by {a1}, c3 by {a3} — all within window.
	r.RecordAttacker(c1, a1, t0)
	r.RecordAttacker(c1, a2, t0)
	r.RecordAttacker(c2, a1, t0)
	r.RecordAttacker(c3, a3, t0)
	at := t0.Add(time.Hour)
	w := 2 * time.Hour

	// c1 vs c2: inter=1, union=2, min=1, max=2. c1 vs c3: no overlap (skipped).
	if got := r.Clustering(c1, at, w, ClusteringDot); got != 0.5 {
		t.Fatalf("dot = %v, want 0.5", got)
	}
	if got := r.Clustering(c1, at, w, ClusteringMin); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	if got := r.Clustering(c1, at, w, ClusteringMax); got != 0.5 {
		t.Fatalf("max = %v, want 0.5", got)
	}
	// c3 shares no attacker with anyone.
	if got := r.Clustering(c3, at, w, ClusteringDot); got != 0 {
		t.Fatalf("isolated customer must have 0, got %v", got)
	}
	// Unknown customer.
	if got := r.Clustering(netip.MustParseAddr("9.9.9.9"), at, w, ClusteringDot); got != 0 {
		t.Fatalf("unknown customer must have 0, got %v", got)
	}
}

func TestClusteringWindowFiltering(t *testing.T) {
	r := NewRegistry()
	r.RecordAttacker(c1, a1, t0)
	r.RecordAttacker(c2, a1, t0.Add(-48*time.Hour)) // outside window
	got := r.Clustering(c1, t0.Add(time.Hour), 2*time.Hour, ClusteringDot)
	if got != 0 {
		t.Fatalf("stale observations must not contribute, got %v", got)
	}
}

func TestClusteringGrowsAsAttackersConverge(t *testing.T) {
	// The Fig 16 behaviour: as the same attackers hit more customers, the
	// coefficient rises.
	r := NewRegistry()
	r.RecordAttacker(c1, a1, t0)
	r.RecordAttacker(c1, a2, t0)
	r.RecordAttacker(c2, a1, t0.Add(5*time.Minute))
	before := r.Clustering(c1, t0.Add(6*time.Minute), time.Hour, ClusteringDot)
	r.RecordAttacker(c2, a2, t0.Add(10*time.Minute))
	after := r.Clustering(c1, t0.Add(11*time.Minute), time.Hour, ClusteringDot)
	if !(after > before) {
		t.Fatalf("coefficient must grow: before %v after %v", before, after)
	}
}

func TestCustomersDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.RecordAttacker(c2, a1, t0)
	r.RecordAttacker(c1, a1, t0)
	got := r.Customers()
	if len(got) != 2 || got[0] != c1 || got[1] != c2 {
		t.Fatalf("got %v", got)
	}
}

func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := netip.AddrFrom4([4]byte{23, 0, 0, byte(g + 1)})
			for i := 0; i < 100; i++ {
				r.RecordAttacker(c, netip.AddrFrom4([4]byte{11, 0, byte(g), byte(i + 1)}), t0)
				r.RecordAlert(alert(c, ddos.UDPFlood, ddos.SeverityLow, t0.Add(time.Duration(i)*time.Minute)))
				r.WasAttacker(c, a1, t0)
				r.Clustering(c, t0.Add(time.Hour), time.Hour, ClusteringDot)
			}
		}(g)
	}
	wg.Wait()
	if len(r.Customers()) != 8 {
		t.Fatalf("customers = %d", len(r.Customers()))
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := NewRegistry()
	r.RecordAttacker(c1, a1, t0)
	r.RecordAlert(alert(c1, ddos.UDPFlood, ddos.SeverityLow, t0))
	c := r.Clone()
	c.RecordAttacker(c1, a2, t0)
	c.RecordAlert(alert(c1, ddos.DNSAmp, ddos.SeverityLow, t0.Add(time.Hour)))
	if r.WasAttacker(c1, a2, t0.Add(time.Minute)) {
		t.Fatal("clone writes leaked into the original")
	}
	if len(r.AlertsBefore(c1, t0.Add(2*time.Hour))) != 1 {
		t.Fatal("clone alert leaked into the original")
	}
	if !c.WasAttacker(c1, a1, t0.Add(time.Minute)) {
		t.Fatal("clone must carry original data")
	}
}
