package attackhist

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/ddos"
)

func TestPersistRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.RecordAttacker(c1, a1, t0)
	r.RecordAttacker(c1, a1, t0.Add(3*time.Hour)) // extends last-seen
	r.RecordAttacker(c2, a2, t0.Add(time.Hour))
	r.RecordAlert(alert(c1, ddos.UDPFlood, ddos.SeverityHigh, t0))
	r.RecordAlert(alert(c2, ddos.TCPSYN, ddos.SeverityLow, t0.Add(2*time.Hour)))

	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	if err := r2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !r2.WasAttacker(c1, a1, t0.Add(time.Minute)) || !r2.WasAttacker(c2, a2, t0.Add(2*time.Hour)) {
		t.Fatal("attackers lost in round trip")
	}
	// Last-seen must survive: clustering with a window anchored after the
	// re-observation still sees the pair.
	if len(r2.neighborhoodLocked(c1, t0.Add(2*time.Hour), t0.Add(4*time.Hour))) != 1 {
		t.Fatal("last-seen time lost in round trip")
	}
	alerts := r2.AlertsBefore(c1, t0.Add(24*time.Hour))
	if len(alerts) != 1 || alerts[0].Sig.Type != ddos.UDPFlood || alerts[0].Severity != ddos.SeverityHigh {
		t.Fatalf("alerts lost: %+v", alerts)
	}
}

func TestPersistDeterministicOutput(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry()
		r.RecordAttacker(c2, a3, t0)
		r.RecordAttacker(c1, a2, t0)
		r.RecordAttacker(c1, a1, t0)
		r.RecordAlert(alert(c1, ddos.DNSAmp, ddos.SeverityLow, t0))
		return r
	}
	var b1, b2 bytes.Buffer
	if err := mk().Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := mk().Save(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("snapshots must be deterministic")
	}
}

func TestPersistRejectsGarbage(t *testing.T) {
	for name, input := range map[string]string{
		"empty":      "",
		"bad-header": "{\"format\":\"wrong\"}\n",
		"bad-json":   "{\"format\":\"xatu-attackhist-1\"}\nnot json\n",
		"bad-kind":   "{\"format\":\"xatu-attackhist-1\"}\n{\"k\":\"mystery\"}\n",
		"bad-addr":   "{\"format\":\"xatu-attackhist-1\"}\n{\"k\":\"attacker\",\"customer\":\"x\",\"src\":\"y\"}\n",
		"bad-type":   "{\"format\":\"xatu-attackhist-1\"}\n{\"k\":\"alert\",\"victim\":\"23.1.1.1\",\"type\":99}\n",
	} {
		r := NewRegistry()
		if err := r.Load(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestPersistMergesIntoExisting(t *testing.T) {
	r := NewRegistry()
	r.RecordAttacker(c1, a1, t0)
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	r2.RecordAttacker(c3, a3, t0)
	if err := r2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !r2.WasAttacker(c1, a1, t0.Add(time.Minute)) || !r2.WasAttacker(c3, a3, t0.Add(time.Minute)) {
		t.Fatal("merge must keep both old and loaded entries")
	}
}
