package attackhist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"github.com/xatu-go/xatu/internal/ddos"
)

// The persistence format is JSON lines: a header line, then one line per
// attacker-pair and one per alert. It is human-inspectable and append-
// friendly, which suits a registry that only grows during deployment.

type persistHeader struct {
	Format string `json:"format"`
}

type persistAttacker struct {
	Kind     string    `json:"k"` // "attacker"
	Customer string    `json:"customer"`
	Src      string    `json:"src"`
	First    time.Time `json:"first"`
	Last     time.Time `json:"last"`
}

type persistAlert struct {
	Kind        string    `json:"k"` // "alert"
	Victim      string    `json:"victim"`
	Type        int       `json:"type"`
	Severity    int       `json:"severity"`
	Source      string    `json:"source"`
	DetectedAt  time.Time `json:"detected"`
	MitigatedAt time.Time `json:"mitigated"`
}

const persistFormat = "xatu-attackhist-1"

// Save serializes the registry. The output is deterministic (customers
// and sources in address order) so snapshots diff cleanly.
func (r *Registry) Save(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(persistHeader{Format: persistFormat}); err != nil {
		return err
	}
	for _, customer := range r.customersLocked() {
		srcs := make([]netip.Addr, 0, len(r.attackers[customer]))
		for s := range r.attackers[customer] {
			srcs = append(srcs, s)
		}
		sortAddrs(srcs)
		for _, s := range srcs {
			sp := r.attackers[customer][s]
			if err := enc.Encode(persistAttacker{
				Kind: "attacker", Customer: customer.String(), Src: s.String(),
				First: sp.first, Last: sp.last,
			}); err != nil {
				return err
			}
		}
	}
	for _, customer := range r.alertCustomersLocked() {
		for _, a := range r.alerts[customer] {
			if err := enc.Encode(persistAlert{
				Kind: "alert", Victim: a.Sig.Victim.String(), Type: int(a.Sig.Type),
				Severity: int(a.Severity), Source: a.Source,
				DetectedAt: a.DetectedAt, MitigatedAt: a.MitigatedAt,
			}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a snapshot written by Save into the registry, merging with
// any existing contents.
func (r *Registry) Load(rd io.Reader) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return fmt.Errorf("attackhist: empty snapshot")
	}
	var hdr persistHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Format != persistFormat {
		return fmt.Errorf("attackhist: unrecognized snapshot header")
	}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		var kind struct {
			Kind string `json:"k"`
		}
		if err := json.Unmarshal(sc.Bytes(), &kind); err != nil {
			return fmt.Errorf("attackhist: line %d: %v", lineNo, err)
		}
		switch kind.Kind {
		case "attacker":
			var pa persistAttacker
			if err := json.Unmarshal(sc.Bytes(), &pa); err != nil {
				return fmt.Errorf("attackhist: line %d: %v", lineNo, err)
			}
			customer, err := netip.ParseAddr(pa.Customer)
			if err != nil {
				return fmt.Errorf("attackhist: line %d: %v", lineNo, err)
			}
			src, err := netip.ParseAddr(pa.Src)
			if err != nil {
				return fmt.Errorf("attackhist: line %d: %v", lineNo, err)
			}
			r.RecordAttacker(customer, src, pa.First)
			if pa.Last.After(pa.First) {
				r.RecordAttacker(customer, src, pa.Last)
			}
		case "alert":
			var pl persistAlert
			if err := json.Unmarshal(sc.Bytes(), &pl); err != nil {
				return fmt.Errorf("attackhist: line %d: %v", lineNo, err)
			}
			victim, err := netip.ParseAddr(pl.Victim)
			if err != nil {
				return fmt.Errorf("attackhist: line %d: %v", lineNo, err)
			}
			if pl.Type < 0 || pl.Type >= int(ddos.NumAttackTypes) {
				return fmt.Errorf("attackhist: line %d: bad attack type %d", lineNo, pl.Type)
			}
			r.RecordAlert(ddos.Alert{
				Sig:         ddos.SignatureFor(ddos.AttackType(pl.Type), victim),
				DetectedAt:  pl.DetectedAt,
				MitigatedAt: pl.MitigatedAt,
				Severity:    ddos.Severity(pl.Severity),
				Source:      pl.Source,
			})
		default:
			return fmt.Errorf("attackhist: line %d: unknown record kind %q", lineNo, kind.Kind)
		}
	}
	return sc.Err()
}

// customersLocked returns attacker-map customers in address order.
func (r *Registry) customersLocked() []netip.Addr {
	out := make([]netip.Addr, 0, len(r.attackers))
	for c := range r.attackers {
		out = append(out, c)
	}
	sortAddrs(out)
	return out
}

// alertCustomersLocked returns alert-map customers in address order.
func (r *Registry) alertCustomersLocked() []netip.Addr {
	out := make([]netip.Addr, 0, len(r.alerts))
	for c := range r.alerts {
		out = append(out, c)
	}
	sortAddrs(out)
	return out
}

func sortAddrs(s []netip.Addr) {
	sort.Slice(s, func(i, j int) bool { return s[i].Less(s[j]) })
}
