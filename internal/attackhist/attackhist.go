// Package attackhist maintains the attack-history state behind three of
// Xatu's auxiliary signals (§3.2–§3.3):
//
//   - A2: per-customer sets of previous attack sources, built from traffic
//     matching alert signatures between detection and mitigation-end;
//   - A4: per-customer history of attack types and severities;
//   - A5: cross-customer attack correlation, measured with the bipartite
//     clustering coefficients of Latapy et al. in their dot/min/max variants.
//
// The registry is time-aware: every query takes an as-of instant so that
// historical feature extraction sees only information that was available
// at that minute.
package attackhist

import (
	"net/netip"
	"sort"
	"sync"
	"time"

	"github.com/xatu-go/xatu/internal/ddos"
)

// Registry is a thread-safe attack-history store.
type Registry struct {
	mu sync.RWMutex
	// attackers[customer][src] = first and last times src attacked customer
	attackers map[netip.Addr]map[netip.Addr]span
	// alerts[customer] = alerts sorted by detection time
	alerts map[netip.Addr][]ddos.Alert
}

// span is the [first, last] observation interval of one attacker-customer
// pair.
type span struct {
	first, last time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		attackers: make(map[netip.Addr]map[netip.Addr]span),
		alerts:    make(map[netip.Addr][]ddos.Alert),
	}
}

// RecordAlert appends an alert to the victim's history. Alerts may arrive
// out of order; the history is kept sorted by detection time.
func (r *Registry) RecordAlert(a ddos.Alert) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := a.Sig.Victim
	s := r.alerts[v]
	s = append(s, a)
	// Insertion into an almost-sorted slice: bubble the new alert back.
	for i := len(s) - 1; i > 0 && s[i].DetectedAt.Before(s[i-1].DetectedAt); i-- {
		s[i], s[i-1] = s[i-1], s[i]
	}
	r.alerts[v] = s
}

// RecordAttacker marks src as an attack source against customer, first
// observed at t. Later observations of the same pair keep the earlier time.
func (r *Registry) RecordAttacker(customer, src netip.Addr, t time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.attackers[customer]
	if m == nil {
		m = make(map[netip.Addr]span)
		r.attackers[customer] = m
	}
	old, ok := m[src]
	if !ok {
		m[src] = span{first: t, last: t}
		return
	}
	if t.Before(old.first) {
		old.first = t
	}
	if t.After(old.last) {
		old.last = t
	}
	m[src] = old
}

// HasAttackers reports whether any source is recorded as having attacked
// customer at any time. Extraction hoists this out of its per-flow loop:
// a customer with no history answers every A2 membership test false.
func (r *Registry) HasAttackers(customer netip.Addr) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.attackers[customer]) > 0
}

// WasAttacker reports whether src had attacked customer strictly before t
// (the A2 membership test).
func (r *Registry) WasAttacker(customer, src netip.Addr, t time.Time) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sp, ok := r.attackers[customer][src]
	return ok && sp.first.Before(t)
}

// AttackerCount returns the number of sources known to have attacked
// customer before t.
func (r *Registry) AttackerCount(customer netip.Addr, t time.Time) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, sp := range r.attackers[customer] {
		if sp.first.Before(t) {
			n++
		}
	}
	return n
}

// AlertsBefore returns the customer's alerts detected strictly before t,
// oldest first.
func (r *Registry) AlertsBefore(customer netip.Addr, t time.Time) []ddos.Alert {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := r.alerts[customer]
	i := sort.Search(len(s), func(i int) bool { return !s[i].DetectedAt.Before(t) })
	out := make([]ddos.Alert, i)
	copy(out, s[:i])
	return out
}

// SeverityHistogram returns the A4 feature block as of time t: for each of
// the 6 attack types × 3 severities, the number of alerts against customer
// in the window [t−window, t). Flattened row-major by (type, severity) into
// 18 values.
func (r *Registry) SeverityHistogram(customer netip.Addr, t time.Time, window time.Duration) [int(ddos.NumAttackTypes) * int(ddos.NumSeverities)]float64 {
	var out [int(ddos.NumAttackTypes) * int(ddos.NumSeverities)]float64
	lo := t.Add(-window)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, a := range r.alerts[customer] {
		if a.DetectedAt.Before(lo) || !a.DetectedAt.Before(t) {
			continue
		}
		idx := int(a.Sig.Type)*int(ddos.NumSeverities) + int(a.Severity)
		if idx >= 0 && idx < len(out) {
			out[idx]++
		}
	}
	return out
}

// TransitionMatrix counts, over all customers, how often an attack of type
// i was followed (as the next attack on the same customer, before t) by an
// attack of type j. This is Figure 4(b).
func (r *Registry) TransitionMatrix(t time.Time) [ddos.NumAttackTypes][ddos.NumAttackTypes]int {
	var m [ddos.NumAttackTypes][ddos.NumAttackTypes]int
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, alerts := range r.alerts {
		var prev *ddos.Alert
		for i := range alerts {
			if !alerts[i].DetectedAt.Before(t) {
				break
			}
			if prev != nil {
				m[prev.Sig.Type][alerts[i].Sig.Type]++
			}
			prev = &alerts[i]
		}
	}
	return m
}

// Customers returns all customers with any recorded attacker, in
// deterministic (address) order.
func (r *Registry) Customers() []netip.Addr {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]netip.Addr, 0, len(r.attackers))
	for c := range r.attackers {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// ClusteringVariant selects one of the three bipartite clustering
// coefficient definitions from Latapy et al. used by the A5 features.
type ClusteringVariant int

// The three variants listed in Table 1 ("dot, min, max").
const (
	ClusteringDot ClusteringVariant = iota // |N(u)∩N(v)| / |N(u)∪N(v)|
	ClusteringMin                          // |N(u)∩N(v)| / min(|N(u)|,|N(v)|)
	ClusteringMax                          // |N(u)∩N(v)| / max(|N(u)|,|N(v)|)
)

// Clustering computes the bipartite clustering coefficient of customer in
// the attacker–customer graph restricted to attacker observations in
// [t−window, t): the mean pairwise coefficient between customer and every
// other customer sharing at least one attacker. Customers sharing no
// attacker with anyone get 0.
func (r *Registry) Clustering(customer netip.Addr, t time.Time, window time.Duration, v ClusteringVariant) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	lo := t.Add(-window)
	mine := r.neighborhoodLocked(customer, lo, t)
	if len(mine) == 0 {
		return 0
	}
	var sum float64
	var n int
	for other := range r.attackers {
		if other == customer {
			continue
		}
		theirs := r.neighborhoodLocked(other, lo, t)
		if len(theirs) == 0 {
			continue
		}
		inter := 0
		for a := range mine {
			if _, ok := theirs[a]; ok {
				inter++
			}
		}
		if inter == 0 {
			continue
		}
		var denom int
		switch v {
		case ClusteringMin:
			denom = min(len(mine), len(theirs))
		case ClusteringMax:
			denom = max(len(mine), len(theirs))
		default: // ClusteringDot = Jaccard
			denom = len(mine) + len(theirs) - inter
		}
		sum += float64(inter) / float64(denom)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// neighborhoodLocked returns the attackers active against customer in
// [lo, hi): pairs whose observation interval intersects the window. Caller
// holds at least the read lock.
func (r *Registry) neighborhoodLocked(customer netip.Addr, lo, hi time.Time) map[netip.Addr]struct{} {
	var out map[netip.Addr]struct{} // lazily allocated: empty neighborhoods are the common case and must cost nothing
	for src, sp := range r.attackers[customer] {
		if sp.first.Before(hi) && !sp.last.Before(lo) {
			if out == nil {
				out = make(map[netip.Addr]struct{}, len(r.attackers[customer]))
			}
			out[src] = struct{}{}
		}
	}
	return out
}

// Clone returns a deep copy of the registry. The autoregressive evaluation
// mode uses a clone so Xatu's own test-time detections can be recorded
// without polluting the shared CDet-derived history.
func (r *Registry) Clone() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := NewRegistry()
	for c, m := range r.attackers {
		nm := make(map[netip.Addr]span, len(m))
		for a, sp := range m {
			nm[a] = sp
		}
		out.attackers[c] = nm
	}
	for c, s := range r.alerts {
		out.alerts[c] = append([]ddos.Alert(nil), s...)
	}
	return out
}
