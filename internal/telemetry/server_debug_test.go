package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHandleLateRegistration pins the bolt-on contract for Handle: a
// debug surface registered while the server is already live (the way
// nodes mount /debug/trace and /debug/flight) serves immediately.
func TestHandleLateRegistration(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, _, _ := get(t, "http://"+s.Addr()+"/debug/flight"); code != http.StatusNotFound {
		t.Fatalf("unregistered endpoint answered %d", code)
	}

	ring := NewTraceRing(8)
	s.Handle("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(ring.JSON())
	})
	code, body, ct := get(t, "http://"+s.Addr()+"/debug/flight")
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("late-registered endpoint %d %q", code, ct)
	}
	if body != "[]" {
		t.Fatalf("empty ring served %q", body)
	}
	ring.Add(map[string]string{"kind": "health", "msg": "healthy -> degraded"})
	if _, body, _ = get(t, "http://"+s.Addr()+"/debug/flight"); !strings.Contains(body, "degraded") {
		t.Fatalf("ring entry not served: %q", body)
	}
}

// TestDebugEndpointsConcurrentWriters hammers /debug/alerts and a
// Handle-mounted flight-style endpoint with concurrent writers while
// HTTP readers poll (run under -race): every response must be valid
// JSON, and the alert ring ends exactly full.
func TestDebugEndpointsConcurrentWriters(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	flight := NewTraceRing(32)
	s.Handle("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(flight.JSON())
	})

	const writers, perWriter = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Alerts().Add(map[string]any{"writer": g, "seq": i, "at": time.Unix(int64(i), 0)})
				flight.Add(map[string]any{"kind": "health", "writer": g, "seq": i})
			}
		}(g)
	}
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				for _, path := range []string{"/debug/alerts", "/debug/flight"} {
					_, body, _ := get(t, "http://"+s.Addr()+path)
					if !json.Valid([]byte(body)) {
						select {
						case errs <- fmt.Errorf("%s served invalid JSON under write load: %q", path, body):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	var docs []json.RawMessage
	_, body, _ := get(t, "http://"+s.Addr()+"/debug/alerts")
	if err := json.Unmarshal([]byte(body), &docs); err != nil {
		t.Fatalf("final /debug/alerts invalid: %v", err)
	}
	if len(docs) != 256 {
		t.Fatalf("alert ring holds %d entries, want the full 256", len(docs))
	}
}

// TestMetricsExpositionConformance serves a registry holding all three
// metric kinds and checks the exposition basics a federating scraper
// relies on: the versioned Content-Type, and TYPE metadata preceding
// every family's first sample exactly once.
func TestMetricsExpositionConformance(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("xatu_test_events_total", "Events.").Add(3)
	reg.Gauge("xatu_test_depth", "Depth.", Label{Name: "shard", Value: "0"}).Set(2)
	reg.Histogram("xatu_test_latency_seconds", "Latency.").Observe(5 * time.Millisecond)
	s, err := NewServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, body, ct := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type %q, want the versioned Prometheus text type", ct)
	}
	seenType := map[string]bool{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name = strings.Fields(name)[0]
			if seenType[name] {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			seenType[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		ok := seenType[name]
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); base != name && seenType[base] {
				ok = true
			}
		}
		if !ok {
			t.Errorf("line %d: sample %s has no preceding TYPE", ln+1, name)
		}
	}
	for _, fam := range []string{"xatu_test_events_total", "xatu_test_depth", "xatu_test_latency_seconds"} {
		if !seenType[fam] {
			t.Errorf("family %s missing from exposition:\n%s", fam, body)
		}
	}
}
