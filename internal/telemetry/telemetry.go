// Package telemetry is the observability substrate for the serving
// pipeline: atomic counters and gauges, log-bucketed latency histograms
// with quantile estimation, a registry that renders the Prometheus text
// exposition format, and an HTTP server exposing /metrics, /healthz,
// net/http/pprof and a ring buffer of recent alert decision traces.
//
// The hot path is allocation-free: Counter.Add and Histogram.Observe are
// a handful of atomic operations, safe for concurrent use from any number
// of goroutines. Every mutating method is nil-receiver safe, so
// instrumented code can call through unconditionally and a nil *Registry
// disables telemetry end to end:
//
//	var reg *telemetry.Registry // nil: telemetry off
//	c := reg.Counter("steps_total", "Steps processed.")
//	c.Inc() // no-op, no branch at the call site
package telemetry

import "sync/atomic"

// A Label is one name="value" pair attached to a metric at registration
// time. Labels are fixed for the lifetime of the metric: the registry
// pre-renders them once, so scraping does no per-sample formatting work
// beyond concatenation.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (negative to decrease). Safe on a nil receiver (no-op).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
