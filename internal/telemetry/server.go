package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Health is the payload served on /healthz. OK selects the HTTP status
// (200 vs 503, so load balancers and liveness probes need no body
// parsing); Detail carries the subsystem's own report (e.g. per-shard
// queue depths) verbatim.
type Health struct {
	OK     bool `json:"ok"`
	Detail any  `json:"detail,omitempty"`
}

// HealthFunc produces the current health report at request time.
type HealthFunc func() Health

// Server exposes a registry over HTTP:
//
//	/metrics       Prometheus text exposition format
//	/healthz       JSON health report, 200 when OK else 503
//	/debug/alerts  JSON array of the most recent alert decision traces
//	/debug/pprof/  the standard net/http/pprof profile endpoints
//
// The listener binds eagerly in NewServer (so an occupied port fails
// fast) and serves on a background goroutine until Close.
type Server struct {
	ln     net.Listener
	srv    *http.Server
	mux    *http.ServeMux
	alerts *TraceRing
}

// NewServer binds addr (use "127.0.0.1:0" for an ephemeral port) and
// starts serving reg. health may be nil, in which case /healthz always
// reports OK with no detail. The returned server's Alerts ring holds the
// traces served on /debug/alerts.
func NewServer(addr string, reg *Registry, health HealthFunc) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: binding %s: %w", addr, err)
	}
	s := &Server{ln: ln, alerts: NewTraceRing(256)}
	mux := http.NewServeMux()
	s.mux = mux
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := Health{OK: true}
		if health != nil {
			h = health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/debug/alerts", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(s.alerts.JSON())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handle registers an extra endpoint on the server's mux — subsystems
// bolt their debug surfaces (e.g. /debug/trace, /debug/flight) onto the
// node's existing telemetry listener instead of opening another port.
// http.ServeMux registration is internally locked, so Handle is safe
// while the server is live; pattern collisions panic exactly like
// http.Handle's.
func (s *Server) Handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, h)
}

// Alerts returns the ring buffer behind /debug/alerts; push each alert's
// decision trace into it as alerts are consumed.
func (s *Server) Alerts() *TraceRing { return s.alerts }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// TraceRing is a fixed-capacity ring of JSON documents — the retention
// buffer behind /debug/alerts. Values are marshaled once on Add, so a
// burst of alerts costs one encode each and readers never touch the
// original objects.
type TraceRing struct {
	mu   sync.Mutex
	buf  []json.RawMessage
	next int
	full bool
}

// NewTraceRing returns a ring holding the last n entries (n < 1 is
// clamped to 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]json.RawMessage, n)}
}

// Add marshals v and appends it, evicting the oldest entry when full.
// Unmarshalable values are dropped. Safe on a nil receiver (no-op) and
// for concurrent use.
func (r *TraceRing) Add(v any) {
	if r == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = data
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the retained entries, oldest first.
func (r *TraceRing) Snapshot() []json.RawMessage {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []json.RawMessage
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// JSON renders the retained entries as one JSON array, oldest first.
func (r *TraceRing) JSON() []byte {
	snap := r.Snapshot()
	if len(snap) == 0 {
		return []byte("[]")
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return []byte("[]")
	}
	return data
}
