package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the full exposition format — HELP/TYPE
// lines, label rendering and escaping, family and label sorting,
// cumulative histogram buckets in seconds, and the companion _max gauge —
// against a committed golden file.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	steps := reg.Counter("xatu_engine_steps_total", "Steps processed.", Label{"shard", "0"})
	steps.Add(41)
	steps.Inc()
	reg.Counter("xatu_engine_steps_total", "ignored duplicate help", Label{"shard", "1"}).Add(7)
	reg.Gauge("xatu_engine_queue_depth", "Current mailbox depth.", Label{"shard", "0"}).Set(3)
	reg.GaugeFunc("xatu_collector_exporters", "Distinct export streams.", func() float64 { return 2 })
	reg.CounterFunc("xatu_collector_packets_total", "Datagrams processed.", func() float64 { return 1234 })
	reg.Counter("escapes_total", "help with \\ and\nnewline", Label{"path", "a\"b\\c\nd"}).Inc()
	h := reg.Histogram("xatu_engine_step_seconds", "Detection step latency.")
	h.Observe(1 * time.Microsecond)   // first bucket (≤ 1.024µs)
	h.Observe(3 * time.Microsecond)   // ≤ 4.096µs
	h.Observe(900 * time.Microsecond) // ≤ 1.048576ms
	h.Observe(20 * time.Second)       // +Inf

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file (run with -update and diff):\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestRegistryValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	mustPanic("invalid metric name", func() { reg.Counter("bad-name", "") })
	mustPanic("digit-leading name", func() { reg.Counter("0bad", "") })
	mustPanic("invalid label name", func() { reg.Counter("ok_total", "", Label{"bad-label", "v"}) })
	reg.Counter("dup_total", "", Label{"a", "1"})
	mustPanic("duplicate name+labels", func() { reg.Counter("dup_total", "", Label{"a", "1"}) })
	mustPanic("kind conflict", func() { reg.Gauge("dup_total", "") })
	// Same family, different labels: fine.
	reg.Counter("dup_total", "", Label{"a", "2"})
}

func TestNilRegistryIsSafe(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil-backed counter must stay 0")
	}
	g := reg.Gauge("x", "")
	g.Set(9)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil-backed gauge must stay 0")
	}
	reg.CounterFunc("y_total", "", func() float64 { return 1 })
	reg.GaugeFunc("y", "", func() float64 { return 1 })
	reg.Histogram("z_seconds", "").Observe(time.Second)
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentInstruments hammers one counter, one gauge, and one
// histogram from N goroutines; run under -race this is the data-race
// proof for the whole hot path, and the totals prove no increment is
// lost.
func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hammer_total", "")
	g := reg.Gauge("hammer_depth", "")
	h := reg.Histogram("hammer_seconds", "")
	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i*perG+j) * time.Microsecond)
			}
		}(i)
	}
	// Concurrent scrapes while writers run.
	for i := 0; i < 10; i++ {
		if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	const want = goroutines * perG
	if c.Value() != want {
		t.Fatalf("counter = %d, want %d", c.Value(), want)
	}
	if g.Value() != want {
		t.Fatalf("gauge = %d, want %d", g.Value(), want)
	}
	if h.Count() != want {
		t.Fatalf("histogram count = %d, want %d", h.Count(), want)
	}
	wantMax := time.Duration(goroutines*perG-1) * time.Microsecond
	if h.Max() != wantMax {
		t.Fatalf("histogram max = %v, want %v", h.Max(), wantMax)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hammer_seconds_count 32000") {
		t.Fatalf("exposition missing final histogram count:\n%s", buf.String())
	}
}
