package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: upper bounds are powers of two of nanoseconds,
// 2^histMinExp ns (~1 µs) through 2^histMaxExp ns (~17 s), plus +Inf.
// Log-spaced buckets keep the bucket count small while resolving both a
// sub-10 µs detection step and a multi-second checkpoint stall; the
// bucket index is one bits.Len64, so Observe never allocates and never
// loops (except the max CAS under contention).
const (
	histMinExp  = 10 // first finite bound: 2^10 ns = 1.024 µs
	histMaxExp  = 34 // last finite bound: 2^34 ns ≈ 17.18 s
	histBuckets = histMaxExp - histMinExp + 1
)

// Histogram is a log-bucketed latency histogram. Observe is safe for
// concurrent use and allocation-free; quantiles are estimated at read
// time by linear interpolation inside the owning bucket, and the exact
// maximum is tracked separately (so the p100 tail is never a bucket
// bound). Rendered by Registry.WritePrometheus as a standard Prometheus
// histogram family in seconds, plus a companion <name>_max gauge.
type Histogram struct {
	buckets  [histBuckets + 1]atomic.Uint64 // +1: the +Inf bucket
	count    atomic.Uint64
	sumNanos atomic.Uint64
	maxNanos atomic.Uint64
}

// bucketFor returns the index of the smallest bucket whose upper bound is
// >= ns (ceil log2, clamped into range).
func bucketFor(ns uint64) int {
	if ns <= 1 {
		return 0
	}
	k := bits.Len64(ns - 1) // smallest k with ns <= 2^k
	if k <= histMinExp {
		return 0
	}
	if k > histMaxExp {
		return histBuckets // +Inf
	}
	return k - histMinExp
}

// bucketBound returns bucket i's upper bound in nanoseconds; the +Inf
// bucket has no finite bound and must not be asked for one.
func bucketBound(i int) uint64 { return uint64(1) << (histMinExp + i) }

// Observe records one duration. Negative durations clamp to zero. Safe on
// a nil receiver (no-op) and for concurrent use.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bucketFor(ns)].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(ns)
	for {
		prev := h.maxNanos.Load()
		if ns <= prev || h.maxNanos.CompareAndSwap(prev, ns) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNanos.Load())
}

// Max returns the largest observation seen (exact, not a bucket bound).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.maxNanos.Load())
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the bucket holding the target rank, clamped to the
// exact observed maximum. It returns 0 with no observations. The estimate
// is exact at q=1 and within one bucket's width (a factor of two)
// elsewhere — ample for latency SLO accounting.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	var counts [histBuckets + 1]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	max := h.maxNanos.Load()
	// Rank of the target observation, 1-based, at least 1.
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) || rank == 0 {
		rank++
	}
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		lower := uint64(0)
		if i > 0 {
			lower = bucketBound(i - 1)
		}
		upper := max
		if i < histBuckets && bucketBound(i) < max {
			upper = bucketBound(i)
		}
		if upper < lower {
			upper = lower
		}
		// Position of the target rank inside this bucket, (0, 1].
		pos := float64(rank-cum) / float64(c)
		v := float64(lower) + pos*float64(upper-lower)
		if v > float64(max) {
			v = float64(max)
		}
		return time.Duration(v)
	}
	return time.Duration(max)
}

// LatencySummary is a point-in-time quantile digest of a Histogram,
// suitable for one-line shutdown reports and benchmark metrics.
type LatencySummary struct {
	Count uint64
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summary digests the histogram into p50/p90/p99/max.
func (h *Histogram) Summary() LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}
