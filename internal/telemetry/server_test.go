package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "Liveness beats.").Add(3)
	reg.Histogram("step_seconds", "Step latency.").Observe(2 * time.Millisecond)
	healthy := true
	srv, err := NewServer("127.0.0.1:0", reg, func() Health {
		return Health{OK: healthy, Detail: map[string]int{"queue": 7}}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body, ctype := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	for _, want := range []string{
		"# TYPE up_total counter", "up_total 3",
		"# TYPE step_seconds histogram", "step_seconds_count 1", `step_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body, ctype = get(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/healthz status %d type %q", code, ctype)
	}
	var h struct {
		OK     bool           `json:"ok"`
		Detail map[string]int `json:"detail"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Detail["queue"] != 7 {
		t.Fatalf("/healthz payload %+v", h)
	}
	healthy = false
	if code, _, _ := get(t, base+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz status %d, want 503", code)
	}

	// Alerts ring: empty array first, then the pushed traces oldest-first.
	code, body, _ = get(t, base+"/debug/alerts")
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("/debug/alerts empty = %d %q", code, body)
	}
	srv.Alerts().Add(map[string]string{"id": "a"})
	srv.Alerts().Add(map[string]string{"id": "b"})
	_, body, _ = get(t, base+"/debug/alerts")
	var entries []map[string]string
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0]["id"] != "a" || entries[1]["id"] != "b" {
		t.Fatalf("/debug/alerts = %v", entries)
	}

	// pprof is mounted.
	if code, _, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestTraceRingEviction(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Add(i)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring kept %d entries, want 3", len(snap))
	}
	var vals []int
	for _, raw := range snap {
		var v int
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
	}
	if vals[0] != 2 || vals[1] != 3 || vals[2] != 4 {
		t.Fatalf("ring = %v, want oldest-first [2 3 4]", vals)
	}
	// Unmarshalable values are dropped, not stored as nulls.
	r.Add(func() {})
	if len(r.Snapshot()) != 3 {
		t.Fatal("unmarshalable value changed the ring")
	}
	var nilRing *TraceRing
	nilRing.Add(1)
	if nilRing.Snapshot() != nil {
		t.Fatal("nil ring must be inert")
	}
}
