package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind is the Prometheus metric family type.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// sample is one labeled member of a family: either a scalar read function
// (counter/gauge, owned or callback-backed) or a histogram.
type sample struct {
	labels string // pre-rendered `{a="b",c="d"}`, or ""
	read   func() float64
	hist   *Histogram
}

type family struct {
	name    string
	help    string
	kind    metricKind
	samples []*sample
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format (version 0.0.4). Registration methods are safe for
// concurrent use; invalid names, kind conflicts, and duplicate
// (name, labels) registrations panic, as they are programmer errors.
//
// All methods are nil-receiver safe: registering on a nil *Registry
// returns nil metric handles whose mutators are no-ops, so a single nil
// check at construction time disables telemetry for a whole subsystem.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter registers and returns a monotone counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, help, kindCounter, &sample{
		labels: renderLabels(labels),
		read:   func() float64 { return float64(c.Value()) },
	})
	return c
}

// Gauge registers and returns an instantaneous value.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(name, help, kindGauge, &sample{
		labels: renderLabels(labels),
		read:   func() float64 { return float64(g.Value()) },
	})
	return g
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for subsystems that already keep their own atomic or
// mutex-guarded counters. fn must be monotone and safe for concurrent
// calls.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindCounter, &sample{labels: renderLabels(labels), read: fn})
}

// GaugeFunc registers a gauge read from fn at scrape time. fn must be
// safe for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindGauge, &sample{labels: renderLabels(labels), read: fn})
}

// Histogram registers and returns a log-bucketed latency histogram,
// rendered in seconds per Prometheus convention.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{}
	r.register(name, help, kindHistogram, &sample{labels: renderLabels(labels), hist: h})
	return h
}

func (r *Registry) register(name, help string, kind metricKind, s *sample) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.fams[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %v and %v", name, f.kind, kind))
	}
	for _, prev := range f.samples {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("telemetry: duplicate metric %s%s", name, s.labels))
		}
	}
	f.samples = append(f.samples, s)
}

// WritePrometheus renders every family in text exposition format, sorted
// by family name (and by label string within a family) so output is
// deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		writeFamily(&b, f)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeFamily(b *strings.Builder, f *family) {
	if f.help != "" {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.kind.String())
	b.WriteByte('\n')
	samples := append([]*sample(nil), f.samples...)
	sort.Slice(samples, func(i, j int) bool { return samples[i].labels < samples[j].labels })
	for _, s := range samples {
		if f.kind == kindHistogram {
			writeHistogram(b, f.name, s)
			continue
		}
		b.WriteString(f.name)
		b.WriteString(s.labels)
		b.WriteByte(' ')
		b.WriteString(formatFloat(s.read()))
		b.WriteByte('\n')
	}
	if f.kind == kindHistogram {
		// Companion gauge: the exact observed maximum, which the bucketed
		// family can only bound from above.
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteString("_max gauge\n")
		for _, s := range samples {
			b.WriteString(f.name)
			b.WriteString("_max")
			b.WriteString(s.labels)
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.hist.Max().Seconds()))
			b.WriteByte('\n')
		}
	}
}

// writeHistogram renders one histogram sample: cumulative _bucket lines
// (bounds in seconds), then _sum and _count.
func writeHistogram(b *strings.Builder, name string, s *sample) {
	var cum uint64
	for i := 0; i <= histBuckets; i++ {
		cum += s.hist.buckets[i].Load()
		le := "+Inf"
		if i < histBuckets {
			le = formatFloat(float64(bucketBound(i)) / 1e9)
		}
		b.WriteString(name)
		b.WriteString("_bucket")
		b.WriteString(mergeLabels(s.labels, `le="`+le+`"`))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(s.labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(s.hist.Sum().Seconds()))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(s.labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(s.hist.Count(), 10))
	b.WriteByte('\n')
}

// renderLabels pre-renders a label set as `{a="b",c="d"}` (sorted by
// name), panicking on invalid label names.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels splices an extra pre-rendered pair (e.g. le="0.001") into a
// pre-rendered label block.
func mergeLabels(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || strings.ContainsRune(name, ':') {
		return false
	}
	return validMetricName(name)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
