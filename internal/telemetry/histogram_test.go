package telemetry

import (
	"testing"
	"time"
)

func TestBucketForBoundaries(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0},
		{1, 0},
		{1023, 0},
		{1024, 0}, // exactly 2^10: first bucket's upper bound is inclusive
		{1025, 1}, // one past: next bucket
		{2048, 1}, // exactly 2^11
		{2049, 2},
		{1 << 34, histBuckets - 1},   // exactly the last finite bound
		{(1 << 34) + 1, histBuckets}, // past it: +Inf
		{1 << 60, histBuckets},       // way past: still +Inf
	}
	for _, c := range cases {
		if got := bucketFor(c.ns); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestBucketBoundsAreMonotone(t *testing.T) {
	for i := 1; i < histBuckets; i++ {
		if bucketBound(i) != 2*bucketBound(i-1) {
			t.Fatalf("bucket %d bound %d is not double bucket %d bound %d",
				i, bucketBound(i), i-1, bucketBound(i-1))
		}
	}
	if bucketBound(0) != 1024 {
		t.Fatalf("first bound = %d, want 1024", bucketBound(0))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations spread uniformly across 1..100 µs: p50 ≈ 50 µs,
	// p99 ≈ 99 µs. Log buckets bound the estimate within a factor of two;
	// the interpolated estimate should land in the right ballpark.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got := h.Max(); got != 100*time.Microsecond {
		t.Fatalf("max = %v, want 100µs (exact)", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < 25*time.Microsecond || p50 > 100*time.Microsecond {
		t.Fatalf("p50 = %v, want within [25µs, 100µs]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 50*time.Microsecond || p99 > 100*time.Microsecond {
		t.Fatalf("p99 = %v, want within [50µs, 100µs]", p99)
	}
	if q1 := h.Quantile(1); q1 != 100*time.Microsecond {
		t.Fatalf("p100 = %v, want the exact max 100µs", q1)
	}
	if p50 > p99 {
		t.Fatalf("quantiles not monotone: p50 %v > p99 %v", p50, p99)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Millisecond)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 5*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v with one 5ms observation", q, got)
		}
	}
	if h.Sum() != 5*time.Millisecond {
		t.Fatalf("sum = %v, want 5ms", h.Sum())
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if nilH.Quantile(0.5) != 0 || nilH.Max() != 0 || nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil histogram must report zeros")
	}
	s := nilH.Summary()
	if s.Count != 0 || s.P99 != 0 {
		t.Fatal("nil histogram summary must be zero")
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Count() != 1 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("negative observation: count=%d sum=%v max=%v", h.Count(), h.Sum(), h.Max())
	}
}
