package trace

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// FlightEvent is one structured entry in a node's flight recorder:
// health transitions, shard restarts and quarantines, migrations,
// checkpoint/restore, shed bursts, routing-table versions. Kind is a
// small taxonomy slug ("health", "restart", "panic", "migrate-out",
// "migrate-in", "checkpoint", "restore", "shed", "table", "window",
// "member", "lifecycle"); Msg carries the specifics.
type FlightEvent struct {
	At   time.Time `json:"at"`
	Kind string    `json:"kind"`
	Node string    `json:"node,omitempty"`
	Msg  string    `json:"msg"`
}

// Dump is a frozen copy of the ring taken when something interesting
// happened — a health-ladder transition or a shard panic — so the
// events *leading up to* the incident survive even after the ring
// wraps past them.
type Dump struct {
	At      time.Time     `json:"at"`
	Trigger string        `json:"trigger"`
	Node    string        `json:"node,omitempty"`
	Events  []FlightEvent `json:"events"`
}

// maxDumps bounds retained dumps; older dumps age out first. Eight
// covers a full health-ladder round trip plus a few panics.
const maxDumps = 8

// Flight is a fixed-size black-box recorder: a ring of recent events
// plus a bounded list of incident dumps. Like Recorder, every method
// is concurrency-safe and a no-op on a nil receiver, so subsystems
// thread it through unconditionally.
type Flight struct {
	node string

	mu    sync.Mutex
	ring  []FlightEvent
	next  int
	full  bool
	dumps []Dump
}

// NewFlight builds a flight recorder for the named node. ringCap < 1
// defaults to 256.
func NewFlight(node string, ringCap int) *Flight {
	if ringCap < 1 {
		ringCap = 256
	}
	return &Flight{node: node, ring: make([]FlightEvent, ringCap)}
}

// Node returns the recording node's identity ("" on nil).
func (f *Flight) Node() string {
	if f == nil {
		return ""
	}
	return f.node
}

// Record appends one event to the ring.
func (f *Flight) Record(kind, format string, args ...any) {
	if f == nil {
		return
	}
	e := FlightEvent{At: time.Now(), Kind: kind, Node: f.node, Msg: fmt.Sprintf(format, args...)}
	f.mu.Lock()
	f.ring[f.next] = e
	f.next = (f.next + 1) % len(f.ring)
	if f.next == 0 {
		f.full = true
	}
	f.mu.Unlock()
}

// Dump freezes the current ring contents (oldest first) as an incident
// dump. Events recorded after Dump returns are not part of it — the
// dump is the flight data *up to and including* the trigger.
func (f *Flight) Dump(trigger string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	d := Dump{At: time.Now(), Trigger: trigger, Node: f.node, Events: f.eventsLocked()}
	f.dumps = append(f.dumps, d)
	if len(f.dumps) > maxDumps {
		f.dumps = append(f.dumps[:0], f.dumps[len(f.dumps)-maxDumps:]...)
	}
	f.mu.Unlock()
}

// Events returns the retained ring events, oldest first.
func (f *Flight) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eventsLocked()
}

func (f *Flight) eventsLocked() []FlightEvent {
	var out []FlightEvent
	if f.full {
		out = append(out, f.ring[f.next:]...)
	}
	out = append(out, f.ring[:f.next]...)
	return out
}

// Dumps returns the retained incident dumps, oldest first.
func (f *Flight) Dumps() []Dump {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Dump(nil), f.dumps...)
}

// flightDoc is the /debug/flight JSON document.
type flightDoc struct {
	Node   string        `json:"node"`
	Events []FlightEvent `json:"events"`
	Dumps  []Dump        `json:"dumps"`
}

// JSON renders the recorder for /debug/flight. Nil-safe (empty doc).
func (f *Flight) JSON() []byte {
	doc := flightDoc{Events: []FlightEvent{}, Dumps: []Dump{}}
	if f != nil {
		doc.Node = f.node
		if ev := f.Events(); ev != nil {
			doc.Events = ev
		}
		if d := f.Dumps(); d != nil {
			doc.Dumps = d
		}
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return []byte("{}")
	}
	return data
}
