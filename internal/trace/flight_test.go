package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFlightRingWraparound(t *testing.T) {
	f := NewFlight("n1", 4)
	for i := 0; i < 10; i++ {
		f.Record("health", "event %d", i)
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("ring of 4 retained %d events", len(evs))
	}
	for i, e := range evs {
		if want := fmt.Sprintf("event %d", 6+i); e.Msg != want {
			t.Fatalf("evs[%d] = %q, want %q", i, e.Msg, want)
		}
		if e.Node != "n1" || e.Kind != "health" {
			t.Fatalf("event %+v", e)
		}
	}
}

// TestFlightDumpOrdering pins the dump-on-transition contract: a dump
// contains the flight data up to and including the trigger, and events
// recorded after the dump do not leak into it.
func TestFlightDumpOrdering(t *testing.T) {
	f := NewFlight("n1", 16)
	f.Record("restart", "shard 0 recovered")
	f.Record("health", "healthy -> degraded: queue pressure")
	f.Dump("health:degraded")
	f.Record("shed", "500 messages shed") // after the incident

	dumps := f.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Trigger != "health:degraded" || d.Node != "n1" {
		t.Fatalf("dump %+v", d)
	}
	if len(d.Events) != 2 {
		t.Fatalf("dump holds %d events, want the 2 pre-trigger events", len(d.Events))
	}
	if d.Events[0].Kind != "restart" || d.Events[1].Kind != "health" {
		t.Fatalf("dump events out of order: %+v", d.Events)
	}
	for _, e := range d.Events {
		if strings.Contains(e.Msg, "shed") {
			t.Fatal("post-trigger event leaked into the dump")
		}
	}
}

func TestFlightDumpsBounded(t *testing.T) {
	f := NewFlight("n1", 8)
	for i := 0; i < maxDumps+5; i++ {
		f.Record("health", "transition %d", i)
		f.Dump(fmt.Sprintf("trigger-%d", i))
	}
	dumps := f.Dumps()
	if len(dumps) != maxDumps {
		t.Fatalf("retained %d dumps, want %d", len(dumps), maxDumps)
	}
	// Oldest aged out: the first retained dump is trigger-5.
	if dumps[0].Trigger != "trigger-5" || dumps[len(dumps)-1].Trigger != fmt.Sprintf("trigger-%d", maxDumps+4) {
		t.Fatalf("dump window [%s .. %s]", dumps[0].Trigger, dumps[len(dumps)-1].Trigger)
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	f.Record("health", "x")
	f.Dump("y")
	if f.Events() != nil || f.Dumps() != nil || f.Node() != "" {
		t.Fatal("nil flight returned data")
	}
	var doc struct {
		Events []FlightEvent `json:"events"`
		Dumps  []Dump        `json:"dumps"`
	}
	if err := json.Unmarshal(f.JSON(), &doc); err != nil {
		t.Fatalf("nil flight JSON invalid: %v", err)
	}
	if len(doc.Events) != 0 || len(doc.Dumps) != 0 {
		t.Fatalf("nil flight doc %+v", doc)
	}
}

func TestFlightConcurrent(t *testing.T) {
	f := NewFlight("n1", 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Record("health", "g%d event %d", g, i)
				if i%50 == 0 {
					f.Dump(fmt.Sprintf("g%d-%d", g, i))
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				f.Events()
				f.Dumps()
				_ = f.JSON()
			}
		}()
	}
	wg.Wait()
	if len(f.Events()) != 32 {
		t.Fatalf("ring holds %d events, want full 32", len(f.Events()))
	}
	if len(f.Dumps()) != maxDumps {
		t.Fatalf("retained %d dumps, want %d", len(f.Dumps()), maxDumps)
	}
}
