// Package trace is Xatu's dependency-free distributed tracing and
// flight-recorder layer. It threads through the whole serving path —
// router/exporter, UDP frame, ingest mesh, engine shards, cluster
// forwarding, coordinator alert fan-in — without coordination between
// nodes: sampling is a deterministic hash of the customer address, so
// every node independently agrees on which customers are traced.
//
// The design point is cost when disabled: a nil *Recorder (tracing off)
// makes every hook a single nil check with zero allocations, so the
// unsampled hot path keeps its 0 allocs/op pin. When enabled, only the
// sampled customers' events pay for ring writes and histogram updates;
// everything else pays one hash (often served from the caller's cache).
package trace

import (
	"encoding/binary"
	"encoding/json"
	"net/netip"
	"sync"
	"time"
)

// Stage enumerates the serving-path stages a sampled flow passes
// through, in pipeline order. Stage latencies are measured against the
// previous stage's wall clock where the chain is known (export → decode
// → seal) and against the stage's own work otherwise (step = inference
// duration, forward = queue hand-off).
type Stage uint8

const (
	// StageExport: the router/exporter flushed the record's datagram
	// (wall clock carried in the frame trailer).
	StageExport Stage = iota
	// StageDecode: a decode worker parsed the datagram.
	StageDecode
	// StageSeal: an aggregation worker sealed the (customer, step)
	// bucket and handed it to the sink.
	StageSeal
	// StageForward: the cluster layer forwarded the step to the owning
	// node per the routing table.
	StageForward
	// StageBuffer: the step was buffered in a migration inbound window.
	StageBuffer
	// StageStep: an engine shard ran the detection step (latency is the
	// in-shard inference duration).
	StageStep
	// StageFanin: the coordinator accepted the resulting alert into the
	// fleet-wide deduped set.
	StageFanin

	numStages
)

// String returns the stage slug used in JSON and assembled timelines.
func (s Stage) String() string {
	switch s {
	case StageExport:
		return "export"
	case StageDecode:
		return "decode"
	case StageSeal:
		return "seal"
	case StageForward:
		return "forward"
	case StageBuffer:
		return "buffer"
	case StageStep:
		return "step"
	case StageFanin:
		return "fanin"
	default:
		return "unknown"
	}
}

// Sampler decides which customers are traced: a stable mix of the
// address's 16-byte form modulo the rate. Hashing the 16-byte form
// means an IPv4 customer and its v4-mapped IPv6 form sample
// identically, and because the decision is a pure function of
// (address, rate), every node in a fleet — router, ingest, engine,
// coordinator — picks the same customers with no coordination.
type Sampler struct {
	rate uint64
}

// NewSampler returns a 1-in-rate sampler. rate <= 0 returns nil
// (sampling disabled — a nil Sampler samples nothing); rate 1 samples
// every customer.
func NewSampler(rate int) *Sampler {
	if rate <= 0 {
		return nil
	}
	return &Sampler{rate: uint64(rate)}
}

// Rate returns the sampling rate (0 on a nil sampler).
func (s *Sampler) Rate() int {
	if s == nil {
		return 0
	}
	return int(s.rate)
}

// Sampled reports whether the customer is traced. Nil-safe (false) and
// allocation-free.
func (s *Sampler) Sampled(c netip.Addr) bool {
	if s == nil {
		return false
	}
	return addrHash(c)%s.rate == 0
}

// addrHash mixes the address's 16-byte form as two words through a
// splitmix64-style finalizer. This sits on per-record paths (exporter
// flush, decode-worker trailer probe), so it is a handful of multiplies
// rather than a byte loop — but it is also the fleet-wide sampling
// convention: every process must compute exactly this function, so any
// change here is a wire-protocol change for running mixed fleets.
func addrHash(c netip.Addr) uint64 {
	b := c.As16()
	h := binary.LittleEndian.Uint64(b[0:8])*0x9e3779b97f4a7c15 ^ binary.LittleEndian.Uint64(b[8:16])
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// SpanEvent is one recorded stage crossing for a sampled customer.
// (Customer, At) is the distributed join key: the coordinator groups
// events from every node by it to assemble one cross-node timeline per
// detection step.
type SpanEvent struct {
	// Customer is the protected address the event belongs to.
	Customer netip.Addr
	// At is the step time the event is keyed under; zero while the step
	// is not yet known (origin events re-keyed at seal time).
	At time.Time
	// Stage is the pipeline stage crossed.
	Stage Stage
	// Node is the recording node's identity (filled by the Recorder).
	Node string
	// Wall is the real-time instant the stage was crossed.
	Wall time.Time
	// Latency is the stage's measured duration (0 = not measured).
	Latency time.Duration
	// Detail is optional free-form context ("to node-2", "shard 3").
	Detail string
}

// wireSpan is the JSON shape served on /debug/trace and consumed by the
// coordinator's timeline assembly.
type wireSpan struct {
	Customer  string    `json:"customer"`
	At        time.Time `json:"at"`
	Stage     string    `json:"stage"`
	Node      string    `json:"node,omitempty"`
	Wall      time.Time `json:"wall"`
	LatencyUS int64     `json:"latency_us,omitempty"`
	Detail    string    `json:"detail,omitempty"`
}

func (e SpanEvent) wire() wireSpan {
	return wireSpan{
		Customer:  e.Customer.String(),
		At:        e.At,
		Stage:     e.Stage.String(),
		Node:      e.Node,
		Wall:      e.Wall,
		LatencyUS: e.Latency.Microseconds(),
		Detail:    e.Detail,
	}
}

// StageStat is one stage's latency breakdown: a log2-bucketed histogram
// (microsecond scale) with the worst observation kept as an exemplar,
// so a dashboard can jump from "p99 regressed" straight to a concrete
// (customer, step) to pull the full timeline for.
type StageStat struct {
	Stage    string    `json:"stage"`
	Count    uint64    `json:"count"`
	SumUS    int64     `json:"sum_us"`
	MaxUS    int64     `json:"max_us"`
	Buckets  []uint64  `json:"buckets"` // bucket i counts latencies < 2^i microseconds
	Exemplar *wireSpan `json:"exemplar,omitempty"`
}

// stageBuckets is the histogram resolution: 2^0 .. 2^29 µs (~9 minutes)
// covers queue waits through migration pauses.
const stageBuckets = 30

type stageHist struct {
	count    uint64
	sumUS    int64
	maxUS    int64
	buckets  [stageBuckets]uint64
	exemplar SpanEvent // the worst-latency event observed
}

func (h *stageHist) observe(e SpanEvent) {
	h.count++
	us := e.Latency.Microseconds()
	if us < 0 {
		us = 0
	}
	h.sumUS += us
	if us >= h.maxUS {
		h.maxUS = us
		h.exemplar = e
	}
	b := 0
	for v := us; v > 0 && b < stageBuckets-1; v >>= 1 {
		b++
	}
	h.buckets[b]++
}

// origin is the pre-seal provenance of one customer's latest traced
// datagram: export wall clock (from the frame trailer) and decode wall
// clock. It is held until the aggregation worker seals a step for the
// customer, at which point the chain is re-keyed to the step time.
type origin struct {
	export time.Time
	decode time.Time
}

// Recorder collects span events for one node: a fixed ring of recent
// events (served on /debug/trace), per-stage latency histograms with
// exemplars, and the origin table linking wire trailers to sealed
// steps. All methods are safe for concurrent use and on a nil receiver
// (no-ops), so call sites need no enabled/disabled branches beyond the
// single nil check.
type Recorder struct {
	node    string
	sampler *Sampler

	mu      sync.Mutex
	ring    []SpanEvent
	next    int
	full    bool
	hists   [numStages]stageHist
	origins map[netip.Addr]origin
}

// NewRecorder builds a recorder for the named node. A nil sampler
// (tracing disabled) returns a nil recorder, making every downstream
// hook a single nil check. ringCap < 1 defaults to 512.
func NewRecorder(node string, sampler *Sampler, ringCap int) *Recorder {
	if sampler == nil {
		return nil
	}
	if ringCap < 1 {
		ringCap = 512
	}
	return &Recorder{
		node:    node,
		sampler: sampler,
		ring:    make([]SpanEvent, ringCap),
		origins: make(map[netip.Addr]origin),
	}
}

// Sampled reports whether the customer is traced (false on nil).
func (r *Recorder) Sampled(c netip.Addr) bool {
	if r == nil {
		return false
	}
	return r.sampler.Sampled(c)
}

// Rate returns the sampling rate (0 on nil).
func (r *Recorder) Rate() int {
	if r == nil {
		return 0
	}
	return r.sampler.Rate()
}

// Node returns the recording node's identity ("" on nil).
func (r *Recorder) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// RecordOrigin notes the latest traced datagram for a sampled customer:
// export is the exporter's wall clock from the frame trailer, decode
// the local receive time. The pair is attached to the customer's next
// sealed step by RecordSeal (latest datagram wins — the step's flows
// arrived across several datagrams and the freshest bound is the
// tightest).
func (r *Recorder) RecordOrigin(c netip.Addr, export, decode time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.origins[c] = origin{export: export, decode: decode}
	r.mu.Unlock()
}

// RecordSeal records the seal of one (customer, step) bucket at wall
// time now, emitting the customer's buffered export/decode origin as
// properly keyed events first so the whole pre-engine chain shares the
// step's join key.
func (r *Recorder) RecordSeal(c netip.Addr, at, now time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if o, ok := r.origins[c]; ok {
		delete(r.origins, c)
		r.recordLocked(SpanEvent{Customer: c, At: at, Stage: StageExport, Wall: o.export})
		r.recordLocked(SpanEvent{Customer: c, At: at, Stage: StageDecode, Wall: o.decode,
			Latency: o.decode.Sub(o.export)})
		r.recordLocked(SpanEvent{Customer: c, At: at, Stage: StageSeal, Wall: now,
			Latency: now.Sub(o.decode)})
	} else {
		r.recordLocked(SpanEvent{Customer: c, At: at, Stage: StageSeal, Wall: now})
	}
	r.mu.Unlock()
}

// Record adds one stage event for a sampled customer at the current
// wall clock. The caller is expected to have checked Sampled already
// (Record does not re-check, so synthetic events can be injected in
// tests).
func (r *Recorder) Record(c netip.Addr, at time.Time, stage Stage, latency time.Duration, detail string) {
	if r == nil {
		return
	}
	e := SpanEvent{Customer: c, At: at, Stage: stage, Wall: time.Now(), Latency: latency, Detail: detail}
	r.mu.Lock()
	r.recordLocked(e)
	r.mu.Unlock()
}

func (r *Recorder) recordLocked(e SpanEvent) {
	e.Node = r.node
	if e.Stage < numStages {
		r.hists[e.Stage].observe(e)
	}
	r.ring[r.next] = e
	r.next = (r.next + 1) % len(r.ring)
	if r.next == 0 {
		r.full = true
	}
}

// Snapshot returns the retained events, oldest first.
func (r *Recorder) Snapshot() []SpanEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SpanEvent
	if r.full {
		out = append(out, r.ring[r.next:]...)
	}
	out = append(out, r.ring[:r.next]...)
	return out
}

// StageStats returns the per-stage latency breakdown with exemplars,
// skipping stages that never observed an event.
func (r *Recorder) StageStats() []StageStat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []StageStat
	for st := Stage(0); st < numStages; st++ {
		h := &r.hists[st]
		if h.count == 0 {
			continue
		}
		ex := h.exemplar.wire()
		out = append(out, StageStat{
			Stage:    st.String(),
			Count:    h.count,
			SumUS:    h.sumUS,
			MaxUS:    h.maxUS,
			Buckets:  append([]uint64(nil), h.buckets[:]...),
			Exemplar: &ex,
		})
	}
	return out
}

// traceDoc is the /debug/trace JSON document.
type traceDoc struct {
	Node   string      `json:"node"`
	Rate   int         `json:"rate"`
	Spans  []wireSpan  `json:"spans"`
	Stages []StageStat `json:"stages"`
}

// JSON renders the recorder for /debug/trace: node identity, sampling
// rate, the retained spans oldest first, and the per-stage breakdown.
// A nil recorder renders an empty document, so the endpoint can be
// registered unconditionally.
func (r *Recorder) JSON() []byte {
	doc := traceDoc{Spans: []wireSpan{}, Stages: []StageStat{}}
	if r != nil {
		doc.Node = r.node
		doc.Rate = r.Rate()
		for _, e := range r.Snapshot() {
			doc.Spans = append(doc.Spans, e.wire())
		}
		if st := r.StageStats(); st != nil {
			doc.Stages = st
		}
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return []byte("{}")
	}
	return data
}
