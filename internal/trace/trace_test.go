package trace

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"
)

func addr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
}

func TestSamplerDeterministic(t *testing.T) {
	s := NewSampler(8)
	sampled := 0
	for i := 0; i < 4096; i++ {
		a := addr(i)
		first := s.Sampled(a)
		for j := 0; j < 3; j++ {
			if s.Sampled(a) != first {
				t.Fatalf("Sampled(%v) not stable", a)
			}
		}
		// An independent sampler at the same rate — a different node in
		// the fleet — must agree with zero coordination.
		if NewSampler(8).Sampled(a) != first {
			t.Fatalf("independent sampler disagrees on %v", a)
		}
		if first {
			sampled++
		}
	}
	// FNV over addresses is not uniform enough to pin 1/8 exactly, but it
	// should be in the right ballpark.
	if sampled < 4096/32 || sampled > 4096/2 {
		t.Fatalf("sampled %d of 4096 at rate 8: hash badly skewed", sampled)
	}
}

func TestSamplerV4MappedAgreement(t *testing.T) {
	s := NewSampler(4)
	for i := 0; i < 512; i++ {
		v4 := addr(i)
		mapped := netip.AddrFrom16(v4.As16()) // v4-mapped IPv6 form
		if s.Sampled(v4) != s.Sampled(mapped) {
			t.Fatalf("v4 %v and its v4-mapped form disagree", v4)
		}
	}
}

func TestSamplerDisabled(t *testing.T) {
	if s := NewSampler(0); s != nil {
		t.Fatal("NewSampler(0) should be nil")
	}
	if s := NewSampler(-3); s != nil {
		t.Fatal("NewSampler(-3) should be nil")
	}
	var s *Sampler
	if s.Sampled(addr(1)) {
		t.Fatal("nil sampler sampled something")
	}
	if s.Rate() != 0 {
		t.Fatal("nil sampler rate != 0")
	}
	if NewSampler(1) == nil || !NewSampler(1).Sampled(addr(99)) {
		t.Fatal("rate 1 must sample every customer")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Sampled(addr(1)) || r.Rate() != 0 || r.Node() != "" {
		t.Fatal("nil recorder accessors not zero-valued")
	}
	r.Record(addr(1), time.Now(), StageStep, time.Millisecond, "x")
	r.RecordOrigin(addr(1), time.Now(), time.Now())
	r.RecordSeal(addr(1), time.Now(), time.Now())
	if r.Snapshot() != nil || r.StageStats() != nil {
		t.Fatal("nil recorder returned data")
	}
	var doc traceDoc
	if err := json.Unmarshal(r.JSON(), &doc); err != nil {
		t.Fatalf("nil recorder JSON invalid: %v", err)
	}
	if NewRecorder("n", nil, 0) != nil {
		t.Fatal("NewRecorder with nil sampler should be nil")
	}
}

func TestRecorderRingWraparound(t *testing.T) {
	r := NewRecorder("n1", NewSampler(1), 4)
	at := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		r.Record(addr(i), at, StageStep, time.Duration(i)*time.Millisecond, fmt.Sprintf("e%d", i))
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring of 4 retained %d events", len(snap))
	}
	// Oldest first: events 6, 7, 8, 9.
	for i, e := range snap {
		if want := fmt.Sprintf("e%d", 6+i); e.Detail != want {
			t.Fatalf("snap[%d] = %s, want %s", i, e.Detail, want)
		}
		if e.Node != "n1" {
			t.Fatalf("event node %q, want n1", e.Node)
		}
	}
	// The histogram still counted every observation, not just the ring.
	for _, st := range r.StageStats() {
		if st.Stage == "step" && st.Count != 10 {
			t.Fatalf("step count %d, want 10", st.Count)
		}
	}
}

func TestRecordSealEmitsOriginChain(t *testing.T) {
	r := NewRecorder("n1", NewSampler(1), 0)
	c := addr(7)
	export := time.Unix(100, 0)
	decode := export.Add(3 * time.Millisecond)
	seal := decode.Add(5 * time.Millisecond)
	at := time.Unix(90, 0) // step (bucket) time
	r.RecordOrigin(c, export, decode)
	r.RecordSeal(c, at, seal)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("got %d events, want export/decode/seal", len(snap))
	}
	wantStages := []Stage{StageExport, StageDecode, StageSeal}
	for i, e := range snap {
		if e.Stage != wantStages[i] {
			t.Fatalf("event %d stage %v, want %v", i, e.Stage, wantStages[i])
		}
		if !e.At.Equal(at) {
			t.Fatalf("event %d keyed at %v, want step time %v", i, e.At, at)
		}
		if e.Customer != c {
			t.Fatalf("event %d customer %v", i, e.Customer)
		}
	}
	if got := snap[1].Latency; got != 3*time.Millisecond {
		t.Fatalf("decode latency %v, want 3ms", got)
	}
	if got := snap[2].Latency; got != 5*time.Millisecond {
		t.Fatalf("seal latency %v, want 5ms", got)
	}

	// The origin was consumed: a second seal for the same customer has no
	// export/decode to replay.
	r.RecordSeal(c, at.Add(time.Minute), seal.Add(time.Minute))
	if got := len(r.Snapshot()); got != 4 {
		t.Fatalf("second seal emitted %d extra events, want 1", got-3)
	}
}

func TestStageStatsExemplar(t *testing.T) {
	r := NewRecorder("n1", NewSampler(1), 0)
	at := time.Unix(50, 0)
	r.Record(addr(1), at, StageStep, time.Millisecond, "fast")
	r.Record(addr(2), at, StageStep, 90*time.Millisecond, "slow")
	r.Record(addr(3), at, StageStep, 2*time.Millisecond, "mid")
	stats := r.StageStats()
	if len(stats) != 1 {
		t.Fatalf("got %d stages, want 1", len(stats))
	}
	st := stats[0]
	if st.Stage != "step" || st.Count != 3 {
		t.Fatalf("stat %+v", st)
	}
	if st.MaxUS != 90_000 {
		t.Fatalf("max %dµs, want 90000", st.MaxUS)
	}
	if st.Exemplar == nil || st.Exemplar.Detail != "slow" {
		t.Fatalf("exemplar %+v, want the slow event", st.Exemplar)
	}
	var total uint64
	for _, b := range st.Buckets {
		total += b
	}
	if total != 3 {
		t.Fatalf("bucket total %d, want 3", total)
	}
}

func TestRecorderJSONShape(t *testing.T) {
	r := NewRecorder("n1", NewSampler(2), 0)
	r.Record(addr(4), time.Unix(10, 0), StageFanin, time.Millisecond, "d")
	var doc struct {
		Node  string `json:"node"`
		Rate  int    `json:"rate"`
		Spans []struct {
			Customer string `json:"customer"`
			Stage    string `json:"stage"`
			Node     string `json:"node"`
			Latency  int64  `json:"latency_us"`
		} `json:"spans"`
		Stages []StageStat `json:"stages"`
	}
	if err := json.Unmarshal(r.JSON(), &doc); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if doc.Node != "n1" || doc.Rate != 2 || len(doc.Spans) != 1 || len(doc.Stages) != 1 {
		t.Fatalf("doc %+v", doc)
	}
	sp := doc.Spans[0]
	if sp.Stage != "fanin" || sp.Node != "n1" || sp.Latency != 1000 || sp.Customer != addr(4).String() {
		t.Fatalf("span %+v", sp)
	}
}

// TestUnsampledPathAllocs pins the disabled and unsampled hot paths at
// zero allocations — the overhead contract that lets the trace hooks sit
// on the ingest and engine fast paths.
func TestUnsampledPathAllocs(t *testing.T) {
	var nilRec *Recorder
	c := addr(3)
	if n := testing.AllocsPerRun(1000, func() {
		if nilRec != nil && nilRec.Sampled(c) {
			t.Fatal("unreachable")
		}
	}); n != 0 {
		t.Fatalf("disabled hook: %v allocs/op, want 0", n)
	}

	// Rate so high none of the probed addresses sample: the hook pays the
	// hash and nothing else.
	r := NewRecorder("n1", NewSampler(1<<40), 0)
	sampledAny := false
	for i := 0; i < 1000; i++ {
		if r.Sampled(addr(i)) {
			sampledAny = true
		}
	}
	if sampledAny {
		t.Skip("improbable: an address sampled at rate 2^40")
	}
	if n := testing.AllocsPerRun(1000, func() {
		if r.Sampled(c) {
			t.Fatal("unreachable")
		}
	}); n != 0 {
		t.Fatalf("unsampled hook: %v allocs/op, want 0", n)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder("n1", NewSampler(1), 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			at := time.Unix(int64(g), 0)
			for i := 0; i < 200; i++ {
				c := addr(g*200 + i)
				r.RecordOrigin(c, at, at.Add(time.Millisecond))
				r.RecordSeal(c, at, at.Add(2*time.Millisecond))
				r.Record(c, at, StageStep, time.Millisecond, "")
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Snapshot()
				r.StageStats()
				_ = r.JSON()
			}
		}()
	}
	wg.Wait()
	var total uint64
	for _, st := range r.StageStats() {
		total += st.Count
	}
	// 8 goroutines × 200 iterations × 4 events (export+decode+seal+step).
	if want := uint64(8 * 200 * 4); total != want {
		t.Fatalf("observed %d events, want %d", total, want)
	}
}
