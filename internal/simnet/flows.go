package simnet

import (
	"math"
	"net/netip"
	"sort"
	"time"

	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/netflow"
)

// FlowsAt deterministically generates the flow records arriving at customer
// ci during step. The same (world seed, ci, step) always produces the same
// flows. Records carry wall-clock times inside the step.
func (w *World) FlowsAt(ci, step int) []netflow.Record {
	if ci < 0 || ci >= len(w.Customers) || step < 0 || step >= w.Cfg.Steps() {
		return nil
	}
	var out []netflow.Record
	out = w.benignFlows(out, ci, step)
	out = w.chatterFlows(out, ci, step)
	for _, ei := range w.eventsByVictim[ci] {
		ev := &w.Events[ei]
		out = w.prepFlowsAt(out, ev, step)
		if step >= ev.StartStep && step < ev.EndStep() {
			out = w.attackFlows(out, ev, step)
		}
	}
	return out
}

// BenignMbps returns the benign traffic model's rate for customer ci at
// step (before flow-level discretization), exposed for tests and the
// example detectors.
func (w *World) BenignMbps(ci, step int) float64 {
	c := &w.Customers[ci]
	t := w.Cfg.TimeOf(step)
	hour := float64(t.Hour()) + float64(t.Minute())/60
	diurnal := 1 + c.DiurnalAmp*math.Cos(2*math.Pi*(hour-c.PeakHour)/24)
	weekly := 1.0
	if wd := t.Weekday(); wd == time.Saturday || wd == time.Sunday {
		weekly = c.WeekendFactor
	}
	d := newDet(uint64(w.Cfg.Seed), 0xBE9199, uint64(ci), uint64(step))
	noise := d.lognorm(0, c.NoiseSigma)
	burst := 1.0
	// Bursts are sorted; binary search for any window containing step.
	i := sort.Search(len(c.Bursts), func(i int) bool {
		return c.Bursts[i].StartStep+c.Bursts[i].DurSteps > step
	})
	if i < len(c.Bursts) && c.Bursts[i].StartStep <= step {
		burst = c.Bursts[i].Factor
	}
	return c.BaseMbps * diurnal * weekly * noise * burst
}

// stepBytes converts an Mbps rate into bytes carried during one step.
func (w *World) stepBytes(mbps float64) float64 {
	return mbps * 1e6 / 8 * w.Cfg.Step.Seconds()
}

func (w *World) benignFlows(out []netflow.Record, ci, step int) []netflow.Record {
	c := &w.Customers[ci]
	mbps := w.BenignMbps(ci, step)
	total := w.stepBytes(mbps)
	d := newDet(uint64(w.Cfg.Seed), 0xF10BE, uint64(ci), uint64(step))
	nf := w.Cfg.BenignFlowsPerStep - 2 + d.intn(5)
	if nf < 1 {
		nf = 1
	}
	start, end := w.stepWindow(step)
	for f := 0; f < nf; f++ {
		share := total / float64(nf) * (0.5 + d.float64())
		src := c.BenignPool[d.intn(len(c.BenignPool))]
		r := netflow.Record{
			Src: src, Dst: c.Addr,
			Start: start, End: end,
			Bytes: clampU32(share),
		}
		switch p := d.float64(); {
		case p < 0.72: // web-ish TCP
			r.Proto = netflow.ProtoTCP
			r.TCPFlags = netflow.FlagACK
			if d.float64() < 0.5 {
				r.TCPFlags |= netflow.FlagPSH
			}
			r.SrcPort = ephemeral(d)
			r.DstPort = pick(d, 443, 80, 80, 443, 8080)
			r.Packets = pktsFor(r.Bytes, 900)
		case p < 0.80: // benign connection setup
			r.Proto = netflow.ProtoTCP
			r.TCPFlags = netflow.FlagSYN
			r.SrcPort = ephemeral(d)
			r.DstPort = pick(d, 443, 80)
			r.Bytes = clampU32(float64(min(r.Bytes, 4000)))
			r.Packets = pktsFor(r.Bytes, 60)
		case p < 0.92: // DNS / NTP / misc UDP
			r.Proto = netflow.ProtoUDP
			if d.float64() < 0.5 {
				r.SrcPort = 53
				r.DstPort = ephemeral(d)
			} else {
				r.SrcPort = ephemeral(d)
				r.DstPort = pick(d, 53, 123, 443)
			}
			r.Packets = pktsFor(r.Bytes, 300)
		default: // a little ICMP
			r.Proto = netflow.ProtoICMP
			r.Bytes = clampU32(float64(min(r.Bytes, 2000)))
			r.Packets = pktsFor(r.Bytes, 84)
		}
		if route, ok := w.Routes.Lookup(src); ok {
			r.SrcAS = uint16(route.Origin)
		}
		out = append(out, r)
	}
	return out
}

// chatterFlows injects occasional benign-looking traffic from bot addresses
// unrelated to any scheduled attack. This is what makes the auxiliary
// signals *weak*: most blocklisted-source activity is not followed by an
// attack (§3.2: 95.5% of the time in the paper's data).
func (w *World) chatterFlows(out []netflow.Record, ci, step int) []netflow.Record {
	d := newDet(uint64(w.Cfg.Seed), 0xC4A77E2, uint64(ci), uint64(step))
	if d.float64() >= 0.06 {
		return out
	}
	bn := &w.Botnets[d.intn(len(w.Botnets))]
	start, end := w.stepWindow(step)
	n := 1 + d.intn(2)
	for f := 0; f < n; f++ {
		src := bn.Bots[d.intn(len(bn.Bots))]
		r := netflow.Record{
			Src: src, Dst: w.Customers[ci].Addr,
			Proto: netflow.ProtoTCP, TCPFlags: netflow.FlagSYN,
			SrcPort: ephemeral(d), DstPort: pick(d, 80, 443, 22, 23),
			Bytes: uint32(120 + d.intn(2000)), Start: start, End: end,
		}
		r.Packets = pktsFor(r.Bytes, 60)
		if route, ok := w.Routes.Lookup(src); ok {
			r.SrcAS = uint16(route.Origin)
		}
		out = append(out, r)
	}
	return out
}

// prepFlowsAt emits the preparation-phase flows scheduled for this step.
func (w *World) prepFlowsAt(out []netflow.Record, ev *AttackEvent, step int) []netflow.Record {
	if ev.VolumeScale == 0 {
		return out // evasion experiment removed these attackers entirely
	}
	pf := ev.prepFlows
	i := sort.Search(len(pf), func(i int) bool { return pf[i].step >= int32(step) })
	start, end := w.stepWindow(step)
	d := newDet(uint64(w.Cfg.Seed), 0x93E9, uint64(ev.ID), uint64(step))
	for ; i < len(pf) && pf[i].step == int32(step); i++ {
		var src netip.Addr
		switch pf[i].kind {
		case prepResolver:
			src = w.Resolvers[int(pf[i].bot)%len(w.Resolvers)]
		default:
			src = w.Botnets[ev.BotnetID].Bots[int(pf[i].bot)]
		}
		r := netflow.Record{
			Src: src, Dst: ev.Victim,
			Start: start, End: end,
			Bytes: uint32(80 + d.intn(4000)),
		}
		switch pf[i].kind {
		case prepScan:
			r.Proto = netflow.ProtoTCP
			r.TCPFlags = netflow.FlagSYN
			r.SrcPort = ephemeral(d)
			r.DstPort = uint16(d.intn(1024))
			r.Bytes = uint32(60 + d.intn(500))
			r.Packets = pktsFor(r.Bytes, 60)
		case prepResolver:
			r.Proto = netflow.ProtoUDP
			r.SrcPort = 53
			r.DstPort = ephemeral(d)
			r.Packets = pktsFor(r.Bytes, 400)
		default: // prepTest: tiny attack-shaped probe
			w.shapeAttackFlow(&r, ev, d)
			r.Bytes = uint32(100 + d.intn(3000))
			r.Packets = pktsFor(r.Bytes, attackPktSize(ev.Type))
		}
		if route, ok := w.Routes.Lookup(src); ok {
			r.SrcAS = uint16(route.Origin)
		}
		out = append(out, r)
	}
	return out
}

// AnomalousMbps returns the anomalous (attack) rate of ev at the given
// step, applying the ramp model of Appendix G and any evasion scaling.
// Steps outside the anomalous window return 0.
func (w *World) AnomalousMbps(ev *AttackEvent, step int) float64 {
	if step < ev.StartStep || step >= ev.EndStep() {
		return 0
	}
	minutes := float64(step-ev.StartStep) * w.Cfg.Step.Minutes()
	const v0 = 0.5 // Mbps at anomaly start
	v := v0 * math.Pow(2, ev.DR*minutes)
	if v > ev.PeakMbps {
		v = ev.PeakMbps
	}
	if ev.VolumeScale != 1 && step-ev.StartStep < ev.VolumeScaleSteps {
		v *= ev.VolumeScale
	}
	return v
}

func (w *World) attackFlows(out []netflow.Record, ev *AttackEvent, step int) []netflow.Record {
	mbps := w.AnomalousMbps(ev, step)
	if mbps <= 0 {
		return out
	}
	total := w.stepBytes(mbps)
	d := newDet(uint64(w.Cfg.Seed), 0xA77AC4F1, uint64(ev.ID), uint64(step))
	nf := 6 + d.intn(8)
	if total < 20000 {
		nf = 2 + d.intn(3)
	}
	bots := w.Botnets[ev.BotnetID].Bots
	start, end := w.stepWindow(step)
	for f := 0; f < nf; f++ {
		share := total / float64(nf) * (0.6 + 0.8*d.float64())
		r := netflow.Record{Dst: ev.Victim, Start: start, End: end, Bytes: clampU32(share)}
		w.shapeAttackFlow(&r, ev, d)
		r.Packets = pktsFor(r.Bytes, attackPktSize(ev.Type))
		// Source selection: resolvers for reflection, bots otherwise, with a
		// spoofed fraction for spoof-capable types.
		switch {
		case ev.Type == ddos.DNSAmp:
			r.Src = w.Resolvers[d.intn(len(w.Resolvers))]
		case spoofCapable(ev.Type) && d.float64() < w.Cfg.SpoofFraction:
			r.Src = w.randomUnroutedAddr(d)
		default:
			r.Src = bots[d.intn(len(bots))]
		}
		if route, ok := w.Routes.Lookup(r.Src); ok {
			r.SrcAS = uint16(route.Origin)
		}
		out = append(out, r)
	}
	return out
}

// shapeAttackFlow fills protocol, ports and flags according to attack type.
func (w *World) shapeAttackFlow(r *netflow.Record, ev *AttackEvent, d *det) {
	switch ev.Type {
	case ddos.UDPFlood:
		r.Proto = netflow.ProtoUDP
		r.SrcPort = ephemeral(d)
		r.DstPort = pick(d, 80, 443, 0, 123)
	case ddos.DNSAmp:
		r.Proto = netflow.ProtoUDP
		r.SrcPort = 53
		r.DstPort = ephemeral(d)
	case ddos.TCPACK:
		r.Proto = netflow.ProtoTCP
		r.TCPFlags = netflow.FlagACK
		r.SrcPort = ephemeral(d)
		r.DstPort = pick(d, 80, 443)
	case ddos.TCPSYN:
		r.Proto = netflow.ProtoTCP
		r.TCPFlags = netflow.FlagSYN
		r.SrcPort = ephemeral(d)
		r.DstPort = pick(d, 80, 443)
	case ddos.TCPRST:
		r.Proto = netflow.ProtoTCP
		r.TCPFlags = netflow.FlagRST
		r.SrcPort = ephemeral(d)
		r.DstPort = pick(d, 80, 443)
	case ddos.ICMPFlood:
		r.Proto = netflow.ProtoICMP
	}
}

// spoofCapable reports whether the attack type plausibly spoofs sources.
func spoofCapable(at ddos.AttackType) bool {
	switch at {
	case ddos.TCPSYN, ddos.UDPFlood, ddos.ICMPFlood, ddos.TCPRST:
		return true
	default:
		return false // ACK floods need real connections-ish bots; DNSAmp uses resolvers
	}
}

// attackPktSize returns a typical packet size in bytes per attack type.
func attackPktSize(at ddos.AttackType) int {
	switch at {
	case ddos.TCPSYN, ddos.TCPRST, ddos.TCPACK:
		return 60
	case ddos.DNSAmp:
		return 1200
	case ddos.ICMPFlood:
		return 84
	default:
		return 512
	}
}

func (w *World) stepWindow(step int) (time.Time, time.Time) {
	start := w.Cfg.TimeOf(step)
	return start, start.Add(w.Cfg.Step - time.Second)
}

// SignatureBytes sums, per attack type, the bytes at customer ci during
// step that match each canonical signature, plus the total bytes. This is
// the per-step view CDet-style detectors monitor.
func (w *World) SignatureBytes(ci, step int) (perType [ddos.NumAttackTypes]float64, total float64) {
	victim := w.Customers[ci].Addr
	var sigs [ddos.NumAttackTypes]ddos.Signature
	for at := ddos.AttackType(0); at < ddos.NumAttackTypes; at++ {
		sigs[at] = ddos.SignatureFor(at, victim)
	}
	for _, r := range w.FlowsAt(ci, step) {
		total += float64(r.Bytes)
		for at := range sigs {
			if sigs[at].Matches(r) {
				perType[at] += float64(r.Bytes)
			}
		}
	}
	return perType, total
}

func ephemeral(d *det) uint16 { return uint16(32768 + d.intn(28000)) }

func pick(d *det, opts ...uint16) uint16 { return opts[d.intn(len(opts))] }

func pktsFor(bytes uint32, pktSize int) uint32 {
	n := bytes / uint32(pktSize)
	if n == 0 {
		n = 1
	}
	return n
}

func clampU32(v float64) uint32 {
	if v < 1 {
		return 1
	}
	if v > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(v)
}
