// Package simnet simulates the ISP world the paper measures (§2.2, §3): a
// provider serving many customers, with diurnal benign traffic, benign
// bursts, botnets that prepare and launch the six prevalent DDoS attack
// types, public blocklists that partially cover those botnets, spoofed
// traffic, per-customer attack repetition, and cross-customer correlated
// campaigns. Flow records are generated lazily and deterministically: the
// same (seed, customer, step) always yields the same flows, so multiple
// passes over the dataset (CDet labeling, feature extraction, metric
// accounting) see identical traffic without storing terabytes.
package simnet

import (
	"time"

	"github.com/xatu-go/xatu/internal/ddos"
)

// Config parameterizes a World. The zero value is unusable; start from
// DefaultConfig and override.
type Config struct {
	Seed int64
	// Start is the wall-clock time of step 0.
	Start time.Time
	// Step is the simulation resolution. The paper operates on 1-minute
	// NetFlow aggregates; scaled-down experiments may use coarser steps.
	Step time.Duration
	// Days is the simulated horizon.
	Days int

	// NumCustomers is the number of protected customer addresses.
	NumCustomers int
	// NumBotnets is the number of independent attacker pools.
	NumBotnets int
	// BotsPerBotnet is the size of each pool.
	BotsPerBotnet int
	// ResolverPoolSize is the shared pool of open DNS resolvers used by
	// DNS-amplification attacks (deliberately not blocklisted, mirroring
	// §6.3's observation that reflector sources evade A1/A3).
	ResolverPoolSize int

	// MeanAttacksPerBotnetPerWeek controls campaign density.
	MeanAttacksPerBotnetPerWeek float64
	// TypeMix is the stationary distribution over attack types; defaults to
	// Table 2's proportions. Must sum to ~1.
	TypeMix [ddos.NumAttackTypes]float64
	// SameTypeRepeatProb is the probability the next attack on a customer
	// repeats the previous type (97.9% in the paper's Fig 4(b)).
	SameTypeRepeatProb float64
	// BotnetReuseProb is the probability a repeat attack reuses the same
	// botnet (drives the A2 signal strength).
	BotnetReuseProb float64

	// PrepDaysMax bounds the preparation window before an attack (the paper
	// observes activity up to 10 days ahead).
	PrepDaysMax int
	// BlocklistCoverage is the fraction of bot /24s that appear on public
	// blocklists ("blocklists may miss some repeat offenders").
	BlocklistCoverage float64
	// BlocklistFalsePositives is the number of benign /24s listed anyway
	// ("and may contain legitimate addresses").
	BlocklistFalsePositives int
	// SpoofFraction is the fraction of attack traffic carrying obviously
	// spoofed sources for spoof-capable attack types.
	SpoofFraction float64

	// MeanPeakMbps scales attack volume; the paper reports ~75% of attacks
	// peak below 21 Mbps.
	MeanPeakMbps float64
	// BaseMbpsMin/Max bound per-customer benign baselines.
	BaseMbpsMin, BaseMbpsMax float64
	// BenignBurstsPerDay is the Poisson rate of benign traffic spikes per
	// customer (what makes naive sensitive detection produce false alarms).
	BenignBurstsPerDay float64

	// BenignFlowsPerStep bounds how many benign flow records a customer
	// emits per step (the generator splits baseline volume across them).
	BenignFlowsPerStep int
}

// DefaultConfig returns a laptop-scale configuration that preserves the
// paper's signal structure. Durations/volumes follow §2.3: most attacks are
// short and low-volume.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Start:            time.Date(2019, 4, 24, 0, 0, 0, 0, time.UTC),
		Step:             time.Minute,
		Days:             25,
		NumCustomers:     24,
		NumBotnets:       6,
		BotsPerBotnet:    80,
		ResolverPoolSize: 120,

		MeanAttacksPerBotnetPerWeek: 6,
		TypeMix: [ddos.NumAttackTypes]float64{
			ddos.UDPFlood: 0.263, ddos.TCPACK: 0.620, ddos.TCPSYN: 0.014,
			ddos.TCPRST: 0.011, ddos.DNSAmp: 0.072, ddos.ICMPFlood: 0.020,
		},
		SameTypeRepeatProb: 0.979,
		BotnetReuseProb:    0.85,

		PrepDaysMax:             10,
		BlocklistCoverage:       0.6,
		BlocklistFalsePositives: 40,
		SpoofFraction:           0.35,

		MeanPeakMbps:       14,
		BaseMbpsMin:        1.5,
		BaseMbpsMax:        8,
		BenignBurstsPerDay: 0.8,
		BenignFlowsPerStep: 8,
	}
}

// Steps returns the total number of simulation steps in the horizon.
func (c Config) Steps() int {
	return int((time.Duration(c.Days) * 24 * time.Hour) / c.Step)
}

// StepsPerDay returns how many steps make up one simulated day.
func (c Config) StepsPerDay() int {
	return int((24 * time.Hour) / c.Step)
}

// TimeOf converts a step index to wall-clock time.
func (c Config) TimeOf(step int) time.Time {
	return c.Start.Add(time.Duration(step) * c.Step)
}

// StepOf converts a wall-clock time to the step index containing it.
func (c Config) StepOf(t time.Time) int {
	return int(t.Sub(c.Start) / c.Step)
}

// Validate reports configuration errors early.
func (c Config) Validate() error {
	switch {
	case c.Step <= 0:
		return errConfig("Step must be positive")
	case c.Days <= 0:
		return errConfig("Days must be positive")
	case c.NumCustomers <= 0 || c.NumCustomers > 60000:
		return errConfig("NumCustomers out of range")
	case c.NumBotnets <= 0:
		return errConfig("NumBotnets must be positive")
	case c.BotsPerBotnet <= 0:
		return errConfig("BotsPerBotnet must be positive")
	case c.PrepDaysMax < 0:
		return errConfig("PrepDaysMax must be non-negative")
	case c.BaseMbpsMin <= 0 || c.BaseMbpsMax < c.BaseMbpsMin:
		return errConfig("benign baseline bounds invalid")
	case c.BenignFlowsPerStep <= 0:
		return errConfig("BenignFlowsPerStep must be positive")
	}
	var mix float64
	for _, p := range c.TypeMix {
		if p < 0 {
			return errConfig("TypeMix entries must be non-negative")
		}
		mix += p
	}
	if mix < 0.99 || mix > 1.01 {
		return errConfig("TypeMix must sum to 1")
	}
	return nil
}

type errConfig string

func (e errConfig) Error() string { return "simnet: invalid config: " + string(e) }
