package simnet

import "net/netip"

// Countries is the list of source countries the volumetric feature set
// disaggregates (Appendix D's top-10 plus a catch-all).
var Countries = []string{"US", "IN", "SA", "CN", "GB", "NL", "FR", "DE", "BR", "CA", "other"}

// CountryIndex maps a country code to its position in Countries, or the
// catch-all index when unknown.
func CountryIndex(code string) int {
	for i, c := range Countries {
		if c == code {
			return i
		}
	}
	return len(Countries) - 1
}

// GeoOf deterministically assigns a country to an IPv4 address, standing in
// for a geolocation database. The mapping hashes the /16 so that subnets
// are geographically coherent, and is weighted so the named countries carry
// most traffic (the paper: the top 10 countries cover >95% of traffic).
func GeoOf(addr netip.Addr) string {
	a := addr.Unmap().As4()
	h := hash(uint64(a[0])<<8 | uint64(a[1]))
	// 95% of /16s land in the 10 named countries, the rest in "other".
	if h%100 < 95 {
		return Countries[h%10]
	}
	return "other"
}
