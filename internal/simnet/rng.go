package simnet

import "math"

// splitmix64 is the deterministic per-event hash/PRNG the generator uses so
// that flows for a given (seed, customer, step) are reproducible without
// storing state. It is the standard SplitMix64 finalizer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hash combines parts into one 64-bit value via iterated SplitMix64.
func hash(parts ...uint64) uint64 {
	h := uint64(0x243F6A8885A308D3)
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return h
}

// det is a tiny deterministic generator seeded from a hash. It is NOT
// cryptographic; it only needs to be stable and well-mixed.
type det struct{ state uint64 }

func newDet(parts ...uint64) *det { return &det{state: hash(parts...)} }

func (d *det) next() uint64 {
	d.state += 0x9E3779B97F4A7C15
	x := d.state
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// float64 returns a uniform value in [0,1).
func (d *det) float64() float64 {
	return float64(d.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0,n). n must be positive.
func (d *det) intn(n int) int {
	return int(d.next() % uint64(n))
}

// norm returns a standard normal deviate (Box–Muller).
func (d *det) norm() float64 {
	u1 := d.float64()
	for u1 == 0 {
		u1 = d.float64()
	}
	u2 := d.float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// expo returns an exponential deviate with the given mean.
func (d *det) expo(mean float64) float64 {
	u := d.float64()
	for u == 0 {
		u = d.float64()
	}
	return -mean * math.Log(u)
}

// lognorm returns exp(mu + sigma*N(0,1)).
func (d *det) lognorm(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*d.norm())
}
