package simnet

import (
	"net/netip"
	"testing"
	"time"

	"github.com/xatu-go/xatu/internal/ddos"
)

// smallConfig keeps test worlds fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Days = 6
	cfg.NumCustomers = 8
	cfg.NumBotnets = 3
	cfg.BotsPerBotnet = 30
	cfg.ResolverPoolSize = 20
	cfg.MeanAttacksPerBotnetPerWeek = 10
	cfg.PrepDaysMax = 4
	return cfg
}

func mustWorld(t *testing.T, cfg Config) *World {
	t.Helper()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Step = 0 },
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.NumCustomers = 0 },
		func(c *Config) { c.NumBotnets = 0 },
		func(c *Config) { c.BotsPerBotnet = 0 },
		func(c *Config) { c.PrepDaysMax = -1 },
		func(c *Config) { c.BaseMbpsMin = 0 },
		func(c *Config) { c.BaseMbpsMax = 0.5 },
		func(c *Config) { c.BenignFlowsPerStep = 0 },
		func(c *Config) { c.TypeMix[0] = -0.1 },
		func(c *Config) { c.TypeMix = [ddos.NumAttackTypes]float64{} },
	}
	for i, mutate := range bad {
		c := smallConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestConfigTimeMath(t *testing.T) {
	cfg := smallConfig()
	if cfg.Steps() != 6*24*60 {
		t.Fatalf("Steps = %d", cfg.Steps())
	}
	if cfg.StepsPerDay() != 1440 {
		t.Fatalf("StepsPerDay = %d", cfg.StepsPerDay())
	}
	ts := cfg.TimeOf(90)
	if cfg.StepOf(ts) != 90 {
		t.Fatal("TimeOf/StepOf must round-trip")
	}
}

func TestWorldDeterministic(t *testing.T) {
	cfg := smallConfig()
	w1 := mustWorld(t, cfg)
	w2 := mustWorld(t, cfg)
	if len(w1.Events) != len(w2.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(w1.Events), len(w2.Events))
	}
	for i := range w1.Events {
		a, b := w1.Events[i], w2.Events[i]
		if a.Victim != b.Victim || a.Type != b.Type || a.StartStep != b.StartStep || a.PeakMbps != b.PeakMbps {
			t.Fatalf("event %d differs", i)
		}
	}
	// Flow-level determinism at a few probes.
	for _, probe := range [][2]int{{0, 100}, {3, 5000}, {7, 8000}} {
		f1 := w1.FlowsAt(probe[0], probe[1])
		f2 := w2.FlowsAt(probe[0], probe[1])
		if len(f1) != len(f2) {
			t.Fatalf("flow counts differ at %v", probe)
		}
		for i := range f1 {
			if f1[i] != f2[i] {
				t.Fatalf("flow %d at %v differs", i, probe)
			}
		}
	}
}

func TestWorldHasAttacks(t *testing.T) {
	w := mustWorld(t, smallConfig())
	if len(w.Events) < 5 {
		t.Fatalf("too few attacks scheduled: %d", len(w.Events))
	}
	for i := range w.Events {
		ev := &w.Events[i]
		if ev.StartStep < 0 || ev.EndStep() > w.Cfg.Steps() {
			t.Fatalf("event %d outside horizon", i)
		}
		if ev.PeakMbps <= 0 || ev.DurSteps <= 0 || ev.DR <= 0 {
			t.Fatalf("event %d has degenerate params: %+v", i, ev)
		}
		if ev.VolumeScale != 1 {
			t.Fatalf("event %d must start without evasion", i)
		}
	}
}

func TestNoOverlappingAttacksPerVictim(t *testing.T) {
	w := mustWorld(t, smallConfig())
	for ci := range w.Customers {
		evs := w.EventsFor(ci)
		for i := 1; i < len(evs); i++ {
			prev, cur := &w.Events[evs[i-1]], &w.Events[evs[i]]
			if cur.StartStep < prev.EndStep() {
				t.Fatalf("customer %d has overlapping attacks %d and %d", ci, evs[i-1], evs[i])
			}
		}
	}
}

func TestAttackTypeRepetition(t *testing.T) {
	// Fig 4(b): consecutive attacks on the same customer repeat their type
	// the vast majority of the time.
	cfg := smallConfig()
	cfg.Days = 20
	cfg.MeanAttacksPerBotnetPerWeek = 14
	w := mustWorld(t, cfg)
	same, total := 0, 0
	for ci := range w.Customers {
		evs := w.EventsFor(ci)
		for i := 1; i < len(evs); i++ {
			total++
			if w.Events[evs[i]].Type == w.Events[evs[i-1]].Type {
				same++
			}
		}
	}
	if total < 10 {
		t.Skipf("not enough consecutive pairs (%d)", total)
	}
	if frac := float64(same) / float64(total); frac < 0.8 {
		t.Fatalf("same-type repetition %.2f, want ≥0.8", frac)
	}
}

func TestAnomalousMbpsRamp(t *testing.T) {
	w := mustWorld(t, smallConfig())
	ev := &w.Events[0]
	if got := w.AnomalousMbps(ev, ev.StartStep-1); got != 0 {
		t.Fatalf("rate before start = %v", got)
	}
	if got := w.AnomalousMbps(ev, ev.EndStep()); got != 0 {
		t.Fatalf("rate after end = %v", got)
	}
	// Rate must be non-decreasing until it hits the peak.
	prev := 0.0
	for s := ev.StartStep; s < ev.EndStep(); s++ {
		v := w.AnomalousMbps(ev, s)
		if v < prev-1e-9 {
			t.Fatalf("ramp decreased at step %d: %v -> %v", s, prev, v)
		}
		if v > ev.PeakMbps+1e-9 {
			t.Fatalf("rate %v exceeds peak %v", v, ev.PeakMbps)
		}
		prev = v
	}
}

func TestVolumeScaleEvasion(t *testing.T) {
	w := mustWorld(t, smallConfig())
	ev := &w.Events[0]
	base := w.AnomalousMbps(ev, ev.StartStep)
	ev.VolumeScale = 0.25
	ev.VolumeScaleSteps = 3
	if got := w.AnomalousMbps(ev, ev.StartStep); got != base*0.25 {
		t.Fatalf("scaled rate = %v, want %v", got, base*0.25)
	}
	// Beyond the scaling window the rate is unscaled again.
	if w.AnomalousMbps(ev, ev.StartStep+3) != w.AnomalousMbps(ev, ev.StartStep+3) {
		t.Fatal("unreachable")
	}
	ev.VolumeScale = 1
	ev.VolumeScaleSteps = 0
}

func TestAttackFlowsMatchSignature(t *testing.T) {
	w := mustWorld(t, smallConfig())
	for i := range w.Events {
		ev := &w.Events[i]
		sig := ev.Signature()
		// Probe a step late in the attack where volume is near peak.
		step := ev.EndStep() - 1
		var matched float64
		for _, r := range w.FlowsAt(ev.VictimIdx, step) {
			if err := r.Validate(); err != nil {
				t.Fatalf("event %d: invalid flow: %v", i, err)
			}
			if sig.Matches(r) {
				matched += float64(r.Bytes)
			}
		}
		want := w.stepBytes(w.AnomalousMbps(ev, step))
		if matched < want*0.5 {
			t.Fatalf("event %d (%v): matched bytes %v below half of anomalous %v", i, ev.Type, matched, want)
		}
	}
}

func TestBenignTrafficProperties(t *testing.T) {
	w := mustWorld(t, smallConfig())
	// Find a quiet customer-step far from any attack.
	ci := 0
	step := 50
	var total float64
	for _, r := range w.FlowsAt(ci, step) {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		if r.Dst != w.Customers[ci].Addr {
			t.Fatal("flows must target the customer")
		}
		total += float64(r.Bytes)
	}
	model := w.stepBytes(w.BenignMbps(ci, step))
	if total < model*0.4 || total > model*2.5 {
		t.Fatalf("benign bytes %v too far from model %v", total, model)
	}
}

func TestBenignDiurnalCycle(t *testing.T) {
	w := mustWorld(t, smallConfig())
	c := &w.Customers[0]
	// Average the model rate at the peak hour vs the trough hour across days.
	peakStep := int(c.PeakHour * 60)
	troughStep := (peakStep + 720) % 1440
	var peakSum, troughSum float64
	days := 5
	for d := 0; d < days; d++ {
		peakSum += w.BenignMbps(0, d*1440+peakStep)
		troughSum += w.BenignMbps(0, d*1440+troughStep)
	}
	if peakSum <= troughSum {
		t.Fatalf("diurnal cycle missing: peak %v ≤ trough %v", peakSum, troughSum)
	}
}

func TestPrepActivityIncreasesTowardAttack(t *testing.T) {
	// Fig 15: more prep flows in the final days before the attack than in
	// the earliest prep days. Aggregate across events for stability.
	cfg := smallConfig()
	cfg.Days = 12
	cfg.PrepDaysMax = 6
	w := mustWorld(t, cfg)
	spd := cfg.StepsPerDay()
	// Count prep flows per days-before-attack band and compare per-day rates.
	perDay := map[int]int{}
	for i := range w.Events {
		ev := &w.Events[i]
		if ev.PrepDays < 4 || ev.StartStep < 4*spd {
			continue
		}
		for _, pf := range ev.prepFlows {
			daysBefore := (ev.StartStep - int(pf.step) - 1) / spd
			perDay[daysBefore]++
		}
	}
	if perDay[0] == 0 {
		t.Fatal("no prep flows the day before attacks")
	}
	if perDay[0] <= perDay[3] {
		t.Fatalf("per-day prep activity must rise toward the attack: day-1=%d day-4=%d", perDay[0], perDay[3])
	}
}

func TestBlocklistCoversBotsPartially(t *testing.T) {
	w := mustWorld(t, smallConfig())
	at := w.Cfg.Start
	listed, unlisted := 0, 0
	for _, bn := range w.Botnets {
		for _, b := range bn.Bots {
			if w.Blocklists.AnyListedAt(b, at) {
				listed++
			} else {
				unlisted++
			}
		}
	}
	if listed == 0 {
		t.Fatal("no bots blocklisted")
	}
	if unlisted == 0 {
		t.Fatal("blocklists must be incomplete (some bots evade)")
	}
}

func TestDNSAmpUsesResolvers(t *testing.T) {
	cfg := smallConfig()
	cfg.TypeMix = [ddos.NumAttackTypes]float64{ddos.DNSAmp: 1}
	cfg.SameTypeRepeatProb = 1
	w := mustWorld(t, cfg)
	if len(w.Events) == 0 {
		t.Skip("no events scheduled")
	}
	ev := &w.Events[0]
	resolvers := make(map[string]bool)
	for _, r := range w.Resolvers {
		resolvers[r.String()] = true
	}
	step := ev.EndStep() - 1
	sig := ev.Signature()
	for _, r := range w.FlowsAt(ev.VictimIdx, step) {
		if sig.Matches(r) && float64(r.Bytes) > 5000 {
			if !resolvers[r.Src.String()] {
				t.Fatalf("DNS amp flow from non-resolver %v", r.Src)
			}
			if r.SrcPort != 53 {
				t.Fatalf("DNS amp flow src port %d", r.SrcPort)
			}
		}
	}
}

func TestSpoofedSourcesPresentForSYNFloods(t *testing.T) {
	cfg := smallConfig()
	cfg.TypeMix = [ddos.NumAttackTypes]float64{ddos.TCPSYN: 1}
	cfg.SameTypeRepeatProb = 1
	cfg.SpoofFraction = 0.5
	w := mustWorld(t, cfg)
	if len(w.Events) == 0 {
		t.Skip("no events scheduled")
	}
	spoofed, total := 0, 0
	for i := range w.Events {
		ev := &w.Events[i]
		for s := ev.StartStep; s < ev.EndStep(); s++ {
			for _, r := range w.FlowsAt(ev.VictimIdx, s) {
				if ev.Signature().Matches(r) {
					total++
					if w.Spoof.IsSpoofed(r.Src, 0) {
						spoofed++
					}
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no SYN attack flows found")
	}
	frac := float64(spoofed) / float64(total)
	if frac < 0.2 || frac > 0.8 {
		t.Fatalf("spoofed fraction %.2f outside plausible band", frac)
	}
}

func TestSignatureBytesConsistentWithFlows(t *testing.T) {
	w := mustWorld(t, smallConfig())
	ev := &w.Events[0]
	step := ev.EndStep() - 1
	perType, total := w.SignatureBytes(ev.VictimIdx, step)
	var manualTotal float64
	for _, r := range w.FlowsAt(ev.VictimIdx, step) {
		manualTotal += float64(r.Bytes)
	}
	if total != manualTotal {
		t.Fatalf("total %v != manual %v", total, manualTotal)
	}
	if perType[ev.Type] <= 0 {
		t.Fatalf("no bytes attributed to the active attack type %v", ev.Type)
	}
	if perType[ev.Type] > total {
		t.Fatal("per-type bytes cannot exceed total")
	}
}

func TestFlowsAtOutOfRange(t *testing.T) {
	w := mustWorld(t, smallConfig())
	if w.FlowsAt(-1, 0) != nil || w.FlowsAt(0, -1) != nil ||
		w.FlowsAt(len(w.Customers), 0) != nil || w.FlowsAt(0, w.Cfg.Steps()) != nil {
		t.Fatal("out-of-range queries must return nil")
	}
}

func TestCustomerIndex(t *testing.T) {
	w := mustWorld(t, smallConfig())
	for i, c := range w.Customers {
		if w.CustomerIndex(c.Addr) != i {
			t.Fatalf("CustomerIndex(%v) != %d", c.Addr, i)
		}
	}
	if w.CustomerIndex(w.Botnets[0].Bots[0]) != -1 {
		t.Fatal("non-customer must map to -1")
	}
}

func TestGeoOf(t *testing.T) {
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		a := [4]byte{byte(i % 223), byte(i / 7 % 256), 1, 1}
		c := GeoOf(netipAddr(a))
		counts[c]++
		if CountryIndex(c) < 0 || CountryIndex(c) >= len(Countries) {
			t.Fatalf("country %q not indexed", c)
		}
	}
	if len(counts) < 8 {
		t.Fatalf("too few countries used: %v", counts)
	}
	if CountryIndex("XX") != len(Countries)-1 {
		t.Fatal("unknown country must map to the catch-all")
	}
	// Deterministic.
	a := netipAddr([4]byte{11, 22, 33, 44})
	if GeoOf(a) != GeoOf(a) {
		t.Fatal("GeoOf must be deterministic")
	}
}

func TestChatterMakesBlocklistSignalsWeak(t *testing.T) {
	// Botnet addresses must show up at customers even far away from any
	// attack — otherwise the A1 signal would be unrealistically clean.
	w := mustWorld(t, smallConfig())
	bots := map[string]bool{}
	for _, bn := range w.Botnets {
		for _, b := range bn.Bots {
			bots[b.String()] = true
		}
	}
	// Customer with no attacks at all, if any; else use early quiet period.
	found := false
	for ci := range w.Customers {
		for step := 0; step < 1440; step++ {
			for _, r := range w.FlowsAt(ci, step) {
				if bots[r.Src.String()] {
					found = true
				}
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no bot chatter observed in the first simulated day")
	}
}

func netipAddr(b [4]byte) (a netip.Addr) { return netip.AddrFrom4(b) }

func TestWorldWithFewCustomers(t *testing.T) {
	// Regression: botnet target counts must clamp to the customer count.
	cfg := smallConfig()
	cfg.NumCustomers = 1
	w := mustWorld(t, cfg)
	for i := range w.Events {
		if w.Events[i].VictimIdx != 0 {
			t.Fatal("single-customer world must target customer 0")
		}
	}
}

func TestWeekendFactorApplied(t *testing.T) {
	cfg := smallConfig()
	cfg.Days = 14 // guarantee both weekend and weekday samples
	w := mustWorld(t, cfg)
	c := &w.Customers[1]
	// Compare model rate at the same hour on a Saturday vs the preceding
	// Wednesday; only the weekly factor differs (plus noise, so average
	// over many probes).
	var wkdaySum, wkendSum float64
	n := 0
	for step := 0; step < cfg.Steps(); step++ {
		ts := cfg.TimeOf(step)
		if ts.Hour() != 12 || ts.Minute() != 0 {
			continue
		}
		switch ts.Weekday() {
		case time.Wednesday:
			wkdaySum += w.BenignMbps(1, step)
			n++
		case time.Saturday:
			wkendSum += w.BenignMbps(1, step)
		}
	}
	if n == 0 {
		t.Skip("no probes")
	}
	ratio := wkendSum / wkdaySum
	want := c.WeekendFactor
	if ratio < want*0.5 || ratio > want*1.8 {
		t.Fatalf("weekend/weekday ratio %.2f far from factor %.2f", ratio, want)
	}
}

func TestBenignBurstRaisesRate(t *testing.T) {
	w := mustWorld(t, smallConfig())
	for ci := range w.Customers {
		c := &w.Customers[ci]
		for _, b := range c.Bursts {
			if b.StartStep+b.DurSteps >= w.Cfg.Steps() {
				continue
			}
			in := w.BenignMbps(ci, b.StartStep+b.DurSteps/2)
			out := w.BenignMbps(ci, b.StartStep+b.DurSteps+5)
			// The burst factor is ≥1.5; noise is ±~30%, so inside should
			// comfortably exceed outside for most bursts. Check just one
			// clear case and return.
			if in > out*1.2 {
				return
			}
		}
	}
	t.Fatal("no burst visibly raised the benign rate")
}

func TestSignatureBytesDeterministic(t *testing.T) {
	w := mustWorld(t, smallConfig())
	p1, t1 := w.SignatureBytes(2, 3000)
	p2, t2 := w.SignatureBytes(2, 3000)
	if p1 != p2 || t1 != t2 {
		t.Fatal("SignatureBytes must be deterministic")
	}
}
