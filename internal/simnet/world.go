package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"github.com/xatu-go/xatu/internal/blocklist"
	"github.com/xatu-go/xatu/internal/ddos"
	"github.com/xatu-go/xatu/internal/routing"
	"github.com/xatu-go/xatu/internal/spoof"
)

// Customer is one protected network endpoint with its benign-traffic model.
type Customer struct {
	Addr          netip.Addr
	BaseMbps      float64
	DiurnalAmp    float64 // amplitude of the day/night swing, 0..1
	PeakHour      float64 // local hour of peak traffic
	WeekendFactor float64 // multiplier applied on Sat/Sun
	NoiseSigma    float64 // lognormal per-step noise
	Bursts        []Burst // benign spikes, sorted by start step
	BenignPool    []netip.Addr
}

// Burst is a benign traffic spike.
type Burst struct {
	StartStep int
	DurSteps  int
	Factor    float64
}

// Botnet is one attacker pool.
type Botnet struct {
	ID   int
	Bots []netip.Addr
}

// prep flow kinds.
const (
	prepScan     uint8 = iota // TCP SYN probing
	prepTest                  // small attack-shaped test traffic
	prepResolver              // resolver-sourced test (DNS amplification)
)

type prepFlow struct {
	step int32 // absolute step index
	bot  int32 // index into the botnet (or resolver pool for prepResolver)
	kind uint8
}

// AttackEvent is one scheduled attack with its ground truth.
type AttackEvent struct {
	ID        int
	VictimIdx int
	Victim    netip.Addr
	Type      ddos.AttackType
	BotnetID  int
	// StartStep is the ground-truth anomaly start (area A begins here).
	StartStep int
	// DurSteps is the anomalous period length (ramp + plateau).
	DurSteps int
	PeakMbps float64
	// DR is the ramp rate in doublings per minute (Appendix G).
	DR float64
	// PrepDays is how many days of preparation activity precede the attack.
	PrepDays int

	// Evasion knobs (§6.4). VolumeScale scales anomalous volume during the
	// first VolumeScaleSteps of the attack (1 = no evasion). When scaled to
	// 0 the corresponding auxiliary prep flows are suppressed too, matching
	// the paper's "when we remove these attackers, we also remove their
	// corresponding auxiliary signals" for the no-aux comparison.
	VolumeScale      float64
	VolumeScaleSteps int

	prepFlows []prepFlow // sorted by step
}

// EndStep returns the step index just past the anomalous period.
func (e *AttackEvent) EndStep() int { return e.StartStep + e.DurSteps }

// Signature returns the CDet-style signature matching this attack.
func (e *AttackEvent) Signature() ddos.Signature { return ddos.SignatureFor(e.Type, e.Victim) }

// World is a fully built simulation.
type World struct {
	Cfg        Config
	Customers  []Customer
	Botnets    []Botnet
	Resolvers  []netip.Addr
	Events     []AttackEvent
	Blocklists *blocklist.Registry
	Routes     *routing.Table
	Spoof      *spoof.Checker

	eventsByVictim [][]int
	customerIdx    map[netip.Addr]int
}

// NewWorld builds a deterministic world from cfg.
func NewWorld(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{
		Cfg:        cfg,
		Blocklists: blocklist.NewRegistry(),
		Routes:     routing.SyntheticTable(64, rng),
	}
	w.Spoof = spoof.NewChecker(w.Routes)
	w.buildCustomers(rng)
	w.buildBotnets(rng)
	w.buildResolvers(rng)
	w.populateBlocklists(rng)
	w.schedule(rng)
	w.index()
	return w, nil
}

// CustomerIndex returns the index for a customer address, or -1.
func (w *World) CustomerIndex(addr netip.Addr) int {
	if i, ok := w.customerIdx[addr]; ok {
		return i
	}
	return -1
}

// EventsFor returns indices into Events for attacks on customer ci,
// ordered by start step.
func (w *World) EventsFor(ci int) []int { return w.eventsByVictim[ci] }

func (w *World) buildCustomers(rng *rand.Rand) {
	cfg := w.Cfg
	w.Customers = make([]Customer, cfg.NumCustomers)
	w.customerIdx = make(map[netip.Addr]int, cfg.NumCustomers)
	for i := range w.Customers {
		addr := netip.AddrFrom4([4]byte{23, 1, byte(i / 250), byte(i%250 + 1)})
		base := cfg.BaseMbpsMin + rng.Float64()*(cfg.BaseMbpsMax-cfg.BaseMbpsMin)
		c := Customer{
			Addr:          addr,
			BaseMbps:      base,
			DiurnalAmp:    0.2 + rng.Float64()*0.35,
			PeakHour:      9 + rng.Float64()*10,
			WeekendFactor: 0.6 + rng.Float64()*0.5,
			NoiseSigma:    0.10 + rng.Float64()*0.12,
			BenignPool:    w.randomRoutedAddrs(rng, 40+rng.Intn(30)),
		}
		// Benign bursts via a Poisson process over the horizon.
		stepsPerDay := cfg.StepsPerDay()
		meanGap := float64(stepsPerDay) / cfg.BenignBurstsPerDay
		for s := rng.ExpFloat64() * meanGap; int(s) < cfg.Steps(); s += rng.ExpFloat64() * meanGap {
			dur := 3 + rng.Intn(max(1, 30*int(time.Minute/cfg.Step)))
			// Keep bursts non-overlapping so the per-step lookup can use a
			// binary search over monotone windows.
			if n := len(c.Bursts); n > 0 && int(s) < c.Bursts[n-1].StartStep+c.Bursts[n-1].DurSteps {
				continue
			}
			c.Bursts = append(c.Bursts, Burst{
				StartStep: int(s),
				DurSteps:  dur,
				Factor:    1.5 + rng.Float64()*2.5,
			})
		}
		w.Customers[i] = c
		w.customerIdx[addr] = i
	}
}

// randomRoutedAddrs samples addresses covered by the routing table, i.e.
// plausible real Internet hosts.
func (w *World) randomRoutedAddrs(rng *rand.Rand, n int) []netip.Addr {
	blocks := []byte{11, 45, 66, 101, 133, 155, 181, 200}
	out := make([]netip.Addr, 0, n)
	for len(out) < n {
		a := netip.AddrFrom4([4]byte{
			blocks[rng.Intn(len(blocks))],
			byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(254) + 1),
		})
		if _, ok := w.Routes.Lookup(a); ok {
			out = append(out, a)
		}
	}
	return out
}

// randomUnroutedAddr samples an address the routing table does not cover,
// used for spoofed traffic.
func (w *World) randomUnroutedAddr(d *det) netip.Addr {
	for i := 0; i < 64; i++ {
		a := netip.AddrFrom4([4]byte{
			byte(d.intn(200) + 1), byte(d.intn(256)), byte(d.intn(256)), byte(d.intn(254) + 1),
		})
		if spoof.IsBogon(a) {
			return a
		}
		if _, ok := w.Routes.Lookup(a); !ok {
			return a
		}
	}
	// Fall back to guaranteed bogon space.
	return netip.AddrFrom4([4]byte{10, byte(d.intn(256)), byte(d.intn(256)), byte(d.intn(254) + 1)})
}

func (w *World) buildBotnets(rng *rand.Rand) {
	w.Botnets = make([]Botnet, w.Cfg.NumBotnets)
	for i := range w.Botnets {
		w.Botnets[i] = Botnet{ID: i, Bots: w.randomRoutedAddrs(rng, w.Cfg.BotsPerBotnet)}
	}
}

func (w *World) buildResolvers(rng *rand.Rand) {
	w.Resolvers = w.randomRoutedAddrs(rng, w.Cfg.ResolverPoolSize)
}

func (w *World) populateBlocklists(rng *rand.Rand) {
	cfg := w.Cfg
	// Category mix: the three prevalent categories carry most listings
	// (Appendix E), the rest share the remainder.
	heavy := []blocklist.Category{blocklist.DDoSSource, blocklist.Bot, blocklist.Scanner}
	light := []blocklist.Category{
		blocklist.Reflector, blocklist.VoIPAbuse, blocklist.CandCServer,
		blocklist.MalwareMirai, blocklist.MalwareGafgyt, blocklist.BruteForce,
		blocklist.SpamSource, blocklist.ExploitScan,
	}
	for _, bn := range w.Botnets {
		for _, bot := range bn.Bots {
			if rng.Float64() >= cfg.BlocklistCoverage {
				continue // this /24 evades the lists
			}
			var cat blocklist.Category
			if rng.Float64() < 0.75 {
				cat = heavy[rng.Intn(len(heavy))]
			} else {
				cat = light[rng.Intn(len(light))]
			}
			listedAt := cfg.Start.Add(-time.Duration(rng.Intn(30*24)) * time.Hour)
			w.Blocklists.Add(cat, bot, listedAt, 0)
			// Some bots appear on a second list.
			if rng.Float64() < 0.25 {
				w.Blocklists.Add(light[rng.Intn(len(light))], bot, listedAt.Add(24*time.Hour), 0)
			}
		}
	}
	// False positives: benign /24s listed anyway.
	for i := 0; i < cfg.BlocklistFalsePositives; i++ {
		addrs := w.randomRoutedAddrs(rng, 1)
		cat := blocklist.Category(rng.Intn(int(blocklist.NumCategories)))
		w.Blocklists.Add(cat, addrs[0], cfg.Start.Add(-time.Duration(rng.Intn(20*24))*time.Hour), 0)
	}
}

// schedule builds the attack campaign timeline (§3.3 behaviours).
func (w *World) schedule(rng *rand.Rand) {
	cfg := w.Cfg
	stepsPerMin := float64(time.Minute) / float64(cfg.Step)
	horizon := cfg.Steps()
	stepsPerDay := cfg.StepsPerDay()
	meanGapSteps := float64(stepsPerDay) * 7 / cfg.MeanAttacksPerBotnetPerWeek

	lastType := make([]int, cfg.NumCustomers) // -1 = none yet
	lastBotnet := make([]int, cfg.NumCustomers)
	for i := range lastType {
		lastType[i] = -1
		lastBotnet[i] = -1
	}
	// Per-victim occupied windows to avoid overlapping attacks.
	busy := make([][][2]int, cfg.NumCustomers)

	id := 0
	for bi := range w.Botnets {
		// Each botnet preys on a small, stable set of customers.
		nTargets := 1 + rng.Intn(4)
		if nTargets > cfg.NumCustomers {
			nTargets = cfg.NumCustomers
		}
		targets := rng.Perm(cfg.NumCustomers)[:nTargets]
		// Campaign waves.
		for s := rng.ExpFloat64() * meanGapSteps; int(s) < horizon; s += rng.ExpFloat64() * meanGapSteps {
			// A wave hits 1..nTargets customers within ~15 minutes (Fig 4(c)).
			nWave := 1
			for nWave < nTargets && rng.Float64() < 0.45 {
				nWave++
			}
			offset := 0
			for _, vi := range targets[:nWave] {
				start := int(s) + offset
				offset += int(float64(5+rng.Intn(11)) * stepsPerMin)
				ev, ok := w.makeEvent(rng, id, vi, bi, start, lastType, lastBotnet, busy)
				if !ok {
					continue
				}
				w.Events = append(w.Events, ev)
				id++
			}
		}
	}
	sort.Slice(w.Events, func(i, j int) bool { return w.Events[i].StartStep < w.Events[j].StartStep })
	for i := range w.Events {
		w.Events[i].ID = i
		w.buildPrepFlows(&w.Events[i])
	}
}

func (w *World) makeEvent(rng *rand.Rand, id, vi, bi, start int, lastType, lastBotnet []int, busy [][][2]int) (AttackEvent, bool) {
	cfg := w.Cfg
	horizon := cfg.Steps()
	if start < 0 || start >= horizon-2 {
		return AttackEvent{}, false
	}
	// Attack type: heavy self-transition per victim (Fig 4(b)).
	var at ddos.AttackType
	if lastType[vi] >= 0 && rng.Float64() < cfg.SameTypeRepeatProb {
		at = ddos.AttackType(lastType[vi])
	} else {
		at = sampleType(rng, cfg.TypeMix)
	}
	// Botnet: reuse the previous attacker pool with high probability (A2).
	botnet := bi
	if lastBotnet[vi] >= 0 && rng.Float64() < cfg.BotnetReuseProb {
		botnet = lastBotnet[vi]
	}

	// Duration mixture targeting the paper's CDF: ~30% under 5 minutes,
	// ~74% under 20 minutes, tail to ~90 minutes.
	var durMin float64
	switch r := rng.Float64(); {
	case r < 0.30:
		durMin = 2 + rng.Float64()*3
	case r < 0.74:
		durMin = 5 + rng.Float64()*15
	default:
		durMin = 20 + rng.ExpFloat64()*25
	}
	if at == ddos.ICMPFlood {
		durMin = 1 + rng.Float64()*5 // ICMP attacks are short and sharp
	}
	durSteps := max(1, int(durMin*float64(time.Minute)/float64(cfg.Step)))
	if start+durSteps >= horizon {
		durSteps = horizon - start - 1
		if durSteps < 1 {
			return AttackEvent{}, false
		}
	}

	// Reject overlap with an existing attack on the same victim (±30 min).
	pad := int(30 * time.Minute / cfg.Step)
	for _, win := range busy[vi] {
		if start < win[1]+pad && win[0] < start+durSteps+pad {
			return AttackEvent{}, false
		}
	}
	busy[vi] = append(busy[vi], [2]int{start, start + durSteps})
	lastType[vi] = int(at)
	lastBotnet[vi] = botnet

	peak := cfg.MeanPeakMbps * math.Exp(0.6*rng.NormFloat64())
	if peak < 2 {
		peak = 2
	}
	dr := math.Exp(0.5 * rng.NormFloat64()) // median 1 doubling/min
	if at == ddos.ICMPFlood {
		dr *= 3 // ramps up very quickly (§6.1)
	}
	prep := 1 + rng.Intn(max(1, cfg.PrepDaysMax))
	return AttackEvent{
		ID: id, VictimIdx: vi, Victim: w.Customers[vi].Addr,
		Type: at, BotnetID: botnet,
		StartStep: start, DurSteps: durSteps,
		PeakMbps: peak, DR: dr, PrepDays: prep,
		VolumeScale: 1,
	}, true
}

func sampleType(rng *rand.Rand, mix [ddos.NumAttackTypes]float64) ddos.AttackType {
	r := rng.Float64()
	var cum float64
	for i, p := range mix {
		cum += p
		if r < cum {
			return ddos.AttackType(i)
		}
	}
	return ddos.TCPACK
}

// buildPrepFlows precomputes the preparation-phase activity for an event:
// scanning and small test traffic from a growing fraction of the botnet in
// the days before the anomaly (Fig 15's reappearance ramp).
func (w *World) buildPrepFlows(ev *AttackEvent) {
	cfg := w.Cfg
	stepsPerDay := cfg.StepsPerDay()
	bots := w.Botnets[ev.BotnetID].Bots
	d := newDet(uint64(cfg.Seed), 0xA77AC4, uint64(ev.ID))
	for day := 1; day <= ev.PrepDays; day++ {
		// Fraction of eventual attackers active `day` days before the
		// attack; rises from ~10% at day 10 to ~90% the day before.
		frac := 0.95 - 0.085*float64(day)
		if frac < 0.08 {
			frac = 0.08
		}
		dayStart := ev.StartStep - day*stepsPerDay
		for bi := range bots {
			if d.float64() >= frac {
				continue
			}
			flows := 1 + d.intn(3)
			for f := 0; f < flows; f++ {
				step := dayStart + d.intn(stepsPerDay)
				if step < 0 || step >= ev.StartStep {
					continue
				}
				kind := prepScan
				if d.float64() < 0.4 {
					kind = prepTest
				}
				ev.prepFlows = append(ev.prepFlows, prepFlow{step: int32(step), bot: int32(bi), kind: kind})
			}
		}
		// DNS amplification rehearsal comes from resolvers.
		if ev.Type == ddos.DNSAmp && len(w.Resolvers) > 0 {
			for f := 0; f < 2+d.intn(4); f++ {
				step := dayStart + d.intn(stepsPerDay)
				if step < 0 || step >= ev.StartStep {
					continue
				}
				ev.prepFlows = append(ev.prepFlows, prepFlow{
					step: int32(step), bot: int32(d.intn(len(w.Resolvers))), kind: prepResolver,
				})
			}
		}
	}
	sort.Slice(ev.prepFlows, func(i, j int) bool { return ev.prepFlows[i].step < ev.prepFlows[j].step })
}

func (w *World) index() {
	w.eventsByVictim = make([][]int, w.Cfg.NumCustomers)
	for i := range w.Events {
		vi := w.Events[i].VictimIdx
		w.eventsByVictim[vi] = append(w.eventsByVictim[vi], i)
	}
}

// String summarizes the world.
func (w *World) String() string {
	return fmt.Sprintf("simnet.World{customers=%d botnets=%d events=%d days=%d step=%v}",
		len(w.Customers), len(w.Botnets), len(w.Events), w.Cfg.Days, w.Cfg.Step)
}
