package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The nn binary format is deliberately simple: a magic header, then for
// each parameter its name, shape, and row-major float64 payload, all
// little-endian. It round-trips bit-exactly and needs no reflection.

var paramMagic = [4]byte{'X', 'N', 'N', '1'}

// WriteParams serializes params to w in declaration order.
func WriteParams(w io.Writer, params []Param) error {
	if _, err := w.Write(paramMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(w, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := w.Write(name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(p.W.Rows)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(p.W.Cols)); err != nil {
			return err
		}
		buf := make([]byte, 8*len(p.W.Data))
		for i, v := range p.W.Data {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadParams deserializes parameters from r into params, matching by
// position and verifying name and shape. The weight data is copied in
// place, so layer structs holding these matrices see the loaded values.
func ReadParams(r io.Reader, params []Param) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("nn: reading magic: %w", err)
	}
	if magic != paramMagic {
		return fmt.Errorf("nn: bad magic %q", magic)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n) != len(params) {
		return fmt.Errorf("nn: param count mismatch: file has %d, model has %d", n, len(params))
	}
	for i := range params {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		if nameLen > 1<<16 {
			return fmt.Errorf("nn: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return err
		}
		if string(name) != params[i].Name {
			return fmt.Errorf("nn: param %d name mismatch: file %q, model %q", i, name, params[i].Name)
		}
		var rows, cols uint32
		if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
			return err
		}
		if err := binary.Read(r, binary.LittleEndian, &cols); err != nil {
			return err
		}
		if int(rows) != params[i].W.Rows || int(cols) != params[i].W.Cols {
			return fmt.Errorf("nn: param %q shape mismatch: file %dx%d, model %dx%d",
				params[i].Name, rows, cols, params[i].W.Rows, params[i].W.Cols)
		}
		buf := make([]byte, 8*rows*cols)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		for j := range params[i].W.Data {
			v := math.Float64frombits(binary.LittleEndian.Uint64(buf[j*8:]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: param %q element %d is %v: corrupt or diverged weight file",
					params[i].Name, j, v)
			}
			params[i].W.Data[j] = v
		}
	}
	return nil
}
