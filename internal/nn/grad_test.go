package nn

import (
	"math"
	"math/rand"
	"testing"
)

// scalarLossDense evaluates a toy scalar loss L = sum(tanh(W·x+b)) used to
// verify Dense gradients against finite differences.
func scalarLossDense(d *Dense, x Vec) float64 {
	y := d.Forward(x)
	var L float64
	for _, v := range y {
		L += math.Tanh(v)
	}
	return L
}

func TestDenseGradientMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense(4, 3, rng)
	x := NewVec(4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// analytic
	y := d.Forward(x)
	dy := NewVec(3)
	for i, v := range y {
		th := math.Tanh(v)
		dy[i] = 1 - th*th
	}
	d.ZeroGrad()
	dx := d.Backward(x, dy)

	const h = 1e-6
	// weight gradients
	for i := range d.W.Data {
		orig := d.W.Data[i]
		d.W.Data[i] = orig + h
		lp := scalarLossDense(d, x)
		d.W.Data[i] = orig - h
		lm := scalarLossDense(d, x)
		d.W.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if !almostEq(num, d.GW.Data[i], 1e-5) {
			t.Fatalf("W grad %d: analytic %v numeric %v", i, d.GW.Data[i], num)
		}
	}
	// bias gradients
	for i := range d.B {
		orig := d.B[i]
		d.B[i] = orig + h
		lp := scalarLossDense(d, x)
		d.B[i] = orig - h
		lm := scalarLossDense(d, x)
		d.B[i] = orig
		num := (lp - lm) / (2 * h)
		if !almostEq(num, d.GB[i], 1e-5) {
			t.Fatalf("b grad %d: analytic %v numeric %v", i, d.GB[i], num)
		}
	}
	// input gradients
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		lp := scalarLossDense(d, x)
		x[i] = orig - h
		lm := scalarLossDense(d, x)
		x[i] = orig
		num := (lp - lm) / (2 * h)
		if !almostEq(num, dx[i], 1e-5) {
			t.Fatalf("x grad %d: analytic %v numeric %v", i, dx[i], num)
		}
	}
}

// lstmScalarLoss evaluates L = Σ_t Σ_j H[t][j]² over an LSTM run, a loss
// that exercises gradient flow through every timestep.
func lstmScalarLoss(l *LSTM, xs []Vec) float64 {
	tape := l.Forward(xs)
	var L float64
	for _, h := range tape.H {
		for _, v := range h {
			L += v * v
		}
	}
	return L
}

func TestLSTMGradientMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLSTM(3, 4, rng)
	const T = 6
	xs := make([]Vec, T)
	for t2 := range xs {
		xs[t2] = NewVec(3)
		for i := range xs[t2] {
			xs[t2][i] = rng.NormFloat64()
		}
	}
	tape := l.Forward(xs)
	dH := make([]Vec, T)
	for t2, h := range tape.H {
		dH[t2] = NewVec(4)
		for j, v := range h {
			dH[t2][j] = 2 * v
		}
	}
	l.ZeroGrad()
	dXs := l.Backward(tape, dH)

	const h = 1e-6
	check := func(name string, w *Mat, g *Mat) {
		t.Helper()
		for i := 0; i < len(w.Data); i += 7 { // sample every 7th element to keep test fast
			orig := w.Data[i]
			w.Data[i] = orig + h
			lp := lstmScalarLoss(l, xs)
			w.Data[i] = orig - h
			lm := lstmScalarLoss(l, xs)
			w.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if !almostEq(num, g.Data[i], 1e-4) {
				t.Fatalf("%s grad %d: analytic %v numeric %v", name, i, g.Data[i], num)
			}
		}
	}
	check("Wx", l.Wx, l.GWx)
	check("Wh", l.Wh, l.GWh)
	check("B", vecAsMat(l.B), vecAsMat(l.GB))

	// input gradients
	for t2 := 0; t2 < T; t2++ {
		for i := range xs[t2] {
			orig := xs[t2][i]
			xs[t2][i] = orig + h
			lp := lstmScalarLoss(l, xs)
			xs[t2][i] = orig - h
			lm := lstmScalarLoss(l, xs)
			xs[t2][i] = orig
			num := (lp - lm) / (2 * h)
			if !almostEq(num, dXs[t2][i], 1e-4) {
				t.Fatalf("x[%d][%d] grad: analytic %v numeric %v", t2, i, dXs[t2][i], num)
			}
		}
	}
}

func TestLSTMBackwardSparseInjection(t *testing.T) {
	// Gradient injected only at the last step must still reach weights that
	// only influenced earlier steps (through the recurrent path).
	rng := rand.New(rand.NewSource(9))
	l := NewLSTM(2, 3, rng)
	xs := []Vec{{1, 0}, {0, 1}, {0.5, -0.5}}
	tape := l.Forward(xs)
	dH := make([]Vec, 3)
	dH[2] = Vec{1, 1, 1}
	l.ZeroGrad()
	dXs := l.Backward(tape, dH)
	if dXs[0].Norm2() == 0 {
		t.Fatal("gradient did not flow back to the first input")
	}
	var gw float64
	for _, v := range l.GWh.Data {
		gw += math.Abs(v)
	}
	if gw == 0 {
		t.Fatal("recurrent weights received no gradient")
	}
}

func TestLSTMDeterministic(t *testing.T) {
	l1 := NewLSTM(3, 4, rand.New(rand.NewSource(11)))
	l2 := NewLSTM(3, 4, rand.New(rand.NewSource(11)))
	xs := []Vec{{1, 2, 3}, {4, 5, 6}}
	h1 := l1.Forward(xs).H
	h2 := l2.Forward(xs).H
	for t2 := range h1 {
		for j := range h1[t2] {
			if h1[t2][j] != h2[t2][j] {
				t.Fatal("same seed must give identical forward pass")
			}
		}
	}
}

func TestLSTMForgetBiasInitialized(t *testing.T) {
	l := NewLSTM(2, 5, rand.New(rand.NewSource(1)))
	for j := 0; j < 5; j++ {
		if l.B[5+j] != 1 {
			t.Fatalf("forget bias %d = %v, want 1", j, l.B[5+j])
		}
		if l.B[j] != 0 || l.B[2*5+j] != 0 || l.B[3*5+j] != 0 {
			t.Fatal("non-forget biases must start at 0")
		}
	}
}

func TestLSTMEmptySequence(t *testing.T) {
	l := NewLSTM(2, 3, rand.New(rand.NewSource(1)))
	tape := l.Forward(nil)
	if tape.T() != 0 {
		t.Fatal("empty sequence must produce empty tape")
	}
	dXs := l.Backward(tape, nil)
	if len(dXs) != 0 {
		t.Fatal("backward over empty tape must return no gradients")
	}
}

func TestLSTMLongSequenceStability(t *testing.T) {
	// A 5000-step forward pass over bounded inputs must stay finite and
	// bounded (tanh/sigmoid gating prevents blow-up) — the property that
	// lets the Stream run indefinitely.
	rng := rand.New(rand.NewSource(41))
	l := NewLSTM(8, 12, rng)
	var h, c Vec
	var sc StepScratch
	x := NewVec(8)
	for i := 0; i < 5000; i++ {
		for j := range x {
			x[j] = rng.NormFloat64() * 2
		}
		h, c = l.Step(h, c, x, &sc)
	}
	for j := range h {
		if math.IsNaN(h[j]) || math.Abs(h[j]) > 1 {
			t.Fatalf("hidden state escaped (-1,1): %v", h[j])
		}
		if math.IsNaN(c[j]) || math.Abs(c[j]) > 100 {
			t.Fatalf("cell state diverged: %v", c[j])
		}
	}
}
