package nn

// Batched BPTT support. A BatchTape is the training-side analogue of the
// inference Batch machinery (batch.go): it records the forward activations
// of B same-length sequences advancing through one shared LSTM, one Batch
// per timestep, so BackwardBatch can replay them. All storage is grow-only
// and caller-owned — Reset reuses every buffer that is already large
// enough, so a steady-state training loop (same lane shapes recurring epoch
// after epoch) performs no allocation.
//
// The batched forward runs the same register-blocked MulT kernel as batched
// inference and the same gate arithmetic as the scalar Forward (both paths
// share lstmGatesTape), so row i of a batched pass is bit-identical to a
// scalar Forward over sequence i — the training analogue of the
// StepBatch/Step contract.

// BatchTape caches per-step batched activations from ForwardBatch for use
// in BackwardBatch. Xs[t], H[t], C[t] and Gates[t] hold row i's input,
// hidden state, cell state and post-activation gate values [i f g o] at
// timestep t. The caller fills Xs (via Reset + packing rows) and hands the
// tape to ForwardBatch.
type BatchTape struct {
	B, T   int // batch rows and timesteps currently active
	in, hd int
	Xs     []Batch // len ≥ T, each B×in
	H      []Batch // len ≥ T, each B×hd
	C      []Batch // len ≥ T, each B×hd
	Gates  []Batch // len ≥ T, each B×4hd

	pre, rec Batch // per-step pre-activation scratch
	zero     Batch // all-zero B×hd batch standing in for the t=-1 state

	// Sparse input projection (sparsetrain.go). BuildSparse packs the
	// non-zeros of Xs into CSR form (row order t·B+i) and sets sparse when
	// the density is low enough for the axpy kernels to win; Reset clears
	// the flag so an unpacked tape always takes the dense path.
	sparse bool
	nzIdx  []int32
	nzVal  []float64
	nzPtr  []int32
	wxT    Batch // Wxᵀ scratch for the sparse forward
	gwxT   Batch // transposed GWx accumulation for the sparse backward
}

// growBatches extends bs to n entries, keeping existing backing storage,
// and resizes the first n to rows×cols.
func growBatches(bs []Batch, n, rows, cols int) []Batch {
	for len(bs) < n {
		bs = append(bs, Batch{})
	}
	for i := 0; i < n; i++ {
		bs[i].Resize(rows, cols)
	}
	return bs
}

// Reset prepares the tape for a ForwardBatch of B sequences of length T
// through l, reusing all backing storage that is already large enough.
// Contents of Xs after Reset are unspecified; the caller overwrites every
// row it uses. H, C and Gates are fully written by ForwardBatch.
func (tp *BatchTape) Reset(l *LSTM, B, T int) {
	tp.B, tp.T = B, T
	tp.in, tp.hd = l.In, l.Hidden
	tp.Xs = growBatches(tp.Xs, T, B, l.In)
	tp.H = growBatches(tp.H, T, B, l.Hidden)
	tp.C = growBatches(tp.C, T, B, l.Hidden)
	tp.Gates = growBatches(tp.Gates, T, B, 4*l.Hidden)
	tp.zero.Resize(B, l.Hidden)
	for i := range tp.zero.Data {
		tp.zero.Data[i] = 0
	}
	tp.sparse = false
}

// ForwardBatch runs the LSTM over the B sequences packed into tp.Xs from
// zero state, filling tp.H, tp.C and tp.Gates. Row i advances through
// exactly the arithmetic of the scalar Forward (shared lstmGatesTape, MulT
// per-element order equal to MulVec), so batched activations are
// bit-identical to B independent scalar Forward passes.
func (l *LSTM) ForwardBatch(tp *BatchTape) {
	hd := l.Hidden
	T := tp.T
	xsA, hA, cA, gA := tp.Xs[:T], tp.H[:T], tp.C[:T], tp.Gates[:T]
	if tp.sparse {
		// One transpose per call lets every step's input projection walk
		// weight columns contiguously; amortized over T steps.
		transposeInto(&tp.wxT, l.Wx)
	}
	for t := 0; t < T; t++ {
		xs := &xsA[t]
		hPrev, cPrev := &tp.zero, &tp.zero
		if t > 0 {
			hPrev, cPrev = &hA[t-1], &cA[t-1]
		}
		if tp.sparse {
			tp.sparsePre(&tp.pre, &tp.wxT, t)
		} else {
			xs.MulT(l.Wx, &tp.pre)
		}
		hPrev.MulT(l.Wh, &tp.rec)
		ht, ct, gt := &hA[t], &cA[t], &gA[t]
		// lstmGatesTape updates the cell state in place from its previous
		// value; seed this step's C with the previous step's rows first.
		copy(ct.Data, cPrev.Data)
		for i := 0; i < tp.B; i++ {
			lstmGatesTape(hd, tp.pre.Row(i), tp.rec.Row(i), l.B, gt.Row(i), ht.Row(i), ct.Row(i))
		}
	}
}

// BatchGradScratch holds the recurrent gradient buffers one BackwardBatch
// pass needs. Caller-owned and reusable across calls (zero value ready),
// like StepScratch; not safe for concurrent use.
type BatchGradScratch struct {
	dh, dhNext, dc, dz Batch
}

// BackwardBatch runs backpropagation through time over the batched tape.
// dH[t] is the batch of dL/dH[t] gradients injected from above; touched[t]
// reports whether step t received any injection (untouched steps skip the
// add entirely, mirroring the nil-entry convention of the scalar Backward
// so a batch-1 pass stays bit-identical to it). Weight gradients are
// accumulated into the layer. Unlike the scalar Backward, input gradients
// are not produced: training ignores them, and skipping the dL/dx matmul
// removes the largest backward kernel (4H×In) entirely. Callers that need
// input gradients (saliency) use the scalar path.
func (l *LSTM) BackwardBatch(tp *BatchTape, dH []Batch, touched []bool, s *BatchGradScratch) {
	hd, B, T := l.Hidden, tp.B, tp.T
	if len(dH) < T || len(touched) < T {
		panic("nn: BackwardBatch dH/touched shorter than the tape")
	}
	dHA, touchedA := dH[:T], touched[:T]
	xsA, hA, cA, gA := tp.Xs[:T], tp.H[:T], tp.C[:T], tp.Gates[:T]
	s.dh.Resize(B, hd)
	s.dhNext.Resize(B, hd)
	s.dc.Resize(B, hd)
	s.dz.Resize(B, 4*hd)
	for i := range s.dhNext.Data {
		s.dhNext.Data[i] = 0
	}
	for i := range s.dc.Data {
		s.dc.Data[i] = 0
	}
	if tp.sparse {
		tp.gwxT.Resize(tp.in, 4*hd)
		for i := range tp.gwxT.Data {
			tp.gwxT.Data[i] = 0
		}
	}
	for t := T - 1; t >= 0; t-- {
		copy(s.dh.Data, s.dhNext.Data)
		if touchedA[t] {
			addAll(s.dh.Data, dHA[t].Data)
		}
		cPrev := &tp.zero
		hPrev := &tp.zero
		if t > 0 {
			cPrev = &cA[t-1]
			hPrev = &hA[t-1]
		}
		ct, gt := &cA[t], &gA[t]
		for i := 0; i < B; i++ {
			lstmGateGrads(hd, gt.Row(i), ct.Row(i), cPrev.Row(i),
				s.dh.Row(i), s.dc.Row(i), s.dz.Row(i))
		}
		if tp.sparse {
			tp.sparseGrad(&tp.gwxT, &s.dz, t)
		} else {
			l.GWx.AddOuterBatch(&s.dz, &xsA[t])
		}
		l.GWh.AddOuterBatch(&s.dz, hPrev)
		for i := 0; i < B; i++ {
			l.GB.Add(s.dz.Row(i))
		}
		MulTransBatch(&s.dz, l.Wh, &s.dhNext)
	}
	if tp.sparse {
		// The transposed scratch holds this call's full GWx contribution;
		// fold it in once. From a zero GWx this is bit-identical to the
		// dense per-step accumulation (0 + Σ terms, same term order).
		flushSparseGrad(l.GWx, &tp.gwxT)
	}
}

// addAll adds src to dst element-wise; lengths must match.
func addAll(dst, src []float64) {
	if len(dst) != len(src) {
		panic("nn: addAll length mismatch")
	}
	src = src[:len(dst)]
	for i := range dst {
		dst[i] += src[i]
	}
}
