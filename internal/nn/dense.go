package nn

import "math/rand"

// Param is a named weight matrix paired with its gradient accumulator.
// Optimizers walk a slice of Params; layers expose their weights this way.
type Param struct {
	Name string
	W    *Mat
	G    *Mat
}

// Dense is a fully connected layer y = W·x + b.
type Dense struct {
	In, Out int
	W       *Mat // Out×In
	B       Vec  // Out
	GW      *Mat
	GB      Vec
}

// NewDense returns a Dense layer with Xavier-initialized weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:  NewMat(out, in),
		B:  NewVec(out),
		GW: NewMat(out, in),
		GB: NewVec(out),
	}
	d.W.XavierInit(rng)
	return d
}

// Params exposes the layer's weights for optimization.
func (d *Dense) Params() []Param {
	return []Param{
		{Name: "dense.W", W: d.W, G: d.GW},
		{Name: "dense.b", W: vecAsMat(d.B), G: vecAsMat(d.GB)},
	}
}

// Forward computes y = W·x + b.
func (d *Dense) Forward(x Vec) Vec {
	y := NewVec(d.Out)
	d.ForwardInto(x, y)
	return y
}

// ForwardInto computes y = W·x + b into the caller-owned dst (len Out),
// allocating nothing. It performs exactly Forward's arithmetic.
func (d *Dense) ForwardInto(x, dst Vec) {
	d.W.MulVec(x, dst)
	dst.Add(d.B)
}

// ForwardBatch computes dst = xs·Wᵀ + b row-wise: row i of dst is the
// layer output for row i of xs. dst is resized to xs.Rows × Out. Per row
// the dot-product and bias-add order match Forward exactly, so batched
// head evaluation is bit-identical to per-stream evaluation.
func (d *Dense) ForwardBatch(xs, dst *Batch) {
	xs.MulT(d.W, dst)
	for i := 0; i < dst.Rows; i++ {
		dst.Row(i).Add(d.B)
	}
}

// Backward accumulates weight gradients for the pair (x, dy) and returns
// dL/dx. x must be the input that produced the output whose gradient is dy.
func (d *Dense) Backward(x, dy Vec) Vec {
	d.GW.AddOuter(dy, x)
	d.GB.Add(dy)
	dx := NewVec(d.In)
	d.W.MulVecTrans(dy, dx)
	return dx
}

// ZeroGrad clears accumulated gradients.
func (d *Dense) ZeroGrad() {
	d.GW.Zero()
	d.GB.Zero()
}

// vecAsMat views a Vec as a 1×n matrix sharing storage, so optimizers can
// treat biases uniformly with weight matrices.
func vecAsMat(v Vec) *Mat { return &Mat{Rows: 1, Cols: len(v), Data: v} }
