package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestVecAddDotScale(t *testing.T) {
	v := Vec{1, 2, 3}
	o := Vec{4, 5, 6}
	v.Add(o)
	if v[0] != 5 || v[1] != 7 || v[2] != 9 {
		t.Fatalf("Add: got %v", v)
	}
	if got := v.Dot(o); got != 5*4+7*5+9*6 {
		t.Fatalf("Dot: got %v", got)
	}
	v.Scale(2)
	if v[2] != 18 {
		t.Fatalf("Scale: got %v", v)
	}
}

func TestVecCloneIndependent(t *testing.T) {
	v := Vec{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestVecAddPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Vec{1}.Add(Vec{1, 2})
}

func TestMatMulVec(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	x := Vec{1, 1, 1}
	y := NewVec(2)
	m.MulVec(x, y)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec: got %v", y)
	}
}

func TestMatMulVecTransMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMat(5, 7)
	m.XavierInit(rng)
	x := NewVec(5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := NewVec(7)
	m.MulVecTrans(x, dst)
	for c := 0; c < 7; c++ {
		var want float64
		for r := 0; r < 5; r++ {
			want += m.At(r, c) * x[r]
		}
		if !almostEq(dst[c], want, 1e-12) {
			t.Fatalf("col %d: got %v want %v", c, dst[c], want)
		}
	}
}

func TestMatAddOuter(t *testing.T) {
	m := NewMat(2, 2)
	m.AddOuter(Vec{1, 2}, Vec{3, 4})
	want := []float64{3, 4, 6, 8}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddOuter: got %v want %v", m.Data, want)
		}
	}
}

func TestMatRowAliases(t *testing.T) {
	m := NewMat(2, 3)
	m.Row(1)[2] = 42
	if m.At(1, 2) != 42 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestSigmoidStable(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1000, 1},
		{-1000, 0},
	}
	for _, c := range cases {
		got := Sigmoid(c.x)
		if math.IsNaN(got) || math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Sigmoid(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestSigmoidSymmetryProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 100)
		return almostEq(Sigmoid(x)+Sigmoid(-x), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftplusProperties(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 200)
		sp := Softplus(x)
		// positive, ≥ x, ≥ 0, derivative in (0,1)
		if sp < 0 || sp < x-1e-9 {
			return false
		}
		d := SoftplusPrime(x)
		return d > 0 && d < 1 || almostEq(d, 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftplusPrimeNumeric(t *testing.T) {
	for _, x := range []float64{-5, -1, 0, 0.3, 2, 10} {
		h := 1e-6
		num := (Softplus(x+h) - Softplus(x-h)) / (2 * h)
		if !almostEq(num, SoftplusPrime(x), 1e-5) {
			t.Fatalf("SoftplusPrime(%v): analytic %v numeric %v", x, SoftplusPrime(x), num)
		}
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMat(10, 20)
	m.XavierInit(rng)
	limit := math.Sqrt(6.0 / 30.0)
	var nonzero int
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("value %v outside Xavier limit %v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(m.Data)/2 {
		t.Fatal("init left too many zeros")
	}
}
