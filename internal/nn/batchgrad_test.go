package nn

import (
	"math"
	"math/rand"
	"testing"
)

// fillTapeInputs packs B random sequences of length T into the tape and
// returns them in scalar []Vec form for reference passes.
func fillTapeInputs(tp *BatchTape, l *LSTM, B, T int, rng *rand.Rand) [][]Vec {
	tp.Reset(l, B, T)
	seqs := make([][]Vec, B)
	for i := range seqs {
		seqs[i] = make([]Vec, T)
		for t := 0; t < T; t++ {
			x := NewVec(l.In)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			seqs[i][t] = x
			copy(tp.Xs[t].Row(i), x)
		}
	}
	return seqs
}

func TestForwardBatchBitIdenticalToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	l := NewLSTM(3, 5, rng)
	const B, T = 3, 7
	var tp BatchTape
	seqs := fillTapeInputs(&tp, l, B, T, rng)
	l.ForwardBatch(&tp)
	for i := 0; i < B; i++ {
		tape := l.Forward(seqs[i])
		for t2 := 0; t2 < T; t2++ {
			for j := 0; j < l.Hidden; j++ {
				if tp.H[t2].Row(i)[j] != tape.H[t2][j] {
					t.Fatalf("H[%d] row %d elem %d: batched %v scalar %v",
						t2, i, j, tp.H[t2].Row(i)[j], tape.H[t2][j])
				}
				if tp.C[t2].Row(i)[j] != tape.C[t2][j] {
					t.Fatalf("C[%d] row %d differs from scalar", t2, i)
				}
			}
			for j := 0; j < 4*l.Hidden; j++ {
				if tp.Gates[t2].Row(i)[j] != tape.Gates[t2][j] {
					t.Fatalf("Gates[%d] row %d differ from scalar", t2, i)
				}
			}
		}
	}
}

func TestBackwardBatchOneBitIdenticalToScalar(t *testing.T) {
	// A batch-1 BackwardBatch must accumulate exactly the bytes the scalar
	// Backward does — the invariant that makes batched Fit a pure
	// performance change at batch size 1.
	rng := rand.New(rand.NewSource(23))
	l := NewLSTM(4, 6, rng)
	const T = 9
	var tp BatchTape
	seqs := fillTapeInputs(&tp, l, 1, T, rng)
	l.ForwardBatch(&tp)

	// Inject gradients at a sparse set of steps (including none at some) to
	// exercise the touched[] convention against the scalar nil convention.
	dH := make([]Batch, T)
	touched := make([]bool, T)
	dHs := make([]Vec, T)
	for _, step := range []int{2, 5, T - 1} {
		dH[step].Resize(1, l.Hidden)
		v := NewVec(l.Hidden)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		copy(dH[step].Row(0), v)
		dHs[step] = v
		touched[step] = true
	}

	l.ZeroGrad()
	var s BatchGradScratch
	l.BackwardBatch(&tp, dH, touched, &s)
	gwx := l.GWx.Clone()
	gwh := l.GWh.Clone()
	gb := l.GB.Clone()

	l.ZeroGrad()
	tape := l.Forward(seqs[0])
	l.Backward(tape, dHs)

	for i, v := range l.GWx.Data {
		if gwx.Data[i] != v {
			t.Fatalf("GWx[%d]: batched %v scalar %v", i, gwx.Data[i], v)
		}
	}
	for i, v := range l.GWh.Data {
		if gwh.Data[i] != v {
			t.Fatalf("GWh[%d]: batched %v scalar %v", i, gwh.Data[i], v)
		}
	}
	for i, v := range l.GB {
		if gb[i] != v {
			t.Fatalf("GB[%d]: batched %v scalar %v", i, gb[i], v)
		}
	}
}

// batchLSTMLoss runs ForwardBatch and evaluates L = Σ_{i,t,j} H[t][i][j]²,
// the batched analogue of lstmScalarLoss.
func batchLSTMLoss(l *LSTM, tp *BatchTape) float64 {
	l.ForwardBatch(tp)
	var L float64
	for t := 0; t < tp.T; t++ {
		for _, v := range tp.H[t].Data {
			L += v * v
		}
	}
	return L
}

func TestLSTMBackwardBatchMatchesNumeric(t *testing.T) {
	for _, B := range []int{1, 3, 8} {
		rng := rand.New(rand.NewSource(int64(31 + B)))
		l := NewLSTM(3, 4, rng)
		const T = 5
		var tp BatchTape
		fillTapeInputs(&tp, l, B, T, rng)
		l.ForwardBatch(&tp)

		dH := make([]Batch, T)
		touched := make([]bool, T)
		for t2 := 0; t2 < T; t2++ {
			dH[t2].Resize(B, l.Hidden)
			for i := range dH[t2].Data {
				dH[t2].Data[i] = 2 * tp.H[t2].Data[i]
			}
			touched[t2] = true
		}
		l.ZeroGrad()
		var s BatchGradScratch
		l.BackwardBatch(&tp, dH, touched, &s)

		const h = 1e-6
		check := func(name string, w, g *Mat) {
			t.Helper()
			for i := 0; i < len(w.Data); i += 5 {
				orig := w.Data[i]
				w.Data[i] = orig + h
				lp := batchLSTMLoss(l, &tp)
				w.Data[i] = orig - h
				lm := batchLSTMLoss(l, &tp)
				w.Data[i] = orig
				num := (lp - lm) / (2 * h)
				if !almostEq(num, g.Data[i], 1e-3*float64(B)) {
					t.Fatalf("B=%d %s grad %d: analytic %v numeric %v", B, name, i, g.Data[i], num)
				}
			}
		}
		check("Wx", l.Wx, l.GWx)
		check("Wh", l.Wh, l.GWh)
		check("B", vecAsMat(l.B), vecAsMat(l.GB))
	}
}

// denseBatchLoss evaluates L = Σ_i Σ_o tanh(y[i][o]) over a batched Dense
// forward, matching scalarLossDense per row.
func denseBatchLoss(d *Dense, xs *Batch) float64 {
	var out Batch
	d.ForwardBatch(xs, &out)
	var L float64
	for _, v := range out.Data {
		L += math.Tanh(v)
	}
	return L
}

func TestDenseBackwardBatchMatchesNumeric(t *testing.T) {
	for _, B := range []int{1, 3, 8} {
		rng := rand.New(rand.NewSource(int64(37 + B)))
		d := NewDense(4, 3, rng)
		var xs Batch
		xs.Resize(B, 4)
		for i := range xs.Data {
			xs.Data[i] = rng.NormFloat64()
		}
		var out Batch
		d.ForwardBatch(&xs, &out)
		var dys Batch
		dys.Resize(B, 3)
		for i, v := range out.Data {
			th := math.Tanh(v)
			dys.Data[i] = 1 - th*th
		}
		d.ZeroGrad()
		var dxs Batch
		d.BackwardBatch(&xs, &dys, &dxs)

		const h = 1e-6
		for i := range d.W.Data {
			orig := d.W.Data[i]
			d.W.Data[i] = orig + h
			lp := denseBatchLoss(d, &xs)
			d.W.Data[i] = orig - h
			lm := denseBatchLoss(d, &xs)
			d.W.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if !almostEq(num, d.GW.Data[i], 1e-4) {
				t.Fatalf("B=%d W grad %d: analytic %v numeric %v", B, i, d.GW.Data[i], num)
			}
		}
		for i := range d.B {
			orig := d.B[i]
			d.B[i] = orig + h
			lp := denseBatchLoss(d, &xs)
			d.B[i] = orig - h
			lm := denseBatchLoss(d, &xs)
			d.B[i] = orig
			num := (lp - lm) / (2 * h)
			if !almostEq(num, d.GB[i], 1e-4) {
				t.Fatalf("B=%d b grad %d: analytic %v numeric %v", B, i, d.GB[i], num)
			}
		}
		// Input gradients via the numeric route as well.
		for i := range xs.Data {
			orig := xs.Data[i]
			xs.Data[i] = orig + h
			lp := denseBatchLoss(d, &xs)
			xs.Data[i] = orig - h
			lm := denseBatchLoss(d, &xs)
			xs.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if !almostEq(num, dxs.Data[i], 1e-4) {
				t.Fatalf("B=%d x grad %d: analytic %v numeric %v", B, i, dxs.Data[i], num)
			}
		}
	}
}

func TestDenseBackwardBatchSkipsZeroRows(t *testing.T) {
	// Rows with an all-zero output gradient must contribute nothing and
	// leave their dx row zero — mirroring the scalar path's skip of
	// zero-gradient detection steps.
	rng := rand.New(rand.NewSource(43))
	d := NewDense(3, 2, rng)
	var xs, dys, dxs Batch
	xs.Resize(2, 3)
	for i := range xs.Data {
		xs.Data[i] = rng.NormFloat64()
	}
	dys.Resize(2, 2)
	dys.Row(1)[0] = 1.5 // only row 1 carries gradient
	d.ZeroGrad()
	d.BackwardBatch(&xs, &dys, &dxs)

	gw := d.GW.Clone()
	d.ZeroGrad()
	dxRef := d.Backward(xs.Row(1), dys.Row(1))
	for i, v := range d.GW.Data {
		if gw.Data[i] != v {
			t.Fatalf("GW[%d] differs from single-row scalar backward", i)
		}
	}
	for j, v := range dxRef {
		if dxs.Row(1)[j] != v {
			t.Fatalf("dx row 1 elem %d differs from scalar", j)
		}
	}
	for _, v := range dxs.Row(0) {
		if v != 0 {
			t.Fatal("zero-gradient row must leave dx row zero")
		}
	}
}

// fillTapeSparseInputs packs B sequences whose rows carry nnz non-zeros out
// of l.In features (plus an explicit -0.0 to exercise the signed-zero skip).
func fillTapeSparseInputs(tp *BatchTape, l *LSTM, B, T, nnz int, rng *rand.Rand) {
	tp.Reset(l, B, T)
	for t := 0; t < T; t++ {
		for i := 0; i < B; i++ {
			row := tp.Xs[t].Row(i)
			for j := range row {
				row[j] = 0
			}
			row[(t+i)%l.In] = math.Copysign(0, -1) // -0.0 must be skipped like +0
			for k := 0; k < nnz; k++ {
				row[(k*7+t+3*i)%l.In] = rng.NormFloat64()
			}
		}
	}
}

func TestSparseForwardBackwardBitIdenticalToDense(t *testing.T) {
	// With sparse inputs BuildSparse flips the tape to the CSR kernels; the
	// activations and accumulated gradients must be byte-identical to the
	// dense kernels on the same data — the proof that skipping exact-zero
	// terms is a pure performance change.
	rng := rand.New(rand.NewSource(53))
	l := NewLSTM(24, 6, rng)
	const B, T = 4, 8
	var dense, sparse BatchTape
	fillTapeSparseInputs(&dense, l, B, T, 3, rand.New(rand.NewSource(59)))
	fillTapeSparseInputs(&sparse, l, B, T, 3, rand.New(rand.NewSource(59)))
	sparse.BuildSparse()
	if !sparse.Sparse() {
		t.Fatal("3/24 non-zeros per row should enable the sparse path")
	}

	l.ForwardBatch(&dense)
	l.ForwardBatch(&sparse)
	for t2 := 0; t2 < T; t2++ {
		for i, v := range dense.H[t2].Data {
			if sparse.H[t2].Data[i] != v {
				t.Fatalf("H[%d][%d]: sparse %v dense %v", t2, i, sparse.H[t2].Data[i], v)
			}
		}
		for i, v := range dense.Gates[t2].Data {
			if sparse.Gates[t2].Data[i] != v {
				t.Fatalf("Gates[%d][%d] differ between sparse and dense", t2, i)
			}
		}
	}

	dH := make([]Batch, T)
	touched := make([]bool, T)
	for _, step := range []int{1, 4, T - 1} {
		dH[step].Resize(B, l.Hidden)
		for i := range dH[step].Data {
			dH[step].Data[i] = rng.NormFloat64()
		}
		touched[step] = true
	}
	var s BatchGradScratch
	l.ZeroGrad()
	l.BackwardBatch(&dense, dH, touched, &s)
	gwx, gwh, gb := l.GWx.Clone(), l.GWh.Clone(), l.GB.Clone()
	l.ZeroGrad()
	l.BackwardBatch(&sparse, dH, touched, &s)
	for i, v := range l.GWx.Data {
		if gwx.Data[i] != v {
			t.Fatalf("GWx[%d]: sparse %v dense %v", i, v, gwx.Data[i])
		}
	}
	for i, v := range l.GWh.Data {
		if gwh.Data[i] != v {
			t.Fatalf("GWh[%d]: sparse %v dense %v", i, v, gwh.Data[i])
		}
	}
	for i, v := range l.GB {
		if gb[i] != v {
			t.Fatalf("GB[%d]: sparse %v dense %v", i, v, gb[i])
		}
	}
}

func TestBuildSparseKeepsDenseOnDenseData(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	l := NewLSTM(5, 4, rng)
	var tp BatchTape
	fillTapeInputs(&tp, l, 2, 3, rng) // fully dense Gaussian rows
	tp.BuildSparse()
	if tp.Sparse() {
		t.Fatal("dense rows must stay on the dense kernels")
	}
	// And Reset must clear the flag set by a previous sparse build.
	fillTapeSparseInputs(&tp, l, 2, 3, 1, rng)
	tp.BuildSparse()
	if !tp.Sparse() {
		t.Fatal("1/5 non-zeros should enable the sparse path")
	}
	tp.Reset(l, 2, 3)
	if tp.Sparse() {
		t.Fatal("Reset must clear the sparse flag")
	}
}

func TestBackwardBatchSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	l := NewLSTM(6, 8, rng)
	const B, T = 4, 10
	var tp BatchTape
	fillTapeInputs(&tp, l, B, T, rng)
	dH := make([]Batch, T)
	touched := make([]bool, T)
	for t2 := 0; t2 < T; t2++ {
		dH[t2].Resize(B, l.Hidden)
		touched[t2] = true
	}
	var s BatchGradScratch
	step := func() {
		l.ForwardBatch(&tp)
		for t2 := 0; t2 < T; t2++ {
			for i := range dH[t2].Data {
				dH[t2].Data[i] = 2 * tp.H[t2].Data[i]
			}
		}
		l.BackwardBatch(&tp, dH, touched, &s)
		l.ZeroGrad()
	}
	step() // warm the grow-only buffers
	if n := testing.AllocsPerRun(10, step); n != 0 {
		t.Fatalf("steady-state batched train step allocated %v times, want 0", n)
	}
}
