package nn

// Sparse input projection for batched training. Xatu's feature vectors are
// hierarchical per-service traffic counters, and in any one aggregation
// window most services are silent — typical rows carry a handful of
// non-zeros out of 273 features. The input-side matmuls (Wx·x forward,
// dz·xᵀ into GWx backward) dominate training flops, and both reduce to a
// few 4H-wide axpys per row when driven from a packed non-zero list.
//
// Bit-exactness: skipping an exact-zero term cannot change an IEEE-754 sum
// that starts at +0 — +0 + (±0·w) stays +0, a non-zero partial sum is
// unchanged by adding ±0, and a partial sum can only return to zero as +0
// (x + (−x) rounds to +0), where adding ±0 again keeps +0. So per call the
// sparse kernels accumulate exactly the dense kernels' per-element sums:
// the forward pre-activations are bit-identical, and a BackwardBatch into
// zero GWx matches the dense path bit-for-bit (so batch-1 remains
// bit-identical to TrainExample). When GWx already holds a previous chunk's
// gradients the end-of-call flush adds the same terms with one different
// association; the dense/sparse choice is a pure function of the chunk's
// data, so training stays deterministic either way.
//
// Like the other training kernels these compile with zero per-element
// bounds checks (`make bce`) via exact-length reslicing.

// sparseDensityNum/Den: the sparse path is taken when
// nnz * sparseDensityDen < rows * cols * sparseDensityNum, i.e. below ~50%
// density, where a 4H-wide axpy per non-zero beats the register-blocked
// dense kernel streaming every column.
const (
	sparseDensityNum = 1
	sparseDensityDen = 2
)

// axpy computes dst[i] += a*x[i]. Lengths must match.
func axpy(dst, x []float64, a float64) {
	if len(x) != len(dst) {
		panic("nn: axpy length mismatch")
	}
	x = x[:len(dst)]
	for i := range dst {
		dst[i] += a * x[i]
	}
}

// BuildSparse scans the packed inputs in tp.Xs into a CSR non-zero list
// (row order: step-major, batch row within step) and enables the sparse
// input-projection path when the measured density is low enough to win.
// Call after filling Xs and before ForwardBatch. All storage is grow-only.
func (tp *BatchTape) BuildSparse() {
	tp.nzIdx = tp.nzIdx[:0]
	tp.nzVal = tp.nzVal[:0]
	tp.nzPtr = append(tp.nzPtr[:0], 0)
	T, B := tp.T, tp.B
	xsA := tp.Xs[:T]
	for t := 0; t < T; t++ {
		xb := &xsA[t]
		for i := 0; i < B; i++ {
			row := xb.Row(i)
			for c, v := range row {
				if v != 0 {
					tp.nzIdx = append(tp.nzIdx, int32(c))
					tp.nzVal = append(tp.nzVal, v)
				}
			}
			tp.nzPtr = append(tp.nzPtr, int32(len(tp.nzVal)))
		}
	}
	tp.sparse = len(tp.nzVal)*sparseDensityDen < T*B*tp.in*sparseDensityNum
}

// Sparse reports whether the last BuildSparse enabled the sparse
// input-projection path (observability for tests and tuning).
func (tp *BatchTape) Sparse() bool { return tp.sparse }

// sparsePre fills s.pre rows for step t from the CSR list and the
// pre-transposed input weights in wxT: pre.Row(i) = Σ_nz xv · wxT.Row(c),
// non-zeros in ascending column order — exactly MulVec's per-element
// accumulation order with the zero terms dropped.
func (tp *BatchTape) sparsePre(pre *Batch, wxT *Batch, t int) {
	B := tp.B
	pre.Resize(B, wxT.Cols)
	for i := range pre.Data {
		pre.Data[i] = 0
	}
	if len(tp.nzPtr) < (t+1)*B+1 {
		panic("nn: sparsePre before BuildSparse")
	}
	ptr := tp.nzPtr[t*B:][:B+1]
	for i := 1; i < len(ptr); i++ { // i-1/i row-pointer pairing keeps the loop check-free
		row := pre.Row(i - 1)
		lo, hi := int(ptr[i-1]), int(ptr[i])
		idx := tp.nzIdx[lo:hi]
		val := tp.nzVal[lo:hi]
		val = val[:len(idx)]
		for k, c := range idx {
			axpy(row, wxT.Row(int(c)), val[k])
		}
	}
}

// sparseGrad accumulates step t's input-weight gradient into the
// transposed scratch: gwxT.Row(c) += xv · dz.Row(i) for every non-zero
// (i, c, xv) of the step, batch rows in ascending order — the same
// per-element term order as AddOuterBatch with the zero-input terms
// dropped.
func (tp *BatchTape) sparseGrad(gwxT *Batch, dz *Batch, t int) {
	B := tp.B
	if len(tp.nzPtr) < (t+1)*B+1 {
		panic("nn: sparseGrad before BuildSparse")
	}
	ptr := tp.nzPtr[t*B:][:B+1]
	for i := 1; i < len(ptr); i++ { // i-1/i row-pointer pairing keeps the loop check-free
		dzr := dz.Row(i - 1)
		lo, hi := int(ptr[i-1]), int(ptr[i])
		idx := tp.nzIdx[lo:hi]
		val := tp.nzVal[lo:hi]
		val = val[:len(idx)]
		for k, c := range idx {
			axpy(gwxT.Row(int(c)), dzr, val[k])
		}
	}
}
