package nn

import (
	"math/rand"
	"testing"
)

func TestStepMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	l := NewLSTM(3, 5, rng)
	xs := make([]Vec, 8)
	for i := range xs {
		xs[i] = NewVec(3)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}
	tape := l.Forward(xs)
	var h, c Vec
	var sc StepScratch
	for i, x := range xs {
		h, c = l.Step(h, c, x, &sc)
		for j := range h {
			if h[j] != tape.H[i][j] {
				t.Fatalf("step %d hidden %d: %v != %v", i, j, h[j], tape.H[i][j])
			}
			if c[j] != tape.C[i][j] {
				t.Fatalf("step %d cell %d mismatch", i, j)
			}
		}
	}
}

func TestStepNilStateIsZeroState(t *testing.T) {
	l := NewLSTM(2, 3, rand.New(rand.NewSource(1)))
	h1, c1 := l.Step(nil, nil, Vec{1, 2}, nil)
	h2, c2 := l.Step(NewVec(3), NewVec(3), Vec{1, 2}, nil)
	for j := range h1 {
		if h1[j] != h2[j] || c1[j] != c2[j] {
			t.Fatal("nil state must equal zero state")
		}
	}
}

func TestShareWeightsAliasesWeightsNotGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLSTM(2, 3, rng)
	r := l.ShareWeights()
	if &r.Wx.Data[0] != &l.Wx.Data[0] {
		t.Fatal("weights must alias")
	}
	if &r.GWx.Data[0] == &l.GWx.Data[0] {
		t.Fatal("gradients must be independent")
	}
	// A replica backward must not touch the primary's gradients.
	xs := []Vec{{1, 1}}
	tape := r.Forward(xs)
	r.Backward(tape, []Vec{{1, 1, 1}})
	for _, g := range l.GWx.Data {
		if g != 0 {
			t.Fatal("primary grads must stay zero")
		}
	}
	// Merge moves them over and zeroes the replica.
	r.MergeGradsInto(l)
	var sum float64
	for _, g := range l.GWx.Data {
		sum += g * g
	}
	if sum == 0 {
		t.Fatal("merge must transfer gradients")
	}
	for _, g := range r.GWx.Data {
		if g != 0 {
			t.Fatal("replica grads must be zeroed after merge")
		}
	}
}

func TestDenseShareWeightsAndMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense(2, 2, rng)
	r := d.ShareWeights()
	if &r.W.Data[0] != &d.W.Data[0] || &r.GW.Data[0] == &d.GW.Data[0] {
		t.Fatal("sharing semantics wrong")
	}
	r.Backward(Vec{1, 2}, Vec{3, 4})
	r.MergeGradsInto(d)
	if d.GW.At(0, 0) != 3 || d.GW.At(1, 1) != 8 {
		t.Fatalf("merged grads wrong: %v", d.GW.Data)
	}
	if r.GW.At(0, 0) != 0 {
		t.Fatal("replica must be zeroed")
	}
}

func TestReplicaForwardIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLSTM(3, 4, rng)
	r := l.ShareWeights()
	xs := []Vec{{1, 0, -1}, {0.5, 0.5, 0.5}}
	h1 := l.Forward(xs).H
	h2 := r.Forward(xs).H
	for i := range h1 {
		for j := range h1[i] {
			if h1[i][j] != h2[i][j] {
				t.Fatal("replica forward must match primary")
			}
		}
	}
}
