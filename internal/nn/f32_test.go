package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestExpfAccuracy sweeps Expf against math.Exp: the fast path must stay
// within a few float32 ulps across the useful range and agree on the
// overflow/underflow clamps.
func TestExpfAccuracy(t *testing.T) {
	for x := float32(-87); x <= 88; x += 0.0137 {
		got := float64(Expf(x))
		want := math.Exp(float64(x))
		rel := math.Abs(got-want) / want
		if rel > 4e-7 {
			t.Fatalf("Expf(%v) = %v, want %v (rel err %v)", x, got, want, rel)
		}
	}
	if v := Expf(200); !math.IsInf(float64(v), 1) {
		t.Fatalf("Expf(200) = %v, want +Inf", v)
	}
	if v := Expf(-200); v != 0 {
		t.Fatalf("Expf(-200) = %v, want 0", v)
	}
}

// TestSigmoidTanh32Accuracy pins the float32 gate nonlinearities against
// their float64 references within float32 rounding noise.
func TestSigmoidTanh32Accuracy(t *testing.T) {
	for x := float32(-30); x <= 30; x += 0.0211 {
		if got, want := float64(Sigmoid32(x)), Sigmoid(float64(x)); math.Abs(got-want) > 3e-7 {
			t.Fatalf("Sigmoid32(%v) = %v, want %v", x, got, want)
		}
		if got, want := float64(Tanh32(x)), math.Tanh(float64(x)); math.Abs(got-want) > 6e-7 {
			t.Fatalf("Tanh32(%v) = %v, want %v", x, got, want)
		}
	}
}

// TestPackPanels32Deterministic: quantization is a pure function of the
// weights — packing the same matrix twice must produce identical panel
// bytes, the property that makes quantized model load reproducible.
func TestPackPanels32Deterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	w := NewMat(13, 9) // rows not a multiple of the panel width
	w.XavierInit(rng)
	a, err := PackPanels32(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PackPanels32(w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 13 || a.Cols != 9 || a.Panels != 2 || len(a.Data) != 2*9*8 {
		t.Fatalf("pack shape wrong: %+v", a)
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			t.Fatalf("panel byte %d differs between identical packs", i)
		}
	}
	// Every packed weight must appear at its panel slot, padding zero.
	for r := 0; r < 13; r++ {
		for c := 0; c < 9; c++ {
			got := a.Data[(r/panelWidth)*9*panelWidth+c*panelWidth+r%panelWidth]
			if got != float32(w.At(r, c)) {
				t.Fatalf("packed [%d,%d] = %v, want %v", r, c, got, float32(w.At(r, c)))
			}
		}
	}
	for lane := 13 % panelWidth; lane < panelWidth; lane++ {
		for c := 0; c < 9; c++ {
			if v := a.Data[1*9*panelWidth+c*panelWidth+lane]; v != 0 {
				t.Fatalf("padding lane %d col %d = %v, want 0", lane, c, v)
			}
		}
	}
}

// TestPackPanels32RejectsBadWeights: NaN, Inf, and float32-overflowing
// weights must fail quantization, not silently poison inference.
func TestPackPanels32RejectsBadWeights(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e300} {
		w := NewMat(4, 3)
		w.Data[5] = bad
		if _, err := PackPanels32(w); err == nil {
			t.Fatalf("PackPanels32 accepted weight %v", bad)
		}
		v := NewVec(6)
		v[2] = bad
		if _, err := QuantizeVec32(v); err == nil {
			t.Fatalf("QuantizeVec32 accepted weight %v", bad)
		}
	}
}

// TestReadParamsRejectsNonFinite: a weight file carrying a NaN or Inf
// (bit corruption, diverged training run) must be rejected at load.
func TestReadParamsRejectsNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	w := NewMat(3, 4)
	w.XavierInit(rng)
	params := []Param{{Name: "w", W: w, G: NewMat(3, 4)}}
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		var buf bytes.Buffer
		saved := w.Data[7]
		w.Data[7] = bad
		if err := WriteParams(&buf, params); err != nil {
			t.Fatal(err)
		}
		w.Data[7] = saved
		if err := ReadParams(&buf, params); err == nil {
			t.Fatalf("ReadParams accepted %v weight", bad)
		}
		if w.Data[7] != saved {
			// Partial application before the bad element is fine; the bad
			// element itself must not land.
			t.Fatalf("rejected load overwrote element with %v", w.Data[7])
		}
	}
}

func randBatch32(rng *rand.Rand, rows, cols int) *Batch32 {
	b := &Batch32{}
	b.Resize(rows, cols)
	for i := range b.Data {
		b.Data[i] = float32(rng.NormFloat64())
	}
	return b
}

// TestMulT32MatchesMulVec32Bitwise is the float32 kernel-level contract:
// the batched panel matmul must produce, row for row, exactly the bits
// MulVec32 produces — covering the 4-row main loop and the scalar tail.
func TestMulT32MatchesMulVec32Bitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, rows := range []int{1, 2, 3, 4, 5, 7, 8, 9, 64} {
		w64 := NewMat(12, 9) // 12 rows → panel 0 full, panel 1 padded
		w64.XavierInit(rng)
		w, err := PackPanels32(w64)
		if err != nil {
			t.Fatal(err)
		}
		x := randBatch32(rng, rows, 9)
		var dst Batch32
		x.MulT32(w, &dst)
		want := NewVec32(w.Padded())
		for i := 0; i < rows; i++ {
			w.MulVec32(x.Row(i), want)
			got := dst.Row(i)
			for r := range want {
				if math.Float32bits(got[r]) != math.Float32bits(want[r]) {
					t.Fatalf("rows=%d: MulT32 row %d col %d = %v, MulVec32 = %v", rows, i, r, got[r], want[r])
				}
			}
		}
	}
}

// TestMulVec32MatchesFloat64 sanity-checks the quantized kernel against
// the float64 MulVec within quantization noise (not bitwise — the inputs
// themselves were narrowed).
func TestMulVec32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	w64 := NewMat(16, 11)
	w64.XavierInit(rng)
	w, err := PackPanels32(w64)
	if err != nil {
		t.Fatal(err)
	}
	x64 := NewVec(11)
	for i := range x64 {
		x64[i] = rng.NormFloat64()
	}
	x := Narrow32(x64, nil)
	got := NewVec32(w.Padded())
	w.MulVec32(x, got)
	want := NewVec(16)
	w64.MulVec(x64, want)
	for r := 0; r < 16; r++ {
		if math.Abs(float64(got[r])-want[r]) > 1e-5 {
			t.Fatalf("row %d: f32 %v vs f64 %v", r, got[r], want[r])
		}
	}
}

// TestStepBatch32MatchesStep32Bitwise: the float32 batched step must be
// bit-identical to the float32 sequential step, stream for stream — the
// same invariant the float64 path pins, which lets the engine batch
// channels without perturbing survival outputs.
func TestStepBatch32MatchesStep32Bitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	l64 := NewLSTM(5, 7, rng)
	l, err := l64.Quantize32()
	if err != nil {
		t.Fatal(err)
	}
	for _, B := range []int{1, 3, 4, 6, 16} {
		hs, cs := &Batch32{}, &Batch32{}
		hs.Resize(B, 7)
		cs.Resize(B, 7)
		for i := range hs.Data {
			hs.Data[i], cs.Data[i] = 0, 0
		}
		refH := make([]Vec32, B)
		refC := make([]Vec32, B)
		for i := range refH {
			refH[i] = NewVec32(7)
			refC[i] = NewVec32(7)
		}
		var bs BatchScratch32
		var sc StepScratch32
		for step := 0; step < 9; step++ {
			xs := randBatch32(rng, B, 5)
			l.StepBatch32(hs, cs, xs, &bs)
			for i := 0; i < B; i++ {
				l.Step32(refH[i], refC[i], xs.Row(i), &sc)
				for j := 0; j < 7; j++ {
					if math.Float32bits(hs.Row(i)[j]) != math.Float32bits(refH[i][j]) ||
						math.Float32bits(cs.Row(i)[j]) != math.Float32bits(refC[i][j]) {
						t.Fatalf("B=%d step %d stream %d unit %d: batch (%v,%v) != sequential (%v,%v)",
							B, step, i, j, hs.Row(i)[j], cs.Row(i)[j], refH[i][j], refC[i][j])
					}
				}
			}
		}
	}
}

// TestStep32TracksStep64 runs the quantized cell beside the float64 cell
// on the same inputs: hidden states must track within quantization-level
// tolerance over many steps (no drift blow-up from the fast nonlinearities).
func TestStep32TracksStep64(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	l64 := NewLSTM(9, 11, rng)
	l32, err := l64.Quantize32()
	if err != nil {
		t.Fatal(err)
	}
	h64, c64 := NewVec(11), NewVec(11)
	h32, c32 := NewVec32(11), NewVec32(11)
	var sc64 StepScratch
	var sc32 StepScratch32
	x64 := NewVec(9)
	x32 := NewVec32(9)
	for step := 0; step < 200; step++ {
		for i := range x64 {
			x64[i] = rng.NormFloat64()
			x32[i] = float32(x64[i])
		}
		l64.Step(h64, c64, x64, &sc64)
		l32.Step32(h32, c32, x32, &sc32)
	}
	for j := 0; j < 11; j++ {
		if d := math.Abs(float64(h32[j]) - h64[j]); d > 1e-3 {
			t.Fatalf("unit %d drifted: f32 %v vs f64 %v (|Δ|=%v)", j, h32[j], h64[j], d)
		}
	}
}

// TestDenseForwardBatch32MatchesForwardInto32Bitwise pins the batched
// quantized head against its scalar path.
func TestDenseForwardBatch32MatchesForwardInto32Bitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	d64 := NewDense(6, 3, rng)
	d, err := d64.Quantize32()
	if err != nil {
		t.Fatal(err)
	}
	for _, B := range []int{1, 4, 5} {
		xs := randBatch32(rng, B, 6)
		var out Batch32
		d.ForwardBatch32(xs, &out)
		want := NewVec32(d.Padded())
		for i := 0; i < B; i++ {
			d.ForwardInto32(xs.Row(i), want)
			for r := 0; r < d.Out; r++ {
				if math.Float32bits(out.Row(i)[r]) != math.Float32bits(want[r]) {
					t.Fatalf("B=%d row %d out %d: %v != %v", B, i, r, out.Row(i)[r], want[r])
				}
			}
		}
	}
}

// TestStep32AllocsZero pins the float32 sequential path at zero
// allocations once state and scratch are warm.
func TestStep32AllocsZero(t *testing.T) {
	l64 := NewLSTM(8, 12, rand.New(rand.NewSource(28)))
	l, err := l64.Quantize32()
	if err != nil {
		t.Fatal(err)
	}
	h, c := NewVec32(12), NewVec32(12)
	x := NewVec32(8)
	var sc StepScratch32
	l.Step32(h, c, x, &sc)
	allocs := testing.AllocsPerRun(100, func() {
		l.Step32(h, c, x, &sc)
	})
	if allocs != 0 {
		t.Fatalf("LSTM32.Step32 with scratch allocates %v/op, want 0", allocs)
	}
}

// TestStepBatch32AllocsZero pins the float32 batched path at zero
// allocations at both the small and large batch shapes (the 64-wide shape
// is the one that used to leak scratch growth into the f64 benchmark).
func TestStepBatch32AllocsZero(t *testing.T) {
	l64 := NewLSTM(8, 12, rand.New(rand.NewSource(29)))
	l, err := l64.Quantize32()
	if err != nil {
		t.Fatal(err)
	}
	for _, B := range []int{8, 64} {
		hs, cs, xs := &Batch32{}, &Batch32{}, &Batch32{}
		hs.Resize(B, 12)
		cs.Resize(B, 12)
		xs.Resize(B, 8)
		var bs BatchScratch32
		l.StepBatch32(hs, cs, xs, &bs)
		allocs := testing.AllocsPerRun(100, func() {
			l.StepBatch32(hs, cs, xs, &bs)
		})
		if allocs != 0 {
			t.Fatalf("B=%d: LSTM32.StepBatch32 allocates %v/op, want 0", B, allocs)
		}
	}
}

// TestStepBatch64AllocsZeroAtBatch64 extends the float64 zero-alloc pin to
// the 64-wide shape the benchmarks exercise.
func TestStepBatch64AllocsZeroAtBatch64(t *testing.T) {
	l := NewLSTM(8, 12, rand.New(rand.NewSource(30)))
	hs, cs, xs := &Batch{}, &Batch{}, &Batch{}
	hs.Resize(64, 12)
	cs.Resize(64, 12)
	xs.Resize(64, 8)
	var bs BatchScratch
	l.StepBatch(hs, cs, xs, &bs)
	allocs := testing.AllocsPerRun(100, func() {
		l.StepBatch(hs, cs, xs, &bs)
	})
	if allocs != 0 {
		t.Fatalf("LSTM.StepBatch at batch 64 allocates %v/op, want 0", allocs)
	}
}
