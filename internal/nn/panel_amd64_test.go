//go:build amd64

package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestPanelKernelsAVXMatchesGoBitwise flips the kernel dispatch and runs
// the same panel matmuls through the AVX assembly and the portable Go
// loop: because the assembly uses separate (unfused) multiply and add,
// every output lane is the same strict ascending-column scalar chain and
// the results must be bit-identical — the property that makes float32
// serving reproducible across machines with and without AVX.
func TestPanelKernelsAVXMatchesGoBitwise(t *testing.T) {
	if !hasAVX() {
		t.Skip("no AVX on this machine")
	}
	saved := useAVX
	defer func() { useAVX = saved }()

	rng := rand.New(rand.NewSource(31))
	for _, shape := range []struct{ rows, cols, batch int }{
		{8, 1, 1}, {8, 273, 4}, {12, 9, 5}, {64, 273, 64}, {64, 16, 7}, {1, 3, 2},
	} {
		w64 := NewMat(shape.rows, shape.cols)
		w64.XavierInit(rng)
		w, err := PackPanels32(w64)
		if err != nil {
			t.Fatal(err)
		}
		x := randBatch32(rng, shape.batch, shape.cols)

		var avxOut, goOut Batch32
		useAVX = true
		x.MulT32(w, &avxOut)
		useAVX = false
		x.MulT32(w, &goOut)

		for i := range avxOut.Data {
			if math.Float32bits(avxOut.Data[i]) != math.Float32bits(goOut.Data[i]) {
				t.Fatalf("shape %+v: element %d AVX %v != Go %v",
					shape, i, avxOut.Data[i], goOut.Data[i])
			}
		}

		xv := x.Row(0)
		avxVec := NewVec32(w.Padded())
		goVec := NewVec32(w.Padded())
		useAVX = true
		w.MulVec32(xv, avxVec)
		useAVX = false
		w.MulVec32(xv, goVec)
		for i := range avxVec {
			if math.Float32bits(avxVec[i]) != math.Float32bits(goVec[i]) {
				t.Fatalf("shape %+v: MulVec32 element %d AVX %v != Go %v",
					shape, i, avxVec[i], goVec[i])
			}
		}
	}
}
