package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	l := NewLSTM(5, 7, rng)
	d := NewDense(7, 1, rng)
	params := append(l.Params(), d.Params()...)

	var buf bytes.Buffer
	if err := WriteParams(&buf, params); err != nil {
		t.Fatal(err)
	}

	l2 := NewLSTM(5, 7, rand.New(rand.NewSource(99)))
	d2 := NewDense(7, 1, rand.New(rand.NewSource(99)))
	params2 := append(l2.Params(), d2.Params()...)
	if err := ReadParams(bytes.NewReader(buf.Bytes()), params2); err != nil {
		t.Fatal(err)
	}
	for i := range params {
		for j := range params[i].W.Data {
			if params[i].W.Data[j] != params2[i].W.Data[j] {
				t.Fatalf("param %q element %d differs after round trip", params[i].Name, j)
			}
		}
	}
	// Loaded values must be visible through the layer structs.
	xs := []Vec{{1, 2, 3, 4, 5}}
	h1 := l.Forward(xs).H[0]
	h2 := l2.Forward(xs).H[0]
	for j := range h1 {
		if h1[j] != h2[j] {
			t.Fatal("loaded LSTM does not reproduce original forward pass")
		}
	}
}

func TestReadParamsRejectsBadMagic(t *testing.T) {
	err := ReadParams(bytes.NewReader([]byte("NOPE....")), nil)
	if err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestReadParamsRejectsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(3, 2, rng)
	var buf bytes.Buffer
	if err := WriteParams(&buf, d.Params()); err != nil {
		t.Fatal(err)
	}
	d2 := NewDense(4, 2, rng) // different input width
	err := ReadParams(bytes.NewReader(buf.Bytes()), d2.Params())
	if err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestReadParamsRejectsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(3, 2, rng)
	var buf bytes.Buffer
	if err := WriteParams(&buf, d.Params()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{1, 5, len(raw) / 2, len(raw) - 1} {
		if err := ReadParams(bytes.NewReader(raw[:cut]), d.Params()); err == nil {
			t.Fatalf("expected error for truncation at %d bytes", cut)
		}
	}
}

func TestReadParamsRejectsCountMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(3, 2, rng)
	var buf bytes.Buffer
	if err := WriteParams(&buf, d.Params()); err != nil {
		t.Fatal(err)
	}
	l := NewLSTM(3, 2, rng)
	all := append(d.Params(), l.Params()...)
	if err := ReadParams(bytes.NewReader(buf.Bytes()), all); err == nil {
		t.Fatal("expected count-mismatch error")
	}
}

func TestAdamReducesLoss(t *testing.T) {
	// Fit y = 2x1 - 3x2 with a Dense layer; Adam must drive MSE down.
	rng := rand.New(rand.NewSource(13))
	d := NewDense(2, 1, rng)
	opt := NewAdam(0.05, d.Params())
	loss := func() float64 {
		var L float64
		for i := 0; i < 16; i++ {
			x := Vec{float64(i%4) - 1.5, float64(i/4) - 1.5}
			y := d.Forward(x)
			target := 2*x[0] - 3*x[1]
			diff := y[0] - target
			L += diff * diff
		}
		return L / 16
	}
	before := loss()
	for epoch := 0; epoch < 300; epoch++ {
		d.ZeroGrad()
		for i := 0; i < 16; i++ {
			x := Vec{float64(i%4) - 1.5, float64(i/4) - 1.5}
			y := d.Forward(x)
			target := 2*x[0] - 3*x[1]
			d.Backward(x, Vec{2 * (y[0] - target)})
		}
		opt.Step(1.0 / 16)
	}
	after := loss()
	if after > before/100 {
		t.Fatalf("Adam failed to fit: before %v after %v", before, after)
	}
	if opt.StepCount() != 300 {
		t.Fatalf("StepCount = %d", opt.StepCount())
	}
}

func TestAdamClipBoundsUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := NewDense(2, 1, rng)
	opt := NewAdam(0.1, d.Params())
	opt.Clip = 1
	// Inject an enormous gradient; clipping must keep the update finite and
	// bounded by roughly lr (Adam normalizes per-element, so each step ≤ lr
	// per weight regardless, but the clip also protects moment estimates).
	d.GW.Data[0] = 1e12
	before := d.W.Data[0]
	opt.Step(1)
	delta := d.W.Data[0] - before
	if delta > 0 || delta < -0.2 {
		t.Fatalf("clipped update out of range: %v", delta)
	}
}
