package nn

import "fmt"

// Batch is a dense row-major B×dim matrix holding one row per independent
// stream, used to advance many streams through one shared weight set in a
// single kernel pass. It is distinct from Mat on purpose: a Mat is a weight
// tensor with gradient semantics, a Batch is a transient packing buffer
// whose backing storage is reused across calls (Resize never shrinks the
// allocation).
type Batch struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// Resize reshapes the batch to rows×cols, reusing the backing array when it
// is large enough. Contents after Resize are unspecified: callers fully
// overwrite every row they use.
func (b *Batch) Resize(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic("nn: Batch.Resize with negative dimension")
	}
	n := rows * cols
	if cap(b.Data) < n {
		b.Data = make([]float64, n)
	}
	b.Data = b.Data[:n]
	b.Rows, b.Cols = rows, cols
}

// Row returns row i as a slice aliasing the batch storage.
func (b *Batch) Row(i int) Vec { return Vec(b.Data[i*b.Cols : (i+1)*b.Cols]) }

// mulTileRows is the register-blocking factor of MulT: how many batch rows
// share one load of a weight row. Four keeps every accumulator in a
// register on amd64/arm64 while still quartering weight-matrix traffic.
const mulTileRows = 4

// MulT computes dst = x · wᵀ, i.e. dst[i][r] = Σ_c w[r][c]·x[i][c], with
// dst resized to x.Rows × w.Rows. Stepping each stream alone runs one
// MulVec per stream and streams the whole weight matrix through cache B
// times; this kernel iterates weight rows in the outer loop, so the weights
// are streamed once per call, and blocks batch rows in tiles of mulTileRows
// so every weight load feeds four independent accumulators. Per output
// element the accumulation order is the plain left-to-right dot product of
// Mat.MulVec — a Batch of B rows yields bit-identical results to B
// independent MulVec calls, the invariant the batched and sequential
// inference paths rely on.
func (x *Batch) MulT(w *Mat, dst *Batch) {
	if x.Cols != w.Cols {
		panic(fmt.Sprintf("nn: MulT shape mismatch (%dx%d)·(%dx%d)ᵀ", x.Rows, x.Cols, w.Rows, w.Cols))
	}
	dst.Resize(x.Rows, w.Rows)
	cols := x.Cols
	for r := 0; r < w.Rows; r++ {
		wr := w.Data[r*w.Cols : r*w.Cols+cols]
		i := 0
		for ; i+mulTileRows <= x.Rows; i += mulTileRows {
			x0 := x.Data[i*cols : i*cols+cols]
			x1 := x.Data[(i+1)*cols : (i+1)*cols+cols]
			x2 := x.Data[(i+2)*cols : (i+2)*cols+cols]
			x3 := x.Data[(i+3)*cols : (i+3)*cols+cols]
			var s0, s1, s2, s3 float64
			for c, wv := range wr {
				s0 += wv * x0[c]
				s1 += wv * x1[c]
				s2 += wv * x2[c]
				s3 += wv * x3[c]
			}
			dst.Data[i*dst.Cols+r] = s0
			dst.Data[(i+1)*dst.Cols+r] = s1
			dst.Data[(i+2)*dst.Cols+r] = s2
			dst.Data[(i+3)*dst.Cols+r] = s3
		}
		for ; i < x.Rows; i++ {
			xi := x.Data[i*cols : i*cols+cols]
			var s float64
			for c, wv := range wr {
				s += wv * xi[c]
			}
			dst.Data[i*dst.Cols+r] = s
		}
	}
}
