package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba, 2014), the optimizer the
// paper trains Xatu with (learning rate 1e-4 in the prototype). One Adam
// instance owns the moment estimates for a fixed parameter list.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	Clip    float64 // global gradient-norm clip; 0 disables
	step    int
	m, v    []*Mat
	params  []Param
	numEl   int
	prepped bool
}

// NewAdam returns an Adam optimizer over params with standard defaults
// (beta1=0.9, beta2=0.999, eps=1e-8) and a gradient-norm clip of 5, which
// keeps BPTT over long Xatu sequences stable.
func NewAdam(lr float64, params []Param) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 5, params: params}
	a.m = make([]*Mat, len(params))
	a.v = make([]*Mat, len(params))
	for i, p := range params {
		a.m[i] = NewMat(p.W.Rows, p.W.Cols)
		a.v[i] = NewMat(p.W.Rows, p.W.Cols)
		a.numEl += len(p.W.Data)
	}
	a.prepped = true
	return a
}

// Step applies one Adam update using the gradients currently accumulated in
// the parameter list, then zeroes them. scale divides the gradients first
// (use 1/batchSize for mean-gradient semantics).
func (a *Adam) Step(scale float64) {
	a.step++
	if scale != 1 {
		for _, p := range a.params {
			for i := range p.G.Data {
				p.G.Data[i] *= scale
			}
		}
	}
	if a.Clip > 0 {
		var norm2 float64
		for _, p := range a.params {
			for _, g := range p.G.Data {
				norm2 += g * g
			}
		}
		norm := math.Sqrt(norm2)
		if norm > a.Clip {
			s := a.Clip / norm
			for _, p := range a.params {
				for i := range p.G.Data {
					p.G.Data[i] *= s
				}
			}
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.params {
		m := a.m[i].Data
		v := a.v[i].Data
		for j, g := range p.G.Data {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / bc1
			vh := v[j] / bc2
			p.W.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.G.Zero()
	}
}

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.step }
