package nn

import (
	"math/rand"
	"testing"
)

// Benchmark dimensions mirror the deployed detector: 273 input features
// into the default laptop-scale hidden width.
const (
	benchIn     = 273
	benchHidden = 16
)

func benchLSTM(b *testing.B) *LSTM {
	b.Helper()
	return NewLSTM(benchIn, benchHidden, rand.New(rand.NewSource(1)))
}

// BenchmarkLSTMStep is the single-stream hot path: one timestep with
// caller-owned state and scratch (zero allocations).
func BenchmarkLSTMStep(b *testing.B) {
	l := benchLSTM(b)
	h, c := NewVec(benchHidden), NewVec(benchHidden)
	x := NewVec(benchIn)
	for i := range x {
		x[i] = float64(i%7) * 0.1
	}
	var sc StepScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Step(h, c, x, &sc)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
}

// benchStepBatch advances B independent streams per op through the shared
// weights; steps/sec counts stream-steps, so it compares directly with
// BenchmarkLSTMStep.
func benchStepBatch(b *testing.B, B int) {
	l := benchLSTM(b)
	hs, cs, xs := &Batch{}, &Batch{}, &Batch{}
	hs.Resize(B, benchHidden)
	cs.Resize(B, benchHidden)
	xs.Resize(B, benchIn)
	for i := range xs.Data {
		xs.Data[i] = float64(i%7) * 0.1
	}
	var bs BatchScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.StepBatch(hs, cs, xs, &bs)
	}
	b.ReportMetric(float64(b.N)*float64(B)/b.Elapsed().Seconds(), "steps/sec")
}

func BenchmarkLSTMStepBatch8(b *testing.B)  { benchStepBatch(b, 8) }
func BenchmarkLSTMStepBatch64(b *testing.B) { benchStepBatch(b, 64) }
