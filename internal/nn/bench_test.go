package nn

import (
	"math/rand"
	"testing"
)

// Benchmark dimensions mirror the deployed detector: 273 input features
// into the default laptop-scale hidden width.
const (
	benchIn     = 273
	benchHidden = 16
)

func benchLSTM(b *testing.B) *LSTM {
	b.Helper()
	return NewLSTM(benchIn, benchHidden, rand.New(rand.NewSource(1)))
}

// BenchmarkLSTMStep is the single-stream hot path: one timestep with
// caller-owned state and scratch (zero allocations).
func BenchmarkLSTMStep(b *testing.B) {
	l := benchLSTM(b)
	h, c := NewVec(benchHidden), NewVec(benchHidden)
	x := NewVec(benchIn)
	for i := range x {
		x[i] = float64(i%7) * 0.1
	}
	var sc StepScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Step(h, c, x, &sc)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
}

// benchStepBatch advances B independent streams per op through the shared
// weights; steps/sec counts stream-steps, so it compares directly with
// BenchmarkLSTMStep.
func benchStepBatch(b *testing.B, B int) {
	l := benchLSTM(b)
	hs, cs, xs := &Batch{}, &Batch{}, &Batch{}
	hs.Resize(B, benchHidden)
	cs.Resize(B, benchHidden)
	xs.Resize(B, benchIn)
	for i := range xs.Data {
		xs.Data[i] = float64(i%7) * 0.1
	}
	var bs BatchScratch
	l.StepBatch(hs, cs, xs, &bs) // warm the scratch so b.N ops report true steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.StepBatch(hs, cs, xs, &bs)
	}
	b.ReportMetric(float64(b.N)*float64(B)/b.Elapsed().Seconds(), "steps/sec")
}

func BenchmarkLSTMStepBatch8(b *testing.B)  { benchStepBatch(b, 8) }
func BenchmarkLSTMStepBatch64(b *testing.B) { benchStepBatch(b, 64) }

// benchStepBatch32 is benchStepBatch through the quantized float32 panel
// kernels; steps/sec is directly comparable to the float64 rows.
func benchStepBatch32(b *testing.B, B int) {
	l, err := benchLSTM(b).Quantize32()
	if err != nil {
		b.Fatal(err)
	}
	hs, cs, xs := &Batch32{}, &Batch32{}, &Batch32{}
	hs.Resize(B, benchHidden)
	cs.Resize(B, benchHidden)
	xs.Resize(B, benchIn)
	for i := range xs.Data {
		xs.Data[i] = float32(i%7) * 0.1
	}
	var bs BatchScratch32
	l.StepBatch32(hs, cs, xs, &bs) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.StepBatch32(hs, cs, xs, &bs)
	}
	b.ReportMetric(float64(b.N)*float64(B)/b.Elapsed().Seconds(), "steps/sec")
}

func BenchmarkLSTMStepBatch8F32(b *testing.B)  { benchStepBatch32(b, 8) }
func BenchmarkLSTMStepBatch64F32(b *testing.B) { benchStepBatch32(b, 64) }

// BenchmarkLSTMStepF32 is the single-stream float32 path.
func BenchmarkLSTMStepF32(b *testing.B) {
	l, err := benchLSTM(b).Quantize32()
	if err != nil {
		b.Fatal(err)
	}
	h, c := NewVec32(benchHidden), NewVec32(benchHidden)
	x := NewVec32(benchIn)
	for i := range x {
		x[i] = float32(i%7) * 0.1
	}
	var sc StepScratch32
	l.Step32(h, c, x, &sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Step32(h, c, x, &sc)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
}

// benchTrainTape prepares a warmed BatchTape of B sequences × benchSeqLen
// steps plus full gradient injections, the shape of one training chunk.
const benchSeqLen = 60

func benchTrainTape(b *testing.B, B int) (*LSTM, *BatchTape, []Batch, []bool) {
	b.Helper()
	l := benchLSTM(b)
	tp := &BatchTape{}
	tp.Reset(l, B, benchSeqLen)
	for t := 0; t < benchSeqLen; t++ {
		for i := range tp.Xs[t].Data {
			tp.Xs[t].Data[i] = float64(i%7) * 0.1
		}
	}
	l.ForwardBatch(tp)
	dH := make([]Batch, benchSeqLen)
	touched := make([]bool, benchSeqLen)
	for t := 0; t < benchSeqLen; t++ {
		dH[t].Resize(B, benchHidden)
		for i := range dH[t].Data {
			dH[t].Data[i] = 0.01 * float64(i%5)
		}
		touched[t] = true
	}
	return l, tp, dH, touched
}

// benchForwardBatch runs one batched training forward per op; steps/sec
// counts stream-steps so batch sizes compare directly.
func benchForwardBatch(b *testing.B, B int) {
	l, tp, _, _ := benchTrainTape(b, B)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.ForwardBatch(tp)
	}
	b.ReportMetric(float64(b.N)*float64(B)*benchSeqLen/b.Elapsed().Seconds(), "steps/sec")
}

func BenchmarkLSTMForwardBatch1(b *testing.B) { benchForwardBatch(b, 1) }
func BenchmarkLSTMForwardBatch8(b *testing.B) { benchForwardBatch(b, 8) }

// benchBackwardBatch runs one batched BPTT pass per op over the warmed
// tape; steps/sec counts stream-steps.
func benchBackwardBatch(b *testing.B, B int) {
	l, tp, dH, touched := benchTrainTape(b, B)
	var s BatchGradScratch
	l.BackwardBatch(tp, dH, touched, &s) // warm the gradient scratch
	l.ZeroGrad()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.BackwardBatch(tp, dH, touched, &s)
	}
	b.StopTimer()
	l.ZeroGrad()
	b.ReportMetric(float64(b.N)*float64(B)*benchSeqLen/b.Elapsed().Seconds(), "steps/sec")
}

func BenchmarkLSTMBackwardBatch1(b *testing.B) { benchBackwardBatch(b, 1) }
func BenchmarkLSTMBackwardBatch8(b *testing.B) { benchBackwardBatch(b, 8) }

// BenchmarkLSTMBackwardScalar is the pre-batching reference: one scalar
// Forward + Backward per op (the Backward needs a fresh tape each op, as
// the scalar trainer allocates one per example).
func BenchmarkLSTMBackwardScalar(b *testing.B) {
	l := benchLSTM(b)
	xs := make([]Vec, benchSeqLen)
	for t := range xs {
		xs[t] = NewVec(benchIn)
		for i := range xs[t] {
			xs[t][i] = float64(i%7) * 0.1
		}
	}
	dH := make([]Vec, benchSeqLen)
	for t := range dH {
		dH[t] = NewVec(benchHidden)
		for i := range dH[t] {
			dH[t][i] = 0.01 * float64(i%5)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tape := l.Forward(xs)
		l.Backward(tape, dH)
	}
	b.StopTimer()
	l.ZeroGrad()
	b.ReportMetric(float64(b.N)*benchSeqLen/b.Elapsed().Seconds(), "steps/sec")
}
