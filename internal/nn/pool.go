package nn

// MeanPool downsamples a sequence of feature vectors by averaging
// non-overlapping windows of k consecutive steps. A trailing partial window
// is averaged over its actual length, so no input step is dropped. k <= 1
// returns xs unchanged (aliasing the input).
func MeanPool(xs []Vec, k int) []Vec {
	if k <= 1 || len(xs) == 0 {
		return xs
	}
	n := (len(xs) + k - 1) / k
	out := make([]Vec, n)
	dim := len(xs[0])
	for w := 0; w < n; w++ {
		lo := w * k
		hi := lo + k
		if hi > len(xs) {
			hi = len(xs)
		}
		acc := NewVec(dim)
		for t := lo; t < hi; t++ {
			acc.Add(xs[t])
		}
		acc.Scale(1 / float64(hi-lo))
		out[w] = acc
	}
	return out
}

// MeanPoolBackward distributes gradients of the pooled sequence back to the
// original resolution: each input step in window w receives dPooled[w]/len(w).
// origLen is the pre-pooling sequence length. nil entries in dPooled are
// treated as zero.
func MeanPoolBackward(dPooled []Vec, k, origLen, dim int) []Vec {
	dXs := make([]Vec, origLen)
	if k <= 1 {
		for t := 0; t < origLen && t < len(dPooled); t++ {
			if dPooled[t] != nil {
				dXs[t] = dPooled[t].Clone()
			} else {
				dXs[t] = NewVec(dim)
			}
		}
		for t := range dXs {
			if dXs[t] == nil {
				dXs[t] = NewVec(dim)
			}
		}
		return dXs
	}
	for t := 0; t < origLen; t++ {
		dXs[t] = NewVec(dim)
	}
	for w, dp := range dPooled {
		if dp == nil {
			continue
		}
		lo := w * k
		hi := lo + k
		if hi > origLen {
			hi = origLen
		}
		if lo >= origLen {
			break
		}
		scale := 1 / float64(hi-lo)
		for t := lo; t < hi; t++ {
			for j := range dp {
				dXs[t][j] += dp[j] * scale
			}
		}
	}
	return dXs
}
