//go:build amd64

package nn

// useAVX selects the AVX panel kernels when the CPU and OS both support
// 256-bit vector state. It is a variable, not a constant, so tests can
// force the portable kernel and assert bit-identical outputs.
var useAVX = hasAVX()

// hasAVX reports whether AVX instructions are safe to execute: CPUID
// must advertise AVX and OSXSAVE, and XCR0 must show the OS preserving
// XMM+YMM state across context switches.
func hasAVX() bool {
	_, _, ecx, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	return xgetbv0()&0x6 == 0x6
}

// cpuidex executes CPUID with the given leaf/subleaf.
func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0.
func xgetbv0() uint64

// panelMul1avx computes dst[j] = Σ_c wp[c*8+j]·x[c] for j in [0,8) over
// one 8-row weight panel (wp has cols*8 floats). Multiplication and
// addition are separate instructions (no FMA) so results are bit-identical
// to panelMul1go.
//
//go:noescape
func panelMul1avx(wp *float32, x *float32, cols int, dst *float32)

// panelMul4avx is panelMul1avx for four batch rows sharing one streaming
// pass over the weight panel.
//
//go:noescape
func panelMul4avx(wp *float32, x0, x1, x2, x3 *float32, cols int, dst0, dst1, dst2, dst3 *float32)
