//go:build amd64

#include "textflag.h"

// func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() uint64
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET

// func panelMul1avx(wp *float32, x *float32, cols int, dst *float32)
//
// One 8-row weight panel times one input row: dst[j] = Σ_c wp[c*8+j]·x[c].
// The multiply and add are separate (unfused) instructions so each output
// lane is the same strict ascending-c scalar chain panelMul1go computes,
// keeping the two kernels bit-identical.
TEXT ·panelMul1avx(SB), NOSPLIT, $0-32
	MOVQ wp+0(FP), SI
	MOVQ x+8(FP), DX
	MOVQ cols+16(FP), CX
	MOVQ dst+24(FP), DI
	VXORPS Y0, Y0, Y0
	TESTQ CX, CX
	JLE  done1
loop1:
	VMOVUPS      (SI), Y1
	VBROADCASTSS (DX), Y2
	VMULPS       Y1, Y2, Y2
	VADDPS       Y2, Y0, Y0
	ADDQ         $32, SI
	ADDQ         $4, DX
	DECQ         CX
	JNZ          loop1
done1:
	VMOVUPS Y0, (DI)
	VZEROUPPER
	RET

// func panelMul4avx(wp *float32, x0, x1, x2, x3 *float32, cols int,
//                   dst0, dst1, dst2, dst3 *float32)
//
// Four batch rows share one streaming pass over the weight panel. Each
// row's accumulator is an independent dependency chain, so the four rows
// hide the VADDPS latency that bit-exactness forbids unrolling away
// within a single row.
TEXT ·panelMul4avx(SB), NOSPLIT, $0-80
	MOVQ wp+0(FP), SI
	MOVQ x0+8(FP), R8
	MOVQ x1+16(FP), R9
	MOVQ x2+24(FP), R10
	MOVQ x3+32(FP), R11
	MOVQ cols+40(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	TESTQ CX, CX
	JLE  done4
loop4:
	VMOVUPS      (SI), Y4
	VBROADCASTSS (R8), Y5
	VMULPS       Y4, Y5, Y5
	VADDPS       Y5, Y0, Y0
	VBROADCASTSS (R9), Y6
	VMULPS       Y4, Y6, Y6
	VADDPS       Y6, Y1, Y1
	VBROADCASTSS (R10), Y7
	VMULPS       Y4, Y7, Y7
	VADDPS       Y7, Y2, Y2
	VBROADCASTSS (R11), Y8
	VMULPS       Y4, Y8, Y8
	VADDPS       Y8, Y3, Y3
	ADDQ         $32, SI
	ADDQ         $4, R8
	ADDQ         $4, R9
	ADDQ         $4, R10
	ADDQ         $4, R11
	DECQ         CX
	JNZ          loop4
done4:
	MOVQ    dst0+48(FP), DI
	VMOVUPS Y0, (DI)
	MOVQ    dst1+56(FP), DI
	VMOVUPS Y1, (DI)
	MOVQ    dst2+64(FP), DI
	VMOVUPS Y2, (DI)
	MOVQ    dst3+72(FP), DI
	VMOVUPS Y3, (DI)
	VZEROUPPER
	RET
