package nn

import "math"

// Float32 inference support. Training stays float64 end to end; at model
// load the weights are quantized once into float32 panels (panel32.go) and
// the online stream state advances in float32. The survival accounting on
// top of the model (hazard ring, window sums) remains float64 — only the
// kernel arithmetic narrows, which is where all the time goes.

// Vec32 is a dense float32 vector.
type Vec32 []float32

// NewVec32 returns a zero vector of length n.
func NewVec32(n int) Vec32 { return make(Vec32, n) }

// Zero resets every element of v to 0 in place.
func (v Vec32) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Add adds o to v element-wise in place. Panics if lengths differ.
func (v Vec32) Add(o Vec32) {
	if len(v) != len(o) {
		panic("nn: Vec32.Add length mismatch")
	}
	o = o[:len(v)]
	for i := range v {
		v[i] += o[i]
	}
}

// Widen converts v into dst (float64), reallocating when dst is too short.
func (v Vec32) Widen(dst Vec) Vec {
	if len(dst) != len(v) {
		dst = make(Vec, len(v))
	}
	dst = dst[:len(v)] // exact length: the loop body compiles check-free
	for i, x := range v {
		dst[i] = float64(x)
	}
	return dst
}

// Narrow32 converts a float64 vector into dst (float32), reallocating when
// dst is too short. It runs once per stream per step in the batch runner,
// so like the kernels it compiles with no per-element bounds checks.
func Narrow32(src Vec, dst Vec32) Vec32 {
	if len(dst) != len(src) {
		dst = make(Vec32, len(src))
	}
	dst = dst[:len(src)]
	for i, x := range src {
		dst[i] = float32(x)
	}
	return dst
}

// Batch32 is the float32 analogue of Batch: a dense row-major B×dim packing
// buffer, one row per independent stream, with storage reused across calls.
type Batch32 struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// Resize reshapes the batch to rows×cols, reusing the backing array when it
// is large enough. Contents after Resize are unspecified.
func (b *Batch32) Resize(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic("nn: Batch32.Resize with negative dimension")
	}
	n := rows * cols
	if cap(b.Data) < n {
		b.Data = make([]float32, n)
	}
	b.Data = b.Data[:n]
	b.Rows, b.Cols = rows, cols
}

// Row returns row i as a slice aliasing the batch storage.
func (b *Batch32) Row(i int) Vec32 { return Vec32(b.Data[i*b.Cols : (i+1)*b.Cols]) }

// Expf returns e^x for float32 x. It computes in float64 (scalar float32
// and float64 arithmetic cost the same on every target we run on) with a
// degree-6 polynomial after range reduction, accurate to ~1 ulp of float32
// across the whole finite range — far below the float32 quantization noise
// the serving path already tolerates, and several times faster than
// math.Exp. The gate nonlinearities are the second-largest cost of a step
// after the matmuls, so this matters.
func Expf(x float32) float32 {
	xd := float64(x)
	if xd > 88.72283905206835 { // overflows float32
		return float32(math.Inf(1))
	}
	if xd < -87.33654475055312 { // below the float32 normal range: flush to zero
		return 0
	}
	const (
		log2e = 1.4426950408889634
		ln2hi = 6.93147180369123816490e-01
		ln2lo = 1.90821492927058770002e-10
		// Adding then subtracting 1.5·2^52 rounds a float64 of this
		// magnitude to the nearest integer in two cheap additions, off the
		// critical path a Floor call would lengthen.
		rndMagic = 6755399441055744.0
	)
	t := xd*log2e + rndMagic
	kf := t - rndMagic
	r := (xd - kf*ln2hi) - kf*ln2lo
	// exp(r) on |r| ≤ ln2/2 by a degree-6 Taylor polynomial; the next term
	// is ≤ (ln2/2)^7/7! ≈ 1.2e-7 relative, at the float32 epsilon. Estrin
	// grouping keeps the dependency chain ~4 multiplies deep instead of
	// Horner's 12 — this function sits in the gate loop, where latency, not
	// instruction count, is what shows up.
	r2 := r * r
	lo := (1 + r) + r2*(0.5+r*(1.0/6))
	hi := 1.0/24 + r*(1.0/120) + r2*(1.0/720)
	p := lo + (r2*r2)*hi
	return float32(p * math.Float64frombits(uint64(int64(kf)+1023)<<52))
}

const f32SignBit = 1 << 31

// Sigmoid32 returns 1/(1+e^-x), computed stably for large |x| via
// 0.5·(1 + tanh(x/2)). The sign is folded in with bit operations rather
// than a branch: gate pre-activations have data-random sign, so a branch
// here mispredicts half the time and costs more than the arithmetic.
func Sigmoid32(x float32) float32 {
	ax := math.Float32frombits(math.Float32bits(x) &^ f32SignBit)
	ax = min(ax, 18.04) // past this, (1-z)/(1+z) rounds to 1 anyway
	z := Expf(-ax)
	r := (1 - z) / (1 + z) // tanh(|x|/2)
	r = math.Float32frombits(math.Float32bits(r) | math.Float32bits(x)&f32SignBit)
	return 0.5 + 0.5*r
}

// Tanh32 returns tanh(x) via the stable e^-2|x| form, branchless like
// Sigmoid32.
func Tanh32(x float32) float32 {
	ax := math.Float32frombits(math.Float32bits(x) &^ f32SignBit)
	ax = min(ax, 9.02) // 1 - tanh(9.02) < float32 epsilon: saturates to 1
	t := Expf(-2 * ax)
	r := (1 - t) / (1 + t)
	return math.Float32frombits(math.Float32bits(r) | math.Float32bits(x)&f32SignBit)
}
