package nn

import (
	"math/rand"
	"testing"
)

func randBatch(rng *rand.Rand, rows, cols int) *Batch {
	b := &Batch{}
	b.Resize(rows, cols)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	return b
}

// TestMulTMatchesMulVecBitwise is the kernel-level bit-exactness contract:
// the blocked batched matmul must produce, for every row, exactly the
// float64 sequence MulVec produces — including rows handled by the tiled
// main loop and the scalar tail (batch sizes straddling the tile width).
func TestMulTMatchesMulVecBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, rows := range []int{1, 2, 3, 4, 5, 7, 8, 9, 64} {
		w := NewMat(12, 9)
		w.XavierInit(rng)
		x := randBatch(rng, rows, 9)
		var dst Batch
		x.MulT(w, &dst)
		want := NewVec(12)
		for i := 0; i < rows; i++ {
			w.MulVec(x.Row(i), want)
			got := dst.Row(i)
			for r := range want {
				if got[r] != want[r] {
					t.Fatalf("rows=%d: MulT row %d col %d = %v, MulVec = %v", rows, i, r, got[r], want[r])
				}
			}
		}
	}
}

// TestStepBatchMatchesStepBitwise advances B streams with StepBatch and
// each stream alone with Step: hidden and cell states must be bit-equal at
// every timestep. This is the invariant that lets the engine batch
// channels sharing a model without perturbing survival outputs.
func TestStepBatchMatchesStepBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l := NewLSTM(5, 7, rng)
	for _, B := range []int{1, 3, 4, 6, 16} {
		hs, cs := &Batch{}, &Batch{}
		hs.Resize(B, 7)
		cs.Resize(B, 7)
		for i := range hs.Data {
			hs.Data[i], cs.Data[i] = 0, 0
		}
		// Reference streams advanced one at a time.
		refH := make([]Vec, B)
		refC := make([]Vec, B)
		for i := range refH {
			refH[i] = NewVec(7)
			refC[i] = NewVec(7)
		}
		var bs BatchScratch
		var sc StepScratch
		for step := 0; step < 9; step++ {
			xs := randBatch(rng, B, 5)
			l.StepBatch(hs, cs, xs, &bs)
			for i := 0; i < B; i++ {
				l.Step(refH[i], refC[i], xs.Row(i), &sc)
				for j := 0; j < 7; j++ {
					if hs.Row(i)[j] != refH[i][j] || cs.Row(i)[j] != refC[i][j] {
						t.Fatalf("B=%d step %d stream %d unit %d: batch (%v,%v) != sequential (%v,%v)",
							B, step, i, j, hs.Row(i)[j], cs.Row(i)[j], refH[i][j], refC[i][j])
					}
				}
			}
		}
	}
}

// TestDenseForwardBatchMatchesForwardBitwise pins the batched head against
// the scalar path.
func TestDenseForwardBatchMatchesForwardBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := NewDense(6, 3, rng)
	for _, B := range []int{1, 4, 5} {
		xs := randBatch(rng, B, 6)
		var out Batch
		d.ForwardBatch(xs, &out)
		for i := 0; i < B; i++ {
			want := d.Forward(xs.Row(i))
			for r := range want {
				if out.Row(i)[r] != want[r] {
					t.Fatalf("B=%d row %d out %d: %v != %v", B, i, r, out.Row(i)[r], want[r])
				}
			}
		}
	}
}

// TestStepWithScratchAllocsZero pins the single-stream hot path at zero
// allocations per step once state and scratch are caller-owned.
func TestStepWithScratchAllocsZero(t *testing.T) {
	l := NewLSTM(8, 12, rand.New(rand.NewSource(14)))
	h, c := NewVec(12), NewVec(12)
	x := NewVec(8)
	var sc StepScratch
	l.Step(h, c, x, &sc) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		l.Step(h, c, x, &sc)
	})
	if allocs != 0 {
		t.Fatalf("LSTM.Step with scratch allocates %v/op, want 0", allocs)
	}
}

// TestStepBatchAllocsZero pins the batched path at zero allocations per
// step once the batches and scratch are warm.
func TestStepBatchAllocsZero(t *testing.T) {
	l := NewLSTM(8, 12, rand.New(rand.NewSource(15)))
	hs, cs, xs := &Batch{}, &Batch{}, &Batch{}
	hs.Resize(16, 12)
	cs.Resize(16, 12)
	xs.Resize(16, 8)
	var bs BatchScratch
	l.StepBatch(hs, cs, xs, &bs) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		l.StepBatch(hs, cs, xs, &bs)
	})
	if allocs != 0 {
		t.Fatalf("LSTM.StepBatch allocates %v/op, want 0", allocs)
	}
}

func TestBatchResizeReusesStorage(t *testing.T) {
	var b Batch
	b.Resize(8, 4)
	p := &b.Data[0]
	b.Resize(2, 4)
	if &b.Data[0] != p {
		t.Fatal("shrinking Resize must reuse backing storage")
	}
	if b.Rows != 2 || b.Cols != 4 || len(b.Data) != 8 {
		t.Fatalf("Resize dims wrong: %d×%d len %d", b.Rows, b.Cols, len(b.Data))
	}
}
