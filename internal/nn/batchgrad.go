package nn

import (
	"fmt"
	"math"
)

// Batched training kernels: the gate arithmetic shared by the scalar and
// batched forward passes, the per-row BPTT gate gradients, and the two
// batch-level gradient matmuls (outer-product accumulation and transposed
// propagation). These are the inner loops of every training step, so like
// the float32 serving kernels they must compile with zero per-element
// bounds checks (`make bce`): every loop body indexes only slices whose
// length the compiler has proven, via exact-length two-step reslicing.
//
// Bit-exactness contract: per batch row, every kernel performs exactly the
// arithmetic (and zero-skips) of its scalar counterpart in mat.go /
// lstm.go, in the same per-element order, so a batch-1 training step is
// bit-identical to the scalar path and any batch size is deterministic.

// lstmGatesTape applies the gate nonlinearities for one stream and records
// the post-activation gate values [i f g o] on the tape row. On entry c
// holds the previous cell state; on return h and c hold the next hidden
// and cell states. It is the single definition of the forward gate
// arithmetic shared by the scalar Forward and ForwardBatch, so the two
// training paths cannot drift.
func lstmGatesTape(hd int, pre, rec, bias, gates, h, c Vec) {
	pi, pf, pg, po := pre[0:][:hd], pre[hd:][:hd], pre[2*hd:][:hd], pre[3*hd:][:hd]
	ri, rf, rg, ro := rec[0:][:hd], rec[hd:][:hd], rec[2*hd:][:hd], rec[3*hd:][:hd]
	bi, bf, bg, bo := bias[0:][:hd], bias[hd:][:hd], bias[2*hd:][:hd], bias[3*hd:][:hd]
	gI, gF, gG, gO := gates[0:][:hd], gates[hd:][:hd], gates[2*hd:][:hd], gates[3*hd:][:hd]
	h = h[0:][:hd]
	c = c[0:][:hd]
	for j := range h {
		gi := Sigmoid(pi[j] + ri[j] + bi[j])
		gf := Sigmoid(pf[j] + rf[j] + bf[j])
		gg := math.Tanh(pg[j] + rg[j] + bg[j])
		go_ := Sigmoid(po[j] + ro[j] + bo[j])
		gI[j] = gi
		gF[j] = gf
		gG[j] = gg
		gO[j] = go_
		c[j] = gf*c[j] + gi*gg
		h[j] = go_ * math.Tanh(c[j])
	}
}

// lstmGateGrads computes one stream's pre-activation gate gradients for one
// timestep of BPTT. gates/c/cPrev are the taped forward values, dh is
// dL/dh at this step (recurrent flow plus any injection), and dc is dL/dc
// flowing from step t+1 — updated in place to the value flowing into step
// t-1 (scaled by the forget gate). dz receives the four gate gradients.
// The expressions are exactly those of the scalar LSTM.Backward.
func lstmGateGrads(hd int, gates, c, cPrev, dh, dc, dz Vec) {
	gI, gF, gG, gO := gates[0:][:hd], gates[hd:][:hd], gates[2*hd:][:hd], gates[3*hd:][:hd]
	zI, zF, zG, zO := dz[0:][:hd], dz[hd:][:hd], dz[2*hd:][:hd], dz[3*hd:][:hd]
	c = c[0:][:hd]
	cPrev = cPrev[0:][:hd]
	dh = dh[0:][:hd]
	dc = dc[0:][:hd]
	for j := range dh {
		gi, gf, gg, go_ := gI[j], gF[j], gG[j], gO[j]
		tc := math.Tanh(c[j])
		d := dc[j] + dh[j]*go_*(1-tc*tc)
		zI[j] = d * gg * gi * (1 - gi)
		zF[j] = d * cPrev[j] * gf * (1 - gf)
		zG[j] = d * gi * (1 - gg*gg)
		zO[j] = dh[j] * tc * go_ * (1 - go_)
		dc[j] = d * gf
	}
}

// AddOuterBatch accumulates Σ_i a.Row(i)·x.Row(i)ᵀ into m: the batched form
// of B AddOuter calls. Like MulT it iterates weight-gradient rows in the
// outer loop, so each row of m is streamed through cache once per batch
// instead of once per example, and blocks batch rows in tiles of
// mulTileRows so each load/store of a gradient element amortizes four
// multiply-adds. The tile accumulates left-to-right
// (((row+a0·x0)+a1·x1)+a2·x2)+a3·x3 — the same association as four
// sequential AddOuter calls — so any batch size keeps the sequential
// summation order bit-for-bit; a tile is entered only when all four
// coefficients are non-zero, preserving AddOuter's exact zero-skip
// semantics (and batch-1 always takes the remainder path, so it is
// bit-identical to AddOuter by construction).
func (m *Mat) AddOuterBatch(a, x *Batch) {
	if a.Cols != m.Rows || x.Cols != m.Cols || a.Rows != x.Rows {
		panic(fmt.Sprintf("nn: AddOuterBatch shape mismatch (%dx%d) += (%dx%d)ᵀ·(%dx%d)",
			m.Rows, m.Cols, a.Rows, a.Cols, x.Rows, x.Cols))
	}
	cols := m.Cols
	aCols := a.Cols
	for r := 0; r < aCols; r++ {
		row := m.Data[r*cols:][:cols]
		i := 0
		for ; i+mulTileRows <= a.Rows; i += mulTileRows {
			a0 := a.Data[i*aCols:][:aCols][r]
			a1 := a.Data[(i+1)*aCols:][:aCols][r]
			a2 := a.Data[(i+2)*aCols:][:aCols][r]
			a3 := a.Data[(i+3)*aCols:][:aCols][r]
			if a0 == 0 || a1 == 0 || a2 == 0 || a3 == 0 {
				// A zero coefficient must be skipped, not multiplied
				// through (AddOuter's contract); fall back to row-at-a-time
				// for this tile.
				addOuterRows(row, a, x, i, i+mulTileRows, r)
				continue
			}
			x0 := x.Data[i*cols:][:cols][:len(row)]
			x1 := x.Data[(i+1)*cols:][:cols][:len(row)]
			x2 := x.Data[(i+2)*cols:][:cols][:len(row)]
			x3 := x.Data[(i+3)*cols:][:cols][:len(row)]
			for c := range row {
				row[c] = row[c] + a0*x0[c] + a1*x1[c] + a2*x2[c] + a3*x3[c]
			}
		}
		addOuterRows(row, a, x, i, a.Rows, r)
	}
}

// addOuterRows is the untiled tail of AddOuterBatch: batch rows [lo,hi)
// accumulated one at a time into gradient row `row`, with exactly
// AddOuter's per-element order and zero-skip.
func addOuterRows(row []float64, a, x *Batch, lo, hi, r int) {
	cols := x.Cols
	aCols := a.Cols
	if r < 0 || r >= aCols {
		// Written as two signed compares (not a uint trick) so the prove
		// pass eliminates the ai[r] bounds check below.
		panic("nn: addOuterRows column out of range")
	}
	for i := lo; i < hi; i++ {
		ai := a.Data[i*aCols:][:aCols]
		av := ai[r]
		if av == 0 {
			continue
		}
		xi := x.Data[i*cols:][:cols]
		xi = xi[:len(row)]
		for c, xv := range xi {
			row[c] += av * xv
		}
	}
}

// MulTransBatch computes dst.Row(i) = wᵀ·a.Row(i) for every batch row,
// resizing dst to a.Rows × w.Cols: the batched form of B MulVecTrans calls
// (each into a freshly zeroed destination). The weight matrix is streamed
// once per call rather than once per example; per row the accumulation
// order and the zero-coefficient skip are exactly MulVecTrans's.
func MulTransBatch(a *Batch, w *Mat, dst *Batch) {
	if a.Cols != w.Rows {
		panic(fmt.Sprintf("nn: MulTransBatch shape mismatch (%dx%d)ᵀ·(%dx%d)", w.Rows, w.Cols, a.Rows, a.Cols))
	}
	dst.Resize(a.Rows, w.Cols)
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	cols := w.Cols
	aCols := a.Cols
	for r := 0; r < aCols; r++ {
		wr := w.Data[r*cols:][:cols]
		for i := 0; i < a.Rows; i++ {
			ai := a.Data[i*aCols:][:aCols]
			av := ai[r]
			if av == 0 {
				continue
			}
			di := dst.Data[i*cols:][:cols]
			di = di[:len(wr)]
			for c, wv := range wr {
				di[c] += wv * av
			}
		}
	}
}

// BackwardBatch accumulates weight gradients for B (input row, output
// gradient row) pairs and writes dL/dx into dxs (resized to B×In). Rows
// whose output gradient is entirely zero are skipped outright — their dxs
// rows stay zero — mirroring how the model-level backward skips detection
// steps with zero loss gradient, so a batch-1 call is bit-identical to the
// scalar Backward-or-skip. Per processed row the accumulation order is
// exactly Backward's.
func (d *Dense) BackwardBatch(xs, dys, dxs *Batch) {
	if xs.Rows != dys.Rows || xs.Cols != d.In || dys.Cols != d.Out {
		panic(fmt.Sprintf("nn: Dense.BackwardBatch shape mismatch x(%dx%d) dy(%dx%d) layer(%dx%d)",
			xs.Rows, xs.Cols, dys.Rows, dys.Cols, d.Out, d.In))
	}
	dxs.Resize(xs.Rows, d.In)
	for i := range dxs.Data {
		dxs.Data[i] = 0
	}
	for i := 0; i < xs.Rows; i++ {
		dy := dys.Row(i)
		if vecAllZero(dy) {
			continue
		}
		d.GW.AddOuter(dy, xs.Row(i))
		d.GB.Add(dy)
		d.W.MulVecTrans(dy, dxs.Row(i))
	}
}

// vecAllZero reports whether every element of v is zero.
func vecAllZero(v Vec) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}
